package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// goleakScope is where goroutine lifecycles must be provable: the serving
// layer (shard engine and router, whose probers live for the process) and
// the two scheduling substrates spawn long-lived workers whose leaks
// accumulate under production load.
var goleakScope = []string{"internal/server", "internal/sched", "internal/rt", "internal/route"}

// goleakAnalyzer requires every `go` statement in the scoped packages to
// have a statically visible exit path. Accepted evidence, in the spawned
// body (func literals inspected in place, named functions resolved through
// the call graph):
//
//   - a receive from ctx.Done() (select case or direct),
//   - a closed-channel drain: ranging over a channel or a comma-ok receive,
//   - a sync.WaitGroup join: the body calls wg.Wait itself, or calls
//     wg.Done on a WaitGroup whose Wait is visible in the same package
//     (the spawning type's Close/Drain joining its workers),
//   - purely finite bodies: no unconditional `for {`, no channel receives,
//     and sends only on channels made with a capacity in the spawning
//     function (a buffered handoff cannot block forever).
//
// Anything else — an infinite loop with no channel exit, a goroutine parked
// on an unbuffered channel nobody is guaranteed to service — is reported.
func goleakAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "goleak",
		Doc:  "go statements in server/sched/rt need a statically visible exit path",
	}
	a.Run = func(pass *Pass) {
		for _, pkg := range pass.Prog.Pkgs {
			if !pathInScope(pkg.Path, goleakScope) {
				continue
			}
			waits := packageWaitObjects(pkg)
			for _, file := range pkg.Files {
				for _, decl := range file.Decls {
					fn, ok := decl.(*ast.FuncDecl)
					if !ok || fn.Body == nil {
						continue
					}
					ast.Inspect(fn.Body, func(n ast.Node) bool {
						gs, ok := n.(*ast.GoStmt)
						if !ok {
							return true
						}
						body := goBody(pass, pkg, gs)
						if body == nil {
							return true // spawning an imported function: out of reach
						}
						if !hasExitPath(pkg.Info, body, fn, waits) {
							pass.Reportf(gs.Pos(), "goroutine has no statically visible exit path (ctx.Done select, closed-channel drain, or WaitGroup join); leaked workers accumulate under load")
						}
						return true
					})
				}
			}
		}
	}
	return a
}

// goBody resolves the function body a go statement spawns: a literal's own
// body, or the declaration of a directly named module function.
func goBody(pass *Pass, pkg *Package, gs *ast.GoStmt) *ast.BlockStmt {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	if callee := calleeFunc(pkg.Info, gs.Call); callee != nil {
		if decl, _ := pass.Graph.DeclOf(callee); decl != nil {
			return decl.Body
		}
	}
	return nil
}

// packageWaitObjects collects every object (field or variable) on which some
// function in pkg calls (*sync.WaitGroup).Wait — the visible join points.
func packageWaitObjects(pkg *Package) map[types.Object]bool {
	waits := make(map[types.Object]bool)
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if funcFullName(calleeFunc(pkg.Info, call)) != "(*sync.WaitGroup).Wait" {
				return true
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if obj := selectorBaseObject(pkg.Info, sel.X); obj != nil {
					waits[obj] = true
				}
			}
			return true
		})
	}
	return waits
}

// selectorBaseObject resolves the receiver expression of a method call to a
// stable object: `wg` -> the local var, `s.workers` -> the field var.
func selectorBaseObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.ObjectOf(e)
	case *ast.SelectorExpr:
		if f := fieldVar(info, e); f != nil {
			return f
		}
		return info.ObjectOf(e.Sel)
	case *ast.UnaryExpr:
		return selectorBaseObject(info, e.X)
	case *ast.StarExpr:
		return selectorBaseObject(info, e.X)
	}
	return nil
}

// hasExitPath applies the goleak evidence rules to a spawned body. spawner
// is the declaration containing the go statement (where buffered channels
// would have been made); waits is the package's WaitGroup join set.
func hasExitPath(info *types.Info, body *ast.BlockStmt, spawner *ast.FuncDecl, waits map[types.Object]bool) bool {
	evidence := false
	infiniteFor := false
	hasReceive := false
	unbufferedSend := false

	buffered := bufferedChannels(info, spawner)

	ast.Inspect(body, func(n ast.Node) bool {
		if evidence {
			return false
		}
		switch n := n.(type) {
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					evidence = true // drains until close
				}
			}
		case *ast.UnaryExpr:
			if n.Op != token.ARROW {
				return true
			}
			hasReceive = true
			if recvFromDone(info, n.X) {
				evidence = true
			}
		case *ast.AssignStmt:
			// v, ok := <-ch observes closure: a comma-ok drain.
			if len(n.Lhs) == 2 && len(n.Rhs) == 1 {
				if un, ok := ast.Unparen(n.Rhs[0]).(*ast.UnaryExpr); ok && un.Op == token.ARROW {
					evidence = true
				}
			}
		case *ast.SendStmt:
			if obj := selectorBaseObject(info, chanBase(n.Chan)); obj == nil || !buffered[obj] {
				unbufferedSend = true
			}
		case *ast.ForStmt:
			if n.Cond == nil {
				infiniteFor = true
			}
		case *ast.CallExpr:
			switch funcFullName(calleeFunc(info, n)) {
			case "(*sync.WaitGroup).Wait":
				evidence = true // the goroutine is itself a joiner
			case "(*sync.WaitGroup).Done":
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					if obj := selectorBaseObject(info, sel.X); obj != nil && waits[obj] {
						evidence = true // joined by a visible Wait in this package
					}
				}
			}
		}
		return true
	})
	if evidence {
		return true
	}
	// No explicit exit signal: accept only structurally finite bodies.
	return !infiniteFor && !hasReceive && !unbufferedSend
}

// chanBase peels an index expression so readyD[d] <- x resolves to readyD.
func chanBase(e ast.Expr) ast.Expr {
	if ix, ok := ast.Unparen(e).(*ast.IndexExpr); ok {
		return ix.X
	}
	return e
}

// recvFromDone reports whether e is a call to context.Context.Done (the
// canonical cancellation receive).
func recvFromDone(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	callee := calleeFunc(info, call)
	return callee != nil && callee.Name() == "Done" && callee.Pkg() != nil && callee.Pkg().Path() == "context"
}

// bufferedChannels collects channel objects the function makes with an
// explicit capacity (3-arg make, or make into an element of a slice) — a
// send on those cannot block past the buffer, so a finite goroutine feeding
// one terminates.
func bufferedChannels(info *types.Info, fn *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if fn == nil || fn.Body == nil {
		return out
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltinCall(info, call, "make") || len(call.Args) < 2 {
				continue
			}
			if t, ok := info.Types[call.Args[0]]; !ok || t.Type == nil {
				continue
			} else if _, isChan := t.Type.Underlying().(*types.Chan); !isChan {
				continue
			}
			if obj := selectorBaseObject(info, chanBase(as.Lhs[i])); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}
