package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked module package.
type Package struct {
	Path  string // import path
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is the whole loaded module: every package parsed, type-checked in
// dependency order, sharing one FileSet.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package
}

// loader type-checks module packages against a shared stdlib source
// importer. It implements types.ImporterFrom: module-internal imports are
// served from the already-checked set, everything else falls through to the
// stdlib `source` importer.
type loader struct {
	fset    *token.FileSet
	stdlib  types.ImporterFrom
	checked map[string]*types.Package
}

func newLoader(fset *token.FileSet) *loader {
	// The source importer re-type-checks imports from source and cannot run
	// cgo preprocessing; with cgo off, go/build selects the pure-Go fallbacks
	// (net, os/user) that exist for exactly this situation.
	build.Default.CgoEnabled = false
	return &loader{
		fset:    fset,
		stdlib:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		checked: make(map[string]*types.Package),
	}
}

func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

func (l *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := l.checked[path]; ok {
		return p, nil
	}
	return l.stdlib.ImportFrom(path, dir, mode)
}

// check type-checks one package and records it for importers downstream.
func (l *loader) check(path, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	l.checked[path] = tpkg
	return &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// LoadModule loads every package of the module rooted at (or above) root:
// parse all non-test .go files, order packages by intra-module imports, and
// type-check each. Test files and testdata/vendor trees are skipped — the
// invariants sparselint enforces are about production task bodies, and the
// tests exercise deques and schedulers in ways the rules forbid on purpose.
func LoadModule(root string) (*Program, error) {
	modRoot, modPath, err := findModule(root)
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(modRoot)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()

	// Parsing is embarrassingly parallel (token.FileSet is concurrency-safe)
	// and dominates load time after the stdlib import cache warms; fan it out
	// over a bounded pool. Results are consumed in directory order, so the
	// program layout stays deterministic.
	parsedFiles := make([][]*ast.File, len(dirs))
	parseErrs := make([]error, len(dirs))
	sem := make(chan struct{}, lintWorkers())
	var wg sync.WaitGroup
	for i, dir := range dirs {
		wg.Add(1)
		go func(i int, dir string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			parsedFiles[i], parseErrs[i] = parseDir(fset, dir)
		}(i, dir)
	}
	wg.Wait()

	type parsed struct {
		path    string
		dir     string
		files   []*ast.File
		imports map[string]bool
	}
	var pkgs []*parsed
	byPath := make(map[string]*parsed)
	for i, dir := range dirs {
		files, err := parsedFiles[i], parseErrs[i]
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			continue
		}
		rel, err := filepath.Rel(modRoot, dir)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		p := &parsed{path: path, dir: dir, files: files, imports: make(map[string]bool)}
		for _, f := range files {
			for _, imp := range f.Imports {
				p.imports[strings.Trim(imp.Path.Value, `"`)] = true
			}
		}
		pkgs = append(pkgs, p)
		byPath[path] = p
	}

	// Topological order over intra-module imports so every internal
	// dependency is checked before its importers.
	var order []*parsed
	state := make(map[*parsed]int) // 0 new, 1 visiting, 2 done
	var visit func(p *parsed) error
	visit = func(p *parsed) error {
		switch state[p] {
		case 1:
			return fmt.Errorf("import cycle through %s", p.path)
		case 2:
			return nil
		}
		state[p] = 1
		deps := make([]string, 0, len(p.imports))
		for imp := range p.imports {
			deps = append(deps, imp)
		}
		sort.Strings(deps)
		for _, imp := range deps {
			if dep, ok := byPath[imp]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[p] = 2
		order = append(order, p)
		return nil
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].path < pkgs[j].path })
	for _, p := range pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}

	l := newLoader(fset)
	prog := &Program{Fset: fset}
	for _, p := range order {
		pkg, err := l.check(p.path, p.dir, p.files)
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	return prog, nil
}

// LoadFixture loads a single directory of fixture files as one package under
// the given import path (the path decides which package-scoped analyzers
// apply, e.g. "fixture/internal/server" for ctxfirst).
func LoadFixture(dir, asPath string) (*Program, error) {
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	pkg, err := newLoader(fset).check(asPath, dir, files)
	if err != nil {
		return nil, err
	}
	return &Program{Fset: fset, Pkgs: []*Package{pkg}}, nil
}

// findModule walks up from root to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(root string) (dir, path string, err error) {
	dir, err = filepath.Abs(root)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found at or above %s", root)
		}
		dir = parent
	}
}

// packageDirs lists every directory under root that holds non-test .go
// files, skipping testdata, vendor, and hidden trees.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") && !strings.HasSuffix(p, "_test.go") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// parseDir parses every non-test .go file in dir (with comments, which carry
// the annotations and suppressions).
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}
