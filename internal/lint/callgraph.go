package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// CallKind classifies how a call-graph edge was discovered.
type CallKind uint8

const (
	// CallDirect is a static call to a named function or method.
	CallDirect CallKind = iota
	// CallInterface is a call through an interface method, resolved
	// class-hierarchy-analysis style to every module type satisfying the
	// interface.
	CallInterface
	// CallRef is a function value escaping to its assignment site: the
	// referencing function is treated as a potential caller, because once a
	// function value escapes, every later indirect call is invisible to
	// static analysis. This is what makes `exec := kernels.Exec` carry the
	// hot-path obligation to kernels.Exec.
	CallRef
)

func (k CallKind) String() string {
	switch k {
	case CallDirect:
		return "direct"
	case CallInterface:
		return "iface"
	default:
		return "ref"
	}
}

// CallEdge is one caller → callee relationship with its source position.
// Calls made inside func literals are attributed to the enclosing
// declaration: a closure runs with (and propagates the obligations of) its
// creator.
type CallEdge struct {
	Caller *types.Func
	Callee *types.Func
	Site   token.Pos
	Kind   CallKind
}

// declSite pairs a function's AST with its package, for body checks.
type declSite struct {
	Decl *ast.FuncDecl
	Pkg  *Package
}

// CallGraph is the whole-module static call graph the interprocedural
// analyzers (hotpathalloc, dequeowner, bce) share. Nodes are *types.Func
// objects; only functions declared in the module carry bodies and outgoing
// edges, but edges may point at imported functions (those are leaves).
type CallGraph struct {
	decls map[*types.Func]declSite
	out   map[*types.Func][]CallEdge
}

// BuildCallGraph constructs the CHA-style call graph of prog: direct calls,
// interface method calls resolved through the module's interface
// satisfaction sets, and function values tracked to the site where they are
// taken as a value.
func BuildCallGraph(prog *Program) *CallGraph {
	g := &CallGraph{
		decls: make(map[*types.Func]declSite),
		out:   make(map[*types.Func][]CallEdge),
	}

	// Every named non-interface type declared in the module, for interface
	// satisfaction queries.
	var concrete []*types.Named
	for _, pkg := range prog.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			concrete = append(concrete, named)
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if def, _ := pkg.Info.Defs[fn.Name].(*types.Func); def != nil {
					g.decls[def] = declSite{Decl: fn, Pkg: pkg}
				}
			}
		}
	}
	sort.Slice(concrete, func(i, j int) bool {
		return concrete[i].Obj().Id() < concrete[j].Obj().Id()
	})

	// Memoized interface-method resolution: for an interface method m, the
	// set of concrete module methods that may answer a dynamic dispatch.
	implCache := make(map[*types.Func][]*types.Func)
	resolveIface := func(m *types.Func) []*types.Func {
		if impls, ok := implCache[m]; ok {
			return impls
		}
		sig, _ := m.Type().(*types.Signature)
		if sig == nil || sig.Recv() == nil {
			implCache[m] = nil
			return nil
		}
		iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
		if !ok {
			implCache[m] = nil
			return nil
		}
		var impls []*types.Func
		for _, named := range concrete {
			ptr := types.NewPointer(named)
			if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(ptr, true, m.Pkg(), m.Name())
			if impl, ok := obj.(*types.Func); ok {
				impls = append(impls, impl)
			}
		}
		implCache[m] = impls
		return impls
	}

	// Sorted caller order keeps edge discovery — and with it the provenance
	// chains ReachableFrom hands to diagnostics — deterministic run to run.
	for _, f := range g.Funcs() {
		site := g.decls[f]
		if site.Decl.Body == nil {
			continue
		}
		info := site.Pkg.Info

		// Identifiers in call position: their use is a call, not a value.
		callFun := make(map[*ast.Ident]bool)
		ast.Inspect(site.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				callFun[fun] = true
			case *ast.SelectorExpr:
				callFun[fun.Sel] = true
			}
			return true
		})

		ast.Inspect(site.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				callee := calleeFunc(info, n)
				if callee == nil {
					return true
				}
				if sig, _ := callee.Type().(*types.Signature); sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
					for _, impl := range resolveIface(callee) {
						g.addEdge(CallEdge{Caller: f, Callee: impl, Site: n.Pos(), Kind: CallInterface})
					}
					return true
				}
				g.addEdge(CallEdge{Caller: f, Callee: callee, Site: n.Pos(), Kind: CallDirect})
			case *ast.Ident:
				if callFun[n] {
					return true
				}
				if ref, ok := info.Uses[n].(*types.Func); ok {
					if _, inModule := g.decls[ref]; inModule {
						g.addEdge(CallEdge{Caller: f, Callee: ref, Site: n.Pos(), Kind: CallRef})
					}
				}
			}
			return true
		})
	}
	for _, edges := range g.out {
		sort.Slice(edges, func(i, j int) bool { return edges[i].Site < edges[j].Site })
	}
	return g
}

func (g *CallGraph) addEdge(e CallEdge) {
	g.out[e.Caller] = append(g.out[e.Caller], e)
}

// DeclOf returns the AST declaration and package of a module function, or
// (nil, nil) for imported functions.
func (g *CallGraph) DeclOf(f *types.Func) (*ast.FuncDecl, *Package) {
	s, ok := g.decls[f]
	if !ok {
		return nil, nil
	}
	return s.Decl, s.Pkg
}

// EdgesFrom returns f's outgoing edges in source order.
func (g *CallGraph) EdgesFrom(f *types.Func) []CallEdge { return g.out[f] }

// Funcs returns every module-declared function, sorted by full name (a
// deterministic iteration order for analyzers).
func (g *CallGraph) Funcs() []*types.Func {
	fs := make([]*types.Func, 0, len(g.decls))
	for f := range g.decls {
		fs = append(fs, f)
	}
	sort.Slice(fs, func(i, j int) bool { return fs[i].FullName() < fs[j].FullName() })
	return fs
}

// ReachableFrom computes the set of functions reachable from roots over
// every edge kind. boundary, when non-nil, marks functions whose bodies are
// not entered: they join the reachable frontier (so callers can validate
// them) but their outgoing edges are not followed. The returned via map
// records, for each non-root reached function, the edge that first reached
// it — provenance for diagnostics.
func (g *CallGraph) ReachableFrom(roots []*types.Func, boundary func(*types.Func) bool) (map[*types.Func]bool, map[*types.Func]CallEdge) {
	reached := make(map[*types.Func]bool)
	via := make(map[*types.Func]CallEdge)
	queue := make([]*types.Func, 0, len(roots))
	for _, r := range roots {
		if !reached[r] {
			reached[r] = true
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		if boundary != nil && boundary(f) {
			continue
		}
		for _, e := range g.out[f] {
			if reached[e.Callee] {
				continue
			}
			reached[e.Callee] = true
			via[e.Callee] = e
			queue = append(queue, e.Callee)
		}
	}
	return reached, via
}

// SCCs returns the strongly connected components of the module subgraph in
// callee-first (reverse topological) order: every edge leaving a component
// points into an earlier one. Summary-based interprocedural analyses
// (taint) process components in this order so a callee's summary exists
// before its callers consult it; mutually recursive functions share a
// component and are iterated to a local fixpoint. Only module-declared
// functions are nodes; edges to imported functions are ignored. The order is
// deterministic: roots are visited in Funcs() order and edges in their
// stored (position-sorted) order.
func (g *CallGraph) SCCs() [][]*types.Func {
	index := make(map[*types.Func]int)
	low := make(map[*types.Func]int)
	onStack := make(map[*types.Func]bool)
	var stack []*types.Func
	var sccs [][]*types.Func
	next := 0

	var strongconnect func(f *types.Func)
	strongconnect = func(f *types.Func) {
		index[f] = next
		low[f] = next
		next++
		stack = append(stack, f)
		onStack[f] = true
		for _, e := range g.out[f] {
			c := e.Callee
			if _, declared := g.decls[c]; !declared {
				continue
			}
			if _, seen := index[c]; !seen {
				strongconnect(c)
				if low[c] < low[f] {
					low[f] = low[c]
				}
			} else if onStack[c] && index[c] < low[f] {
				low[f] = index[c]
			}
		}
		if low[f] == index[f] {
			var comp []*types.Func
			for {
				n := len(stack) - 1
				w := stack[n]
				stack = stack[:n]
				onStack[w] = false
				comp = append(comp, w)
				if w == f {
					break
				}
			}
			sccs = append(sccs, comp)
		}
	}
	for _, f := range g.Funcs() {
		if _, seen := index[f]; !seen {
			strongconnect(f)
		}
	}
	return sccs
}

// ------------------------------------------------- interprocedural summaries
//
// A funcSummary condenses what the dataflow engine learned about one module
// function, so callers can apply the effect of a call without re-walking the
// callee. Three facts are kept, all in terms of the callee's flattened
// parameter list (receiver first, index 0, when present):
//
//   - sinkParams: parameter i reaches a resource sink inside the callee (or
//     transitively inside its callees) without passing a clamp. A caller
//     handing an untrusted value to such a parameter has completed a
//     source→sink flow.
//   - results: per result value, whether it carries taint originating
//     *inside* the callee (an ingress field read, a parse call) and which
//     parameters flow through to it unclamped (pass-through).
//
// Hop slices record the call path for provenance chains, mirroring
// hotpathalloc's chain rendering.

// sinkVia describes how a parameter reaches a sink: what the sink is and the
// call chain (outermost first) leading to it.
type sinkVia struct {
	desc string
	hops []string
}

// taintSource identifies where a tainted value was born, with the call chain
// (outermost first) it traveled through summaries to get here.
type taintSource struct {
	pos  token.Pos
	desc string
	hops []string
}

// resultFlow is the taint character of one result value.
type resultFlow struct {
	src    *taintSource // taint originating inside the callee, or nil
	params uint64       // bitmask of parameters flowing through unclamped
}

// funcSummary is the condensed interprocedural fact set for one function.
type funcSummary struct {
	sinkParams map[int]*sinkVia
	results    []resultFlow
	sig        *types.Signature
}

// summaryTable maps module functions to their computed summaries. Functions
// absent from the table (imported functions, bodiless declarations) are
// treated as clamping everything: their results are clean and their
// parameters reach no sink, which bounds false positives at the module edge.
type summaryTable map[*types.Func]*funcSummary

// Chain renders the provenance path from a root to f, e.g.
// "runWorker → take → rngNext". It follows via edges backwards, capped so a
// cycle cannot loop forever.
func (g *CallGraph) Chain(via map[*types.Func]CallEdge, f *types.Func) string {
	var names []string
	for hops := 0; hops < 32; hops++ {
		names = append(names, f.Name())
		e, ok := via[f]
		if !ok {
			break
		}
		f = e.Caller
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " → ")
}

// Dump writes a deterministic text rendering of the graph (the -graph debug
// view of cmd/sparselint): one line per edge, callers sorted by full name.
func (g *CallGraph) Dump(fset *token.FileSet) string {
	var b strings.Builder
	for _, f := range g.Funcs() {
		for _, e := range g.out[f] {
			fmt.Fprintf(&b, "%s -> %s [%s] %s\n", f.FullName(), e.Callee.FullName(), e.Kind, fset.Position(e.Site))
		}
	}
	return b.String()
}
