// Package kernels exercises sparselint/bce: hot-path loops must not defeat
// bounds-check elimination.
package kernels

//sparselint:hotpath
func reindex(a []float64, base, n int) float64 {
	var s float64
	for j := 0; j < n; j++ {
		s += a[base+j] // want `indexing a with loop-variant base\+j defeats bounds-check elimination`
	}
	return s
}

// windowed is the sanctioned rewrite: pre-slice, then index the window.
//
//sparselint:hotpath
func windowed(a []float64, base, n int) float64 {
	w := a[base : base+n]
	var s float64
	for j := 0; j < n; j++ {
		s += w[j]
	}
	return s
}

// strided is a column gather: the induction variable only appears scaled,
// no contiguous window exists, so no finding.
//
//sparselint:hotpath
func strided(b []float64, n, j, k int) float64 {
	var s float64
	for p := 0; p < k; p++ {
		s += b[p*n+j]
	}
	return s
}

//sparselint:hotpath
func unrolledBad(x []float64, n int) float64 {
	var s0, s1, s2, s3 float64
	for i := 0; i+4 <= n; i += 4 {
		s0 += x[i] // want `unrolled accesses of x up to offset \+3 lack a bounds hint`
		s1 += x[i+1]
		s2 += x[i+2]
		s3 += x[i+3]
	}
	return s0 + s1 + s2 + s3
}

// unrolledCondHint bounds the loop against len(x): every offset is proven.
//
//sparselint:hotpath
func unrolledCondHint(x []float64) float64 {
	var s0, s1, s2, s3 float64
	for i := 0; i+4 <= len(x); i += 4 {
		s0 += x[i]
		s1 += x[i+1]
		s2 += x[i+2]
		s3 += x[i+3]
	}
	return s0 + s1 + s2 + s3
}

// unrolledResliceHint re-slices with an explicit high before the loop.
//
//sparselint:hotpath
func unrolledResliceHint(x []float64, n int) float64 {
	x = x[:n]
	var s0, s1 float64
	for i := 0; i+2 <= n; i += 2 {
		s0 += x[i]
		s1 += x[i+1]
	}
	return s0 + s1
}

// unrolledMaxFirst touches the maximum offset first; later checks fold.
//
//sparselint:hotpath
func unrolledMaxFirst(x []float64, n int) float64 {
	var s0, s1 float64
	for i := 0; i+2 <= n; i += 2 {
		s1 += x[i+1]
		s0 += x[i]
	}
	return s0 + s1
}

//sparselint:hotpath
func hotCaller(a []float64, base, n int) float64 { return helper(a, base, n) }

// helper inherits the obligation from hotCaller; the finding carries the
// chain.
func helper(a []float64, base, n int) float64 {
	var s float64
	for j := 0; j < n; j++ {
		s += a[base+j] // want `pre-slice a window.*hot path: hotCaller → helper`
	}
	return s
}
