// Package counter exercises sparselint/atomicfield: a field touched through
// sync/atomic anywhere must never be read or written plainly anywhere else.
package counter

import "sync/atomic"

type stats struct {
	hits  int64 // atomic everywhere: clean
	mixed int64 // atomic in bump, plain in report: the race
	plain int64 // never atomic: plain access is fine
}

// newStats shows that composite-literal initialization stays legal:
// construction precedes sharing.
func newStats() *stats {
	return &stats{hits: 0, mixed: 0}
}

func (s *stats) bump() {
	atomic.AddInt64(&s.hits, 1)
	atomic.AddInt64(&s.mixed, 1)
}

func (s *stats) report() int64 {
	h := atomic.LoadInt64(&s.hits)
	m := s.mixed // want `field mixed is accessed with sync/atomic`
	return h + m
}

func (s *stats) reset() {
	atomic.StoreInt64(&s.hits, 0)
	s.mixed = 0 // want `field mixed is accessed with sync/atomic`
	s.plain = 0
}

func (s *stats) drain() int64 {
	//lint:ignore sparselint/atomicfield fixture: single-owner shutdown path, workers already joined
	return s.mixed
}
