// Package kernels exercises sparselint/determinism. It loads under the
// import path fixture/internal/kernels, which is in the analyzer's scope.
package kernels

import (
	"math/rand"
	"sort"
	"time"
)

func Timestamp() int64 {
	return time.Now().UnixNano() // want `time.Now reads the wall clock`
}

func Jitter() float64 {
	return rand.Float64() // want `uses the process-wide rand source`
}

// Seeded draws from an explicitly seeded stream: deterministic, allowed.
func Seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// Keys is the sanctioned collect-then-sort idiom: the gather loop is exempt.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func Sum(m map[string]int) int {
	total := 0
	for _, v := range m { // want `map iteration order is nondeterministic`
		total += v
	}
	return total
}

func Max(m map[string]int) int {
	best := 0
	//lint:ignore sparselint/determinism fixture: max over values is order-independent
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// Timers are the wall clock by another name.
func Debounce(ch chan int) int {
	t := time.NewTimer(time.Millisecond) // want `time.NewTimer makes control flow depend on the wall clock`
	defer t.Stop()
	select {
	case v := <-ch:
		return v
	case <-time.After(time.Millisecond): // want `time.After makes control flow depend on the wall clock`
		return 0
	}
}
