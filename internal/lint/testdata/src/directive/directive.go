// Package directive exercises the suppression-directive validation: a typo'd
// target or a missing reason must surface as a finding, never silently
// disable a gate. The missing-reason case is asserted programmatically in
// lint_test.go because a trailing want comment would itself be the reason.
package directive

//lint:ignore sparselint/nosuchanalyzer bogus target // want `not a sparselint analyzer`
var a = 1

//lint:ignore sparselint/determinism
var b = 2

var _ = a + b

//lint:ignore sparselint/determinism fixture: nothing on this line produces a finding
var c = 3
