// Package workers exercises sparselint/goleak: every go statement needs a
// statically visible exit path. Loaded under fixture/internal/sched so the
// scope rule applies.
package workers

import (
	"context"
	"sync"
)

type pool struct {
	wg    sync.WaitGroup
	tasks chan int
	out   chan int
}

// start spawns the sanctioned shapes.
func (p *pool) start(ctx context.Context) {
	// Range over a channel: drains until close.
	go func() {
		for t := range p.tasks {
			_ = t
		}
	}()

	// ctx.Done receive in a select.
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case t := <-p.tasks:
				_ = t
			}
		}
	}()

	// Comma-ok receive observes closure.
	go func() {
		for {
			t, ok := <-p.tasks
			if !ok {
				return
			}
			_ = t
		}
	}()

	// WaitGroup join: Done here, Wait visible in Close below.
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.out <- 1
	}()

	// Named method body resolved through the call graph.
	go p.worker()

	// Structurally finite with only buffered sends.
	results := make(chan int, 4)
	go func() {
		results <- 42
	}()
	_ = results
}

func (p *pool) worker() {
	for t := range p.tasks {
		_ = t
	}
}

// Close joins the workers: the package-visible Wait that legitimizes the
// wg.Done evidence above.
func (p *pool) Close() {
	close(p.tasks)
	p.wg.Wait()
}

// leaks spawns the reportable shapes.
func (p *pool) leaks(done chan struct{}) {
	go func() { // want `goroutine has no statically visible exit path`
		for {
		}
	}()

	unbuffered := make(chan int)
	go func() { // want `goroutine has no statically visible exit path`
		unbuffered <- 1
	}()

	go func() { // want `goroutine has no statically visible exit path`
		for {
			select {
			case <-done:
				// Seen, but the loop never exits: still no ctx.Done, no
				// drain, no join.
			case t := <-p.tasks:
				_ = t
			}
		}
	}()
}
