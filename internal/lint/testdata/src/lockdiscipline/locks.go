// Package locks exercises sparselint/lockdiscipline: balanced release on
// every path, no blocking while held, no copies of sync primitives.
package locks

import (
	"sync"
	"time"
)

type guarded struct {
	mu sync.Mutex
	ch chan int
	n  int
}

func (g *guarded) missingUnlock(cond bool) {
	g.mu.Lock() // want `locked here but not released on every path`
	if cond {
		g.n++
	}
}

func (g *guarded) returnWhileHeld(cond bool) int {
	g.mu.Lock()
	if cond {
		return g.n // want `return while holding g.mu`
	}
	g.mu.Unlock()
	return 0
}

func (g *guarded) blockWhileHeld() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.ch <- 1                    // want `channel send while holding g.mu`
	time.Sleep(time.Millisecond) // want `blocking call while holding g.mu`
	<-g.ch                       // want `channel receive while holding g.mu`
}

func (g *guarded) selectNoDefault() {
	g.mu.Lock()
	select { // want `select with no default may block while holding g.mu`
	case v := <-g.ch:
		g.n = v
	}
	g.mu.Unlock()
}

func copyParam(g guarded) { // want `parameter copies`
	_ = g
}

func copyAssign(p *guarded) {
	v := *p // want `assignment copies`
	_ = v.n
}

func copyRange(list []guarded) {
	for _, v := range list { // want `range copies`
		_ = v.n
	}
}

// clean is the sanctioned shape: defer covers every return, and the select
// is non-blocking by construction.
func (g *guarded) clean() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case v := <-g.ch:
		return v
	default:
	}
	return g.n
}

func (g *guarded) suppressed() {
	g.mu.Lock()
	//lint:ignore sparselint/lockdiscipline fixture: channel is buffered with capacity reserved at Lock time
	g.ch <- 1
	g.mu.Unlock()
}

// ------------------------------------------------------------------ RWMutex

type rwGuarded struct {
	mu sync.RWMutex
	n  int
}

// readClean is the sanctioned read path: defer covers every return.
func (g *rwGuarded) readClean() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.n
}

func (g *rwGuarded) readLeak(cond bool) int {
	g.mu.RLock()
	if cond {
		return g.n // want `return while holding g.mu:r`
	}
	g.mu.RUnlock()
	return 0
}

func (g *rwGuarded) upgradeDeadlock() {
	g.mu.RLock()
	g.mu.Lock() // want `upgrading g.mu from RLock to Lock self-deadlocks`
	g.n++
	g.mu.Unlock()
	g.mu.RUnlock()
}

// upgradeClean is the legal upgrade: release the read lock, take the write
// lock, revalidate.
func (g *rwGuarded) upgradeClean(want int) {
	g.mu.RLock()
	seen := g.n
	g.mu.RUnlock()
	g.mu.Lock()
	if g.n == seen && seen == want {
		g.n++
	}
	g.mu.Unlock()
}

func (g *rwGuarded) recursiveRead() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.mu.RLock() // want `recursive RLock on g.mu`
	defer g.mu.RUnlock()
	return g.n
}

func (g *rwGuarded) readUnderWrite() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.mu.RLock() // want `RLock on g.mu while its write lock is held`
	defer g.mu.RUnlock()
	return g.n
}

func (g *rwGuarded) relock() {
	g.mu.Lock()
	g.mu.Lock() // want `already locked on this path`
	g.n++
	g.mu.Unlock()
}
