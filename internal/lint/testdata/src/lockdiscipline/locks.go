// Package locks exercises sparselint/lockdiscipline: balanced release on
// every path, no blocking while held, no copies of sync primitives.
package locks

import (
	"sync"
	"time"
)

type guarded struct {
	mu sync.Mutex
	ch chan int
	n  int
}

func (g *guarded) missingUnlock(cond bool) {
	g.mu.Lock() // want `locked here but not released on every path`
	if cond {
		g.n++
	}
}

func (g *guarded) returnWhileHeld(cond bool) int {
	g.mu.Lock()
	if cond {
		return g.n // want `return while holding g.mu`
	}
	g.mu.Unlock()
	return 0
}

func (g *guarded) blockWhileHeld() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.ch <- 1                    // want `channel send while holding g.mu`
	time.Sleep(time.Millisecond) // want `blocking call while holding g.mu`
	<-g.ch                       // want `channel receive while holding g.mu`
}

func (g *guarded) selectNoDefault() {
	g.mu.Lock()
	select { // want `select with no default may block while holding g.mu`
	case v := <-g.ch:
		g.n = v
	}
	g.mu.Unlock()
}

func copyParam(g guarded) { // want `parameter copies`
	_ = g
}

func copyAssign(p *guarded) {
	v := *p // want `assignment copies`
	_ = v.n
}

func copyRange(list []guarded) {
	for _, v := range list { // want `range copies`
		_ = v.n
	}
}

// clean is the sanctioned shape: defer covers every return, and the select
// is non-blocking by construction.
func (g *guarded) clean() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case v := <-g.ch:
		return v
	default:
	}
	return g.n
}

func (g *guarded) suppressed() {
	g.mu.Lock()
	//lint:ignore sparselint/lockdiscipline fixture: channel is buffered with capacity reserved at Lock time
	g.ch <- 1
	g.mu.Unlock()
}
