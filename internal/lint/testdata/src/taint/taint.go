// Package taintfix exercises the taint analyzer: untrusted values decoded
// from JSON or read from HTTP request fields must pass a validating clamp
// before reaching allocations, indexes, loop bounds, durations, or
// goroutine spawns. Loaded as fixture/internal/server so the serving-path
// scoping applies.
package taintfix

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"
)

const limit = 1024

var errTooBig = errors.New("out of range")

// Req is a JSON ingress type: handle decodes it straight from the request
// body, so every basic-typed field is attacker-controlled until clamped.
type Req struct {
	N         int    `json:"n"`
	Idx       int    `json:"idx"`
	Workers   int    `json:"workers"`
	TimeoutMS int64  `json:"timeout_ms"`
	Checked   int    `json:"checked"`
	Mode      string `json:"mode"`
}

// Validate upper-bounds Checked and membership-checks Mode at admission, so
// both are clean module-wide.
//
//sparselint:validator
func (q *Req) Validate() error {
	if q.Checked > limit {
		return errTooBig
	}
	switch q.Mode {
	case "batch", "single":
	default:
		return errTooBig
	}
	return nil
}

func handle(w http.ResponseWriter, r *http.Request) {
	var q Req
	if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
		return
	}
	direct(&q)
}

// ---------------------------------------------------------------- positives

func direct(q *Req) {
	_ = make([]float64, q.N) // want `untrusted Req\.N \(decoded from JSON\) reaches a make size/capacity without a validating clamp`
}

func loopBound(q *Req) int {
	sum := 0
	for i := 0; i < q.N; i++ { // want `untrusted Req\.N .* reaches a loop bound`
		sum += i
	}
	return sum
}

func rangeInt(q *Req) {
	for range q.N { // want `untrusted Req\.N .* reaches a loop bound`
	}
}

func spawn(q *Req) {
	for i := 0; i < q.Workers; i++ { // want `untrusted Req\.Workers .* reaches a goroutine-spawn loop bound`
		go func() {}()
	}
}

func deadline(q *Req) time.Duration {
	return time.Duration(q.TimeoutMS) * time.Millisecond // want `untrusted Req\.TimeoutMS .* reaches a time\.Duration conversion`
}

func index(q *Req, xs []float64) float64 {
	return xs[q.Idx] // want `untrusted Req\.Idx .* reaches a slice index`
}

func sliceBound(q *Req, xs []float64) []float64 {
	return xs[:q.N] // want `untrusted Req\.N .* reaches a slice bound`
}

// alloc's parameter reaches a make inside the callee: the summary carries
// the obligation back to every call site.
func alloc(n int) []float64 {
	return make([]float64, n)
}

func viaHelperSink(q *Req) []float64 {
	return alloc(q.N) // want `untrusted Req\.N .* reaches a make size/capacity without a validating clamp \[flow: alloc\]`
}

// sizeOf births the taint inside a helper: the summary's result flow carries
// the source to the caller.
func sizeOf(r *http.Request) int {
	var q Req
	if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
		return 0
	}
	return q.N
}

func viaHelperSource(r *http.Request) []int {
	n := sizeOf(r)
	return make([]int, n) // want `untrusted Req\.N .* reaches a make size/capacity without a validating clamp \[flow: sizeOf\]`
}

func fromPath(r *http.Request) []byte {
	n, err := strconv.Atoi(r.PathValue("n"))
	if err != nil {
		return nil
	}
	return make([]byte, n) // want `untrusted PathValue result \(HTTP request field\) reaches a make size/capacity`
}

// halfClamped bounds q.N on only one branch: the join keeps the taint.
func halfClamped(q *Req, flag bool) []int {
	n := q.N
	if flag {
		if n > limit {
			return nil
		}
	}
	return make([]int, n) // want `untrusted Req\.N .* reaches a make size/capacity`
}

// ---------------------------------------------------------------- negatives

func clampedBranch(q *Req) []int {
	if q.N > limit {
		return nil
	}
	return make([]int, q.N)
}

func clampedAssign(q *Req) []int {
	n := q.N
	if n > limit {
		n = limit
	}
	return make([]int, n)
}

func clampedMin(q *Req) []int {
	return make([]int, min(q.N, limit))
}

func clampedInterproc(q *Req) []float64 {
	n := q.N
	if n > limit {
		n = limit
	}
	return alloc(n)
}

func validatedField(q *Req) []int {
	// Checked is upper-bounded by the //sparselint:validator method.
	return make([]int, q.Checked)
}

func compareOnly(q *Req) bool {
	// Comparison results are booleans, not sizes: clean.
	return q.N > limit
}

func lenBound(q *Req, xs []float64) float64 {
	// len of real data is bounded by the real allocation.
	acc := 0.0
	for i := 0; i < len(xs); i++ {
		acc += xs[i]
	}
	return acc
}

func suppressed(q *Req) []int {
	//lint:ignore sparselint/taint fixture exercises the suppression path
	return make([]int, q.N)
}
