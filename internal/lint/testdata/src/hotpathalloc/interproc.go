// Interprocedural cases: obligations propagate from hotpath roots over
// direct calls, interface dispatch, and function values, and stop at
// validated coldcall boundaries.
package hot

import "fmt"

//sparselint:hotpath
func hotRoot(xs []int) int { return hop1(xs) }

func hop1(xs []int) int { return hop2(xs) }

// hop2 is two hops from the root; its findings carry the provenance chain.
func hop2(xs []int) int {
	tmp := make([]int, len(xs)) // want `make allocates.*hot path: hotRoot → hop1 → hop2`
	copy(tmp, xs)
	return len(tmp)
}

// summer is dispatched dynamically; CHA drags every implementation into hot
// scope.
type summer interface{ sum(xs []int) int }

type boxSummer struct{}

func (boxSummer) sum(xs []int) int {
	box := any(len(xs)) // want `conversion to interface.*hot path: hotIface → sum`
	_ = box
	return 0
}

//sparselint:hotpath
func hotIface(s summer, xs []int) int { return s.sum(xs) }

// refTarget is never called directly from hot code, but hotRef takes its
// value — every later indirect call is invisible, so the obligation lands
// here.
func refTarget(xs []int) int {
	var ys []int
	ys = append(ys, len(xs)) // want `append may grow.*hot path: hotRef → refTarget`
	return len(ys)
}

//sparselint:hotpath
func hotRef() func([]int) int { return refTarget }

// coldFail is a sanctioned boundary: its body is not checked, and
// propagation stops here.
//
//sparselint:coldcall fixture: error-path formatting is off the steady state
func coldFail(n int) error { return fmt.Errorf("hot: empty input (n=%d)", n) }

//sparselint:hotpath
func hotWithCold(xs []int) error {
	if len(xs) == 0 {
		return coldFail(len(xs)) // conditional: a legal cold boundary crossing
	}
	return nil
}

//sparselint:coldcall fixture: setup boundary
func coldSetup() {}

//sparselint:hotpath
func hotColdUncond() {
	coldSetup() // want `coldSetup is called unconditionally from hot code`
}

//sparselint:coldcall
func coldNoReason() {} // want `sparselint:coldcall on coldNoReason needs a reason`

//sparselint:hotpath
//sparselint:coldcall fixture: contradictory pair
func hotAndCold() {} // want `annotated both sparselint:hotpath and sparselint:coldcall`
