// Package hot exercises sparselint/hotpathalloc: annotated functions must
// not contain heap-escaping constructs; unannotated functions may.
package hot

import "fmt"

var sink func() int

// hotBad trips every rule.
//
//sparselint:hotpath
func hotBad(xs []int, name string) {
	total := 0
	for _, x := range xs {
		total += x
	}
	sink = func() int { return total } // want `closure captures total`
	var ys []int
	ys = append(ys, total) // want `append may grow its backing array`
	_ = ys
	tmp := make([]int, 8) // want `make allocates`
	_ = tmp
	fmt.Println(total)  // want `fmt.Println allocates` `implicit conversion of int to interface`
	label := name + "!" // want `string concatenation allocates`
	_ = label
	_ = any(total)      // want `conversion to interface`
	m := map[int]bool{} // want `map literal allocates`
	_ = m
	lit := []int{1, 2} // want `slice literal allocates`
	_ = lit
}

// hotClean shows the sanctioned patterns: reslice-then-append reuses a
// preallocated buffer, and panic arguments are failure-path-only.
//
//sparselint:hotpath
func hotClean(dst, src []float64) {
	if len(dst) < len(src) {
		panic(fmt.Sprintf("hot: dst too small: %d < %d", len(dst), len(src)))
	}
	out := dst[:0]
	for _, v := range src {
		out = append(out, 2*v)
	}
	_ = out
}

// hotSuppressed carries an explicit justification.
//
//sparselint:hotpath
func hotSuppressed(xs []int) []int {
	var out []int
	for _, x := range xs {
		//lint:ignore sparselint/hotpathalloc fixture: growth is amortized across the whole run
		out = append(out, x)
	}
	return out
}

// cold is not annotated: anything goes.
func cold(xs []int) string {
	var out []string
	for _, x := range xs {
		out = append(out, fmt.Sprint(x))
	}
	return fmt.Sprint(out)
}
