// Package server exercises sparselint/ctxfirst. It loads under the import
// path fixture/internal/server, which is in the analyzer's scope.
package server

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// Pool is an exported type whose methods form the package API.
type Pool struct{ wg sync.WaitGroup }

func Wait(name string, ctx context.Context) { // want `context.Context must be the first parameter of Wait`
	<-ctx.Done()
	_ = name
}

func (p *Pool) Drain() { // want `exported Drain can block but takes no context.Context`
	p.wg.Wait()
}

// Close is io.Closer-shaped and exempt even though it blocks.
func (p *Pool) Close() {
	p.wg.Wait()
}

// Handle derives its context from the request and is exempt.
func Handle(w http.ResponseWriter, r *http.Request) {
	time.Sleep(time.Millisecond)
	_ = w
}

// Run rebinds a nil ctx defensively (allowed) but then mints a fresh root
// context for a downstream call (flagged).
func Run(ctx context.Context, p *Pool) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return work(context.Background(), p) // want `Run already receives a ctx; propagate it instead of context.Background`
}

// work is unexported: the blocking rule applies to exported API only.
func work(ctx context.Context, p *Pool) error {
	p.wg.Wait()
	return ctx.Err()
}

// Runner is an exported contract; its methods obey the same position rule.
type Runner interface {
	Run(name string, ctx context.Context) error // want `context.Context must be the first parameter of interface method Run`
}

//lint:ignore sparselint/ctxfirst fixture: pre-context API frozen for wire compatibility
func Legacy(p *Pool) {
	p.wg.Wait()
}

// TryEnqueue's only channel operations sit in a select with a default, so it
// never blocks and needs no context.
func TryEnqueue(ch chan int, v int) bool {
	select {
	case ch <- v:
		return true
	default:
		return false
	}
}

// DrainPending blocks inside a non-blocking select's clause body (the Wait,
// not the comm op), so it is still flagged.
func DrainPending(p *Pool, ch chan int) { // want `exported DrainPending can block but takes no context.Context`
	select {
	case <-ch:
		p.wg.Wait()
	default:
	}
}
