// Package errflowfix exercises the errflow analyzer: error values must be
// checked on every path, never overwritten unchecked, discarded to the blank
// identifier, or dropped in statement/go/defer position. Loaded as
// fixture/internal/server so the serving-path scoping applies.
package errflowfix

import (
	"bufio"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
)

var errBoom = errors.New("boom")

func mightFail() error { return errBoom }

func parseish() (int, error) { return 0, errBoom }

// ---------------------------------------------------------------- positives

func uncheckedOnOnePath(flag bool) {
	err := mightFail() // want `error assigned to err may reach a return without being checked`
	if flag {
		if err != nil {
			println("failed")
		}
	}
}

func overwritten() error {
	err := mightFail()
	err = mightFail() // want `err is overwritten before the error assigned at line \d+ is checked`
	return err
}

func discarded() {
	_ = mightFail() // want `error result of mightFail is discarded; handle it or suppress with a reason`
}

func tupleDiscard() int {
	n, _ := parseish() // want `error result of parseish is discarded; handle it or suppress with a reason`
	return n
}

func dropped() {
	mightFail() // want `error result of mightFail is dropped in statement position; check it`
}

func droppedGo() {
	go mightFail() // want `error result of mightFail is dropped in go statement position; check it`
}

func droppedDefer(w *bufio.Writer) {
	defer w.Flush() // want `error result of w\.Flush is dropped in defer position; check it`
}

// ---------------------------------------------------------------- negatives

func checked() error {
	err := mightFail()
	if err != nil {
		return err
	}
	return nil
}

// deferWrap observes err from a closure: the deferred error-wrapper idiom
// counts as a check.
func deferWrap() (res error) {
	err := mightFail()
	defer func() {
		if err != nil {
			res = err
		}
	}()
	return nil
}

// namedResult assigns to a named error result: that is the function's
// answer, implicitly returned, not an unchecked obligation.
func namedResult() (err error) {
	err = mightFail()
	return
}

func passedAlong() {
	err := mightFail()
	report(err)
}

func report(err error) {
	if err != nil {
		println("reported:", err.Error())
	}
}

func closeExempt(f *os.File) {
	defer f.Close()
}

func printExempt() {
	fmt.Println("ok")
}

func hashExempt(data []byte) uint64 {
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64()
}

func suppressedDrop() {
	//lint:ignore sparselint/errflow fixture exercises the suppression path
	mightFail()
}
