// Package deque exercises sparselint/dequeowner: sparselint:owner methods
// may only be called from code reachable from a sparselint:ownerloop root.
package deque

type queue struct{ xs []int }

// Push adds v at the owner end.
//
//sparselint:owner
func (q *queue) Push(v int) { q.xs = append(q.xs, v) }

// Pop removes the owner-end element.
//
//sparselint:owner
func (q *queue) Pop() (int, bool) {
	if len(q.xs) == 0 {
		return 0, false
	}
	v := q.xs[len(q.xs)-1]
	q.xs = q.xs[:len(q.xs)-1]
	return v, true
}

// loop is the owning worker loop.
//
//sparselint:ownerloop
func loop(q *queue) {
	for {
		v, ok := q.Pop()
		if !ok {
			return
		}
		process(q, v)
	}
}

// process is reachable from loop, so its Push is legal.
func process(q *queue, v int) {
	if v%2 == 0 {
		q.Push(v / 2)
	}
}

// outsider is not reachable from any owner loop.
func outsider(q *queue) {
	q.Push(1)                 // want `Push is owner-only`
	if v, ok := q.Pop(); ok { // want `Pop is owner-only`
		_ = v
	}
}

// seed runs before the loop starts, which the analyzer cannot see; the
// suppression records the protocol argument.
func seed(q *queue) {
	//lint:ignore sparselint/dequeowner fixture: seeding happens before the owner loop starts
	q.Push(0)
}

var _ = []any{outsider, seed, loop}
