// Package lint implements sparselint, the repo-specific static-analysis
// pass. It turns the discipline rules the sparse-solver stack only enforced
// by convention — zero-allocation hot paths, lock hygiene in the scheduler
// and serving layer, deque ownership, context propagation, and deterministic
// task bodies — into machine-checked gates (see cmd/sparselint and `make
// lint`).
//
// The driver is stdlib-only: packages are parsed with go/parser and
// type-checked with go/types using the `source` importer, no x/tools. Each
// analyzer walks the typed ASTs of the whole module at once, so
// whole-program rules (deque ownership reachability) see every call site.
//
// # Annotations
//
//	// sparselint:hotpath   — function must not contain heap-escaping
//	//                        constructs (hotpathalloc)
//	// sparselint:owner     — method may only be called from functions
//	//                        reachable from an owner loop (dequeowner)
//	// sparselint:ownerloop — function is an owning worker loop: the root
//	//                        set for dequeowner reachability
//
// # Suppression
//
// A finding is suppressed by a directive on the same line or the line
// directly above it:
//
//	//lint:ignore sparselint/<analyzer> <reason>
//
// The reason is mandatory; a directive without one is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"position"`
	Message  string         `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (sparselint/%s)", f.Pos, f.Message, f.Analyzer)
}

// Analyzer is one named check run over a whole loaded program.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(pass *Pass)
}

// Pass gives an analyzer access to the loaded program and a reporting sink.
type Pass struct {
	Prog     *Program
	analyzer *Analyzer
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.analyzer.Name,
		Pos:      p.Prog.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full sparselint analyzer set.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		hotpathAllocAnalyzer(),
		lockDisciplineAnalyzer(),
		dequeOwnerAnalyzer(),
		ctxFirstAnalyzer(),
		determinismAnalyzer(),
	}
}

// AnalyzerByName resolves one analyzer, for the fixture tests.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run executes the analyzers over prog, applies //lint:ignore suppressions,
// and returns the surviving findings sorted by position.
func Run(prog *Program, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, a := range analyzers {
		a.Run(&Pass{Prog: prog, analyzer: a, findings: &findings})
	}
	sup, malformed := collectSuppressions(prog, analyzers)
	findings = append(findings, malformed...)
	kept := findings[:0]
	for _, f := range findings {
		if !sup.matches(f) {
			kept = append(kept, f)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept
}

// ----------------------------------------------------------- suppressions

var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+(\S+)(.*)$`)

type suppressionKey struct {
	file     string
	line     int
	analyzer string
}

type suppressions map[suppressionKey]bool

// matches reports whether f is covered by a directive on its own line or the
// line directly above.
func (s suppressions) matches(f Finding) bool {
	return s[suppressionKey{f.Pos.Filename, f.Pos.Line, f.Analyzer}] ||
		s[suppressionKey{f.Pos.Filename, f.Pos.Line - 1, f.Analyzer}]
}

// collectSuppressions scans every comment for //lint:ignore directives.
// Malformed directives (wrong target, missing reason) come back as findings
// so a typo cannot silently disable a gate.
func collectSuppressions(prog *Program, analyzers []*Analyzer) (suppressions, []Finding) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	sup := make(suppressions)
	var malformed []Finding
	bad := func(pos token.Pos, format string, args ...any) {
		malformed = append(malformed, Finding{
			Analyzer: "directive",
			Pos:      prog.Fset.Position(pos),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					m := ignoreRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					target, reason := m[1], strings.TrimSpace(m[2])
					name, ok := strings.CutPrefix(target, "sparselint/")
					if !ok || !known[name] {
						bad(c.Pos(), "lint:ignore target %q is not a sparselint analyzer", target)
						continue
					}
					if reason == "" {
						bad(c.Pos(), "lint:ignore sparselint/%s needs a reason", name)
						continue
					}
					p := prog.Fset.Position(c.Pos())
					sup[suppressionKey{p.Filename, p.Line, name}] = true
				}
			}
		}
	}
	return sup, malformed
}

// ------------------------------------------------------------ annotations

// hasAnnotation reports whether doc carries the `sparselint:<tag>` marker.
func hasAnnotation(doc *ast.CommentGroup, tag string) bool {
	if doc == nil {
		return false
	}
	want := "sparselint:" + tag
	for _, c := range doc.List {
		for _, f := range strings.Fields(c.Text) {
			if f == want {
				return true
			}
		}
	}
	return false
}
