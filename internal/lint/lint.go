// Package lint implements sparselint, the repo-specific static-analysis
// pass. It turns the discipline rules the sparse-solver stack only enforced
// by convention — zero-allocation hot paths, lock hygiene in the scheduler
// and serving layer, deque ownership, context propagation, and deterministic
// task bodies — into machine-checked gates (see cmd/sparselint and `make
// lint`).
//
// The driver is stdlib-only: packages are parsed with go/parser and
// type-checked with go/types using the `source` importer, no x/tools. Each
// analyzer walks the typed ASTs of the whole module at once, so
// whole-program rules (deque ownership reachability) see every call site.
//
// # Annotations
//
// Annotations are Go directive comments (no space after //, one per line)
// in a function's doc comment:
//
//	//sparselint:hotpath          — function must not contain heap-escaping
//	//                              constructs; the obligation propagates over
//	//                              the call graph (hotpathalloc, bce)
//	//sparselint:coldcall <reason> — reachable from hot code by design, e.g.
//	//                              a grow or error path; stops hot-path
//	//                              propagation, must be called conditionally
//	//sparselint:owner            — method may only be called from functions
//	//                              reachable from an owner loop (dequeowner)
//	//sparselint:ownerloop        — function is an owning worker loop: the
//	//                              root set for dequeowner reachability
//	//sparselint:validator        — function is a sanctioned admission check:
//	//                              ingress fields it upper-bounds (or
//	//                              switch-validates) are clean module-wide
//	//                              for the taint analyzer
//
// # Suppression
//
// A finding is suppressed by a directive on the same line or the line
// directly above it:
//
//	//lint:ignore sparselint/<analyzer> <reason>
//
// The reason is mandatory; a directive without one is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"position"`
	Message  string         `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (sparselint/%s)", f.Pos, f.Message, f.Analyzer)
}

// Analyzer is one named check run over a whole loaded program.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(pass *Pass)
}

// Pass gives an analyzer access to the loaded program, the shared
// whole-module call graph, and a reporting sink.
type Pass struct {
	Prog     *Program
	Graph    *CallGraph
	analyzer *Analyzer
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.analyzer.Name,
		Pos:      p.Prog.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full sparselint analyzer set.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		hotpathAllocAnalyzer(),
		lockDisciplineAnalyzer(),
		dequeOwnerAnalyzer(),
		ctxFirstAnalyzer(),
		determinismAnalyzer(),
		atomicFieldAnalyzer(),
		goleakAnalyzer(),
		bceAnalyzer(),
		taintAnalyzer(),
		errflowAnalyzer(),
	}
}

// AnalyzerByName resolves one analyzer, for the fixture tests.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// AnalyzerStat is one analyzer's slice of a run: surviving finding count and
// wall time. It is part of the stable machine-readable report schema.
type AnalyzerStat struct {
	Name     string  `json:"name"`
	Findings int     `json:"findings"`
	WallMS   float64 `json:"wall_ms"`
}

// Report is the machine-readable result of a sparselint run (the lint.sh
// lint-report.json artifact). Version guards schema evolution: consumers
// must reject versions they do not know.
type Report struct {
	Version   int            `json:"version"`
	Total     int            `json:"total"`
	Analyzers []AnalyzerStat `json:"analyzers"`
	Findings  []Finding      `json:"findings"`
}

// ReportVersion is the current Report schema version. Version 2 added the
// taint and errflow analyzers to the stats block.
const ReportVersion = 2

// Run executes the analyzers over prog, applies //lint:ignore suppressions,
// and returns the surviving findings sorted by position.
func Run(prog *Program, analyzers []*Analyzer) []Finding {
	findings, _ := RunStats(prog, analyzers)
	return findings
}

// lintWorkers is the bounded pool size for the parallel phases (package
// parsing, analyzer execution).
func lintWorkers() int {
	n := runtime.NumCPU()
	if n < 1 {
		return 1
	}
	if n > 8 {
		return 8
	}
	return n
}

// RunStats is Run plus per-analyzer surviving-finding counts and wall times
// (in analyzer order, with a trailing "directive" entry for the suppression
// machinery's own findings). Analyzers run concurrently on a bounded worker
// pool — the typed ASTs and call graph are read-only by contract — and each
// writes to its own finding slice; concatenation in registration order plus
// the final position sort keep the output byte-identical to a serial run.
func RunStats(prog *Program, analyzers []*Analyzer) ([]Finding, []AnalyzerStat) {
	graph := BuildCallGraph(prog)
	perAnalyzer := make([][]Finding, len(analyzers))
	walls := make([]float64, len(analyzers))
	sem := make(chan struct{}, lintWorkers())
	var wg sync.WaitGroup
	for i, a := range analyzers {
		wg.Add(1)
		go func(i int, a *Analyzer) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			a.Run(&Pass{Prog: prog, Graph: graph, analyzer: a, findings: &perAnalyzer[i]})
			walls[i] = float64(time.Since(start)) / float64(time.Millisecond)
		}(i, a)
	}
	wg.Wait()
	var findings []Finding
	stats := make([]AnalyzerStat, 0, len(analyzers)+1)
	for i, a := range analyzers {
		findings = append(findings, perAnalyzer[i]...)
		stats = append(stats, AnalyzerStat{
			Name:     a.Name,
			Findings: len(perAnalyzer[i]),
			WallMS:   walls[i],
		})
	}
	sup, malformed := collectSuppressions(prog)
	kept := findings[:0]
	for _, f := range findings {
		if s := sup.matches(f); s != nil {
			s.used = true
			for i := range stats {
				if stats[i].Name == f.Analyzer {
					stats[i].Findings--
				}
			}
		} else {
			kept = append(kept, f)
		}
	}
	kept = append(kept, malformed...)
	// A directive that suppresses nothing is stale: the finding it once
	// covered moved or was fixed, and a dormant ignore is a hole waiting for
	// the next real finding on that line. Only directives naming an analyzer
	// that actually ran are judged — a partial -analyzer run cannot see what
	// the full set suppresses.
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	for _, s := range sup.ordered() {
		if !s.used && ran[s.analyzer] {
			kept = append(kept, Finding{
				Analyzer: "directive",
				Pos:      s.pos,
				Message:  fmt.Sprintf("lint:ignore sparselint/%s suppresses nothing; remove the stale directive", s.analyzer),
			})
		}
	}
	dirCount := 0
	for _, f := range kept {
		if f.Analyzer == "directive" {
			dirCount++
		}
	}
	stats = append(stats, AnalyzerStat{Name: "directive", Findings: dirCount})
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept, stats
}

// ----------------------------------------------------------- suppressions

var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+(\S+)(.*)$`)

type suppressionKey struct {
	file     string
	line     int
	analyzer string
}

// suppression is one well-formed //lint:ignore directive; used flips when it
// actually swallows a finding, so stale directives can be reported.
type suppression struct {
	analyzer string
	pos      token.Position
	used     bool
}

type suppressions map[suppressionKey]*suppression

// matches returns the directive covering f — on f's own line or the line
// directly above — or nil.
func (s suppressions) matches(f Finding) *suppression {
	if d := s[suppressionKey{f.Pos.Filename, f.Pos.Line, f.Analyzer}]; d != nil {
		return d
	}
	return s[suppressionKey{f.Pos.Filename, f.Pos.Line - 1, f.Analyzer}]
}

// ordered returns the directives sorted by position for deterministic stale
// reporting.
func (s suppressions) ordered() []*suppression {
	out := make([]*suppression, 0, len(s))
	for _, d := range s {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].pos.Filename != out[j].pos.Filename {
			return out[i].pos.Filename < out[j].pos.Filename
		}
		return out[i].pos.Line < out[j].pos.Line
	})
	return out
}

// collectSuppressions scans every comment for //lint:ignore directives.
// Malformed directives (wrong target, missing reason) come back as findings
// so a typo cannot silently disable a gate. Validity is judged against the
// full analyzer set, not the analyzers of this run, so a filtered -analyzer
// run does not misreport directives for the analyzers it skipped.
func collectSuppressions(prog *Program) (suppressions, []Finding) {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	sup := make(suppressions)
	var malformed []Finding
	bad := func(pos token.Pos, format string, args ...any) {
		malformed = append(malformed, Finding{
			Analyzer: "directive",
			Pos:      prog.Fset.Position(pos),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					m := ignoreRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					target, reason := m[1], strings.TrimSpace(m[2])
					name, ok := strings.CutPrefix(target, "sparselint/")
					if !ok || !known[name] {
						bad(c.Pos(), "lint:ignore target %q is not a sparselint analyzer", target)
						continue
					}
					if reason == "" {
						bad(c.Pos(), "lint:ignore sparselint/%s needs a reason", name)
						continue
					}
					p := prog.Fset.Position(c.Pos())
					d := &suppression{analyzer: name, pos: p}
					sup[suppressionKey{p.Filename, p.Line, name}] = d
				}
			}
		}
	}
	return sup, malformed
}

// ------------------------------------------------------------ annotations

// annotationArg returns the argument text of a `//sparselint:<tag>`
// directive in doc (the coldcall reason), and whether the directive is
// present at all. Annotations are Go directive comments — no space after
// `//`, one directive per line — so prose that merely mentions an
// annotation can never activate it.
func annotationArg(doc *ast.CommentGroup, tag string) (string, bool) {
	if doc == nil {
		return "", false
	}
	prefix := "//sparselint:" + tag
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, prefix)
		if !ok {
			continue
		}
		if rest == "" {
			return "", true
		}
		if rest[0] == ' ' || rest[0] == '\t' {
			return strings.TrimSpace(rest), true
		}
		// A longer tag with this one as a prefix: not a match.
	}
	return "", false
}

// hasAnnotation reports whether doc carries the `//sparselint:<tag>`
// directive.
func hasAnnotation(doc *ast.CommentGroup, tag string) bool {
	_, ok := annotationArg(doc, tag)
	return ok
}
