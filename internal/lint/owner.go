package lint

import (
	"go/types"
)

// dequeOwnerAnalyzer enforces single-owner access to work-stealing deques:
// methods annotated `// sparselint:owner` (Deque.Push/Pop — the owner-only
// end of the Chase–Lev deque) may only be called from functions statically
// reachable from a `// sparselint:ownerloop` root (the scheduler's worker
// loop). Everything else must go through Steal or be suppressed with an
// explicit justification (e.g. seeding roots before the workers start).
//
// Reachability runs over the shared whole-module call graph, so owner
// status flows through interface dispatch and function values the same way
// hot-path obligations do. Func literal bodies are attributed to the
// enclosing declaration: a closure runs with its creator's ownership.
func dequeOwnerAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "dequeowner",
		Doc:  "sparselint:owner methods called only from sparselint:ownerloop reachable code",
	}
	a.Run = func(pass *Pass) {
		g := pass.Graph
		owners := make(map[*types.Func]bool)
		var roots []*types.Func
		for _, f := range g.Funcs() {
			decl, _ := g.DeclOf(f)
			if hasAnnotation(decl.Doc, "owner") {
				owners[f] = true
			}
			if hasAnnotation(decl.Doc, "ownerloop") {
				roots = append(roots, f)
			}
		}
		if len(owners) == 0 {
			return
		}
		reachable, _ := g.ReachableFrom(roots, nil)

		for _, caller := range g.Funcs() {
			if reachable[caller] || owners[caller] {
				continue
			}
			for _, e := range g.EdgesFrom(caller) {
				if !owners[e.Callee] || e.Kind == CallInterface {
					continue
				}
				pass.Reportf(e.Site, "%s is owner-only (sparselint:owner) but %s is not reachable from any sparselint:ownerloop",
					e.Callee.FullName(), caller.FullName())
			}
		}
	}
	return a
}
