package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// dequeOwnerAnalyzer enforces single-owner access to work-stealing deques:
// methods annotated `// sparselint:owner` (Deque.Push/Pop — the owner-only
// end of the Chase–Lev deque) may only be called from functions statically
// reachable from a `// sparselint:ownerloop` root (the scheduler's worker
// loop). Everything else must go through Steal or be suppressed with an
// explicit justification (e.g. seeding roots before the workers start).
func dequeOwnerAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "dequeowner",
		Doc:  "sparselint:owner methods called only from sparselint:ownerloop reachable code",
	}
	a.Run = func(pass *Pass) {
		owners := make(map[*types.Func]bool)
		roots := make(map[*types.Func]bool)
		edges := make(map[*types.Func][]*types.Func)
		type callSite struct {
			pos    token.Pos
			caller *types.Func
			callee *types.Func
		}
		var sites []callSite

		for _, pkg := range pass.Prog.Pkgs {
			for _, file := range pkg.Files {
				for _, decl := range file.Decls {
					fn, ok := decl.(*ast.FuncDecl)
					if !ok {
						continue
					}
					def, _ := pkg.Info.Defs[fn.Name].(*types.Func)
					if def == nil {
						continue
					}
					if hasAnnotation(fn.Doc, "owner") {
						owners[def] = true
					}
					if hasAnnotation(fn.Doc, "ownerloop") {
						roots[def] = true
					}
					if fn.Body == nil {
						continue
					}
					// Func literal bodies are attributed to the enclosing
					// declaration: a closure runs with its creator's ownership.
					ast.Inspect(fn.Body, func(n ast.Node) bool {
						call, ok := n.(*ast.CallExpr)
						if !ok {
							return true
						}
						callee := calleeFunc(pkg.Info, call)
						if callee == nil {
							return true
						}
						edges[def] = append(edges[def], callee)
						sites = append(sites, callSite{call.Pos(), def, callee})
						return true
					})
				}
			}
		}
		if len(owners) == 0 {
			return
		}

		reachable := make(map[*types.Func]bool)
		var queue []*types.Func
		for r := range roots {
			reachable[r] = true
			queue = append(queue, r)
		}
		sort.Slice(queue, func(i, j int) bool { return queue[i].FullName() < queue[j].FullName() })
		for len(queue) > 0 {
			f := queue[0]
			queue = queue[1:]
			for _, next := range edges[f] {
				if !reachable[next] {
					reachable[next] = true
					queue = append(queue, next)
				}
			}
		}

		for _, s := range sites {
			if !owners[s.callee] {
				continue
			}
			if reachable[s.caller] || owners[s.caller] {
				continue
			}
			pass.Reportf(s.pos, "%s is owner-only (sparselint:owner) but %s is not reachable from any sparselint:ownerloop",
				s.callee.FullName(), s.caller.FullName())
		}
	}
	return a
}
