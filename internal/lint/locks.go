package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockDisciplineAnalyzer enforces mutex hygiene everywhere: every Lock/RLock
// must be matched by an Unlock (or defer Unlock) on every path out of the
// same function, sync primitives must not be copied by value, and no
// blocking operation (channel send/receive, blocking select, time.Sleep,
// WaitGroup.Wait) may run while a lock is held. sync.Cond.Wait is allowed —
// it releases the mutex while parked — and a select with a default clause is
// non-blocking by construction (the sched inbox and server admission-queue
// pattern).
func lockDisciplineAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "lockdiscipline",
		Doc:  "locks released on all paths, no copies, no blocking while held",
	}
	a.Run = func(pass *Pass) {
		for _, pkg := range pass.Prog.Pkgs {
			for _, file := range pkg.Files {
				for _, decl := range file.Decls {
					fn, ok := decl.(*ast.FuncDecl)
					if !ok {
						continue
					}
					checkLockCopies(pass, pkg, fn)
					if fn.Body == nil {
						continue
					}
					lc := &lockChecker{pass: pass, info: pkg.Info}
					lc.checkFunc(fn.Body)
					// Func literals are their own scopes: a closure must
					// balance the locks it takes itself.
					ast.Inspect(fn.Body, func(n ast.Node) bool {
						if lit, ok := n.(*ast.FuncLit); ok {
							lc.checkFunc(lit.Body)
						}
						return true
					})
				}
			}
		}
	}
	return a
}

type lockChecker struct {
	pass *Pass
	info *types.Info
}

// lockState tracks the locks a path currently holds. held locks need an
// explicit Unlock before every return; deferred locks are released at
// return by a `defer Unlock` but are still physically held, so blocking
// operations remain forbidden while they are set.
type lockState struct {
	held     map[string]token.Pos // lock key -> Lock call position
	deferred map[string]token.Pos
}

func newLockState() *lockState {
	return &lockState{held: map[string]token.Pos{}, deferred: map[string]token.Pos{}}
}

func (st *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range st.held {
		c.held[k] = v
	}
	for k, v := range st.deferred {
		c.deferred[k] = v
	}
	return c
}

func (st *lockState) replaceWith(o *lockState) {
	clear(st.held)
	clear(st.deferred)
	for k, v := range o.held {
		st.held[k] = v
	}
	for k, v := range o.deferred {
		st.deferred[k] = v
	}
}

// union folds o in, keeping the union of held/deferred locks (conservative
// for "missing Unlock" reporting when branches diverge).
func (st *lockState) union(o *lockState) {
	for k, v := range o.held {
		if _, ok := st.held[k]; !ok {
			st.held[k] = v
		}
	}
	for k, v := range o.deferred {
		if _, ok := st.deferred[k]; !ok {
			st.deferred[k] = v
		}
	}
}

// anyHeld names one lock that is physically held (held or deferred), for
// blocking-operation diagnostics. Empty when nothing is held.
func (st *lockState) anyHeld() string {
	keys := make([]string, 0, len(st.held)+len(st.deferred))
	for k := range st.held {
		keys = append(keys, k)
	}
	for k := range st.deferred {
		keys = append(keys, k)
	}
	if len(keys) == 0 {
		return ""
	}
	sort.Strings(keys)
	return keys[0]
}

// anyUnreleased names one lock with no Unlock scheduled on this path.
func (st *lockState) anyUnreleased() string {
	keys := make([]string, 0, len(st.held))
	for k := range st.held {
		keys = append(keys, k)
	}
	if len(keys) == 0 {
		return ""
	}
	sort.Strings(keys)
	return keys[0]
}

// mutexOp classifies call as a sync.Mutex/RWMutex operation.
func (lc *lockChecker) mutexOp(call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch funcFullName(calleeFunc(lc.info, call)) {
	case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock":
		return types.ExprString(sel.X), "lock", true
	case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock":
		return types.ExprString(sel.X), "unlock", true
	case "(*sync.RWMutex).RLock":
		return types.ExprString(sel.X) + ":r", "lock", true
	case "(*sync.RWMutex).RUnlock":
		return types.ExprString(sel.X) + ":r", "unlock", true
	}
	return "", "", false
}

// checkFunc runs the path-sensitive held-lock walk over one function body.
func (lc *lockChecker) checkFunc(body *ast.BlockStmt) {
	st := newLockState()
	terminated := lc.stmts(body.List, st)
	if !terminated {
		for key, pos := range st.held {
			lc.pass.Reportf(pos, "%s is locked here but not released on every path out of the function", key)
		}
	}
}

// stmts walks a statement list, tracking held locks. It returns true when
// the list always terminates (return/branch) before falling off the end.
func (lc *lockChecker) stmts(list []ast.Stmt, st *lockState) bool {
	for _, s := range list {
		if lc.stmt(s, st) {
			return true
		}
	}
	return false
}

func (lc *lockChecker) stmt(s ast.Stmt, st *lockState) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, op, ok := lc.mutexOp(call); ok {
				if op == "lock" {
					lc.checkReacquire(call.Pos(), key, st)
					st.held[key] = call.Pos()
				} else {
					delete(st.held, key)
					delete(st.deferred, key)
				}
				return false
			}
		}
		lc.exprScan(s.X, st)
	case *ast.DeferStmt:
		if key, op, ok := lc.mutexOp(s.Call); ok && op == "unlock" {
			if pos, held := st.held[key]; held {
				st.deferred[key] = pos
			}
			delete(st.held, key)
			return false
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// defer func() { ...; mu.Unlock(); ... }() releases at return.
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if key, op, ok := lc.mutexOp(call); ok && op == "unlock" {
						if pos, held := st.held[key]; held {
							st.deferred[key] = pos
						}
						delete(st.held, key)
					}
				}
				return true
			})
		}
		for _, arg := range s.Call.Args {
			lc.exprScan(arg, st)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			lc.exprScan(r, st)
		}
		if key := st.anyUnreleased(); key != "" {
			lc.pass.Reportf(s.Pos(), "return while holding %s; this path is missing an Unlock", key)
		}
		return true
	case *ast.BranchStmt:
		// break/continue/goto leave this list; the loop-level analysis is
		// approximate, so just stop here.
		return true
	case *ast.BlockStmt:
		return lc.stmts(s.List, st)
	case *ast.LabeledStmt:
		return lc.stmt(s.Stmt, st)
	case *ast.IfStmt:
		if s.Init != nil {
			lc.stmt(s.Init, st)
		}
		lc.exprScan(s.Cond, st)
		thenSt := st.clone()
		tThen := lc.stmts(s.Body.List, thenSt)
		if s.Else != nil {
			elseSt := st.clone()
			tElse := lc.stmt(s.Else, elseSt)
			switch {
			case tThen && tElse:
				return true
			case tThen:
				st.replaceWith(elseSt)
			case tElse:
				st.replaceWith(thenSt)
			default:
				thenSt.union(elseSt)
				st.replaceWith(thenSt)
			}
			return false
		}
		if !tThen {
			st.union(thenSt)
		}
		return false
	case *ast.ForStmt:
		if s.Init != nil {
			lc.stmt(s.Init, st)
		}
		if s.Cond != nil {
			lc.exprScan(s.Cond, st)
		}
		body := st.clone()
		lc.stmts(s.Body.List, body)
		if s.Post != nil {
			lc.stmt(s.Post, body)
		}
		// The loop may run zero times; continue with the pre-loop state.
		// Exception: `for { ... }` with no condition never falls through —
		// when the body has no break, the statement after the loop is
		// unreachable.
		if s.Cond == nil && !forBodyBreaks(s.Body) {
			return true
		}
	case *ast.RangeStmt:
		lc.exprScan(s.X, st)
		body := st.clone()
		lc.stmts(s.Body.List, body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			lc.stmt(s.Init, st)
		}
		if s.Tag != nil {
			lc.exprScan(s.Tag, st)
		}
		return lc.caseClauses(s.Body, st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			lc.stmt(s.Init, st)
		}
		return lc.caseClauses(s.Body, st)
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			if key := st.anyHeld(); key != "" {
				lc.pass.Reportf(s.Pos(), "select with no default may block while holding %s", key)
			}
		}
		// The comm operations are non-blocking once the select fires (or
		// guarded by default); only walk the clause bodies.
		allTerm := true
		var merged *lockState
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			branch := st.clone()
			if !lc.stmts(cc.Body, branch) {
				allTerm = false
				if merged == nil {
					merged = branch
				} else {
					merged.union(branch)
				}
			}
		}
		if allTerm && len(s.Body.List) > 0 {
			return true
		}
		if merged != nil {
			st.replaceWith(merged)
		}
	case *ast.SendStmt:
		if key := st.anyHeld(); key != "" {
			lc.pass.Reportf(s.Pos(), "channel send while holding %s may block with the lock held", key)
		}
		lc.exprScan(s.Chan, st)
		lc.exprScan(s.Value, st)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			lc.exprScan(e, st)
		}
		for _, e := range s.Lhs {
			lc.exprScan(e, st)
		}
	case *ast.GoStmt:
		for _, arg := range s.Call.Args {
			lc.exprScan(arg, st)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						lc.exprScan(v, st)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		lc.exprScan(s.X, st)
	}
	return false
}

// checkReacquire flags taking a lock that this path already physically
// holds: Go's mutexes are not reentrant, so a second Lock — including the
// RLock→Lock upgrade and its Lock→RLock mirror — parks the goroutine on
// itself. The legal upgrade is RUnlock first, Lock, revalidate.
func (lc *lockChecker) checkReacquire(pos token.Pos, key string, st *lockState) {
	holds := func(k string) bool {
		_, h := st.held[k]
		if !h {
			_, h = st.deferred[k]
		}
		return h
	}
	base, isRead := strings.CutSuffix(key, ":r")
	switch {
	case holds(key) && isRead:
		lc.pass.Reportf(pos, "recursive RLock on %s can deadlock against a queued writer; RWMutex read locks must not nest", base)
	case holds(key):
		lc.pass.Reportf(pos, "%s is already locked on this path; Go mutexes are not reentrant, a second Lock self-deadlocks", key)
	case isRead && holds(base):
		lc.pass.Reportf(pos, "RLock on %s while its write lock is held self-deadlocks", base)
	case !isRead && holds(key+":r"):
		lc.pass.Reportf(pos, "upgrading %s from RLock to Lock self-deadlocks; RUnlock first, then Lock and revalidate", key)
	}
}

// caseClauses merges the branches of a switch body; terminated only when
// every case terminates and a default exists (otherwise the switch can fall
// through with no case taken).
func (lc *lockChecker) caseClauses(body *ast.BlockStmt, st *lockState) bool {
	hasDefault := false
	allTerm := true
	var merged *lockState
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			lc.exprScan(e, st)
		}
		branch := st.clone()
		if !lc.stmts(cc.Body, branch) {
			allTerm = false
			if merged == nil {
				merged = branch
			} else {
				merged.union(branch)
			}
		}
	}
	if hasDefault && allTerm && len(body.List) > 0 {
		return true
	}
	if merged != nil {
		if !hasDefault {
			merged.union(st)
		}
		st.replaceWith(merged)
	}
	return false
}

// exprScan flags blocking operations buried in an expression (channel
// receives, time.Sleep, WaitGroup.Wait) while a lock is held. Func literals
// are skipped: they execute in their own context. sync.Cond.Wait is
// deliberately not flagged — it releases the mutex while parked.
func (lc *lockChecker) exprScan(e ast.Expr, st *lockState) {
	if e == nil {
		return
	}
	key := st.anyHeld()
	if key == "" {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				lc.pass.Reportf(n.Pos(), "channel receive while holding %s may block with the lock held", key)
			}
		case *ast.CallExpr:
			switch funcFullName(calleeFunc(lc.info, n)) {
			case "time.Sleep", "(*sync.WaitGroup).Wait":
				lc.pass.Reportf(n.Pos(), "blocking call while holding %s", key)
			}
		}
		return true
	})
}

// forBodyBreaks reports whether a for body contains a break binding to this
// loop.
func forBodyBreaks(body *ast.BlockStmt) bool {
	breaks := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BranchStmt:
			if n.Tok == token.BREAK {
				breaks = true
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			// break inside these binds to them, not to our loop.
			return false
		case *ast.FuncLit:
			return false
		}
		return true
	})
	return breaks
}

// checkLockCopies flags sync primitives copied by value: by-value receivers,
// parameters, and results; range copies; and plain assignments from a
// dereference/field/element.
func checkLockCopies(pass *Pass, pkg *Package, fn *ast.FuncDecl) {
	info := pkg.Info
	checkField := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			t := info.TypeOf(f.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.(*types.Pointer); !isPtr && containsLock(t) {
				pass.Reportf(f.Type.Pos(), "%s copies %s, which contains a sync primitive; use a pointer", what, t)
			}
		}
	}
	checkField(fn.Recv, "receiver")
	checkField(fn.Type.Params, "parameter")
	checkField(fn.Type.Results, "result")
	if fn.Body == nil {
		return
	}
	copyKind := func(e ast.Expr) bool {
		switch ast.Unparen(e).(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			return true
		}
		return false
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if v, ok := n.Value.(*ast.Ident); ok {
				if t := info.TypeOf(v); t != nil {
					if _, isPtr := t.(*types.Pointer); !isPtr && containsLock(t) {
						pass.Reportf(v.Pos(), "range copies %s, which contains a sync primitive; iterate by index", t)
					}
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
					continue // discarded, nothing is stored
				}
				if !copyKind(rhs) {
					continue
				}
				t := info.TypeOf(rhs)
				if t == nil {
					continue
				}
				if _, isPtr := t.(*types.Pointer); !isPtr && containsLock(t) {
					pass.Reportf(rhs.Pos(), "assignment copies %s, which contains a sync primitive", t)
				}
			}
		}
		return true
	})
}
