package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The errflow analyzer requires error values in the serving layer and the
// command-line tools to be checked on every path. It runs the dataflow
// engine path-sensitively per function: an error-typed local assigned from a
// call carries an "unchecked" obligation that any read — a condition, a
// return, an argument, a closure capture — discharges; the obligation
// survives CFG joins pessimistically, so an error checked on only one branch
// is still a finding.
//
// Reported shapes:
//   - assigned-then-overwritten: `err = f(); err = g()` with no read between;
//   - unchecked at exit: an obligation alive on some path to a return;
//   - `_`-discarded: an error result assigned to the blank identifier;
//   - dropped in statement, go, or defer position: a call whose error result
//     nobody receives.
//
// Exemptions (the Go idioms that would otherwise force suppressions
// everywhere): zero-argument Close (deferred response-body/file cleanup),
// the fmt print family (best-effort console output; buffered writers
// surface errors at Flush), and writers that are documented never to fail
// (bytes.Buffer, strings.Builder, hash.Hash).

var errflowScope = []string{"internal/server", "internal/route", "cmd"}

// errflowDropExempt lists full-name prefixes of callees whose dropped error
// results are sanctioned.
var errflowDropExempt = []string{
	"fmt.Print",
	"fmt.Fprint",
	"(*bytes.Buffer).",
	"(*strings.Builder).",
	"(hash.",
}

func errflowAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "errflow",
		Doc:  "error values in server/route/cmd must be checked on all paths, not overwritten, discarded, or dropped",
	}
	a.Run = runErrflow
	return a
}

func runErrflow(pass *Pass) {
	for _, pkg := range pass.Prog.Pkgs {
		if !pathInScope(pkg.Path, errflowScope) {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
					checkErrflowBody(pass, pkg, fn.Type, fn.Body)
				}
			}
			ast.Inspect(file, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkErrflowBody(pass, pkg, lit.Type, lit.Body)
				}
				return true
			})
		}
	}
}

func checkErrflowBody(pass *Pass, pkg *Package, ftype *ast.FuncType, body *ast.BlockStmt) {
	fl := &errflowFlow{pass: pass, info: pkg.Info, excluded: make(map[types.Object]bool)}
	// Named error results are implicitly returned: assignments to them are
	// the function's answer, not an unchecked obligation.
	if ftype != nil && ftype.Results != nil {
		for _, f := range ftype.Results.List {
			for _, name := range f.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					fl.excluded[obj] = true
				}
			}
		}
	}
	g := buildCFG(body)
	solved := solveForward(g, fl, newErrflowState())
	fl.report = true
	replayBlocks(g, fl, solved)

	// Obligations alive at exit were never checked on some path.
	exit, ok := solved[g.Exit]
	if !ok {
		return
	}
	st := exit.(*errflowState)
	type open struct {
		obj  types.Object
		fact errFact
	}
	var opens []open
	for obj, fact := range st.facts {
		if !fact.checked {
			opens = append(opens, open{obj, fact})
		}
	}
	sort.Slice(opens, func(i, j int) bool { return opens[i].fact.pos < opens[j].fact.pos })
	for _, o := range opens {
		pass.Reportf(o.fact.pos, "error assigned to %s may reach a return without being checked", o.obj.Name())
	}
}

// ---------------------------------------------------------------- state

type errFact struct {
	pos     token.Pos // assignment site
	checked bool
}

type errflowState struct {
	facts map[types.Object]errFact
}

func newErrflowState() *errflowState {
	return &errflowState{facts: make(map[types.Object]errFact)}
}

func (s *errflowState) clone() flowState {
	c := newErrflowState()
	for k, v := range s.facts {
		c.facts[k] = v
	}
	return c
}

func (s *errflowState) mergeFrom(other flowState) bool {
	o := other.(*errflowState)
	changed := false
	for obj, of := range o.facts {
		sf, ok := s.facts[obj]
		if !ok {
			s.facts[obj] = of
			changed = true
			continue
		}
		merged := errFact{pos: sf.pos, checked: sf.checked && of.checked}
		if of.pos < merged.pos {
			merged.pos = of.pos
		}
		if merged != sf {
			s.facts[obj] = merged
			changed = true
		}
	}
	return changed
}

// ---------------------------------------------------------------- transfer

type errflowFlow struct {
	pass     *Pass
	info     *types.Info
	excluded map[types.Object]bool
	report   bool
}

func (fl *errflowFlow) refine(st flowState, cond ast.Expr, negated bool) {}

func (fl *errflowFlow) transfer(st flowState, n ast.Node) {
	s := st.(*errflowState)
	switch n := n.(type) {
	case *ast.AssignStmt:
		fl.handleAssign(s, n)
	case *ast.DeclStmt:
		fl.handleDecl(s, n)
	case *ast.ExprStmt:
		fl.consume(s, n.X)
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
			fl.checkDrop(s, call, "statement")
		}
	case *ast.GoStmt:
		fl.consume(s, n.Call)
		fl.checkDrop(s, n.Call, "go statement")
	case *ast.DeferStmt:
		fl.consume(s, n.Call)
		fl.checkDrop(s, n.Call, "defer")
	case *ast.SendStmt:
		fl.consume(s, n.Chan)
		fl.consume(s, n.Value)
	case *ast.IncDecStmt:
		fl.consume(s, n.X)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			fl.consume(s, r)
		}
	case *rangeBind:
		fl.consume(s, n.Range.X)
	case *loopCond:
		fl.consume(s, n.Cond)
	case ast.Expr:
		fl.consume(s, n)
	}
}

// consume discharges the obligation of every tracked error a node reads.
// Func literal bodies are walked too: a closure observing err (a deferred
// error wrapper) counts as a check.
func (fl *errflowFlow) consume(s *errflowState, n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := fl.info.Uses[id]
		if obj == nil {
			return true
		}
		if fact, tracked := s.facts[obj]; tracked && !fact.checked {
			fact.checked = true
			s.facts[obj] = fact
		}
		return true
	})
}

func (fl *errflowFlow) handleAssign(s *errflowState, n *ast.AssignStmt) {
	for _, r := range n.Rhs {
		fl.consume(s, r)
	}
	for _, l := range n.Lhs {
		if _, isIdent := ast.Unparen(l).(*ast.Ident); !isIdent {
			fl.consume(s, l) // a[i] = x, s.f = x: the lvalue path is read
		}
	}

	multi := len(n.Lhs) > 1 && len(n.Rhs) == 1
	var multiCall *ast.CallExpr
	var multiSig *types.Signature
	if multi {
		if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
			multiCall = call
			multiSig = callSignature(fl.info, call)
		}
	}

	for i, l := range n.Lhs {
		id, ok := ast.Unparen(l).(*ast.Ident)
		if !ok {
			continue
		}
		var obligation bool
		var srcCall *ast.CallExpr
		var resultIsError bool
		if multi {
			srcCall = multiCall
			if multiSig != nil && i < multiSig.Results().Len() {
				resultIsError = isErrorType(multiSig.Results().At(i).Type())
			}
			obligation = srcCall != nil && resultIsError
		} else if i < len(n.Rhs) {
			if call, ok := ast.Unparen(n.Rhs[i]).(*ast.CallExpr); ok {
				srcCall = call
				if sig := callSignature(fl.info, call); sig != nil && sig.Results().Len() == 1 {
					resultIsError = isErrorType(sig.Results().At(0).Type())
				}
				obligation = resultIsError
			}
		}

		if id.Name == "_" {
			if fl.report && srcCall != nil && resultIsError && !dropExempt(fl.info, srcCall) {
				fl.pass.Reportf(n.Pos(), "error result of %s is discarded; handle it or suppress with a reason", callDisplay(srcCall))
			}
			continue
		}
		obj := fl.info.ObjectOf(id)
		if obj == nil || fl.excluded[obj] || !isErrorType(obj.Type()) {
			continue
		}
		if fact, tracked := s.facts[obj]; tracked && !fact.checked && obligation && fl.report {
			prev := fl.pass.Prog.Fset.Position(fact.pos)
			fl.pass.Reportf(id.Pos(), "%s is overwritten before the error assigned at line %d is checked", obj.Name(), prev.Line)
		}
		if obligation {
			s.facts[obj] = errFact{pos: id.Pos()}
		} else {
			delete(s.facts, obj)
		}
	}
}

func (fl *errflowFlow) handleDecl(s *errflowState, n *ast.DeclStmt) {
	gd, ok := n.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, v := range vs.Values {
			fl.consume(s, v)
		}
		if len(vs.Values) != len(vs.Names) {
			continue
		}
		for i, name := range vs.Names {
			obj := fl.info.Defs[name]
			if obj == nil || !isErrorType(obj.Type()) {
				continue
			}
			if _, ok := ast.Unparen(vs.Values[i]).(*ast.CallExpr); ok {
				s.facts[obj] = errFact{pos: name.Pos()}
			}
		}
	}
}

// checkDrop flags a statement/go/defer call whose error result nobody
// receives.
func (fl *errflowFlow) checkDrop(s *errflowState, call *ast.CallExpr, where string) {
	if !fl.report {
		return
	}
	if tv, ok := fl.info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	if isAnyBuiltin(fl.info, call) {
		return
	}
	sig := callSignature(fl.info, call)
	if sig == nil {
		return
	}
	hasErr := false
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			hasErr = true
		}
	}
	if !hasErr || dropExempt(fl.info, call) {
		return
	}
	fl.pass.Reportf(call.Pos(), "error result of %s is dropped in %s position; check it", callDisplay(call), where)
}

// ---------------------------------------------------------------- helpers

// callSignature resolves the signature of any call: named callees and calls
// through function values.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	if f := calleeFunc(info, call); f != nil {
		sig, _ := f.Type().(*types.Signature)
		return sig
	}
	if t := info.TypeOf(call.Fun); t != nil {
		sig, _ := t.Underlying().(*types.Signature)
		return sig
	}
	return nil
}

func callDisplay(call *ast.CallExpr) string {
	return types.ExprString(call.Fun)
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// dropExempt applies the sanctioned-drop list: zero-arg Close and the
// never-fail writer families.
func dropExempt(info *types.Info, call *ast.CallExpr) bool {
	callee := calleeFunc(info, call)
	if callee == nil {
		return false
	}
	if callee.Name() == "Close" {
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Params().Len() == 0 {
			return true
		}
	}
	full := callee.FullName()
	for _, p := range errflowDropExempt {
		if strings.HasPrefix(full, p) {
			return true
		}
	}
	// hash.Hash receivers are interfaces (hash.Hash32/Hash64), so the method
	// object behind h.Write is (io.Writer).Write and the prefix list above
	// cannot see the hash package — look at the receiver's static type
	// instead. hash.Hash documents that Write never returns an error.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if t := info.TypeOf(sel.X); t != nil {
			if named, ok := derefType(t).(*types.Named); ok {
				if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "hash" {
					return true
				}
			}
		}
	}
	return false
}
