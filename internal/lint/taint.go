package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The taint analyzer tracks untrusted values — sizes, counts, durations —
// from the serving path's ingress points to resource sinks, and requires a
// validating clamp in between. It is built on the dataflow engine (cfg.go,
// dataflow.go): a forward abstract interpretation per function, made
// interprocedural by per-function summaries (callgraph.go) computed
// callee-first over the call graph SCCs.
//
// Sources (where taint is born):
//   - reads of basic-typed fields of JSON-ingress struct types (any struct
//     that is a json.Decode/Unmarshal target somewhere in the module,
//     closed over nested struct fields), read inside internal/server,
//     internal/route, or internal/sparse;
//   - results of strconv.Atoi/Parse* and the pointer targets of the
//     fmt.Sscan family inside internal/sparse (MatrixMarket header and
//     entry fields);
//   - HTTP request field accessors (PathValue, FormValue, url.Values.Get)
//     inside internal/server and internal/route.
//
// Clamps (what kills taint):
//   - branch refinement: on the edge where `v <= bound` (or the false edge
//     of `v > bound`, a switch-with-terminating-default, etc.) holds with a
//     clean bound, v is clamped; a tainted bound transfers its own marks.
//     Lower-bound-only checks (`v < 0`) do not clamp.
//   - assignment from a clean value (`if k > rows { k = rows }`);
//   - the min builtin with a clean operand;
//   - fields upper-bounded inside a function annotated
//     `//sparselint:validator` are clean module-wide: validate-at-admission,
//     use-later (the job queue) needs no re-check at every read.
//
// Sinks: make size/capacity, slice/array index and slice bounds, for-loop
// bounds (flagged as goroutine spawns when the body contains `go`),
// time.Duration conversions, and — via summaries — any callee parameter
// that reaches one of those transitively.
//
// Findings carry source→sink provenance chains mirroring hotpathalloc's
// call-chain rendering.

var (
	// taintFieldScope is where ingress struct field reads count as sources.
	taintFieldScope = []string{"internal/server", "internal/route", "internal/sparse"}
	// taintParseScope is where strconv/fmt.Sscan results count as sources.
	taintParseScope = []string{"internal/sparse"}
	// taintHTTPScope is where HTTP request field accessors count as sources.
	taintHTTPScope = []string{"internal/server", "internal/route"}
)

func taintAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "taint",
		Doc:  "untrusted serving-path values must be clamped before reaching allocations, indexes, loop bounds, durations, or goroutine spawns",
	}
	a.Run = runTaint
	return a
}

type fieldKey struct {
	typ   *types.TypeName
	field string
}

type taintChecker struct {
	pass      *Pass
	ingress   map[*types.Named]string // ingress struct type → provenance label
	validated map[fieldKey]bool
	summaries summaryTable
}

func runTaint(pass *Pass) {
	tc := &taintChecker{
		pass:      pass,
		ingress:   make(map[*types.Named]string),
		validated: make(map[fieldKey]bool),
		summaries: make(summaryTable),
	}
	tc.findIngressTypes()
	tc.findValidatedFields()

	// Phase 1: summaries, callee-first. Mutually recursive components are
	// iterated until their summaries stop changing (the facts only grow, so
	// this converges).
	for _, scc := range pass.Graph.SCCs() {
		for iter := 0; iter < 8; iter++ {
			changed := false
			for _, f := range scc {
				if tc.summarize(f) {
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}

	// Phase 2: reporting. Every declared function, then every func literal
	// (closures are checked as functions in their own right; taint does not
	// flow across the closure boundary, but sources inside are still live).
	for _, f := range pass.Graph.Funcs() {
		decl, pkg := pass.Graph.DeclOf(f)
		if decl == nil || decl.Body == nil {
			continue
		}
		tc.checkBody(pkg, decl.Body, nil, nil)
	}
	for _, pkg := range pass.Prog.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					tc.checkBody(pkg, lit.Body, nil, nil)
				}
				return true
			})
		}
	}
}

// findIngressTypes collects every named struct type that is a JSON decode
// target anywhere in the module, then closes over nested struct-typed
// fields: a MatrixSpec inside a decoded JobSpec is attacker-controlled too.
func (tc *taintChecker) findIngressTypes() {
	addNamed := func(t types.Type, label string) {
		t = peelPtrSliceArray(t)
		named, ok := t.(*types.Named)
		if !ok {
			return
		}
		if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
			return
		}
		if _, have := tc.ingress[named]; !have {
			tc.ingress[named] = label
		}
	}
	for _, pkg := range tc.pass.Prog.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				var target ast.Expr
				switch funcFullName(calleeFunc(pkg.Info, call)) {
				case "(*encoding/json.Decoder).Decode":
					if len(call.Args) == 1 {
						target = call.Args[0]
					}
				case "encoding/json.Unmarshal":
					if len(call.Args) == 2 {
						target = call.Args[1]
					}
				}
				if target != nil {
					if t := pkg.Info.TypeOf(target); t != nil {
						addNamed(t, "decoded from JSON")
					}
				}
				return true
			})
		}
	}
	// Transitive closure over struct-typed fields.
	for changed := true; changed; {
		changed = false
		for named, label := range tc.ingress {
			st := named.Underlying().(*types.Struct)
			for i := 0; i < st.NumFields(); i++ {
				ft := peelPtrSliceArray(st.Field(i).Type())
				fn, ok := ft.(*types.Named)
				if !ok {
					continue
				}
				if _, isStruct := fn.Underlying().(*types.Struct); !isStruct {
					continue
				}
				if _, have := tc.ingress[fn]; !have {
					tc.ingress[fn] = label
					changed = true
				}
			}
		}
	}
}

func peelPtrSliceArray(t types.Type) types.Type {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		default:
			return t
		}
	}
}

// findValidatedFields scans every `//sparselint:validator` function for
// admission checks of ingress fields: an if statement whose body
// unconditionally returns and whose condition, when false, upper-bounds a
// field (`if s.Workers > maxWorkers { return err }`), or a switch over a
// field whose default clause returns (string membership). Fields validated
// this way are clean module-wide.
func (tc *taintChecker) findValidatedFields() {
	for _, f := range tc.pass.Graph.Funcs() {
		decl, pkg := tc.pass.Graph.DeclOf(f)
		if decl == nil || decl.Body == nil || !hasAnnotation(decl.Doc, "validator") {
			continue
		}
		info := pkg.Info
		markField := func(e ast.Expr) {
			e = peelBound(info, e)
			if fk, ok := tc.ingressFieldOf(info, e); ok {
				tc.validated[fk] = true
			}
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.IfStmt:
				if !blockTerminates(n.Body) {
					return true
				}
				// The surviving path has ¬cond: collect what that bounds.
				refineUpperBounds(n.Cond, true, func(target, bound ast.Expr) {
					if !tc.trustedValidatorBound(info, bound) {
						return
					}
					markField(target)
				})
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil && stmtsTerminate(cc.Body) {
						markField(n.Tag)
					}
				}
			}
			return true
		})
	}
}

// ingressFieldOf resolves e to (owner type, field) when e reads a
// basic-typed field of an ingress struct.
func (tc *taintChecker) ingressFieldOf(info *types.Info, e ast.Expr) (fieldKey, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return fieldKey{}, false
	}
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return fieldKey{}, false
	}
	base := info.TypeOf(sel.X)
	if base == nil {
		return fieldKey{}, false
	}
	named, ok := derefType(base).(*types.Named)
	if !ok {
		return fieldKey{}, false
	}
	if _, ingress := tc.ingress[named]; !ingress {
		return fieldKey{}, false
	}
	return fieldKey{typ: named.Obj(), field: sel.Sel.Name}, true
}

// trustedValidatorBound accepts a bound that contains no ingress field read
// — constants, config fields, len() of real data.
func (tc *taintChecker) trustedValidatorBound(info *types.Info, bound ast.Expr) bool {
	trusted := true
	ast.Inspect(bound, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok {
			if _, isField := tc.ingressFieldOf(info, e); isField {
				trusted = false
			}
		}
		return trusted
	})
	return trusted
}

// blockTerminates reports whether a block always leaves the function
// (return or panic on every path). Used only to recognize the
// `if bad { return err }` validator shape, so it stays simple.
func blockTerminates(b *ast.BlockStmt) bool {
	return stmtsTerminate(b.List)
}

func stmtsTerminate(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch s := list[len(list)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				return id.Name == "panic"
			}
		}
	case *ast.IfStmt:
		if s.Else == nil {
			return false
		}
		eb, ok := s.Else.(*ast.BlockStmt)
		if !ok {
			return false
		}
		return blockTerminates(s.Body) && blockTerminates(eb)
	case *ast.BlockStmt:
		return blockTerminates(s)
	}
	return false
}

// refineUpperBounds enumerates the (target, bound) pairs that hold as upper
// bounds when cond evaluates to true (negated=false) or false
// (negated=true). `v < b` bounds v on the true edge and b on the false edge;
// equality bounds both ways on the true edge; conjunctions and negations
// distribute.
func refineUpperBounds(cond ast.Expr, negated bool, yield func(target, bound ast.Expr)) {
	cond = ast.Unparen(cond)
	switch c := cond.(type) {
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			refineUpperBounds(c.X, !negated, yield)
		}
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			if !negated {
				refineUpperBounds(c.X, false, yield)
				refineUpperBounds(c.Y, false, yield)
			}
		case token.LOR:
			if negated {
				refineUpperBounds(c.X, true, yield)
				refineUpperBounds(c.Y, true, yield)
			}
		case token.LSS, token.LEQ:
			if !negated {
				yield(c.X, c.Y)
			} else {
				yield(c.Y, c.X)
			}
		case token.GTR, token.GEQ:
			if !negated {
				yield(c.Y, c.X)
			} else {
				yield(c.X, c.Y)
			}
		case token.EQL:
			if !negated {
				yield(c.X, c.Y)
				yield(c.Y, c.X)
			}
		case token.NEQ:
			if negated {
				yield(c.X, c.Y)
				yield(c.Y, c.X)
			}
		}
	}
}

// peelBound strips wrappers that preserve an upper bound: parens,
// conversions, and +, -, × with a constant operand (a bound on 3*k bounds
// k).
func peelBound(info *types.Info, e ast.Expr) ast.Expr {
	for {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.CallExpr:
			if tv, ok := info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
				e = x.Args[0]
				continue
			}
			return e
		case *ast.BinaryExpr:
			isConst := func(e ast.Expr) bool {
				tv, ok := info.Types[e]
				return ok && tv.Value != nil
			}
			switch x.Op {
			case token.MUL, token.ADD:
				if isConst(x.X) && !isConst(x.Y) {
					e = x.Y
					continue
				}
				if isConst(x.Y) && !isConst(x.X) {
					e = x.X
					continue
				}
			case token.SUB:
				if isConst(x.Y) && !isConst(x.X) {
					e = x.X
					continue
				}
			}
			return e
		default:
			return e
		}
	}
}

// ---------------------------------------------------------- abstract state

// taintMark is the abstract value of one expression: which function
// parameters it may derive from (summary phase) and/or a concrete source it
// carries.
type taintMark struct {
	params uint64
	src    *taintSource
}

func (m taintMark) empty() bool { return m.params == 0 && m.src == nil }

func mergeMarks(a, b taintMark) taintMark {
	out := taintMark{params: a.params | b.params, src: a.src}
	if out.src == nil || (b.src != nil && b.src.pos < out.src.pos) {
		if b.src != nil {
			out.src = b.src
		}
	}
	return out
}

// taintState maps expression keys (objects and field paths) to marks.
// Absence means clean for derived values; source expressions fall back to
// "tainted" unless the clamped set says a branch bounded them.
type taintState struct {
	marks   map[string]taintMark
	clamped map[string]bool
}

func newTaintState() *taintState {
	return &taintState{marks: make(map[string]taintMark), clamped: make(map[string]bool)}
}

func (s *taintState) clone() flowState {
	c := newTaintState()
	for k, v := range s.marks {
		c.marks[k] = v
	}
	for k := range s.clamped {
		c.clamped[k] = true
	}
	return c
}

func (s *taintState) mergeFrom(other flowState) bool {
	o := other.(*taintState)
	changed := false
	for k, ov := range o.marks {
		if mv, ok := s.marks[k]; !ok {
			s.marks[k] = ov
			changed = true
		} else if merged := mergeMarks(mv, ov); merged != mv {
			s.marks[k] = merged
			changed = true
		}
	}
	// clamped survives a join only when both paths clamped.
	for k := range s.clamped {
		if !o.clamped[k] {
			delete(s.clamped, k)
			changed = true
		}
	}
	return changed
}

// ------------------------------------------------------------ per-function

// taintFlow is the flowTransfers implementation for one function body.
type taintFlow struct {
	tc     *taintChecker
	pkg    *Package
	info   *types.Info
	sum    *funcSummary // summary being built, nil in the reporting phase
	sig    *types.Signature
	report bool
	dirty  bool // summary changed this pass
}

// checkBody runs the reporting pass over one body (sum and seeds nil).
func (tc *taintChecker) checkBody(pkg *Package, body *ast.BlockStmt, sum *funcSummary, seeds map[string]taintMark) bool {
	fl := &taintFlow{tc: tc, pkg: pkg, info: pkg.Info, sum: sum}
	if sum != nil {
		fl.sig = sum.sig
	}
	entry := newTaintState()
	for k, m := range seeds {
		entry.marks[k] = m
	}
	g := buildCFG(body)
	solved := solveForward(g, fl, entry)
	if sum == nil {
		fl.report = true
		replayBlocks(g, fl, solved)
	}
	return fl.dirty
}

// summarize (re)computes f's summary; reports whether it changed.
func (tc *taintChecker) summarize(f *types.Func) bool {
	decl, pkg := tc.pass.Graph.DeclOf(f)
	if decl == nil || decl.Body == nil {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return false
	}
	sum := tc.summaries[f]
	fresh := sum == nil
	if fresh {
		sum = &funcSummary{
			sinkParams: make(map[int]*sinkVia),
			results:    make([]resultFlow, sig.Results().Len()),
			sig:        sig,
		}
		tc.summaries[f] = sum
	}
	seeds := make(map[string]taintMark)
	for i, p := range flatParams(sig) {
		if i >= 64 {
			break
		}
		seeds[objKey(p)] = taintMark{params: 1 << uint(i)}
	}
	changed := tc.checkBody(pkg, decl.Body, sum, seeds)
	return changed || fresh
}

// flatParams is the receiver-first flattened parameter list.
func flatParams(sig *types.Signature) []*types.Var {
	var out []*types.Var
	if r := sig.Recv(); r != nil {
		out = append(out, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

func objKey(obj types.Object) string {
	return fmt.Sprintf("%s#%d", obj.Name(), obj.Pos())
}

func (fl *taintFlow) exprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := fl.info.ObjectOf(e)
		if obj == nil || e.Name == "_" {
			return ""
		}
		return objKey(obj)
	case *ast.SelectorExpr:
		base := fl.exprKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.StarExpr:
		return fl.exprKey(e.X)
	}
	return ""
}

// ----------------------------------------------------------- transfer/refine

func (fl *taintFlow) transfer(st flowState, n ast.Node) {
	s := st.(*taintState)
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, r := range n.Rhs {
			fl.inspect(s, r)
		}
		fl.assign(s, n)
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				fl.inspect(s, v)
			}
			fl.assignValueSpec(s, vs)
		}
	case *ast.ExprStmt:
		fl.inspect(s, n.X)
	case *ast.GoStmt:
		fl.inspect(s, n.Call)
	case *ast.DeferStmt:
		fl.inspect(s, n.Call)
	case *ast.SendStmt:
		fl.inspect(s, n.Chan)
		fl.inspect(s, n.Value)
	case *ast.IncDecStmt:
		fl.inspect(s, n.X)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			fl.inspect(s, r)
		}
		fl.recordReturn(s, n)
	case *rangeBind:
		fl.inspect(s, n.Range.X)
		fl.rangeAssign(s, n.Range)
	case *loopCond:
		fl.inspect(s, n.Cond)
		fl.checkLoopBound(s, n)
	case ast.Expr:
		fl.inspect(s, n)
	}
}

func (fl *taintFlow) refine(st flowState, cond ast.Expr, negated bool) {
	s := st.(*taintState)
	refineUpperBounds(cond, negated, func(target, bound ast.Expr) {
		// `n > limit` also yields limit ≤ n on the true edge; a constant
		// target carries no abstract state to refine (and must never inherit
		// a tainted bound's marks).
		if tv, ok := fl.info.Types[target]; ok && tv.Value != nil {
			return
		}
		key := fl.exprKey(peelBound(fl.info, target))
		if key == "" {
			return
		}
		bm := fl.evalTaint(s, bound)
		if bm.empty() {
			delete(s.marks, key)
			s.clamped[key] = true
		} else {
			s.marks[key] = bm
			delete(s.clamped, key)
		}
	})
}

// setKey writes a mark, clearing any clamp and invalidating field paths
// derived from the overwritten base.
func (fl *taintFlow) setKey(s *taintState, key string, m taintMark) {
	delete(s.clamped, key)
	prefix := key + "."
	for k := range s.marks {
		if strings.HasPrefix(k, prefix) {
			delete(s.marks, k)
		}
	}
	for k := range s.clamped {
		if strings.HasPrefix(k, prefix) {
			delete(s.clamped, k)
		}
	}
	if m.empty() {
		delete(s.marks, key)
		// An assignment of a clean value is itself a clamp for source
		// expressions (`s.K = 0` cleans the path key).
		s.clamped[key] = true
	} else {
		s.marks[key] = m
	}
}

func (fl *taintFlow) assign(s *taintState, n *ast.AssignStmt) {
	if len(n.Lhs) > 1 && len(n.Rhs) == 1 {
		// Multi-value: call, type assertion, map index, channel receive.
		var marks []taintMark
		if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
			marks = fl.evalCallMarks(s, call)
		} else {
			m := fl.evalTaint(s, n.Rhs[0])
			marks = []taintMark{m, {}} // comma-ok: ok/err half is clean
		}
		for i, lhs := range n.Lhs {
			m := taintMark{}
			if i < len(marks) {
				m = marks[i]
			}
			fl.assignTo(s, lhs, m)
		}
		return
	}
	for i, lhs := range n.Lhs {
		if i >= len(n.Rhs) {
			break
		}
		m := fl.evalTaint(s, n.Rhs[i])
		if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
			// Compound (+=, *=, …): the old value stays in the mix.
			m = mergeMarks(m, fl.evalTaint(s, lhs))
		}
		fl.assignTo(s, lhs, m)
	}
}

func (fl *taintFlow) assignTo(s *taintState, lhs ast.Expr, m taintMark) {
	lhs = ast.Unparen(lhs)
	if ix, ok := lhs.(*ast.IndexExpr); ok {
		// Storing a tainted element marks the container.
		if key := fl.exprKey(ix.X); key != "" && !m.empty() {
			fl.setKey(s, key, mergeMarks(m, fl.evalTaint(s, ix.X)))
		}
		return
	}
	key := fl.exprKey(lhs)
	if key == "" {
		return
	}
	fl.setKey(s, key, m)
}

func (fl *taintFlow) assignValueSpec(s *taintState, vs *ast.ValueSpec) {
	for i, name := range vs.Names {
		m := taintMark{}
		if len(vs.Values) == len(vs.Names) {
			m = fl.evalTaint(s, vs.Values[i])
		} else if len(vs.Values) == 1 {
			if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok {
				marks := fl.evalCallMarks(s, call)
				if i < len(marks) {
					m = marks[i]
				}
			}
		}
		fl.assignTo(s, name, m)
	}
}

func (fl *taintFlow) rangeAssign(s *taintState, r *ast.RangeStmt) {
	xm := fl.evalTaint(s, r.X)
	xt := fl.info.TypeOf(r.X)
	// Integer range (`for i := range n`): the loop bound itself is the
	// untrusted value — a sink, handled here since there is no loopCond.
	if xt != nil {
		if b, ok := xt.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
			if !xm.empty() {
				fl.sink(s, r.X.Pos(), xm, "a loop bound")
			}
			if r.Key != nil {
				fl.assignTo(s, r.Key, taintMark{})
			}
			return
		}
	}
	keyMark, valMark := taintMark{}, xm
	if xt != nil {
		switch xt.Underlying().(type) {
		case *types.Slice, *types.Array, *types.Pointer:
			// Index is bounded by the real allocation: clean.
		default:
			keyMark = xm // map keys / string runes / channel values
		}
	}
	if r.Key != nil {
		fl.assignTo(s, r.Key, keyMark)
	}
	if r.Value != nil {
		fl.assignTo(s, r.Value, valMark)
	}
}

// checkLoopBound flags comparisons whose bound side is tainted: the
// iteration count is attacker-controlled.
func (fl *taintFlow) checkLoopBound(s *taintState, lc *loopCond) {
	desc := "a loop bound"
	if lc.SpawnsGo {
		desc = "a goroutine-spawn loop bound"
	}
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		e = ast.Unparen(e)
		be, ok := e.(*ast.BinaryExpr)
		if !ok {
			return
		}
		switch be.Op {
		case token.LAND, token.LOR:
			walk(be.X)
			walk(be.Y)
		case token.LSS, token.LEQ:
			if m := fl.evalTaint(s, be.Y); !m.empty() {
				fl.sink(s, be.Y.Pos(), m, desc)
			}
		case token.GTR, token.GEQ:
			if m := fl.evalTaint(s, be.X); !m.empty() {
				fl.sink(s, be.X.Pos(), m, desc)
			}
		}
	}
	walk(lc.Cond)
}

// inspect walks an evaluated expression for sinks and call effects. Func
// literal bodies are separate functions and are skipped.
func (fl *taintFlow) inspect(s *taintState, e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			fl.handleCall(s, n)
		case *ast.IndexExpr:
			if t := fl.info.TypeOf(n.X); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Array, *types.Pointer:
					if m := fl.evalTaint(s, n.Index); !m.empty() {
						fl.sink(s, n.Index.Pos(), m, "a slice index")
					}
				}
			}
		case *ast.SliceExpr:
			for _, b := range []ast.Expr{n.Low, n.High, n.Max} {
				if b == nil {
					continue
				}
				if m := fl.evalTaint(s, b); !m.empty() {
					fl.sink(s, b.Pos(), m, "a slice bound")
				}
			}
		}
		return true
	})
}

func (fl *taintFlow) handleCall(s *taintState, call *ast.CallExpr) {
	info := fl.info
	// Conversions: a time.Duration conversion of a tainted count is
	// unvalidated duration arithmetic (deadline overflow, huge timers).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && isDurationType(tv.Type) {
			if m := fl.evalTaint(s, call.Args[0]); !m.empty() {
				fl.sink(s, call.Pos(), m, "a time.Duration conversion")
			}
		}
		return
	}
	if isBuiltinCall(info, call, "make") {
		for _, a := range call.Args[1:] {
			if m := fl.evalTaint(s, a); !m.empty() {
				fl.sink(s, a.Pos(), m, "a make size/capacity")
			}
		}
		return
	}
	callee := calleeFunc(info, call)
	full := funcFullName(callee)
	// fmt.Sscan family: the pointer targets become tainted.
	if skip, ok := sscanValueArgs[full]; ok && pathInScope(fl.pkg.Path, taintParseScope) {
		for _, a := range call.Args[skip:] {
			if un, ok := ast.Unparen(a).(*ast.UnaryExpr); ok && un.Op == token.AND {
				if key := fl.exprKey(un.X); key != "" {
					fl.setKey(s, key, taintMark{src: &taintSource{
						pos:  a.Pos(),
						desc: fmt.Sprintf("%s (scanned from input)", types.ExprString(un.X)),
					}})
				}
			}
		}
		return
	}
	// Summary application: a tainted argument handed to a parameter that
	// reaches a sink inside the callee completes the flow here.
	sum := fl.tc.summaries[callee]
	if sum == nil {
		return
	}
	sig := sum.sig
	flat := flatParams(sig)
	for i := range flat {
		sv := sum.sinkParams[i]
		if sv == nil {
			continue
		}
		for _, arg := range fl.argsForParam(call, sig, i) {
			m := fl.evalTaint(s, arg)
			if m.empty() {
				continue
			}
			hops := append([]string{callee.Name()}, sv.hops...)
			fl.sinkVia(s, call.Pos(), m, sv.desc, hops)
		}
	}
}

// argsForParam returns the caller expressions feeding flattened parameter i
// (several for a variadic tail).
func (fl *taintFlow) argsForParam(call *ast.CallExpr, sig *types.Signature, i int) []ast.Expr {
	idx := i
	if sig.Recv() != nil {
		if idx == 0 {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				return []ast.Expr{sel.X}
			}
			return nil
		}
		idx--
	}
	n := sig.Params().Len()
	if idx >= n {
		return nil
	}
	if sig.Variadic() && idx == n-1 {
		if idx < len(call.Args) {
			return call.Args[idx:]
		}
		return nil
	}
	if idx < len(call.Args) {
		return []ast.Expr{call.Args[idx]}
	}
	return nil
}

var sscanValueArgs = map[string]int{
	"fmt.Sscan":   1,
	"fmt.Sscanln": 1,
	"fmt.Sscanf":  2,
	"fmt.Fscan":   1,
	"fmt.Fscanln": 1,
	"fmt.Fscanf":  2,
}

var strconvSources = map[string]bool{
	"strconv.Atoi":       true,
	"strconv.ParseInt":   true,
	"strconv.ParseUint":  true,
	"strconv.ParseFloat": true,
}

var httpFieldSources = map[string]bool{
	"(*net/http.Request).PathValue":     true,
	"(*net/http.Request).FormValue":     true,
	"(*net/http.Request).PostFormValue": true,
	"(net/url.Values).Get":              true,
}

func isDurationType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Duration" && obj.Pkg() != nil && obj.Pkg().Path() == "time"
}

// ----------------------------------------------------------------- eval

func (fl *taintFlow) evalTaint(s *taintState, e ast.Expr) taintMark {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if _, isConst := fl.info.ObjectOf(e).(*types.Const); isConst {
			return taintMark{}
		}
		key := fl.exprKey(e)
		if key == "" || s.clamped[key] {
			return taintMark{}
		}
		return s.marks[key]
	case *ast.SelectorExpr:
		key := fl.exprKey(e)
		if key != "" {
			if s.clamped[key] {
				return taintMark{}
			}
			if m, ok := s.marks[key]; ok {
				return m
			}
		}
		if bm := fl.evalTaint(s, e.X); !bm.empty() {
			return bm
		}
		return fl.sourceField(e)
	case *ast.CallExpr:
		marks := fl.evalCallMarks(s, e)
		if len(marks) > 0 {
			return marks[0]
		}
		return taintMark{}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			return taintMark{}
		}
		return mergeMarks(fl.evalTaint(s, e.X), fl.evalTaint(s, e.Y))
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			return taintMark{}
		}
		return fl.evalTaint(s, e.X)
	case *ast.StarExpr:
		return fl.evalTaint(s, e.X)
	case *ast.IndexExpr:
		return fl.evalTaint(s, e.X)
	case *ast.SliceExpr:
		return fl.evalTaint(s, e.X)
	case *ast.TypeAssertExpr:
		return fl.evalTaint(s, e.X)
	case *ast.CompositeLit:
		var m taintMark
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			m = mergeMarks(m, fl.evalTaint(s, el))
		}
		return m
	}
	return taintMark{}
}

// sourceField is the taint fallback for an unvalidated ingress field read in
// a scoped package.
func (fl *taintFlow) sourceField(sel *ast.SelectorExpr) taintMark {
	if !pathInScope(fl.pkg.Path, taintFieldScope) {
		return taintMark{}
	}
	fk, ok := fl.tc.ingressFieldOf(fl.info, sel)
	if !ok || fl.tc.validated[fk] {
		return taintMark{}
	}
	v, _ := fl.info.Uses[sel.Sel].(*types.Var)
	if v == nil {
		return taintMark{}
	}
	b, ok := v.Type().Underlying().(*types.Basic)
	if !ok || b.Info()&(types.IsNumeric|types.IsString) == 0 {
		return taintMark{}
	}
	label := "untrusted"
	if named, ok := derefType(fl.info.TypeOf(sel.X)).(*types.Named); ok {
		label = fl.tc.ingress[named]
	}
	return taintMark{src: &taintSource{
		pos:  sel.Pos(),
		desc: fmt.Sprintf("%s.%s (%s)", fk.typ.Name(), fk.field, label),
	}}
}

func (fl *taintFlow) evalCallMarks(s *taintState, call *ast.CallExpr) []taintMark {
	info := fl.info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return []taintMark{fl.evalTaint(s, call.Args[0])}
		}
		return nil
	}
	if isAnyBuiltin(info, call) {
		id := ast.Unparen(call.Fun).(*ast.Ident)
		switch id.Name {
		case "len", "cap", "make", "new", "copy":
			// len/cap of real data is bounded by the real allocation.
			return []taintMark{{}}
		case "min":
			// min against one clean operand is a clamp.
			var m taintMark
			for _, a := range call.Args {
				am := fl.evalTaint(s, a)
				if am.empty() {
					return []taintMark{{}}
				}
				m = mergeMarks(m, am)
			}
			return []taintMark{m}
		case "max", "append":
			var m taintMark
			for _, a := range call.Args {
				m = mergeMarks(m, fl.evalTaint(s, a))
			}
			return []taintMark{m}
		}
		return []taintMark{{}}
	}
	callee := calleeFunc(info, call)
	full := funcFullName(callee)
	if strconvSources[full] {
		m := taintMark{}
		if len(call.Args) > 0 {
			m = fl.evalTaint(s, call.Args[0]) // tainted string in, tainted number out
		}
		if pathInScope(fl.pkg.Path, taintParseScope) {
			m = mergeMarks(m, taintMark{src: &taintSource{
				pos:  call.Pos(),
				desc: fmt.Sprintf("%s result (parsed from input)", full),
			}})
		}
		return []taintMark{m, {}}
	}
	if httpFieldSources[full] && pathInScope(fl.pkg.Path, taintHTTPScope) {
		return []taintMark{{src: &taintSource{
			pos:  call.Pos(),
			desc: fmt.Sprintf("%s result (HTTP request field)", callee.Name()),
		}}}
	}
	sum := fl.tc.summaries[callee]
	if sum == nil {
		return nil
	}
	sig := sum.sig
	out := make([]taintMark, len(sum.results))
	for j, rf := range sum.results {
		m := taintMark{}
		if rf.src != nil {
			src := *rf.src
			src.hops = append(append([]string{}, rf.src.hops...), callee.Name())
			m.src = &src
		}
		for i := 0; i < 64 && i < len(flatParams(sig)); i++ {
			if rf.params&(1<<uint(i)) == 0 {
				continue
			}
			for _, arg := range fl.argsForParam(call, sig, i) {
				m = mergeMarks(m, fl.evalTaint(s, arg))
			}
		}
		out[j] = m
	}
	return out
}

// ------------------------------------------------------- sinks and summaries

func (fl *taintFlow) sink(s *taintState, pos token.Pos, m taintMark, desc string) {
	fl.sinkVia(s, pos, m, desc, nil)
}

func (fl *taintFlow) sinkVia(s *taintState, pos token.Pos, m taintMark, desc string, hops []string) {
	if m.src != nil && fl.report {
		chain := append(append([]string{}, m.src.hops...), hops...)
		via := ""
		if len(chain) > 0 {
			via = fmt.Sprintf(" [flow: %s]", strings.Join(chain, " → "))
		}
		fl.tc.pass.Reportf(pos, "untrusted %s reaches %s without a validating clamp%s", m.src.desc, desc, via)
	}
	if fl.sum != nil && m.params != 0 {
		for i := 0; i < 64; i++ {
			if m.params&(1<<uint(i)) == 0 {
				continue
			}
			if fl.sum.sinkParams[i] == nil {
				fl.sum.sinkParams[i] = &sinkVia{desc: desc, hops: hops}
				fl.dirty = true
			}
		}
	}
}

func (fl *taintFlow) recordReturn(s *taintState, ret *ast.ReturnStmt) {
	if fl.sum == nil || fl.sig == nil {
		return
	}
	nres := fl.sig.Results().Len()
	marks := make([]taintMark, nres)
	switch {
	case len(ret.Results) == nres:
		for j, r := range ret.Results {
			marks[j] = fl.evalTaint(s, r)
		}
	case len(ret.Results) == 1 && nres > 1:
		if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
			cm := fl.evalCallMarks(s, call)
			copy(marks, cm)
		}
	case len(ret.Results) == 0 && nres > 0:
		// Bare return: named results.
		for j := 0; j < nres; j++ {
			obj := fl.sig.Results().At(j)
			if obj.Name() == "" {
				continue
			}
			key := objKey(obj)
			if !s.clamped[key] {
				marks[j] = s.marks[key]
			}
		}
	}
	for j, m := range marks {
		rf := &fl.sum.results[j]
		if m.src != nil && rf.src == nil {
			rf.src = m.src
			fl.dirty = true
		}
		if m.params&^rf.params != 0 {
			rf.params |= m.params
			fl.dirty = true
		}
	}
}
