package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// atomicFieldAnalyzer enforces all-atomic-or-all-plain access to struct
// fields, module-wide: a field that is passed to a sync/atomic function
// (atomic.AddInt64(&s.n, 1) and friends — the racy plain siblings of the
// atomic.Int64-style wrapper types) anywhere in the module must never be
// read or written through a plain selector anywhere else. That mix is the
// data-race class the race detector only catches when the interleaving
// actually fires; composite-literal initialization (&S{n: 0}) stays legal
// because construction precedes sharing.
func atomicFieldAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "atomicfield",
		Doc:  "fields accessed via sync/atomic must not be read or written plainly anywhere in the module",
	}
	a.Run = func(pass *Pass) {
		atomicAt := make(map[*types.Var]token.Position) // field -> first atomic site
		sanctioned := make(map[*ast.SelectorExpr]bool)  // &x.f inside an atomic call
		var plain []struct {
			field *types.Var
			pos   token.Pos
		}

		// Pass 1: find every field handed to a sync/atomic function by
		// address.
		for _, pkg := range pass.Prog.Pkgs {
			info := pkg.Info
			for _, file := range pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := calleeFunc(info, call)
					if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
						return true
					}
					for _, arg := range call.Args {
						un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
						if !ok || un.Op != token.AND {
							continue
						}
						sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
						if !ok {
							continue
						}
						field := fieldVar(info, sel)
						if field == nil {
							continue
						}
						sanctioned[sel] = true
						p := pass.Prog.Fset.Position(un.Pos())
						if prev, ok := atomicAt[field]; !ok || p.Filename < prev.Filename || (p.Filename == prev.Filename && p.Line < prev.Line) {
							atomicAt[field] = p
						}
					}
					return true
				})
			}
		}
		if len(atomicAt) == 0 {
			return
		}

		// Pass 2: every other selector touching one of those fields is a
		// plain (racy) access.
		for _, pkg := range pass.Prog.Pkgs {
			info := pkg.Info
			for _, file := range pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok || sanctioned[sel] {
						return true
					}
					field := fieldVar(info, sel)
					if field == nil {
						return true
					}
					if _, hot := atomicAt[field]; hot {
						plain = append(plain, struct {
							field *types.Var
							pos   token.Pos
						}{field, sel.Pos()})
					}
					return true
				})
			}
		}
		sort.Slice(plain, func(i, j int) bool { return plain[i].pos < plain[j].pos })
		for _, p := range plain {
			at := atomicAt[p.field]
			pass.Reportf(p.pos, "field %s is accessed with sync/atomic (e.g. %s:%d) but read or written plainly here; mixed access races",
				p.field.Name(), at.Filename, at.Line)
		}
	}
	return a
}

// fieldVar resolves sel to the struct field it selects, or nil when sel is
// not a field selection.
func fieldVar(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}
