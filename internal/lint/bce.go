package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// bceAnalyzer flags indexing patterns that defeat Go's bounds-check
// elimination, in functions on the hot path (the same hotpath/coldcall
// closure hotpathalloc walks — a bounds check per element is only worth a
// finding where the element loop is the workload). Two patterns:
//
//  1. Re-indexing a parent slice inside a loop with a loop-variant sum,
//     a[base+j]: the compiler cannot prove base+j < len(a) and re-checks
//     every iteration. Pre-slicing a window before the loop
//     (w := a[base:base+n]; w[j]) gives the prover a length to work with.
//
//  2. Unrolled bodies touching s[i], s[i+1], ... s[i+k] with no bounds
//     hint: each constant offset keeps its own check. An explicit-high
//     reslice of s in the function (s = s[:n], ci := idx[lo:hi]), a loop
//     condition of the form i+K <= len(s), or touching the maximum offset
//     first all let the compiler drop the inner checks.
//
// Findings in propagated functions carry the same provenance chain as
// hotpathalloc findings.
func bceAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "bce",
		Doc:  "hot-path loops must not defeat bounds-check elimination (pre-slice windows, hint lengths before unrolled bodies)",
	}
	a.Run = func(pass *Pass) {
		g := pass.Graph
		cold := coldBoundaries(g, nil) // hotpathalloc owns annotation validation
		reached, via := hotClosure(g, cold)

		for _, f := range g.Funcs() {
			if !reached[f] || cold[f] {
				continue
			}
			decl, pkg := g.DeclOf(f)
			if decl.Body == nil {
				continue
			}
			suffix := ""
			if !hasAnnotation(decl.Doc, "hotpath") {
				suffix = fmt.Sprintf(" [hot path: %s]", g.Chain(via, f))
			}
			checkBCE(pass, pkg, decl, suffix)
		}
	}
	return a
}

func checkBCE(pass *Pass, pkg *Package, fn *ast.FuncDecl, suffix string) {
	info := pkg.Info
	windowed := explicitHighSlices(info, fn.Body)
	report := func(pos token.Pos, format string, args ...any) {
		pass.Reportf(pos, format+"%s", append(args, suffix)...)
	}

	// Pattern 1: s[base+i] where i is the innermost loop's own induction
	// variable, appearing bare — the access walks a contiguous window the
	// loop could have pre-sliced, but the compiler cannot prove base+i <
	// len(s). Strided gathers (b[p*n+j]: the induction variable only appears
	// scaled) are skipped: no contiguous window exists for those.
	type idxSite struct {
		ix *ast.IndexExpr
		iv types.Object // induction variable of the innermost enclosing loop
	}
	var sites []idxSite
	var collect func(n ast.Node, iv types.Object)
	collect = func(n ast.Node, iv types.Object) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false // a different function; checked via its own graph node
			case *ast.ForStmt:
				if n.Init != nil {
					collect(n.Init, iv)
				}
				next := inductionVar(info, n)
				if n.Cond != nil {
					collect(n.Cond, next)
				}
				if n.Post != nil {
					collect(n.Post, next)
				}
				collect(n.Body, next)
				return false
			case *ast.RangeStmt:
				collect(n.Body, rangeKeyVar(info, n))
				return false
			case *ast.IndexExpr:
				if iv != nil {
					sites = append(sites, idxSite{n, iv})
				}
			}
			return true
		})
	}
	collect(fn.Body, nil)
	for _, s := range sites {
		ix := s.ix
		base, ok := ast.Unparen(ix.X).(*ast.Ident)
		if !ok || !isSliceExprType(info, ix.X) {
			continue
		}
		sum, ok := ast.Unparen(ix.Index).(*ast.BinaryExpr)
		if !ok || sum.Op != token.ADD {
			continue
		}
		var other ast.Expr
		switch {
		case isIdentFor(info, sum.X, s.iv):
			other = sum.Y
		case isIdentFor(info, sum.Y, s.iv):
			other = sum.X
		default:
			continue
		}
		if isConstExpr(info, other) {
			continue // s[i+3] is pattern 2's territory
		}
		if usesObject(info, other, s.iv) {
			continue // both addends vary with the loop: not window-shaped
		}
		report(ix.Pos(), "indexing %s with loop-variant base+%s defeats bounds-check elimination; pre-slice a window before the loop (w := %s[lo:hi])", base.Name, s.iv.Name(), base.Name)
	}

	// Pattern 2: unrolled constant-offset runs without a bounds hint,
	// grouped per statement block so an if-guarded remainder loop does not
	// pollute the main unrolled body.
	walkBlocks(fn.Body, nil, func(list []ast.Stmt, loop *ast.ForStmt) {
		checkUnrolled(info, list, loop, windowed, report)
	})
}

// walkBlocks visits every statement list in body with its nearest enclosing
// ForStmt (nil inside range loops and outside loops), without descending
// into func literals.
func walkBlocks(body *ast.BlockStmt, loop *ast.ForStmt, visit func([]ast.Stmt, *ast.ForStmt)) {
	var walk func(s ast.Stmt, loop *ast.ForStmt)
	walk = func(s ast.Stmt, loop *ast.ForStmt) {
		switch s := s.(type) {
		case *ast.BlockStmt:
			visit(s.List, loop)
			for _, c := range s.List {
				walk(c, loop)
			}
		case *ast.ForStmt:
			walk(s.Body, s)
		case *ast.RangeStmt:
			walk(s.Body, nil)
		case *ast.IfStmt:
			walk(s.Body, loop)
			if s.Else != nil {
				walk(s.Else, loop)
			}
		case *ast.SwitchStmt:
			walk(s.Body, loop)
		case *ast.TypeSwitchStmt:
			walk(s.Body, loop)
		case *ast.SelectStmt:
			walk(s.Body, loop)
		case *ast.CaseClause:
			visit(s.Body, loop)
			for _, c := range s.Body {
				walk(c, loop)
			}
		case *ast.CommClause:
			visit(s.Body, loop)
			for _, c := range s.Body {
				walk(c, loop)
			}
		case *ast.LabeledStmt:
			walk(s.Stmt, loop)
		}
	}
	walk(body, loop)
}

// A CaseClause is not a Stmt-holding BlockStmt, so walkBlocks handles it
// explicitly above; switch bodies arrive as BlockStmts of CaseClauses.

// constOffsetAccess is one s[iv+c] (or s[iv], c=0) occurrence.
type constOffsetAccess struct {
	c   int64
	pos token.Pos
}

type accessKey struct {
	base types.Object
	iv   types.Object
}

// checkUnrolled looks at the index expressions of one statement list's
// direct statements (not nested blocks) and reports constant-offset runs
// s[iv], s[iv+1], ... that carry no bounds hint.
func checkUnrolled(info *types.Info, list []ast.Stmt, loop *ast.ForStmt, windowed map[types.Object]bool, report func(token.Pos, string, ...any)) {
	groups := make(map[accessKey][]constOffsetAccess)
	var keys []accessKey
	for _, s := range list {
		ast.Inspect(s, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.BlockStmt, *ast.FuncLit:
				return false // nested lists get their own visit
			}
			ix, ok := n.(*ast.IndexExpr)
			if !ok || !isSliceExprType(info, ix.X) {
				return true
			}
			base, ok := ast.Unparen(ix.X).(*ast.Ident)
			if !ok {
				return true
			}
			iv, c, ok := splitConstOffset(info, ix.Index)
			if !ok {
				return true
			}
			k := accessKey{info.ObjectOf(base), info.ObjectOf(iv)}
			if k.base == nil || k.iv == nil {
				return true
			}
			if _, seen := groups[k]; !seen {
				keys = append(keys, k)
			}
			groups[k] = append(groups[k], constOffsetAccess{c, ix.Pos()})
			return true
		})
	}
	for _, k := range keys {
		accs := groups[k]
		sort.Slice(accs, func(i, j int) bool { return accs[i].pos < accs[j].pos })
		maxC := int64(0)
		offsets := make(map[int64]bool)
		for _, a := range accs {
			offsets[a.c] = true
			if a.c > maxC {
				maxC = a.c
			}
		}
		if len(offsets) < 2 || maxC < 1 {
			continue // not an unrolled run
		}
		if windowed[k.base] {
			continue // explicit-high reslice already hints the length
		}
		if loop != nil && loopCondBounds(info, loop, k.iv, k.base, maxC) {
			continue // the loop condition proves iv+maxC in range
		}
		if accs[0].c == maxC {
			continue // max offset touched first: later checks fold away
		}
		report(accs[0].pos, "unrolled accesses of %s up to offset +%d lack a bounds hint; reslice with an explicit high (%s = %s[:n]) or bound the loop with i+%d <= len(%s)",
			k.base.Name(), maxC, k.base.Name(), k.base.Name(), maxC+1, k.base.Name())
	}
}

// inductionVar extracts the induction variable of a classic for loop: the
// single identifier its post statement increments or advances.
func inductionVar(info *types.Info, loop *ast.ForStmt) types.Object {
	switch post := loop.Post.(type) {
	case *ast.IncDecStmt:
		if id, ok := ast.Unparen(post.X).(*ast.Ident); ok {
			return info.ObjectOf(id)
		}
	case *ast.AssignStmt:
		if len(post.Lhs) == 1 {
			if id, ok := ast.Unparen(post.Lhs[0]).(*ast.Ident); ok {
				return info.ObjectOf(id)
			}
		}
	}
	return nil
}

// rangeKeyVar extracts the key variable of a range loop.
func rangeKeyVar(info *types.Info, loop *ast.RangeStmt) types.Object {
	if id, ok := loop.Key.(*ast.Ident); ok {
		return info.ObjectOf(id)
	}
	return nil
}

// isIdentFor reports whether e is a bare identifier resolving to obj.
func isIdentFor(info *types.Info, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && info.ObjectOf(id) == obj
}

// usesObject reports whether e references obj anywhere.
func usesObject(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// splitConstOffset decomposes an index expression into induction ident and
// constant offset: `i` -> (i, 0), `i+2`/`2+i` -> (i, 2).
func splitConstOffset(info *types.Info, e ast.Expr) (*ast.Ident, int64, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if isConstExpr(info, e) {
			return nil, 0, false // a named constant, not an induction var
		}
		return e, 0, true
	case *ast.BinaryExpr:
		if e.Op != token.ADD {
			return nil, 0, false
		}
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok && !isConstExpr(info, e.X) {
			if c, ok := constInt(info, e.Y); ok {
				return id, c, true
			}
		}
		if id, ok := ast.Unparen(e.Y).(*ast.Ident); ok && !isConstExpr(info, e.Y) {
			if c, ok := constInt(info, e.X); ok {
				return id, c, true
			}
		}
	}
	return nil, 0, false
}

// loopCondBounds reports whether loop's condition proves iv+maxC is a valid
// index of base: `iv+K <= len(base)` with K > maxC, or `iv+K < len(base)`
// with K >= maxC (plus the mirrored orientations).
func loopCondBounds(info *types.Info, loop *ast.ForStmt, iv, base types.Object, maxC int64) bool {
	cond, ok := ast.Unparen(loop.Cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	lhs, op, rhs := cond.X, cond.Op, cond.Y
	// Normalize to iv-side OP len-side.
	switch op {
	case token.GEQ:
		lhs, op, rhs = rhs, token.LEQ, lhs
	case token.GTR:
		lhs, op, rhs = rhs, token.LSS, lhs
	case token.LEQ, token.LSS:
	default:
		return false
	}
	if !isLenOf(info, rhs, base) {
		return false
	}
	id, k, ok := splitConstOffset(info, lhs)
	if !ok || info.ObjectOf(id) != iv {
		return false
	}
	if op == token.LEQ {
		return k > maxC
	}
	return k >= maxC
}

// isLenOf reports whether e is `len(x)` with x resolving to obj.
func isLenOf(info *types.Info, e ast.Expr, obj types.Object) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || !isBuiltinCall(info, call, "len") || len(call.Args) != 1 {
		return false
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && info.ObjectOf(id) == obj
}

// explicitHighSlices collects objects assigned from a slice expression with
// an explicit high bound (s[a:b], s[:n]) anywhere in body — the compiler
// knows their length relative to the reslice, and so does the reader.
func explicitHighSlices(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			se, ok := ast.Unparen(rhs).(*ast.SliceExpr)
			if !ok || se.High == nil {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := info.ObjectOf(id); obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// isSliceExprType reports whether e's type is a slice or array.
func isSliceExprType(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Pointer:
		return false
	}
	return false
}

// isConstExpr reports whether e is a compile-time constant.
func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	return ok && tv.Value != nil
}

// constInt returns e's constant integer value.
func constInt(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil {
		return 0, false
	}
	return constant.Int64Val(constant.ToInt(tv.Value))
}
