package lint

import "go/ast"

// The dataflow engine: a forward worklist solver over the CFG of one
// function. An analysis supplies an abstract state (flowState) and two
// operations (flowTransfers); the solver computes the fixpoint of block
// entry states. Both lattices used here (taint marks, error-check facts) are
// finite per function, so the fixpoint terminates; an iteration cap guards
// against a non-monotone transfer bug turning into a hang.

// flowState is one analysis' abstract state at a program point.
type flowState interface {
	// clone returns an independent copy.
	clone() flowState
	// mergeFrom joins other into the receiver (the join at a CFG merge
	// point) and reports whether the receiver changed.
	mergeFrom(other flowState) bool
}

// flowTransfers is the analysis half of the engine.
type flowTransfers interface {
	// transfer mutates st through the evaluation of one CFG node.
	transfer(st flowState, n ast.Node)
	// refine mutates st with the knowledge that cond evaluated to true
	// (negated false) or false (negated true) on the edge being followed.
	refine(st flowState, cond ast.Expr, negated bool)
}

// solveForward runs the worklist algorithm and returns the entry state of
// every reachable block. The returned map never contains unreachable blocks.
func solveForward(g *CFG, tr flowTransfers, entry flowState) map[*CFGBlock]flowState {
	in := map[*CFGBlock]flowState{g.Entry: entry}
	work := []*CFGBlock{g.Entry}
	queued := map[*CFGBlock]bool{g.Entry: true}
	steps, limit := 0, 256*(len(g.Blocks)+1)
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		if steps++; steps > limit {
			break
		}
		out := in[blk].clone()
		for _, n := range blk.Nodes {
			tr.transfer(out, n)
		}
		for _, e := range blk.Succs {
			st := out.clone()
			if e.Cond != nil {
				tr.refine(st, e.Cond, e.Negated)
			}
			cur, ok := in[e.To]
			changed := false
			if !ok {
				in[e.To] = st
				changed = true
			} else {
				changed = cur.mergeFrom(st)
			}
			if changed && !queued[e.To] {
				queued[e.To] = true
				work = append(work, e.To)
			}
		}
	}
	return in
}

// replayBlocks re-runs the transfer function over every reachable block in
// index order, starting each block from its solved entry state. Analyses use
// this as the reporting pass: with the fixpoint known, a second traversal
// with reporting enabled sees every node exactly once under its final facts.
func replayBlocks(g *CFG, tr flowTransfers, solved map[*CFGBlock]flowState) {
	for _, blk := range g.Blocks {
		st, ok := solved[blk]
		if !ok {
			continue
		}
		work := st.clone()
		for _, n := range blk.Nodes {
			tr.transfer(work, n)
		}
	}
}
