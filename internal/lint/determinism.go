package lint

import (
	"go/ast"
	"go/types"
)

// determinismScope is the set of packages whose output must be a pure
// function of their input: graph construction, partitioning, and the kernel
// bodies. Bitwise-reproducible runs (same matrix, same plan, same result)
// are the property the benchmark harness and the plan cache depend on.
var determinismScope = []string{
	"internal/graph",
	"internal/kernels",
	"internal/blas",
	"internal/sparse",
	"internal/program",
	"internal/matgen",
	"internal/precond",
	"internal/roofline",
}

// determinismRandAllowed are the explicitly-seeded constructors: a
// rand.New(rand.NewSource(seed)) stream is deterministic, which is exactly
// how matgen builds reproducible test matrices. The global rand functions
// (rand.Float64 etc.) draw from a process-global, racily-seeded source and
// are banned.
var determinismRandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// isCollectLoop recognizes the sanctioned fix for map-order dependence: a
// range whose body only gathers keys/values into slices (`s = append(s, k)`)
// for sorting afterwards. Order does not escape such a loop until the slice
// is used, at which point the caller has had the chance to sort it.
func isCollectLoop(r *ast.RangeStmt) bool {
	if len(r.Body.List) == 0 {
		return false
	}
	for _, s := range r.Body.List {
		as, ok := s.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		dst, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || fn.Name != "append" || len(call.Args) < 2 {
			return false
		}
		src, ok := call.Args[0].(*ast.Ident)
		if !ok || src.Name != dst.Name {
			return false
		}
	}
	return true
}

// determinismAnalyzer bans nondeterminism sources in graph-build and kernel
// packages: wall-clock reads (time.Now/Since/Until), the global math/rand
// source, and ranging over maps (iteration order is randomized per run).
func determinismAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "determinism",
		Doc:  "no wall clock, global rand, or map-order dependence in graph/kernel packages",
	}
	a.Run = func(pass *Pass) {
		for _, pkg := range pass.Prog.Pkgs {
			if !pathInScope(pkg.Path, determinismScope) {
				continue
			}
			info := pkg.Info
			for _, file := range pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.CallExpr:
						f := calleeFunc(info, n)
						if f == nil || f.Pkg() == nil {
							return true
						}
						switch f.Pkg().Path() {
						case "time":
							switch f.Name() {
							case "Now", "Since", "Until":
								pass.Reportf(n.Pos(), "time.%s reads the wall clock; plan and kernel output must be deterministic", f.Name())
							case "NewTimer", "NewTicker", "Tick", "After", "AfterFunc", "Sleep":
								// Timers are the wall clock by another name: any
								// code whose behaviour branches on one is racing
								// the scheduler.
								pass.Reportf(n.Pos(), "time.%s makes control flow depend on the wall clock; plan and kernel output must be deterministic", f.Name())
							}
						case "math/rand", "math/rand/v2":
							// Methods on *rand.Rand are fine — the stream was
							// seeded explicitly. Package-level draws are not.
							fsig, _ := f.Type().(*types.Signature)
							if fsig != nil && fsig.Recv() == nil && !determinismRandAllowed[f.Name()] {
								pass.Reportf(n.Pos(), "global %s.%s uses the process-wide rand source; use an explicitly seeded rand.New(rand.NewSource(seed))", f.Pkg().Name(), f.Name())
							}
						}
					case *ast.RangeStmt:
						if t := info.TypeOf(n.X); t != nil {
							if _, isMap := t.Underlying().(*types.Map); isMap && !isCollectLoop(n) {
								pass.Reportf(n.Pos(), "map iteration order is nondeterministic; collect and sort keys before ranging")
							}
						}
					}
					return true
				})
			}
		}
	}
	return a
}
