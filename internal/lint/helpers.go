package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// isBuiltinCall reports whether call invokes the named builtin.
func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// isAnyBuiltin reports whether call invokes any language builtin.
func isAnyBuiltin(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// calleeFunc resolves the *types.Func a call statically targets (direct
// function or method calls; nil for builtins, conversions, and calls through
// function values).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// funcFullName is the callee's canonical name, e.g. "time.Sleep",
// "(*sync.WaitGroup).Wait".
func funcFullName(f *types.Func) string {
	if f == nil {
		return ""
	}
	return f.FullName()
}

// pathInScope reports whether a package import path is (or is inside) one of
// the given path suffixes, e.g. suffix "internal/sched" matches
// "sparsetask/internal/sched" and "fixture/internal/sched/sub".
func pathInScope(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if strings.HasSuffix(path, s) || strings.Contains(path, s+"/") {
			return true
		}
	}
	return false
}

// derefType removes one level of pointer indirection.
func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isHTTPRequestPtr reports whether t is *net/http.Request — handlers derive
// their context from the request, so they are exempt from ctxfirst.
func isHTTPRequestPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Request" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// containsLock reports whether t holds a sync primitive that must not be
// copied (Mutex, RWMutex, Cond, WaitGroup, Once), directly or via struct
// fields and arrays.
func containsLock(t types.Type) bool {
	return containsLockRec(t, make(map[types.Type]bool))
}

func containsLockRec(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if n, ok := t.(*types.Named); ok {
		obj := n.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "Cond", "WaitGroup", "Once":
				return true
			}
		}
		return containsLockRec(n.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockRec(u.Elem(), seen)
	}
	return false
}
