package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ctxFirstScope is the set of packages whose exported APIs sit on blocking
// paths: the runtime facade, the scheduler, and the serving layer (shard
// engine and router).
var ctxFirstScope = []string{"internal/rt", "internal/sched", "internal/server", "internal/route"}

// ctxFirstAnalyzer enforces context discipline in the blocking layers:
// context.Context must be the first parameter wherever it appears, exported
// APIs that can block must accept one (http handlers derive theirs from
// *http.Request and io.Closer-shaped Close() is exempt), and a function that
// already has a ctx must propagate it rather than minting
// context.Background/TODO.
func ctxFirstAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "ctxfirst",
		Doc:  "blocking exported APIs in rt/sched/server take context.Context first and propagate it",
	}
	a.Run = func(pass *Pass) {
		for _, pkg := range pass.Prog.Pkgs {
			if !pathInScope(pkg.Path, ctxFirstScope) {
				continue
			}
			for _, file := range pkg.Files {
				for _, decl := range file.Decls {
					switch decl := decl.(type) {
					case *ast.FuncDecl:
						checkCtxFunc(pass, pkg, decl)
					case *ast.GenDecl:
						for _, spec := range decl.Specs {
							ts, ok := spec.(*ast.TypeSpec)
							if !ok {
								continue
							}
							if it, ok := ts.Type.(*ast.InterfaceType); ok && ts.Name.IsExported() {
								checkCtxInterface(pass, pkg, it)
							}
						}
					}
				}
			}
		}
	}
	return a
}

func checkCtxFunc(pass *Pass, pkg *Package, fn *ast.FuncDecl) {
	info := pkg.Info
	sig, _ := info.Defs[fn.Name].(*types.Func)
	if sig == nil {
		return
	}
	st, ok := sig.Type().(*types.Signature)
	if !ok {
		return
	}
	params := st.Params()

	ctxIndex := -1
	hasHTTPReq := false
	for i := 0; i < params.Len(); i++ {
		t := params.At(i).Type()
		if isContextType(t) && ctxIndex < 0 {
			ctxIndex = i
		}
		if isHTTPRequestPtr(t) {
			hasHTTPReq = true
		}
	}
	if ctxIndex > 0 {
		pass.Reportf(fn.Name.Pos(), "context.Context must be the first parameter of %s", fn.Name.Name)
	}

	if fn.Body == nil {
		return
	}

	exported := fn.Name.IsExported() && exportedReceiver(fn, info)
	isCloser := fn.Name.Name == "Close" && params.Len() == 0
	if exported && !isCloser && ctxIndex < 0 && !hasHTTPReq && blockingBody(info, fn.Body) {
		pass.Reportf(fn.Name.Pos(), "exported %s can block but takes no context.Context; accept ctx as the first parameter", fn.Name.Name)
	}

	// Propagation: a function that was handed a ctx must not mint a fresh
	// root context for downstream calls. Re-binding the ctx parameter itself
	// (`if ctx == nil { ctx = context.Background() }`) is the standard
	// defensive default and is allowed.
	if ctxIndex >= 0 {
		ctxParam := st.Params().At(ctxIndex)
		rebind := make(map[*ast.CallExpr]bool)
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || info.ObjectOf(id) != ctxParam {
					continue
				}
				if call, ok := as.Rhs[i].(*ast.CallExpr); ok {
					rebind[call] = true
				}
			}
			return true
		})
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || rebind[call] {
				return true
			}
			switch funcFullName(calleeFunc(info, call)) {
			case "context.Background", "context.TODO":
				pass.Reportf(call.Pos(), "%s already receives a ctx; propagate it instead of %s",
					fn.Name.Name, types.ExprString(call.Fun))
			}
			return true
		})
	}
}

// checkCtxInterface applies the ctx-position rule to exported interface
// methods (the contract callers program against).
func checkCtxInterface(pass *Pass, pkg *Package, it *ast.InterfaceType) {
	for _, m := range it.Methods.List {
		ft, ok := m.Type.(*ast.FuncType)
		if !ok || ft.Params == nil {
			continue
		}
		idx := 0
		for _, f := range ft.Params.List {
			t := pkg.Info.TypeOf(f.Type)
			n := len(f.Names)
			if n == 0 {
				n = 1
			}
			if t != nil && isContextType(t) && idx > 0 {
				for _, name := range m.Names {
					pass.Reportf(f.Type.Pos(), "context.Context must be the first parameter of interface method %s", name.Name)
				}
			}
			idx += n
		}
	}
}

// exportedReceiver reports whether fn is part of the package's exported
// surface: a plain function, or a method on an exported named type.
func exportedReceiver(fn *ast.FuncDecl, info *types.Info) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return true
	}
	t := info.TypeOf(fn.Recv.List[0].Type)
	if t == nil {
		return true
	}
	if n, ok := derefType(t).(*types.Named); ok {
		return n.Obj().Exported()
	}
	return true
}

// blockingBody reports whether body contains an operation that can block:
// channel send/receive, select without default, time.Sleep, WaitGroup.Wait,
// or Cond.Wait. Func literals are skipped — goroutines the function spawns
// block on their own schedule, not the caller's.
func blockingBody(info *types.Info, body *ast.BlockStmt) bool {
	return blockingNode(info, body)
}

// blockingStmt is blockingBody for a single statement (a select clause body
// member).
func blockingStmt(info *types.Info, s ast.Stmt) bool {
	return blockingNode(info, s)
}

func blockingNode(info *types.Info, root ast.Node) bool {
	blocking := false
	ast.Inspect(root, func(n ast.Node) bool {
		if blocking {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			blocking = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				blocking = true
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				blocking = true
				return false
			}
			// A select with a default never blocks, and neither do its comm
			// operations (`case ch <- v:` / `case v := <-ch:`) — they only
			// fire when ready. Walk the clause bodies but skip the comms.
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					for _, s := range cc.Body {
						if blockingStmt(info, s) {
							blocking = true
						}
					}
				}
			}
			return false
		case *ast.CallExpr:
			switch funcFullName(calleeFunc(info, n)) {
			case "time.Sleep", "(*sync.WaitGroup).Wait", "(*sync.Cond).Wait":
				blocking = true
			}
		}
		return true
	})
	return blocking
}
