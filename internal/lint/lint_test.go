package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func tokenPosition(file string, line int) token.Position {
	return token.Position{Filename: file, Line: line}
}

// want is one expectation parsed from a `// want `regexp“ comment in a
// fixture file: a finding must land on that file/line with a matching
// message. Several backtick-quoted regexps may follow one `// want` when a
// line produces several findings.
type want struct {
	file string // base name
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantTokRe = regexp.MustCompile("`([^`]+)`")

func loadWants(t *testing.T, dir string) []*want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			toks := wantTokRe.FindAllStringSubmatch(line[idx:], -1)
			if len(toks) == 0 {
				t.Fatalf("%s:%d: malformed want comment", e.Name(), i+1)
			}
			for _, m := range toks {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", e.Name(), i+1, m[1], err)
				}
				wants = append(wants, &want{file: e.Name(), line: i + 1, re: re})
			}
		}
	}
	return wants
}

// TestAnalyzerFixtures runs each analyzer over its golden fixture package
// and diffs the findings against the `// want` expectations: every finding
// must be expected, every expectation must fire, and the suppressed cases in
// each fixture must stay silent.
func TestAnalyzerFixtures(t *testing.T) {
	cases := []struct {
		name   string // analyzer and fixture directory
		asPath string // import path the fixture loads under (drives scoping)
	}{
		{"hotpathalloc", "fixture/hotpathalloc"},
		{"lockdiscipline", "fixture/lockdiscipline"},
		{"dequeowner", "fixture/dequeowner"},
		{"ctxfirst", "fixture/internal/server"},
		{"determinism", "fixture/internal/kernels"},
		{"atomicfield", "fixture/atomicfield"},
		{"goleak", "fixture/internal/sched"},
		{"bce", "fixture/bce"},
		{"taint", "fixture/internal/server"},
		{"errflow", "fixture/internal/server"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := AnalyzerByName(tc.name)
			if a == nil {
				t.Fatalf("no analyzer %q", tc.name)
			}
			dir := filepath.Join("testdata", "src", tc.name)
			prog, err := LoadFixture(dir, tc.asPath)
			if err != nil {
				t.Fatal(err)
			}
			findings := Run(prog, []*Analyzer{a})
			wants := loadWants(t, dir)
			for _, f := range findings {
				matched := false
				for _, w := range wants {
					if w.file == filepath.Base(f.Pos.Filename) && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
						w.hit = true
						matched = true
					}
				}
				if !matched {
					t.Errorf("unexpected finding: %s", f)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("%s:%d: no finding matched %q", w.file, w.line, w.re)
				}
			}
		})
	}
}

// TestDirectiveValidation checks that malformed suppressions are findings in
// their own right. The missing-reason case is asserted here rather than via
// a want comment, because any trailing comment would itself count as the
// reason.
func TestDirectiveValidation(t *testing.T) {
	dir := filepath.Join("testdata", "src", "directive")
	prog, err := LoadFixture(dir, "fixture/directive")
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(prog, Analyzers())
	if len(findings) != 3 {
		t.Fatalf("want 3 directive findings, got %d: %v", len(findings), findings)
	}
	for _, f := range findings {
		if f.Analyzer != "directive" {
			t.Errorf("finding has analyzer %q, want \"directive\": %s", f.Analyzer, f)
		}
	}
	if !strings.Contains(findings[0].Message, "not a sparselint analyzer") {
		t.Errorf("first finding should flag the unknown target: %s", findings[0])
	}
	if !strings.Contains(findings[1].Message, "needs a reason") {
		t.Errorf("second finding should flag the missing reason: %s", findings[1])
	}
	if !strings.Contains(findings[2].Message, "suppresses nothing") {
		t.Errorf("third finding should flag the stale directive: %s", findings[2])
	}
}

// TestRepoIsClean is the meta-test satellite: the real module must produce
// zero findings, so `make lint` stays green and every annotation/suppression
// in the tree is exercised against the production analyzers.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	if got := len(Analyzers()); got != 10 {
		t.Fatalf("analyzer set has %d entries, want 10 — update this meta-test when adding analyzers", got)
	}
	prog, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(prog, Analyzers())
	for _, f := range findings {
		t.Errorf("repo finding: %s", f)
	}
}

// TestSuppressionRequiresAdjacency pins the directive contract: a
// suppression only covers its own line and the line directly below.
func TestSuppressionRequiresAdjacency(t *testing.T) {
	sup := suppressions{
		{file: "f.go", line: 10, analyzer: "determinism"}: &suppression{
			analyzer: "determinism",
			pos:      tokenPosition("f.go", 10),
		},
	}
	at := func(line int) Finding {
		return Finding{Analyzer: "determinism", Pos: tokenPosition("f.go", line)}
	}
	if sup.matches(at(10)) == nil || sup.matches(at(11)) == nil {
		t.Error("directive must cover its own line and the next")
	}
	if sup.matches(at(9)) != nil || sup.matches(at(12)) != nil {
		t.Error("directive must not cover distant lines")
	}
	other := Finding{Analyzer: "hotpathalloc", Pos: tokenPosition("f.go", 10)}
	if sup.matches(other) != nil {
		t.Error("directive must be analyzer-specific")
	}
}
