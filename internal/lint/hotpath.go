package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotpathAllocAnalyzer enforces the PR-3 zero-allocation contract on
// functions annotated `// sparselint:hotpath`: no closures capturing
// variables, no append without a capacity preallocated in the same function,
// no implicit interface conversions, no fmt calls or string concatenation,
// no map/slice literals, and no make. Expressions inside panic(...)
// arguments are exempt — failure paths never run in steady state, and the
// kernels' shape-mismatch guards format their message right there.
func hotpathAllocAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "hotpathalloc",
		Doc:  "sparselint:hotpath functions must not contain heap-escaping constructs",
	}
	a.Run = func(pass *Pass) {
		for _, pkg := range pass.Prog.Pkgs {
			for _, file := range pkg.Files {
				for _, decl := range file.Decls {
					fn, ok := decl.(*ast.FuncDecl)
					if !ok || fn.Body == nil || !hasAnnotation(fn.Doc, "hotpath") {
						continue
					}
					checkHotFunc(pass, pkg, fn)
				}
			}
		}
	}
	return a
}

func checkHotFunc(pass *Pass, pkg *Package, fn *ast.FuncDecl) {
	info := pkg.Info
	prealloc := preallocatedSlices(info, fn.Body)

	// Spans of panic(...) arguments: constructs inside them only run on the
	// failure path and are exempt.
	type span struct{ lo, hi token.Pos }
	var panicSpans []span
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isBuiltinCall(info, call, "panic") {
			for _, arg := range call.Args {
				panicSpans = append(panicSpans, span{arg.Pos(), arg.End()})
			}
		}
		return true
	})
	exempt := func(pos token.Pos) bool {
		for _, s := range panicSpans {
			if pos >= s.lo && pos < s.hi {
				return true
			}
		}
		return false
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A func literal that captures variables forces a heap-allocated
			// closure (and usually moves the captures to the heap with it).
			// Don't descend: the literal body is a different function.
			if !exempt(n.Pos()) {
				if caps := capturedVars(info, n); len(caps) > 0 {
					pass.Reportf(n.Pos(), "closure captures %s; capturing closures allocate in hot paths", caps[0])
				}
			}
			return false
		case *ast.CallExpr:
			if exempt(n.Pos()) {
				return true
			}
			switch {
			case isBuiltinCall(info, n, "append"):
				if !appendPreallocated(info, n, prealloc) {
					pass.Reportf(n.Pos(), "append may grow its backing array; reslice a preallocated buffer ([:0]) instead")
				}
			case isBuiltinCall(info, n, "make"):
				pass.Reportf(n.Pos(), "make allocates; hoist the allocation out of the hot path")
			default:
				if isAnyBuiltin(info, n) {
					// panic boxes its argument, but it is the failure path;
					// the other builtins (len, cap, copy, delete) don't box.
					return true
				}
				if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
					if types.IsInterface(tv.Type) && len(n.Args) == 1 && isConcrete(info, n.Args[0]) {
						pass.Reportf(n.Pos(), "conversion to interface %s allocates", tv.Type)
					}
					return true
				}
				if callee := calleeFunc(info, n); callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
					pass.Reportf(n.Pos(), "fmt.%s allocates (formatting + interface boxing)", callee.Name())
				}
				checkInterfaceArgs(pass, info, n)
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && !exempt(n.Pos()) {
				if t, ok := info.Types[n]; ok {
					if b, ok := t.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						pass.Reportf(n.Pos(), "string concatenation allocates")
					}
				}
			}
		case *ast.CompositeLit:
			if !exempt(n.Pos()) {
				if t, ok := info.Types[n]; ok {
					switch t.Type.Underlying().(type) {
					case *types.Map:
						pass.Reportf(n.Pos(), "map literal allocates")
					case *types.Slice:
						pass.Reportf(n.Pos(), "slice literal allocates")
					}
				}
			}
		}
		return true
	})
}

// preallocatedSlices collects objects assigned from a slice expression
// (x[a:b], x[:0]) anywhere in body: appending to these reuses a buffer whose
// capacity was provisioned elsewhere, the PR-3 arena pattern.
func preallocatedSlices(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if _, ok := rhs.(*ast.SliceExpr); !ok {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := info.ObjectOf(id); obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// appendPreallocated reports whether the append target is a variable known
// to alias a preallocated buffer in this function.
func appendPreallocated(info *types.Info, call *ast.CallExpr, prealloc map[types.Object]bool) bool {
	if len(call.Args) == 0 {
		return false
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return false
	}
	return prealloc[info.ObjectOf(id)]
}

// checkInterfaceArgs flags arguments whose concrete value is implicitly
// converted to an interface parameter — the boxing that makes fmt-style
// APIs allocate.
func checkInterfaceArgs(pass *Pass, info *types.Info, call *ast.CallExpr) {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos && i == params.Len()-1 {
				pt = params.At(params.Len() - 1).Type() // x... passes the slice itself
			} else if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		if isConcrete(info, arg) {
			pass.Reportf(arg.Pos(), "implicit conversion of %s to interface %s allocates", info.Types[arg].Type, pt)
		}
	}
}

// isConcrete reports whether e has a concrete (non-interface, non-nil) type.
func isConcrete(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return !types.IsInterface(tv.Type)
}

// capturedVars lists variables a func literal references that are declared
// outside it (free variables, excluding package-level objects which do not
// force a closure allocation).
func capturedVars(info *types.Info, lit *ast.FuncLit) []string {
	var out []string
	seen := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		v, isVar := obj.(*types.Var)
		if !isVar || v.IsField() || seen[obj] {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true // declared inside the literal
		}
		if obj.Parent() != nil && obj.Parent().Parent() == types.Universe {
			return true // package scope: no capture needed
		}
		seen[obj] = true
		out = append(out, v.Name())
		return true
	})
	return out
}
