package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// hotpathAllocAnalyzer enforces the PR-3 zero-allocation contract
// interprocedurally. Functions annotated `// sparselint:hotpath` are roots;
// the bans — no closures capturing variables, no append without a capacity
// preallocated in the same function, no implicit interface conversions, no
// fmt calls or string concatenation, no map/slice literals, no make —
// propagate over the whole-module call graph to every function reachable
// from a root: direct calls, interface dispatch (resolved CHA-style), and
// function values taken as values. Expressions inside panic(...) arguments
// are exempt — failure paths never run in steady state.
//
// A reachable function annotated `// sparselint:coldcall <reason>` is a
// boundary: its body is not checked and propagation stops there. The
// annotation is itself validated — the reason is mandatory, combining it
// with sparselint:hotpath is contradictory, and every direct call to a
// coldcall function from hot code must sit in a cold context (a conditional
// branch, a defer, or a panic argument): an unconditional coldcall on the
// steady-state path is a mislabeled hot call.
func hotpathAllocAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "hotpathalloc",
		Doc:  "no heap-escaping constructs reachable from sparselint:hotpath roots (coldcall bounds the walk)",
	}
	a.Run = func(pass *Pass) {
		g := pass.Graph
		cold := coldBoundaries(g, pass)
		reached, via := hotClosure(g, cold)

		for _, f := range g.Funcs() {
			if !reached[f] || cold[f] {
				continue
			}
			decl, pkg := g.DeclOf(f)
			if decl.Body == nil {
				continue
			}
			suffix := ""
			if !hasAnnotation(decl.Doc, "hotpath") {
				suffix = fmt.Sprintf(" [hot path: %s]", g.Chain(via, f))
			}
			checkHotFunc(pass, pkg, decl, suffix)
			checkColdCallSites(pass, g, decl, f, cold, via)
		}
	}
	return a
}

// coldBoundaries collects the sparselint:coldcall-annotated functions and
// validates the annotations themselves: the reason is mandatory, and pairing
// coldcall with hotpath is contradictory. Shared by hotpathalloc and bce so
// both walks stop at the same boundaries (bce passes a nil pass and skips
// the validation half — hotpathalloc owns those findings).
func coldBoundaries(g *CallGraph, pass *Pass) map[*types.Func]bool {
	cold := make(map[*types.Func]bool)
	for _, f := range g.Funcs() {
		decl, _ := g.DeclOf(f)
		reason, ok := annotationArg(decl.Doc, "coldcall")
		if !ok {
			continue
		}
		cold[f] = true
		if pass == nil {
			continue
		}
		if reason == "" {
			pass.Reportf(decl.Name.Pos(), "sparselint:coldcall on %s needs a reason", f.Name())
		}
		if hasAnnotation(decl.Doc, "hotpath") {
			pass.Reportf(decl.Name.Pos(), "%s is annotated both sparselint:hotpath and sparselint:coldcall; pick one", f.Name())
		}
	}
	return cold
}

// hotClosure computes the transitive hot set: everything reachable from a
// hotpath-annotated root, stopping at (but including) coldcall boundaries.
func hotClosure(g *CallGraph, cold map[*types.Func]bool) (map[*types.Func]bool, map[*types.Func]CallEdge) {
	var roots []*types.Func
	for _, f := range g.Funcs() {
		decl, _ := g.DeclOf(f)
		if hasAnnotation(decl.Doc, "hotpath") {
			roots = append(roots, f)
		}
	}
	return g.ReachableFrom(roots, func(f *types.Func) bool { return cold[f] })
}

// checkColdCallSites validates the coldcall boundary contract at f's call
// sites: a direct call from hot code into a coldcall function must be
// conditionally executed (or deferred), never on the unconditional
// steady-state path.
func checkColdCallSites(pass *Pass, g *CallGraph, decl *ast.FuncDecl, f *types.Func, cold map[*types.Func]bool, via map[*types.Func]CallEdge) {
	var spans []coldSpan
	collected := false
	for _, e := range g.EdgesFrom(f) {
		if !cold[e.Callee] || e.Kind != CallDirect {
			continue
		}
		if !collected {
			spans = coldSpans(pass, g.decls[f].Pkg.Info, decl.Body)
			collected = true
		}
		inCold := false
		for _, s := range spans {
			if e.Site >= s.lo && e.Site < s.hi {
				inCold = true
				break
			}
		}
		if !inCold {
			pass.Reportf(e.Site, "sparselint:coldcall %s is called unconditionally from hot code in %s; a cold boundary must sit behind an error/init/panic branch", e.Callee.Name(), f.Name())
		}
	}
}

// coldSpan is a source interval whose statements only execute conditionally:
// if/else bodies, switch cases, select clauses, defers, and panic arguments.
type coldSpan struct{ lo, hi token.Pos }

// coldSpans collects the conditionally-executed intervals of body.
func coldSpans(pass *Pass, info *types.Info, body *ast.BlockStmt) []coldSpan {
	var spans []coldSpan
	add := func(n ast.Node) {
		if n != nil {
			spans = append(spans, coldSpan{n.Pos(), n.End()})
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			add(n.Body)
			add(n.Else)
		case *ast.CaseClause:
			for _, s := range n.Body {
				add(s)
			}
		case *ast.CommClause:
			for _, s := range n.Body {
				add(s)
			}
		case *ast.DeferStmt:
			add(n)
		case *ast.CallExpr:
			if isBuiltinCall(info, n, "panic") {
				for _, arg := range n.Args {
					add(arg)
				}
			}
		}
		return true
	})
	return spans
}

func checkHotFunc(pass *Pass, pkg *Package, fn *ast.FuncDecl, suffix string) {
	info := pkg.Info
	prealloc := preallocatedSlices(info, fn.Body)
	// Findings in propagated (unannotated) functions carry the provenance
	// chain back to their hotpath root.
	report := func(pos token.Pos, format string, args ...any) {
		pass.Reportf(pos, format+"%s", append(args, suffix)...)
	}

	// Spans of panic(...) arguments: constructs inside them only run on the
	// failure path and are exempt.
	type span struct{ lo, hi token.Pos }
	var panicSpans []span
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isBuiltinCall(info, call, "panic") {
			for _, arg := range call.Args {
				panicSpans = append(panicSpans, span{arg.Pos(), arg.End()})
			}
		}
		return true
	})
	exempt := func(pos token.Pos) bool {
		for _, s := range panicSpans {
			if pos >= s.lo && pos < s.hi {
				return true
			}
		}
		return false
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A func literal that captures variables forces a heap-allocated
			// closure (and usually moves the captures to the heap with it).
			// Don't descend: the literal body is a different function.
			if !exempt(n.Pos()) {
				if caps := capturedVars(info, n); len(caps) > 0 {
					report(n.Pos(), "closure captures %s; capturing closures allocate in hot paths", caps[0])
				}
			}
			return false
		case *ast.CallExpr:
			if exempt(n.Pos()) {
				return true
			}
			switch {
			case isBuiltinCall(info, n, "append"):
				if !appendPreallocated(info, n, prealloc) {
					report(n.Pos(), "append may grow its backing array; reslice a preallocated buffer ([:0]) instead")
				}
			case isBuiltinCall(info, n, "make"):
				report(n.Pos(), "make allocates; hoist the allocation out of the hot path")
			default:
				if isAnyBuiltin(info, n) {
					// panic boxes its argument, but it is the failure path;
					// the other builtins (len, cap, copy, delete) don't box.
					return true
				}
				if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
					if types.IsInterface(tv.Type) && len(n.Args) == 1 && isConcrete(info, n.Args[0]) {
						report(n.Pos(), "conversion to interface %s allocates", tv.Type)
					}
					return true
				}
				if callee := calleeFunc(info, n); callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
					report(n.Pos(), "fmt.%s allocates (formatting + interface boxing)", callee.Name())
				}
				checkInterfaceArgs(report, info, n)
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && !exempt(n.Pos()) {
				if t, ok := info.Types[n]; ok {
					if b, ok := t.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(n.Pos(), "string concatenation allocates")
					}
				}
			}
		case *ast.CompositeLit:
			if !exempt(n.Pos()) {
				if t, ok := info.Types[n]; ok {
					switch t.Type.Underlying().(type) {
					case *types.Map:
						report(n.Pos(), "map literal allocates")
					case *types.Slice:
						report(n.Pos(), "slice literal allocates")
					}
				}
			}
		}
		return true
	})
}

// preallocatedSlices collects objects assigned from a slice expression
// (x[a:b], x[:0]) anywhere in body: appending to these reuses a buffer whose
// capacity was provisioned elsewhere, the PR-3 arena pattern.
func preallocatedSlices(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if _, ok := rhs.(*ast.SliceExpr); !ok {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := info.ObjectOf(id); obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// appendPreallocated reports whether the append target is a variable known
// to alias a preallocated buffer in this function.
func appendPreallocated(info *types.Info, call *ast.CallExpr, prealloc map[types.Object]bool) bool {
	if len(call.Args) == 0 {
		return false
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return false
	}
	return prealloc[info.ObjectOf(id)]
}

// checkInterfaceArgs flags arguments whose concrete value is implicitly
// converted to an interface parameter — the boxing that makes fmt-style
// APIs allocate.
func checkInterfaceArgs(report func(token.Pos, string, ...any), info *types.Info, call *ast.CallExpr) {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos && i == params.Len()-1 {
				pt = params.At(params.Len() - 1).Type() // x... passes the slice itself
			} else if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		if isConcrete(info, arg) {
			report(arg.Pos(), "implicit conversion of %s to interface %s allocates", info.Types[arg].Type, pt)
		}
	}
}

// isConcrete reports whether e has a concrete (non-interface, non-nil) type.
func isConcrete(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return !types.IsInterface(tv.Type)
}

// capturedVars lists variables a func literal references that are declared
// outside it (free variables, excluding package-level objects which do not
// force a closure allocation).
func capturedVars(info *types.Info, lit *ast.FuncLit) []string {
	var out []string
	seen := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		v, isVar := obj.(*types.Var)
		if !isVar || v.IsField() || seen[obj] {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true // declared inside the literal
		}
		if obj.Parent() != nil && obj.Parent().Parent() == types.Universe {
			return true // package scope: no capture needed
		}
		seen[obj] = true
		out = append(out, v.Name())
		return true
	})
	return out
}
