package lint

import (
	"go/ast"
	"go/token"
)

// This file builds the per-function control-flow graph the dataflow engine
// (dataflow.go) solves over. Blocks hold the nodes evaluated on that path —
// plain expressions (conditions, case expressions) and simple statements
// (assignments, sends, go/defer, returns) — never composite statements, so a
// transfer function can walk a node without re-entering nested control flow.
// Two wrapper nodes mark spots where the surrounding construct matters to an
// analyzer: rangeBind (the per-iteration key/value binding of a range loop)
// and loopCond (a for-loop condition, which is a resource sink for taint when
// the bound is untrusted).

// CFGEdge is one successor edge. When Cond is non-nil the edge is taken
// exactly when Cond evaluates to true (Negated false) or false (Negated
// true), so an analysis can refine its facts per branch.
type CFGEdge struct {
	To      *CFGBlock
	Cond    ast.Expr
	Negated bool
}

// CFGBlock is a straight-line run of evaluated nodes followed by zero or
// more successor edges. A block with no incoming edges (other than Entry)
// is unreachable and never acquires dataflow facts.
type CFGBlock struct {
	Index int
	Nodes []ast.Node
	Succs []CFGEdge
}

// CFG is the control-flow graph of one function body. Exit collects every
// return and the fall-off-the-end path; Blocks is in creation order, which
// follows source order closely enough for deterministic reporting passes.
type CFG struct {
	Entry  *CFGBlock
	Exit   *CFGBlock
	Blocks []*CFGBlock
}

// rangeBind marks the per-iteration binding of a range statement: Range.Key
// and Range.Value are (re)assigned from Range.X at the top of each
// iteration. The loop body is not inside this node.
type rangeBind struct {
	Range *ast.RangeStmt
}

func (r *rangeBind) Pos() token.Pos { return r.Range.Pos() }
func (r *rangeBind) End() token.Pos { return r.Range.TokPos }

// loopCond wraps a for-statement condition so analyses can tell a loop bound
// apart from an ordinary branch. SpawnsGo records whether the loop body
// contains a go statement — an untrusted bound on such a loop is an
// unbounded goroutine spawn.
type loopCond struct {
	Cond     ast.Expr
	SpawnsGo bool
}

func (l *loopCond) Pos() token.Pos { return l.Cond.Pos() }
func (l *loopCond) End() token.Pos { return l.Cond.End() }

// cfgCtx is one enclosing breakable construct (for/switch/select), with the
// continue target when it is a loop.
type cfgCtx struct {
	label      string
	breakTo    *CFGBlock
	continueTo *CFGBlock // nil for switch/select
}

type cfgBuilder struct {
	g            *CFG
	cur          *CFGBlock // nil while the current point is unreachable
	ctxs         []cfgCtx
	labels       map[string]*CFGBlock
	pendingLabel string
	fallthroughs []*CFGBlock // per-switch stack of "next clause" targets
}

// buildCFG constructs the CFG of one function body. Func literals inside the
// body are treated as opaque values: their own bodies get their own CFGs.
func buildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{g: &CFG{}, labels: make(map[string]*CFGBlock)}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	b.stmt(body)
	b.jump(b.g.Exit)
	return b.g
}

func (b *cfgBuilder) newBlock() *CFGBlock {
	blk := &CFGBlock{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// add appends an evaluated node to the current block, reviving an
// unreachable point into a fresh predecessor-less block so the node is still
// recorded (analyses skip blocks without facts).
func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) edge(from, to *CFGBlock, cond ast.Expr, negated bool) {
	from.Succs = append(from.Succs, CFGEdge{To: to, Cond: cond, Negated: negated})
}

// jump wires the current point to target (if reachable) and leaves the
// builder positioned nowhere.
func (b *cfgBuilder) jump(target *CFGBlock) {
	if b.cur != nil {
		b.edge(b.cur, target, nil, false)
	}
	b.cur = nil
}

// takeLabel consumes the label a surrounding LabeledStmt left for the
// construct being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) labelBlock(name string) *CFGBlock {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

// findCtx resolves a break/continue target: the innermost matching context,
// or the labeled one.
func (b *cfgBuilder) findCtx(label string, needContinue bool) *cfgCtx {
	for i := len(b.ctxs) - 1; i >= 0; i-- {
		c := &b.ctxs[i]
		if needContinue && c.continueTo == nil {
			continue
		}
		if label == "" || c.label == label {
			return c
		}
	}
	return nil
}

func containsGoStmt(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			found = true
		}
		return !found
	})
	return found
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.jump(lb)
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.IfStmt:
		b.add(s.Init)
		b.add(s.Cond)
		head := b.cur
		if head == nil {
			head = b.newBlock()
			b.cur = head
		}
		then := b.newBlock()
		join := b.newBlock()
		b.edge(head, then, s.Cond, false)
		var elseB *CFGBlock
		if s.Else != nil {
			elseB = b.newBlock()
			b.edge(head, elseB, s.Cond, true)
		} else {
			b.edge(head, join, s.Cond, true)
		}
		b.cur = then
		b.stmt(s.Body)
		b.jump(join)
		if s.Else != nil {
			b.cur = elseB
			b.stmt(s.Else)
			b.jump(join)
		}
		b.cur = join
	case *ast.ForStmt:
		label := b.takeLabel()
		b.add(s.Init)
		head := b.newBlock()
		b.jump(head)
		b.cur = head
		body := b.newBlock()
		after := b.newBlock()
		if s.Cond != nil {
			b.add(&loopCond{Cond: s.Cond, SpawnsGo: containsGoStmt(s.Body)})
			b.edge(head, body, s.Cond, false)
			b.edge(head, after, s.Cond, true)
		} else {
			b.edge(head, body, nil, false)
		}
		post := b.newBlock()
		b.ctxs = append(b.ctxs, cfgCtx{label: label, breakTo: after, continueTo: post})
		b.cur = body
		b.stmt(s.Body)
		b.jump(post)
		b.ctxs = b.ctxs[:len(b.ctxs)-1]
		b.cur = post
		b.add(s.Post)
		b.jump(head)
		b.cur = after
	case *ast.RangeStmt:
		label := b.takeLabel()
		b.add(s.X)
		head := b.newBlock()
		b.jump(head)
		b.cur = head
		b.add(&rangeBind{Range: s})
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body, nil, false)
		b.edge(head, after, nil, false)
		b.ctxs = append(b.ctxs, cfgCtx{label: label, breakTo: after, continueTo: head})
		b.cur = body
		b.stmt(s.Body)
		b.jump(head)
		b.ctxs = b.ctxs[:len(b.ctxs)-1]
		b.cur = after
	case *ast.SwitchStmt:
		label := b.takeLabel()
		b.add(s.Init)
		b.add(s.Tag)
		b.buildClauses(label, s.Tag == nil, s.Body.List)
	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		b.add(s.Init)
		b.add(s.Assign)
		b.buildClauses(label, false, s.Body.List)
	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		if head == nil {
			head = b.newBlock()
		}
		after := b.newBlock()
		b.ctxs = append(b.ctxs, cfgCtx{label: label, breakTo: after})
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			blk := b.newBlock()
			b.edge(head, blk, nil, false)
			b.cur = blk
			b.stmt(cc.Comm)
			for _, st := range cc.Body {
				b.stmt(st)
			}
			b.jump(after)
		}
		b.ctxs = b.ctxs[:len(b.ctxs)-1]
		b.cur = after
	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			if c := b.findCtx(label, false); c != nil {
				b.jump(c.breakTo)
			} else {
				b.cur = nil
			}
		case token.CONTINUE:
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			if c := b.findCtx(label, true); c != nil {
				b.jump(c.continueTo)
			} else {
				b.cur = nil
			}
		case token.GOTO:
			if s.Label != nil {
				b.jump(b.labelBlock(s.Label.Name))
			} else {
				b.cur = nil
			}
		case token.FALLTHROUGH:
			if n := len(b.fallthroughs); n > 0 && b.fallthroughs[n-1] != nil {
				b.jump(b.fallthroughs[n-1])
			} else {
				b.cur = nil
			}
		}
	case *ast.ExprStmt:
		b.add(s)
		// A panic statement terminates the path, which keeps facts on the
		// surviving branch of `if bad { panic(...) }` precise.
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				b.jump(b.g.Exit)
			}
		}
	default:
		// Simple statements: assignments, declarations, inc/dec, send,
		// go/defer. Evaluated in place as single nodes.
		b.add(s)
	}
}

// buildClauses wires the case clauses of a switch or type switch. boolCases
// is true for a tagless switch, where a single case expression is the branch
// condition and can refine facts.
func (b *cfgBuilder) buildClauses(label string, boolCases bool, clauses []ast.Stmt) {
	head := b.cur
	if head == nil {
		head = b.newBlock()
	}
	after := b.newBlock()
	b.ctxs = append(b.ctxs, cfgCtx{label: label, breakTo: after})

	bodies := make([]*CFGBlock, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		bodies[i] = b.newBlock()
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	for i, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if boolCases && len(cc.List) == 1 {
			b.edge(head, bodies[i], cc.List[0], false)
		} else {
			b.edge(head, bodies[i], nil, false)
		}
	}
	if !hasDefault {
		b.edge(head, after, nil, false)
	}
	for i, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		b.cur = bodies[i]
		for _, e := range cc.List {
			b.add(e)
		}
		next := (*CFGBlock)(nil)
		if i+1 < len(bodies) {
			next = bodies[i+1]
		}
		b.fallthroughs = append(b.fallthroughs, next)
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.fallthroughs = b.fallthroughs[:len(b.fallthroughs)-1]
		b.jump(after)
	}
	b.ctxs = b.ctxs[:len(b.ctxs)-1]
	b.cur = after
}
