package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"sparsetask/internal/rt"
	"sparsetask/internal/topo"
)

// Config sizes the engine (and the Server that wraps it).
type Config struct {
	// QueueSize bounds the FIFO admission queue; a full queue rejects new
	// jobs with ErrQueueFull (HTTP 429). Default 64.
	QueueSize int
	// Workers is the pool size — how many jobs (or batches) execute
	// concurrently. Default 2.
	Workers int
	// RTWorkers is the default per-job runtime worker count (0 =
	// GOMAXPROCS). Jobs may override with JobSpec.Workers.
	RTWorkers int
	// PlanCacheSize bounds the autotune plan LRU. Default 128.
	PlanCacheSize int
	// FactorCacheSize bounds the pcg preconditioner-factorization LRU.
	// Default 32 (factors hold two CSR copies of the matrix's lower
	// triangle, so the default is deliberately smaller than the plan cache).
	FactorCacheSize int
	// Topo names the machine-topology profile every backend runtime is built
	// with ("flat", "auto", "broadwell", "epyc"). Unknown or empty names fall
	// back to flat; cmd/solverd validates the flag before it gets here. The
	// profile is part of the plan-cache key and reported on /metrics.
	Topo string
	// CoalesceMax caps how many same-matrix cg/pcg jobs the dispatcher may
	// merge into one multi-RHS batched solve. Values <= 1 disable coalescing
	// entirely: the pool consumes the admission queue directly, exactly as
	// before the coalescer existed. Default 1 (disabled); cmd/solverd
	// defaults its -coalesce flag to 8.
	CoalesceMax int
	// CoalesceWindow is how long the dispatcher holds a batchable job open
	// waiting for same-matrix arrivals before dispatching the group. Only
	// consulted when CoalesceMax > 1. Default 2ms.
	CoalesceWindow time.Duration
}

func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.PlanCacheSize <= 0 {
		c.PlanCacheSize = 128
	}
	if c.FactorCacheSize <= 0 {
		c.FactorCacheSize = 32
	}
	if c.CoalesceMax <= 0 {
		c.CoalesceMax = 1
	}
	if c.CoalesceWindow <= 0 {
		c.CoalesceWindow = 2 * time.Millisecond
	}
	return c
}

// Admission errors returned by Engine.Submit. The HTTP skin maps them to 503
// and 429; other transports (internal/route proxies them verbatim) do the
// same mapping on their side.
var (
	// ErrDraining rejects submissions while the engine is shutting down.
	ErrDraining = errors.New("server is draining")
	// ErrQueueFull rejects submissions when the admission queue is at
	// capacity — the backpressure signal the router's spill logic keys off.
	ErrQueueFull = errors.New("queue full")
)

// Engine is solverd's transport-agnostic core: the bounded admission queue,
// the batch coalescer, the worker pool, the autotune plan and IC(0) factor
// caches, and the per-(backend,workers) runtime instances. It knows nothing
// about HTTP — Server wraps it in handlers, and tests or alternative
// transports can drive Submit/JobByID/Cancel/Drain directly.
type Engine struct {
	cfg     Config
	topo    topo.Topology
	metrics *Metrics
	plans   *PlanCache
	factors *FactorCache
	queue   chan *Job
	// batches carries dispatcher groups to the pool; nil unless coalescing
	// is enabled (CoalesceMax > 1).
	batches chan []*Job

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for GET /jobs
	seq      int64
	batchSeq int64
	draining bool
	runtimes map[runtimeKey]rt.Runtime // shared per-(backend,workers) instances

	baseCtx    context.Context
	baseCancel context.CancelFunc
	workers    sync.WaitGroup
}

// NewEngine starts the worker pool (and, when coalescing is enabled, the
// dispatcher) and returns a ready engine.
func NewEngine(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	tp, err := topo.ByName(cfg.Topo)
	if err != nil {
		tp = topo.Flat() // library callers stay lenient; cmd validates the flag
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		cfg:        cfg,
		topo:       tp,
		metrics:    &Metrics{},
		plans:      NewPlanCache(cfg.PlanCacheSize),
		factors:    NewFactorCache(cfg.FactorCacheSize),
		queue:      make(chan *Job, cfg.QueueSize),
		jobs:       make(map[string]*Job),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	if e.coalescing() {
		e.batches = make(chan []*Job)
		e.workers.Add(cfg.Workers + 1)
		go e.dispatch()
		for i := 0; i < cfg.Workers; i++ {
			go e.batchWorker()
		}
	} else {
		e.workers.Add(cfg.Workers)
		for i := 0; i < cfg.Workers; i++ {
			go e.worker()
		}
	}
	return e
}

func (e *Engine) coalescing() bool { return e.cfg.CoalesceMax > 1 }

// Config returns the engine's resolved (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// Drain performs a graceful shutdown: stop admitting jobs (Submit returns
// ErrDraining, /healthz flips to draining), let queued and running jobs
// finish, and return. If ctx expires first, running jobs are hard-cancelled
// (they terminate at task granularity) and Drain returns ctx's error after
// the pool exits.
func (e *Engine) Drain(ctx context.Context) error {
	e.mu.Lock()
	if !e.draining {
		e.draining = true
		close(e.queue) // senders hold mu and check draining first
	}
	e.mu.Unlock()

	done := make(chan struct{})
	go func() {
		e.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		e.baseCancel()
		<-done
		return ctx.Err()
	}
}

// worker drains the admission queue directly (coalescing disabled).
func (e *Engine) worker() {
	defer e.workers.Done()
	for job := range e.queue {
		e.execute(job)
	}
}

// batchWorker drains dispatcher groups until dispatch closes the channel.
func (e *Engine) batchWorker() {
	defer e.workers.Done()
	for group := range e.batches {
		e.executeBatch(group)
	}
}

// coalesceKey is the batch-compatibility key: jobs coalesce into one
// multi-RHS solve only when every field matches, so every member runs the
// same solver on the same backend against byte-identical matrix data with
// the same tiling override and worker count, differing only in the RHS seed.
type coalesceKey struct {
	solver  string
	backend string
	workers int
	block   int
	matrix  string
}

// coalesceKeyFor returns a job's batch key and whether the job is batchable
// at all. Only cg and pcg solve against a right-hand side, and the batched
// iteration has no per-column deadline, so jobs with DeadlineMS keep the
// single-job path. The matrix is keyed by *identity* (generator coordinates
// or MM document hash, see MatrixSpec.identity), not structural fingerprint:
// two generator seeds share a sparsity pattern — and hence a fingerprint —
// while holding different values, and must never share a solve.
func coalesceKeyFor(spec JobSpec) (coalesceKey, bool) {
	if spec.Solver != "cg" && spec.Solver != "pcg" {
		return coalesceKey{}, false
	}
	if spec.DeadlineMS > 0 {
		return coalesceKey{}, false
	}
	return coalesceKey{
		solver:  spec.Solver,
		backend: spec.Backend,
		workers: spec.Workers,
		block:   spec.Block,
		matrix:  spec.Matrix.identity(),
	}, true
}

// dispatch is the batch coalescer: it sits between the admission queue and
// the pool, grouping consecutive batchable jobs that share a coalesceKey into
// one multi-RHS solve. A group closes when it reaches CoalesceMax, when the
// CoalesceWindow expires, or when a non-matching job arrives (which then
// seeds the next group — grouping never reorders the queue). Non-batchable
// jobs pass through as singleton groups immediately.
func (e *Engine) dispatch() {
	defer e.workers.Done()
	var pending *Job
	for {
		job := pending
		pending = nil
		if job == nil {
			var ok bool
			job, ok = <-e.queue
			if !ok {
				close(e.batches)
				return
			}
		}
		key, batchable := coalesceKeyFor(job.Spec)
		if !batchable {
			e.batches <- []*Job{job}
			continue
		}
		group := []*Job{job}
		timer := time.NewTimer(e.cfg.CoalesceWindow)
		closed := false
	collect:
		for len(group) < e.cfg.CoalesceMax {
			select {
			case next, ok := <-e.queue:
				if !ok {
					closed = true
					break collect
				}
				if nkey, nb := coalesceKeyFor(next.Spec); nb && nkey == key {
					group = append(group, next)
				} else {
					pending = next
					break collect
				}
			case <-timer.C:
				break collect
			}
		}
		timer.Stop()
		e.batches <- group
		if closed {
			close(e.batches)
			return
		}
	}
}

// Submit registers and enqueues a job. It returns ErrDraining during
// shutdown and an error wrapping ErrQueueFull when the admission queue is at
// capacity.
func (e *Engine) Submit(spec JobSpec) (*Job, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.draining {
		return nil, ErrDraining
	}
	e.seq++
	job := &Job{
		ID:        fmt.Sprintf("job-%d", e.seq),
		Spec:      spec,
		state:     StateQueued,
		submitted: time.Now(),
	}
	select {
	case e.queue <- job:
	default:
		e.seq-- // never existed
		e.metrics.Rejected.Add(1)
		return nil, fmt.Errorf("%w (%d jobs)", ErrQueueFull, cap(e.queue))
	}
	e.jobs[job.ID] = job
	e.order = append(e.order, job.ID)
	e.metrics.Submitted.Add(1)
	return job, nil
}

// JobByID returns a tracked job, or nil.
func (e *Engine) JobByID(id string) *Job {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.jobs[id]
}

// Views snapshots every tracked job in submission order.
func (e *Engine) Views() []JobView {
	e.mu.Lock()
	views := make([]JobView, 0, len(e.order))
	for _, id := range e.order {
		views = append(views, e.jobs[id].View())
	}
	e.mu.Unlock()
	return views
}

// Cancel cancels a job: queued jobs flip to canceled immediately (the pool
// and the dispatcher skip them), running jobs get their context cancelled —
// for a batched job that means registering a member vote; the shared solve
// aborts once every member has voted (see batchCancel) — and reach canceled
// once the runtime unwinds. Terminal jobs are left alone.
func (e *Engine) Cancel(j *Job) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		j.err = "canceled while queued"
		j.finished = time.Now()
		e.metrics.Canceled.Add(1)
		e.metrics.Total.Observe(j.finished.Sub(j.submitted))
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
	}
}
