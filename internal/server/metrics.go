package server

import (
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sparsetask/internal/sched"
)

// histBuckets is the number of power-of-two latency buckets: bucket i counts
// observations in [2^i, 2^(i+1)) microseconds, so the range spans 1 µs to
// ~2.3 h — wide enough for both plan lookups and multi-minute solves.
const histBuckets = 33

// Histogram is a fixed-bucket log2 latency histogram. Stdlib-only stand-in
// for a Prometheus histogram; quantiles are estimated from bucket midpoints.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sumNs   int64
	buckets [histBuckets]int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	us := d.Microseconds()
	b := 0
	for us >= 2 && b < histBuckets-1 {
		us >>= 1
		b++
	}
	h.mu.Lock()
	h.count++
	h.sumNs += d.Nanoseconds()
	h.buckets[b]++
	h.mu.Unlock()
}

// HistogramSnapshot is the JSON form served on /metrics.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	SumMS float64 `json:"sum_ms"`
	AvgMS float64 `json:"avg_ms"`
	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`
}

// Snapshot freezes the histogram into counts and estimated quantiles.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	count, sum := h.count, h.sumNs
	var b [histBuckets]int64
	copy(b[:], h.buckets[:])
	h.mu.Unlock()

	s := HistogramSnapshot{Count: count, SumMS: float64(sum) / 1e6}
	if count == 0 {
		return s
	}
	s.AvgMS = s.SumMS / float64(count)
	q := func(p float64) float64 {
		target := int64(math.Ceil(p * float64(count)))
		var seen int64
		for i := 0; i < histBuckets; i++ {
			seen += b[i]
			if seen >= target {
				// Geometric midpoint of [2^i, 2^(i+1)) microseconds.
				return math.Sqrt2 * float64(int64(1)<<i) / 1000
			}
		}
		return s.AvgMS
	}
	s.P50MS, s.P90MS, s.P99MS = q(0.50), q(0.90), q(0.99)
	return s
}

// HistogramSet keys Histograms by a small dynamic label — the solver kind —
// for the per-kind latency breakdowns on /metrics.
type HistogramSet struct {
	mu sync.Mutex
	m  map[string]*Histogram
}

// Observe records one duration under the given kind.
func (s *HistogramSet) Observe(kind string, d time.Duration) {
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[string]*Histogram)
	}
	h := s.m[kind]
	if h == nil {
		h = &Histogram{}
		s.m[kind] = h
	}
	s.mu.Unlock()
	h.Observe(d)
}

// Snapshot freezes every kind's histogram. Never nil, so the JSON field is
// {} rather than null before the first observation.
func (s *HistogramSet) Snapshot() map[string]HistogramSnapshot {
	s.mu.Lock()
	hs := make(map[string]*Histogram, len(s.m))
	for k, h := range s.m {
		hs[k] = h
	}
	s.mu.Unlock()
	out := make(map[string]HistogramSnapshot, len(hs))
	for k, h := range hs {
		out[k] = h.Snapshot()
	}
	return out
}

// SizeHistogram counts small integer observations — dispatcher batch sizes —
// exactly, rather than in log buckets.
type SizeHistogram struct {
	mu     sync.Mutex
	counts map[int]int64
	count  int64
	sum    int64
	max    int
}

// Observe records one size.
func (h *SizeHistogram) Observe(n int) {
	h.mu.Lock()
	if h.counts == nil {
		h.counts = make(map[int]int64)
	}
	h.counts[n]++
	h.count++
	h.sum += int64(n)
	if n > h.max {
		h.max = n
	}
	h.mu.Unlock()
}

// SizeHistogramSnapshot is the JSON form of a SizeHistogram: exact counts
// keyed by decimal size.
type SizeHistogramSnapshot struct {
	Count int64            `json:"count"`
	Avg   float64          `json:"avg"`
	Max   int              `json:"max"`
	Sizes map[string]int64 `json:"sizes"`
}

// Snapshot freezes the size counts.
func (h *SizeHistogram) Snapshot() SizeHistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := SizeHistogramSnapshot{Count: h.count, Max: h.max, Sizes: make(map[string]int64, len(h.counts))}
	if h.count > 0 {
		s.Avg = float64(h.sum) / float64(h.count)
	}
	for n, c := range h.counts {
		s.Sizes[strconv.Itoa(n)] = c
	}
	return s
}

// SizeHistogramSet keys SizeHistograms by solver kind.
type SizeHistogramSet struct {
	mu sync.Mutex
	m  map[string]*SizeHistogram
}

// Observe records one size under the given kind.
func (s *SizeHistogramSet) Observe(kind string, n int) {
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[string]*SizeHistogram)
	}
	h := s.m[kind]
	if h == nil {
		h = &SizeHistogram{}
		s.m[kind] = h
	}
	s.mu.Unlock()
	h.Observe(n)
}

// Snapshot freezes every kind's size histogram (never nil).
func (s *SizeHistogramSet) Snapshot() map[string]SizeHistogramSnapshot {
	s.mu.Lock()
	hs := make(map[string]*SizeHistogram, len(s.m))
	for k, h := range s.m {
		hs[k] = h
	}
	s.mu.Unlock()
	out := make(map[string]SizeHistogramSnapshot, len(hs))
	for k, h := range hs {
		out[k] = h.Snapshot()
	}
	return out
}

// Metrics aggregates the service counters exported on /metrics. All fields
// are updated lock-free; gauges (queue depth, per-state job counts) are
// computed at snapshot time by the server.
type Metrics struct {
	Submitted atomic.Int64 // jobs accepted into the queue
	Rejected  atomic.Int64 // jobs refused with 429 (queue full)
	Done      atomic.Int64
	Failed    atomic.Int64
	Canceled  atomic.Int64 // explicit DELETE or deadline expiry

	PlanHits       atomic.Int64
	PlanMisses     atomic.Int64
	AutotuneSweeps atomic.Int64 // six-trial block-size searches actually run

	Factorizations atomic.Int64 // IC(0) factorizations actually run (pcg misses)
	LevelAnalyses  atomic.Int64 // triangular level analyses actually run

	CoalescedBatches atomic.Int64 // dispatcher groups that merged >= 2 jobs
	BatchedJobs      atomic.Int64 // jobs executed via a multi-RHS batched solve

	QueueWait     Histogram        // submit → execution start
	QueueWaitKind HistogramSet     // queue wait broken out by solver kind
	BatchSizes    SizeHistogramSet // dispatcher group sizes by solver kind
	PlanStage     Histogram        // matrix build + fingerprint + plan lookup/tune
	Solve         Histogram        // solver execution proper
	Total         Histogram        // submit → terminal state
}

// MetricsSnapshot is the /metrics response body.
type MetricsSnapshot struct {
	Queue struct {
		Depth    int `json:"depth"`
		Capacity int `json:"capacity"`
	} `json:"queue"`
	Jobs struct {
		Submitted int64 `json:"submitted"`
		Rejected  int64 `json:"rejected"`
		Queued    int   `json:"queued"`
		Running   int   `json:"running"`
		Done      int64 `json:"done"`
		Failed    int64 `json:"failed"`
		Canceled  int64 `json:"canceled"`
	} `json:"jobs"`
	PlanCache struct {
		Hits           int64 `json:"hits"`
		Misses         int64 `json:"misses"`
		Evictions      int64 `json:"evictions"`
		Size           int   `json:"size"`
		Capacity       int   `json:"capacity"`
		AutotuneSweeps int64 `json:"autotune_sweeps"`
	} `json:"plan_cache"`
	FactorCache struct {
		Hits      int64 `json:"hits"`
		Misses    int64 `json:"misses"`
		Evictions int64 `json:"evictions"`
		Size      int   `json:"size"`
		Capacity  int   `json:"capacity"`
		// Factorizations counts IC(0) numeric factorizations actually run;
		// LevelAnalyses counts triangular level analyses actually run. Both
		// stay flat on repeat traffic for a cached matrix.
		Factorizations int64 `json:"factorizations"`
		LevelAnalyses  int64 `json:"level_analyses"`
	} `json:"factor_cache"`
	Batching struct {
		// Enabled reports whether the dispatcher coalescer is active
		// (CoalesceMax > 1); Max and WindowMS echo its configuration.
		Enabled  bool    `json:"enabled"`
		Max      int     `json:"max"`
		WindowMS float64 `json:"window_ms"`
		// CoalescedBatches counts dispatcher groups that merged >= 2 jobs;
		// BatchedJobs counts the jobs those groups contained.
		CoalescedBatches int64 `json:"coalesced_batches"`
		BatchedJobs      int64 `json:"batched_jobs"`
		// SizeByKind is the exact dispatcher group-size distribution per
		// solver kind (empty while coalescing is disabled).
		SizeByKind map[string]SizeHistogramSnapshot `json:"size_by_kind"`
	} `json:"batching"`
	Latency struct {
		QueueWait HistogramSnapshot `json:"queue_wait"`
		// QueueWaitByKind breaks queue wait out per solver kind — the signal
		// that shows whether batchable (cg/pcg) traffic pays for the
		// coalesce window relative to pass-through kinds.
		QueueWaitByKind map[string]HistogramSnapshot `json:"queue_wait_by_kind"`
		Plan            HistogramSnapshot            `json:"plan"`
		Solve           HistogramSnapshot            `json:"solve"`
		Total           HistogramSnapshot            `json:"total"`
	} `json:"latency"`
	Topology struct {
		// Profile is the configured machine-topology profile, e.g. "epyc(8d)".
		Profile string `json:"profile"`
		// Domains is the profile's locality-domain count.
		Domains int `json:"domains"`
		// Locality aggregates the scheduler locality counters over every
		// backend runtime the server has built (completed executions only).
		Locality sched.LocalityStats `json:"locality"`
		// DomainLocalShare is the fraction of affinity-carrying tasks that
		// executed in their preferred domain (1.0 when nothing carried one).
		DomainLocalShare float64 `json:"domain_local_share"`
	} `json:"topology"`
}
