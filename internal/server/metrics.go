package server

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"sparsetask/internal/sched"
)

// histBuckets is the number of power-of-two latency buckets: bucket i counts
// observations in [2^i, 2^(i+1)) microseconds, so the range spans 1 µs to
// ~2.3 h — wide enough for both plan lookups and multi-minute solves.
const histBuckets = 33

// Histogram is a fixed-bucket log2 latency histogram. Stdlib-only stand-in
// for a Prometheus histogram; quantiles are estimated from bucket midpoints.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sumNs   int64
	buckets [histBuckets]int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	us := d.Microseconds()
	b := 0
	for us >= 2 && b < histBuckets-1 {
		us >>= 1
		b++
	}
	h.mu.Lock()
	h.count++
	h.sumNs += d.Nanoseconds()
	h.buckets[b]++
	h.mu.Unlock()
}

// HistogramSnapshot is the JSON form served on /metrics.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	SumMS float64 `json:"sum_ms"`
	AvgMS float64 `json:"avg_ms"`
	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`
}

// Snapshot freezes the histogram into counts and estimated quantiles.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	count, sum := h.count, h.sumNs
	var b [histBuckets]int64
	copy(b[:], h.buckets[:])
	h.mu.Unlock()

	s := HistogramSnapshot{Count: count, SumMS: float64(sum) / 1e6}
	if count == 0 {
		return s
	}
	s.AvgMS = s.SumMS / float64(count)
	q := func(p float64) float64 {
		target := int64(math.Ceil(p * float64(count)))
		var seen int64
		for i := 0; i < histBuckets; i++ {
			seen += b[i]
			if seen >= target {
				// Geometric midpoint of [2^i, 2^(i+1)) microseconds.
				return math.Sqrt2 * float64(int64(1)<<i) / 1000
			}
		}
		return s.AvgMS
	}
	s.P50MS, s.P90MS, s.P99MS = q(0.50), q(0.90), q(0.99)
	return s
}

// Metrics aggregates the service counters exported on /metrics. All fields
// are updated lock-free; gauges (queue depth, per-state job counts) are
// computed at snapshot time by the server.
type Metrics struct {
	Submitted atomic.Int64 // jobs accepted into the queue
	Rejected  atomic.Int64 // jobs refused with 429 (queue full)
	Done      atomic.Int64
	Failed    atomic.Int64
	Canceled  atomic.Int64 // explicit DELETE or deadline expiry

	PlanHits       atomic.Int64
	PlanMisses     atomic.Int64
	AutotuneSweeps atomic.Int64 // six-trial block-size searches actually run

	Factorizations atomic.Int64 // IC(0) factorizations actually run (pcg misses)
	LevelAnalyses  atomic.Int64 // triangular level analyses actually run

	QueueWait Histogram // submit → execution start
	PlanStage Histogram // matrix build + fingerprint + plan lookup/tune
	Solve     Histogram // solver execution proper
	Total     Histogram // submit → terminal state
}

// MetricsSnapshot is the /metrics response body.
type MetricsSnapshot struct {
	Queue struct {
		Depth    int `json:"depth"`
		Capacity int `json:"capacity"`
	} `json:"queue"`
	Jobs struct {
		Submitted int64 `json:"submitted"`
		Rejected  int64 `json:"rejected"`
		Queued    int   `json:"queued"`
		Running   int   `json:"running"`
		Done      int64 `json:"done"`
		Failed    int64 `json:"failed"`
		Canceled  int64 `json:"canceled"`
	} `json:"jobs"`
	PlanCache struct {
		Hits           int64 `json:"hits"`
		Misses         int64 `json:"misses"`
		Evictions      int64 `json:"evictions"`
		Size           int   `json:"size"`
		Capacity       int   `json:"capacity"`
		AutotuneSweeps int64 `json:"autotune_sweeps"`
	} `json:"plan_cache"`
	FactorCache struct {
		Hits      int64 `json:"hits"`
		Misses    int64 `json:"misses"`
		Evictions int64 `json:"evictions"`
		Size      int   `json:"size"`
		Capacity  int   `json:"capacity"`
		// Factorizations counts IC(0) numeric factorizations actually run;
		// LevelAnalyses counts triangular level analyses actually run. Both
		// stay flat on repeat traffic for a cached matrix.
		Factorizations int64 `json:"factorizations"`
		LevelAnalyses  int64 `json:"level_analyses"`
	} `json:"factor_cache"`
	Latency struct {
		QueueWait HistogramSnapshot `json:"queue_wait"`
		Plan      HistogramSnapshot `json:"plan"`
		Solve     HistogramSnapshot `json:"solve"`
		Total     HistogramSnapshot `json:"total"`
	} `json:"latency"`
	Topology struct {
		// Profile is the configured machine-topology profile, e.g. "epyc(8d)".
		Profile string `json:"profile"`
		// Domains is the profile's locality-domain count.
		Domains int `json:"domains"`
		// Locality aggregates the scheduler locality counters over every
		// backend runtime the server has built (completed executions only).
		Locality sched.LocalityStats `json:"locality"`
		// DomainLocalShare is the fraction of affinity-carrying tasks that
		// executed in their preferred domain (1.0 when nothing carried one).
		DomainLocalShare float64 `json:"domain_local_share"`
	} `json:"topology"`
}
