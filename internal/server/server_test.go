package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sparsetask/internal/precond"
)

// diag4 is a 4x4 diagonal matrix with spectrum {1, 2, 3, 4}: small enough to
// solve instantly and with exactly known eigenvalues.
const diag4 = `%%MatrixMarket matrix coordinate real general
4 4 4
1 1 1.0
2 2 2.0
3 3 3.0
4 4 4.0
`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
		ts.Close()
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, spec string) (JobView, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	var v JobView
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("decode job view: %v", err)
		}
	}
	return v, resp.StatusCode
}

func getJob(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatalf("GET /jobs/%s: %v", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s: status %d", id, resp.StatusCode)
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode job view: %v", err)
	}
	return v
}

func cancelJob(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE /jobs/%s: %v", id, err)
	}
	resp.Body.Close()
}

// waitState polls until the job reaches want or any terminal state, recording
// every state observed along the way.
func waitState(t *testing.T, ts *httptest.Server, id string, want State, timeout time.Duration) (JobView, map[State]bool) {
	t.Helper()
	seen := make(map[State]bool)
	deadline := time.Now().Add(timeout)
	for {
		v := getJob(t, ts, id)
		seen[v.State] = true
		if v.State == want || v.State.terminal() {
			return v, seen
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s waiting for %s", id, v.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func getMetrics(t *testing.T, ts *httptest.Server) MetricsSnapshot {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var m MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	return m
}

func mmSpec(solver, backend string, extra string) string {
	return mmSpecFor(diag4, solver, backend, extra)
}

func mmSpecFor(mm, solver, backend string, extra string) string {
	doc, _ := json.Marshal(mm)
	s := fmt.Sprintf(`{"solver":%q,"backend":%q,"matrix":{"mm":%s}`, solver, backend, doc)
	if extra != "" {
		s += "," + extra
	}
	return s + "}"
}

// spdTridiagMM renders the n×n tridiagonal [-1 4 -1] matrix — SPD, so IC(0)
// succeeds and pcg exercises the triangular level path end to end.
func spdTridiagMM(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%%%%MatrixMarket matrix coordinate real general\n%d %d %d\n", n, n, 3*n-2)
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, "%d %d 4.0\n", i, i)
		if i < n {
			fmt.Fprintf(&b, "%d %d -1.0\n", i, i+1)
			fmt.Fprintf(&b, "%d %d -1.0\n", i+1, i)
		}
	}
	return b.String()
}

func TestJobLifecycleEigenvalues(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, RTWorkers: 2})
	v, status := postJob(t, ts, mmSpec("lanczos", "deepsparse", `"k":4`))
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", status)
	}
	if v.State != StateQueued {
		t.Fatalf("initial state = %s, want queued", v.State)
	}
	fin, _ := waitState(t, ts, v.ID, StateDone, 30*time.Second)
	if fin.State != StateDone {
		t.Fatalf("final state = %s (err %q), want done", fin.State, fin.Error)
	}
	if fin.Result == nil {
		t.Fatal("done job has no result")
	}
	want := []float64{4, 3, 2, 1}
	if len(fin.Result.Eigenvalues) != len(want) {
		t.Fatalf("got %d eigenvalues, want %d", len(fin.Result.Eigenvalues), len(want))
	}
	for i, w := range want {
		if math.Abs(fin.Result.Eigenvalues[i]-w) > 1e-8 {
			t.Errorf("eigenvalue[%d] = %.12f, want %g", i, fin.Result.Eigenvalues[i], w)
		}
	}
	// diag4 is too small for the six-bin sweep, so the plan must be the
	// cached single-tile fallback.
	if fin.Result.PlanSource != "fallback" {
		t.Errorf("plan_source = %q, want fallback", fin.Result.PlanSource)
	}
	if fin.StartedAt == nil || fin.FinishedAt == nil {
		t.Error("done job missing started_at/finished_at")
	}

	m := getMetrics(t, ts)
	if m.Jobs.Submitted != 1 || m.Jobs.Done != 1 {
		t.Errorf("metrics submitted=%d done=%d, want 1/1", m.Jobs.Submitted, m.Jobs.Done)
	}
	if m.Latency.Solve.Count != 1 || m.Latency.Total.Count != 1 {
		t.Errorf("latency counts solve=%d total=%d, want 1/1",
			m.Latency.Solve.Count, m.Latency.Total.Count)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []string{
		`{"solver":"qr","backend":"bsp","matrix":{"mm":"x"}}`,           // bad solver
		`{"solver":"cg","backend":"tbb","matrix":{"mm":"x"}}`,           // bad backend
		`{"solver":"cg","backend":"bsp","matrix":{}}`,                   // no matrix
		`{"solver":"cg","backend":"bsp","matrix":{"suite":"nosuch"}}`,   // unknown suite
		`{"solver":"cg","backend":"bsp","matrix":{"mm":"x"},"k":-1}`,    // negative k
		`{"solver":"cg","backend":"bsp","matrix":{"mm":"x"},"bogus":1}`, // unknown field
	}
	for _, c := range cases {
		if _, status := postJob(t, ts, c); status != http.StatusBadRequest {
			t.Errorf("spec %s: status %d, want 400", c, status)
		}
	}
	resp, err := http.Get(ts.URL + "/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown job: status %d, want 404", resp.StatusCode)
	}
}

// blockerSpec is a job that runs for a long time: LOBPCG in fixed-iteration
// benchmarking mode never exits on convergence, so it keeps the single pool
// worker busy until cancelled.
func blockerSpec(extra string) string {
	e := `"iters":500000`
	if extra != "" {
		e += "," + extra
	}
	return mmSpec("lobpcg", "deepsparse", e)
}

func TestQueueFullRejects(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueSize: 1, RTWorkers: 1})

	blocker, status := postJob(t, ts, blockerSpec(""))
	if status != http.StatusAccepted {
		t.Fatalf("blocker status = %d", status)
	}
	if v, _ := waitState(t, ts, blocker.ID, StateRunning, 10*time.Second); v.State != StateRunning {
		t.Fatalf("blocker reached %s, want running", v.State)
	}

	queued, status := postJob(t, ts, mmSpec("cg", "bsp", ""))
	if status != http.StatusAccepted {
		t.Fatalf("second job status = %d, want 202", status)
	}
	if _, status := postJob(t, ts, mmSpec("cg", "bsp", "")); status != http.StatusTooManyRequests {
		t.Fatalf("third job status = %d, want 429", status)
	}

	m := getMetrics(t, ts)
	if m.Jobs.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", m.Jobs.Rejected)
	}
	if m.Queue.Depth != 1 || m.Queue.Capacity != 1 {
		t.Errorf("queue depth/cap = %d/%d, want 1/1", m.Queue.Depth, m.Queue.Capacity)
	}
	if m.Jobs.Running != 1 || m.Jobs.Queued != 1 {
		t.Errorf("running/queued = %d/%d, want 1/1", m.Jobs.Running, m.Jobs.Queued)
	}

	// Cancel the queued job first (exercises cancel-while-queued), then the
	// running blocker (exercises mid-solve context cancellation).
	cancelJob(t, ts, queued.ID)
	if v := getJob(t, ts, queued.ID); v.State != StateCanceled {
		t.Errorf("queued job state after cancel = %s, want canceled", v.State)
	}
	cancelJob(t, ts, blocker.ID)
	if v, _ := waitState(t, ts, blocker.ID, StateCanceled, 10*time.Second); v.State != StateCanceled {
		t.Errorf("blocker state after cancel = %s, want canceled", v.State)
	}

	m = getMetrics(t, ts)
	if m.Jobs.Canceled != 2 {
		t.Errorf("canceled = %d, want 2", m.Jobs.Canceled)
	}
	if m.Jobs.Submitted != 2 {
		t.Errorf("submitted = %d, want 2", m.Jobs.Submitted)
	}
}

func TestDeadlineCancelsRunningJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, RTWorkers: 1})
	v, status := postJob(t, ts, blockerSpec(`"deadline_ms":300`))
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d", status)
	}
	fin, seen := waitState(t, ts, v.ID, StateCanceled, 30*time.Second)
	if fin.State != StateCanceled {
		t.Fatalf("final state = %s (err %q), want canceled", fin.State, fin.Error)
	}
	if !seen[StateRunning] {
		t.Error("never observed the job in running state before the deadline hit")
	}
	if !strings.Contains(fin.Error, "deadline") {
		t.Errorf("error = %q, want mention of deadline", fin.Error)
	}
	if m := getMetrics(t, ts); m.Jobs.Canceled != 1 {
		t.Errorf("canceled = %d, want 1", m.Jobs.Canceled)
	}
}

func TestPlanCacheHitSkipsAutotune(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, RTWorkers: 2})
	// inline1 at preset tiny is 768 rows — large enough for the six-bin
	// sweep to find a feasible block count.
	spec := `{"solver":"lanczos","backend":"bsp","matrix":{"suite":"inline1","preset":"tiny"},"k":4}`

	first, status := postJob(t, ts, spec)
	if status != http.StatusAccepted {
		t.Fatalf("first submit status = %d", status)
	}
	v1, _ := waitState(t, ts, first.ID, StateDone, 60*time.Second)
	if v1.State != StateDone {
		t.Fatalf("first job state = %s (err %q)", v1.State, v1.Error)
	}
	if v1.Result.PlanSource != "autotune" {
		t.Fatalf("first plan_source = %q, want autotune", v1.Result.PlanSource)
	}

	second, status := postJob(t, ts, spec)
	if status != http.StatusAccepted {
		t.Fatalf("second submit status = %d", status)
	}
	v2, _ := waitState(t, ts, second.ID, StateDone, 60*time.Second)
	if v2.State != StateDone {
		t.Fatalf("second job state = %s (err %q)", v2.State, v2.Error)
	}
	if v2.Result.PlanSource != "cache" {
		t.Errorf("second plan_source = %q, want cache", v2.Result.PlanSource)
	}
	if v2.Result.Block != v1.Result.Block || v2.Result.BlockCount != v1.Result.BlockCount {
		t.Errorf("cached plan %d/%d differs from tuned plan %d/%d",
			v2.Result.Block, v2.Result.BlockCount, v1.Result.Block, v1.Result.BlockCount)
	}

	m := getMetrics(t, ts)
	if m.PlanCache.AutotuneSweeps != 1 {
		t.Errorf("autotune_sweeps = %d, want 1 (second submission must reuse the plan)",
			m.PlanCache.AutotuneSweeps)
	}
	if m.PlanCache.Hits < 1 || m.PlanCache.Misses < 1 {
		t.Errorf("plan cache hits/misses = %d/%d, want >=1 each",
			m.PlanCache.Hits, m.PlanCache.Misses)
	}
	if m.PlanCache.Size != 1 {
		t.Errorf("plan cache size = %d, want 1", m.PlanCache.Size)
	}
}

// TestPCGFactorCacheReuse is the serving-layer acceptance test for the
// preconditioner cache: the first pcg job against a matrix factorizes and
// analyses levels; a repeat job with the same structural fingerprint reuses
// both; a repeat at a different tiling reuses the factors but analyses the
// new block size once.
func TestPCGFactorCacheReuse(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, RTWorkers: 2})
	mm := spdTridiagMM(24)
	runJob := func(extra string) JobView {
		t.Helper()
		v, status := postJob(t, ts, mmSpecFor(mm, "pcg", "deepsparse", extra))
		if status != http.StatusAccepted {
			t.Fatalf("submit status = %d, want 202", status)
		}
		fin, _ := waitState(t, ts, v.ID, StateDone, 30*time.Second)
		if fin.State != StateDone {
			t.Fatalf("job state = %s (err %q), want done", fin.State, fin.Error)
		}
		return fin
	}

	first := runJob(`"block":8`)
	if first.Result.Precond != "ic0" {
		t.Fatalf("precond = %q, want ic0 (SPD matrix must factorize)", first.Result.Precond)
	}
	if first.Result.FactorSource != "computed" {
		t.Fatalf("first factor_source = %q, want computed", first.Result.FactorSource)
	}
	if !first.Result.Converged || first.Result.Iterations < 1 {
		t.Fatalf("first job did not converge: %+v", first.Result)
	}

	second := runJob(`"block":8`)
	if second.Result.FactorSource != "cache" {
		t.Errorf("repeat factor_source = %q, want cache", second.Result.FactorSource)
	}
	if second.Result.Iterations != first.Result.Iterations {
		t.Errorf("cached factors changed convergence: %d vs %d iterations",
			second.Result.Iterations, first.Result.Iterations)
	}
	m := getMetrics(t, ts)
	if m.FactorCache.Factorizations != 1 {
		t.Errorf("factorizations = %d, want 1 (repeat job must reuse the factors)",
			m.FactorCache.Factorizations)
	}
	if m.FactorCache.LevelAnalyses != 1 {
		t.Errorf("level_analyses = %d, want 1 (repeat job must reuse the levels)",
			m.FactorCache.LevelAnalyses)
	}
	if m.FactorCache.Hits != 1 || m.FactorCache.Misses != 1 || m.FactorCache.Size != 1 {
		t.Errorf("factor cache hits/misses/size = %d/%d/%d, want 1/1/1",
			m.FactorCache.Hits, m.FactorCache.Misses, m.FactorCache.Size)
	}

	// A different tiling shares the factors but needs its own level analysis.
	third := runJob(`"block":4`)
	if third.Result.FactorSource != "cache" {
		t.Errorf("retiled factor_source = %q, want cache", third.Result.FactorSource)
	}
	m = getMetrics(t, ts)
	if m.FactorCache.Factorizations != 1 {
		t.Errorf("factorizations after retile = %d, want still 1", m.FactorCache.Factorizations)
	}
	if m.FactorCache.LevelAnalyses != 2 {
		t.Errorf("level_analyses after retile = %d, want 2", m.FactorCache.LevelAnalyses)
	}
}

func TestAllSolversAndBackends(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, RTWorkers: 2})
	var ids []string
	for _, solver := range []string{"lanczos", "lobpcg", "cg", "pcg"} {
		for _, backend := range []string{"bsp", "deepsparse", "hpx", "regent"} {
			extra := ""
			if solver == "lobpcg" {
				extra = `"k":1,"iters":10`
			}
			v, status := postJob(t, ts, mmSpec(solver, backend, extra))
			if status != http.StatusAccepted {
				t.Fatalf("%s/%s: status %d", solver, backend, status)
			}
			ids = append(ids, v.ID)
		}
	}
	for _, id := range ids {
		if v, _ := waitState(t, ts, id, StateDone, 60*time.Second); v.State != StateDone {
			t.Errorf("job %s (%s/%s): state %s, err %q", id, v.Solver, v.Backend, v.State, v.Error)
		}
	}
	if m := getMetrics(t, ts); m.Jobs.Done != 16 {
		t.Errorf("done = %d, want 16", m.Jobs.Done)
	}
}

func TestDrainRefusesNewJobs(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	v, _ := postJob(t, ts, mmSpec("cg", "hpx", ""))
	if fin, _ := waitState(t, ts, v.ID, StateDone, 30*time.Second); fin.State != StateDone {
		t.Fatalf("warmup job state = %s", fin.State)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	if _, status := postJob(t, ts, mmSpec("cg", "hpx", "")); status != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: status %d, want 503", status)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: status %d, want 503", resp.StatusCode)
	}
}

func TestTopologyConfigAndMetrics(t *testing.T) {
	// An EPYC-profile server records the profile in /metrics and aggregates
	// the backends' locality counters once jobs have run.
	_, ts := newTestServer(t, Config{Workers: 1, RTWorkers: 4, Topo: "epyc"})
	v, status := postJob(t, ts, mmSpec("lanczos", "deepsparse", `"k":4`))
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", status)
	}
	if v, _ = waitState(t, ts, v.ID, StateDone, 30*time.Second); v.State != StateDone {
		t.Fatalf("job ended %s: %s", v.State, v.Error)
	}
	m := getMetrics(t, ts)
	if m.Topology.Profile != "epyc(8d)" || m.Topology.Domains != 8 {
		t.Fatalf("topology = %q/%d, want epyc(8d)/8", m.Topology.Profile, m.Topology.Domains)
	}
	if m.Topology.Locality.Tasks() == 0 {
		t.Error("locality counters empty after a completed solve")
	}
	if s := m.Topology.DomainLocalShare; s < 0 || s > 1 {
		t.Errorf("domain_local_share = %v out of range", s)
	}

	// Unknown profile names degrade to flat rather than failing the server.
	s2 := New(Config{Workers: 1, Topo: "bogus"})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s2.Drain(ctx)
	}()
	if s2.topo.Name != "flat" {
		t.Errorf("unknown profile resolved to %s, want flat", s2.topo)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 3})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
	var body struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" || body.Workers != 3 {
		t.Errorf("healthz = %+v, want ok/3", body)
	}
}

func TestListJobs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	var want []string
	for i := 0; i < 3; i++ {
		v, _ := postJob(t, ts, mmSpec("cg", "bsp", ""))
		want = append(want, v.ID)
	}
	resp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var views []JobView
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	if len(views) != 3 {
		t.Fatalf("listed %d jobs, want 3", len(views))
	}
	for i, v := range views {
		if v.ID != want[i] {
			t.Errorf("list[%d] = %s, want %s (submission order)", i, v.ID, want[i])
		}
	}
}

// --------------------------------------------------------------- unit tests

func TestPlanCacheLRU(t *testing.T) {
	c := NewPlanCache(2)
	k := func(i int) PlanKey { return PlanKey{Fingerprint: uint64(i), Solver: "cg", Backend: "bsp", Workers: 2} }
	c.Put(k(1), Plan{Block: 10})
	c.Put(k(2), Plan{Block: 20})
	if p, ok := c.Get(k(1)); !ok || p.Block != 10 {
		t.Fatalf("Get(1) = %+v, %v", p, ok)
	}
	c.Put(k(3), Plan{Block: 30}) // evicts 2 (1 was refreshed by the Get)
	if _, ok := c.Get(k(2)); ok {
		t.Error("key 2 survived eviction; LRU order is wrong")
	}
	if _, ok := c.Get(k(1)); !ok {
		t.Error("key 1 evicted despite being most recently used")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
	hits, misses, evictions := c.Stats()
	if hits != 2 || misses != 1 || evictions != 1 {
		t.Errorf("stats = %d/%d/%d, want 2/1/1", hits, misses, evictions)
	}
	c.Put(k(1), Plan{Block: 11}) // refresh in place
	if p, _ := c.Get(k(1)); p.Block != 11 {
		t.Errorf("refreshed plan block = %d, want 11", p.Block)
	}
}

func TestFactorCacheLRU(t *testing.T) {
	c := NewFactorCache(2)
	f := func() *Factorization { return NewFactorization(&precond.IC0{Kind: precond.KindJacobi}) }
	c.Put(1, f())
	c.Put(2, f())
	if _, ok := c.Get(1); !ok {
		t.Fatal("Get(1) missed")
	}
	c.Put(3, f()) // evicts 2 (1 was refreshed by the Get)
	if _, ok := c.Get(2); ok {
		t.Error("fingerprint 2 survived eviction; LRU order is wrong")
	}
	if _, ok := c.Get(1); !ok {
		t.Error("fingerprint 1 evicted despite being most recently used")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
	hits, misses, evictions := c.Stats()
	if hits != 2 || misses != 1 || evictions != 1 {
		t.Errorf("stats = %d/%d/%d, want 2/1/1", hits, misses, evictions)
	}
}

// A Jacobi factorization has no triangular structure: LevelsFor must return
// nils without counting an analysis, at any block size.
func TestFactorizationJacobiHasNoLevels(t *testing.T) {
	f := NewFactorization(&precond.IC0{Kind: precond.KindJacobi, Rows: 4, DiagInv: []float64{1, 1, 1, 1}})
	low, up, analysed := f.LevelsFor(2)
	if low != nil || up != nil || analysed {
		t.Fatalf("Jacobi LevelsFor = %v/%v/%v, want nil/nil/false", low, up, analysed)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 || s.P50MS != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
	for i := 0; i < 100; i++ {
		h.Observe(1 * time.Millisecond)
	}
	h.Observe(-time.Second) // clamps to 0, must not panic or corrupt
	h.Observe(10 * time.Hour)
	s := h.Snapshot()
	if s.Count != 102 {
		t.Fatalf("count = %d, want 102", s.Count)
	}
	// 1ms lands in the [1024, 2048) µs bucket; geometric midpoint ≈ 1.45 ms.
	if s.P50MS < 0.5 || s.P50MS > 3 {
		t.Errorf("p50 = %.3f ms, want ≈1.45 ms", s.P50MS)
	}
	if s.P99MS < s.P50MS {
		t.Errorf("p99 %.3f < p50 %.3f", s.P99MS, s.P50MS)
	}
	if s.SumMS < 100 {
		t.Errorf("sum = %.3f ms, want >= 100 ms", s.SumMS)
	}
}

func TestJobSpecJSONRoundTrip(t *testing.T) {
	in := JobSpec{Solver: "lanczos", Backend: "hpx",
		Matrix: MatrixSpec{Suite: "inline1", Preset: "tiny"}, K: 4, DeadlineMS: 500}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatal(err)
	}
	var out JobSpec
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip changed spec: %+v vs %+v", out, in)
	}
}
