package server

import (
	"container/list"
	"sync"
	"sync/atomic"

	"sparsetask/internal/precond"
)

// Factorization is one cached preconditioner: the IC(0) factors (or the
// Jacobi fallback) plus the memoized triangular level analyses, keyed by the
// CSB block size the solve tiled with. Factors depend only on the matrix, but
// the level DAG's row-block granularity follows the tiling plan — and the
// plan varies with backend, worker count, and topology — so one factorization
// can serve several block sizes, each analysed once.
type Factorization struct {
	M *precond.IC0

	mu     sync.Mutex
	levels map[int]levelPair // CSB block size → forward/backward analyses
}

type levelPair struct {
	lower, upper *precond.Levels
}

// NewFactorization wraps a freshly computed preconditioner for caching.
func NewFactorization(m *precond.IC0) *Factorization {
	return &Factorization{M: m, levels: make(map[int]levelPair)}
}

// LevelsFor returns the level analyses for the factors at the given block
// size, computing and memoizing them on first use. The boolean reports
// whether this call ran the analysis (false = memoized or Jacobi, which has
// no triangular structure to analyse).
func (f *Factorization) LevelsFor(block int) (lower, upper *precond.Levels, analysed bool) {
	if f.M.Kind != precond.KindIC0 {
		return nil, nil, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if lp, ok := f.levels[block]; ok {
		return lp.lower, lp.upper, false
	}
	lp := levelPair{
		lower: precond.AnalyzeLower(f.M.L, block),
		upper: precond.AnalyzeUpper(f.M.U, block),
	}
	f.levels[block] = lp
	return lp.lower, lp.upper, true
}

// FactorCache is a fixed-capacity LRU of preconditioner factorizations keyed
// by the matrix's structural fingerprint. IC(0) is the expensive, reusable
// part of a pcg job — it depends only on the matrix, not on the backend or
// tiling — so repeat traffic for the same matrix skips both the numeric
// factorization and (via Factorization.LevelsFor) the level analysis.
type FactorCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[uint64]*list.Element

	hits, misses, evictions atomic.Int64
}

type factorEntry struct {
	fp uint64
	f  *Factorization
}

// NewFactorCache returns an LRU holding up to capacity factorizations
// (minimum 1).
func NewFactorCache(capacity int) *FactorCache {
	if capacity < 1 {
		capacity = 1
	}
	return &FactorCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[uint64]*list.Element),
	}
}

// Get returns the cached factorization for a matrix fingerprint, updating
// recency and hit/miss counters.
func (c *FactorCache) Get(fp uint64) (*Factorization, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[fp]; ok {
		c.ll.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*factorEntry).f, true
	}
	c.misses.Add(1)
	return nil, false
}

// Put inserts or refreshes a factorization, evicting the least recently used
// entry when over capacity.
func (c *FactorCache) Put(fp uint64, f *Factorization) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[fp]; ok {
		el.Value.(*factorEntry).f = f
		c.ll.MoveToFront(el)
		return
	}
	c.items[fp] = c.ll.PushFront(&factorEntry{fp: fp, f: f})
	for c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.items, el.Value.(*factorEntry).fp)
		c.evictions.Add(1)
	}
}

// Len reports the current entry count.
func (c *FactorCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats reports cumulative hits, misses, and evictions.
func (c *FactorCache) Stats() (hits, misses, evictions int64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}
