package server

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// PlanKey identifies a cached execution plan: the matrix's structural
// fingerprint (from sparse.Stats) plus everything else that shifts the
// block-size optimum — solver shape, runtime backend, worker count, and the
// topology profile (domain grouping changes which block counts schedule
// well, so plans tuned under one profile don't leak into another).
type PlanKey struct {
	Fingerprint uint64
	Solver      string
	Backend     string
	Workers     int
	Topo        string
	// SymStorage records whether the job solves from symmetric (SymCSB)
	// storage: the symmetric kernels halve the streamed matrix bytes and
	// change the task shape, so the tuned block size must not be shared
	// with general-storage runs of a structurally identical matrix. (The
	// fingerprint also hashes the symmetry bit; the explicit field keeps
	// the separation even for colliding fingerprints.)
	SymStorage bool
}

// Plan is the memoized outcome of the §5.4 six-trial autotune sweep.
type Plan struct {
	Block      int    // CSB block size in rows
	BlockCount int    // per-dimension tile count the tuner picked
	Bin        string // winning bin label ("32-63", ...), "" for fallbacks
}

// PlanCache is a fixed-capacity LRU of autotuned plans. Repeat traffic for
// the same matrix/solver/backend skips the sweep entirely — the serving
// layer's answer to the paper's observation that block-size choice dominates
// performance but is stable per matrix.
type PlanCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[PlanKey]*list.Element

	hits, misses, evictions atomic.Int64
}

type planEntry struct {
	key  PlanKey
	plan Plan
}

// NewPlanCache returns an LRU holding up to capacity plans (minimum 1).
func NewPlanCache(capacity int) *PlanCache {
	if capacity < 1 {
		capacity = 1
	}
	return &PlanCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[PlanKey]*list.Element),
	}
}

// Get returns the cached plan and whether it was present, updating recency
// and hit/miss counters.
func (c *PlanCache) Get(k PlanKey) (Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*planEntry).plan, true
	}
	c.misses.Add(1)
	return Plan{}, false
}

// Put inserts or refreshes a plan, evicting the least recently used entry
// when over capacity.
func (c *PlanCache) Put(k PlanKey, p Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*planEntry).plan = p
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&planEntry{key: k, plan: p})
	for c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.items, el.Value.(*planEntry).key)
		c.evictions.Add(1)
	}
}

// Len reports the current entry count.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats reports cumulative hits, misses, and evictions.
func (c *PlanCache) Stats() (hits, misses, evictions int64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}
