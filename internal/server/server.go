package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"sparsetask/internal/rt"
	"sparsetask/internal/sched"
)

// Server is the HTTP skin over the job Engine: it decodes and validates job
// specs, maps the engine's admission errors to status codes, and serializes
// job views and metrics. All queueing, coalescing, execution, and cache
// state lives in the embedded Engine — Server adds no state of its own
// beyond the mux. Create with New, mount Handler() on an http.Server, and
// call Drain on shutdown.
type Server struct {
	*Engine
	mux *http.ServeMux
}

// New starts an engine and wraps it in the HTTP API.
func New(cfg Config) *Server {
	s := &Server{Engine: NewEngine(cfg)}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s
}

// Handler exposes the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain gracefully shuts the engine down (see Engine.Drain).
func (s *Server) Drain(ctx context.Context) error { return s.Engine.Drain(ctx) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	//lint:ignore sparselint/errflow status line is already on the wire; an encode failure here has no channel back to the client
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job spec: %w", err))
		return
	}
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.Submit(spec)
	if err != nil {
		switch {
		case errors.Is(err, ErrDraining):
			writeError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, ErrQueueFull):
			writeError(w, http.StatusTooManyRequests, err)
		default:
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, job.View())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Views())
}

func (s *Server) jobByID(w http.ResponseWriter, r *http.Request) *Job {
	job := s.JobByID(r.PathValue("id"))
	if job == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
	}
	return job
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	if job := s.jobByID(w, r); job != nil {
		writeJSON(w, http.StatusOK, job.View())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job := s.jobByID(w, r)
	if job == nil {
		return
	}
	s.Cancel(job)
	writeJSON(w, http.StatusOK, job.View())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var snap MetricsSnapshot
	snap.Queue.Depth = len(s.queue)
	snap.Queue.Capacity = cap(s.queue)

	m := s.metrics
	snap.Jobs.Submitted = m.Submitted.Load()
	snap.Jobs.Rejected = m.Rejected.Load()
	snap.Jobs.Done = m.Done.Load()
	snap.Jobs.Failed = m.Failed.Load()
	snap.Jobs.Canceled = m.Canceled.Load()
	s.mu.Lock()
	for _, j := range s.jobs {
		switch j.StateNow() {
		case StateQueued:
			snap.Jobs.Queued++
		case StateRunning:
			snap.Jobs.Running++
		}
	}
	s.mu.Unlock()

	snap.Batching.Enabled = s.coalescing()
	snap.Batching.Max = s.cfg.CoalesceMax
	snap.Batching.WindowMS = float64(s.cfg.CoalesceWindow.Microseconds()) / 1000
	snap.Batching.CoalescedBatches = m.CoalescedBatches.Load()
	snap.Batching.BatchedJobs = m.BatchedJobs.Load()
	snap.Batching.SizeByKind = m.BatchSizes.Snapshot()

	hits, misses, evictions := s.plans.Stats()
	snap.PlanCache.Hits = hits
	snap.PlanCache.Misses = misses
	snap.PlanCache.Evictions = evictions
	snap.PlanCache.Size = s.plans.Len()
	snap.PlanCache.Capacity = s.cfg.PlanCacheSize
	snap.PlanCache.AutotuneSweeps = m.AutotuneSweeps.Load()

	fhits, fmisses, fevictions := s.factors.Stats()
	snap.FactorCache.Hits = fhits
	snap.FactorCache.Misses = fmisses
	snap.FactorCache.Evictions = fevictions
	snap.FactorCache.Size = s.factors.Len()
	snap.FactorCache.Capacity = s.cfg.FactorCacheSize
	snap.FactorCache.Factorizations = m.Factorizations.Load()
	snap.FactorCache.LevelAnalyses = m.LevelAnalyses.Load()

	snap.Latency.QueueWait = m.QueueWait.Snapshot()
	snap.Latency.QueueWaitByKind = m.QueueWaitKind.Snapshot()
	snap.Latency.Plan = m.PlanStage.Snapshot()
	snap.Latency.Solve = m.Solve.Snapshot()
	snap.Latency.Total = m.Total.Snapshot()

	snap.Topology.Profile = s.topo.String()
	snap.Topology.Domains = s.topo.DomainCount(0)
	var loc sched.LocalityStats
	s.mu.Lock()
	for _, r := range s.runtimes {
		if lr, ok := r.(rt.LocalityReporter); ok {
			loc.Add(lr.Locality())
		}
	}
	s.mu.Unlock()
	snap.Topology.Locality = loc
	snap.Topology.DomainLocalShare = loc.DomainLocalShare()
	writeJSON(w, http.StatusOK, snap)
}

// handleHealth reports liveness plus the queue occupancy the scale-out
// router's spill heuristic reads (internal/route probes /healthz, not
// /metrics, to keep the health path cheap).
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	queue := map[string]int{"depth": len(s.queue), "capacity": cap(s.queue)}
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "draining",
			"queue":  queue,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"workers":  s.cfg.Workers,
		"topology": s.topo.String(),
		"queue":    queue,
	})
}
