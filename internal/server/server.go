package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"sparsetask/internal/rt"
	"sparsetask/internal/sched"
	"sparsetask/internal/topo"
)

// Config sizes the service.
type Config struct {
	// QueueSize bounds the FIFO admission queue; a full queue rejects new
	// jobs with 429. Default 64.
	QueueSize int
	// Workers is the pool size — how many jobs execute concurrently.
	// Default 2.
	Workers int
	// RTWorkers is the default per-job runtime worker count (0 =
	// GOMAXPROCS). Jobs may override with JobSpec.Workers.
	RTWorkers int
	// PlanCacheSize bounds the autotune plan LRU. Default 128.
	PlanCacheSize int
	// FactorCacheSize bounds the pcg preconditioner-factorization LRU.
	// Default 32 (factors hold two CSR copies of the matrix's lower
	// triangle, so the default is deliberately smaller than the plan cache).
	FactorCacheSize int
	// Topo names the machine-topology profile every backend runtime is built
	// with ("flat", "auto", "broadwell", "epyc"). Unknown or empty names fall
	// back to flat; cmd/solverd validates the flag before it gets here. The
	// profile is part of the plan-cache key and reported on /metrics.
	Topo string
}

func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.PlanCacheSize <= 0 {
		c.PlanCacheSize = 128
	}
	if c.FactorCacheSize <= 0 {
		c.FactorCacheSize = 32
	}
	return c
}

// Server is the solverd serving layer. Create with New, mount Handler() on
// an http.Server, and call Drain on shutdown.
type Server struct {
	cfg     Config
	topo    topo.Topology
	metrics *Metrics
	plans   *PlanCache
	factors *FactorCache
	queue   chan *Job

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for GET /jobs
	seq      int64
	draining bool
	runtimes map[runtimeKey]rt.Runtime // shared per-(backend,workers) instances

	baseCtx    context.Context
	baseCancel context.CancelFunc
	workers    sync.WaitGroup
	mux        *http.ServeMux
}

// New starts the worker pool and returns a ready server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	tp, err := topo.ByName(cfg.Topo)
	if err != nil {
		tp = topo.Flat() // library callers stay lenient; cmd validates the flag
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		topo:       tp,
		metrics:    &Metrics{},
		plans:      NewPlanCache(cfg.PlanCacheSize),
		factors:    NewFactorCache(cfg.FactorCacheSize),
		queue:      make(chan *Job, cfg.QueueSize),
		jobs:       make(map[string]*Job),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Handler exposes the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain performs a graceful shutdown: stop admitting jobs (POST returns 503,
// /healthz flips to draining), let queued and running jobs finish, and
// return. If ctx expires first, running jobs are hard-cancelled (they
// terminate at task granularity) and Drain returns ctx's error after the
// pool exits.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue) // senders hold mu and check draining first
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

// worker drains the admission queue until Drain closes it.
func (s *Server) worker() {
	defer s.workers.Done()
	for job := range s.queue {
		s.execute(job)
	}
}

// submit registers and enqueues a job. It returns the job, or an HTTP
// status and error when admission fails.
func (s *Server) submit(spec JobSpec) (*Job, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, http.StatusServiceUnavailable, fmt.Errorf("server is draining")
	}
	s.seq++
	job := &Job{
		ID:        fmt.Sprintf("job-%d", s.seq),
		Spec:      spec,
		state:     StateQueued,
		submitted: time.Now(),
	}
	select {
	case s.queue <- job:
	default:
		s.seq-- // never existed
		s.metrics.Rejected.Add(1)
		return nil, http.StatusTooManyRequests,
			fmt.Errorf("queue full (%d jobs)", cap(s.queue))
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.metrics.Submitted.Add(1)
	return job, http.StatusAccepted, nil
}

// requestCancel cancels a job: queued jobs flip to canceled immediately (the
// pool skips them on dequeue), running jobs get their context cancelled and
// reach canceled once the runtime unwinds. Terminal jobs are left alone.
func (s *Server) requestCancel(j *Job) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		j.err = "canceled while queued"
		j.finished = time.Now()
		s.metrics.Canceled.Add(1)
		s.metrics.Total.Observe(j.finished.Sub(j.submitted))
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
	}
}

// ------------------------------------------------------------- HTTP layer

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job spec: %w", err))
		return
	}
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, status, err := s.submit(spec)
	if err != nil {
		writeError(w, status, err)
		return
	}
	writeJSON(w, status, job.View())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		views = append(views, s.jobs[id].View())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) jobByID(w http.ResponseWriter, r *http.Request) *Job {
	s.mu.Lock()
	job := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if job == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
	}
	return job
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	if job := s.jobByID(w, r); job != nil {
		writeJSON(w, http.StatusOK, job.View())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job := s.jobByID(w, r)
	if job == nil {
		return
	}
	s.requestCancel(job)
	writeJSON(w, http.StatusOK, job.View())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var snap MetricsSnapshot
	snap.Queue.Depth = len(s.queue)
	snap.Queue.Capacity = cap(s.queue)

	m := s.metrics
	snap.Jobs.Submitted = m.Submitted.Load()
	snap.Jobs.Rejected = m.Rejected.Load()
	snap.Jobs.Done = m.Done.Load()
	snap.Jobs.Failed = m.Failed.Load()
	snap.Jobs.Canceled = m.Canceled.Load()
	s.mu.Lock()
	for _, j := range s.jobs {
		switch j.StateNow() {
		case StateQueued:
			snap.Jobs.Queued++
		case StateRunning:
			snap.Jobs.Running++
		}
	}
	s.mu.Unlock()

	hits, misses, evictions := s.plans.Stats()
	snap.PlanCache.Hits = hits
	snap.PlanCache.Misses = misses
	snap.PlanCache.Evictions = evictions
	snap.PlanCache.Size = s.plans.Len()
	snap.PlanCache.Capacity = s.cfg.PlanCacheSize
	snap.PlanCache.AutotuneSweeps = m.AutotuneSweeps.Load()

	fhits, fmisses, fevictions := s.factors.Stats()
	snap.FactorCache.Hits = fhits
	snap.FactorCache.Misses = fmisses
	snap.FactorCache.Evictions = fevictions
	snap.FactorCache.Size = s.factors.Len()
	snap.FactorCache.Capacity = s.cfg.FactorCacheSize
	snap.FactorCache.Factorizations = m.Factorizations.Load()
	snap.FactorCache.LevelAnalyses = m.LevelAnalyses.Load()

	snap.Latency.QueueWait = m.QueueWait.Snapshot()
	snap.Latency.Plan = m.PlanStage.Snapshot()
	snap.Latency.Solve = m.Solve.Snapshot()
	snap.Latency.Total = m.Total.Snapshot()

	snap.Topology.Profile = s.topo.String()
	snap.Topology.Domains = s.topo.DomainCount(0)
	var loc sched.LocalityStats
	s.mu.Lock()
	for _, r := range s.runtimes {
		if lr, ok := r.(rt.LocalityReporter); ok {
			loc.Add(lr.Locality())
		}
	}
	s.mu.Unlock()
	snap.Topology.Locality = loc
	snap.Topology.DomainLocalShare = loc.DomainLocalShare()
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "draining",
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"workers":  s.cfg.Workers,
		"topology": s.topo.String(),
	})
}
