// Package server implements solverd's serving layer in two parts. Engine is
// the transport-agnostic core: it admits sparse-solver jobs into a bounded
// FIFO queue, coalesces same-matrix cg/pcg jobs into multi-RHS batched
// solves, executes them on a worker pool over the exec-mode runtimes
// (internal/rt), and memoizes autotuned block sizes and IC(0) factors in
// fingerprint-keyed LRU caches. Server is the thin HTTP/JSON skin over it,
// serving /jobs, /metrics, and /healthz.
//
// The subsystem is the first step from the paper's offline evaluation toward
// the ROADMAP's production north star: the paper shows runtime and block
// size choice dominate performance; a serving layer can amortize that choice
// across repeat traffic instead of re-deriving it per request — and the
// batch coalescer amortizes the matrix stream itself, turning k queued
// solves into one SpMM-driven iteration. internal/route scales the same API
// across N engines with fingerprint-affinity routing.
package server

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"sparsetask/internal/matgen"
	"sparsetask/internal/sparse"
)

// State is a job's lifecycle phase.
type State string

// Job states. Terminal states are done, failed, and canceled.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// MatrixSpec names the input matrix: either a matrix from the matgen suite
// registry (scaled by preset) or an inline MatrixMarket document. Exactly
// one of Suite and MM must be set.
type MatrixSpec struct {
	// Suite is a Table 1 matrix name from the matgen registry
	// (e.g. "nlpkkt160").
	Suite string `json:"suite,omitempty"`
	// Preset scales suite matrices: tiny, small, medium. Default tiny.
	Preset string `json:"preset,omitempty"`
	// Seed drives suite-matrix generation. Default 1.
	Seed int64 `json:"seed,omitempty"`
	// MM is an inline MatrixMarket coordinate document.
	MM string `json:"mm,omitempty"`
}

// JobSpec is the POST /jobs request body.
type JobSpec struct {
	// Solver is one of lanczos, lobpcg, cg, pcg.
	Solver string `json:"solver"`
	// Backend is one of bsp, deepsparse, hpx, regent.
	Backend string     `json:"backend"`
	Matrix  MatrixSpec `json:"matrix"`
	// K is the eigenpair count (lanczos: Krylov steps, lobpcg: block size).
	// Default 6, clamped to the matrix dimension. Ignored by cg.
	K int `json:"k,omitempty"`
	// Iters > 0 runs LOBPCG for a fixed iteration count instead of
	// converging (the paper's benchmarking mode). Ignored by other solvers.
	Iters int `json:"iters,omitempty"`
	// Workers overrides the runtime worker count for this job (0 = server
	// default).
	Workers int `json:"workers,omitempty"`
	// Block forces a CSB block size in rows, bypassing the plan cache and
	// autotuner.
	Block int `json:"block,omitempty"`
	// DeadlineMS bounds the job's execution time, measured from the moment
	// a pool worker starts it. 0 means no deadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Seed drives the solver's random starting vector (and the CG
	// right-hand side). Default 1.
	Seed int64 `json:"seed,omitempty"`
}

// Admission ceilings for the numeric JobSpec knobs. The spec is decoded
// straight from the request body, so every field that sizes an allocation, a
// loop, a pool, or a deadline gets an explicit upper bound here — the one
// place requests are admitted — instead of ad-hoc clamps at use sites.
const (
	maxSpecK          = 4096          // eigenpair count / LOBPCG block size
	maxSpecIters      = 1 << 20       // fixed-iteration benchmarking mode
	maxSpecWorkers    = 1024          // per-job worker override
	maxSpecBlock      = 1 << 22       // forced CSB block size in rows
	maxSpecDeadlineMS = 24 * 3600_000 // one day, in milliseconds
)

// Validate rejects malformed specs before they enter the queue.
//
//sparselint:validator
func (s *JobSpec) Validate() error {
	switch s.Solver {
	case "lanczos", "lobpcg", "cg", "pcg":
	default:
		return fmt.Errorf("solver must be lanczos, lobpcg, cg, or pcg, got %q", s.Solver)
	}
	switch s.Backend {
	case "bsp", "deepsparse", "hpx", "regent":
	default:
		return fmt.Errorf("backend must be bsp, deepsparse, hpx, or regent, got %q", s.Backend)
	}
	hasSuite, hasMM := s.Matrix.Suite != "", s.Matrix.MM != ""
	if hasSuite == hasMM {
		return fmt.Errorf("matrix needs exactly one of suite or mm")
	}
	if hasSuite {
		if _, err := matgen.SpecByName(s.Matrix.Suite); err != nil {
			return err
		}
		if p := s.Matrix.Preset; p != "" {
			if _, err := matgen.PresetByName(p); err != nil {
				return err
			}
		}
	}
	if s.K < 0 || s.Iters < 0 || s.Workers < 0 || s.Block < 0 || s.DeadlineMS < 0 {
		return fmt.Errorf("k, iters, workers, block, and deadline_ms must be non-negative")
	}
	if s.K > maxSpecK {
		return fmt.Errorf("k must be at most %d, got %d", maxSpecK, s.K)
	}
	if s.Iters > maxSpecIters {
		return fmt.Errorf("iters must be at most %d, got %d", maxSpecIters, s.Iters)
	}
	if s.Workers > maxSpecWorkers {
		return fmt.Errorf("workers must be at most %d, got %d", maxSpecWorkers, s.Workers)
	}
	if s.Block > maxSpecBlock {
		return fmt.Errorf("block must be at most %d, got %d", maxSpecBlock, s.Block)
	}
	if s.DeadlineMS > maxSpecDeadlineMS {
		return fmt.Errorf("deadline_ms must be at most %d, got %d", maxSpecDeadlineMS, s.DeadlineMS)
	}
	return nil
}

// buildMatrix realizes the spec into a COO matrix.
func (s *MatrixSpec) buildMatrix() (*sparse.COO, error) {
	if s.MM != "" {
		return sparse.ReadMatrixMarket(strings.NewReader(s.MM))
	}
	spec, err := matgen.SpecByName(s.Suite)
	if err != nil {
		return nil, err
	}
	presetName := s.Preset
	if presetName == "" {
		presetName = "tiny"
	}
	preset, err := matgen.PresetByName(presetName)
	if err != nil {
		return nil, err
	}
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	return spec.Build(preset, seed), nil
}

// JobResult is the payload of a successfully completed job.
type JobResult struct {
	// Eigenvalues for lanczos (descending) and lobpcg (ascending); empty
	// for cg.
	Eigenvalues []float64 `json:"eigenvalues,omitempty"`
	Iterations  int       `json:"iterations"`
	// Residual is the solver's convergence metric (relative residual for cg).
	Residual  float64 `json:"residual"`
	Converged bool    `json:"converged"`

	MatrixRows int `json:"matrix_rows"`
	MatrixNNZ  int `json:"matrix_nnz"`
	// Block and BlockCount describe the CSB tiling the job executed with.
	Block      int `json:"block"`
	BlockCount int `json:"block_count"`
	// SymStorage reports whether the solve ran from symmetric (SymCSB)
	// lower-triangle storage with the symmetry-exploiting kernels.
	SymStorage bool `json:"sym_storage,omitempty"`
	// PlanSource records where the tiling came from: "request" (explicit
	// block in the spec), "cache" (plan-cache hit), "autotune" (fresh
	// six-trial sweep), or "fallback" (matrix too small to tune).
	PlanSource string `json:"plan_source"`
	// Precond names the preconditioner a pcg job actually applied: "ic0",
	// or "jacobi" when the factorization hit a non-positive pivot.
	Precond string `json:"precond,omitempty"`
	// FactorSource records where a pcg job's factorization came from:
	// "cache" (factor-cache hit, levels memoized too) or "computed".
	FactorSource string `json:"factor_source,omitempty"`
	// BatchID, BatchSize, and BatchIndex identify the multi-RHS coalesced
	// batch the job executed in; set only when the dispatcher merged >= 2
	// jobs. BatchIndex is the job's column in the batched solve (the first
	// column's 0 is omitted from JSON — group by BatchID instead).
	BatchID    string `json:"batch_id,omitempty"`
	BatchSize  int    `json:"batch_size,omitempty"`
	BatchIndex int    `json:"batch_index,omitempty"`
}

// Job is one tracked solve. All mutable fields are guarded by mu.
type Job struct {
	ID   string
	Spec JobSpec

	mu        sync.Mutex
	state     State
	err       string
	result    *JobResult
	submitted time.Time
	started   time.Time
	finished  time.Time
	cancel    context.CancelFunc // set while running
}

// JobView is the JSON representation served on /jobs endpoints.
type JobView struct {
	ID          string     `json:"id"`
	State       State      `json:"state"`
	Solver      string     `json:"solver"`
	Backend     string     `json:"backend"`
	Error       string     `json:"error,omitempty"`
	Result      *JobResult `json:"result,omitempty"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// View snapshots the job for serialization.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:          j.ID,
		State:       j.state,
		Solver:      j.Spec.Solver,
		Backend:     j.Spec.Backend,
		Error:       j.err,
		Result:      j.result,
		SubmittedAt: j.submitted,
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	return v
}

// StateNow returns the current state.
func (j *Job) StateNow() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}
