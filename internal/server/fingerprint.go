package server

import (
	"fmt"
	"hash/fnv"

	"sparsetask/internal/sparse"
)

// identity names the matrix's *values*, not just its structure: the
// generator coordinates (suite, preset, generator seed) for synthetic
// matrices, or an FNV-1a hash of the MatrixMarket document for inline ones.
// The batch coalescer keys on identity because two generator seeds share a
// sparsity pattern — and hence a structural fingerprint — while holding
// different values, and a multi-RHS solve must multiply one matrix.
// Defaults are normalized the same way buildMatrix applies them, so
// equivalent specs get equal identities.
func (s *MatrixSpec) identity() string {
	if s.MM != "" {
		h := fnv.New64a()
		h.Write([]byte(s.MM))
		return fmt.Sprintf("mm:%016x", h.Sum64())
	}
	preset := s.Preset
	if preset == "" {
		preset = "tiny"
	}
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	return fmt.Sprintf("suite:%s|%s|%d", s.Suite, preset, seed)
}

// SpecFingerprint materializes a spec's matrix and returns its structural
// fingerprint (sparse.Stats.Fingerprint) — the affinity key the scale-out
// router (internal/route) hashes to pin repeat traffic for a matrix onto the
// shard already holding its autotune plan and IC(0) factors. It is a pure
// function of the spec, so router and shard agree without a round trip; the
// router memoizes it per MatrixSpec.identity because building the matrix is
// the expensive part.
func SpecFingerprint(spec MatrixSpec) (uint64, error) {
	coo, err := spec.buildMatrix()
	if err != nil {
		return 0, err
	}
	return sparse.ComputeStats(coo.ToCSR()).Fingerprint(), nil
}
