package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"sparsetask/internal/autotune"
	"sparsetask/internal/precond"
	"sparsetask/internal/rt"
	"sparsetask/internal/solver"
	"sparsetask/internal/sparse"
	"sparsetask/internal/topo"
)

// Cost-model constants for the analytic autotune evaluator. Only relative
// costs across block counts matter for picking a bin, so rough host-scale
// numbers suffice: ~1 flop/ns sustained and ~500 ns of scheduling overhead
// per task.
const (
	tuneFlopsPerNs = 1.0
	tuneOverheadNs = 500.0
	defaultSolverK = 6
	defaultJobSeed = 1
)

// newRuntime constructs a backend. Backend names are validated at admission.
func newRuntime(backend string, workers int, tp topo.Topology) rt.Runtime {
	opt := rt.Options{Workers: workers, Topo: tp}
	switch backend {
	case "bsp":
		return rt.NewBSP(opt)
	case "deepsparse":
		return rt.NewDeepSparse(opt)
	case "hpx":
		return rt.NewHPX(opt)
	case "regent":
		return rt.NewRegent(opt)
	}
	panic(fmt.Sprintf("server: unknown backend %q", backend))
}

// effectiveWorkers resolves a job's runtime worker count.
func (e *Engine) effectiveWorkers(spec JobSpec) int {
	if spec.Workers > 0 {
		return spec.Workers
	}
	if e.cfg.RTWorkers > 0 {
		return e.cfg.RTWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// execute runs one dequeued job through plan + solve and records metrics.
func (e *Engine) execute(job *Job) {
	job.mu.Lock()
	if job.state != StateQueued { // cancelled while queued
		job.mu.Unlock()
		return
	}
	start := time.Now()
	job.state = StateRunning
	job.started = start
	ctx := e.baseCtx
	var cancel context.CancelFunc
	if job.Spec.DeadlineMS > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(job.Spec.DeadlineMS)*time.Millisecond)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	job.cancel = cancel
	job.mu.Unlock()
	defer cancel()
	e.metrics.QueueWait.Observe(start.Sub(job.submitted))
	e.metrics.QueueWaitKind.Observe(job.Spec.Solver, start.Sub(job.submitted))

	res, err := e.run(ctx, job.Spec)

	fin := time.Now()
	job.mu.Lock()
	job.finished = fin
	job.cancel = nil
	switch {
	case err == nil:
		job.state = StateDone
		job.result = res
		e.metrics.Done.Add(1)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		job.state = StateCanceled
		job.err = err.Error()
		e.metrics.Canceled.Add(1)
	default:
		job.state = StateFailed
		job.err = err.Error()
		e.metrics.Failed.Add(1)
	}
	job.mu.Unlock()
	e.metrics.Total.Observe(fin.Sub(job.submitted))
}

// batchCancel aggregates DELETE requests across a batch's members. The
// shared solve context is cancelled only once every live member has asked —
// the multi-RHS iteration cannot abandon one column mid-run, and a retired
// column costs almost nothing — but members that asked are still marked
// canceled when the batch completes, so a DELETE is never silently ignored.
type batchCancel struct {
	mu        sync.Mutex
	armed     bool
	total     int
	requested map[*Job]bool
	cancel    context.CancelFunc
}

// request registers one member's cancellation vote. Callers hold j.mu, so
// request must not touch any job's mutex.
func (bc *batchCancel) request(j *Job) {
	bc.mu.Lock()
	bc.requested[j] = true
	fire := bc.armed && len(bc.requested) >= bc.total
	bc.mu.Unlock()
	if fire {
		bc.cancel()
	}
}

// arm sets the member count once the batch's live set is known. Votes cast
// before arming (between a member's claim and arm) are honored here.
func (bc *batchCancel) arm(n int) {
	bc.mu.Lock()
	bc.armed = true
	bc.total = n
	fire := n > 0 && len(bc.requested) >= n
	bc.mu.Unlock()
	if fire {
		bc.cancel()
	}
}

// requestedFor reports whether a member voted to cancel.
func (bc *batchCancel) requestedFor(j *Job) bool {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	return bc.requested[j]
}

// executeBatch runs one dispatcher group. Singleton groups (and groups
// reduced to one live member by cancel-while-queued) take the exact
// single-job path; larger groups run as one multi-RHS batched solve.
func (e *Engine) executeBatch(group []*Job) {
	live := 0
	for _, j := range group {
		if j.StateNow() == StateQueued {
			live++
		}
	}
	if live <= 1 {
		if live == 1 {
			e.metrics.BatchSizes.Observe(group[0].Spec.Solver, 1)
		}
		for _, j := range group {
			e.execute(j)
		}
		return
	}
	e.runBatchJobs(group)
}

// runBatchJobs claims a group's still-queued members, runs them as one
// batched solve, and distributes the per-column outcomes.
func (e *Engine) runBatchJobs(group []*Job) {
	start := time.Now()
	ctx, cancel := context.WithCancel(e.baseCtx)
	defer cancel()
	bc := &batchCancel{requested: make(map[*Job]bool), cancel: cancel}

	jobs := make([]*Job, 0, len(group))
	for _, j := range group {
		j.mu.Lock()
		if j.state != StateQueued { // cancelled between dispatch and claim
			j.mu.Unlock()
			continue
		}
		j.state = StateRunning
		j.started = start
		member := j
		j.cancel = func() { bc.request(member) }
		j.mu.Unlock()
		e.metrics.QueueWait.Observe(start.Sub(j.submitted))
		e.metrics.QueueWaitKind.Observe(j.Spec.Solver, start.Sub(j.submitted))
		jobs = append(jobs, j)
	}
	bc.arm(len(jobs))
	if len(jobs) == 0 {
		return
	}
	e.metrics.BatchSizes.Observe(jobs[0].Spec.Solver, len(jobs))
	if len(jobs) >= 2 {
		e.metrics.CoalescedBatches.Add(1)
		e.metrics.BatchedJobs.Add(int64(len(jobs)))
	}
	e.mu.Lock()
	e.batchSeq++
	batchID := fmt.Sprintf("batch-%d", e.batchSeq)
	e.mu.Unlock()

	results, shared, err := e.runBatch(ctx, jobs)
	// Classify the batch-level outcome once, before the per-job loop: the
	// error is shared by every member, and the loop is not the place to
	// decide what it means.
	batchCanceled := err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))

	fin := time.Now()
	for i, j := range jobs {
		j.mu.Lock()
		j.finished = fin
		j.cancel = nil
		switch {
		case batchCanceled:
			j.state = StateCanceled
			j.err = err.Error()
			e.metrics.Canceled.Add(1)
		case err != nil:
			j.state = StateFailed
			j.err = err.Error()
			e.metrics.Failed.Add(1)
		case bc.requestedFor(j):
			j.state = StateCanceled
			j.err = "canceled while batched"
			e.metrics.Canceled.Add(1)
		case !results[i].Converged:
			j.state = StateFailed
			j.err = fmt.Sprintf("%s did not converge after %d iterations (relres %.3e)",
				j.Spec.Solver, results[i].Iterations, results[i].RelRes)
			e.metrics.Failed.Add(1)
		default:
			res := *shared
			res.Iterations = results[i].Iterations
			res.Residual = results[i].RelRes
			res.Converged = true
			res.BatchID = batchID
			res.BatchSize = len(jobs)
			res.BatchIndex = i
			j.state = StateDone
			j.result = &res
			e.metrics.Done.Add(1)
		}
		j.mu.Unlock()
		e.metrics.Total.Observe(fin.Sub(j.submitted))
	}
}

// runBatch materializes the shared matrix, plan, and (for pcg) factors once,
// then solves every member's right-hand side in one width-k program. The
// members agree on solver, backend, workers, block, and matrix identity (the
// coalesce key), differing only in their RHS seeds. The returned JobResult
// holds the batch-invariant fields each member's result is copied from.
func (e *Engine) runBatch(ctx context.Context, jobs []*Job) ([]solver.BatchColResult, *JobResult, error) {
	spec := jobs[0].Spec
	planStart := time.Now()
	coo, err := spec.Matrix.buildMatrix()
	if err != nil {
		return nil, nil, fmt.Errorf("matrix: %w", err)
	}
	csr := coo.ToCSR()
	stats := sparse.ComputeStats(csr)
	workers := e.effectiveWorkers(spec)
	plan, source, err := e.resolvePlan(spec, coo, stats, workers)
	e.metrics.PlanStage.Observe(time.Since(planStart))
	if err != nil {
		return nil, nil, fmt.Errorf("plan: %w", err)
	}
	var mat sparse.Matrix
	if stats.Symmetric {
		sym, err := coo.ToSymCSB(plan.Block)
		if err != nil {
			return nil, nil, fmt.Errorf("symcsb: %w", err)
		}
		mat = sym
	} else {
		mat = coo.ToCSB(plan.Block)
	}
	rows := coo.Rows
	rtm := e.runtimeFor(spec.Backend, workers)

	k := len(jobs)
	bs := make([][]float64, k)
	for i, j := range jobs {
		seed := j.Spec.Seed
		if seed == 0 {
			seed = defaultJobSeed
		}
		bs[i] = solver.RandomRHS(rows, seed)
	}
	shared := &JobResult{
		MatrixRows: rows,
		MatrixNNZ:  coo.NNZ(),
		Block:      plan.Block,
		BlockCount: plan.BlockCount,
		PlanSource: source,
		SymStorage: stats.Symmetric,
	}

	solveStart := time.Now()
	var results []solver.BatchColResult
	switch spec.Solver {
	case "cg":
		c, err := solver.NewBatchCG(mat, k)
		if err != nil {
			return nil, nil, err
		}
		results, err = c.Solve(ctx, rtm, bs)
		if err != nil {
			return nil, nil, err
		}
	case "pcg":
		f, fsource, err := e.resolveFactors(csr, stats)
		if err != nil {
			return nil, nil, err
		}
		low, up, analysed := f.LevelsFor(plan.Block)
		if analysed {
			e.metrics.LevelAnalyses.Add(1)
		}
		c, err := solver.NewBatchPCG(mat, f.M, k, low, up)
		if err != nil {
			return nil, nil, err
		}
		results, err = c.Solve(ctx, rtm, bs)
		if err != nil {
			return nil, nil, err
		}
		shared.Precond = f.M.Kind.String()
		shared.FactorSource = fsource
	default:
		return nil, nil, fmt.Errorf("solver %q is not batchable", spec.Solver)
	}
	e.metrics.Solve.Observe(time.Since(solveStart))
	return results, shared, nil
}

// run materializes the matrix, resolves a tiling plan, and solves. The
// matrix's structural stats are computed once here and feed both the plan key
// and the storage choice: symmetric matrices are stored as SymCSB (lower
// triangle + diagonal) and solved through the symmetry-exploiting kernels.
func (e *Engine) run(ctx context.Context, spec JobSpec) (*JobResult, error) {
	planStart := time.Now()
	coo, err := spec.Matrix.buildMatrix()
	if err != nil {
		return nil, fmt.Errorf("matrix: %w", err)
	}
	csr := coo.ToCSR()
	stats := sparse.ComputeStats(csr)
	workers := e.effectiveWorkers(spec)
	plan, source, err := e.resolvePlan(spec, coo, stats, workers)
	e.metrics.PlanStage.Observe(time.Since(planStart))
	if err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	var mat sparse.Matrix
	if stats.Symmetric {
		sym, err := coo.ToSymCSB(plan.Block)
		if err != nil {
			return nil, fmt.Errorf("symcsb: %w", err)
		}
		mat = sym
	} else {
		mat = coo.ToCSB(plan.Block)
	}
	rows := coo.Rows
	rtm := e.runtimeFor(spec.Backend, workers)

	seed := spec.Seed
	if seed == 0 {
		seed = defaultJobSeed
	}
	res := &JobResult{
		MatrixRows: rows,
		MatrixNNZ:  coo.NNZ(),
		Block:      plan.Block,
		BlockCount: plan.BlockCount,
		PlanSource: source,
		SymStorage: stats.Symmetric,
	}

	solveStart := time.Now()
	switch spec.Solver {
	case "lanczos":
		k := spec.K
		if k <= 0 {
			k = defaultSolverK
		}
		if k > rows {
			k = rows
		}
		l, err := solver.NewLanczos(mat, k)
		if err != nil {
			return nil, err
		}
		r, err := l.Run(ctx, rtm, seed)
		if err != nil {
			return nil, err
		}
		res.Eigenvalues = r.Eigenvalues
		res.Iterations = r.Iterations
		res.Residual = r.Residual
		res.Converged = r.Converged
	case "lobpcg":
		k := spec.K
		if k <= 0 {
			k = defaultSolverK
		}
		if 3*k > rows {
			k = rows / 3
			if k < 1 {
				return nil, fmt.Errorf("matrix with %d rows too small for lobpcg", rows)
			}
		}
		l, err := solver.NewLOBPCG(mat, k)
		if err != nil {
			return nil, err
		}
		r, err := l.Run(ctx, rtm, seed, spec.Iters)
		if err != nil {
			return nil, err
		}
		res.Eigenvalues = r.Eigenvalues
		res.Iterations = r.Iterations
		res.Residual = r.Residual
		res.Converged = r.Converged
	case "cg":
		c, err := solver.NewCG(mat)
		if err != nil {
			return nil, err
		}
		b := solver.RandomRHS(rows, seed)
		_, relres, iters, err := c.Solve(ctx, rtm, b)
		if err != nil {
			return nil, fmt.Errorf("cg after %d iterations (relres %.3e): %w", iters, relres, err)
		}
		res.Iterations = iters
		res.Residual = relres
		res.Converged = true
	case "pcg":
		f, source, err := e.resolveFactors(csr, stats)
		if err != nil {
			return nil, err
		}
		low, up, analysed := f.LevelsFor(plan.Block)
		if analysed {
			e.metrics.LevelAnalyses.Add(1)
		}
		c, err := solver.NewPCGWithLevels(mat, f.M, low, up)
		if err != nil {
			return nil, err
		}
		b := solver.RandomRHS(rows, seed)
		_, relres, iters, err := c.Solve(ctx, rtm, b)
		if err != nil {
			return nil, fmt.Errorf("pcg after %d iterations (relres %.3e): %w", iters, relres, err)
		}
		res.Iterations = iters
		res.Residual = relres
		res.Converged = true
		res.Precond = f.M.Kind.String()
		res.FactorSource = source
	default:
		return nil, fmt.Errorf("unknown solver %q", spec.Solver)
	}
	e.metrics.Solve.Observe(time.Since(solveStart))
	return res, nil
}

// runtimeFor returns the shared Runtime instance for a backend, or an
// ad-hoc one when the job overrides the worker count. Shared instances are
// exercised concurrently by the pool — the pattern rt.Runtime documents as
// safe (each job has its own TDG and store).
func (e *Engine) runtimeFor(backend string, workers int) rt.Runtime {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.runtimes == nil {
		e.runtimes = make(map[runtimeKey]rt.Runtime)
	}
	k := runtimeKey{backend, workers}
	r, ok := e.runtimes[k]
	if !ok {
		r = newRuntime(backend, workers, e.topo)
		e.runtimes[k] = r
	}
	return r
}

type runtimeKey struct {
	backend string
	workers int
}

// resolvePlan picks the CSB tiling: an explicit request wins, then the plan
// cache, then a fresh §5.4 six-trial autotune sweep whose result is cached
// under the matrix's structural fingerprint. Matrices too small to tune get
// a single-tile fallback (also cached, so they only pay the failed sweep
// once).
func (e *Engine) resolvePlan(spec JobSpec, coo *sparse.COO, stats sparse.Stats, workers int) (Plan, string, error) {
	rows := coo.Rows
	if spec.Block > 0 {
		return Plan{
			Block:      spec.Block,
			BlockCount: (rows + spec.Block - 1) / spec.Block,
		}, "request", nil
	}
	key := PlanKey{
		Fingerprint: stats.Fingerprint(),
		Solver:      spec.Solver,
		Backend:     spec.Backend,
		Workers:     workers,
		Topo:        e.topo.Name,
		SymStorage:  stats.Symmetric,
	}
	if p, ok := e.plans.Get(key); ok {
		return p, "cache", nil
	}

	sv := autotune.Lanczos // cg and pcg share Lanczos's SpMV-dominated kernel mix
	if spec.Solver == "lobpcg" {
		sv = autotune.LOBPCG
	}
	e.metrics.AutotuneSweeps.Add(1)
	res, err := autotune.Tune(rows, autotune.GraphEvaluator(coo, sv, workers, tuneFlopsPerNs, tuneOverheadNs))
	if err != nil {
		p := Plan{Block: rows, BlockCount: 1}
		e.plans.Put(key, p)
		return p, "fallback", nil
	}
	p := Plan{Block: res.Block, BlockCount: res.BlockCount, Bin: res.Bin}
	e.plans.Put(key, p)
	return p, "autotune", nil
}

// resolveFactors returns the preconditioner for a pcg job: a factor-cache hit
// under the matrix's structural fingerprint, or a fresh IC(0) factorization
// (Jacobi on breakdown) that is then cached. Unlike the plan key, the factor
// key is the fingerprint alone — the factors depend only on the matrix, so
// they are shared across backends, worker counts, and tilings. The
// fingerprint hashes the symmetry bit, so symmetric-storage jobs never share
// factors with a general matrix that merely collides structurally.
func (e *Engine) resolveFactors(csr *sparse.CSR, stats sparse.Stats) (*Factorization, string, error) {
	fp := stats.Fingerprint()
	if f, ok := e.factors.Get(fp); ok {
		return f, "cache", nil
	}
	e.metrics.Factorizations.Add(1)
	m, err := precond.Factorize(csr)
	if err != nil {
		return nil, "", fmt.Errorf("ic0: %w", err)
	}
	f := NewFactorization(m)
	e.factors.Put(fp, f)
	return f, "computed", nil
}
