package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"sparsetask/internal/autotune"
	"sparsetask/internal/precond"
	"sparsetask/internal/rt"
	"sparsetask/internal/solver"
	"sparsetask/internal/sparse"
	"sparsetask/internal/topo"
)

// Cost-model constants for the analytic autotune evaluator. Only relative
// costs across block counts matter for picking a bin, so rough host-scale
// numbers suffice: ~1 flop/ns sustained and ~500 ns of scheduling overhead
// per task.
const (
	tuneFlopsPerNs = 1.0
	tuneOverheadNs = 500.0
	defaultSolverK = 6
	defaultJobSeed = 1
)

// newRuntime constructs a backend. Backend names are validated at admission.
func newRuntime(backend string, workers int, tp topo.Topology) rt.Runtime {
	opt := rt.Options{Workers: workers, Topo: tp}
	switch backend {
	case "bsp":
		return rt.NewBSP(opt)
	case "deepsparse":
		return rt.NewDeepSparse(opt)
	case "hpx":
		return rt.NewHPX(opt)
	case "regent":
		return rt.NewRegent(opt)
	}
	panic(fmt.Sprintf("server: unknown backend %q", backend))
}

// effectiveWorkers resolves a job's runtime worker count.
func (s *Server) effectiveWorkers(spec JobSpec) int {
	if spec.Workers > 0 {
		return spec.Workers
	}
	if s.cfg.RTWorkers > 0 {
		return s.cfg.RTWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// execute runs one dequeued job through plan + solve and records metrics.
func (s *Server) execute(job *Job) {
	job.mu.Lock()
	if job.state != StateQueued { // cancelled while queued
		job.mu.Unlock()
		return
	}
	start := time.Now()
	job.state = StateRunning
	job.started = start
	ctx := s.baseCtx
	var cancel context.CancelFunc
	if job.Spec.DeadlineMS > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(job.Spec.DeadlineMS)*time.Millisecond)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	job.cancel = cancel
	job.mu.Unlock()
	defer cancel()
	s.metrics.QueueWait.Observe(start.Sub(job.submitted))

	res, err := s.run(ctx, job.Spec)

	fin := time.Now()
	job.mu.Lock()
	job.finished = fin
	job.cancel = nil
	switch {
	case err == nil:
		job.state = StateDone
		job.result = res
		s.metrics.Done.Add(1)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		job.state = StateCanceled
		job.err = err.Error()
		s.metrics.Canceled.Add(1)
	default:
		job.state = StateFailed
		job.err = err.Error()
		s.metrics.Failed.Add(1)
	}
	job.mu.Unlock()
	s.metrics.Total.Observe(fin.Sub(job.submitted))
}

// run materializes the matrix, resolves a tiling plan, and solves. The
// matrix's structural stats are computed once here and feed both the plan key
// and the storage choice: symmetric matrices are stored as SymCSB (lower
// triangle + diagonal) and solved through the symmetry-exploiting kernels.
func (s *Server) run(ctx context.Context, spec JobSpec) (*JobResult, error) {
	planStart := time.Now()
	coo, err := spec.Matrix.buildMatrix()
	if err != nil {
		return nil, fmt.Errorf("matrix: %w", err)
	}
	csr := coo.ToCSR()
	stats := sparse.ComputeStats(csr)
	workers := s.effectiveWorkers(spec)
	plan, source, err := s.resolvePlan(spec, coo, stats, workers)
	s.metrics.PlanStage.Observe(time.Since(planStart))
	if err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	var mat sparse.Matrix
	if stats.Symmetric {
		sym, err := coo.ToSymCSB(plan.Block)
		if err != nil {
			return nil, fmt.Errorf("symcsb: %w", err)
		}
		mat = sym
	} else {
		mat = coo.ToCSB(plan.Block)
	}
	rows := coo.Rows
	rtm := s.runtimeFor(spec.Backend, workers)

	seed := spec.Seed
	if seed == 0 {
		seed = defaultJobSeed
	}
	res := &JobResult{
		MatrixRows: rows,
		MatrixNNZ:  coo.NNZ(),
		Block:      plan.Block,
		BlockCount: plan.BlockCount,
		PlanSource: source,
		SymStorage: stats.Symmetric,
	}

	solveStart := time.Now()
	switch spec.Solver {
	case "lanczos":
		k := spec.K
		if k <= 0 {
			k = defaultSolverK
		}
		if k > rows {
			k = rows
		}
		l, err := solver.NewLanczos(mat, k)
		if err != nil {
			return nil, err
		}
		r, err := l.Run(ctx, rtm, seed)
		if err != nil {
			return nil, err
		}
		res.Eigenvalues = r.Eigenvalues
		res.Iterations = r.Iterations
		res.Residual = r.Residual
		res.Converged = r.Converged
	case "lobpcg":
		k := spec.K
		if k <= 0 {
			k = defaultSolverK
		}
		if 3*k > rows {
			k = rows / 3
			if k < 1 {
				return nil, fmt.Errorf("matrix with %d rows too small for lobpcg", rows)
			}
		}
		l, err := solver.NewLOBPCG(mat, k)
		if err != nil {
			return nil, err
		}
		r, err := l.Run(ctx, rtm, seed, spec.Iters)
		if err != nil {
			return nil, err
		}
		res.Eigenvalues = r.Eigenvalues
		res.Iterations = r.Iterations
		res.Residual = r.Residual
		res.Converged = r.Converged
	case "cg":
		c, err := solver.NewCG(mat)
		if err != nil {
			return nil, err
		}
		b := solver.RandomRHS(rows, seed)
		_, relres, iters, err := c.Solve(ctx, rtm, b)
		if err != nil {
			return nil, fmt.Errorf("cg after %d iterations (relres %.3e): %w", iters, relres, err)
		}
		res.Iterations = iters
		res.Residual = relres
		res.Converged = true
	case "pcg":
		f, source, err := s.resolveFactors(csr, stats)
		if err != nil {
			return nil, err
		}
		low, up, analysed := f.LevelsFor(plan.Block)
		if analysed {
			s.metrics.LevelAnalyses.Add(1)
		}
		c, err := solver.NewPCGWithLevels(mat, f.M, low, up)
		if err != nil {
			return nil, err
		}
		b := solver.RandomRHS(rows, seed)
		_, relres, iters, err := c.Solve(ctx, rtm, b)
		if err != nil {
			return nil, fmt.Errorf("pcg after %d iterations (relres %.3e): %w", iters, relres, err)
		}
		res.Iterations = iters
		res.Residual = relres
		res.Converged = true
		res.Precond = f.M.Kind.String()
		res.FactorSource = source
	default:
		return nil, fmt.Errorf("unknown solver %q", spec.Solver)
	}
	s.metrics.Solve.Observe(time.Since(solveStart))
	return res, nil
}

// runtimeFor returns the shared Runtime instance for a backend, or an
// ad-hoc one when the job overrides the worker count. Shared instances are
// exercised concurrently by the pool — the pattern rt.Runtime documents as
// safe (each job has its own TDG and store).
func (s *Server) runtimeFor(backend string, workers int) rt.Runtime {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.runtimes == nil {
		s.runtimes = make(map[runtimeKey]rt.Runtime)
	}
	k := runtimeKey{backend, workers}
	r, ok := s.runtimes[k]
	if !ok {
		r = newRuntime(backend, workers, s.topo)
		s.runtimes[k] = r
	}
	return r
}

type runtimeKey struct {
	backend string
	workers int
}

// resolvePlan picks the CSB tiling: an explicit request wins, then the plan
// cache, then a fresh §5.4 six-trial autotune sweep whose result is cached
// under the matrix's structural fingerprint. Matrices too small to tune get
// a single-tile fallback (also cached, so they only pay the failed sweep
// once).
func (s *Server) resolvePlan(spec JobSpec, coo *sparse.COO, stats sparse.Stats, workers int) (Plan, string, error) {
	rows := coo.Rows
	if spec.Block > 0 {
		return Plan{
			Block:      spec.Block,
			BlockCount: (rows + spec.Block - 1) / spec.Block,
		}, "request", nil
	}
	key := PlanKey{
		Fingerprint: stats.Fingerprint(),
		Solver:      spec.Solver,
		Backend:     spec.Backend,
		Workers:     workers,
		Topo:        s.topo.Name,
		SymStorage:  stats.Symmetric,
	}
	if p, ok := s.plans.Get(key); ok {
		return p, "cache", nil
	}

	sv := autotune.Lanczos // cg and pcg share Lanczos's SpMV-dominated kernel mix
	if spec.Solver == "lobpcg" {
		sv = autotune.LOBPCG
	}
	s.metrics.AutotuneSweeps.Add(1)
	res, err := autotune.Tune(rows, autotune.GraphEvaluator(coo, sv, workers, tuneFlopsPerNs, tuneOverheadNs))
	if err != nil {
		p := Plan{Block: rows, BlockCount: 1}
		s.plans.Put(key, p)
		return p, "fallback", nil
	}
	p := Plan{Block: res.Block, BlockCount: res.BlockCount, Bin: res.Bin}
	s.plans.Put(key, p)
	return p, "autotune", nil
}

// resolveFactors returns the preconditioner for a pcg job: a factor-cache hit
// under the matrix's structural fingerprint, or a fresh IC(0) factorization
// (Jacobi on breakdown) that is then cached. Unlike the plan key, the factor
// key is the fingerprint alone — the factors depend only on the matrix, so
// they are shared across backends, worker counts, and tilings. The
// fingerprint hashes the symmetry bit, so symmetric-storage jobs never share
// factors with a general matrix that merely collides structurally.
func (s *Server) resolveFactors(csr *sparse.CSR, stats sparse.Stats) (*Factorization, string, error) {
	fp := stats.Fingerprint()
	if f, ok := s.factors.Get(fp); ok {
		return f, "cache", nil
	}
	s.metrics.Factorizations.Add(1)
	m, err := precond.Factorize(csr)
	if err != nil {
		return nil, "", fmt.Errorf("ic0: %w", err)
	}
	f := NewFactorization(m)
	s.factors.Put(fp, f)
	return f, "computed", nil
}
