package server

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// Engine-level tests for the batch coalescer. They drive the Engine API
// directly (no HTTP) and run under -race in the Makefile matrix: the
// dispatcher, the pool, Submit, and Cancel all touch the same jobs
// concurrently.

func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e := NewEngine(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		if err := e.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return e
}

func waitTerminal(t *testing.T, j *Job, timeout time.Duration) JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if v := j.View(); v.State.terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", j.ID, j.StateNow())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func cgSpec(mm string, seed int64) JobSpec {
	return JobSpec{Solver: "cg", Backend: "deepsparse", Matrix: MatrixSpec{MM: mm}, Seed: seed}
}

// Four same-matrix cg jobs submitted inside the coalesce window must execute
// as one multi-RHS batch, each converging on its own right-hand side.
func TestCoalesceSameMatrixBatches(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1, RTWorkers: 2,
		CoalesceMax: 4, CoalesceWindow: 300 * time.Millisecond})
	mm := spdTridiagMM(24)
	jobs := make([]*Job, 4)
	for i := range jobs {
		j, err := e.Submit(cgSpec(mm, int64(i+1)))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs[i] = j
	}
	var batchID string
	for i, j := range jobs {
		v := waitTerminal(t, j, 30*time.Second)
		if v.State != StateDone {
			t.Fatalf("job %d ended %s: %s", i, v.State, v.Error)
		}
		r := v.Result
		if r.BatchSize != 4 {
			t.Errorf("job %d batch_size = %d, want 4", i, r.BatchSize)
		}
		if r.BatchIndex != i {
			t.Errorf("job %d batch_index = %d, want %d (submission order)", i, r.BatchIndex, i)
		}
		if i == 0 {
			batchID = r.BatchID
			if batchID == "" {
				t.Fatal("batched job has empty batch_id")
			}
		} else if r.BatchID != batchID {
			t.Errorf("job %d batch_id = %q, want %q", i, r.BatchID, batchID)
		}
		if !r.Converged || r.Residual > 1e-8 {
			t.Errorf("job %d converged=%v residual=%.3e", i, r.Converged, r.Residual)
		}
	}
	if n := e.metrics.CoalescedBatches.Load(); n != 1 {
		t.Errorf("coalesced_batches = %d, want 1", n)
	}
	if n := e.metrics.BatchedJobs.Load(); n != 4 {
		t.Errorf("batched_jobs = %d, want 4", n)
	}
	if s := e.metrics.BatchSizes.Snapshot()["cg"]; s.Max != 4 || s.Count != 1 {
		t.Errorf("cg batch-size histogram = %+v, want one group of 4", s)
	}
}

// A batched pcg group shares one factorization and reports the batch's
// preconditioner on every member.
func TestCoalescePCGBatch(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1, RTWorkers: 2,
		CoalesceMax: 4, CoalesceWindow: 300 * time.Millisecond})
	mm := spdTridiagMM(32)
	jobs := make([]*Job, 3)
	for i := range jobs {
		spec := cgSpec(mm, int64(i+1))
		spec.Solver = "pcg"
		j, err := e.Submit(spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs[i] = j
	}
	for i, j := range jobs {
		v := waitTerminal(t, j, 30*time.Second)
		if v.State != StateDone {
			t.Fatalf("job %d ended %s: %s", i, v.State, v.Error)
		}
		if v.Result.BatchSize != 3 {
			t.Errorf("job %d batch_size = %d, want 3", i, v.Result.BatchSize)
		}
		if v.Result.Precond != "ic0" {
			t.Errorf("job %d precond = %q, want ic0", i, v.Result.Precond)
		}
	}
	if n := e.metrics.Factorizations.Load(); n != 1 {
		t.Errorf("factorizations = %d, want 1 (batch shares the factors)", n)
	}
}

// Distinct matrices must never share a batch, no matter how traffic
// interleaves. Submitters race the dispatcher from several goroutines; the
// test then audits every multi-job batch for a single matrix identity.
func TestCoalesceDistinctMatricesNeverCross(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2, RTWorkers: 2, QueueSize: 128,
		CoalesceMax: 8, CoalesceWindow: 20 * time.Millisecond})
	mats := []string{spdTridiagMM(16), spdTridiagMM(24), spdTridiagMM(32)}

	const perWorker, submitters = 15, 4
	var mu sync.Mutex
	byID := make(map[string]JobSpec)
	var jobs []*Job
	var wg sync.WaitGroup
	wg.Add(submitters)
	for w := 0; w < submitters; w++ {
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				spec := cgSpec(mats[rng.Intn(len(mats))], rng.Int63n(100)+1)
				j, err := e.Submit(spec)
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				mu.Lock()
				byID[j.ID] = spec
				jobs = append(jobs, j)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	batches := make(map[string][]string) // batch id -> member matrix identities
	for _, j := range jobs {
		v := waitTerminal(t, j, 60*time.Second)
		if v.State != StateDone {
			t.Fatalf("job %s ended %s: %s", v.ID, v.State, v.Error)
		}
		if v.Result.BatchID != "" {
			spec := byID[v.ID]
			batches[v.Result.BatchID] = append(batches[v.Result.BatchID], spec.Matrix.identity())
		}
	}
	for id, idents := range batches {
		for _, ident := range idents[1:] {
			if ident != idents[0] {
				t.Fatalf("batch %s mixed matrices %s and %s", id, idents[0], ident)
			}
		}
	}
}

// Cancelling a member while it waits in the dispatcher's group removes it
// from the batch: the survivors still coalesce and the canceled job stays
// canceled.
func TestCoalesceCancelWhileQueuedExcluded(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1, RTWorkers: 1,
		CoalesceMax: 4, CoalesceWindow: 200 * time.Millisecond})
	// Occupy the single worker so the cg group cannot start yet.
	blocker, err := e.Submit(JobSpec{Solver: "lobpcg", Backend: "deepsparse",
		Matrix: MatrixSpec{MM: diag4}, Iters: 500000})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for blocker.StateNow() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatalf("blocker stuck in %s", blocker.StateNow())
		}
		time.Sleep(2 * time.Millisecond)
	}

	mm := spdTridiagMM(24)
	jobs := make([]*Job, 3)
	for i := range jobs {
		j, err := e.Submit(cgSpec(mm, int64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	e.Cancel(jobs[1]) // still queued or held by the dispatcher
	if s := jobs[1].StateNow(); s != StateCanceled {
		t.Fatalf("canceled member state = %s, want canceled", s)
	}
	e.Cancel(blocker) // free the worker

	for _, i := range []int{0, 2} {
		v := waitTerminal(t, jobs[i], 30*time.Second)
		if v.State != StateDone {
			t.Fatalf("survivor %d ended %s: %s", i, v.State, v.Error)
		}
		if v.Result.BatchSize != 2 {
			t.Errorf("survivor %d batch_size = %d, want 2", i, v.Result.BatchSize)
		}
	}
	if v := jobs[1].View(); v.State != StateCanceled {
		t.Errorf("canceled member resurrected to %s", v.State)
	}
}

// A non-batchable job between two batchable runs splits the groups without
// reordering the queue: [cg cg] lanczos [cg cg].
func TestCoalesceNonBatchableSplitsGroups(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1, RTWorkers: 1,
		CoalesceMax: 8, CoalesceWindow: 500 * time.Millisecond})
	blocker, err := e.Submit(JobSpec{Solver: "lobpcg", Backend: "deepsparse",
		Matrix: MatrixSpec{MM: diag4}, Iters: 500000})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for blocker.StateNow() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatalf("blocker stuck in %s", blocker.StateNow())
		}
		time.Sleep(2 * time.Millisecond)
	}

	mm := spdTridiagMM(24)
	var jobs []*Job
	for _, spec := range []JobSpec{
		cgSpec(mm, 1), cgSpec(mm, 2),
		{Solver: "lanczos", Backend: "deepsparse", Matrix: MatrixSpec{MM: diag4}, K: 4},
		cgSpec(mm, 3), cgSpec(mm, 4),
	} {
		j, err := e.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	e.Cancel(blocker)

	var views []JobView
	for i, j := range jobs {
		v := waitTerminal(t, j, 30*time.Second)
		if v.State != StateDone {
			t.Fatalf("job %d ended %s: %s", i, v.State, v.Error)
		}
		views = append(views, v)
	}
	first, second := views[0].Result.BatchID, views[3].Result.BatchID
	if first == "" || second == "" || first == second {
		t.Errorf("batch ids %q/%q: want two distinct non-empty batches", first, second)
	}
	if views[0].Result.BatchID != views[1].Result.BatchID {
		t.Errorf("jobs 0/1 split across batches %q/%q", views[0].Result.BatchID, views[1].Result.BatchID)
	}
	if views[3].Result.BatchID != views[4].Result.BatchID {
		t.Errorf("jobs 3/4 split across batches %q/%q", views[3].Result.BatchID, views[4].Result.BatchID)
	}
	if views[2].Result.BatchID != "" || views[2].Result.BatchSize != 0 {
		t.Errorf("lanczos job carries batch fields %+v", views[2].Result)
	}
	if len(views[2].Result.Eigenvalues) == 0 {
		t.Error("lanczos job lost its eigenvalues on the pass-through path")
	}
}

// A batched job must agree with the same job solved alone: the multi-RHS
// iteration is column-independent, so iteration counts match exactly and
// solutions agree to solver tolerance.
func TestCoalesceMatchesSingleJob(t *testing.T) {
	mm := spdTridiagMM(40)

	single := newTestEngine(t, Config{Workers: 1, RTWorkers: 2}) // coalescing off
	ref, err := single.Submit(cgSpec(mm, 7))
	if err != nil {
		t.Fatal(err)
	}
	refView := waitTerminal(t, ref, 30*time.Second)
	if refView.State != StateDone {
		t.Fatalf("reference job ended %s: %s", refView.State, refView.Error)
	}

	batched := newTestEngine(t, Config{Workers: 1, RTWorkers: 2,
		CoalesceMax: 3, CoalesceWindow: 300 * time.Millisecond})
	jobs := make([]*Job, 3)
	for i := range jobs {
		seed := int64(7 + i)
		j, err := batched.Submit(cgSpec(mm, seed))
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	v := waitTerminal(t, jobs[0], 30*time.Second)
	if v.State != StateDone {
		t.Fatalf("batched job ended %s: %s", v.State, v.Error)
	}
	if v.Result.BatchSize != 3 {
		t.Fatalf("batch_size = %d, want 3 (coalescing did not happen)", v.Result.BatchSize)
	}
	// Column independence makes the batched recurrence agree with the single
	// solve to rounding (dot products accumulate in a different order), so
	// the convergence iteration can shift by at most one near the threshold.
	if d := v.Result.Iterations - refView.Result.Iterations; d < -1 || d > 1 {
		t.Errorf("batched iterations = %d, single = %d (columns must be independent)",
			v.Result.Iterations, refView.Result.Iterations)
	}
	if v.Result.Residual > 1e-8 {
		t.Errorf("batched residual = %.3e", v.Result.Residual)
	}
	for _, j := range jobs[1:] {
		waitTerminal(t, j, 30*time.Second)
	}
}
