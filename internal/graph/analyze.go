package graph

import (
	"fmt"
	"io"
	"strings"
)

// Stats summarizes a TDG: the numbers the paper quotes (task counts per
// iteration ranged 56 to 6.5M; critical path 5 for Lanczos and 29 for
// LOBPCG at the kernel level).
type Stats struct {
	Tasks        int
	Edges        int
	Roots        int
	CriticalPath int   // longest path in tasks
	CriticalWork int64 // flops along the flop-weighted longest path
	TotalFlops   int64
	// MaxWidth is the largest antichain level size under ASAP leveling: an
	// upper bound proxy for exploitable parallelism.
	MaxWidth int
	// KernelCriticalPath is the critical path measured in distinct calls
	// (kernel granularity), matching how the paper counts 5 and 29.
	KernelCriticalPath int
}

// ComputeStats analyzes the graph in one topological pass. Tasks are already
// topologically ordered by construction (dependencies always point to lower
// ids).
func (g *TDG) ComputeStats() Stats {
	s := Stats{Tasks: len(g.Tasks), Edges: g.NumEdges, Roots: len(g.Roots)}
	depth := make([]int32, len(g.Tasks))
	work := make([]int64, len(g.Tasks))
	kdepth := make([]int32, len(g.Tasks))
	var levelCount []int
	for i := range g.Tasks {
		t := &g.Tasks[i]
		var d, kd int32
		var w int64
		for _, dep := range t.Deps {
			if depth[dep] > d {
				d = depth[dep]
			}
			if work[dep] > w {
				w = work[dep]
			}
			kdp := kdepth[dep]
			if g.Tasks[dep].Call == t.Call {
				// same kernel: no new kernel level
				if kdp > kd {
					kd = kdp
				}
			} else {
				if kdp+1 > kd {
					kd = kdp + 1
				}
			}
		}
		depth[i] = d + 1
		work[i] = w + t.Flops
		if len(t.Deps) == 0 {
			kdepth[i] = 1
		} else {
			if kd == 0 {
				kd = 1
			}
			kdepth[i] = kd
		}
		for int(depth[i]) >= len(levelCount) {
			levelCount = append(levelCount, 0)
		}
		levelCount[depth[i]]++
		s.TotalFlops += t.Flops
		if int(depth[i]) > s.CriticalPath {
			s.CriticalPath = int(depth[i])
		}
		if work[i] > s.CriticalWork {
			s.CriticalWork = work[i]
		}
		if int(kdepth[i]) > s.KernelCriticalPath {
			s.KernelCriticalPath = int(kdepth[i])
		}
	}
	for _, c := range levelCount {
		if c > s.MaxWidth {
			s.MaxWidth = c
		}
	}
	return s
}

// Validate checks structural invariants: dependencies point strictly
// backwards (acyclicity by construction), Succs mirror Deps, and every
// non-root has at least one dependency.
func (g *TDG) Validate() error {
	for i := range g.Tasks {
		t := &g.Tasks[i]
		if t.ID != int32(i) {
			return fmt.Errorf("graph: task %d has ID %d", i, t.ID)
		}
		for _, d := range t.Deps {
			if d >= t.ID {
				return fmt.Errorf("graph: task %d depends on %d (not strictly earlier)", t.ID, d)
			}
			found := false
			for _, s := range g.Tasks[d].Succs {
				if s == t.ID {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("graph: edge %d->%d missing from Succs", d, t.ID)
			}
		}
	}
	roots := 0
	for i := range g.Tasks {
		if len(g.Tasks[i].Deps) == 0 {
			roots++
		}
	}
	if roots != len(g.Roots) {
		return fmt.Errorf("graph: %d roots recorded, %d found", len(g.Roots), roots)
	}
	return nil
}

// WriteDOT emits the TDG in Graphviz format, one node per task labeled with
// its kernel and partition, matching the style of the paper's Fig. 3.
func (g *TDG) WriteDOT(w io.Writer, title string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n", title)
	for i := range g.Tasks {
		t := &g.Tasks[i]
		label := fmt.Sprintf("%s", t.Kind)
		switch {
		case t.Q >= 0:
			label = fmt.Sprintf("%s(%d,%d)", t.Kind, t.P, t.Q)
		case t.P >= 0:
			label = fmt.Sprintf("%s(%d)", t.Kind, t.P)
		}
		fmt.Fprintf(&b, "  t%d [label=%q];\n", t.ID, label)
	}
	for i := range g.Tasks {
		for _, d := range g.Tasks[i].Deps {
			fmt.Fprintf(&b, "  t%d -> t%d;\n", d, g.Tasks[i].ID)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// TasksOfCall returns the ids of all tasks expanded from call ci, in
// creation order.
func (g *TDG) TasksOfCall(ci int) []int32 {
	var out []int32
	for i := range g.Tasks {
		if g.Tasks[i].Call == int32(ci) {
			out = append(out, g.Tasks[i].ID)
		}
	}
	return out
}
