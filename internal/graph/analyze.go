package graph

import (
	"fmt"
	"io"
	"strings"
)

// Stats summarizes a TDG: the numbers the paper quotes (task counts per
// iteration ranged 56 to 6.5M; critical path 5 for Lanczos and 29 for
// LOBPCG at the kernel level).
type Stats struct {
	Tasks        int
	Edges        int
	Roots        int
	CriticalPath int   // longest path in tasks
	CriticalWork int64 // flops along the flop-weighted longest path
	TotalFlops   int64
	// MaxWidth is the largest antichain level size under ASAP leveling: an
	// upper bound proxy for exploitable parallelism.
	MaxWidth int
	// KernelCriticalPath is the critical path measured in distinct calls
	// (kernel granularity), matching how the paper counts 5 and 29.
	KernelCriticalPath int
	// LevelWidths is the task count at each ASAP level, index 0 = roots.
	// Regular SpMM-style graphs have a handful of wide levels; the
	// triangular-solve graphs introduced with IC(0) preconditioning have
	// thousands of narrow ones — render with LevelHistogram, which buckets.
	LevelWidths []int
}

// ComputeStats analyzes the graph in one topological pass. Tasks are already
// topologically ordered by construction (dependencies always point to lower
// ids).
func (g *TDG) ComputeStats() Stats {
	s := Stats{Tasks: len(g.Tasks), Edges: g.NumEdges, Roots: len(g.Roots)}
	depth := make([]int32, len(g.Tasks))
	work := make([]int64, len(g.Tasks))
	kdepth := make([]int32, len(g.Tasks))
	var levelCount []int
	for i := range g.Tasks {
		t := &g.Tasks[i]
		var d, kd int32
		var w int64
		for _, dep := range t.Deps {
			if depth[dep] > d {
				d = depth[dep]
			}
			if work[dep] > w {
				w = work[dep]
			}
			kdp := kdepth[dep]
			if g.Tasks[dep].Call == t.Call {
				// same kernel: no new kernel level
				if kdp > kd {
					kd = kdp
				}
			} else {
				if kdp+1 > kd {
					kd = kdp + 1
				}
			}
		}
		depth[i] = d + 1
		work[i] = w + t.Flops
		if len(t.Deps) == 0 {
			kdepth[i] = 1
		} else {
			if kd == 0 {
				kd = 1
			}
			kdepth[i] = kd
		}
		for int(depth[i]) >= len(levelCount) {
			levelCount = append(levelCount, 0)
		}
		levelCount[depth[i]]++
		s.TotalFlops += t.Flops
		if int(depth[i]) > s.CriticalPath {
			s.CriticalPath = int(depth[i])
		}
		if work[i] > s.CriticalWork {
			s.CriticalWork = work[i]
		}
		if int(kdepth[i]) > s.KernelCriticalPath {
			s.KernelCriticalPath = int(kdepth[i])
		}
	}
	for _, c := range levelCount {
		if c > s.MaxWidth {
			s.MaxWidth = c
		}
	}
	// depth values start at 1, so levelCount[0] is always empty.
	if len(levelCount) > 1 {
		s.LevelWidths = levelCount[1:]
	}
	return s
}

// LevelHistogram renders the level-width profile as at most maxRows lines.
// When the graph has more levels than rows — the norm for level-scheduled
// triangular solves, whose DAGs have thousands of levels of width 1–4 —
// consecutive levels are bucketed and each line reports the bucket's level
// range, total tasks, and min/mean/max width, with a bar scaled to the widest
// bucket mean. Printing one line per level is never acceptable output for
// such graphs; this is the capped form every front-end should use.
func (s Stats) LevelHistogram(maxRows int) string {
	if len(s.LevelWidths) == 0 {
		return "(empty graph)\n"
	}
	if maxRows < 1 {
		maxRows = 1
	}
	n := len(s.LevelWidths)
	per := (n + maxRows - 1) / maxRows // levels per bucket
	type bucket struct {
		lo, hi     int // level range, inclusive
		tasks      int
		minW, maxW int
		mean       float64
	}
	var bs []bucket
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		b := bucket{lo: lo, hi: hi - 1, minW: s.LevelWidths[lo], maxW: s.LevelWidths[lo]}
		for _, w := range s.LevelWidths[lo:hi] {
			b.tasks += w
			if w < b.minW {
				b.minW = w
			}
			if w > b.maxW {
				b.maxW = w
			}
		}
		b.mean = float64(b.tasks) / float64(hi-lo)
		bs = append(bs, b)
	}
	peak := 0.0
	for _, b := range bs {
		if b.mean > peak {
			peak = b.mean
		}
	}
	const barWidth = 40
	var out strings.Builder
	fmt.Fprintf(&out, "%d levels, max width %d (%d rows of %d levels each)\n", n, s.MaxWidth, len(bs), per)
	for _, b := range bs {
		bar := 0
		if peak > 0 {
			bar = int(b.mean / peak * barWidth)
		}
		if bar == 0 && b.tasks > 0 {
			bar = 1
		}
		if per == 1 {
			fmt.Fprintf(&out, "L%-6d %6d %s\n", b.lo, b.tasks, strings.Repeat("#", bar))
		} else {
			fmt.Fprintf(&out, "L%d-%d: %d tasks, width %d..%d (mean %.1f) %s\n",
				b.lo, b.hi, b.tasks, b.minW, b.maxW, b.mean, strings.Repeat("#", bar))
		}
	}
	return out.String()
}

// Validate checks structural invariants: dependencies point strictly
// backwards (acyclicity by construction), Succs mirror Deps, and every
// non-root has at least one dependency.
func (g *TDG) Validate() error {
	for i := range g.Tasks {
		t := &g.Tasks[i]
		if t.ID != int32(i) {
			return fmt.Errorf("graph: task %d has ID %d", i, t.ID)
		}
		for _, d := range t.Deps {
			if d >= t.ID {
				return fmt.Errorf("graph: task %d depends on %d (not strictly earlier)", t.ID, d)
			}
			found := false
			for _, s := range g.Tasks[d].Succs {
				if s == t.ID {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("graph: edge %d->%d missing from Succs", d, t.ID)
			}
		}
	}
	roots := 0
	for i := range g.Tasks {
		if len(g.Tasks[i].Deps) == 0 {
			roots++
		}
	}
	if roots != len(g.Roots) {
		return fmt.Errorf("graph: %d roots recorded, %d found", len(g.Roots), roots)
	}
	return nil
}

// WriteDOT emits the TDG in Graphviz format, one node per task labeled with
// its kernel and partition, matching the style of the paper's Fig. 3.
func (g *TDG) WriteDOT(w io.Writer, title string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n", title)
	for i := range g.Tasks {
		t := &g.Tasks[i]
		label := fmt.Sprintf("%s", t.Kind)
		switch {
		case t.Q >= 0:
			label = fmt.Sprintf("%s(%d,%d)", t.Kind, t.P, t.Q)
		case t.P >= 0:
			label = fmt.Sprintf("%s(%d)", t.Kind, t.P)
		}
		fmt.Fprintf(&b, "  t%d [label=%q];\n", t.ID, label)
	}
	for i := range g.Tasks {
		for _, d := range g.Tasks[i].Deps {
			fmt.Fprintf(&b, "  t%d -> t%d;\n", d, g.Tasks[i].ID)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// TasksOfCall returns the ids of all tasks expanded from call ci, in
// creation order.
func (g *TDG) TasksOfCall(ci int) []int32 {
	var out []int32
	for i := range g.Tasks {
		if g.Tasks[i].Call == int32(ci) {
			out = append(out, g.Tasks[i].ID)
		}
	}
	return out
}
