package graph

// Bounds are scheduling lower bounds for executing the TDG on w workers with
// the given per-task cost function, from the two classic arguments:
//
//   - Work bound:  total cost / w (no schedule can beat perfect speedup);
//   - Span bound:  the critical-path cost (dependencies serialize it).
//
// Brent's theorem guarantees any greedy schedule finishes within
// Work/w + Span, so together the bounds bracket every reasonable scheduler.
// The simulator tests use them as invariants: simulated makespans must never
// beat the lower bound, and greedy policies must stay within the Brent
// envelope when no artificial serialization (spawn gates, barriers) applies.
type Bounds struct {
	Work float64 // Σ cost(t)
	Span float64 // max over paths of Σ cost(t)
}

// LowerBound returns the larger of the two lower bounds for w workers.
func (b Bounds) LowerBound(w int) float64 {
	lb := b.Work / float64(w)
	if b.Span > lb {
		return b.Span
	}
	return lb
}

// BrentUpperBound returns Work/w + Span, the greedy-schedule guarantee.
func (b Bounds) BrentUpperBound(w int) float64 {
	return b.Work/float64(w) + b.Span
}

// ComputeBounds evaluates the bounds under an arbitrary task cost model.
// cost must be non-negative. Runs in one topological pass (task ids are
// topologically ordered by construction).
func (g *TDG) ComputeBounds(cost func(*Task) float64) Bounds {
	var b Bounds
	reach := make([]float64, len(g.Tasks))
	for i := range g.Tasks {
		t := &g.Tasks[i]
		c := cost(t)
		b.Work += c
		longest := 0.0
		for _, d := range t.Deps {
			if reach[d] > longest {
				longest = reach[d]
			}
		}
		reach[i] = longest + c
		if reach[i] > b.Span {
			b.Span = reach[i]
		}
	}
	return b
}

// FlopBounds are ComputeBounds under the task flop counts: the
// machine-independent work/span decomposition of the graph.
func (g *TDG) FlopBounds() Bounds {
	return g.ComputeBounds(func(t *Task) float64 { return float64(t.Flops) })
}

// Parallelism returns Work/Span under the flop cost model: the average
// available parallelism of the TDG — what the paper calls the degree of
// parallelism the decomposition exposes.
func (g *TDG) Parallelism() float64 {
	b := g.FlopBounds()
	if b.Span == 0 {
		return 0
	}
	return b.Work / b.Span
}
