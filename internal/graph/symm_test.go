package graph

import (
	"math/rand"
	"testing"

	"sparsetask/internal/program"
	"sparsetask/internal/sparse"
)

// symProblem builds Y = A·X over symmetric storage: a program with one
// CSpMMSym call plus the SymCSB conversion of the given COO matrix.
func symProblem(t *testing.T, coo *sparse.COO, block, n int) (*TDG, *sparse.SymCSB) {
	t.Helper()
	sym, err := coo.ToSymCSB(block)
	if err != nil {
		t.Fatal(err)
	}
	p := program.New(coo.Rows, block)
	A := p.SymSparse("A")
	X := p.Vec("X", n)
	Y := p.Vec("Y", n)
	p.SpMMSym(Y, A, X)
	opt := DefaultOptions()
	opt.Syms = map[program.OperandID]*sparse.SymCSB{A: sym}
	g, err := Build(p, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g, sym
}

func bandedSymCOO(n int) *sparse.COO {
	a := sparse.NewCOO(n, n, 0)
	for i := 0; i < n; i++ {
		a.Append(int32(i), int32(i), 4)
		if i > 0 {
			a.Append(int32(i), int32(i-1), -1)
			a.Append(int32(i-1), int32(i), -1)
		}
	}
	a.Compact()
	return a
}

func arrowheadSymCOO(n int) *sparse.COO {
	a := sparse.NewCOO(n, n, 0)
	for i := 0; i < n; i++ {
		a.Append(int32(i), int32(i), 4)
		if i > 0 {
			a.Append(int32(i), 0, 1)
			a.Append(0, int32(i), 1)
		}
	}
	a.Compact()
	return a
}

func TestSymExpansionWaveMode(t *testing.T) {
	g, sym := symProblem(t, bandedSymCOO(96), 8, 1)
	if sym.Sched.Fallback {
		t.Fatal("banded matrix fell back; want wave mode")
	}
	nTile := 0
	for i := range g.Tasks {
		switch g.Tasks[i].Kind {
		case TSymTile:
			nTile++
		case TSymTileAcc, TSymReduce:
			t.Fatalf("wave-mode graph contains fallback task %v", g.Tasks[i].Kind)
		}
	}
	if want := sym.NonEmptyTiles(); nTile != want {
		t.Fatalf("TSymTile tasks = %d, want one per stored non-empty tile (%d)", nTile, want)
	}
	// Band-conflict safety: any two tasks touching a common output band must
	// be ordered by a dependency path (the WAW chain). Verify via per-band
	// writer lists: consecutive writers must share an edge.
	nbr := sym.NBR
	writers := make([][]int32, nbr)
	for i := range g.Tasks {
		tk := &g.Tasks[i]
		if tk.Kind != TSymTile {
			continue
		}
		writers[tk.P] = append(writers[tk.P], tk.ID)
		if tk.Q != tk.P {
			writers[tk.Q] = append(writers[tk.Q], tk.ID)
		}
	}
	hasDep := func(task, dep int32) bool {
		for _, d := range g.Tasks[task].Deps {
			if d == dep {
				return true
			}
		}
		return false
	}
	for band, w := range writers {
		for k := 1; k < len(w); k++ {
			if !hasDep(w[k], w[k-1]) {
				t.Fatalf("band %d: writer task %d does not depend on previous writer %d", band, w[k], w[k-1])
			}
		}
	}
}

func TestSymExpansionFallbackMode(t *testing.T) {
	g, sym := symProblem(t, arrowheadSymCOO(128), 8, 1)
	if !sym.Sched.Fallback {
		t.Fatal("arrowhead matrix stayed in wave mode; want fallback")
	}
	nAcc, nRed := 0, 0
	for i := range g.Tasks {
		tk := &g.Tasks[i]
		switch tk.Kind {
		case TSymTileAcc:
			nAcc++
		case TSymReduce:
			nRed++
			// Reduction affinity is the band it writes.
			if tk.P < 0 || int(tk.P) >= sym.NBR {
				t.Fatalf("TSymReduce band %d out of range", tk.P)
			}
			if tk.Affinity != tk.P {
				t.Fatalf("TSymReduce band %d has affinity %d", tk.P, tk.Affinity)
			}
		}
	}
	if nAcc == 0 {
		t.Fatal("fallback graph has no TSymTileAcc tasks")
	}
	wantRed := 0
	for _, m := range sym.Sched.TransGroups {
		if m != 0 {
			wantRed++
		}
	}
	if nRed != wantRed {
		t.Fatalf("TSymReduce tasks = %d, want one per band with transposed input (%d)", nRed, wantRed)
	}
}

func TestSymExpansionZeroesEmptyBands(t *testing.T) {
	// Matrix with an entirely empty middle band: the expansion must still
	// zero that output band.
	n, block := 24, 8
	a := sparse.NewCOO(n, n, 0)
	for i := 0; i < n; i++ {
		if i >= block && i < 2*block {
			continue
		}
		a.Append(int32(i), int32(i), 2)
	}
	a.Compact()
	g, _ := symProblem(t, a, block, 1)
	found := false
	for i := range g.Tasks {
		if g.Tasks[i].Kind == TSpMMZero && g.Tasks[i].P == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("empty band 1 got no TSpMMZero task")
	}
}

func TestSymExpansionRequiresAttachedMatrix(t *testing.T) {
	p := program.New(16, 8)
	A := p.SymSparse("A")
	X := p.Vec("X", 1)
	Y := p.Vec("Y", 1)
	p.SpMMSym(Y, A, X)
	if _, err := Build(p, nil, DefaultOptions()); err == nil {
		t.Fatal("Build without Options.Syms succeeded")
	}
}

func TestSymFusePreservesSymTasks(t *testing.T) {
	// Fusion must carry Syms through and never fold sym kinds into chains.
	rng := rand.New(rand.NewSource(1))
	n, block := 64, 8
	a := sparse.NewCOO(n, n, 0)
	for i := 0; i < n; i++ {
		a.Append(int32(i), int32(i), 4+rng.Float64())
		if i > 0 {
			a.Append(int32(i), int32(i-1), -1)
			a.Append(int32(i-1), int32(i), -1)
		}
	}
	a.Compact()
	g, _ := symProblem(t, a, block, 1)
	f := Fuse(g)
	if f.Syms == nil {
		t.Fatal("Fuse dropped the Syms map")
	}
	for i := range f.Tasks {
		if f.Tasks[i].Kind == TSymTile && len(f.Tasks[i].Parts) > 1 {
			t.Fatal("TSymTile was fused into a chain")
		}
	}
}
