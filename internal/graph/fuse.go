package graph

// Task fusion: chains of elementwise per-partition tasks (XY, AXPBY, SCALE,
// COPY, DSCALE) that form a private producer→consumer link on the same
// partition are merged into one task. Fusion trades graph flexibility for
// lower scheduling overhead and tighter cache reuse — the same lever as
// coarsening the block size, but applied only where the graph proves no
// parallelism is lost (the fused tasks could never run concurrently anyway).
//
// A fused task carries its constituents in Parts; executors run them
// back-to-back, and the simulator charges one dispatch overhead for the
// whole chain.

// Part is one constituent of a fused task.
type Part struct {
	Kind  TaskKind
	Call  int32
	P, Q  int32
	First bool
}

// fusable reports whether a task kind is an elementwise per-partition kernel
// that may join a fusion chain.
func fusable(k TaskKind) bool {
	switch k {
	case TGemm, TAxpby, TScaleInv, TCopy, TDiagScale:
		return true
	}
	return false
}

// Fuse returns a new TDG with elementwise chains fused. The input graph is
// not modified. Two consecutive tasks a→b fuse when both are fusable, on the
// same partition, b's only dependency is a, and a's only successor is b.
func Fuse(g *TDG) *TDG {
	n := len(g.Tasks)
	// head[i] = the chain head task id that i is fused into (or i itself).
	head := make([]int32, n)
	for i := range head {
		head[i] = int32(i)
	}
	for i := range g.Tasks {
		t := &g.Tasks[i]
		if !fusable(t.Kind) || len(t.Deps) != 1 {
			continue
		}
		d := t.Deps[0]
		pre := &g.Tasks[d]
		if !fusable(pre.Kind) || len(pre.Succs) != 1 || pre.P != t.P {
			continue
		}
		head[i] = head[d]
	}

	// Build new tasks in original (topological) order, one per chain head.
	newID := make([]int32, n)
	out := &TDG{Prog: g.Prog, Opt: g.Opt, Mats: g.Mats, Syms: g.Syms}
	for i := range g.Tasks {
		t := &g.Tasks[i]
		if head[i] != int32(i) {
			// Fused into an earlier task: merge payload there.
			id := newID[head[i]]
			nt := &out.Tasks[id]
			nt.Parts = append(nt.Parts, Part{t.Kind, t.Call, t.P, t.Q, t.First})
			nt.Flops += t.Flops
			nt.Reads = mergeRefs(nt.Reads, t.Reads)
			nt.Writes = mergeRefs(nt.Writes, t.Writes)
			newID[i] = id
			continue
		}
		id := int32(len(out.Tasks))
		newID[i] = id
		nt := *t
		nt.ID = id
		nt.Deps = nil
		nt.Succs = nil
		nt.Reads = append([]Ref(nil), t.Reads...)
		nt.Writes = append([]Ref(nil), t.Writes...)
		nt.Parts = []Part{{t.Kind, t.Call, t.P, t.Q, t.First}}
		out.Tasks = append(out.Tasks, nt)
	}

	// Remap dependencies: external deps of every constituent, deduplicated,
	// excluding intra-chain edges.
	seen := make(map[int64]bool)
	for i := range g.Tasks {
		t := &g.Tasks[i]
		from := newID[i]
		for _, d := range t.Deps {
			to := newID[d]
			if to == from {
				continue // intra-chain
			}
			key := int64(to)<<32 | int64(from)
			if seen[key] {
				continue
			}
			seen[key] = true
			out.Tasks[from].Deps = append(out.Tasks[from].Deps, to)
		}
	}
	for i := range out.Tasks {
		t := &out.Tasks[i]
		if len(t.Deps) == 0 {
			out.Roots = append(out.Roots, t.ID)
		}
		for _, d := range t.Deps {
			out.Tasks[d].Succs = append(out.Tasks[d].Succs, t.ID)
			out.NumEdges++
		}
	}
	return out
}

// mergeRefs unions two ref lists by region, keeping the larger footprint.
func mergeRefs(a, b []Ref) []Ref {
	out := append([]Ref(nil), a...)
	for _, r := range b {
		found := false
		for i := range out {
			if out[i].Region == r.Region {
				if r.Bytes > out[i].Bytes {
					out[i].Bytes = r.Bytes
				}
				found = true
				break
			}
		}
		if !found {
			out = append(out, r)
		}
	}
	return out
}
