package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"sparsetask/internal/program"
	"sparsetask/internal/sparse"
)

// listing1Program builds the paper's Listing 1: Y = A·X; Q = Y·Z; P = Yᵀ·Q.
func listing1Program(m, block, n int) (*program.Program, program.OperandID, program.OperandID, program.OperandID, program.OperandID, program.OperandID, program.OperandID) {
	p := program.New(m, block)
	A := p.Sparse("A")
	X := p.Vec("X", n)
	Y := p.Vec("Y", n)
	Z := p.Small("Z", n, n)
	Q := p.Vec("Q", n)
	P := p.Small("P", n, n)
	p.SpMM(Y, A, X)
	p.Gemm(Q, 1, Y, Z, 0)
	p.GemmT(P, Y, Q)
	return p, A, X, Y, Z, Q, P
}

func denseCSB(m, block int, seed int64) *sparse.CSB {
	rng := rand.New(rand.NewSource(seed))
	a := sparse.NewCOO(m, m, m*m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			a.Append(int32(i), int32(j), rng.NormFloat64())
		}
	}
	return a.ToCSB(block)
}

func TestListing1GraphShape(t *testing.T) {
	// Dense 9x9 matrix with block 3 → np = 3, matching the paper's Fig. 3.
	m, block, n := 9, 3, 2
	p, A, _, _, _, _, _ := listing1Program(m, block, n)
	csb := denseCSB(m, block, 1)
	g, err := Build(p, map[program.OperandID]*sparse.CSB{A: csb}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// 9 SpMM tile tasks + 3 XY + 3 XTY partials + 1 reduce = 16.
	if len(g.Tasks) != 16 {
		t.Fatalf("tasks = %d, want 16", len(g.Tasks))
	}
	s := g.ComputeStats()
	// SpMM chain of 3 per row, then XY, then XTY partial, then reduce: 6.
	if s.CriticalPath != 6 {
		t.Errorf("critical path = %d, want 6", s.CriticalPath)
	}
	// Kernel-level critical path: SpMM → XY → XTY = 3 kernels... XTY has an
	// internal partial→reduce level, so 4.
	if s.KernelCriticalPath < 3 || s.KernelCriticalPath > 4 {
		t.Errorf("kernel critical path = %d, want 3..4", s.KernelCriticalPath)
	}
	// Exactly 3 roots: the first SpMM task of each row chain.
	if len(g.Roots) != 3 {
		t.Errorf("roots = %d, want 3", len(g.Roots))
	}
}

func TestSpMMChainDependencies(t *testing.T) {
	m, block, n := 9, 3, 1
	p, A, _, _, _, _, _ := listing1Program(m, block, n)
	csb := denseCSB(m, block, 2)
	g, err := Build(p, map[program.OperandID]*sparse.CSB{A: csb}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Within each output row block, tile tasks must form a chain: task k
	// depends on task k-1 (same P, increasing Q).
	var prev *Task
	for i := range g.Tasks {
		task := &g.Tasks[i]
		if task.Kind != TSpMMTile {
			continue
		}
		if task.Q == 0 {
			if !task.First {
				t.Errorf("task %d (P=%d,Q=0) should be First", task.ID, task.P)
			}
			if len(task.Deps) != 0 {
				t.Errorf("first tile task %d has deps %v", task.ID, task.Deps)
			}
			prev = task
			continue
		}
		found := false
		for _, d := range task.Deps {
			if d == prev.ID {
				found = true
			}
		}
		if !found {
			t.Errorf("tile task %d (P=%d,Q=%d) missing chain dep on %d", task.ID, task.P, task.Q, prev.ID)
		}
		prev = task
	}
}

func TestSkipEmptyReducesTasks(t *testing.T) {
	// Block-diagonal matrix: only diagonal tiles non-empty.
	m, block := 64, 16
	a := sparse.NewCOO(m, m, m)
	for i := 0; i < m; i++ {
		a.Append(int32(i), int32(i), 1.0)
	}
	csb := a.ToCSB(block)
	p := program.New(m, block)
	A := p.Sparse("A")
	X := p.Vec("X", 1)
	Y := p.Vec("Y", 1)
	p.SpMM(Y, A, X)

	gSkip, err := Build(p, map[program.OperandID]*sparse.CSB{A: csb}, Options{SkipEmpty: true})
	if err != nil {
		t.Fatal(err)
	}
	gAll, err := Build(p, map[program.OperandID]*sparse.CSB{A: csb}, Options{SkipEmpty: false})
	if err != nil {
		t.Fatal(err)
	}
	if len(gSkip.Tasks) != 4 {
		t.Errorf("skip-empty tasks = %d, want 4 (diagonal tiles only)", len(gSkip.Tasks))
	}
	if len(gAll.Tasks) != 16 {
		t.Errorf("all-tiles tasks = %d, want 16", len(gAll.Tasks))
	}
}

func TestEmptyRowBlockGetsZeroTask(t *testing.T) {
	// Matrix with an entirely empty row block: Y must still be defined.
	m, block := 8, 4
	a := sparse.NewCOO(m, m, 2)
	a.Append(0, 0, 1)
	a.Append(1, 2, 1) // both entries in row block 0
	csb := a.ToCSB(block)
	p := program.New(m, block)
	A := p.Sparse("A")
	X := p.Vec("X", 1)
	Y := p.Vec("Y", 1)
	p.SpMM(Y, A, X)
	g, err := Build(p, map[program.OperandID]*sparse.CSB{A: csb}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for i := range g.Tasks {
		if g.Tasks[i].Kind == TSpMMZero {
			zeros++
			if g.Tasks[i].P != 1 {
				t.Errorf("zero task for partition %d, want 1", g.Tasks[i].P)
			}
		}
	}
	if zeros != 1 {
		t.Errorf("zero tasks = %d, want 1", zeros)
	}
}

func TestReduceSpMMShape(t *testing.T) {
	m, block := 9, 3
	p := program.New(m, block)
	A := p.Sparse("A")
	X := p.Vec("X", 1)
	Y := p.Vec("Y", 1)
	p.SpMMReduceBased(Y, A, X)
	csb := denseCSB(m, block, 3)
	g, err := Build(p, map[program.OperandID]*sparse.CSB{A: csb}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	bufTiles, reduces := 0, 0
	for i := range g.Tasks {
		switch g.Tasks[i].Kind {
		case TSpMMBufTile:
			bufTiles++
			if len(g.Tasks[i].Deps) != 0 {
				t.Errorf("buffered tile task %d should have no deps, has %v", g.Tasks[i].ID, g.Tasks[i].Deps)
			}
		case TSpMMReduce:
			reduces++
			if len(g.Tasks[i].Deps) != 3 {
				t.Errorf("reduce task %d deps = %d, want 3", g.Tasks[i].ID, len(g.Tasks[i].Deps))
			}
		}
	}
	if bufTiles != 9 || reduces != 3 {
		t.Errorf("buf=%d reduce=%d, want 9 and 3", bufTiles, reduces)
	}
	// Reduce variant has critical path 2 regardless of np — the parallelism
	// argument for it; the paper shows its memory cost loses anyway.
	if s := g.ComputeStats(); s.CriticalPath != 2 {
		t.Errorf("critical path = %d, want 2", s.CriticalPath)
	}
}

func TestScaleDependsOnNorm(t *testing.T) {
	m, block := 8, 4
	p := program.New(m, block)
	X := p.Vec("X", 1)
	Y := p.Vec("Y", 1)
	s := p.Scalar("beta")
	p.Norm(s, X)
	p.ScaleInv(Y, X, s)
	g, err := Build(p, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Every TScaleInv task must transitively depend on the TDotReduce task.
	var reduceID int32 = -1
	for i := range g.Tasks {
		if g.Tasks[i].Kind == TDotReduce {
			reduceID = g.Tasks[i].ID
		}
	}
	if reduceID < 0 {
		t.Fatal("no reduce task")
	}
	for i := range g.Tasks {
		task := &g.Tasks[i]
		if task.Kind != TScaleInv {
			continue
		}
		dep := false
		for _, d := range task.Deps {
			if d == reduceID {
				dep = true
			}
		}
		if !dep {
			t.Errorf("scale task %d does not depend on norm reduce %d", task.ID, reduceID)
		}
	}
}

func TestWARDependency(t *testing.T) {
	// X is read by a Dot, then overwritten by Axpby: the writer must wait
	// for the reader (anti-dependency).
	m, block := 8, 4
	p := program.New(m, block)
	X := p.Vec("X", 1)
	Y := p.Vec("Y", 1)
	s := p.Scalar("s")
	p.Dot(s, X, Y)
	p.Axpby(X, 2, Y, 0, Y) // overwrites X
	g, err := Build(p, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Find the Axpby task for partition 0 and the DotPart task for 0.
	var dot0, axpby0 *Task
	for i := range g.Tasks {
		task := &g.Tasks[i]
		if task.Kind == TDotPart && task.P == 0 {
			dot0 = task
		}
		if task.Kind == TAxpby && task.P == 0 {
			axpby0 = task
		}
	}
	if dot0 == nil || axpby0 == nil {
		t.Fatal("missing tasks")
	}
	found := false
	for _, d := range axpby0.Deps {
		if d == dot0.ID {
			found = true
		}
	}
	if !found {
		t.Errorf("axpby task %d missing WAR dep on dot task %d", axpby0.ID, dot0.ID)
	}
}

func TestWriteDOT(t *testing.T) {
	m, block, n := 9, 3, 2
	p, A, _, _, _, _, _ := listing1Program(m, block, n)
	csb := denseCSB(m, block, 4)
	g, err := Build(p, map[program.OperandID]*sparse.CSB{A: csb}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, "fig3"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "digraph") || !strings.Contains(out, "SpMM(0,0)") {
		t.Errorf("unexpected DOT output:\n%s", out[:min(len(out), 400)])
	}
}

func TestTasksOfCall(t *testing.T) {
	m, block, n := 9, 3, 2
	p, A, _, _, _, _, _ := listing1Program(m, block, n)
	csb := denseCSB(m, block, 5)
	g, err := Build(p, map[program.OperandID]*sparse.CSB{A: csb}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.TasksOfCall(0)); got != 9 {
		t.Errorf("call 0 tasks = %d, want 9", got)
	}
	if got := len(g.TasksOfCall(1)); got != 3 {
		t.Errorf("call 1 tasks = %d, want 3", got)
	}
	if got := len(g.TasksOfCall(2)); got != 4 {
		t.Errorf("call 2 tasks = %d, want 4", got)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
