// Package graph builds and analyzes the task-dependency graph (TDG) of a
// program: the fine-grained decomposition of every high-level call into tasks
// over data partitions, with dependencies derived from partition-level
// read/write sets.
//
// This is the analog of DeepSparse's Task Dependency Graph Generator: the
// same TDG drives all runtimes, so the available degree of parallelism is
// identical across them (the premise of the paper's comparison, §5).
package graph

import (
	"fmt"

	"sparsetask/internal/program"
	"sparsetask/internal/sparse"
)

// TaskKind identifies the fine-grained operation a task performs.
type TaskKind uint8

const (
	// TSpMMTile computes Y[bi] (+)= A(bi,bj)·X[bj] for one CSB tile. Tasks of
	// one output row block are dependency-chained; the first in the chain
	// overwrites (First=true), the rest accumulate.
	TSpMMTile TaskKind = iota
	// TSpMMZero zeroes Y[bi] for output row blocks with no tiles.
	TSpMMZero
	// TSpMMBufTile computes buf[bj][bi·b:...] = A(bi,bj)·X[bj] into a private
	// column buffer (reduce-based variant; no chaining).
	TSpMMBufTile
	// TSpMMReduce computes Y[bi] = Σ_bj buf[bj][bi·b:...] over the non-empty
	// tiles of row block bi (reduce-based variant).
	TSpMMReduce
	// TGemm computes Out[bi] = α·A[bi]·Z + β·Out[bi] (the XY kernel).
	TGemm
	// TGemmTPart computes partial[bi] = A[bi]ᵀ·B[bi] (the XTY kernel).
	TGemmTPart
	// TGemmTReduce sums XTY partials into the small output matrix.
	TGemmTReduce
	// TAxpby computes Out[bi] = α·A[bi] + β·B[bi].
	TAxpby
	// TScaleInv computes Out[bi] = A[bi]/s for scalar s.
	TScaleInv
	// TDotPart computes partial[bi] = Σ A[bi]∘B[bi].
	TDotPart
	// TDotReduce sums dot partials into a scalar (optionally √).
	TDotReduce
	// TSmall runs an opaque sequential function over small/scalar operands.
	TSmall
	// TCopy copies A[bi] to Out[bi].
	TCopy
	// TDiagScale computes Out[bi] = D[bi]∘A[bi] row-wise (Jacobi
	// preconditioner application).
	TDiagScale
	// TTrsv performs the substitution for rows of block bi of a triangular
	// solve. Tasks of one CSpTrsv call form the factor's level DAG: each
	// reads the output blocks its rows reference, so RAW edges reproduce the
	// level schedule and one level is one rank of independent tasks.
	TTrsv
	// TSymTile applies stored SymCSB tile (P,Q), Q <= P, to both output
	// bands: Y[P] (+)= T·X[Q] and, off the diagonal, Y[Q] (+)= Tᵀ·X[P]
	// (wave-mode symmetric SpMV; diagonal tiles have P == Q and write one
	// band). First/FirstQ mark the first writer of each band.
	TSymTile
	// TSymTileAcc is the fallback-mode variant: the direct half goes to
	// Y[P], the transposed half to the private accumulator of the tile
	// row's group at band-Q offset (First/FirstQ zero the respective
	// destinations).
	TSymTileAcc
	// TSymReduce folds the used accumulator groups of band P back into
	// Y[P] in ascending group order (First zeroes Y[P] first when no direct
	// writer preceded it). Affinity-stamped to band P.
	TSymReduce
	// TColDotPart computes partial[bi][j] = Σ_i A[bi][i,j]·B[bi][i,j] — the
	// per-column dot partial of a batched solve.
	TColDotPart
	// TColDotReduce sums per-column dot partials into the 1×k small output
	// (optionally per-column √).
	TColDotReduce
	// TColAxpby computes Out[bi][:,j] = A[bi][:,j] + β·C[0,j]·B[bi][:,j]
	// with per-column coefficients C (batched-solver update).
	TColAxpby
)

var taskKindNames = [...]string{
	"SpMM", "SpMM0", "SpMMbuf", "SpMMred", "XY", "XTYp", "XTYr",
	"AXPBY", "SCALE", "DOTp", "DOTr", "SMALL", "COPY", "DSCALE", "TRSV",
	"SYMM", "SYMMacc", "SYMMred", "CDOTp", "CDOTr", "CAXPBY",
}

func (k TaskKind) String() string {
	if int(k) < len(taskKindNames) {
		return taskKindNames[k]
	}
	return fmt.Sprintf("TaskKind(%d)", uint8(k))
}

// Ref identifies one contiguous data region a task touches, for the cache
// and NUMA simulators. Region is a globally unique id; Bytes its footprint.
type Ref struct {
	Region uint64
	Bytes  int64
}

// Region id spaces. Operand ids and call indices are well under 2^20 and
// partition indices under 2^40, so the packing below cannot collide.
const (
	spaceVec uint64 = iota + 1
	spaceSmall
	spaceScalar
	spaceTile
	spacePartial
	spaceSpMMBuf
	spaceScratch
	spaceTri
	spaceSymAcc
)

func pack(space uint64, owner int32, part int64) uint64 {
	return space<<60 | uint64(uint32(owner))<<40 | uint64(part)&((1<<40)-1)
}

// VecRegion identifies row partition part of vec operand op.
func VecRegion(op program.OperandID, part int) uint64 { return pack(spaceVec, int32(op), int64(part)) }

// SmallRegion identifies the whole of small operand op.
func SmallRegion(op program.OperandID) uint64 { return pack(spaceSmall, int32(op), 0) }

// ScalarRegion identifies scalar operand op.
func ScalarRegion(op program.OperandID) uint64 { return pack(spaceScalar, int32(op), 0) }

// TileRegion identifies CSB tile (bi,bj) of sparse operand op.
func TileRegion(op program.OperandID, bi, bj, nbc int) uint64 {
	return pack(spaceTile, int32(op), int64(bi)*int64(nbc)+int64(bj))
}

// PartialRegion identifies the partial reduction buffer of call at part.
func PartialRegion(call, part int) uint64 { return pack(spacePartial, int32(call), int64(part)) }

// SpMMBufRegion identifies row block bi of the reduce-based SpMM column
// buffer bj of call.
func SpMMBufRegion(call, bj, bi, np int) uint64 {
	return pack(spaceSpMMBuf, int32(call), int64(bj)*int64(np)+int64(bi))
}

// ScratchRegion identifies a per-core scratch buffer (e.g. the panel-packing
// workspace of BLAS-library kernels in the BSP baselines).
func ScratchRegion(core int) uint64 { return pack(spaceScratch, int32(core), 0) }

// TriRegion identifies row block bi of triangular-factor operand op.
func TriRegion(op program.OperandID, bi int) uint64 { return pack(spaceTri, int32(op), int64(bi)) }

// SymAccRegion identifies row band bj of the fallback-mode private
// accumulator of symmetric-SpMV call for group g.
func SymAccRegion(call, g, bj, nbr int) uint64 {
	return pack(spaceSymAcc, int32(call), int64(g)*int64(nbr)+int64(bj))
}

// Task is one schedulable unit. Deps lists predecessor task ids; Succs is
// filled in after construction. P is the output row partition (bi) and Q the
// column partition (bj) for tile tasks, -1 otherwise.
type Task struct {
	ID    int32
	Kind  TaskKind
	Call  int32 // index into Program.Calls
	P, Q  int32
	First bool // TSpMMTile/TSym*: overwrite band P instead of accumulating
	// FirstQ marks symmetric tile tasks whose transposed scatter is the
	// first writer of its destination (band Q of the output in wave mode,
	// the group accumulator's band-Q region in fallback mode): the kernel
	// zeroes that destination before scattering.
	FirstQ bool
	Deps   []int32
	Succs  []int32
	Flops  int64
	Reads  []Ref
	Writes []Ref
	// Affinity is the task's locality key: the CSB row band that owns its
	// output (-1 when the task has no single home, e.g. global reductions).
	// Tasks sharing a key touch the same X/Y vector panels and matrix tile
	// row, so schedulers co-locating equal keys convert CSB blocking into
	// cache reuse. Stamped at build time; fused tasks keep the chain head's
	// key (fusion never crosses partitions).
	Affinity int32
	// Parts is non-empty for fused tasks (see Fuse): the constituent
	// elementwise kernels, executed back-to-back. Kind/Call/P describe the
	// chain head.
	Parts []Part
}

// TDG is the full task-dependency graph of one program execution.
type TDG struct {
	Prog *program.Program
	Opt  Options
	// Mats holds the CSB matrices the graph was built against, so executors
	// can recover tile occupancy without re-deriving it.
	Mats map[program.OperandID]*sparse.CSB
	// Syms holds the SymCSB matrices behind OpSymSparse operands
	// (Options.Syms, kept here for the same reason as Mats).
	Syms  map[program.OperandID]*sparse.SymCSB
	Tasks []Task
	// Roots are tasks with no dependencies.
	Roots []int32
	// NumEdges counts dependency edges.
	NumEdges int
}

// Options control TDG expansion.
type Options struct {
	// SkipEmpty omits tasks for empty CSB tiles (paper Fig. 6 optimization;
	// on by default in all experiments, toggled off for the ablation).
	SkipEmpty bool
	// Tris supplies the CSR factor behind each OpTri operand referenced by a
	// CSpTrsv call; the factor's sparsity determines the level-DAG edges.
	Tris map[program.OperandID]*sparse.CSR
	// TriDeps optionally memoizes the per-block dependency lists of each
	// factor (precond.Levels.BlockDeps, computed once per matrix and cached
	// by solverd alongside the factorization). When present for an operand,
	// expansion skips re-scanning the factor's rows; the lists must match
	// the program block size.
	TriDeps map[program.OperandID][][]int32
	// Syms supplies the SymCSB matrix behind each OpSymSparse operand
	// referenced by a CSpMMSym call; its cached SymSchedule drives the
	// wave/accumulator task emission. Symmetric expansion always skips
	// empty stored tiles (they contribute neither half), regardless of
	// SkipEmpty.
	Syms map[program.OperandID]*sparse.SymCSB
}

// DefaultOptions returns the configuration used by the paper's main results.
func DefaultOptions() Options { return Options{SkipEmpty: true} }

// DomainAffinity maps task affinity keys onto d locality domains: row band p
// goes to domain p·d/NP — the same contiguous partition→domain map first-touch
// page placement produces, so a task's preferred domain is where its vector
// panels' pages live. Returns nil when d <= 1 (flat execution needs no
// routing); tasks without a key (Affinity < 0) map to -1.
func (g *TDG) DomainAffinity(d int) func(task int32) int {
	if d <= 1 {
		return nil
	}
	np := g.Prog.NP
	if np < 1 {
		np = 1
	}
	return func(t int32) int {
		k := g.Tasks[t].Affinity
		if k < 0 {
			return -1
		}
		dom := int(int64(k) * int64(d) / int64(np))
		if dom >= d {
			dom = d - 1
		}
		return dom
	}
}

// builder tracks partition-level last-writer/readers to derive dependencies.
type builder struct {
	g       *TDG
	lastW   map[uint64]int32
	readers map[uint64][]int32
	opt     Options
	mats    map[program.OperandID]*sparse.CSB
}

// Build expands prog into a TDG. mats supplies the CSB matrix for every
// sparse operand referenced by a CSpMM call (sparsity determines which tile
// tasks exist).
func Build(prog *program.Program, mats map[program.OperandID]*sparse.CSB, opt Options) (*TDG, error) {
	b := &builder{
		g:       &TDG{Prog: prog, Opt: opt, Mats: mats, Syms: opt.Syms},
		lastW:   make(map[uint64]int32),
		readers: make(map[uint64][]int32),
		opt:     opt,
		mats:    mats,
	}
	for ci := range prog.Calls {
		if err := b.expand(int32(ci), &prog.Calls[ci]); err != nil {
			return nil, fmt.Errorf("graph: call %d (%s): %w", ci, prog.Calls[ci].Name, err)
		}
	}
	b.finish()
	return b.g, nil
}

// addTask appends a task whose reads/writes are the given region refs and
// derives its dependencies: RAW on the last writer of each read region, and
// WAW+WAR on each written region.
func (b *builder) addTask(t Task, reads, writes []Ref) int32 {
	id := int32(len(b.g.Tasks))
	t.ID = id
	t.Reads = reads
	t.Writes = writes
	// Locality key: the output row band. Reductions and small steps carry
	// P = -1 and stay unpinned.
	t.Affinity = t.P
	seen := map[int32]bool{}
	addDep := func(d int32) {
		if d >= 0 && !seen[d] {
			seen[d] = true
			t.Deps = append(t.Deps, d)
		}
	}
	for _, r := range reads {
		if w, ok := b.lastW[r.Region]; ok {
			addDep(w)
		}
		b.readers[r.Region] = append(b.readers[r.Region], id)
	}
	for _, w := range writes {
		if lw, ok := b.lastW[w.Region]; ok {
			addDep(lw) // WAW
		}
		for _, r := range b.readers[w.Region] {
			if r != id {
				addDep(r) // WAR
			}
		}
	}
	// Commit writer state after deps are gathered.
	for _, w := range writes {
		b.lastW[w.Region] = id
		b.readers[w.Region] = b.readers[w.Region][:0]
	}
	b.g.Tasks = append(b.g.Tasks, t)
	return id
}

func (b *builder) finish() {
	g := b.g
	for i := range g.Tasks {
		t := &g.Tasks[i]
		if len(t.Deps) == 0 {
			g.Roots = append(g.Roots, t.ID)
		}
		for _, d := range t.Deps {
			g.Tasks[d].Succs = append(g.Tasks[d].Succs, t.ID)
			g.NumEdges++
		}
	}
}

func (b *builder) expand(ci int32, c *program.Call) error {
	switch c.Kind {
	case program.CSpMM:
		return b.expandSpMM(ci, c)
	case program.CGemm:
		b.expandGemm(ci, c)
	case program.CGemmT:
		b.expandGemmT(ci, c)
	case program.CAxpby:
		b.expandAxpby(ci, c)
	case program.CScaleInv:
		b.expandScaleInv(ci, c)
	case program.CDot:
		b.expandDot(ci, c)
	case program.CSmall:
		b.expandSmall(ci, c)
	case program.CCopy:
		b.expandCopy(ci, c)
	case program.CDiagScale:
		b.expandDiagScale(ci, c)
	case program.CSpTrsv:
		return b.expandSpTrsv(ci, c)
	case program.CSpMMSym:
		return b.expandSpMMSym(ci, c)
	case program.CColDot:
		b.expandColDot(ci, c)
	case program.CColAxpby:
		b.expandColAxpby(ci, c)
	default:
		return fmt.Errorf("unknown call kind %v", c.Kind)
	}
	return nil
}

func (b *builder) expandSpMM(ci int32, c *program.Call) error {
	p := b.g.Prog
	a, ok := b.mats[c.A]
	if !ok {
		return fmt.Errorf("no CSB matrix attached for operand %d", c.A)
	}
	if a.NBR != p.NP || a.NBC != p.NP {
		return fmt.Errorf("CSB tiling %dx%d does not match program NP=%d", a.NBR, a.NBC, p.NP)
	}
	n := p.Op(c.Out).Cols
	if c.ReduceSpMM {
		b.expandSpMMReduce(ci, c, a, n)
		return nil
	}
	for bi := 0; bi < p.NP; bi++ {
		rows := int64(p.PartRows(bi))
		first := true
		for bj := 0; bj < p.NP; bj++ {
			nnz := a.BlockNNZ(bi, bj)
			if nnz == 0 && b.opt.SkipEmpty {
				continue
			}
			var reads, writes []Ref
			if nnz > 0 {
				reads = []Ref{
					{TileRegion(c.A, bi, bj, a.NBC), int64(nnz) * 16}, // 8B value + 8B packed coords
					{VecRegion(c.B, bj), int64(p.PartRows(bj)) * int64(n) * 8},
				}
				writes = []Ref{{VecRegion(c.Out, bi), rows * int64(n) * 8}}
				if !first {
					// Accumulating tasks also read the output partition.
					reads = append(reads, writes[0])
				}
			} else {
				// The unoptimized (no-skip) variant still spawns a task for
				// each empty tile: it touches no matrix or input data and
				// contributes nothing but scheduling overhead — exactly the
				// cost Fig. 6 measures. It keeps its output-chain write ref
				// (zero bytes unless it is the First task, which zeroes the
				// block for real) so row ordering is preserved.
				bytes := int64(0)
				if first {
					bytes = rows * int64(n) * 8
				}
				writes = []Ref{{VecRegion(c.Out, bi), bytes}}
			}
			b.addTask(Task{
				Kind: TSpMMTile, Call: ci, P: int32(bi), Q: int32(bj),
				First: first,
				Flops: 2 * int64(nnz) * int64(n),
			}, reads, writes)
			first = false
		}
		if first {
			// No tiles wrote this row block: zero it explicitly.
			b.addTask(Task{
				Kind: TSpMMZero, Call: ci, P: int32(bi), Q: -1,
				Flops: rows * int64(n),
			}, nil, []Ref{{VecRegion(c.Out, bi), rows * int64(n) * 8}})
		}
	}
	return nil
}

func (b *builder) expandSpMMReduce(ci int32, c *program.Call, a *sparse.CSB, n int) {
	p := b.g.Prog
	// Phase 1: unchained tile tasks into private column buffers.
	for bi := 0; bi < p.NP; bi++ {
		for bj := 0; bj < p.NP; bj++ {
			nnz := a.BlockNNZ(bi, bj)
			if nnz == 0 && b.opt.SkipEmpty {
				continue
			}
			rows := int64(p.PartRows(bi))
			b.addTask(Task{
				Kind: TSpMMBufTile, Call: ci, P: int32(bi), Q: int32(bj),
				Flops: 2 * int64(nnz) * int64(n),
			}, []Ref{
				{TileRegion(c.A, bi, bj, a.NBC), int64(nnz) * 16},
				{VecRegion(c.B, bj), int64(p.PartRows(bj)) * int64(n) * 8},
			}, []Ref{
				{SpMMBufRegion(int(ci), bj, bi, p.NP), rows * int64(n) * 8},
			})
		}
	}
	// Phase 2: per-row reductions over the buffers.
	for bi := 0; bi < p.NP; bi++ {
		rows := int64(p.PartRows(bi))
		var reads []Ref
		var flops int64
		for bj := 0; bj < p.NP; bj++ {
			if a.BlockNNZ(bi, bj) == 0 && b.opt.SkipEmpty {
				continue
			}
			reads = append(reads, Ref{SpMMBufRegion(int(ci), bj, bi, p.NP), rows * int64(n) * 8})
			flops += rows * int64(n)
		}
		b.addTask(Task{
			Kind: TSpMMReduce, Call: ci, P: int32(bi), Q: -1,
			Flops: flops,
		}, reads, []Ref{{VecRegion(c.Out, bi), rows * int64(n) * 8}})
	}
}

func (b *builder) expandGemm(ci int32, c *program.Call) {
	p := b.g.Prog
	k := p.Op(c.A).Cols
	n := p.Op(c.Out).Cols
	for bi := 0; bi < p.NP; bi++ {
		rows := int64(p.PartRows(bi))
		reads := []Ref{
			{VecRegion(c.A, bi), rows * int64(k) * 8},
			{SmallRegion(c.B), int64(k*n) * 8},
		}
		writes := []Ref{{VecRegion(c.Out, bi), rows * int64(n) * 8}}
		if c.Beta != 0 {
			reads = append(reads, writes[0])
		}
		b.addTask(Task{
			Kind: TGemm, Call: ci, P: int32(bi), Q: -1,
			Flops: 2 * rows * int64(k) * int64(n),
		}, reads, writes)
	}
}

func (b *builder) expandGemmT(ci int32, c *program.Call) {
	p := b.g.Prog
	k := p.Op(c.A).Cols
	n := p.Op(c.B).Cols
	var parts []Ref
	for bi := 0; bi < p.NP; bi++ {
		rows := int64(p.PartRows(bi))
		pr := Ref{PartialRegion(int(ci), bi), int64(k*n) * 8}
		parts = append(parts, pr)
		b.addTask(Task{
			Kind: TGemmTPart, Call: ci, P: int32(bi), Q: -1,
			Flops: 2 * rows * int64(k) * int64(n),
		}, []Ref{
			{VecRegion(c.A, bi), rows * int64(k) * 8},
			{VecRegion(c.B, bi), rows * int64(n) * 8},
		}, []Ref{pr})
	}
	b.addTask(Task{
		Kind: TGemmTReduce, Call: ci, P: -1, Q: -1,
		Flops: int64(p.NP) * int64(k*n),
	}, parts, []Ref{{SmallRegion(c.Out), int64(k*n) * 8}})
}

func (b *builder) expandAxpby(ci int32, c *program.Call) {
	p := b.g.Prog
	n := p.Op(c.Out).Cols
	for bi := 0; bi < p.NP; bi++ {
		rows := int64(p.PartRows(bi))
		b.addTask(Task{
			Kind: TAxpby, Call: ci, P: int32(bi), Q: -1,
			Flops: 3 * rows * int64(n),
		}, []Ref{
			{VecRegion(c.A, bi), rows * int64(n) * 8},
			{VecRegion(c.B, bi), rows * int64(n) * 8},
		}, []Ref{{VecRegion(c.Out, bi), rows * int64(n) * 8}})
	}
}

func (b *builder) expandScaleInv(ci int32, c *program.Call) {
	p := b.g.Prog
	n := p.Op(c.Out).Cols
	for bi := 0; bi < p.NP; bi++ {
		rows := int64(p.PartRows(bi))
		b.addTask(Task{
			Kind: TScaleInv, Call: ci, P: int32(bi), Q: -1,
			Flops: rows * int64(n),
		}, []Ref{
			{VecRegion(c.A, bi), rows * int64(n) * 8},
			{ScalarRegion(c.S), 8},
		}, []Ref{{VecRegion(c.Out, bi), rows * int64(n) * 8}})
	}
}

func (b *builder) expandDot(ci int32, c *program.Call) {
	p := b.g.Prog
	n := p.Op(c.A).Cols
	var parts []Ref
	for bi := 0; bi < p.NP; bi++ {
		rows := int64(p.PartRows(bi))
		pr := Ref{PartialRegion(int(ci), bi), 8}
		parts = append(parts, pr)
		reads := []Ref{{VecRegion(c.A, bi), rows * int64(n) * 8}}
		if c.B != c.A {
			reads = append(reads, Ref{VecRegion(c.B, bi), rows * int64(n) * 8})
		}
		b.addTask(Task{
			Kind: TDotPart, Call: ci, P: int32(bi), Q: -1,
			Flops: 2 * rows * int64(n),
		}, reads, []Ref{pr})
	}
	b.addTask(Task{
		Kind: TDotReduce, Call: ci, P: -1, Q: -1,
		Flops: int64(p.NP),
	}, parts, []Ref{{ScalarRegion(c.Out), 8}})
}

// expandColDot mirrors expandDot with vector-valued partials: one per-column
// partial task per row block, then a reduce into the 1×k small output.
func (b *builder) expandColDot(ci int32, c *program.Call) {
	p := b.g.Prog
	n := p.Op(c.A).Cols
	var parts []Ref
	for bi := 0; bi < p.NP; bi++ {
		rows := int64(p.PartRows(bi))
		pr := Ref{PartialRegion(int(ci), bi), int64(n) * 8}
		parts = append(parts, pr)
		reads := []Ref{{VecRegion(c.A, bi), rows * int64(n) * 8}}
		if c.B != c.A {
			reads = append(reads, Ref{VecRegion(c.B, bi), rows * int64(n) * 8})
		}
		b.addTask(Task{
			Kind: TColDotPart, Call: ci, P: int32(bi), Q: -1,
			Flops: 2 * rows * int64(n),
		}, reads, []Ref{pr})
	}
	b.addTask(Task{
		Kind: TColDotReduce, Call: ci, P: -1, Q: -1,
		Flops: int64(p.NP) * int64(n),
	}, parts, []Ref{{SmallRegion(c.Out), int64(n) * 8}})
}

func (b *builder) expandColAxpby(ci int32, c *program.Call) {
	p := b.g.Prog
	n := p.Op(c.Out).Cols
	for bi := 0; bi < p.NP; bi++ {
		rows := int64(p.PartRows(bi))
		b.addTask(Task{
			Kind: TColAxpby, Call: ci, P: int32(bi), Q: -1,
			Flops: 3 * rows * int64(n),
		}, []Ref{
			{VecRegion(c.A, bi), rows * int64(n) * 8},
			{VecRegion(c.B, bi), rows * int64(n) * 8},
			{SmallRegion(c.S), int64(n) * 8},
		}, []Ref{{VecRegion(c.Out, bi), rows * int64(n) * 8}})
	}
}

func (b *builder) expandSmall(ci int32, c *program.Call) {
	p := b.g.Prog
	var reads, writes []Ref
	ref := func(id program.OperandID) Ref {
		o := p.Op(id)
		if o.Kind == program.OpScalar {
			return Ref{ScalarRegion(id), 8}
		}
		return Ref{SmallRegion(id), int64(o.Rows*o.Cols) * 8}
	}
	for _, id := range c.Ins {
		reads = append(reads, ref(id))
	}
	for _, id := range c.Outs {
		writes = append(writes, ref(id))
	}
	b.addTask(Task{Kind: TSmall, Call: ci, P: -1, Q: -1, Flops: 1}, reads, writes)
}

func (b *builder) expandDiagScale(ci int32, c *program.Call) {
	p := b.g.Prog
	n := p.Op(c.Out).Cols
	for bi := 0; bi < p.NP; bi++ {
		rows := int64(p.PartRows(bi))
		b.addTask(Task{
			Kind: TDiagScale, Call: ci, P: int32(bi), Q: -1,
			Flops: rows * int64(n),
		}, []Ref{
			{VecRegion(c.A, bi), rows * int64(n) * 8},
			{VecRegion(c.B, bi), rows * 8},
		}, []Ref{{VecRegion(c.Out, bi), rows * int64(n) * 8}})
	}
}

// expandSpTrsv emits one TTrsv task per row block of the factor. Tasks are
// emitted in substitution order (ascending blocks for the forward solve,
// descending for the backward), and each task *reads* the output blocks its
// rows reference, so the generic RAW machinery reproduces the factor's level
// DAG — the irregular, deep-critical-path graph shape the level-scheduled
// incomplete-Cholesky literature targets. Cross-block dependency lists come
// either from opt.TriDeps (memoized precond.Levels) or a direct scan of the
// factor's rows; both yield identical sorted lists.
func (b *builder) expandSpTrsv(ci int32, c *program.Call) error {
	p := b.g.Prog
	tri, ok := b.opt.Tris[c.A]
	if !ok {
		return fmt.Errorf("no CSR factor attached for operand %d (Options.Tris)", c.A)
	}
	if tri.Rows != p.M || tri.Cols != p.M {
		return fmt.Errorf("factor is %dx%d, program rows %d", tri.Rows, tri.Cols, p.M)
	}
	memo := b.opt.TriDeps[c.A]
	if memo != nil && len(memo) != p.NP {
		return fmt.Errorf("memoized level deps cover %d blocks, program has %d", len(memo), p.NP)
	}
	n := int64(p.Op(c.Out).Cols)
	var scratch []int32
	for k := 0; k < p.NP; k++ {
		bi := k
		if c.Upper {
			bi = p.NP - 1 - k
		}
		rlo := bi * p.Block
		rhi := rlo + p.PartRows(bi)
		nnz := tri.RowPtr[rhi] - tri.RowPtr[rlo]
		var deps []int32
		if memo != nil {
			deps = memo[bi]
		} else {
			deps = blockDeps(tri, bi, p.Block, c.Upper, scratch[:0])
			scratch = deps
		}
		rows := int64(rhi - rlo)
		reads := make([]Ref, 0, len(deps)+2)
		reads = append(reads,
			Ref{TriRegion(c.A, bi), nnz * 12}, // 8B value + 4B column index
			Ref{VecRegion(c.B, bi), rows * n * 8},
		)
		for _, j := range deps {
			reads = append(reads, Ref{VecRegion(c.Out, int(j)), int64(p.PartRows(int(j))) * n * 8})
		}
		b.addTask(Task{
			Kind: TTrsv, Call: ci, P: int32(bi), Q: -1,
			Flops: 2 * nnz * n,
		}, reads, []Ref{{VecRegion(c.Out, bi), rows * n * 8}})
	}
	return nil
}

// blockDeps scans the factor rows of block bi and returns the sorted list of
// other blocks whose solution entries they reference (the same computation
// precond.Levels memoizes). dst is reused scratch.
func blockDeps(tri *sparse.CSR, bi, block int, upper bool, dst []int32) []int32 {
	rlo := bi * block
	rhi := rlo + block
	if rhi > tri.Rows {
		rhi = tri.Rows
	}
	deps := dst
	for i := rlo; i < rhi; i++ {
		for p := tri.RowPtr[i]; p < tri.RowPtr[i+1]; p++ {
			c := int(tri.ColIdx[p])
			if upper {
				if c <= i {
					continue
				}
			} else if c >= i {
				continue
			}
			j := int32(c / block)
			if int(j) == bi {
				continue
			}
			found := false
			for _, d := range deps {
				if d == j {
					found = true
					break
				}
			}
			if !found {
				deps = append(deps, j)
			}
		}
	}
	// Insertion sort: lists are short (bounded by block bandwidth) and the
	// result must be deterministic.
	for i := 1; i < len(deps); i++ {
		for j := i; j > 0 && deps[j] < deps[j-1]; j-- {
			deps[j], deps[j-1] = deps[j-1], deps[j]
		}
	}
	return deps
}

func (b *builder) expandCopy(ci int32, c *program.Call) {
	p := b.g.Prog
	n := p.Op(c.Out).Cols
	for bi := 0; bi < p.NP; bi++ {
		rows := int64(p.PartRows(bi))
		b.addTask(Task{
			Kind: TCopy, Call: ci, P: int32(bi), Q: -1,
			Flops: rows * int64(n),
		}, []Ref{{VecRegion(c.A, bi), rows * int64(n) * 8}},
			[]Ref{{VecRegion(c.Out, bi), rows * int64(n) * 8}})
	}
}
