package graph

import (
	"fmt"
	"math/bits"

	"sparsetask/internal/program"
	"sparsetask/internal/sparse"
)

// Symmetric SpMV expansion. Every stored SymCSB tile writes two row bands —
// band bi directly and band bj through the transposed scatter — so naive
// per-tile tasks would race on y. The matrix's cached SymSchedule resolves
// the conflict in one of two ways:
//
// Wave mode: tiles are pre-colored so that no two tiles of one color share a
// band. Tasks are emitted color by color; within a band, consecutive writers
// form a WAW chain (the generic addTask machinery), so waves surface as DAG
// ranks without explicit barriers and each band has one fixed accumulation
// order — the source of bit-identical results across all backends.
//
// Fallback mode (coloring fragmented the DAG, e.g. arrowhead patterns):
// direct halves still chain on y[bi], while transposed halves go to one of
// G = min(8, NBR) private full-height accumulators chosen by tile row
// (g = bi·G/NBR — a pure function of the matrix structure, never of worker
// or domain counts, so the reduction order is identical across topology
// profiles). Per-band reduction tasks, affinity-stamped to their band, fold
// the used groups back into y in ascending group order.
//
// Symmetric expansion always skips empty stored tiles: an empty tile
// contributes neither half, and the no-skip ablation targets the general
// path.
func (b *builder) expandSpMMSym(ci int32, c *program.Call) error {
	p := b.g.Prog
	a, ok := b.opt.Syms[c.A]
	if !ok {
		return fmt.Errorf("no SymCSB matrix attached for operand %d (Options.Syms)", c.A)
	}
	if a.NBR != p.NP {
		return fmt.Errorf("SymCSB tiling %d does not match program NP=%d", a.NBR, p.NP)
	}
	n := p.Op(c.Out).Cols
	if a.Sched.Fallback {
		b.expandSpMMSymAcc(ci, c, a, n)
		return nil
	}

	// Wave mode. Bucket stored non-empty tiles by color in one pass
	// ((bi-major, bj ascending) within a bucket), then emit bucket by
	// bucket so same-band writers chain in wave order.
	type tileRef struct{ bi, bj int32 }
	buckets := make([][]tileRef, a.Sched.NumWaves)
	for bi := 0; bi < a.NBR; bi++ {
		for bj := 0; bj <= bi; bj++ {
			w := a.Sched.Wave[a.TileIndex(bi, bj)]
			if w >= 0 {
				buckets[w] = append(buckets[w], tileRef{int32(bi), int32(bj)})
			}
		}
	}
	seen := make([]bool, p.NP)
	for _, bucket := range buckets {
		for _, t := range bucket {
			bi, bj := int(t.bi), int(t.bj)
			nnz := a.TileNNZ(bi, bj)
			rows := int64(p.PartRows(bi))
			first := !seen[bi]
			seen[bi] = true
			reads := []Ref{
				{TileRegion(c.A, bi, bj, a.NBR), int64(nnz) * 16}, // 8B value + 8B packed coords
				{VecRegion(c.B, bj), int64(p.PartRows(bj)) * int64(n) * 8},
			}
			writes := []Ref{{VecRegion(c.Out, bi), rows * int64(n) * 8}}
			flops := 4 * int64(nnz) * int64(n)
			firstQ := false
			if bi != bj {
				firstQ = !seen[bj]
				seen[bj] = true
				reads = append(reads, Ref{VecRegion(c.B, bi), rows * int64(n) * 8})
				writes = append(writes, Ref{VecRegion(c.Out, bj), int64(p.PartRows(bj)) * int64(n) * 8})
				if !firstQ {
					reads = append(reads, writes[1])
				}
			} else {
				// True diagonal entries contribute once, not twice.
				flops -= 2 * int64(tileDiagNNZ(a, bi)) * int64(n)
			}
			if !first {
				reads = append(reads, writes[0])
			}
			b.addTask(Task{
				Kind: TSymTile, Call: ci, P: t.bi, Q: t.bj,
				First: first, FirstQ: firstQ,
				Flops: flops,
			}, reads, writes)
		}
	}
	b.zeroUnwritten(ci, c, seen, n)
	return nil
}

// expandSpMMSymAcc emits the fallback accumulator task pattern: diagonal
// tiles as plain TSymTile (one band, no conflict), off-diagonal tiles as
// TSymTileAcc (direct half chained on y[bi], transposed half into the tile
// row's group accumulator), then one TSymReduce per band with transposed
// contributions.
func (b *builder) expandSpMMSymAcc(ci int32, c *program.Call, a *sparse.SymCSB, n int) {
	p := b.g.Prog
	seen := make([]bool, p.NP)
	accSeen := make([]bool, a.Sched.Groups*p.NP)
	for bi := 0; bi < a.NBR; bi++ {
		g := a.AccGroup(bi)
		for bj := 0; bj <= bi; bj++ {
			nnz := a.TileNNZ(bi, bj)
			if nnz == 0 {
				continue
			}
			rows := int64(p.PartRows(bi))
			first := !seen[bi]
			seen[bi] = true
			reads := []Ref{
				{TileRegion(c.A, bi, bj, a.NBR), int64(nnz) * 16},
				{VecRegion(c.B, bj), int64(p.PartRows(bj)) * int64(n) * 8},
			}
			writes := []Ref{{VecRegion(c.Out, bi), rows * int64(n) * 8}}
			if !first {
				reads = append(reads, writes[0])
			}
			if bi == bj {
				b.addTask(Task{
					Kind: TSymTile, Call: ci, P: int32(bi), Q: int32(bj),
					First: first,
					Flops: 4*int64(nnz)*int64(n) - 2*int64(tileDiagNNZ(a, bi))*int64(n),
				}, reads, writes)
				continue
			}
			firstQ := !accSeen[g*p.NP+bj]
			accSeen[g*p.NP+bj] = true
			reads = append(reads, Ref{VecRegion(c.B, bi), rows * int64(n) * 8})
			accRef := Ref{SymAccRegion(int(ci), g, bj, a.NBR), int64(p.PartRows(bj)) * int64(n) * 8}
			writes = append(writes, accRef)
			if !firstQ {
				reads = append(reads, accRef)
			}
			b.addTask(Task{
				Kind: TSymTileAcc, Call: ci, P: int32(bi), Q: int32(bj),
				First: first, FirstQ: firstQ,
				Flops: 4 * int64(nnz) * int64(n),
			}, reads, writes)
		}
	}
	// Per-band reductions over the used groups, in ascending group order
	// (the kernel folds the same order, fixing FP accumulation).
	for bj := 0; bj < p.NP; bj++ {
		mask := a.Sched.TransGroups[bj]
		if mask == 0 {
			continue
		}
		rows := int64(p.PartRows(bj))
		first := !seen[bj]
		seen[bj] = true
		reads := make([]Ref, 0, bits.OnesCount8(mask)+1)
		for g := 0; g < a.Sched.Groups; g++ {
			if mask&(1<<uint(g)) == 0 {
				continue
			}
			reads = append(reads, Ref{SymAccRegion(int(ci), g, bj, a.NBR), rows * int64(n) * 8})
		}
		writes := []Ref{{VecRegion(c.Out, bj), rows * int64(n) * 8}}
		if !first {
			reads = append(reads, writes[0])
		}
		b.addTask(Task{
			Kind: TSymReduce, Call: ci, P: int32(bj), Q: -1,
			First: first,
			Flops: int64(bits.OnesCount8(mask)) * rows * int64(n),
		}, reads, writes)
	}
	b.zeroUnwritten(ci, c, seen, n)
}

// zeroUnwritten emits a TSpMMZero for every output band no task wrote.
func (b *builder) zeroUnwritten(ci int32, c *program.Call, seen []bool, n int) {
	p := b.g.Prog
	for bi := 0; bi < p.NP; bi++ {
		if seen[bi] {
			continue
		}
		rows := int64(p.PartRows(bi))
		b.addTask(Task{
			Kind: TSpMMZero, Call: ci, P: int32(bi), Q: -1,
			Flops: rows * int64(n),
		}, nil, []Ref{{VecRegion(c.Out, bi), rows * int64(n) * 8}})
	}
}

// tileDiagNNZ counts true diagonal entries (local r == c) of diagonal tile
// bi: they contribute one product each where off-diagonal entries count two.
func tileDiagNNZ(a *sparse.SymCSB, bi int) int {
	k := a.TileIndex(bi, bi)
	n := 0
	for p := a.BlkPtr[k]; p < a.BlkPtr[k+1]; p++ {
		if a.RI[p] == a.CI[p] {
			n++
		}
	}
	return n
}
