package graph

import (
	"strings"
	"testing"

	"sparsetask/internal/program"
	"sparsetask/internal/sparse"
)

// bidiagonalLower builds an n×n lower factor with diagonal 2 and subdiagonal
// -1: a pure dependency chain, the worst-case skewed level structure.
func bidiagonalLower(n int) *sparse.CSR {
	coo := sparse.NewCOO(n, n, 2*n)
	for i := 0; i < n; i++ {
		if i > 0 {
			coo.Append(int32(i), int32(i-1), -1)
		}
		coo.Append(int32(i), int32(i), 2)
	}
	return coo.ToCSR()
}

func TestExpandSpTrsvChain(t *testing.T) {
	n := 12
	l := bidiagonalLower(n)
	p := program.New(n, 3)
	opL := p.Tri("L")
	opB := p.Vec("b", 1)
	opY := p.Vec("y", 1)
	p.SpTrsvLower(opY, opL, opB)
	g, err := Build(p, nil, Options{SkipEmpty: true, Tris: map[program.OperandID]*sparse.CSR{opL: l}})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Tasks) != p.NP {
		t.Fatalf("%d tasks, want %d (one per row block)", len(g.Tasks), p.NP)
	}
	// The subdiagonal couples adjacent blocks, so the tasks form a chain:
	// critical path = NP, one root.
	st := g.ComputeStats()
	if st.CriticalPath != p.NP {
		t.Fatalf("critical path %d, want %d", st.CriticalPath, p.NP)
	}
	if len(g.Roots) != 1 {
		t.Fatalf("%d roots, want 1", len(g.Roots))
	}
	if len(st.LevelWidths) != p.NP {
		t.Fatalf("LevelWidths has %d levels, want %d", len(st.LevelWidths), p.NP)
	}
	for i, w := range st.LevelWidths {
		if w != 1 {
			t.Fatalf("level %d width %d, want 1", i, w)
		}
	}
	// Affinity stamps must be the output row blocks so topology routing
	// composes with the level DAG.
	for i := range g.Tasks {
		if g.Tasks[i].Kind != TTrsv {
			t.Fatalf("task %d is %v, want TRSV", i, g.Tasks[i].Kind)
		}
		if g.Tasks[i].Affinity != g.Tasks[i].P {
			t.Fatalf("task %d affinity %d != P %d", i, g.Tasks[i].Affinity, g.Tasks[i].P)
		}
	}
}

func TestExpandSpTrsvMissingFactor(t *testing.T) {
	p := program.New(8, 2)
	opL := p.Tri("L")
	opB := p.Vec("b", 1)
	opY := p.Vec("y", 1)
	p.SpTrsvLower(opY, opL, opB)
	if _, err := Build(p, nil, Options{SkipEmpty: true}); err == nil {
		t.Fatal("expected error when Options.Tris is missing the factor")
	}
}

// TestLevelHistogramBuckets: a deep chain graph must render as a capped,
// bucketed histogram, never one line per level.
func TestLevelHistogramBuckets(t *testing.T) {
	n := 3000
	l := bidiagonalLower(n)
	p := program.New(n, 1)
	opL := p.Tri("L")
	opB := p.Vec("b", 1)
	opY := p.Vec("y", 1)
	p.SpTrsvLower(opY, opL, opB)
	g, err := Build(p, nil, Options{SkipEmpty: true, Tris: map[program.OperandID]*sparse.CSR{opL: l}})
	if err != nil {
		t.Fatal(err)
	}
	st := g.ComputeStats()
	if len(st.LevelWidths) != n {
		t.Fatalf("expected %d levels, got %d", n, len(st.LevelWidths))
	}
	const maxRows = 24
	h := st.LevelHistogram(maxRows)
	lines := strings.Count(h, "\n")
	if lines > maxRows+1 { // +1 header
		t.Fatalf("histogram has %d lines for a %d-level graph, cap is %d", lines, n, maxRows+1)
	}
	if !strings.Contains(h, "3000 levels") {
		t.Fatalf("header missing level count:\n%s", h)
	}
	// Every task must be accounted for across the buckets.
	total := 0
	for _, w := range st.LevelWidths {
		total += w
	}
	if total != len(g.Tasks) {
		t.Fatalf("level widths sum to %d, want %d tasks", total, len(g.Tasks))
	}
}

func TestLevelHistogramSmallGraph(t *testing.T) {
	// Fewer levels than rows: one line per level with width bars.
	s := Stats{LevelWidths: []int{4, 4, 1}, MaxWidth: 4}
	h := s.LevelHistogram(10)
	if strings.Count(h, "\n") != 4 {
		t.Fatalf("want header + 3 level lines:\n%s", h)
	}
	if !strings.Contains(h, "3 levels, max width 4") {
		t.Fatalf("bad header:\n%s", h)
	}
}

func TestLevelHistogramEmpty(t *testing.T) {
	var s Stats
	if got := s.LevelHistogram(10); !strings.Contains(got, "empty") {
		t.Fatalf("empty stats rendered %q", got)
	}
}
