package graph

import (
	"math"
	"testing"

	"sparsetask/internal/program"
	"sparsetask/internal/sparse"
)

func TestBoundsChainAndFan(t *testing.T) {
	// Dense 3x3-tile SpMM: per row, a chain of 3 tile tasks. With unit
	// costs: work 9, span 3 (one chain).
	m, block := 9, 3
	p := program.New(m, block)
	A := p.Sparse("A")
	X := p.Vec("X", 1)
	Y := p.Vec("Y", 1)
	p.SpMM(Y, A, X)
	g, err := Build(p, map[program.OperandID]*sparse.CSB{A: denseCSB(m, block, 1)}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b := g.ComputeBounds(func(*Task) float64 { return 1 })
	if b.Work != 9 || b.Span != 3 {
		t.Fatalf("bounds = %+v, want work 9 span 3", b)
	}
	if lb := b.LowerBound(3); lb != 3 {
		t.Fatalf("LowerBound(3) = %v, want 3 (both bounds coincide)", lb)
	}
	if lb := b.LowerBound(1); lb != 9 {
		t.Fatalf("LowerBound(1) = %v, want 9", lb)
	}
	if ub := b.BrentUpperBound(3); ub != 6 {
		t.Fatalf("Brent(3) = %v, want 6", ub)
	}
}

func TestFlopBoundsAndParallelism(t *testing.T) {
	m, block, n := 60, 6, 4
	p, A, _, _, _, _, _ := listing1Program(m, block, n)
	g, err := Build(p, map[program.OperandID]*sparse.CSB{A: denseCSB(m, block, 2)}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b := g.FlopBounds()
	if b.Work <= 0 || b.Span <= 0 || b.Span > b.Work {
		t.Fatalf("degenerate flop bounds %+v", b)
	}
	// Total flops must match the sum over tasks.
	var total float64
	for i := range g.Tasks {
		total += float64(g.Tasks[i].Flops)
	}
	if math.Abs(b.Work-total) > 1e-9 {
		t.Fatalf("work %v != Σflops %v", b.Work, total)
	}
	par := g.Parallelism()
	if par < 1 || par > float64(len(g.Tasks)) {
		t.Fatalf("parallelism %v out of range", par)
	}
}

func TestParallelismGrowsWithBlockCount(t *testing.T) {
	// The paper's premise: finer tiling exposes more parallelism.
	m := 128
	mk := func(block int) float64 {
		p := program.New(m, block)
		A := p.Sparse("A")
		X := p.Vec("X", 1)
		Y := p.Vec("Y", 1)
		p.SpMM(Y, A, X)
		p.Dot(p.Scalar("s"), Y, Y)
		g, err := Build(p, map[program.OperandID]*sparse.CSB{A: denseCSB(m, block, 3)}, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return g.Parallelism()
	}
	coarse := mk(64) // 2x2 tiles
	fine := mk(16)   // 8x8 tiles
	if fine <= coarse {
		t.Fatalf("parallelism fine=%v should exceed coarse=%v", fine, coarse)
	}
}
