package graph

import (
	"testing"

	"sparsetask/internal/program"
	"sparsetask/internal/sparse"
)

// fusableProgram builds a graph with a long elementwise pipeline per
// partition: SpMM → XY → AXPBY → COPY → SCALE-able chain.
func fusableProgram(t *testing.T) (*TDG, *program.Program) {
	t.Helper()
	m, block, n := 32, 8, 2
	p := program.New(m, block)
	A := p.Sparse("A")
	X := p.Vec("X", n)
	Y := p.Vec("Y", n)
	Z := p.Small("Z", n, n)
	Q := p.Vec("Q", n)
	W := p.Vec("W", n)
	V := p.Vec("V", n)
	p.SpMM(Y, A, X)
	p.Gemm(Q, 1, Y, Z, 0)  // fusable, depends only on Y[bi]+Z
	p.Axpby(W, 1, Q, 2, Q) // fusable, single dep on Gemm[bi]
	p.Copy(V, W)           // fusable, single dep on Axpby[bi]
	g, err := Build(p, map[program.OperandID]*sparse.CSB{A: denseCSB(m, block, 9)}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return g, p
}

func TestFuseCollapsesElementwiseChains(t *testing.T) {
	g, _ := fusableProgram(t)
	f := Fuse(g)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	// Per partition: Gemm+Axpby+Copy collapse into one task. 4 partitions ×
	// 2 saved tasks = 8 fewer tasks.
	if want := len(g.Tasks) - 8; len(f.Tasks) != want {
		t.Fatalf("fused graph has %d tasks, want %d (from %d)", len(f.Tasks), want, len(g.Tasks))
	}
	fusedCount := 0
	for i := range f.Tasks {
		if len(f.Tasks[i].Parts) == 3 {
			fusedCount++
			// Fused flops must be the sum of constituents.
			if f.Tasks[i].Flops <= 0 {
				t.Error("fused task lost flops")
			}
		}
	}
	if fusedCount != 4 {
		t.Fatalf("%d three-part fused tasks, want 4", fusedCount)
	}
}

func TestFuseDoesNotCrossPartitions(t *testing.T) {
	g, _ := fusableProgram(t)
	f := Fuse(g)
	for i := range f.Tasks {
		task := &f.Tasks[i]
		for _, part := range task.Parts {
			if part.P != task.P {
				t.Fatalf("fused task %d mixes partitions %d and %d", task.ID, task.P, part.P)
			}
		}
	}
}

func TestFuseDoesNotFuseSharedProducers(t *testing.T) {
	// Y feeds TWO consumers: neither may fuse with the producer (parallelism
	// would be lost).
	m, block, n := 16, 8, 2
	p := program.New(m, block)
	X := p.Vec("X", n)
	Y := p.Vec("Y", n)
	W1 := p.Vec("W1", n)
	W2 := p.Vec("W2", n)
	p.Copy(Y, X)
	p.Axpby(W1, 1, Y, 0, Y)
	p.Axpby(W2, 2, Y, 0, Y)
	g, err := Build(p, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f := Fuse(g)
	if len(f.Tasks) != len(g.Tasks) {
		t.Fatalf("fusion across a shared producer: %d -> %d tasks", len(g.Tasks), len(f.Tasks))
	}
}

func TestFusePreservesCriticalStructure(t *testing.T) {
	g, _ := fusableProgram(t)
	f := Fuse(g)
	// Kernel-level reachability must be intact: the graph still ends with
	// the same number of leaf tasks per partition and stats stay coherent.
	sOrig := g.ComputeStats()
	sFused := f.ComputeStats()
	if sFused.TotalFlops != sOrig.TotalFlops {
		t.Fatalf("fusion changed total flops: %d -> %d", sOrig.TotalFlops, sFused.TotalFlops)
	}
	if sFused.CriticalPath >= sOrig.CriticalPath {
		t.Fatalf("fusion should shorten the task-level critical path: %d -> %d",
			sOrig.CriticalPath, sFused.CriticalPath)
	}
}
