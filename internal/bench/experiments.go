package bench

import (
	"fmt"
	"strings"

	"sparsetask/internal/graph"
	"sparsetask/internal/matgen"
	"sparsetask/internal/perfprofile"
	"sparsetask/internal/program"
	"sparsetask/internal/sparse"
	"sparsetask/internal/trace"
)

// matrixCache builds each suite matrix once per experiment run.
type matrixCache struct {
	cfg  *Config
	mats map[string]*sparse.COO
}

func newMatrixCache(cfg *Config) *matrixCache {
	return &matrixCache{cfg: cfg, mats: map[string]*sparse.COO{}}
}

func (mc *matrixCache) get(spec matgen.Spec) *sparse.COO {
	if m, ok := mc.mats[spec.Name]; ok {
		return m
	}
	m := spec.Build(mc.cfg.Preset, mc.cfg.Seed)
	mc.mats[spec.Name] = m
	return m
}

// ---------------------------------------------------------------- Table 1

func runTable1(cfg *Config) (*Report, error) {
	r := newReport("table1", "Matrices used in the evaluation (scaled synthetic analogs)",
		"Matrix", "Class", "PaperRows", "PaperNNZ", "Rows", "NNZ", "nnz/row", "Imbalance")
	specs, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	mc := newMatrixCache(cfg)
	for _, s := range specs {
		m := mc.get(s)
		st := sparse.ComputeStats(m.ToCSR())
		name := s.Name
		if s.MadeSymmetric {
			name += "*" // bold in the paper: symmetrized
		}
		if s.Binary {
			name += "†" // italic in the paper: value-filled binary pattern
		}
		r.addRow(name, s.Class,
			fmt.Sprintf("%d", s.PaperRows), fmt.Sprintf("%d", s.PaperNNZ),
			fmt.Sprintf("%d", st.Rows), fmt.Sprintf("%d", st.NNZ),
			fmt.Sprintf("%.1f", st.AvgRowNNZ), fmt.Sprintf("%.1f", st.Imbalance))
		r.Metrics["rows/"+s.Name] = float64(st.Rows)
		r.Metrics["nnz/"+s.Name] = float64(st.NNZ)
	}
	r.note("* symmetrized as L+Lᵀ−D (bold in Table 1); † binary pattern filled with random values (italic)")
	r.note("preset %s: rows ≈ paper/%d", cfg.Preset.Name, cfg.Preset.Div)
	return r, nil
}

// ---------------------------------------------------------------- Fig. 3

func runFig3(cfg *Config) (*Report, error) {
	// Listing 1 over a dense 3x3-tile matrix: the exact Fig. 3 DAG.
	m, block, n := 9, 3, 2
	coo := sparse.NewCOO(m, m, m*m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			coo.Append(int32(i), int32(j), 1)
		}
	}
	p := program.New(m, block)
	A := p.Sparse("A")
	X := p.Vec("X", n)
	Y := p.Vec("Y", n)
	Z := p.Small("Z", n, n)
	Q := p.Vec("Q", n)
	P := p.Small("P", n, n)
	p.SpMM(Y, A, X)
	p.Gemm(Q, 1, Y, Z, 0)
	p.GemmT(P, Y, Q)
	g, err := graph.Build(p, map[program.OperandID]*sparse.CSB{A: coo.ToCSB(block)}, graph.DefaultOptions())
	if err != nil {
		return nil, err
	}
	var dot strings.Builder
	if err := g.WriteDOT(&dot, "fig3"); err != nil {
		return nil, err
	}
	st := g.ComputeStats()
	r := newReport("fig3", "Task graph for the Listing 1 pseudocode", "Metric", "Value")
	r.addRow("tasks", fmt.Sprintf("%d", st.Tasks))
	r.addRow("edges", fmt.Sprintf("%d", st.Edges))
	r.addRow("critical path (tasks)", fmt.Sprintf("%d", st.CriticalPath))
	r.addRow("max width", fmt.Sprintf("%d", st.MaxWidth))
	r.Metrics["tasks"] = float64(st.Tasks)
	r.Metrics["critical_path"] = float64(st.CriticalPath)
	for _, line := range strings.Split(strings.TrimRight(dot.String(), "\n"), "\n") {
		r.note("%s", line)
	}
	return r, nil
}

// ---------------------------------------------------------------- Fig. 5

func runFig5(cfg *Config) (*Report, error) {
	r := newReport("fig5", "DeepSparse Lanczos on EPYC: first-touch placement",
		"Matrix", "serial-init (ms)", "first-touch (ms)", "Speedup")
	mach, err := scaledMachine("epyc", cfg.Preset)
	if err != nil {
		return nil, err
	}
	specs, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	if len(cfg.Matrices) == 0 && len(specs) > 8 {
		specs = specs[:8] // the effect is strongest on small/mid matrices
	}
	mc := newMatrixCache(cfg)
	iters := cfg.iters(5)
	v, _ := VersionByName("deepsparse")
	var ratios []float64
	for _, s := range specs {
		coo := mc.get(s)
		g, err := buildGraph(coo, Lanczos, v.BlockCount(mach, coo.Rows), graph.DefaultOptions(), false)
		if err != nil {
			return nil, err
		}
		tSer, _, err := simMeasure(mach, v.Policy(mach, cfg.Preset.OverheadScale()), g, iters, false, nil)
		if err != nil {
			return nil, err
		}
		tFT, _, err := simMeasure(mach, v.Policy(mach, cfg.Preset.OverheadScale()), g, iters, true, nil)
		if err != nil {
			return nil, err
		}
		sp := tSer / tFT
		ratios = append(ratios, sp)
		r.addRow(s.Name, fmtMs(tSer), fmtMs(tFT), fmtX(sp))
		r.Metrics["speedup/"+s.Name] = sp
	}
	r.Metrics["max_speedup"] = maxOf(ratios)
	r.Metrics["geomean_speedup"] = geoMean(ratios)
	r.note("paper: up to 2.5x on small/mid matrices; shape to hold: first-touch >= 1x everywhere, largest gains on matrices that fit memory controllers unevenly")
	return r, nil
}

// ---------------------------------------------------------------- Fig. 6

func runFig6(cfg *Config) (*Report, error) {
	r := newReport("fig6", "HPX Lanczos on Broadwell: skipping empty tasks",
		"Matrix", "all-tasks (ms)", "skip-empty (ms)", "Speedup", "EmptyFrac")
	mach, err := scaledMachine("broadwell", cfg.Preset)
	if err != nil {
		return nil, err
	}
	specs, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	mc := newMatrixCache(cfg)
	iters := cfg.iters(5)
	v, _ := VersionByName("hpx")
	var ratios []float64
	for _, s := range specs {
		coo := mc.get(s)
		bc := v.BlockCount(mach, coo.Rows)
		gSkip, err := buildGraph(coo, Lanczos, bc, graph.Options{SkipEmpty: true}, false)
		if err != nil {
			return nil, err
		}
		gAll, err := buildGraph(coo, Lanczos, bc, graph.Options{SkipEmpty: false}, false)
		if err != nil {
			return nil, err
		}
		tAll, _, err := simMeasure(mach, v.Policy(mach, cfg.Preset.OverheadScale()), gAll, iters, true, nil)
		if err != nil {
			return nil, err
		}
		tSkip, _, err := simMeasure(mach, v.Policy(mach, cfg.Preset.OverheadScale()), gSkip, iters, true, nil)
		if err != nil {
			return nil, err
		}
		sp := tAll / tSkip
		ratios = append(ratios, sp)
		emptyFrac := 1 - float64(len(gSkip.Tasks))/float64(len(gAll.Tasks))
		r.addRow(s.Name, fmtMs(tAll), fmtMs(tSkip), fmtX(sp), fmt.Sprintf("%.2f", emptyFrac))
		r.Metrics["speedup/"+s.Name] = sp
	}
	r.Metrics["geomean_speedup"] = geoMean(ratios)
	r.note("paper: ~30%% average speedup, weaker where the optimal block size leaves few empty tiles")
	return r, nil
}

// ---------------------------------------------------------------- Fig. 7

func runFig7(cfg *Config) (*Report, error) {
	r := newReport("fig7", "Regent LOBPCG on Broadwell: SpMM output handling",
		"Matrix", "reduce-based (ms)", "dependency-based (ms)", "Speedup")
	mach, err := scaledMachine("broadwell", cfg.Preset)
	if err != nil {
		return nil, err
	}
	specs, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	mc := newMatrixCache(cfg)
	iters := cfg.iters(3)
	v, _ := VersionByName("regent")
	var ratios []float64
	for _, s := range specs {
		coo := mc.get(s)
		bc := v.BlockCount(mach, coo.Rows)
		gDep, err := buildGraph(coo, LOBPCG, bc, graph.DefaultOptions(), false)
		if err != nil {
			return nil, err
		}
		gRed, err := buildGraph(coo, LOBPCG, bc, graph.DefaultOptions(), true)
		if err != nil {
			return nil, err
		}
		tDep, _, err := simMeasure(mach, v.Policy(mach, cfg.Preset.OverheadScale()), gDep, iters, true, nil)
		if err != nil {
			return nil, err
		}
		tRed, _, err := simMeasure(mach, v.Policy(mach, cfg.Preset.OverheadScale()), gRed, iters, true, nil)
		if err != nil {
			return nil, err
		}
		sp := tRed / tDep
		ratios = append(ratios, sp)
		r.addRow(s.Name, fmtMs(tRed), fmtMs(tDep), fmtX(sp))
		r.Metrics["speedup/"+s.Name] = sp
	}
	r.Metrics["geomean_speedup"] = geoMean(ratios)
	r.note("paper: dependency-based wins; reduce-based collapses on large matrices (per-column buffers thrash memory)")
	return r, nil
}

// ------------------------------------------------------- cache experiments

// cacheRow measures one solver on one machine for all versions and returns
// per-version miss counts.
type versionCounters struct {
	name                   string
	timeNs                 float64
	l1Miss, l2Miss, l3Miss float64
}

func measureAllVersions(cfg *Config, machName string, kind SolverKind, coo *sparse.COO, iters int) ([]versionCounters, error) {
	mach, err := scaledMachine(machName, cfg.Preset)
	if err != nil {
		return nil, err
	}
	var out []versionCounters
	for _, v := range Versions() {
		g, err := buildGraph(coo, kind, v.BlockCount(mach, coo.Rows), graph.DefaultOptions(), false)
		if err != nil {
			return nil, err
		}
		t, ctr, err := simMeasure(mach, v.Policy(mach, cfg.Preset.OverheadScale()), g, iters, true, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, versionCounters{
			name: v.Name, timeNs: t,
			l1Miss: float64(ctr.L1Miss), l2Miss: float64(ctr.L2Miss), l3Miss: float64(ctr.L3Miss),
		})
	}
	return out, nil
}

func runFig8(cfg *Config) (*Report, error) {
	r := newReport("fig8", "Lanczos on EPYC: L1/L2 misses normalized to libcsr",
		"Matrix", "Version", "L1/libcsr", "L2/libcsr")
	specs, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	mc := newMatrixCache(cfg)
	iters := cfg.iters(5)
	for _, s := range specs {
		vs, err := measureAllVersions(cfg, "epyc", Lanczos, mc.get(s), iters)
		if err != nil {
			return nil, err
		}
		base := vs[0] // libcsr
		for _, v := range vs[1:] {
			n1 := v.l1Miss / base.l1Miss
			n2 := v.l2Miss / base.l2Miss
			r.addRow(s.Name, v.name, fmt.Sprintf("%.2f", n1), fmt.Sprintf("%.2f", n2))
			r.Metrics[fmt.Sprintf("l1/%s/%s", s.Name, v.name)] = n1
			r.Metrics[fmt.Sprintf("l2/%s/%s", s.Name, v.name)] = n2
		}
	}
	r.note("paper: little consistent L1 reduction for Lanczos; L2 gains mostly attributable to CSB storage (libcsb shows them too)")
	return r, nil
}

func speedupExperiment(cfg *Config, id, title string, kind SolverKind, defIters int) (*Report, error) {
	r := newReport(id, title, "Arch", "Matrix", "libcsr(ms)", "libcsb", "deepsparse", "hpx", "regent")
	specs, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	mc := newMatrixCache(cfg)
	iters := cfg.iters(defIters)
	type best struct{ ds, hpx, regent []float64 }
	perArch := map[string]*best{}
	for _, archName := range []string{"broadwell", "epyc"} {
		perArch[archName] = &best{}
		for _, s := range specs {
			vs, err := measureAllVersions(cfg, archName, kind, mc.get(s), iters)
			if err != nil {
				return nil, err
			}
			base := vs[0].timeNs
			row := []string{archName, s.Name, fmtMs(base)}
			for _, v := range vs[1:] {
				sp := base / v.timeNs
				row = append(row, fmtX(sp))
				r.Metrics[fmt.Sprintf("speedup/%s/%s/%s", archName, s.Name, v.name)] = sp
				b := perArch[archName]
				switch v.name {
				case "deepsparse":
					b.ds = append(b.ds, sp)
				case "hpx":
					b.hpx = append(b.hpx, sp)
				case "regent":
					b.regent = append(b.regent, sp)
				}
			}
			r.addRow(row...)
		}
	}
	for _, archName := range []string{"broadwell", "epyc"} {
		b := perArch[archName]
		r.Metrics["max/"+archName+"/deepsparse"] = maxOf(b.ds)
		r.Metrics["max/"+archName+"/hpx"] = maxOf(b.hpx)
		r.Metrics["max/"+archName+"/regent"] = maxOf(b.regent)
		r.note("%s geomean: deepsparse %.2fx, hpx %.2fx, regent %.2fx; max: %.1fx / %.1fx / %.1fx",
			archName, geoMean(b.ds), geoMean(b.hpx), geoMean(b.regent),
			maxOf(b.ds), maxOf(b.hpx), maxOf(b.regent))
	}
	return r, nil
}

func runFig9(cfg *Config) (*Report, error) {
	r, err := speedupExperiment(cfg, "fig9", "Lanczos speedup over libcsr", Lanczos, 5)
	if err != nil {
		return nil, err
	}
	r.note("paper shape: AMT gains modest on Broadwell (up to 2.3-4.3x), larger on EPYC (up to 6.5-9.9x); HPX > DeepSparse > Regent on average")
	return r, nil
}

func runFig11(cfg *Config) (*Report, error) {
	r := newReport("fig11", "LOBPCG on Broadwell: L1/L2/L3 misses normalized to libcsr",
		"Matrix", "Version", "L1/libcsr", "L2/libcsr", "L3/libcsr")
	specs, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	mc := newMatrixCache(cfg)
	iters := cfg.iters(3)
	var bestL1 float64 = 1
	for _, s := range specs {
		vs, err := measureAllVersions(cfg, "broadwell", LOBPCG, mc.get(s), iters)
		if err != nil {
			return nil, err
		}
		base := vs[0]
		for _, v := range vs[1:] {
			n1 := v.l1Miss / base.l1Miss
			n2 := v.l2Miss / base.l2Miss
			n3 := v.l3Miss / base.l3Miss
			r.addRow(s.Name, v.name, fmt.Sprintf("%.2f", n1), fmt.Sprintf("%.2f", n2), fmt.Sprintf("%.2f", n3))
			r.Metrics[fmt.Sprintf("l1/%s/%s", s.Name, v.name)] = n1
			r.Metrics[fmt.Sprintf("l2/%s/%s", s.Name, v.name)] = n2
			r.Metrics[fmt.Sprintf("l3/%s/%s", s.Name, v.name)] = n3
			if v.name != "libcsb" && n1 < bestL1 {
				bestL1 = n1
			}
		}
	}
	r.Metrics["best_l1_reduction"] = 1 / bestL1
	r.note("paper shape: AMT versions cut misses at every level (3-13.7x L1, 3.7-13.1x L2, 1.4-6.2x L3); libcsb stays near libcsr")
	return r, nil
}

func runFig12(cfg *Config) (*Report, error) {
	r, err := speedupExperiment(cfg, "fig12", "LOBPCG speedup over libcsr", LOBPCG, 3)
	if err != nil {
		return nil, err
	}
	r.note("paper shape: 1.8-3.0x (DeepSparse), 1.5-4.4x (HPX), 0.8-1.9x (Regent) on Broadwell; up to 5.5x/7.5x/2.3x on EPYC")
	return r, nil
}

// ------------------------------------------------------ flow-graph figures

func flowGraphExperiment(cfg *Config, id, title string, kind SolverKind, iters int) (*Report, error) {
	r := newReport(id, title, "Version", "Makespan(ms)", "KernelOverlap", "Kernels")
	mach, err := scaledMachine("broadwell", cfg.Preset)
	if err != nil {
		return nil, err
	}
	name := "nlpkkt240"
	if len(cfg.Matrices) > 0 {
		name = cfg.Matrices[0]
	}
	spec, err := matgen.SpecByName(name)
	if err != nil {
		return nil, err
	}
	coo := spec.Build(cfg.Preset, cfg.Seed)
	for _, vname := range []string{"libcsr", "deepsparse", "hpx"} {
		v, err := VersionByName(vname)
		if err != nil {
			return nil, err
		}
		g, err := buildGraph(coo, kind, v.BlockCount(mach, coo.Rows), graph.DefaultOptions(), false)
		if err != nil {
			return nil, err
		}
		rec := trace.NewRecorder(mach.Cores)
		t, _, err := simMeasure(mach, v.Policy(mach, cfg.Preset.OverheadScale()), g, cfg.iters(iters), true, rec)
		if err != nil {
			return nil, err
		}
		ov := rec.PipelineOverlap()
		r.addRow(vname, fmtMs(t*float64(cfg.iters(iters))), fmt.Sprintf("%.2f", ov), fmt.Sprintf("%d", len(rec.KernelSpans())))
		r.Metrics["overlap/"+vname] = ov
		r.note("---- %s flow graph (%s, %s) ----", vname, name, mach.Name)
		var b strings.Builder
		if err := rec.RenderASCII(&b, 96); err != nil {
			return nil, err
		}
		for _, line := range strings.Split(strings.TrimRight(b.String(), "\n"), "\n") {
			r.note("%s", line)
		}
	}
	r.note("paper shape: BSP shows barrier-separated kernel bands; AMT versions pipeline kernels (overlap > BSP), HPX more shuffled than DeepSparse")
	return r, nil
}

func runFig10(cfg *Config) (*Report, error) {
	return flowGraphExperiment(cfg, "fig10", "Lanczos execution flow graph", Lanczos, 3)
}

func runFig13(cfg *Config) (*Report, error) {
	return flowGraphExperiment(cfg, "fig13", "LOBPCG execution flow graph", LOBPCG, 2)
}

// ---------------------------------------------------------------- Fig. 14

// blockBins are the six block-count bins of §5.4, represented by their
// geometric midpoints.
var blockBins = []struct {
	Label string
	Count int
}{
	{"8-15", 11},
	{"16-31", 23},
	{"32-63", 45},
	{"64-127", 90},
	{"128-255", 181},
	{"256-511", 362},
}

func runFig14(cfg *Config) (*Report, error) {
	r := newReport("fig14", "Performance profiles of block-count bins (LOBPCG)",
		"Arch", "Runtime", "Bin", "ρ(1.0)", "ρ(1.15)", "ρ(1.5)", "ρ(2.0)", "AUC")
	specs, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	mc := newMatrixCache(cfg)
	iters := cfg.iters(2)
	amts := []string{"deepsparse", "hpx", "regent"}
	for _, archName := range []string{"broadwell", "epyc"} {
		mach, err := scaledMachine(archName, cfg.Preset)
		if err != nil {
			return nil, err
		}
		for _, vname := range amts {
			v, err := VersionByName(vname)
			if err != nil {
				return nil, err
			}
			var names []string
			for _, s := range specs {
				names = append(names, s.Name)
			}
			var labels []string
			for _, b := range blockBins {
				labels = append(labels, b.Label)
			}
			tab := perfprofile.NewTable(labels, names)
			for bi, bin := range blockBins {
				for ki, s := range specs {
					coo := mc.get(s)
					g, err := buildGraph(coo, LOBPCG, bin.Count, graph.DefaultOptions(), false)
					if err != nil {
						return nil, err
					}
					t, _, err := simMeasure(mach, v.Policy(mach, cfg.Preset.OverheadScale()), g, iters, true, nil)
					if err != nil {
						return nil, err
					}
					tab.Set(bi, ki, t)
				}
			}
			profiles, err := perfprofile.Compute(tab)
			if err != nil {
				return nil, err
			}
			bestAUC, bestBin := -1.0, ""
			for _, p := range profiles {
				auc := p.AUC(2.0)
				r.addRow(archName, vname, p.Config,
					fmt.Sprintf("%.2f", p.Rho(1.0)), fmt.Sprintf("%.2f", p.Rho(1.15)),
					fmt.Sprintf("%.2f", p.Rho(1.5)), fmt.Sprintf("%.2f", p.Rho(2.0)),
					fmt.Sprintf("%.3f", auc))
				r.Metrics[fmt.Sprintf("auc/%s/%s/%s", archName, vname, p.Config)] = auc
				if auc > bestAUC {
					bestAUC, bestBin = auc, p.Config
				}
			}
			r.Metrics[fmt.Sprintf("bestbin/%s/%s", archName, vname)] = float64(indexOfBin(bestBin))
			r.note("%s/%s best bin: %s", archName, vname, bestBin)
		}
	}
	r.note("paper shape: DeepSparse best at 32-63 (Broadwell) / 64-127 (EPYC); HPX at 64-127; Regent prefers coarse 16-31 and collapses beyond 64")
	return r, nil
}

func indexOfBin(label string) int {
	for i, b := range blockBins {
		if b.Label == label {
			return i
		}
	}
	return -1
}

// ---------------------------------------------------------------- §5.4 sweep

func runHeuristic(cfg *Config) (*Report, error) {
	r := newReport("heuristic", "Block-count sweep: scheduling overhead vs parallelism",
		"Runtime", "BlockCount", "Tasks/iter", "Time(ms)")
	mach, err := scaledMachine("broadwell", cfg.Preset)
	if err != nil {
		return nil, err
	}
	name := "nlpkkt160"
	if len(cfg.Matrices) > 0 {
		name = cfg.Matrices[0]
	}
	spec, err := matgen.SpecByName(name)
	if err != nil {
		return nil, err
	}
	coo := spec.Build(cfg.Preset, cfg.Seed)
	iters := cfg.iters(2)
	counts := []int{4, 8, 16, 32, 64, 128, 256, 512}
	for _, vname := range []string{"deepsparse", "regent"} {
		v, err := VersionByName(vname)
		if err != nil {
			return nil, err
		}
		bestT, bestC := -1.0, 0
		for _, c := range counts {
			if c > coo.Rows {
				continue
			}
			g, err := buildGraph(coo, LOBPCG, c, graph.DefaultOptions(), false)
			if err != nil {
				return nil, err
			}
			t, _, err := simMeasure(mach, v.Policy(mach, cfg.Preset.OverheadScale()), g, iters, true, nil)
			if err != nil {
				return nil, err
			}
			r.addRow(vname, fmt.Sprintf("%d", c), fmt.Sprintf("%d", len(g.Tasks)), fmtMs(t))
			r.Metrics[fmt.Sprintf("time/%s/%d", vname, c)] = t
			if bestT < 0 || t < bestT {
				bestT, bestC = t, c
			}
		}
		r.Metrics["best/"+vname] = float64(bestC)
		r.note("%s optimal block count: %d (paper: optimum always lands in [8, 511])", vname, bestC)
	}
	return r, nil
}

// ---------------------------------------------------------------- headline

func runHeadline(cfg *Config) (*Report, error) {
	sub := *cfg
	if sub.MaxMatrices == 0 && len(sub.Matrices) == 0 {
		sub.MaxMatrices = 10
	}
	fig9, err := runFig9(&sub)
	if err != nil {
		return nil, err
	}
	fig12, err := runFig12(&sub)
	if err != nil {
		return nil, err
	}
	fig11, err := runFig11(&sub)
	if err != nil {
		return nil, err
	}
	r := newReport("headline", "Headline results (paper abstract analog)", "Metric", "Paper", "Measured")
	lz := maxOf([]float64{fig9.Metrics["max/epyc/deepsparse"], fig9.Metrics["max/epyc/hpx"], fig9.Metrics["max/broadwell/hpx"]})
	lob := maxOf([]float64{fig12.Metrics["max/epyc/deepsparse"], fig12.Metrics["max/epyc/hpx"], fig12.Metrics["max/broadwell/hpx"]})
	r.addRow("max Lanczos speedup over libcsr", "9.9x", fmtX(lz))
	r.addRow("max LOBPCG speedup over libcsr", "7.5x", fmtX(lob))
	r.addRow("max LOBPCG L1-miss reduction", "13.7x", fmtX(fig11.Metrics["best_l1_reduction"]))
	r.Metrics["lanczos_max"] = lz
	r.Metrics["lobpcg_max"] = lob
	r.Metrics["l1_reduction_max"] = fig11.Metrics["best_l1_reduction"]
	r.note("absolute factors depend on the scaled suite; the claim reproduced is the ordering (AMT >> BSP, EPYC > Broadwell) and magnitudes within a small factor")
	return r, nil
}

func maxOf(vs []float64) float64 {
	m := 0.0
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}
