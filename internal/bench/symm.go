package bench

import (
	"context"
	"fmt"
	"time"

	"sparsetask/internal/matgen"
	"sparsetask/internal/roofline"
	"sparsetask/internal/rt"
	"sparsetask/internal/solver"
	"sparsetask/internal/sparse"
)

// runSymm measures what symmetry-exploiting SymCSB storage buys over the
// general CSB path, executing for real (not simulated): the sequential SpMV
// kernels head to head, and a fixed-work Lanczos run per storage format on
// the DeepSparse backend so the speedup includes the conflict-free task
// scheduling (waves or private accumulators), not just the kernel bodies.
// Alongside the timings it reports the roofline byte model's view — the
// stored/full nonzero ratio and the modeled SpMV traffic ratio — which is the
// quantity the PR-8 acceptance bound (matrix bytes ≤ ~0.55 of general) is
// stated over.
//
// Workloads are the preset-scaled seeded SPD Laplacians (the pcg experiment's
// sizing) plus symmetric suite matrices (default: the nlpkkt160 KKT analog;
// override with -matrices). Asymmetric selections are reported and skipped
// rather than failing the run.
func runSymm(cfg *Config) (*Report, error) {
	r := newReport("symm", "symmetric (SymCSB) vs general storage: measured speedup and streamed matrix bytes",
		"matrix", "n", "nnz", "stored", "mat ratio", "SpMV model", "SpMV", "Lanczos", "schedule")

	type workload struct {
		name string
		coo  *sparse.COO
	}
	var loads []workload
	// SPD Laplacian sizes scale with the preset, mirroring the pcg experiment.
	const maxRows = 120_000
	var sizes []int
	for _, mult := range []int{4, 16, 64} {
		n := mult * cfg.Preset.MinRows
		if n > maxRows {
			n = maxRows
		}
		if len(sizes) == 0 || n != sizes[len(sizes)-1] {
			sizes = append(sizes, n)
		}
	}
	for _, n := range sizes {
		loads = append(loads, workload{fmt.Sprintf("spd_laplace_%d", n), matgen.SPDLaplacian(n, cfg.Seed)})
	}
	names := cfg.Matrices
	if len(names) == 0 {
		names = []string{"nlpkkt160"}
	}
	for _, name := range names {
		spec, err := matgen.SpecByName(name)
		if err != nil {
			return nil, err
		}
		loads = append(loads, workload{name, spec.Build(cfg.Preset, cfg.Seed)})
	}

	rtm := rt.NewDeepSparse(rt.Options{})
	lanczosK := cfg.iters(12)
	for _, wl := range loads {
		coo := wl.coo
		n := coo.Rows
		// Same block-sizing rule as the pcg experiment: ~96 row bands, at
		// least 64 rows each, so tiles carry real per-task work.
		block := (n + 95) / 96
		if block < 64 {
			block = 64
		}
		sym, err := coo.ToSymCSB(block)
		if err == sparse.ErrNotSymmetric {
			r.note("%s: not symmetric, skipped", wl.name)
			continue
		} else if err != nil {
			return nil, fmt.Errorf("symm: %s: %w", wl.name, err)
		}
		csb := coo.ToCSB(block)

		// Kernel head-to-head: the sequential reference SpMVs, identical
		// except for storage format.
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = 1 + float64(i%7)*0.25
		}
		genNs := timePerOp(func() { csb.SpMV(y, x) })
		symNs := timePerOp(func() { sym.SpMV(y, x) })

		// Solver head-to-head: k Lanczos iterations per storage format on a
		// real backend, so the symmetric path's wave/accumulator task
		// scheduling is part of what is timed. Fixed-iteration work, so the
		// comparison holds for indefinite matrices (the KKT analogs) too.
		genSolve, err := timeLanczos(csb, rtm, lanczosK, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("symm: %s general: %w", wl.name, err)
		}
		symSolve, err := timeLanczos(sym, rtm, lanczosK, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("symm: %s symmetric: %w", wl.name, err)
		}

		matRatio := roofline.MatrixBytesRatio(sym.NNZ(), coo.NNZ())
		spmvRatio := float64(roofline.SymSpMVBytes(n, n, sym.NNZ())) /
			float64(roofline.SpMVBytes(n, n, coo.NNZ()))
		sched := fmt.Sprintf("%d waves", sym.Sched.NumWaves)
		if sym.Sched.Fallback {
			sched = fmt.Sprintf("acc x%d", sym.Sched.Groups)
		}
		r.addRow(wl.name, fmt.Sprintf("%d", n), fmt.Sprintf("%d", coo.NNZ()),
			fmt.Sprintf("%d", sym.NNZ()),
			fmt.Sprintf("%.2f", matRatio), fmt.Sprintf("%.2f", spmvRatio),
			fmtX(genNs/symNs), fmtX(genSolve/symSolve), sched)
		r.Metrics["bytes_ratio/"+wl.name] = matRatio
		r.Metrics["spmv_model_ratio/"+wl.name] = spmvRatio
		r.Metrics["spmv_speedup/"+wl.name] = genNs / symNs
		r.Metrics["lanczos_speedup/"+wl.name] = genSolve / symSolve
	}
	r.note("mat ratio = stored/full nnz (the streamed matrix bytes vs general; acceptance <= ~0.55); SpMV model adds the vector traffic")
	r.note("SpMV = sequential kernel speedup; Lanczos = %d fixed iterations on exec/deepsparse incl. wave/accumulator scheduling", lanczosK)
	return r, nil
}

// timePerOp measures f's wall time per call: one untimed warmup, then
// repetitions until ~25ms have elapsed.
func timePerOp(f func()) float64 {
	f()
	start := time.Now()
	reps := 0
	for time.Since(start) < 25*time.Millisecond {
		f()
		reps++
	}
	return float64(time.Since(start).Nanoseconds()) / float64(reps)
}

// timeLanczos runs k Lanczos iterations of a on rtm and returns the wall
// nanoseconds per iteration (one untimed warmup run pays setup and paging).
func timeLanczos(a sparse.Matrix, rtm rt.Runtime, k int, seed int64) (float64, error) {
	l, err := solver.NewLanczos(a, k)
	if err != nil {
		return 0, err
	}
	l.Tol = 0 // fixed work: never stop early on invariant-subspace luck
	if _, err := l.Run(context.Background(), rtm, seed); err != nil {
		return 0, err
	}
	start := time.Now()
	if _, err := l.Run(context.Background(), rtm, seed); err != nil {
		return 0, err
	}
	return float64(time.Since(start).Nanoseconds()) / float64(k), nil
}
