// Package bench is the experiment harness: one Experiment per table or
// figure of the paper's evaluation section, each regenerating the same rows
// or series on the scaled synthetic suite via the discrete-event simulator.
//
// Five solver versions are compared, mirroring the paper's §5:
//
//	libcsr     — BSP over MKL-style thread chunking (block = m/workers)
//	libcsb     — BSP over CSB tiles
//	deepsparse — OpenMP-task style (LIFO + stealing)
//	hpx        — futures/dataflow style (FIFO + NUMA-aware hints)
//	regent     — region/privilege style (serial analysis pipeline)
//
// Each version runs at its §5.4 per-architecture block-count sweet spot.
package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"sparsetask/internal/cachesim"
	"sparsetask/internal/graph"
	"sparsetask/internal/machine"
	"sparsetask/internal/matgen"
	"sparsetask/internal/program"
	"sparsetask/internal/sim"
	"sparsetask/internal/solver"
	"sparsetask/internal/sparse"
	"sparsetask/internal/trace"
)

// Config selects scale and scope for an experiment run.
type Config struct {
	Preset matgen.Preset
	Seed   int64
	// Iterations per solver run; 0 selects per-experiment defaults.
	Iterations int
	// Matrices filters the suite by name; empty means the experiment's
	// default subset.
	Matrices []string
	// MaxMatrices caps suite size (0 = no cap); useful for quick runs.
	MaxMatrices int
	Out         io.Writer
}

func (c *Config) out() io.Writer {
	if c.Out == nil {
		return io.Discard
	}
	return c.Out
}

func (c *Config) iters(def int) int {
	if c.Iterations > 0 {
		return c.Iterations
	}
	return def
}

// suite returns the selected matrix specs.
func (c *Config) suite() ([]matgen.Spec, error) {
	all := matgen.Suite()
	if len(c.Matrices) > 0 {
		var out []matgen.Spec
		for _, name := range c.Matrices {
			s, err := matgen.SpecByName(name)
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		}
		return out, nil
	}
	if c.MaxMatrices > 0 && c.MaxMatrices < len(all) {
		all = all[:c.MaxMatrices]
	}
	return all, nil
}

// Report is the structured output of an experiment: a printable table plus
// named metrics for tests and the headline summary.
type Report struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
	Metrics map[string]float64
}

func newReport(id, title string, cols ...string) *Report {
	return &Report{ID: id, Title: title, Columns: cols, Metrics: map[string]float64{}}
}

func (r *Report) addRow(cells ...string) { r.Rows = append(r.Rows, cells) }

func (r *Report) note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Write renders the report as an aligned text table.
func (r *Report) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) {
				for p := len(cell); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(r.Columns)); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Experiment regenerates one paper table or figure.
type Experiment struct {
	ID    string
	Paper string
	Desc  string
	Run   func(cfg *Config) (*Report, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table 1", "matrix suite (scaled synthetic analogs)", runTable1},
		{"fig3", "Fig. 3", "task graph of the Listing 1 pseudocode (DOT)", runFig3},
		{"fig5", "Fig. 5", "first-touch placement, DeepSparse Lanczos on EPYC", runFig5},
		{"fig6", "Fig. 6", "skipping empty tasks, HPX Lanczos on Broadwell", runFig6},
		{"fig7", "Fig. 7", "reduce- vs dependency-based SpMM, Regent LOBPCG on Broadwell", runFig7},
		{"fig8", "Fig. 8", "L1/L2 misses of Lanczos versions on EPYC (vs libcsr)", runFig8},
		{"fig9", "Fig. 9", "Lanczos speedup over libcsr on Broadwell and EPYC", runFig9},
		{"fig10", "Fig. 10", "Lanczos execution flow graph (nlpkkt240 analog)", runFig10},
		{"fig11", "Fig. 11", "L1/L2/L3 misses of LOBPCG versions on Broadwell (vs libcsr)", runFig11},
		{"fig12", "Fig. 12", "LOBPCG speedup over libcsr on Broadwell and EPYC", runFig12},
		{"fig13", "Fig. 13", "LOBPCG execution flow graph (nlpkkt240 analog)", runFig13},
		{"fig14", "Fig. 14", "performance profiles of block-count bins (LOBPCG)", runFig14},
		{"heuristic", "§5.4", "block-size sweep: tasking overhead vs parallelism", runHeuristic},
		{"pcg", "§4+", "IC(0)-preconditioned CG vs CG: iterations and level-DAG shape", runPCG},
		{"batch", "§4+", "multi-RHS batched CG vs sequential single-RHS solves (coalescer payoff)", runBatch},
		{"symm", "§5+", "symmetric (SymCSB) vs general storage: speedup and streamed matrix bytes", runSymm},
		{"locality", "§5.2", "hierarchical vs uniform-random stealing: locality and LLC misses", runLocality},
		{"ablation", "§5.1", "scheduling ablations: HPX NUMA hints, Regent tracing, depth-first bias", runAblation},
		{"futurework", "§6", "distributed memory: hpx-dist vs mpi+omp over 1-8 nodes", runFutureWork},
		{"headline", "Abstract", "headline speedups and cache-miss reductions", runHeadline},
	}
}

// ByID resolves an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}

// ---------------------------------------------------------------- versions

// Version is one of the five solver implementations under comparison.
type Version struct {
	Name string
	// BlockCount returns the per-dimension tile count this version uses on
	// the given machine for a matrix with `rows` rows: the §5.4 sweet spots,
	// clamped so chunks keep a minimum work granularity on the smallest
	// matrices (the paper tunes per matrix; this is the same adjustment).
	BlockCount func(mach machine.Model, rows int) int
	// Policy builds the simulator scheduling policy with the preset's
	// overhead scale.
	Policy func(mach machine.Model, scale float64) sim.Policy
	// ReduceSpMM switches the SpMM task pattern (fig7 ablation only).
	ReduceSpMM bool
}

// Versions returns the five versions in the paper's plotting order.
func Versions() []Version {
	return []Version{
		{
			Name:       "libcsr",
			BlockCount: func(m machine.Model, rows int) int { return m.Cores },
			Policy: func(m machine.Model, scale float64) sim.Policy {
				p := sim.NewBSP(m.Cores)
				p.Scale = scale
				return p
			},
		},
		{
			Name:       "libcsb",
			BlockCount: func(m machine.Model, rows int) int { return clampBC(2*m.Cores, rows) },
			Policy: func(m machine.Model, scale float64) sim.Policy {
				p := sim.NewBSP(m.Cores)
				p.Scale = scale
				return p
			},
		},
		{
			Name: "deepsparse",
			BlockCount: func(m machine.Model, rows int) int {
				if m.Cores > 64 {
					return clampBC(96, rows) // EPYC sweet spot 64-127
				}
				return clampBC(48, rows) // Broadwell sweet spot 32-63
			},
			Policy: func(m machine.Model, scale float64) sim.Policy {
				p := sim.NewDeepSparse(m.Cores)
				p.Scale = scale
				return p
			},
		},
		{
			Name:       "hpx",
			BlockCount: func(m machine.Model, rows int) int { return clampBC(96, rows) }, // 64-127 on both
			Policy: func(m machine.Model, scale float64) sim.Policy {
				p := sim.NewHPX(m.Cores, m.NUMADomains, true)
				p.Scale = scale
				return p
			},
		},
		{
			Name:       "regent",
			BlockCount: func(m machine.Model, rows int) int { return clampBC(24, rows) }, // 16-31 on both
			Policy: func(m machine.Model, scale float64) sim.Policy {
				// -ll:cpu 24 -ll:util 4 on Broadwell; 110+18 on EPYC.
				util := m.Cores / 7
				if util < 1 {
					util = 1
				}
				p := sim.NewRegent(m.Cores-util, util, false)
				p.Scale = scale
				return p
			},
		},
	}
}

// clampBC keeps at least minChunkRows rows per chunk so the smallest scaled
// matrices are not over-decomposed past the point any real tuning would
// allow, while never dropping below the paper's minimum useful count of 8.
func clampBC(sweet, rows int) int {
	const minChunkRows = 64
	maxBC := rows / minChunkRows
	if maxBC < 8 {
		maxBC = 8
	}
	if sweet > maxBC {
		return maxBC
	}
	return sweet
}

// VersionByName resolves a version.
func VersionByName(name string) (Version, error) {
	for _, v := range Versions() {
		if v.Name == name {
			return v, nil
		}
	}
	return Version{}, fmt.Errorf("bench: unknown version %q", name)
}

// ---------------------------------------------------------------- plumbing

// SolverKind selects the benchmark application.
type SolverKind int

// The two benchmark applications of §4.
const (
	Lanczos SolverKind = iota
	LOBPCG
)

func (k SolverKind) String() string {
	if k == Lanczos {
		return "lanczos"
	}
	return "lobpcg"
}

// buildGraph constructs the per-iteration TDG of a solver over matrix coo
// tiled to the given block count.
func buildGraph(coo *sparse.COO, k SolverKind, blockCount int, opt graph.Options, reduceSpMM bool) (*graph.TDG, error) {
	if blockCount < 1 {
		blockCount = 1
	}
	block := (coo.Rows + blockCount - 1) / blockCount
	csb := coo.ToCSB(block)
	switch k {
	case Lanczos:
		l, err := solver.NewLanczos(csb, 10)
		if err != nil {
			return nil, err
		}
		g := l.Graph()
		// Options holds maps now, so compare the only field ablations vary.
		if !opt.SkipEmpty || reduceSpMM {
			return rebuild(l.Program(), l.Graph(), csb, opt, reduceSpMM)
		}
		return g, nil
	case LOBPCG:
		l, err := solver.NewLOBPCG(csb, 8)
		if err != nil {
			return nil, err
		}
		if !opt.SkipEmpty || reduceSpMM {
			return rebuild(l.Program(), l.Graph(), csb, opt, reduceSpMM)
		}
		return l.Graph(), nil
	}
	return nil, fmt.Errorf("bench: unknown solver %v", k)
}

// rebuild regenerates a TDG with non-default options, optionally switching
// every SpMM call to the reduce-based pattern.
func rebuild(p *program.Program, g *graph.TDG, csb *sparse.CSB, opt graph.Options, reduceSpMM bool) (*graph.TDG, error) {
	if reduceSpMM {
		for i := range p.Calls {
			if p.Calls[i].Kind == program.CSpMM {
				p.Calls[i].ReduceSpMM = true
				p.Calls[i].Name = "SpMM-red"
			}
		}
	}
	mats := map[program.OperandID]*sparse.CSB{}
	for id := range g.Mats {
		mats[id] = csb
	}
	return graph.Build(p, mats, opt)
}

// simMeasure runs `iters` iterations of g on a fresh simulator and returns
// the average per-iteration time (ns) and counters accumulated over the
// measured iterations. One warmup iteration (cold caches, like the paper's
// excluded setup) runs first and is not counted.
func simMeasure(mach machine.Model, pol sim.Policy, g *graph.TDG, iters int, firstTouch bool, rec *trace.Recorder) (float64, cachesim.Counters, error) {
	s := sim.New(mach, firstTouch)
	if firstTouch {
		s.PlaceFirstTouch(g, pol.Workers())
	} else {
		s.PlaceSerial(g)
	}
	if _, err := s.Run(g, pol, nil); err != nil { // warmup
		return 0, cachesim.Counters{}, err
	}
	var total int64
	var ctr cachesim.Counters
	for i := 0; i < iters; i++ {
		r, err := s.Run(g, pol, rec)
		if err != nil {
			return 0, cachesim.Counters{}, err
		}
		total += r.MakespanNs
		ctr.Add(r.Counters)
	}
	return float64(total) / float64(iters), ctr, nil
}

// scaledMachine returns the machine model adapted to the preset: caches
// shrunk by CacheDiv and the machine uniformly slowed by SlowDown so task
// compute time keeps the paper's ratio to runtime overheads.
func scaledMachine(name string, p matgen.Preset) (machine.Model, error) {
	m, err := machine.ByName(name)
	if err != nil {
		return m, err
	}
	return m.Scaled(p.CacheDiv).SlowDown(p.SlowDown), nil
}

// fmtX formats a speedup like the paper ("3.1x").
func fmtX(v float64) string { return fmt.Sprintf("%.2fx", v) }

// fmtMs formats nanoseconds as milliseconds.
func fmtMs(ns float64) string { return fmt.Sprintf("%.3f", ns/1e6) }

// geoMean returns the geometric mean of vs (which must be positive).
func geoMean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vs)))
}

// sortedKeys returns map keys sorted, for deterministic metric printing.
func sortedKeys(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
