package bench

import (
	"fmt"

	"sparsetask/internal/graph"
	"sparsetask/internal/sim"
)

// runAblation regenerates the paper's §5.1 "Other Attempts" findings plus
// the scheduling-discipline ablation called out in DESIGN.md:
//
//   - HPX NUMA-aware scheduling hints on vs off (paper: ~50% better on EPYC
//     with its 8 NUMA domains; little effect on Broadwell);
//   - Regent dynamic tracing on vs off (paper: no significant improvement);
//   - DeepSparse LIFO (depth-first) vs FIFO local queues (the depth-first
//     bias is what produces the pipelined cache reuse).
func runAblation(cfg *Config) (*Report, error) {
	r := newReport("ablation", "Scheduling ablations (§5.1 'Other Attempts' + design choices)",
		"Ablation", "Arch", "Matrix", "off (ms)", "on (ms)", "Speedup")
	specs, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	if len(cfg.Matrices) == 0 && len(specs) > 4 {
		specs = specs[:4]
	}
	mc := newMatrixCache(cfg)
	iters := cfg.iters(3)
	scale := cfg.Preset.OverheadScale()

	type variant struct {
		name string
		arch string
		off  func(cores, domains int) sim.Policy
		on   func(cores, domains int) sim.Policy
	}
	variants := []variant{
		{
			name: "hpx-numa",
			arch: "epyc",
			off: func(c, d int) sim.Policy {
				p := sim.NewHPX(c, d, false)
				p.Scale = scale
				return p
			},
			on: func(c, d int) sim.Policy {
				p := sim.NewHPX(c, d, true)
				p.Scale = scale
				return p
			},
		},
		{
			name: "regent-tracing",
			arch: "broadwell",
			off: func(c, d int) sim.Policy {
				p := sim.NewRegent(c-c/7, c/7, false)
				p.Scale = scale
				return p
			},
			on: func(c, d int) sim.Policy {
				p := sim.NewRegent(c-c/7, c/7, true)
				p.Scale = scale
				return p
			},
		},
		{
			name: "ds-depthfirst",
			arch: "broadwell",
			// "off" approximates FIFO local queues via the HPX policy with a
			// single domain and no placement hints; "on" is the LIFO
			// DeepSparse policy.
			off: func(c, d int) sim.Policy {
				p := sim.NewHPX(c, 1, false)
				p.Scale = scale
				return p
			},
			on: func(c, d int) sim.Policy {
				p := sim.NewDeepSparse(c)
				p.Scale = scale
				return p
			},
		},
	}

	// Task fusion: an extension ablation — fusing elementwise chains trims
	// scheduling overhead without losing parallelism.
	{
		mach, err := scaledMachine("broadwell", cfg.Preset)
		if err != nil {
			return nil, err
		}
		var ratios []float64
		for _, s := range specs {
			coo := mc.get(s)
			bc := clampBC(96, coo.Rows)
			g, err := buildGraph(coo, LOBPCG, bc, graph.DefaultOptions(), false)
			if err != nil {
				return nil, err
			}
			fused := graph.Fuse(g)
			mk := func() sim.Policy {
				p := sim.NewDeepSparse(mach.Cores)
				p.Scale = scale
				return p
			}
			tOff, _, err := simMeasure(mach, mk(), g, iters, true, nil)
			if err != nil {
				return nil, err
			}
			tOn, _, err := simMeasure(mach, mk(), fused, iters, true, nil)
			if err != nil {
				return nil, err
			}
			sp := tOff / tOn
			ratios = append(ratios, sp)
			r.addRow("task-fusion", "broadwell", s.Name, fmtMs(tOff), fmtMs(tOn), fmtX(sp))
			r.Metrics[fmt.Sprintf("task-fusion/%s", s.Name)] = sp
		}
		r.Metrics["geomean/task-fusion"] = geoMean(ratios)
		r.note("task-fusion geomean: %s", fmtX(geoMean(ratios)))
	}

	for _, v := range variants {
		mach, err := scaledMachine(v.arch, cfg.Preset)
		if err != nil {
			return nil, err
		}
		var ratios []float64
		for _, s := range specs {
			coo := mc.get(s)
			bc := clampBC(96, coo.Rows)
			g, err := buildGraph(coo, LOBPCG, bc, graph.DefaultOptions(), false)
			if err != nil {
				return nil, err
			}
			tOff, _, err := simMeasure(mach, v.off(mach.Cores, mach.NUMADomains), g, iters, true, nil)
			if err != nil {
				return nil, err
			}
			tOn, _, err := simMeasure(mach, v.on(mach.Cores, mach.NUMADomains), g, iters, true, nil)
			if err != nil {
				return nil, err
			}
			sp := tOff / tOn
			ratios = append(ratios, sp)
			r.addRow(v.name, v.arch, s.Name, fmtMs(tOff), fmtMs(tOn), fmtX(sp))
			r.Metrics[fmt.Sprintf("%s/%s", v.name, s.Name)] = sp
		}
		r.Metrics["geomean/"+v.name] = geoMean(ratios)
		r.note("%s geomean: %s", v.name, fmtX(geoMean(ratios)))
	}
	r.note("paper: HPX NUMA hints ~+50%% on EPYC; Regent dynamic tracing no significant gain; depth-first bias is a DeepSparse design premise")
	return r, nil
}
