package bench

import (
	"context"
	"fmt"
	"time"

	"sparsetask/internal/matgen"
	"sparsetask/internal/rt"
	"sparsetask/internal/solver"
)

// runBatch measures what the serving layer's coalescer buys: k queued
// single-RHS CG jobs on the same matrix executed one after another versus
// the same k right-hand sides carried through one multi-RHS batched solve,
// where every SpMV becomes an SpMM that streams the matrix once for k
// columns. Real execution (not simulated) on the DeepSparse backend, matrix
// and tiling built once for both variants — exactly the state a warm shard
// shares across a coalesced batch, so the ratio isolates the solve itself.
// The headline metric is aggregate throughput (k jobs per wall-clock), the
// quantity the coalescer trades per-job latency against.
func runBatch(cfg *Config) (*Report, error) {
	const k = 4
	r := newReport("batch", fmt.Sprintf("multi-RHS batched CG (k=%d) vs %d sequential single-RHS solves", k, k),
		"n", "NNZ", "iters(1)", "iters(k)", "seq ms", "batch ms", "agg speedup")

	// Problem sizes scale with the preset, mirroring the pcg experiment.
	const maxRows = 120_000
	var sizes []int
	for _, mult := range []int{4, 16, 64} {
		n := mult * cfg.Preset.MinRows
		if n > maxRows {
			n = maxRows
		}
		if len(sizes) == 0 || n != sizes[len(sizes)-1] {
			sizes = append(sizes, n)
		}
	}

	// -iters pins both variants to a fixed iteration count (throughput mode,
	// free of convergence variance — what cmd/perfbench records); the default
	// converges each column at 1e-8 (the serving path's behavior).
	pinned := cfg.Iterations
	const tol = 1e-8
	rtm := rt.NewDeepSparse(rt.Options{})
	ctx := context.Background()
	var lastRatio float64
	for _, n := range sizes {
		coo := matgen.SPDLaplacian(n, cfg.Seed)
		// Same block-sizing rule as the pcg experiment: ~96 row bands of at
		// least 64 rows, so tiles carry real per-task work.
		block := (n + 95) / 96
		if block < 64 {
			block = 64
		}
		csb := coo.ToCSB(block)
		bs := make([][]float64, k)
		for j := range bs {
			bs[j] = solver.RandomRHS(n, cfg.Seed+int64(j)+1)
		}

		runSeq := func() (int, time.Duration, error) {
			start := time.Now()
			total := 0
			for _, b := range bs {
				cg, err := solver.NewCG(csb)
				if err != nil {
					return 0, 0, err
				}
				cg.Tol = tol
				if pinned > 0 {
					cg.MaxIter = pinned
					cg.Tol = 1e-300 // run the full fixed count
				}
				_, _, iters, err := cg.Solve(ctx, rtm, b)
				if err != nil && !(pinned > 0 && iters == pinned) {
					return 0, 0, fmt.Errorf("batch: sequential CG at n=%d: %w", n, err)
				}
				total += iters
			}
			return total, time.Since(start), nil
		}
		runBatched := func() (int, time.Duration, error) {
			start := time.Now()
			bcg, err := solver.NewBatchCG(csb, k)
			if err != nil {
				return 0, 0, err
			}
			bcg.Tol = tol
			if pinned > 0 {
				bcg.MaxIter = pinned
				bcg.Tol = 1e-300
			}
			cols, err := bcg.Solve(ctx, rtm, bs)
			if err != nil {
				return 0, 0, fmt.Errorf("batch: batched CG at n=%d: %w", n, err)
			}
			maxIters := 0
			for j, c := range cols {
				if pinned == 0 && !c.Converged {
					return 0, 0, fmt.Errorf("batch: column %d did not converge at n=%d (relres %.3e)", j, n, c.RelRes)
				}
				if c.Iterations > maxIters {
					maxIters = c.Iterations
				}
			}
			return maxIters, time.Since(start), nil
		}

		// One warmup of each variant (page-in, runtime spin-up), then best of
		// two timed reps — min is the standard noise filter for wall-clock.
		var seqIters, batIters int
		var seqBest, batBest time.Duration
		for rep := 0; rep < 3; rep++ {
			it, d, err := runSeq()
			if err != nil {
				return nil, err
			}
			if rep > 0 && (seqBest == 0 || d < seqBest) {
				seqIters, seqBest = it, d
			}
			it, d, err = runBatched()
			if err != nil {
				return nil, err
			}
			if rep > 0 && (batBest == 0 || d < batBest) {
				batIters, batBest = it, d
			}
		}

		ratio := seqBest.Seconds() / batBest.Seconds()
		lastRatio = ratio
		r.addRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", coo.NNZ()),
			fmt.Sprintf("%d", seqIters), fmt.Sprintf("%d", batIters),
			fmtMs(float64(seqBest.Nanoseconds())), fmtMs(float64(batBest.Nanoseconds())),
			fmtX(ratio))
		r.Metrics[fmt.Sprintf("seq_ms/%d", n)] = float64(seqBest.Nanoseconds()) / 1e6
		r.Metrics[fmt.Sprintf("batch_ms/%d", n)] = float64(batBest.Nanoseconds()) / 1e6
		r.Metrics[fmt.Sprintf("agg_speedup/%d", n)] = ratio
	}
	r.Metrics["agg_speedup_at_max_n"] = lastRatio
	r.Metrics["k"] = k
	r.note("acceptance shape: agg speedup >= 2x at the largest size — one matrix stream amortized over k columns")
	r.note("iters(1) sums the k single solves; iters(k) is the batched solve's slowest column")
	return r, nil
}
