package bench

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"sparsetask/internal/matgen"
)

// tinyCfg keeps experiment tests fast: tiny preset, 3-4 matrices, 1-2 iters.
func tinyCfg(matrices ...string) *Config {
	return &Config{
		Preset:     matgen.Tiny,
		Seed:       1,
		Iterations: 1,
		Matrices:   matrices,
	}
}

func TestAllExperimentsRegistered(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if ids[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
		if e.Run == nil || e.Paper == "" || e.Desc == "" {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	for _, want := range []string{"table1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "heuristic", "pcg", "symm", "batch", "headline"} {
		if !ids[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("ByID accepted unknown id")
	}
}

func TestVersionsComplete(t *testing.T) {
	vs := Versions()
	if len(vs) != 5 {
		t.Fatalf("%d versions, want 5", len(vs))
	}
	if vs[0].Name != "libcsr" {
		t.Fatalf("first version %s, want libcsr (normalization baseline)", vs[0].Name)
	}
	if _, err := VersionByName("hpx"); err != nil {
		t.Error(err)
	}
	if _, err := VersionByName("nope"); err == nil {
		t.Error("VersionByName accepted unknown name")
	}
}

func TestTable1(t *testing.T) {
	r, err := runTable1(tinyCfg("inline1", "nlpkkt160", "twitter7"))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(r.Rows))
	}
	if r.Metrics["rows/inline1"] <= 0 || r.Metrics["nnz/nlpkkt160"] <= 0 {
		t.Error("missing metrics")
	}
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "twitter7") {
		t.Errorf("render missing matrix name:\n%s", buf.String())
	}
}

func TestFig3DOT(t *testing.T) {
	r, err := runFig3(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["tasks"] != 16 {
		t.Errorf("fig3 tasks = %v, want 16", r.Metrics["tasks"])
	}
	joined := strings.Join(r.Notes, "\n")
	if !strings.Contains(joined, "digraph") {
		t.Error("fig3 notes missing DOT output")
	}
}

func TestFig5FirstTouchHelps(t *testing.T) {
	r, err := runFig5(tinyCfg("inline1", "nlpkkt160"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["geomean_speedup"] < 1.0 {
		t.Errorf("first touch should not slow things down: geomean %v", r.Metrics["geomean_speedup"])
	}
}

func TestFig6SkipEmptyHelps(t *testing.T) {
	// Banded matrices (KKT, CFD band) leave many off-band tiles empty at
	// HPX's block count; skipping them shortens the serial dataflow-spawn
	// pass.
	r, err := runFig6(tinyCfg("nlpkkt240", "twitter7"))
	if err != nil {
		t.Fatal(err)
	}
	// At the tiny smoke preset the scaled spawn costs are minute, so the
	// effect is weak; require skip to be at worst neutral here. The small
	// preset shows the paper's 1.1-2.5x (see EXPERIMENTS.md).
	if g := r.Metrics["geomean_speedup"]; g < 0.97 {
		t.Errorf("skipping empty tasks should not hurt: geomean %v", g)
	}
}

func TestFig7DependencyBeatsReduce(t *testing.T) {
	r, err := runFig7(tinyCfg("inline1", "nlpkkt160"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["geomean_speedup"] < 1.0 {
		t.Errorf("dependency-based should beat reduce-based: geomean %v", r.Metrics["geomean_speedup"])
	}
}

func TestFig9AMTBeatsBSP(t *testing.T) {
	r, err := runFig9(tinyCfg("nlpkkt160", "twitter7"))
	if err != nil {
		t.Fatal(err)
	}
	// The paper's central claim: DeepSparse and HPX beat libcsr on EPYC for
	// large/skewed matrices.
	for _, v := range []string{"deepsparse", "hpx"} {
		sp := r.Metrics["speedup/epyc/twitter7/"+v]
		if sp <= 1.0 {
			t.Errorf("%s speedup on epyc/twitter7 = %v, want > 1", v, sp)
		}
	}
}

func TestFig11AMTCutsMisses(t *testing.T) {
	r, err := runFig11(tinyCfg("inline1", "nlpkkt160"))
	if err != nil {
		t.Fatal(err)
	}
	// AMT versions should reduce L1 misses vs libcsr for LOBPCG (data-reuse
	// rich, and the BSP baseline pays library-kernel packing traffic); at
	// the larger presets L2 reductions appear as well.
	best := 1.0
	for k, v := range r.Metrics {
		if strings.HasPrefix(k, "l1/") && (strings.HasSuffix(k, "deepsparse") || strings.HasSuffix(k, "hpx")) {
			if v < best {
				best = v
			}
		}
	}
	if best >= 0.9 {
		t.Errorf("no AMT L1 miss reduction found (best normalized = %v)", best)
	}
}

func TestFig12Runs(t *testing.T) {
	r, err := runFig12(tinyCfg("nlpkkt160"))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 { // one matrix x two architectures
		t.Fatalf("%d rows, want 2", len(r.Rows))
	}
}

func TestFig10FlowGraph(t *testing.T) {
	cfg := tinyCfg("nlpkkt240")
	r, err := runFig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("%d versions, want 3", len(r.Rows))
	}
	// AMT overlap should exceed the barrier-separated BSP baseline.
	if r.Metrics["overlap/deepsparse"] <= r.Metrics["overlap/libcsr"] {
		t.Errorf("deepsparse overlap %v not above libcsr %v",
			r.Metrics["overlap/deepsparse"], r.Metrics["overlap/libcsr"])
	}
}

func TestFig14ProfilesAndRegentPreference(t *testing.T) {
	cfg := tinyCfg("inline1", "nlpkkt160", "twitter7")
	r, err := runFig14(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 2 arch x 3 runtimes x 6 bins rows.
	if len(r.Rows) != 36 {
		t.Fatalf("%d rows, want 36", len(r.Rows))
	}
	// Regent must prefer a coarser bin than DeepSparse on both archs
	// (paper: Regent 16-31 vs DeepSparse 32-127).
	for _, arch := range []string{"broadwell", "epyc"} {
		reg := r.Metrics["bestbin/"+arch+"/regent"]
		ds := r.Metrics["bestbin/"+arch+"/deepsparse"]
		if reg > ds {
			t.Errorf("%s: regent best bin %v coarser-than-deepsparse %v violated", arch, reg, ds)
		}
	}
}

func TestHeuristicOptimumInRange(t *testing.T) {
	r, err := runHeuristic(tinyCfg("nlpkkt160"))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"deepsparse", "regent"} {
		best := r.Metrics["best/"+v]
		if best < 8 || best > 511 {
			t.Errorf("%s optimal block count %v outside [8, 511]", v, best)
		}
	}
}

func TestHeadline(t *testing.T) {
	cfg := tinyCfg("nlpkkt160", "twitter7")
	r, err := runHeadline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["lanczos_max"] <= 0 || r.Metrics["lobpcg_max"] <= 0 {
		t.Errorf("headline metrics missing: %+v", r.Metrics)
	}
}

func TestConfigSuiteFilters(t *testing.T) {
	cfg := tinyCfg()
	cfg.MaxMatrices = 4
	specs, err := cfg.suite()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Fatalf("MaxMatrices ignored: %d", len(specs))
	}
	cfg2 := tinyCfg("nosuch")
	if _, err := cfg2.suite(); err == nil {
		t.Error("unknown matrix accepted")
	}
}

func TestReportWriteAlignment(t *testing.T) {
	r := newReport("x", "test", "A", "LongHeader")
	r.addRow("1", "2")
	r.addRow("333", "4")
	r.note("a note")
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "== x: test ==") || !strings.Contains(out, "# a note") {
		t.Errorf("bad render:\n%s", out)
	}
}

func TestAblation(t *testing.T) {
	r, err := runAblation(tinyCfg("nlpkkt160", "twitter7"))
	if err != nil {
		t.Fatal(err)
	}
	// Regent dynamic tracing: the paper found no significant improvement —
	// replay only cuts analysis cost, which the coarse Regent block counts
	// already keep off the critical path.
	if g := r.Metrics["geomean/regent-tracing"]; g < 0.95 || g > 1.3 {
		t.Errorf("regent tracing geomean %v, want ~1.0 (no significant effect)", g)
	}
	// Depth-first (LIFO) local queues are a DeepSparse design premise; the
	// ablation must not show them losing.
	if g := r.Metrics["geomean/ds-depthfirst"]; g < 0.97 {
		t.Errorf("depth-first bias geomean %v, should not lose to FIFO", g)
	}
}

func TestFutureWorkHPXDistWins(t *testing.T) {
	r, err := runFutureWork(tinyCfg("nlpkkt240"))
	if err != nil {
		t.Fatal(err)
	}
	// The asynchronous model must clearly win where communication dominates:
	// LOBPCG's many kernels mean many MPI barriers per iteration. (At tiny
	// scale, latency-bound Lanczos can cross over at low node counts —
	// fine-grained messaging has real costs — so only its 8-node point is
	// asserted.)
	for _, nodes := range []int{2, 4, 8} {
		if ratio := r.Metrics[fmtRatioKey(LOBPCG, nodes)]; ratio > 1.0 {
			t.Errorf("lobpcg at %d nodes: hpx/mpi ratio %v > 1", nodes, ratio)
		}
	}
	if ratio := r.Metrics[fmtRatioKey(Lanczos, 8)]; ratio > 1.0 {
		t.Errorf("lanczos at 8 nodes: hpx/mpi ratio %v > 1", ratio)
	}
}

func fmtRatioKey(k SolverKind, nodes int) string {
	if k == Lanczos {
		return "ratio/lanczos/" + itoa(nodes)
	}
	return "ratio/lobpcg/" + itoa(nodes)
}

func itoa(n int) string {
	switch n {
	case 1:
		return "1"
	case 2:
		return "2"
	case 4:
		return "4"
	case 8:
		return "8"
	}
	return "?"
}

func TestPCGExperiment(t *testing.T) {
	r, err := runPCG(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows, want 3 sizes at tiny preset", len(r.Rows))
	}
	// The preconditioner's payoff grows with problem size; even at the tiny
	// preset's largest size the iteration ratio must clearly beat 2x (the
	// acceptance 3x is asserted at n=100k in internal/solver).
	if ratio := r.Metrics["ratio_at_max_n"]; ratio < 2 {
		t.Errorf("PCG iteration ratio %v at max size, want >= 2", ratio)
	}
	for k, v := range r.Metrics {
		if strings.HasPrefix(k, "levels/") && v < 2 {
			t.Errorf("%s = %v, want a multi-level forward solve", k, v)
		}
	}
}

func TestBatchExperiment(t *testing.T) {
	cfg := tinyCfg()
	cfg.Iterations = 30 // pinned throughput mode: fast and convergence-free
	r, err := runBatch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows, want 3 sizes at tiny preset", len(r.Rows))
	}
	// The batched solve streams the matrix once for k columns, so it can
	// never be slower in aggregate; the full >= 2x acceptance figure is
	// recorded by cmd/perfbench at fixed iteration counts, where convergence
	// variance can't blur it. Here assert a clear win at the largest size.
	if ratio := r.Metrics["agg_speedup_at_max_n"]; ratio < 1.2 {
		t.Errorf("batched aggregate speedup %v at max size, want >= 1.2", ratio)
	}
}

func TestSymmExperiment(t *testing.T) {
	cfg := tinyCfg("nlpkkt160")
	cfg.Iterations = 4
	r, err := runSymm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 3 SPD Laplacian sizes + nlpkkt160 (both schedule modes appear: the
	// banded Laplacians color into waves, the tiny KKT falls back to
	// accumulators).
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows, want 4:\n%+v", len(r.Rows), r.Rows)
	}
	for k, v := range r.Metrics {
		// Stored entries are the lower triangle plus diagonal: strictly more
		// than half the full nnz, approaching 0.5 as nnz/row grows. The tiny
		// 5-point Laplacians (~5 nnz/row) sit near the 0.6 worst case; the
		// PR-8 ~0.55 acceptance bound is asserted on the denser bench
		// matrices in BENCH_PR8.json.
		if strings.HasPrefix(k, "bytes_ratio/") && (v <= 0.5 || v > 0.62) {
			t.Errorf("%s = %v, want in (0.5, 0.62]", k, v)
		}
		if strings.HasPrefix(k, "spmv_speedup/") && v <= 0 {
			t.Errorf("%s = %v, want > 0", k, v)
		}
	}
}

func TestLocality(t *testing.T) {
	r, err := runLocality(tinyCfg("inline1", "nlpkkt160"))
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := r.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "exec/deepsparse") || !strings.Contains(b.String(), "sim/inline1") {
		t.Fatalf("report missing expected rows:\n%s", b.String())
	}
	// The §5.2 A/B: with machine, costs, and overheads held fixed, the
	// hierarchical steal topology must beat uniform-random stealing on both
	// LLC misses and the cross-domain miss share — strictly, per matrix (the
	// simulator is deterministic under a fixed seed).
	for _, name := range []string{"inline1", "nlpkkt160"} {
		hier := r.Metrics["sim/"+name+"/l3_hier"]
		rand := r.Metrics["sim/"+name+"/l3_rand"]
		if hier <= 0 || rand <= 0 {
			t.Fatalf("%s: missing miss metrics (hier %v, rand %v)", name, hier, rand)
		}
		if hier >= rand {
			t.Errorf("%s: hierarchical stealing should miss less: %v >= %v", name, hier, rand)
		}
		if rs, rr := r.Metrics["sim/"+name+"/remote_share_hier"], r.Metrics["sim/"+name+"/remote_share_rand"]; rs >= rr {
			t.Errorf("%s: hierarchical remote share %v >= random %v", name, rs, rr)
		}
	}
	for _, backend := range []string{"deepsparse", "hpx", "regent"} {
		for _, bc := range localityBlockCounts {
			key := fmt.Sprintf("exec/%s/%d/dom_share", backend, bc)
			if s, ok := r.Metrics[key]; !ok || s < 0 || s > 1 {
				t.Errorf("%s: bad or missing share %v", key, s)
			}
		}
	}
}
