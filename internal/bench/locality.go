package bench

import (
	"context"
	"fmt"

	"sparsetask/internal/cachesim"
	"sparsetask/internal/graph"
	"sparsetask/internal/machine"
	"sparsetask/internal/rt"
	"sparsetask/internal/sim"
	"sparsetask/internal/solver"
	"sparsetask/internal/topo"
	"sparsetask/internal/trace"
)

// execLocalityWorkers is the worker count for the live-backend half of the
// locality experiment: enough to populate all eight EPYC-profile domains
// (one worker each) without oversubscribing small CI hosts.
const execLocalityWorkers = 8

// localityBlockCounts are the per-dimension tile counts the live half sweeps,
// bracketing the §5.4 sweet spots.
var localityBlockCounts = []int{32, 64, 128}

// runLocality regenerates the §5.2 locality evidence in two halves.
//
// The exec/ rows run the real stealing backends under the EPYC topology
// profile and report where each backend *acquired* its tasks: Local%
// (own deque), Domain% (same-domain queues), Remote% (cross-domain steals),
// plus the domain-local share of affinity-carrying tasks. The sim/ rows hold
// the machine, task costs, and dispatch overhead fixed and flip only the
// stealing topology (sim.StealPolicy hierarchical vs uniform-random),
// comparing simulated LLC misses and cross-domain lines — the controlled
// version of the paper's claim that locality-aware stealing, not raw load
// balance, drives the cache-miss gap.
func runLocality(cfg *Config) (*Report, error) {
	r := newReport("locality", "Hierarchical vs uniform stealing on the EPYC profile",
		"Case", "Blocks", "Local%", "Domain%", "Remote%", "DomShare",
		"L3(hier)", "L3(rand)", "Miss redux")
	specs, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	if len(cfg.Matrices) == 0 && len(specs) > 4 {
		specs = specs[:4]
	}
	mc := newMatrixCache(cfg)
	iters := cfg.iters(3)

	// Part A: live backends. Percentages depend on real goroutine
	// interleaving, so they are reported, not asserted (a 1-CPU host lets a
	// lone runnable worker drain every queue itself).
	execCoo := mc.get(specs[0])
	for _, backend := range []string{"deepsparse", "hpx", "regent"} {
		for _, bc := range localityBlockCounts {
			block := (execCoo.Rows + bc - 1) / bc
			csb := execCoo.ToCSB(block)
			l, err := solver.NewLanczos(csb, 10)
			if err != nil {
				return nil, err
			}
			rtm := newLocalityRuntime(backend, rt.Options{Workers: execLocalityWorkers, Topo: topo.EPYC()})
			if _, err := l.Run(context.Background(), rtm, cfg.Seed+1); err != nil {
				return nil, err
			}
			ls := rtm.(rt.LocalityReporter).Locality()
			tasks := ls.Tasks()
			if tasks == 0 {
				tasks = 1
			}
			pct := func(v int64) float64 { return 100 * float64(v) / float64(tasks) }
			share := ls.DomainLocalShare()
			r.addRow("exec/"+backend, fmt.Sprintf("%d", bc),
				fmt.Sprintf("%.1f", pct(ls.Local)), fmt.Sprintf("%.1f", pct(ls.Domain)),
				fmt.Sprintf("%.1f", pct(ls.Remote)), fmt.Sprintf("%.2f", share),
				"-", "-", "-")
			key := fmt.Sprintf("exec/%s/%d/", backend, bc)
			r.Metrics[key+"remote_pct"] = pct(ls.Remote)
			r.Metrics[key+"dom_share"] = share
		}
	}

	// Part B: steal-topology A/B on the simulator.
	mach, err := scaledMachine("epyc", cfg.Preset)
	if err != nil {
		return nil, err
	}
	scale := cfg.Preset.OverheadScale()
	var reductions []float64
	for _, s := range specs {
		coo := mc.get(s)
		bc := clampBC(96, coo.Rows)
		g, err := buildGraph(coo, Lanczos, bc, graph.DefaultOptions(), false)
		if err != nil {
			return nil, err
		}
		measure := func(hier bool) (cachesim.Counters, error) {
			p := sim.NewSteal(mach.Cores, mach.NUMADomains, hier, uint64(cfg.Seed)+1)
			p.Scale = scale
			_, ctr, err := simMeasureDomainAware(mach, p, g, iters, nil)
			return ctr, err
		}
		hier, err := measure(true)
		if err != nil {
			return nil, err
		}
		rand, err := measure(false)
		if err != nil {
			return nil, err
		}
		redux := float64(rand.L3Miss) / float64(maxI64(hier.L3Miss, 1))
		reductions = append(reductions, redux)
		r.addRow("sim/"+s.Name, fmt.Sprintf("%d", bc), "-", "-",
			fmt.Sprintf("%.1f", 100*remoteShare(hier)), "-",
			fmt.Sprintf("%d", hier.L3Miss), fmt.Sprintf("%d", rand.L3Miss), fmtX(redux))
		r.Metrics["sim/"+s.Name+"/l3_hier"] = float64(hier.L3Miss)
		r.Metrics["sim/"+s.Name+"/l3_rand"] = float64(rand.L3Miss)
		r.Metrics["sim/"+s.Name+"/remote_share_hier"] = remoteShare(hier)
		r.Metrics["sim/"+s.Name+"/remote_share_rand"] = remoteShare(rand)
		r.Metrics["sim/"+s.Name+"/reduction"] = redux
	}
	r.Metrics["geomean_l3_reduction"] = geoMean(reductions)
	r.note("exec/ rows: where the live backend acquired tasks (8 workers, epyc profile); sim/ rows: same machine and overheads, only the steal topology flips")
	r.note("shape to hold: hierarchical stealing strictly fewer L3 misses and a lower remote share than uniform-random stealing on every matrix")
	return r, nil
}

// simMeasureDomainAware is simMeasure with the hierarchy's per-accessing-
// domain miss attribution enabled and first-touch placement fixed on — the
// configuration both arms of the steal A/B share.
func simMeasureDomainAware(mach machine.Model, pol sim.Policy, g *graph.TDG, iters int, rec *trace.Recorder) (float64, cachesim.Counters, error) {
	s := sim.New(mach, true)
	s.H.DomainAware = true
	s.PlaceFirstTouch(g, pol.Workers())
	if _, err := s.Run(g, pol, nil); err != nil { // warmup
		return 0, cachesim.Counters{}, err
	}
	var total int64
	var ctr cachesim.Counters
	for i := 0; i < iters; i++ {
		r, err := s.Run(g, pol, rec)
		if err != nil {
			return 0, cachesim.Counters{}, err
		}
		total += r.MakespanNs
		ctr.Add(r.Counters)
	}
	return float64(total) / float64(iters), ctr, nil
}

// remoteShare is the fraction of LLC misses served cross-domain, from the
// per-accessing-domain breakdown.
func remoteShare(c cachesim.Counters) float64 {
	var miss, remote int64
	for d := range c.ByDomain {
		miss += c.ByDomain[d].L3Miss
		remote += c.ByDomain[d].Remote
	}
	if miss == 0 {
		return 0
	}
	return float64(remote) / float64(miss)
}

// newLocalityRuntime builds the backend under test for the live half.
func newLocalityRuntime(backend string, opt rt.Options) rt.Runtime {
	switch backend {
	case "deepsparse":
		return rt.NewDeepSparse(opt)
	case "hpx":
		return rt.NewHPX(opt)
	case "regent":
		return rt.NewRegent(opt)
	}
	panic("bench: unknown locality backend " + backend)
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
