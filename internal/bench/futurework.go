package bench

import (
	"fmt"

	"sparsetask/internal/dist"
	"sparsetask/internal/graph"
	"sparsetask/internal/matgen"
)

// runFutureWork implements the paper's §6 future work: the task-dataflow
// solvers on distributed memory, comparing HPX-style asynchronous
// global-address-space execution against a hybrid MPI+OpenMP baseline over
// 1-8 nodes.
func runFutureWork(cfg *Config) (*Report, error) {
	r := newReport("futurework", "Distributed memory (§6 future work): hpx-dist vs mpi+omp",
		"Solver", "Matrix", "Nodes", "mpi+omp (ms)", "hpx-dist (ms)", "hpx/mpi", "CommMB(hpx)")
	name := "nlpkkt240"
	if len(cfg.Matrices) > 0 {
		name = cfg.Matrices[0]
	}
	spec, err := matgen.SpecByName(name)
	if err != nil {
		return nil, err
	}
	coo := spec.Build(cfg.Preset, cfg.Seed)
	nodeCounts := []int{1, 2, 4, 8}
	for _, kind := range []SolverKind{Lanczos, LOBPCG} {
		g, err := buildGraph(coo, kind, clampBC(128, coo.Rows), graph.DefaultOptions(), false)
		if err != nil {
			return nil, err
		}
		for _, nodes := range nodeCounts {
			cl := dist.DefaultCluster(nodes)
			mpi, err := dist.Run(g, cl, dist.MPIBSP)
			if err != nil {
				return nil, err
			}
			hpx, err := dist.Run(g, cl, dist.HPXDist)
			if err != nil {
				return nil, err
			}
			ratio := hpx.MakespanNs / mpi.MakespanNs
			r.addRow(kind.String(), name, fmt.Sprintf("%d", nodes),
				fmt.Sprintf("%.3f", mpi.MakespanNs/1e6),
				fmt.Sprintf("%.3f", hpx.MakespanNs/1e6),
				fmt.Sprintf("%.2f", ratio),
				fmt.Sprintf("%.2f", float64(hpx.CommBytes)/1e6))
			r.Metrics[fmt.Sprintf("ratio/%s/%d", kind, nodes)] = ratio
		}
	}
	r.note("ratio < 1: asynchronous task+dataflow execution hides communication that the bulk-synchronous hybrid exposes at each kernel barrier")
	return r, nil
}
