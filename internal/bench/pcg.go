package bench

import (
	"context"
	"fmt"

	"sparsetask/internal/matgen"
	"sparsetask/internal/precond"
	"sparsetask/internal/rt"
	"sparsetask/internal/solver"
)

// runPCG compares IC(0)-preconditioned CG against unpreconditioned CG on the
// seeded SPD generator, executing for real (not simulated) on the DeepSparse
// backend. Alongside the iteration counts it reports the shape of the
// forward-solve level DAG — the deep, skewed graph class this experiment
// exists to exercise — so the table shows both the numerical payoff
// (iterations) and the scheduling challenge (levels vs width).
func runPCG(cfg *Config) (*Report, error) {
	r := newReport("pcg", "IC(0)-preconditioned CG vs CG on the seeded SPD generator",
		"n", "NNZ", "CG iters", "PCG iters", "Ratio", "Levels", "MaxWidth", "Blocks")

	// Problem sizes scale with the preset so tiny test runs stay quick while
	// `-preset medium` stresses convergence at six-figure row counts.
	const maxRows = 120_000
	var sizes []int
	for _, mult := range []int{4, 16, 64} {
		n := mult * cfg.Preset.MinRows
		if n > maxRows {
			n = maxRows
		}
		if len(sizes) == 0 || n != sizes[len(sizes)-1] {
			sizes = append(sizes, n)
		}
	}

	const tol = 1e-8
	rtm := rt.NewDeepSparse(rt.Options{})
	var lastRatio float64
	for _, n := range sizes {
		coo := matgen.SPDLaplacian(n, cfg.Seed)
		m, err := precond.Factorize(coo.ToCSR())
		if err != nil {
			return nil, err
		}
		if m.Kind != precond.KindIC0 {
			return nil, fmt.Errorf("pcg: IC(0) broke down on SPD generator at n=%d (row %d)", n, m.BreakdownRow)
		}
		// ~96 row blocks: coarse enough for real per-task work, fine enough
		// that the triangular levels form a genuinely irregular DAG.
		block := (n + 95) / 96
		if block < 64 {
			block = 64
		}
		csb := coo.ToCSB(block)
		b := solver.RandomRHS(n, cfg.Seed+1)

		cg, err := solver.NewCG(csb)
		if err != nil {
			return nil, err
		}
		cg.Tol = tol
		if _, _, cgIters, err := cg.Solve(context.Background(), rtm, b); err != nil {
			return nil, fmt.Errorf("pcg: CG at n=%d: %w", n, err)
		} else if pcg, err := solver.NewPCG(csb, m); err != nil {
			return nil, err
		} else {
			pcg.Tol = tol
			_, _, pcgIters, err := pcg.Solve(context.Background(), rtm, b)
			if err != nil {
				return nil, fmt.Errorf("pcg: PCG at n=%d: %w", n, err)
			}
			lv := precond.AnalyzeLower(m.L, block)
			ratio := float64(cgIters) / float64(pcgIters)
			lastRatio = ratio
			r.addRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", coo.NNZ()),
				fmt.Sprintf("%d", cgIters), fmt.Sprintf("%d", pcgIters), fmtX(ratio),
				fmt.Sprintf("%d", lv.NumLevels), fmt.Sprintf("%d", lv.MaxWidth()),
				fmt.Sprintf("%d", lv.NB))
			r.Metrics[fmt.Sprintf("cg_iters/%d", n)] = float64(cgIters)
			r.Metrics[fmt.Sprintf("pcg_iters/%d", n)] = float64(pcgIters)
			r.Metrics[fmt.Sprintf("ratio/%d", n)] = ratio
			r.Metrics[fmt.Sprintf("levels/%d", n)] = float64(lv.NumLevels)
		}
	}
	r.Metrics["ratio_at_max_n"] = lastRatio
	r.note("acceptance shape: ratio >= 3x at the largest size; levels ~ blocks means a near-serial wavefront the AMT backends must pipeline")
	return r, nil
}
