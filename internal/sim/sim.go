// Package sim is a deterministic discrete-event simulator that executes a
// task-dependency graph on a modeled machine (package machine) with a
// modeled memory system (package cachesim) under one of four scheduling
// policies mirroring the runtime backends. It is how the paper's figures are
// regenerated at paper scale — 28-core Broadwell and 128-core EPYC — on any
// development host.
//
// Task cost model: a task's execution time is
//
//	max(flops/FlopsPerNs, memoryNs) + dispatch overhead
//
// where memoryNs aggregates the simulated cache-hierarchy latencies of the
// task's data regions (divided by the machine's memory-level parallelism)
// and dispatch overhead is a per-policy constant — the scheduling cost that
// makes over-decomposition expensive (paper §5.4). Cache and NUMA page state
// persist across iterations, as on real hardware.
package sim

import (
	"fmt"

	"sparsetask/internal/cachesim"
	"sparsetask/internal/graph"
	"sparsetask/internal/machine"
	"sparsetask/internal/program"
	"sparsetask/internal/trace"
)

// Result reports one simulated execution (one TDG pass).
type Result struct {
	MakespanNs int64
	Counters   cachesim.Counters
	// BusyNs is the total task execution time summed over cores.
	BusyNs int64
	// Tasks executed (sanity: must equal len(g.Tasks)).
	Tasks int
}

// Sim holds machine state persisting across iterations: the cache hierarchy,
// NUMA page map, region address layout, and per-domain memory-controller
// queues.
type Sim struct {
	M machine.Model
	H *cachesim.Hierarchy
	L *cachesim.Layout
	// Now is the global virtual clock in ns, advancing across Run calls so
	// multi-iteration traces line up end to end.
	Now int64
	// ctlFree[d] is the time domain d's memory controller finishes its
	// queued line transfers; fetches from a domain queue behind it.
	ctlFree []int64
}

// New creates a simulator for a machine. firstTouch selects the NUMA page
// placement policy applied to pages on their first access.
func New(m machine.Model, firstTouch bool) *Sim {
	return &Sim{
		M: m, H: cachesim.New(m, firstTouch), L: cachesim.NewLayout(),
		ctlFree: make([]int64, m.NUMADomains),
	}
}

// PlaceFirstTouch pre-places every data region at the NUMA domain of its
// *own* partition's home core: a static parallel initialization loop over
// partitions assigns partition p to worker p·W/NP, so the pages of vector
// partition p and of matrix tile row p land in that worker's domain. This is
// the paper's first-touch optimization (vectors and the sparse matrix
// initialized in parallel, §5.1).
func (s *Sim) PlaceFirstTouch(g *graph.TDG, workers int) {
	if workers <= 0 || workers > s.M.Cores {
		workers = s.M.Cores
	}
	p := g.Prog
	np := p.NP
	domOf := func(part int) int {
		return s.M.DomainOf(PartitionCore(part, np, workers))
	}
	for _, o := range p.Ops {
		switch o.Kind {
		case program.OpVec:
			for part := 0; part < np; part++ {
				bytes := int64(p.PartRows(part)) * int64(o.Cols) * 8
				s.H.Touch(domOf(part), s.L.Base(graph.VecRegion(o.ID, part), bytes), bytes)
			}
		case program.OpSparse:
			a, ok := g.Mats[o.ID]
			if !ok {
				continue
			}
			for bi := 0; bi < a.NBR; bi++ {
				for bj := 0; bj < a.NBC; bj++ {
					nnz := a.BlockNNZ(bi, bj)
					if nnz == 0 {
						continue
					}
					bytes := int64(nnz) * 16
					s.H.Touch(domOf(bi), s.L.Base(graph.TileRegion(o.ID, bi, bj, a.NBC), bytes), bytes)
				}
			}
		case program.OpSymSparse:
			// Symmetric storage: only the lower triangle plus diagonal exists;
			// each stored tile lands in its row band's domain, like the
			// general case.
			a, ok := g.Syms[o.ID]
			if !ok {
				continue
			}
			for bi := 0; bi < a.NBR; bi++ {
				for bj := 0; bj <= bi; bj++ {
					nnz := a.TileNNZ(bi, bj)
					if nnz == 0 {
						continue
					}
					bytes := int64(nnz) * 16
					s.H.Touch(domOf(bi), s.L.Base(graph.TileRegion(o.ID, bi, bj, a.NBR), bytes), bytes)
				}
			}
		}
	}
	// Partial buffers and reduce-mode SpMM buffers also follow their
	// partition; walk the tasks once to find their regions.
	for i := range g.Tasks {
		t := &g.Tasks[i]
		if t.P < 0 {
			continue
		}
		for _, r := range t.Writes {
			s.H.Touch(domOf(int(t.P)), s.L.Base(r.Region, r.Bytes), r.Bytes)
		}
	}
}

// PartitionCore returns the home core of partition p under the static
// partition→worker map used by first-touch placement and root dispatch.
func PartitionCore(p, np, workers int) int {
	c := int(int64(p) * int64(workers) / int64(np))
	if c >= workers {
		c = workers - 1
	}
	if c < 0 {
		c = 0
	}
	return c
}

// PlaceSerial places every region in domain 0, modeling serial
// initialization (the pathology first-touch fixes, Fig. 5).
func (s *Sim) PlaceSerial(g *graph.TDG) {
	for i := range g.Tasks {
		t := &g.Tasks[i]
		for _, r := range t.Reads {
			s.H.Touch(0, s.L.Base(r.Region, r.Bytes), r.Bytes)
		}
		for _, r := range t.Writes {
			s.H.Touch(0, s.L.Base(r.Region, r.Bytes), r.Bytes)
		}
	}
}

// scratcher is an optional Policy extension: kernels executed through an
// opaque BLAS library (the BSP baselines) touch a per-core packing workspace
// proportional to their inputs, polluting the private caches. Task-granular
// runtimes call lean kernels without packing.
type scratcher interface {
	ScratchBytes(k graph.TaskKind, readBytes int64) int64
}

// taskCost simulates the task's memory traffic on the given core starting at
// virtual time now and returns its execution time in ns. Three terms:
// latency of the miss chain (overlapped by MLP), bandwidth queueing at the
// owning domains' memory controllers, and the flop time; the task takes the
// max of the three.
func (s *Sim) taskCost(g *graph.TDG, t *graph.Task, core int, now int64, pol Policy, ctr *cachesim.Counters) float64 {
	var c cachesim.Counters
	var readBytes int64
	for _, r := range t.Reads {
		s.H.Access(core, s.L.Base(r.Region, r.Bytes), r.Bytes, false, &c)
		readBytes += r.Bytes
	}
	if sc, ok := pol.(scratcher); ok {
		if b := sc.ScratchBytes(t.Kind, readBytes); b > 0 {
			// Pack pass: inputs are re-read into the per-core workspace.
			for _, r := range t.Reads {
				s.H.Access(core, s.L.Base(r.Region, r.Bytes), r.Bytes, false, &c)
			}
			s.H.Access(core, s.L.Base(graph.ScratchRegion(core), b), b, true, &c)
		}
	}
	for _, r := range t.Writes {
		s.H.Access(core, s.L.Base(r.Region, r.Bytes), r.Bytes, true, &c)
	}
	ctr.Add(c)
	m := s.M
	latency := float64(c.L2Hit)*m.L2.LatencyNs +
		float64(c.L3Hit)*m.L3.LatencyNs +
		float64(c.MemLines-c.RemoteLines)*m.MemLatencyNs +
		float64(c.RemoteLines)*(m.MemLatencyNs+m.RemoteExtraNs)
	memNs := latency / m.MLP
	// Bandwidth: queue this task's line fetches on the owning domains'
	// controllers. A domain serving the whole machine's traffic (serial
	// initialization) becomes the bottleneck.
	var bwNs float64
	for d := 0; d < m.NUMADomains && d < cachesim.MaxDomains; d++ {
		lines := c.DomLines[d]
		if lines == 0 {
			continue
		}
		start := s.ctlFree[d]
		if start < now {
			start = now
		}
		finish := start + int64(float64(lines)*m.BWNsPerLine)
		s.ctlFree[d] = finish
		if w := float64(finish - now); w > bwNs {
			bwNs = w
		}
	}
	if bwNs > memNs {
		memNs = bwNs
	}
	flopNs := float64(t.Flops) / m.FlopsPerNs
	if memNs > flopNs {
		return memNs
	}
	return flopNs
}

// Run simulates one execution of g under the policy and returns makespan and
// aggregated counters. The recorder, when non-nil, receives one event per
// task with virtual timestamps (its worker dimension is the core id).
func (s *Sim) Run(g *graph.TDG, pol Policy, rec *trace.Recorder) (Result, error) {
	n := len(g.Tasks)
	res := Result{}
	if n == 0 {
		return res, nil
	}
	workers := pol.Workers()
	if workers <= 0 || workers > s.M.Cores {
		return res, fmt.Errorf("sim: policy %s wants %d workers on a %d-core machine", pol.Name(), workers, s.M.Cores)
	}
	pol.Reset(g, s.Now)

	indeg := make([]int32, n)
	for i := range g.Tasks {
		indeg[i] = int32(len(g.Tasks[i].Deps))
		if indeg[i] == 0 {
			pol.Ready(int32(i), -1, s.Now)
		}
	}

	coreFree := make([]int64, workers)
	start := s.Now
	for i := range coreFree {
		coreFree[i] = start
	}
	type running struct {
		end  int64
		task int32
		core int
	}
	var runQ []running // small enough that linear scans beat heap overhead? keep heap-free: find-min scan
	completed := 0
	now := start

	findMinRun := func() int {
		best := -1
		for i := range runQ {
			if best < 0 || runQ[i].end < runQ[best].end ||
				(runQ[i].end == runQ[best].end && runQ[i].task < runQ[best].task) {
				best = i
			}
		}
		return best
	}

	for completed < n {
		// Dispatch: give every idle core a chance, in core order.
		dispatched := false
		for c := 0; c < workers; c++ {
			if coreFree[c] > now {
				continue
			}
			t, ok := pol.Pick(c, now)
			if !ok {
				continue
			}
			task := &g.Tasks[t]
			dur := s.taskCost(g, task, c, now, pol, &res.Counters) + pol.OverheadNs()
			end := now + int64(dur)
			if end == now {
				end = now + 1 // enforce progress
			}
			if rec != nil {
				rec.Record(c, trace.Event{
					Task: t, Call: task.Call,
					Kernel: g.Prog.Calls[task.Call].Name,
					Start:  now, End: end,
				})
			}
			res.BusyNs += end - now
			coreFree[c] = end
			runQ = append(runQ, running{end, t, c})
			dispatched = true
		}
		if dispatched {
			continue
		}
		// Nothing dispatchable at `now`: advance to the next event —
		// earliest completion, earliest core-free, or a policy event
		// (Regent issue times).
		next := int64(-1)
		if i := findMinRun(); i >= 0 {
			next = runQ[i].end
		}
		if pe := pol.NextEventAfter(now); pe > now && (next < 0 || pe < next) {
			next = pe
		}
		if next < 0 || next <= now {
			return res, fmt.Errorf("sim: deadlock at t=%d with %d/%d tasks done under %s", now, completed, n, pol.Name())
		}
		now = next
		// Retire all runs ending at or before now, in (end, task) order.
		for {
			i := findMinRun()
			if i < 0 || runQ[i].end > now {
				break
			}
			r := runQ[i]
			runQ[i] = runQ[len(runQ)-1]
			runQ = runQ[:len(runQ)-1]
			completed++
			pol.Done(r.task, r.core, now)
			for _, succ := range g.Tasks[r.task].Succs {
				indeg[succ]--
				if indeg[succ] == 0 {
					pol.Ready(succ, r.core, r.end)
				}
			}
		}
	}
	// Makespan: latest core-free time.
	endT := start
	for _, f := range coreFree {
		if f > endT {
			endT = f
		}
	}
	res.MakespanNs = endT - start
	res.Tasks = n
	s.Now = endT
	return res, nil
}
