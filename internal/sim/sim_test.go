package sim

import (
	"math/rand"
	"testing"

	"sparsetask/internal/graph"
	"sparsetask/internal/machine"
	"sparsetask/internal/matgen"
	"sparsetask/internal/program"
	"sparsetask/internal/solver"
	"sparsetask/internal/sparse"
	"sparsetask/internal/trace"
)

// testGraph builds a Listing-1 style TDG over a random matrix.
func testGraph(t *testing.T, m, block, n int, seed int64) *graph.TDG {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	coo := sparse.NewCOO(m, m, m*6)
	for i := 0; i < m; i++ {
		coo.Append(int32(i), int32(i), 4)
	}
	for k := 0; k < m*4; k++ {
		i, j := int32(rng.Intn(m)), int32(rng.Intn(m))
		if i != j {
			coo.Append(i, j, 0.1)
			coo.Append(j, i, 0.1)
		}
	}
	coo.Compact()
	csb := coo.ToCSB(block)
	p := program.New(m, block)
	A := p.Sparse("A")
	X := p.Vec("X", n)
	Y := p.Vec("Y", n)
	Z := p.Small("Z", n, n)
	Q := p.Vec("Q", n)
	P := p.Small("P", n, n)
	p.SpMM(Y, A, X)
	p.Gemm(Q, 1, Y, Z, 0)
	p.GemmT(P, Y, Q)
	g, err := graph.Build(p, map[program.OperandID]*sparse.CSB{A: csb}, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func allPolicies(w int) []Policy {
	return []Policy{
		NewBSP(w),
		NewDeepSparse(w),
		NewHPX(w, 2, true),
		NewRegent(w-1, 1, false),
	}
}

func TestAllPoliciesCompleteAllTasks(t *testing.T) {
	g := testGraph(t, 512, 64, 4, 1)
	for _, pol := range allPolicies(8) {
		s := New(machine.Broadwell(), true)
		res, err := s.Run(g, pol, nil)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if res.Tasks != len(g.Tasks) {
			t.Errorf("%s: %d tasks simulated, want %d", pol.Name(), res.Tasks, len(g.Tasks))
		}
		if res.MakespanNs <= 0 {
			t.Errorf("%s: nonpositive makespan", pol.Name())
		}
		if res.BusyNs > res.MakespanNs*int64(pol.Workers()) {
			t.Errorf("%s: busy time %d exceeds capacity %d", pol.Name(), res.BusyNs, res.MakespanNs*int64(pol.Workers()))
		}
	}
}

func TestSimDeterministic(t *testing.T) {
	g := testGraph(t, 512, 64, 4, 2)
	for _, mk := range []func() Policy{
		func() Policy { return NewBSP(8) },
		func() Policy { return NewDeepSparse(8) },
		func() Policy { return NewHPX(8, 2, true) },
		func() Policy { return NewRegent(7, 1, true) },
	} {
		s1 := New(machine.Broadwell(), true)
		r1, err := s1.Run(g, mk(), nil)
		if err != nil {
			t.Fatal(err)
		}
		s2 := New(machine.Broadwell(), true)
		r2, err := s2.Run(g, mk(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if r1.MakespanNs != r2.MakespanNs || r1.Counters != r2.Counters {
			t.Errorf("%s: nondeterministic simulation", mk().Name())
		}
	}
}

func TestMoreCoresFaster(t *testing.T) {
	g := testGraph(t, 2048, 128, 8, 3)
	s4 := New(machine.Broadwell(), true)
	r4, err := s4.Run(g, NewDeepSparse(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	s16 := New(machine.Broadwell(), true)
	r16, err := s16.Run(g, NewDeepSparse(16), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r16.MakespanNs >= r4.MakespanNs {
		t.Errorf("16 cores (%d ns) not faster than 4 cores (%d ns)", r16.MakespanNs, r4.MakespanNs)
	}
}

func TestWarmCacheSecondIteration(t *testing.T) {
	// Second execution of the same graph must see more cache hits.
	g := testGraph(t, 512, 64, 4, 4)
	s := New(machine.Broadwell(), true)
	r1, err := s.Run(g, NewDeepSparse(8), nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run(g, NewDeepSparse(8), nil)
	if err != nil {
		t.Fatal(err)
	}
	h1 := float64(r1.Counters.L1Hit+r1.Counters.L2Hit+r1.Counters.L3Hit) /
		float64(r1.Counters.L1Hit+r1.Counters.L1Miss)
	h2 := float64(r2.Counters.L1Hit+r2.Counters.L2Hit+r2.Counters.L3Hit) /
		float64(r2.Counters.L1Hit+r2.Counters.L1Miss)
	if h2 <= h1 {
		t.Errorf("warm iteration hit fraction %v not above cold %v", h2, h1)
	}
}

func TestFirstTouchBeatsSerialPlacement(t *testing.T) {
	// On the NUMA-heavy EPYC model, first-touch placement must beat
	// serial (domain-0) placement — the effect of paper Fig. 5. A banded
	// FEM matrix keeps most tile accesses near the diagonal, where
	// partition-aligned placement pays off.
	coo := matgen.FEM3D(11, 11, 11, 2, 7, 5)
	block := (coo.Rows + 63) / 64 // NP = 64
	csb := coo.ToCSB(block)
	p := program.New(coo.Rows, block)
	A := p.Sparse("A")
	X := p.Vec("X", 4)
	Y := p.Vec("Y", 4)
	p.SpMM(Y, A, X)
	p.Axpby(X, 0.5, X, 0.5, Y)
	g, err := graph.Build(p, map[program.OperandID]*sparse.CSB{A: csb}, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Slow the machine so task compute dominates the serial spawn pipeline
	// (as at experiment scale); otherwise both placements are spawn-bound
	// and indistinguishable.
	mach := machine.EPYC().SlowDown(32)
	sFT := New(mach, true)
	sFT.PlaceFirstTouch(g, 128)
	rFT, err := sFT.Run(g, NewDeepSparse(128), nil)
	if err != nil {
		t.Fatal(err)
	}
	sSer := New(mach, false)
	sSer.PlaceSerial(g)
	rSer, err := sSer.Run(g, NewDeepSparse(128), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Serial placement funnels all memory lines through domain 0's
	// controller; first touch spreads them (the paper's Fig. 5 effect is
	// this bandwidth hotspot, measured as execution time).
	serDom0 := rSer.Counters.DomLines[0]
	if serDom0 != rSer.Counters.MemLines {
		t.Errorf("serial placement: domain 0 served %d of %d lines, want all",
			serDom0, rSer.Counters.MemLines)
	}
	ftDom0 := rFT.Counters.DomLines[0]
	if ftDom0*2 > rFT.Counters.MemLines {
		t.Errorf("first touch: domain 0 still serves %d of %d lines",
			ftDom0, rFT.Counters.MemLines)
	}
	if rFT.MakespanNs >= rSer.MakespanNs {
		t.Errorf("first touch (%d ns) not faster than serial placement (%d ns)",
			rFT.MakespanNs, rSer.MakespanNs)
	}
}

func TestBSPBarriersInSimTrace(t *testing.T) {
	g := testGraph(t, 512, 64, 4, 6)
	s := New(machine.Broadwell(), true)
	rec := trace.NewRecorder(8)
	if _, err := s.Run(g, NewBSP(8), rec); err != nil {
		t.Fatal(err)
	}
	lastEnd := map[int32]int64{}
	firstStart := map[int32]int64{}
	for _, e := range rec.Events() {
		if fs, ok := firstStart[e.Call]; !ok || e.Start < fs {
			firstStart[e.Call] = e.Start
		}
		if e.End > lastEnd[e.Call] {
			lastEnd[e.Call] = e.End
		}
	}
	for c := int32(0); c < int32(len(g.Prog.Calls))-1; c++ {
		if firstStart[c+1] < lastEnd[c] {
			t.Errorf("sim BSP barrier violated between calls %d and %d", c, c+1)
		}
	}
}

func TestAMTOverlapsKernelsBSPDoesNot(t *testing.T) {
	g := testGraph(t, 1024, 64, 8, 7)
	recB := trace.NewRecorder(8)
	sb := New(machine.Broadwell(), true)
	if _, err := sb.Run(g, NewBSP(8), recB); err != nil {
		t.Fatal(err)
	}
	recD := trace.NewRecorder(8)
	sd := New(machine.Broadwell(), true)
	if _, err := sd.Run(g, NewDeepSparse(8), recD); err != nil {
		t.Fatal(err)
	}
	if ovB, ovD := recB.PipelineOverlap(), recD.PipelineOverlap(); ovD <= ovB {
		t.Errorf("DeepSparse overlap %v not above BSP %v", ovD, ovB)
	}
}

func TestRegentAnalysisDominatesManyTasks(t *testing.T) {
	// Same matrix, two block sizes: tiny blocks create ~100x more tasks.
	// Regent's serial analysis pipeline should blow up its makespan much
	// more than DeepSparse's.
	coo := matgen.FEM3D(12, 12, 12, 1, 27, 1)
	buildG := func(block int) *graph.TDG {
		csb := coo.ToCSB(block)
		p := program.New(coo.Rows, block)
		A := p.Sparse("A")
		X := p.Vec("X", 1)
		Y := p.Vec("Y", 1)
		p.SpMM(Y, A, X)
		g, err := graph.Build(p, map[program.OperandID]*sparse.CSB{A: csb}, graph.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	gCoarse := buildG(coo.Rows / 8)
	gFine := buildG(coo.Rows / 256)

	ratio := func(mk func() Policy) float64 {
		s1 := New(machine.Broadwell(), true)
		rc, err := s1.Run(gCoarse, mk(), nil)
		if err != nil {
			t.Fatal(err)
		}
		s2 := New(machine.Broadwell(), true)
		rf, err := s2.Run(gFine, mk(), nil)
		if err != nil {
			t.Fatal(err)
		}
		return float64(rf.MakespanNs) / float64(rc.MakespanNs)
	}
	rRegent := ratio(func() Policy { return NewRegent(24, 4, false) })
	rDS := ratio(func() Policy { return NewDeepSparse(28) })
	if rRegent <= rDS {
		t.Errorf("Regent fine/coarse slowdown %.2f should exceed DeepSparse %.2f", rRegent, rDS)
	}
}

func TestSimWithSolverGraphs(t *testing.T) {
	// End-to-end: simulate one iteration of each solver's real TDG.
	coo := matgen.KKT(8, 3)
	csb := coo.ToCSB(128)
	lz, err := solver.NewLanczos(csb, 10)
	if err != nil {
		t.Fatal(err)
	}
	lob, err := solver.NewLOBPCG(csb, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []*graph.TDG{lz.Graph(), lob.Graph()} {
		s := New(machine.EPYC(), true)
		res, err := s.Run(g, NewHPX(128, 8, true), nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Tasks != len(g.Tasks) {
			t.Errorf("simulated %d of %d tasks", res.Tasks, len(g.Tasks))
		}
	}
}

func TestSimEmptyGraph(t *testing.T) {
	p := program.New(8, 4)
	g, err := graph.Build(p, nil, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := New(machine.Broadwell(), true)
	res, err := s.Run(g, NewDeepSparse(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks != 0 || res.MakespanNs != 0 {
		t.Errorf("empty graph result %+v", res)
	}
}

func TestMakespanRespectsLowerBounds(t *testing.T) {
	// The simulated makespan can never beat the work/span lower bounds
	// under the pure-flop cost model (memory and overheads only add time).
	g := testGraph(t, 1024, 64, 8, 11)
	mach := machine.Broadwell()
	b := g.FlopBounds()
	for _, pol := range allPolicies(16) {
		s := New(mach, true)
		r, err := s.Run(g, pol, nil)
		if err != nil {
			t.Fatal(err)
		}
		lb := b.LowerBound(pol.Workers()) / mach.FlopsPerNs
		if float64(r.MakespanNs) < lb {
			t.Errorf("%s: makespan %d beats flop lower bound %.0f", pol.Name(), r.MakespanNs, lb)
		}
	}
}
