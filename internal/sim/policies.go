package sim

import (
	"sparsetask/internal/graph"
)

// Policy is a deterministic scheduling discipline for the simulator, one per
// runtime backend under evaluation.
type Policy interface {
	Name() string
	// Workers is the number of compute cores the policy occupies.
	Workers() int
	// Reset prepares internal state for a fresh TDG execution starting at
	// virtual time now.
	Reset(g *graph.TDG, now int64)
	// Ready announces that task t's dependencies are satisfied. prodCore is
	// the core that finished its last dependency (-1 for roots); now is the
	// virtual time of that completion.
	Ready(t int32, prodCore int, now int64)
	// Pick selects a task for idle core at virtual time now.
	Pick(core int, now int64) (int32, bool)
	// Done announces task completion at virtual time now (used by barrier
	// policies).
	Done(t int32, core int, now int64)
	// NextEventAfter returns the policy's next self-generated event time
	// strictly after now, or a value <= now when it has none.
	NextEventAfter(now int64) int64
	// OverheadNs is the per-task dispatch overhead.
	OverheadNs() float64
}

// Per-task dispatch overheads (ns). These constants encode the relative
// scheduling weight of each runtime: BSP's static loops are nearly free per
// chunk; OpenMP task spawning costs a few hundred ns; HPX futures slightly
// more; Regent pays both a dispatch cost and a serial per-task dependence
// analysis (see RegentPolicy). The absolute values are calibration points;
// the experiments depend on their ordering and order of magnitude, which
// follow published microbenchmarks of these runtimes.
const (
	bspOverheadNs        = 60
	deepsparseOverheadNs = 150
	hpxOverheadNs        = 300
	regentOverheadNs     = 500
	// Serial spawn costs: both OpenMP tasking (DeepSparse's master thread
	// spawns every task of the TDG) and HPX (the main thread executes the
	// dataflow-creation loop) pay a per-task creation cost on one thread.
	// Skipping empty tasks (Fig. 6) shortens exactly this serial pass.
	deepsparseSpawnNs = 250
	hpxSpawnNs        = 500
	// regentAnalysisNsPerTask is the serial program-order dependence
	// analysis cost per non-index-launch task: the Legion analysis pipeline
	// runs at roughly microsecond granularity per task.
	regentAnalysisNsPerTask = 2500
	// regentTracedAnalysisNs applies when dynamic tracing replays a
	// memoized graph.
	regentTracedAnalysisNs = 250
	// bspBarrierNsPerLog2W is the fork/join barrier cost per log2(threads):
	// OpenMP/MKL barriers on a 128-thread node cost on the order of 10 µs.
	bspBarrierNsPerLog2W = 1200
)

// scaleOr1 returns the overhead scale factor, defaulting to 1. When the
// matrix suite is scaled down by more than the machine SlowDown compensates,
// per-task work shrinks relative to real-world runtime overheads; policies
// multiply every overhead (dispatch, spawn pipelines, dependence analysis,
// barriers) by scale = SlowDown/Div so the overhead:work ratio matches the
// paper at every level.
func scaleOr1(s float64) float64 {
	if s <= 0 {
		return 1
	}
	return s
}

// issueGate serializes task availability behind a per-task pipeline running
// on one thread: OpenMP/HPX task spawning and Regent dependence analysis.
// issueTime must be monotone in task id (program/spawn order).
type issueGate struct {
	issueTime []int64
	depsDone  []bool
	cursor    int
	queue     []int32
}

func (gte *issueGate) reset(n int) {
	gte.issueTime = make([]int64, n)
	gte.depsDone = make([]bool, n)
	gte.cursor = 0
	gte.queue = gte.queue[:0]
}

// advance moves the pipeline cursor to time now, queueing deps-done tasks.
func (gte *issueGate) advance(now int64) {
	for gte.cursor < len(gte.issueTime) && gte.issueTime[gte.cursor] <= now {
		if gte.depsDone[gte.cursor] {
			gte.queue = append(gte.queue, int32(gte.cursor))
		}
		gte.cursor++
	}
}

// ready marks deps satisfied and returns true if the task is already issued
// (the caller dispatches it); otherwise the gate holds it.
func (gte *issueGate) ready(t int32, now int64) bool {
	gte.advance(now)
	gte.depsDone[t] = true
	return int(t) < gte.cursor
}

// drain returns gate-held tasks that have become issued by now.
func (gte *issueGate) drain(now int64) []int32 {
	gte.advance(now)
	q := gte.queue
	gte.queue = gte.queue[:0]
	return q
}

func (gte *issueGate) nextEventAfter(now int64) int64 {
	if gte.cursor < len(gte.issueTime) && gte.issueTime[gte.cursor] > now {
		return gte.issueTime[gte.cursor]
	}
	return now
}

// ---------------------------------------------------------------- BSP

// BSPPolicy models the libcsr/libcsb baselines: per-kernel parallel loops
// with static chain assignment (chain p → core p mod W), a full barrier
// between kernels, and serial execution of reductions.
type BSPPolicy struct {
	W int
	// Scale multiplies all overheads (see scaleOr1); 0 means 1.
	Scale float64

	g            *graph.TDG
	calls        int
	current      int32 // kernel (call index) currently executing
	remain       []int32
	perCore      [][]int32 // ready tasks of the current call per assigned core
	readyLat     [][]int32 // tasks that became ready for future calls
	barrierUntil int64     // no task of the next kernel starts before this
}

// NewBSP returns the bulk-synchronous policy on w cores.
func NewBSP(w int) *BSPPolicy { return &BSPPolicy{W: w} }

// barrierNs is the per-kernel fork/join barrier cost.
func (p *BSPPolicy) barrierNs() int64 {
	lg := 0
	for 1<<lg < p.W {
		lg++
	}
	return int64(float64(lg*bspBarrierNsPerLog2W) * scaleOr1(p.Scale))
}

// Name implements Policy.
func (p *BSPPolicy) Name() string { return "bsp" }

// Workers implements Policy.
func (p *BSPPolicy) Workers() int { return p.W }

// OverheadNs implements Policy.
func (p *BSPPolicy) OverheadNs() float64 { return bspOverheadNs * scaleOr1(p.Scale) }

// Reset implements Policy.
func (p *BSPPolicy) Reset(g *graph.TDG, now int64) {
	p.g = g
	p.calls = len(g.Prog.Calls)
	p.current = 0
	p.remain = make([]int32, p.calls)
	for i := range g.Tasks {
		p.remain[g.Tasks[i].Call]++
	}
	p.perCore = make([][]int32, p.W)
	p.readyLat = make([][]int32, p.calls)
	p.barrierUntil = now
	// Skip over calls that produced no tasks.
	p.skipEmptyCalls()
}

func (p *BSPPolicy) skipEmptyCalls() {
	for int(p.current) < p.calls && p.remain[p.current] == 0 {
		p.current++
		p.flush(p.current)
	}
}

func (p *BSPPolicy) coreOf(t int32) int {
	task := &p.g.Tasks[t]
	if task.P < 0 {
		return 0 // reductions and small steps run on core 0
	}
	if task.Kind == graph.TSpMMTile || task.Kind == graph.TSpMMZero ||
		task.Kind == graph.TSpMMBufTile || task.Kind == graph.TSpMMReduce ||
		task.Kind == graph.TSymTile || task.Kind == graph.TSymTileAcc ||
		task.Kind == graph.TSymReduce {
		// MKL's SpMV/SpMM threading partitions internally (nnz-balanced),
		// which does not line up with the row chunking of the surrounding
		// vector kernels: model the mismatch as an interleaved assignment.
		// This is the cross-kernel affinity loss inherent to calling opaque
		// BSP library kernels, which the task-dataflow versions avoid.
		return int(task.P) % p.W
	}
	// Vector kernels: contiguous OpenMP-static chunks, which is also the
	// first-touch initialization layout.
	return PartitionCore(int(task.P), p.g.Prog.NP, p.W)
}

func (p *BSPPolicy) flush(call int32) {
	if int(call) >= p.calls {
		return
	}
	for _, t := range p.readyLat[call] {
		p.perCore[p.coreOf(t)] = append(p.perCore[p.coreOf(t)], t)
	}
	p.readyLat[call] = nil
}

// Ready implements Policy.
func (p *BSPPolicy) Ready(t int32, prodCore int, now int64) {
	call := p.g.Tasks[t].Call
	if call == p.current {
		p.perCore[p.coreOf(t)] = append(p.perCore[p.coreOf(t)], t)
		return
	}
	p.readyLat[call] = append(p.readyLat[call], t)
}

// Pick implements Policy. A core only runs tasks of the current kernel that
// were statically assigned to it — no stealing, so skewed chains stall the
// barrier exactly as in static loop scheduling.
func (p *BSPPolicy) Pick(core int, now int64) (int32, bool) {
	if now < p.barrierUntil {
		return 0, false
	}
	q := p.perCore[core]
	if len(q) == 0 {
		return 0, false
	}
	t := q[0]
	p.perCore[core] = q[1:]
	return t, true
}

// Done implements Policy: the last task of a kernel releases the barrier,
// which costs barrierNs before the next kernel may start.
func (p *BSPPolicy) Done(t int32, core int, now int64) {
	call := p.g.Tasks[t].Call
	p.remain[call]--
	if call == p.current && p.remain[call] == 0 {
		p.current++
		p.flush(p.current)
		p.skipEmptyCalls()
		p.barrierUntil = now + p.barrierNs()
	}
}

// NextEventAfter implements Policy.
func (p *BSPPolicy) NextEventAfter(now int64) int64 {
	if p.barrierUntil > now {
		return p.barrierUntil
	}
	return now
}

// ScratchBytes models the panel-packing workspace of library BLAS kernels:
// GEMM-family calls copy their operand panels into per-thread buffers before
// computing, roughly doubling input traffic and displacing cached vector
// chunks. The task-parallel versions call lean per-tile kernels and pay none
// of this (the paper attributes part of the BSP cache gap to exactly this
// library-kernel opacity).
func (p *BSPPolicy) ScratchBytes(k graph.TaskKind, readBytes int64) int64 {
	switch k {
	case graph.TGemm, graph.TGemmTPart:
		return readBytes
	}
	return 0
}

// ---------------------------------------------------------------- DeepSparse

// DeepSparsePolicy models OpenMP tasking as DeepSparse drives it: the master
// thread spawns every task of the TDG in depth-first topological order (a
// serial per-task spawn cost), workers run per-core LIFO deques (depth-first
// execution) with FIFO stealing from the nearest victim.
type DeepSparsePolicy struct {
	W int
	// Scale multiplies all overheads (see scaleOr1); 0 means 1.
	Scale  float64
	g      *graph.TDG
	deques [][]int32
	rrNext int
	gate   issueGate
	prod   []int32
}

// NewDeepSparse returns the OpenMP-task policy on w cores.
func NewDeepSparse(w int) *DeepSparsePolicy { return &DeepSparsePolicy{W: w} }

// Name implements Policy.
func (p *DeepSparsePolicy) Name() string { return "deepsparse" }

// Workers implements Policy.
func (p *DeepSparsePolicy) Workers() int { return p.W }

// OverheadNs implements Policy.
func (p *DeepSparsePolicy) OverheadNs() float64 { return deepsparseOverheadNs * scaleOr1(p.Scale) }

// Reset implements Policy.
func (p *DeepSparsePolicy) Reset(g *graph.TDG, now int64) {
	p.g = g
	n := len(g.Tasks)
	p.deques = make([][]int32, p.W)
	p.rrNext = 0
	p.gate.reset(n)
	p.prod = make([]int32, n)
	t := float64(now)
	for i := 0; i < n; i++ {
		p.prod[i] = -1
		t += deepsparseSpawnNs * scaleOr1(p.Scale)
		p.gate.issueTime[i] = int64(t)
	}
}

// enqueue routes a spawned+ready task. Partitioned tasks go to the home core
// of their output partition, so each partition's kernel pipeline stays where
// its data is resident — the data-affinity placement DeepSparse's
// depth-first spawn order combined with first-touch layout produces, and the
// source of the pipelined cache reuse the paper measures. Partitionless
// tasks (reductions, small steps) go to the producing core.
func (p *DeepSparsePolicy) enqueue(t int32, prodCore int) {
	c := prodCore
	if part := p.g.Tasks[t].P; part >= 0 {
		c = PartitionCore(int(part), p.g.Prog.NP, p.W)
	} else if c < 0 {
		c = p.rrNext % p.W
		p.rrNext++
	}
	p.deques[c] = append(p.deques[c], t)
}

// Ready implements Policy.
func (p *DeepSparsePolicy) Ready(t int32, prodCore int, now int64) {
	p.prod[t] = int32(prodCore)
	if p.gate.ready(t, now) {
		p.enqueue(t, prodCore)
	}
}

// Pick implements Policy: LIFO from own deque, else steal FIFO from the
// nearest non-empty victim. Nearest-first keeps steals on the same socket
// when possible, which is what thread-affinity-pinned OpenMP runs see.
func (p *DeepSparsePolicy) Pick(core int, now int64) (int32, bool) {
	for _, t := range p.gate.drain(now) {
		p.enqueue(t, int(p.prod[t]))
	}
	if q := p.deques[core]; len(q) > 0 {
		t := q[len(q)-1]
		p.deques[core] = q[:len(q)-1]
		return t, true
	}
	for k := 1; k < p.W; k++ {
		v := (core + k) % p.W
		if q := p.deques[v]; len(q) > 0 {
			t := q[0]
			p.deques[v] = q[1:]
			return t, true
		}
	}
	return 0, false
}

// Done implements Policy.
func (p *DeepSparsePolicy) Done(t int32, core int, now int64) {}

// NextEventAfter implements Policy.
func (p *DeepSparsePolicy) NextEventAfter(now int64) int64 {
	return p.gate.nextEventAfter(now)
}

// ---------------------------------------------------------------- HPX

// HPXPolicy models HPX dataflow scheduling: per-NUMA-domain FIFO queues with
// cross-domain stealing. With NUMAAware set, a ready task is routed to the
// domain owning its output partition (the scheduling-hint optimization);
// otherwise to the producing core's domain.
type HPXPolicy struct {
	W         int
	Domains   int
	NUMAAware bool
	// Scale multiplies all overheads (see scaleOr1); 0 means 1.
	Scale float64

	g      *graph.TDG
	queues [][]int32
	rr     int
	gate   issueGate
	prod   []int32
}

// NewHPX returns the HPX policy on w cores over d domains.
func NewHPX(w, d int, numaAware bool) *HPXPolicy {
	if d < 1 {
		d = 1
	}
	return &HPXPolicy{W: w, Domains: d, NUMAAware: numaAware}
}

// Name implements Policy.
func (p *HPXPolicy) Name() string { return "hpx" }

// Workers implements Policy.
func (p *HPXPolicy) Workers() int { return p.W }

// OverheadNs implements Policy.
func (p *HPXPolicy) OverheadNs() float64 { return hpxOverheadNs * scaleOr1(p.Scale) }

// Reset implements Policy. The main thread's dataflow-creation loop is a
// serial pipeline: task i may not start before its dataflow object exists
// (hpxSpawnNs per task — the cost skipping empty tasks avoids, Fig. 6).
func (p *HPXPolicy) Reset(g *graph.TDG, now int64) {
	p.g = g
	n := len(g.Tasks)
	p.queues = make([][]int32, p.Domains)
	p.rr = 0
	p.gate.reset(n)
	p.prod = make([]int32, n)
	t := float64(now)
	for i := 0; i < n; i++ {
		p.prod[i] = -1
		t += hpxSpawnNs * scaleOr1(p.Scale)
		p.gate.issueTime[i] = int64(t)
	}
}

func (p *HPXPolicy) domainOfCore(core int) int {
	return core * p.Domains / p.W
}

func (p *HPXPolicy) enqueue(t int32, prodCore int) {
	d := 0
	task := &p.g.Tasks[t]
	switch {
	case p.NUMAAware && task.P >= 0:
		d = int(int64(task.P) * int64(p.Domains) / int64(p.g.Prog.NP))
	case prodCore >= 0:
		d = p.domainOfCore(prodCore)
	default:
		d = p.rr % p.Domains
		p.rr++
	}
	p.queues[d] = append(p.queues[d], t)
}

// Ready implements Policy.
func (p *HPXPolicy) Ready(t int32, prodCore int, now int64) {
	p.prod[t] = int32(prodCore)
	if p.gate.ready(t, now) {
		p.enqueue(t, prodCore)
	}
}

// Pick implements Policy: FIFO from the core's domain queue, else steal from
// other domains round-robin.
func (p *HPXPolicy) Pick(core int, now int64) (int32, bool) {
	for _, t := range p.gate.drain(now) {
		p.enqueue(t, int(p.prod[t]))
	}
	d := p.domainOfCore(core)
	for k := 0; k < p.Domains; k++ {
		v := (d + k) % p.Domains
		if q := p.queues[v]; len(q) > 0 {
			t := q[0]
			p.queues[v] = q[1:]
			return t, true
		}
	}
	return 0, false
}

// Done implements Policy.
func (p *HPXPolicy) Done(t int32, core int, now int64) {}

// NextEventAfter implements Policy.
func (p *HPXPolicy) NextEventAfter(now int64) int64 {
	return p.gate.nextEventAfter(now)
}

// ---------------------------------------------------------------- Regent

// RegentPolicy models the Regent/Legion pipeline: a dedicated utility core
// set runs the serial program-order dependence analysis; a task may only
// start after its analysis completes AND its dependencies are done. Index
// launches batch the analysis of their whole loop; dynamic tracing replays
// a memoized analysis at a fraction of the cost. Compute workers drain a
// global FIFO.
//
// The serial analysis pipeline is the scaling bottleneck the paper observes:
// past ~64 blocks per dimension, per-iteration task counts reach the tens of
// thousands and analysis time dominates, producing the 5-10x slowdowns of
// §5.4.
type RegentPolicy struct {
	// W is the number of compute cores (the paper's -ll:cpu); Util cores
	// are reserved for the runtime (-ll:util) and do not run tasks.
	W    int
	Util int
	// Traced enables dynamic-tracing replay cost.
	Traced bool
	// Scale multiplies all overheads (see scaleOr1); 0 means 1.
	Scale float64

	g     *graph.TDG
	gate  issueGate
	queue []int32
}

// NewRegent returns a Regent policy with w compute workers and u util cores.
func NewRegent(w, u int, traced bool) *RegentPolicy {
	if u < 1 {
		u = 1
	}
	return &RegentPolicy{W: w, Util: u, Traced: traced}
}

// Name implements Policy.
func (p *RegentPolicy) Name() string { return "regent" }

// Workers implements Policy.
func (p *RegentPolicy) Workers() int { return p.W }

// OverheadNs implements Policy.
func (p *RegentPolicy) OverheadNs() float64 { return regentOverheadNs * scaleOr1(p.Scale) }

// Reset implements Policy.
func (p *RegentPolicy) Reset(g *graph.TDG, now int64) {
	p.g = g
	n := len(g.Tasks)
	p.gate.reset(n)
	p.queue = p.queue[:0]
	// The analysis pipeline is parallelized across util cores only at the
	// granularity of independent program segments; model its throughput as
	// scaling with the square root of the util core count.
	perTask := float64(regentAnalysisNsPerTask)
	if p.Traced {
		perTask = regentTracedAnalysisNs
	}
	scale := 1.0
	for s := 1; s*s <= p.Util; s++ {
		scale = float64(s)
	}
	perTask /= scale
	perTask *= scaleOr1(p.Scale)
	t := float64(now)
	lastCall := int32(-1)
	for i := range g.Tasks {
		task := &g.Tasks[i]
		c := &g.Prog.Calls[task.Call]
		cost := perTask
		if c.IndexLaunch && task.Call == lastCall {
			cost = perTask / 16 // batched with the launch's first task
		}
		t += cost
		p.gate.issueTime[i] = int64(t)
		lastCall = task.Call
	}
}

// Ready implements Policy.
func (p *RegentPolicy) Ready(t int32, prodCore int, now int64) {
	p.drainGate(now)
	if p.gate.ready(t, now) {
		p.queue = append(p.queue, t)
	}
}

func (p *RegentPolicy) drainGate(now int64) {
	p.queue = append(p.queue, p.gate.drain(now)...)
}

// Pick implements Policy: global FIFO of issued+ready tasks.
func (p *RegentPolicy) Pick(core int, now int64) (int32, bool) {
	p.drainGate(now)
	if len(p.queue) == 0 {
		return 0, false
	}
	t := p.queue[0]
	p.queue = p.queue[1:]
	return t, true
}

// Done implements Policy.
func (p *RegentPolicy) Done(t int32, core int, now int64) {}

// NextEventAfter implements Policy: the next analysis completion, which can
// unblock a deps-done task.
func (p *RegentPolicy) NextEventAfter(now int64) int64 {
	return p.gate.nextEventAfter(now)
}

// ---------------------------------------------------------------- Steal

// StealPolicy isolates the work-stealing topology itself: per-core LIFO
// deques fed either affinity-aware (a ready task goes to the home core of its
// output partition, steals search the thief's own NUMA domain before crossing
// it, and cross-domain steals migrate half the victim's queue) or
// affinity-blind (round-robin placement, uniform-random victim selection).
// Everything else — dispatch overhead, task costs, the machine — is held
// identical, so the miss-count difference between the two configurations is
// exactly the §5.2 locality effect of hierarchical stealing.
type StealPolicy struct {
	W       int
	Domains int
	// Hierarchical selects affinity placement + domain-ordered stealing;
	// false is the uniform-random baseline.
	Hierarchical bool
	// Seed drives the baseline's victim selection (xorshift64; 0 means 1).
	Seed uint64
	// Scale multiplies all overheads (see scaleOr1); 0 means 1.
	Scale float64

	g      *graph.TDG
	deques [][]int32
	rr     int
	rng    uint64
}

// stealHalfBurst bounds how many tasks a cross-domain steal migrates, mirroring
// sched's stealBurst.
const stealHalfBurst = 16

// NewSteal returns a steal-topology policy on w cores over d domains.
func NewSteal(w, d int, hierarchical bool, seed uint64) *StealPolicy {
	if d < 1 {
		d = 1
	}
	return &StealPolicy{W: w, Domains: d, Hierarchical: hierarchical, Seed: seed}
}

// Name implements Policy.
func (p *StealPolicy) Name() string {
	if p.Hierarchical {
		return "steal-hier"
	}
	return "steal-rand"
}

// Workers implements Policy.
func (p *StealPolicy) Workers() int { return p.W }

// OverheadNs implements Policy: same dispatch weight as the OpenMP-task
// model, so the two steal configurations differ only in memory behavior.
func (p *StealPolicy) OverheadNs() float64 { return deepsparseOverheadNs * scaleOr1(p.Scale) }

// Reset implements Policy.
func (p *StealPolicy) Reset(g *graph.TDG, now int64) {
	p.g = g
	p.deques = make([][]int32, p.W)
	p.rr = 0
	p.rng = p.Seed
	if p.rng == 0 {
		p.rng = 1
	}
}

func (p *StealPolicy) xorshift() uint64 {
	x := p.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	p.rng = x
	return x
}

func (p *StealPolicy) domainOfCore(core int) int {
	return core * p.Domains / p.W
}

// Ready implements Policy.
func (p *StealPolicy) Ready(t int32, prodCore int, now int64) {
	c := p.rr % p.W
	if p.Hierarchical {
		if part := p.g.Tasks[t].P; part >= 0 {
			c = PartitionCore(int(part), p.g.Prog.NP, p.W)
		} else if prodCore >= 0 {
			c = prodCore
		} else {
			p.rr++
		}
	} else {
		p.rr++
	}
	p.deques[c] = append(p.deques[c], t)
}

// popOwn pops LIFO from the core's own deque.
func (p *StealPolicy) popOwn(core int) (int32, bool) {
	q := p.deques[core]
	if len(q) == 0 {
		return 0, false
	}
	t := q[len(q)-1]
	p.deques[core] = q[:len(q)-1]
	return t, true
}

// stealOne takes FIFO from a victim's deque.
func (p *StealPolicy) stealOne(v int) (int32, bool) {
	q := p.deques[v]
	if len(q) == 0 {
		return 0, false
	}
	t := q[0]
	p.deques[v] = q[1:]
	return t, true
}

// Pick implements Policy.
func (p *StealPolicy) Pick(core int, now int64) (int32, bool) {
	if t, ok := p.popOwn(core); ok {
		return t, ok
	}
	if !p.Hierarchical {
		// Uniform-random victim; bounded tries, then a deterministic sweep so
		// the policy never misses available work.
		for try := 0; try < p.W; try++ {
			v := int(p.xorshift() % uint64(p.W))
			if t, ok := p.stealOne(v); ok {
				return t, ok
			}
		}
		for k := 1; k < p.W; k++ {
			if t, ok := p.stealOne((core + k) % p.W); ok {
				return t, ok
			}
		}
		return 0, false
	}
	// Hierarchical: same-domain victims first.
	d := p.domainOfCore(core)
	for k := 1; k < p.W; k++ {
		v := (core + k) % p.W
		if p.domainOfCore(v) != d {
			continue
		}
		if t, ok := p.stealOne(v); ok {
			return t, ok
		}
	}
	// Remote domains: migrate half the victim's queue (bounded) to amortize
	// the crossing, then run the first migrated task.
	for k := 1; k < p.W; k++ {
		v := (core + k) % p.W
		if p.domainOfCore(v) == d {
			continue
		}
		q := p.deques[v]
		if len(q) == 0 {
			continue
		}
		take := (len(q) + 1) / 2
		if take > stealHalfBurst {
			take = stealHalfBurst
		}
		t := q[0]
		p.deques[core] = append(p.deques[core], q[1:take]...)
		p.deques[v] = q[take:]
		return t, true
	}
	return 0, false
}

// Done implements Policy.
func (p *StealPolicy) Done(t int32, core int, now int64) {}

// NextEventAfter implements Policy.
func (p *StealPolicy) NextEventAfter(now int64) int64 { return now }
