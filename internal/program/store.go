package program

import (
	"fmt"

	"sparsetask/internal/sparse"
)

// Store holds the concrete data behind a program's operands. One Store is
// shared by all tasks of an execution; the task-dependency graph guarantees
// conflict-free access, so the store needs no locking: all per-operand
// backing slices are preallocated up front and only their *elements* are
// written by tasks (never the slice headers or any map), keeping concurrent
// task execution race-free.
type Store struct {
	P       *Program
	SparseM map[OperandID]*sparse.CSB
	// SymM holds the SymCSB matrices behind OpSymSparse operands. Like
	// SparseM it is populated before execution and read-only afterwards.
	SymM map[OperandID]*sparse.SymCSB
	// TriM holds the CSR triangular factors behind OpTri operands. Like
	// SparseM it is populated before execution and read-only afterwards.
	TriM map[OperandID]*sparse.CSR
	// Vec, Small and Scalars are indexed by OperandID; entries for operands
	// of other kinds are nil/unused.
	Vec     [][]float64
	Small   [][]float64
	Scalars []float64
	// partials and spmmBuf are flat call-major tables indexed
	// call*NP+part. A slice lookup here sits on the critical path of every
	// reduction task, so these are not maps: the flat form is one load with
	// no hashing and no lock-free-read caveats.
	partials [][]float64
	spmmBuf  [][]float64
	// symAcc holds the fallback-mode private accumulators of CSpMMSym
	// calls, indexed call*sparse.SymAccGroups+group; each is a full output
	// buffer (M·n). Allocated by SetSymSparse (the matrix's schedule decides
	// whether fallback buffers are needed), fixed before execution.
	symAcc [][]float64
}

// NewStore allocates backing storage for every operand of p except sparse
// matrices, which must be attached with SetSparse.
func NewStore(p *Program) *Store {
	st := &Store{
		P:        p,
		SparseM:  make(map[OperandID]*sparse.CSB),
		SymM:     make(map[OperandID]*sparse.SymCSB),
		TriM:     make(map[OperandID]*sparse.CSR),
		Vec:      make([][]float64, len(p.Ops)),
		Small:    make([][]float64, len(p.Ops)),
		Scalars:  make([]float64, len(p.Ops)),
		partials: make([][]float64, len(p.Calls)*p.NP),
		spmmBuf:  make([][]float64, len(p.Calls)*p.NP),
		symAcc:   make([][]float64, len(p.Calls)*sparse.SymAccGroups),
	}
	for _, o := range p.Ops {
		switch o.Kind {
		case OpVec:
			st.Vec[o.ID] = make([]float64, o.Rows*o.Cols)
		case OpSmall:
			st.Small[o.ID] = make([]float64, o.Rows*o.Cols)
		}
	}
	// Preallocate every reduction partial buffer up front: tasks run
	// concurrently and must never mutate the maps.
	for ci, c := range p.Calls {
		var n int
		switch c.Kind {
		case CGemmT:
			n = p.Op(c.A).Cols * p.Op(c.B).Cols
		case CDot:
			n = 1
		case CColDot:
			n = p.Op(c.Out).Cols
		case CSpMM:
			if c.ReduceSpMM {
				// One full-output-height column buffer per partition: the
				// deliberately memory-hungry reduce-based variant.
				w := p.Op(c.Out).Cols
				for bj := 0; bj < p.NP; bj++ {
					st.spmmBuf[ci*p.NP+bj] = make([]float64, p.M*w)
				}
			}
			continue
		default:
			continue
		}
		for part := 0; part < p.NP; part++ {
			st.partials[ci*p.NP+part] = make([]float64, n)
		}
	}
	return st
}

// SetSparse attaches the CSB matrix for a sparse operand. The CSB tile size
// must equal the program block size so matrix tiles and vector partitions
// line up.
func (st *Store) SetSparse(id OperandID, a *sparse.CSB) {
	o := st.P.Op(id)
	if o.Kind != OpSparse {
		panic(fmt.Sprintf("program: SetSparse on %s operand %s", o.Kind, o.Name))
	}
	if a.Block != st.P.Block {
		panic(fmt.Sprintf("program: CSB block %d != program block %d", a.Block, st.P.Block))
	}
	if a.Rows != st.P.M {
		panic(fmt.Sprintf("program: CSB rows %d != program rows %d", a.Rows, st.P.M))
	}
	st.SparseM[id] = a
}

// SetSymSparse attaches the SymCSB matrix for a symmetric sparse operand.
// When the matrix's schedule uses the fallback accumulator path, the private
// accumulator buffers of every CSpMMSym call over this operand are allocated
// here (setup time, off the hot path) so tasks never mutate the tables.
func (st *Store) SetSymSparse(id OperandID, a *sparse.SymCSB) {
	o := st.P.Op(id)
	if o.Kind != OpSymSparse {
		panic(fmt.Sprintf("program: SetSymSparse on %s operand %s", o.Kind, o.Name))
	}
	if a.Block != st.P.Block {
		panic(fmt.Sprintf("program: SymCSB block %d != program block %d", a.Block, st.P.Block))
	}
	if a.Rows != st.P.M {
		panic(fmt.Sprintf("program: SymCSB rows %d != program rows %d", a.Rows, st.P.M))
	}
	st.SymM[id] = a
	if !a.Sched.Fallback {
		return
	}
	for ci, c := range st.P.Calls {
		if c.Kind != CSpMMSym || c.A != id {
			continue
		}
		w := st.P.Op(c.Out).Cols
		for g := 0; g < a.Sched.Groups; g++ {
			if st.symAcc[ci*sparse.SymAccGroups+g] == nil {
				st.symAcc[ci*sparse.SymAccGroups+g] = make([]float64, st.P.M*w)
			}
		}
	}
}

// SymAcc returns the fallback-mode private accumulator of CSpMMSym call
// callIdx for group g: a full-output-height buffer. Concurrent callers only
// read the flat table, which is safe because entries are fixed after
// SetSymSparse.
func (st *Store) SymAcc(callIdx, g int) []float64 {
	b := st.symAcc[callIdx*sparse.SymAccGroups+g]
	if b == nil {
		panic(fmt.Sprintf("program: no symmetric accumulator for call %d group %d", callIdx, g))
	}
	return b
}

// SetTri attaches the CSR factor for a triangular operand. The factor must
// be square with the program's row dimension; row-block boundaries come from
// the program block size.
func (st *Store) SetTri(id OperandID, a *sparse.CSR) {
	o := st.P.Op(id)
	if o.Kind != OpTri {
		panic(fmt.Sprintf("program: SetTri on %s operand %s", o.Kind, o.Name))
	}
	if a.Rows != st.P.M || a.Cols != st.P.M {
		panic(fmt.Sprintf("program: factor is %dx%d, program rows %d", a.Rows, a.Cols, st.P.M))
	}
	st.TriM[id] = a
}

// VecPart returns the slice of vec operand id covering row partition part.
func (st *Store) VecPart(id OperandID, part int) []float64 {
	o := st.P.Op(id)
	lo := part * st.P.Block * o.Cols
	hi := lo + st.P.PartRows(part)*o.Cols
	return st.Vec[id][lo:hi]
}

// Partial returns the preallocated partial buffer for reduction call callIdx
// at partition part. Concurrent callers only read the flat table, which is
// safe because entries are fixed after NewStore.
func (st *Store) Partial(callIdx, part int) []float64 {
	b := st.partials[callIdx*st.P.NP+part]
	if b == nil {
		panic(fmt.Sprintf("program: no partial buffer for call %d partition %d", callIdx, part))
	}
	return b
}

// SpMMBuf returns the reduce-based SpMM column buffer for call callIdx and
// column partition bj. It has the full output height.
func (st *Store) SpMMBuf(callIdx, bj int) []float64 {
	b := st.spmmBuf[callIdx*st.P.NP+bj]
	if b == nil {
		panic(fmt.Sprintf("program: no SpMM buffer for call %d column %d", callIdx, bj))
	}
	return b
}
