// Package program defines the solver-agnostic intermediate representation the
// task runtimes execute: a sequence of BLAS/GraphBLAS-like *calls* over named
// operands that are block-partitioned by a common block size.
//
// This mirrors the DeepSparse Primitive Conversion Unit: a solver is written
// as high-level calls (SpMM, XY, XTY, AXPBY, small dense ops, reductions) and
// the task-dependency-graph generator (package graph) decomposes each call
// into fine-grained tasks over the partitions, deriving dependencies from the
// partition-level read/write sets. The same program is executed by every
// runtime under comparison, so all frameworks see the identical DAG — the
// property the paper's methodology depends on.
package program

import "fmt"

// OperandID names an operand within a Program.
type OperandID int32

// OpKind classifies an operand's storage.
type OpKind uint8

const (
	// OpSparse is the sparse input matrix, stored as CSB and partitioned
	// into 2D tiles by the program block size.
	OpSparse OpKind = iota
	// OpVec is a dense m×n block of vectors, 1D-partitioned into row blocks
	// of the program block size. n is small (1 for Lanczos, 8–48 for LOBPCG).
	OpVec
	// OpSmall is a small dense matrix (at most a few hundred elements) that
	// every task sees as a single partition: the Z and P matrices of the
	// paper's XY and XTY kernels.
	OpSmall
	// OpScalar is a single float64 (norms, dot products, shifts).
	OpScalar
	// OpTri is a triangular factor stored as CSR (the L or U = Lᵀ of an
	// incomplete Cholesky), 1D-partitioned into row blocks like OpVec. It is
	// read-only to programs: only CSpTrsv consumes it.
	OpTri
	// OpSymSparse is a symmetric sparse input matrix stored as SymCSB (lower
	// triangle + diagonal tiles only); only CSpMMSym consumes it.
	OpSymSparse
)

func (k OpKind) String() string {
	switch k {
	case OpSparse:
		return "sparse"
	case OpVec:
		return "vec"
	case OpSmall:
		return "small"
	case OpScalar:
		return "scalar"
	case OpTri:
		return "tri"
	case OpSymSparse:
		return "symsparse"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Operand is a named, typed, partitioned datum.
type Operand struct {
	ID         OperandID
	Name       string
	Kind       OpKind
	Rows, Cols int
}

// CallKind classifies a program call. Each kind expands into a specific task
// pattern (see package graph).
type CallKind uint8

const (
	// CSpMM: Out += A·B where A is OpSparse and B, Out are OpVec. Expands to
	// one task per non-empty CSB tile, dependency-chained along each output
	// row block (the paper's dependency-based approach), or to buffered
	// tasks plus a reduction when the program requests the reduce-based
	// ablation variant.
	CSpMM CallKind = iota
	// CGemm: Out = alpha·A·B + beta·Out, A is OpVec (m×k), B is OpSmall
	// (k×n), Out is OpVec (m×n). One task per row block: the XY kernel.
	CGemm
	// CGemmT: Out = Aᵀ·B, A and B OpVec, Out OpSmall. One partial task per
	// row block plus one reduce task: the XTY (inner product) kernel.
	CGemmT
	// CAxpby: Out = alpha·A + beta·B elementwise over OpVec operands.
	// One task per row block.
	CAxpby
	// CScaleInv: Out = A / scalar(S). One task per row block, each depending
	// on the task that produced S.
	CScaleInv
	// CDot: scalar Out = Σ A∘B. One partial task per row block plus a
	// scalar reduce task; with Sqrt set it computes a 2-norm.
	CDot
	// CSmall: an opaque sequential function over small/scalar operands
	// (Rayleigh–Ritz solve, Cholesky, convergence bookkeeping). Exactly one
	// task; reads Ins, writes Outs.
	CSmall
	// CCopy: Out = A per row block (OpVec) or whole (OpSmall).
	CCopy
	// CDiagScale: Out[i,:] = D[i]·A[i,:] where D is a single-column vec
	// (e.g. the inverse diagonal of the matrix): the Jacobi preconditioner
	// application kernel. One task per row block.
	CDiagScale
	// CSpTrsv: solve the triangular system A·Out = B where A is OpTri and
	// B, Out are equal-width vecs (each of the k columns is solved against
	// its own right-hand side): forward substitution when Upper is false,
	// backward when true. Expands into one task per row block whose
	// dependencies follow the factor's level structure — the irregular DAG
	// the level-scheduled incomplete-Cholesky literature targets.
	CSpTrsv
	// CSpMMSym: Out = A·B where A is OpSymSparse and B, Out are OpVec. Each
	// stored tile task writes row band bi directly and band bj through the
	// transposed scatter; expansion resolves the write conflict with the
	// matrix's cached SymSchedule (conflict-free waves, or private
	// accumulators plus reduction tasks).
	CSpMMSym
	// CColDot: Out[0,j] = Σ_i A[i,j]·B[i,j] — a per-column dot product over
	// equal-width vecs, written into a 1×k OpSmall. One partial task per row
	// block plus one reduce task, like CDot but vector-valued: the reduction
	// kernel of batched multi-RHS solvers, where each right-hand side needs
	// its own scalar. With Sqrt set each column stores its 2-norm.
	CColDot
	// CColAxpby: Out[:,j] = A[:,j] + Beta·C[0,j]·B[:,j] where C is a 1×k
	// OpSmall of per-column coefficients: the batched-solver update kernel
	// (x += alpha∘p, r -= alpha∘q, p = r + beta∘p). One task per row block.
	CColAxpby
)

func (k CallKind) String() string {
	switch k {
	case CSpMM:
		return "SpMM"
	case CGemm:
		return "XY"
	case CGemmT:
		return "XTY"
	case CAxpby:
		return "AXPBY"
	case CScaleInv:
		return "SCALE"
	case CDot:
		return "DOT"
	case CSmall:
		return "SMALL"
	case CCopy:
		return "COPY"
	case CDiagScale:
		return "DSCALE"
	case CSpTrsv:
		return "TRSV"
	case CSpMMSym:
		return "SpMMsym"
	case CColDot:
		return "CDOT"
	case CColAxpby:
		return "CAXPBY"
	}
	return fmt.Sprintf("CallKind(%d)", uint8(k))
}

// SmallFn is the body of a CSmall call. It runs sequentially inside one task
// with exclusive access to the store (guaranteed by its dependencies).
type SmallFn func(st *Store)

// Call is one high-level operation of a program.
type Call struct {
	Kind        CallKind
	Name        string
	Out         OperandID
	A, B        OperandID
	S           OperandID // scalar input of CScaleInv; 1×k coefficient small of CColAxpby
	Alpha, Beta float64
	Sqrt        bool // CDot: store sqrt of the accumulated sum
	Upper       bool // CSpTrsv: backward (upper-triangular) substitution
	Fn          SmallFn
	Ins         []OperandID // CSmall extra inputs
	Outs        []OperandID // CSmall extra outputs (Out is Outs[0] by convention)
	// IndexLaunch marks the call as a provably non-interfering loop of
	// tasks; the Regent-style runtime uses it to skip per-task dependence
	// analysis (the paper's __demand(__index_launch)).
	IndexLaunch bool
	// ReduceSpMM selects the buffer-plus-reduction variant of CSpMM: every
	// tile task writes a private column buffer and per-row reduce tasks sum
	// them, instead of dependency-chaining tile tasks along output rows.
	// This is the ablation of paper Fig. 7, which the dependency-based
	// approach wins.
	ReduceSpMM bool
}

// Program is a partitioned operand space plus an ordered list of calls.
type Program struct {
	M     int // global row dimension shared by OpSparse/OpVec operands
	Block int // partition block size b
	NP    int // number of row partitions: ceil(M/Block)
	Ops   []Operand
	Calls []Call
}

// New creates a program over an m-row space partitioned into blocks of b
// rows. Panics if the dimensions are non-positive.
func New(m, b int) *Program {
	if m <= 0 || b <= 0 {
		panic(fmt.Sprintf("program: New(%d, %d): dimensions must be positive", m, b))
	}
	return &Program{M: m, Block: b, NP: (m + b - 1) / b}
}

func (p *Program) addOp(name string, kind OpKind, rows, cols int) OperandID {
	id := OperandID(len(p.Ops))
	p.Ops = append(p.Ops, Operand{ID: id, Name: name, Kind: kind, Rows: rows, Cols: cols})
	return id
}

// Sparse declares the sparse matrix operand (square, M×M).
func (p *Program) Sparse(name string) OperandID {
	return p.addOp(name, OpSparse, p.M, p.M)
}

// Vec declares an M×n block-of-vectors operand.
func (p *Program) Vec(name string, n int) OperandID {
	if n <= 0 {
		panic("program: Vec width must be positive")
	}
	return p.addOp(name, OpVec, p.M, n)
}

// Tri declares a triangular-factor operand (square, M×M, CSR-backed).
func (p *Program) Tri(name string) OperandID {
	return p.addOp(name, OpTri, p.M, p.M)
}

// SymSparse declares a symmetric sparse matrix operand (square, M×M,
// SymCSB-backed).
func (p *Program) SymSparse(name string) OperandID {
	return p.addOp(name, OpSymSparse, p.M, p.M)
}

// Small declares an r×c small dense operand.
func (p *Program) Small(name string, r, c int) OperandID {
	return p.addOp(name, OpSmall, r, c)
}

// Scalar declares a scalar operand.
func (p *Program) Scalar(name string) OperandID {
	return p.addOp(name, OpScalar, 1, 1)
}

// Op returns the operand descriptor.
func (p *Program) Op(id OperandID) Operand { return p.Ops[id] }

// PartRows returns the number of rows in row partition part.
func (p *Program) PartRows(part int) int {
	lo := part * p.Block
	hi := lo + p.Block
	if hi > p.M {
		hi = p.M
	}
	if lo >= hi {
		return 0
	}
	return hi - lo
}

func (p *Program) check(id OperandID, want OpKind, ctx string) Operand {
	if int(id) < 0 || int(id) >= len(p.Ops) {
		panic(fmt.Sprintf("program: %s: operand %d undeclared", ctx, id))
	}
	o := p.Ops[id]
	if o.Kind != want {
		panic(fmt.Sprintf("program: %s: operand %s is %s, want %s", ctx, o.Name, o.Kind, want))
	}
	return o
}

// SpMM appends Out = A·X (A sparse, X/Out vec with equal widths).
func (p *Program) SpMM(out, a, x OperandID) *Program {
	oa := p.check(a, OpSparse, "SpMM")
	ox := p.check(x, OpVec, "SpMM")
	oo := p.check(out, OpVec, "SpMM")
	if ox.Cols != oo.Cols {
		panic(fmt.Sprintf("program: SpMM width mismatch: %s has %d cols, %s has %d", ox.Name, ox.Cols, oo.Name, oo.Cols))
	}
	p.Calls = append(p.Calls, Call{Kind: CSpMM, Name: "SpMM", Out: out, A: a, B: x, Alpha: 1})
	_ = oa
	return p
}

// SpMMReduceBased appends Out = A·X using the buffer-plus-reduction task
// pattern instead of dependency chaining (the losing side of the paper's
// Fig. 7 ablation). Memory cost is NP column buffers of the full output size.
func (p *Program) SpMMReduceBased(out, a, x OperandID) *Program {
	p.SpMM(out, a, x)
	p.Calls[len(p.Calls)-1].ReduceSpMM = true
	p.Calls[len(p.Calls)-1].Name = "SpMM-red"
	return p
}

// SpMMSym appends Out = A·X where A is a symmetric sparse operand and
// X/Out are vecs with equal widths. Expansion consumes the SymCSB attached
// via graph.Options.Syms; its cached schedule decides wave vs accumulator
// task emission.
func (p *Program) SpMMSym(out, a, x OperandID) *Program {
	p.check(a, OpSymSparse, "SpMMSym")
	ox := p.check(x, OpVec, "SpMMSym")
	oo := p.check(out, OpVec, "SpMMSym")
	if ox.Cols != oo.Cols {
		panic(fmt.Sprintf("program: SpMMSym width mismatch: %s has %d cols, %s has %d", ox.Name, ox.Cols, oo.Name, oo.Cols))
	}
	p.Calls = append(p.Calls, Call{Kind: CSpMMSym, Name: "SpMMsym", Out: out, A: a, B: x, Alpha: 1})
	return p
}

// Gemm appends Out = alpha·A·Z + beta·Out (the XY kernel); A, Out are vecs,
// Z small with Z.Rows == A.Cols and Z.Cols == Out.Cols.
func (p *Program) Gemm(out OperandID, alpha float64, a, z OperandID, beta float64) *Program {
	oa := p.check(a, OpVec, "Gemm")
	oz := p.check(z, OpSmall, "Gemm")
	oo := p.check(out, OpVec, "Gemm")
	if oz.Rows != oa.Cols || oz.Cols != oo.Cols {
		panic(fmt.Sprintf("program: Gemm shape mismatch: %s is %dx%d, %s is %dx%d, %s is %dx%d",
			oa.Name, oa.Rows, oa.Cols, oz.Name, oz.Rows, oz.Cols, oo.Name, oo.Rows, oo.Cols))
	}
	p.Calls = append(p.Calls, Call{Kind: CGemm, Name: "XY", Out: out, A: a, B: z, Alpha: alpha, Beta: beta})
	return p
}

// GemmT appends Out = Aᵀ·B (the XTY kernel); A, B vecs, Out small
// (A.Cols × B.Cols).
func (p *Program) GemmT(out, a, b OperandID) *Program {
	oa := p.check(a, OpVec, "GemmT")
	ob := p.check(b, OpVec, "GemmT")
	oo := p.check(out, OpSmall, "GemmT")
	if oo.Rows != oa.Cols || oo.Cols != ob.Cols {
		panic(fmt.Sprintf("program: GemmT shape mismatch: %s is %dx%d for %sᵀ·%s (%dx%d)",
			oo.Name, oo.Rows, oo.Cols, oa.Name, ob.Name, oa.Cols, ob.Cols))
	}
	p.Calls = append(p.Calls, Call{Kind: CGemmT, Name: "XTY", Out: out, A: a, B: b, Alpha: 1})
	return p
}

// Axpby appends Out = alpha·A + beta·B over vec operands of equal shape.
func (p *Program) Axpby(out OperandID, alpha float64, a OperandID, beta float64, b OperandID) *Program {
	oa := p.check(a, OpVec, "Axpby")
	ob := p.check(b, OpVec, "Axpby")
	oo := p.check(out, OpVec, "Axpby")
	if oa.Cols != ob.Cols || oa.Cols != oo.Cols {
		panic("program: Axpby width mismatch")
	}
	p.Calls = append(p.Calls, Call{Kind: CAxpby, Name: "AXPBY", Out: out, A: a, B: b, Alpha: alpha, Beta: beta})
	return p
}

// ScaleInv appends Out = A / s where s is a scalar operand.
func (p *Program) ScaleInv(out, a, s OperandID) *Program {
	p.check(a, OpVec, "ScaleInv")
	p.check(out, OpVec, "ScaleInv")
	p.check(s, OpScalar, "ScaleInv")
	p.Calls = append(p.Calls, Call{Kind: CScaleInv, Name: "SCALE", Out: out, A: a, S: s})
	return p
}

// Dot appends scalar Out = Σ A∘B.
func (p *Program) Dot(out, a, b OperandID) *Program {
	p.check(a, OpVec, "Dot")
	p.check(b, OpVec, "Dot")
	p.check(out, OpScalar, "Dot")
	p.Calls = append(p.Calls, Call{Kind: CDot, Name: "DOT", Out: out, A: a, B: b})
	return p
}

// Norm appends scalar Out = ||A||₂ (a Dot with a final square root).
func (p *Program) Norm(out, a OperandID) *Program {
	p.check(a, OpVec, "Norm")
	p.check(out, OpScalar, "Norm")
	p.Calls = append(p.Calls, Call{Kind: CDot, Name: "NORM", Out: out, A: a, B: a, Sqrt: true})
	return p
}

// ColDot appends Out[0,j] = Σ_i A[i,j]·B[i,j]: a per-column dot product over
// vec operands of equal shape, written into a 1×k small operand.
func (p *Program) ColDot(out, a, b OperandID) *Program {
	oa := p.check(a, OpVec, "ColDot")
	ob := p.check(b, OpVec, "ColDot")
	oo := p.check(out, OpSmall, "ColDot")
	if oa.Cols != ob.Cols {
		panic(fmt.Sprintf("program: ColDot width mismatch: %s has %d cols, %s has %d", oa.Name, oa.Cols, ob.Name, ob.Cols))
	}
	if oo.Rows != 1 || oo.Cols != oa.Cols {
		panic(fmt.Sprintf("program: ColDot output %s is %dx%d, want 1x%d", oo.Name, oo.Rows, oo.Cols, oa.Cols))
	}
	p.Calls = append(p.Calls, Call{Kind: CColDot, Name: "CDOT", Out: out, A: a, B: b})
	return p
}

// ColNorm appends Out[0,j] = ||A[:,j]||₂ (a ColDot with per-column square
// roots).
func (p *Program) ColNorm(out, a OperandID) *Program {
	oa := p.check(a, OpVec, "ColNorm")
	oo := p.check(out, OpSmall, "ColNorm")
	if oo.Rows != 1 || oo.Cols != oa.Cols {
		panic(fmt.Sprintf("program: ColNorm output %s is %dx%d, want 1x%d", oo.Name, oo.Rows, oo.Cols, oa.Cols))
	}
	p.Calls = append(p.Calls, Call{Kind: CColDot, Name: "CNORM", Out: out, A: a, B: a, Sqrt: true})
	return p
}

// ColAxpby appends Out[:,j] = A[:,j] + beta·C[0,j]·B[:,j] where coef is a 1×k
// small operand of per-column coefficients: the batched-solver update kernel.
// A column whose coefficient is zero passes A through unchanged, which is how
// batched solvers freeze retired (converged) columns.
func (p *Program) ColAxpby(out, a, coef OperandID, beta float64, b OperandID) *Program {
	oa := p.check(a, OpVec, "ColAxpby")
	ob := p.check(b, OpVec, "ColAxpby")
	oo := p.check(out, OpVec, "ColAxpby")
	oc := p.check(coef, OpSmall, "ColAxpby")
	if oa.Cols != ob.Cols || oa.Cols != oo.Cols {
		panic("program: ColAxpby width mismatch")
	}
	if oc.Rows != 1 || oc.Cols != oa.Cols {
		panic(fmt.Sprintf("program: ColAxpby coefficient %s is %dx%d, want 1x%d", oc.Name, oc.Rows, oc.Cols, oa.Cols))
	}
	p.Calls = append(p.Calls, Call{Kind: CColAxpby, Name: "CAXPBY", Out: out, A: a, B: b, S: coef, Beta: beta})
	return p
}

// SmallStep appends a sequential task running fn, reading ins and writing
// outs. ins/outs must be OpSmall or OpScalar operands; block data does not
// belong in a small step.
func (p *Program) SmallStep(name string, fn SmallFn, ins, outs []OperandID) *Program {
	for _, id := range append(append([]OperandID{}, ins...), outs...) {
		o := p.Ops[id]
		if o.Kind != OpSmall && o.Kind != OpScalar {
			panic(fmt.Sprintf("program: SmallStep %s: operand %s is %s; small steps may only touch small/scalar operands", name, o.Name, o.Kind))
		}
	}
	if len(outs) == 0 {
		panic("program: SmallStep needs at least one output")
	}
	p.Calls = append(p.Calls, Call{Kind: CSmall, Name: name, Fn: fn, Ins: ins, Outs: outs, Out: outs[0]})
	return p
}

// Copy appends Out = A for two vec operands of equal shape.
func (p *Program) Copy(out, a OperandID) *Program {
	oa := p.check(a, OpVec, "Copy")
	oo := p.check(out, OpVec, "Copy")
	if oa.Cols != oo.Cols {
		panic("program: Copy width mismatch")
	}
	p.Calls = append(p.Calls, Call{Kind: CCopy, Name: "COPY", Out: out, A: a})
	return p
}

// DiagScale appends Out[i,:] = D[i]·A[i,:], the Jacobi preconditioner
// application: D is a width-1 vec holding per-row scale factors.
func (p *Program) DiagScale(out, d, a OperandID) *Program {
	od := p.check(d, OpVec, "DiagScale")
	oa := p.check(a, OpVec, "DiagScale")
	oo := p.check(out, OpVec, "DiagScale")
	if od.Cols != 1 {
		panic("program: DiagScale D must have width 1")
	}
	if oa.Cols != oo.Cols {
		panic("program: DiagScale width mismatch")
	}
	p.Calls = append(p.Calls, Call{Kind: CDiagScale, Name: "DSCALE", Out: out, A: a, B: d})
	return p
}

// SpTrsvLower appends a forward substitution solving L·Out = B, where l is
// an OpTri lower factor and B, Out are vecs of equal width.
func (p *Program) SpTrsvLower(out, l, b OperandID) *Program {
	return p.spTrsv(out, l, b, false)
}

// SpTrsvUpper appends a backward substitution solving U·Out = B, where u is
// an OpTri upper factor and B, Out are vecs of equal width.
func (p *Program) SpTrsvUpper(out, u, b OperandID) *Program {
	return p.spTrsv(out, u, b, true)
}

func (p *Program) spTrsv(out, tri, b OperandID, upper bool) *Program {
	p.check(tri, OpTri, "SpTrsv")
	ob := p.check(b, OpVec, "SpTrsv")
	oo := p.check(out, OpVec, "SpTrsv")
	if ob.Cols != oo.Cols {
		panic("program: SpTrsv width mismatch")
	}
	if out == b {
		panic("program: SpTrsv output must not alias its right-hand side")
	}
	p.Calls = append(p.Calls, Call{Kind: CSpTrsv, Name: "TRSV", Out: out, A: tri, B: b, Upper: upper})
	return p
}

// MarkIndexLaunch flags the most recently appended call as an index launch.
func (p *Program) MarkIndexLaunch() *Program {
	if len(p.Calls) == 0 {
		panic("program: MarkIndexLaunch with no calls")
	}
	p.Calls[len(p.Calls)-1].IndexLaunch = true
	return p
}
