package program

import (
	"testing"

	"sparsetask/internal/sparse"
)

func testProgram() (*Program, OperandID, OperandID, OperandID) {
	p := New(20, 5)
	a := p.Sparse("A")
	x := p.Vec("X", 2)
	y := p.Vec("Y", 2)
	return p, a, x, y
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive dims")
		}
	}()
	New(0, 4)
}

func TestPartitioning(t *testing.T) {
	p := New(22, 5)
	if p.NP != 5 {
		t.Fatalf("NP = %d, want 5", p.NP)
	}
	if p.PartRows(0) != 5 || p.PartRows(4) != 2 {
		t.Fatalf("part rows: %d, %d", p.PartRows(0), p.PartRows(4))
	}
	if p.PartRows(7) != 0 {
		t.Fatal("out-of-range partition should have 0 rows")
	}
}

func TestShapeChecking(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"spmm width mismatch", func() {
			p, a, x, _ := testProgram()
			bad := p.Vec("bad", 3)
			p.SpMM(bad, a, x)
		}},
		{"spmm wrong kind", func() {
			p, _, x, y := testProgram()
			p.SpMM(y, x, x) // x is a vec, not sparse
		}},
		{"gemm shape", func() {
			p, _, x, y := testProgram()
			z := p.Small("Z", 3, 3) // needs 2x2
			p.Gemm(y, 1, x, z, 0)
		}},
		{"gemmt shape", func() {
			p, _, x, y := testProgram()
			out := p.Small("O", 3, 2)
			p.GemmT(out, x, y)
		}},
		{"axpby width", func() {
			p, _, x, _ := testProgram()
			w := p.Vec("W", 1)
			p.Axpby(w, 1, x, 1, x)
		}},
		{"copy width", func() {
			p, _, x, _ := testProgram()
			w := p.Vec("W", 1)
			p.Copy(w, x)
		}},
		{"smallstep vec operand", func() {
			p, _, x, _ := testProgram()
			s := p.Scalar("s")
			p.SmallStep("bad", func(*Store) {}, []OperandID{x}, []OperandID{s})
		}},
		{"smallstep no outputs", func() {
			p, _, _, _ := testProgram()
			s := p.Scalar("s")
			p.SmallStep("bad", func(*Store) {}, []OperandID{s}, nil)
		}},
		{"index launch without calls", func() {
			p := New(8, 4)
			p.MarkIndexLaunch()
		}},
		{"vec zero width", func() {
			p := New(8, 4)
			p.Vec("bad", 0)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.name)
				}
			}()
			c.fn()
		})
	}
}

func TestBuilderChainAndKinds(t *testing.T) {
	p, a, x, y := testProgram()
	s := p.Scalar("nrm")
	z := p.Small("Z", 2, 2)
	p.SpMM(y, a, x).Gemm(x, 1, y, z, 0).MarkIndexLaunch().Norm(s, y).ScaleInv(x, y, s)
	if len(p.Calls) != 4 {
		t.Fatalf("%d calls, want 4", len(p.Calls))
	}
	if !p.Calls[1].IndexLaunch {
		t.Error("MarkIndexLaunch did not flag the Gemm call")
	}
	if p.Calls[2].Kind != CDot || !p.Calls[2].Sqrt {
		t.Error("Norm should be a CDot with Sqrt")
	}
	if got := p.Op(a).Kind; got != OpSparse {
		t.Errorf("operand kind = %v", got)
	}
}

func TestSpMMReduceBased(t *testing.T) {
	p, a, x, y := testProgram()
	p.SpMMReduceBased(y, a, x)
	if !p.Calls[0].ReduceSpMM {
		t.Fatal("ReduceSpMM not set")
	}
}

func TestStoreAllocation(t *testing.T) {
	p, a, x, y := testProgram()
	pr := p.Small("P", 2, 2)
	sc := p.Scalar("s")
	p.SpMM(y, a, x)
	p.GemmT(pr, x, y)
	p.Dot(sc, x, y)
	st := NewStore(p)
	if len(st.Vec[x]) != 20*2 {
		t.Fatalf("vec X len %d", len(st.Vec[x]))
	}
	if len(st.Small[pr]) != 4 {
		t.Fatalf("small P len %d", len(st.Small[pr]))
	}
	// Partials preallocated for GemmT (call 1) and Dot (call 2).
	if got := len(st.Partial(1, 0)); got != 4 {
		t.Fatalf("GemmT partial size %d", got)
	}
	if got := len(st.Partial(2, 3)); got != 1 {
		t.Fatalf("Dot partial size %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for missing partial")
		}
	}()
	st.Partial(0, 0)
}

func TestStoreSetSparseValidation(t *testing.T) {
	p, a, x, _ := testProgram()
	st := NewStore(p)
	coo := sparse.NewCOO(20, 20, 1)
	coo.Append(0, 0, 1)

	t.Run("wrong block", func(t *testing.T) {
		defer expectPanic(t)
		st.SetSparse(a, coo.ToCSB(7))
	})
	t.Run("wrong operand kind", func(t *testing.T) {
		defer expectPanic(t)
		st.SetSparse(x, coo.ToCSB(5))
	})
	t.Run("wrong rows", func(t *testing.T) {
		defer expectPanic(t)
		small := sparse.NewCOO(10, 10, 1)
		small.Append(0, 0, 1)
		st.SetSparse(a, small.ToCSB(5))
	})
	st.SetSparse(a, coo.ToCSB(5)) // correct attach must not panic
}

func expectPanic(t *testing.T) {
	t.Helper()
	if recover() == nil {
		t.Error("expected panic")
	}
}

func TestVecPart(t *testing.T) {
	p := New(22, 5)
	x := p.Vec("X", 3)
	st := NewStore(p)
	if got := len(st.VecPart(x, 0)); got != 15 {
		t.Fatalf("part 0 len %d, want 15", got)
	}
	if got := len(st.VecPart(x, 4)); got != 6 {
		t.Fatalf("edge part len %d, want 6 (2 rows x 3)", got)
	}
	// Parts must alias the backing array.
	st.VecPart(x, 1)[0] = 42
	if st.Vec[x][15] != 42 {
		t.Fatal("VecPart does not alias backing storage")
	}
}

func TestOpKindStrings(t *testing.T) {
	for k, want := range map[OpKind]string{OpSparse: "sparse", OpVec: "vec", OpSmall: "small", OpScalar: "scalar"} {
		if k.String() != want {
			t.Errorf("%v != %s", k, want)
		}
	}
	for k, want := range map[CallKind]string{CSpMM: "SpMM", CGemm: "XY", CGemmT: "XTY", CAxpby: "AXPBY", CScaleInv: "SCALE", CDot: "DOT", CSmall: "SMALL", CCopy: "COPY"} {
		if k.String() != want {
			t.Errorf("%v != %s", k, want)
		}
	}
}
