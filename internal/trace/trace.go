// Package trace records per-task execution intervals (task, worker, kernel,
// start, end) and renders them as execution flow graphs — the per-worker
// timelines of the paper's Figs. 10 and 13. Both the real (goroutine)
// runtimes and the discrete-event simulator write the same Recorder, so flow
// graphs from either source share tooling.
package trace

import (
	"fmt"
	"io"
	"sort"
)

// Event is one executed task interval. Times are in nanoseconds from the
// start of the run (wall-clock for exec mode, virtual for sim mode).
type Event struct {
	Task   int32
	Worker int32
	Call   int32
	Kernel string
	Start  int64
	End    int64
}

// Recorder collects events with per-worker buffers so recording is
// contention- and lock-free during execution.
type Recorder struct {
	perWorker [][]Event
}

// NewRecorder returns a recorder for the given worker count.
func NewRecorder(workers int) *Recorder {
	return &Recorder{perWorker: make([][]Event, workers)}
}

// Record appends an event for worker w. Only worker w may call Record(w,...).
func (r *Recorder) Record(w int, e Event) {
	e.Worker = int32(w)
	r.perWorker[w] = append(r.perWorker[w], e)
}

// Workers returns the recorder's worker count.
func (r *Recorder) Workers() int { return len(r.perWorker) }

// Events merges all per-worker buffers sorted by start time.
func (r *Recorder) Events() []Event {
	var out []Event
	for _, evs := range r.perWorker {
		out = append(out, evs...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Worker < out[j].Worker
	})
	return out
}

// Span returns the time from the earliest start to the latest end, i.e. the
// makespan of the recorded execution.
func (r *Recorder) Span() int64 {
	first, last := int64(-1), int64(0)
	for _, evs := range r.perWorker {
		for _, e := range evs {
			if first < 0 || e.Start < first {
				first = e.Start
			}
			if e.End > last {
				last = e.End
			}
		}
	}
	if first < 0 {
		return 0
	}
	return last - first
}

// KernelSpan summarizes one kernel's activity window and total busy time.
type KernelSpan struct {
	Kernel string
	First  int64
	Last   int64
	Busy   int64
	Tasks  int
}

// KernelSpans aggregates events by kernel name, ordered by first start.
// Overlap between spans of different kernels is the pipelining the paper
// credits for the AMT cache behavior.
func (r *Recorder) KernelSpans() []KernelSpan {
	agg := map[string]*KernelSpan{}
	for _, evs := range r.perWorker {
		for _, e := range evs {
			k, ok := agg[e.Kernel]
			if !ok {
				k = &KernelSpan{Kernel: e.Kernel, First: e.Start}
				agg[e.Kernel] = k
			}
			if e.Start < k.First {
				k.First = e.Start
			}
			if e.End > k.Last {
				k.Last = e.End
			}
			k.Busy += e.End - e.Start
			k.Tasks++
		}
	}
	out := make([]KernelSpan, 0, len(agg))
	for _, k := range agg {
		out = append(out, *k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].First < out[j].First })
	return out
}

// PipelineOverlap returns the fraction of busy time during which tasks of at
// least two *different* kernels are executing simultaneously: ~0 for a
// barrier-separated BSP run (one kernel at a time), approaching 1 for deeply
// pipelined AMT runs. Computed by a sweep over task start/end events, so it
// is meaningful across multiple recorded iterations.
func (r *Recorder) PipelineOverlap() float64 {
	type edge struct {
		t      int64
		kernel string
		delta  int
	}
	var edges []edge
	for _, evs := range r.perWorker {
		for _, e := range evs {
			edges = append(edges, edge{e.Start, e.Kernel, 1}, edge{e.End, e.Kernel, -1})
		}
	}
	if len(edges) == 0 {
		return 0
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].t != edges[j].t {
			return edges[i].t < edges[j].t
		}
		return edges[i].delta < edges[j].delta // process ends before starts
	})
	active := map[string]int{}
	distinct := 0
	var busy, multi int64
	prev := edges[0].t
	for _, e := range edges {
		if e.t > prev {
			if distinct >= 1 {
				busy += e.t - prev
			}
			if distinct >= 2 {
				multi += e.t - prev
			}
			prev = e.t
		}
		active[e.kernel] += e.delta
		switch {
		case e.delta > 0 && active[e.kernel] == 1:
			distinct++
		case e.delta < 0 && active[e.kernel] == 0:
			distinct--
		}
	}
	if busy == 0 {
		return 0
	}
	return float64(multi) / float64(busy)
}

// WriteTSV dumps events as worker\tkernel\tstart\tend\ttask rows, the format
// consumed by external Gantt plotters for the flow-graph figures.
func (r *Recorder) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "worker\tkernel\tstart_ns\tend_ns\ttask"); err != nil {
		return err
	}
	for _, e := range r.Events() {
		if _, err := fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%d\n", e.Worker, e.Kernel, e.Start, e.End, e.Task); err != nil {
			return err
		}
	}
	return nil
}

// RenderASCII draws a coarse per-worker timeline (one row per worker, one
// column per time bucket, letter = kernel most active in that bucket) — a
// terminal rendition of the paper's execution flow graphs.
func (r *Recorder) RenderASCII(w io.Writer, cols int) error {
	span := r.Span()
	if span == 0 || cols <= 0 {
		_, err := fmt.Fprintln(w, "(empty trace)")
		return err
	}
	kernels := map[string]byte{}
	next := byte('A')
	for _, ks := range r.KernelSpans() {
		if _, ok := kernels[ks.Kernel]; !ok {
			kernels[ks.Kernel] = next
			next++
		}
	}
	var t0 int64 = -1
	for _, evs := range r.perWorker {
		for _, e := range evs {
			if t0 < 0 || e.Start < t0 {
				t0 = e.Start
			}
		}
	}
	for wi, evs := range r.perWorker {
		row := make([]byte, cols)
		fill := make([]int64, cols)
		for i := range row {
			row[i] = '.'
		}
		for _, e := range evs {
			lo := int((e.Start - t0) * int64(cols) / span)
			hi := int((e.End - t0) * int64(cols) / span)
			if hi >= cols {
				hi = cols - 1
			}
			for c := lo; c <= hi; c++ {
				d := e.End - e.Start
				if d >= fill[c] {
					fill[c] = d
					row[c] = kernels[e.Kernel]
				}
			}
		}
		if _, err := fmt.Fprintf(w, "w%02d |%s|\n", wi, row); err != nil {
			return err
		}
	}
	// Legend.
	type kv struct {
		k string
		b byte
	}
	var legend []kv
	for k, b := range kernels {
		legend = append(legend, kv{k, b})
	}
	sort.Slice(legend, func(i, j int) bool { return legend[i].b < legend[j].b })
	for _, l := range legend {
		if _, err := fmt.Fprintf(w, "  %c = %s\n", l.b, l.k); err != nil {
			return err
		}
	}
	return nil
}

func maxi(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func mini(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
