package trace

import (
	"bytes"
	"strings"
	"testing"
)

func sampleRecorder() *Recorder {
	r := NewRecorder(2)
	r.Record(0, Event{Task: 0, Kernel: "SpMM", Start: 0, End: 100})
	r.Record(0, Event{Task: 1, Kernel: "XY", Start: 100, End: 150})
	r.Record(1, Event{Task: 2, Kernel: "SpMM", Start: 10, End: 90})
	r.Record(1, Event{Task: 3, Kernel: "XTY", Start: 95, End: 140})
	return r
}

func TestEventsSorted(t *testing.T) {
	r := sampleRecorder()
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("%d events, want 4", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Start < evs[i-1].Start {
			t.Fatal("events not sorted by start")
		}
	}
	if evs[0].Worker != 0 || evs[1].Worker != 1 {
		t.Fatal("worker ids not preserved")
	}
}

func TestSpan(t *testing.T) {
	r := sampleRecorder()
	if got := r.Span(); got != 150 {
		t.Fatalf("span = %d, want 150", got)
	}
	if NewRecorder(1).Span() != 0 {
		t.Fatal("empty recorder should have zero span")
	}
}

func TestKernelSpans(t *testing.T) {
	r := sampleRecorder()
	ks := r.KernelSpans()
	if len(ks) != 3 {
		t.Fatalf("%d kernels, want 3", len(ks))
	}
	if ks[0].Kernel != "SpMM" {
		t.Fatalf("first kernel %s, want SpMM (earliest)", ks[0].Kernel)
	}
	if ks[0].First != 0 || ks[0].Last != 100 || ks[0].Tasks != 2 || ks[0].Busy != 180 {
		t.Fatalf("SpMM span %+v", ks[0])
	}
}

func TestPipelineOverlap(t *testing.T) {
	// Barrier-separated kernels: zero overlap.
	sep := NewRecorder(1)
	sep.Record(0, Event{Kernel: "A", Start: 0, End: 100})
	sep.Record(0, Event{Kernel: "B", Start: 100, End: 200})
	if ov := sep.PipelineOverlap(); ov != 0 {
		t.Fatalf("separated overlap = %v, want 0", ov)
	}
	// Fully overlapped kernels.
	ovr := NewRecorder(2)
	ovr.Record(0, Event{Kernel: "A", Start: 0, End: 100})
	ovr.Record(1, Event{Kernel: "B", Start: 0, End: 100})
	if ov := ovr.PipelineOverlap(); ov != 1 {
		t.Fatalf("full overlap = %v, want 1", ov)
	}
	// A single kernel has no pairwise overlap by definition.
	one := NewRecorder(1)
	one.Record(0, Event{Kernel: "A", Start: 0, End: 50})
	if ov := one.PipelineOverlap(); ov != 0 {
		t.Fatalf("single-kernel overlap = %v, want 0", ov)
	}
}

func TestWriteTSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleRecorder().WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("%d lines, want header + 4", len(lines))
	}
	if !strings.HasPrefix(lines[0], "worker\tkernel") {
		t.Fatalf("bad header: %s", lines[0])
	}
}

func TestRenderASCII(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleRecorder().RenderASCII(&buf, 40); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "w00 |") || !strings.Contains(out, "w01 |") {
		t.Fatalf("missing worker rows:\n%s", out)
	}
	if !strings.Contains(out, "= SpMM") {
		t.Fatalf("missing legend:\n%s", out)
	}
	// Empty trace must not panic.
	var empty bytes.Buffer
	if err := NewRecorder(1).RenderASCII(&empty, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), "empty") {
		t.Fatal("empty trace should say so")
	}
}
