// Package route implements solverfront's scale-out serving layer: one HTTP
// front end over N solverd shards. Placement is fingerprint-affinity
// routing — a job's matrix is fingerprinted (structure hash, the same key
// the shard-side plan and factor caches use) and rendezvous-hashed to a
// shard, so repeat traffic for a matrix keeps landing where its autotuned
// plan, IC(0) factors, and batch-coalescing peers already are. The router
// holds no placement table: Rank is a pure function, so restarts and
// replicas agree. A queue-depth spill heuristic demotes an overloaded
// primary to its second rendezvous choice, and a one-hop retry turns a
// shard's 429 into a fallback attempt before backpressure reaches the
// client.
package route

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sparsetask/internal/server"
)

// Shard names one solverd instance behind the router.
type Shard struct {
	// Name keys the rendezvous hash: it IS the placement, so it must stay
	// stable across router restarts and must not contain ":" (the job-ID
	// namespace separator).
	Name string
	// URL is the shard's base URL, e.g. "http://127.0.0.1:8081".
	URL string
}

// Config sizes the router.
type Config struct {
	Shards []Shard
	// ProbeInterval is the /healthz polling period. Default 500ms.
	ProbeInterval time.Duration
	// SpillFraction is the queue occupancy (depth/capacity) at which a
	// submission spills from its first-choice shard to the second rendezvous
	// choice. Default 0.75.
	SpillFraction float64
	// FingerprintCacheSize bounds the spec→fingerprint LRU. Default 256.
	FingerprintCacheSize int
	// Client overrides the HTTP client used for probing and proxying
	// (default: 10s timeout).
	Client *http.Client
}

// Router fronts the shard fleet. Create with New, mount Handler() on an
// http.Server, and call Close on shutdown to stop the probers.
type Router struct {
	cfg    Config
	client *http.Client
	shards []*shardState
	byName map[string]*shardState
	names  []string // rendezvous input, config order
	fps    *fpCache
	mux    *http.ServeMux

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	submitted   atomic.Int64 // jobs accepted by a shard
	spilled     atomic.Int64 // jobs placed off their first rendezvous choice
	rejected    atomic.Int64 // 429s propagated to clients
	unrouteable atomic.Int64 // 503s: no placeable shard
}

// New validates the shard set and starts one health prober per shard.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("route: need at least one shard")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 500 * time.Millisecond
	}
	if cfg.SpillFraction <= 0 || cfg.SpillFraction > 1 {
		cfg.SpillFraction = 0.75
	}
	if cfg.FingerprintCacheSize <= 0 {
		cfg.FingerprintCacheSize = 256
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &Router{
		cfg:    cfg,
		client: client,
		byName: make(map[string]*shardState, len(cfg.Shards)),
		fps:    newFPCache(cfg.FingerprintCacheSize),
		ctx:    ctx,
		cancel: cancel,
	}
	for _, sh := range cfg.Shards {
		if sh.Name == "" || strings.Contains(sh.Name, ":") {
			cancel()
			return nil, fmt.Errorf("route: bad shard name %q (must be non-empty, no %q)", sh.Name, ":")
		}
		if sh.URL == "" {
			cancel()
			return nil, fmt.Errorf("route: shard %s needs a URL", sh.Name)
		}
		if _, dup := r.byName[sh.Name]; dup {
			cancel()
			return nil, fmt.Errorf("route: duplicate shard name %q", sh.Name)
		}
		st := &shardState{name: sh.Name, base: strings.TrimRight(sh.URL, "/")}
		r.shards = append(r.shards, st)
		r.byName[sh.Name] = st
		r.names = append(r.names, sh.Name)
	}
	r.mux = http.NewServeMux()
	r.mux.HandleFunc("POST /jobs", r.handleSubmit)
	r.mux.HandleFunc("GET /jobs", r.handleList)
	r.mux.HandleFunc("GET /jobs/{id}", r.handleGet)
	r.mux.HandleFunc("DELETE /jobs/{id}", r.handleCancel)
	r.mux.HandleFunc("GET /metrics", r.handleMetrics)
	r.mux.HandleFunc("GET /healthz", r.handleHealth)
	r.wg.Add(len(r.shards))
	for _, st := range r.shards {
		go r.prober(st)
	}
	return r, nil
}

// Handler exposes the HTTP API — the same surface a single solverd serves,
// so clients and loadgen point at either interchangeably.
func (r *Router) Handler() http.Handler { return r.mux }

// Close stops the probers and waits for them to exit. It does not drain the
// shards; each solverd owns its own drain.
func (r *Router) Close() {
	r.cancel()
	r.wg.Wait()
}

// Assign returns the shard name a fingerprint routes to, before health or
// spill adjustments — the stable rendezvous placement.
func (r *Router) Assign(fp uint64) string {
	return Rank(r.names, fp)[0]
}

// candidates returns placeable shards in placement order for a fingerprint:
// rendezvous rank, with the primary demoted behind the runner-up once its
// queue occupancy crosses SpillFraction — but only when the runner-up is
// strictly less loaded, so a uniformly saturated fleet doesn't ping-pong
// jobs away from their warm caches for nothing.
func (r *Router) candidates(fp uint64) []*shardState {
	out := make([]*shardState, 0, len(r.shards))
	for _, n := range Rank(r.names, fp) {
		if s := r.byName[n]; s.placeable() {
			out = append(out, s)
		}
	}
	if len(out) >= 2 {
		po, so := out[0].occupancy(), out[1].occupancy()
		if po >= r.cfg.SpillFraction && so >= 0 && so < po {
			out[0], out[1] = out[1], out[0]
		}
	}
	return out
}

func (r *Router) handleSubmit(w http.ResponseWriter, req *http.Request) {
	var spec server.JobSpec
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job spec: %w", err))
		return
	}
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	fp, err := r.fps.fingerprint(spec.Matrix)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("matrix: %w", err))
		return
	}
	cands := r.candidates(fp)
	if len(cands) == 0 {
		r.unrouteable.Add(1)
		writeError(w, http.StatusServiceUnavailable, errors.New("no healthy shard"))
		return
	}
	if len(cands) > 2 {
		// Primary plus one fallback: bounded tail latency, and affinity decays
		// fast past the second choice anyway.
		cands = cands[:2]
	}
	body, err := json.Marshal(spec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	primary := Rank(r.names, fp)[0]
	var lastStatus int
	var lastBody []byte
	for _, s := range cands {
		status, respBody, err := r.proxy(req.Context(), http.MethodPost, s, "/jobs", body)
		if err != nil {
			// Unreachable mid-interval: mark it down now and try the fallback.
			s.setUnhealthy(err.Error())
			continue
		}
		switch status {
		case http.StatusAccepted:
			r.submitted.Add(1)
			if s.name != primary {
				r.spilled.Add(1)
			}
			r.writePrefixedView(w, status, s.name, respBody)
			return
		case http.StatusTooManyRequests:
			s.markFull()
			lastStatus, lastBody = status, respBody
			continue
		default:
			// 400/503/...: the shard's verdict on the spec is authoritative.
			writeRaw(w, status, respBody)
			return
		}
	}
	if lastStatus == http.StatusTooManyRequests {
		r.rejected.Add(1)
		writeRaw(w, lastStatus, lastBody)
		return
	}
	r.unrouteable.Add(1)
	writeError(w, http.StatusServiceUnavailable, errors.New("no shard reachable"))
}

// handleList fans GET /jobs out to every shard and merges the results, job
// IDs namespaced "shard:id". Unreachable shards are skipped — a partial
// listing beats a failed one during a rolling restart.
func (r *Router) handleList(w http.ResponseWriter, req *http.Request) {
	views := make([][]server.JobView, len(r.shards))
	var wg sync.WaitGroup
	wg.Add(len(r.shards))
	for i, s := range r.shards {
		go func(i int, s *shardState) {
			defer wg.Done()
			status, body, err := r.proxy(req.Context(), http.MethodGet, s, "/jobs", nil)
			if err != nil || status != http.StatusOK {
				return
			}
			var vs []server.JobView
			if json.Unmarshal(body, &vs) != nil {
				return
			}
			for j := range vs {
				vs[j].ID = s.name + ":" + vs[j].ID
			}
			views[i] = vs
		}(i, s)
	}
	wg.Wait()
	merged := []server.JobView{}
	for _, vs := range views {
		merged = append(merged, vs...)
	}
	writeJSON(w, http.StatusOK, merged)
}

// shardJob splits a namespaced job ID "shard:id" into its shard and the
// shard-local ID.
func (r *Router) shardJob(id string) (*shardState, string, error) {
	name, local, ok := strings.Cut(id, ":")
	if !ok {
		return nil, "", fmt.Errorf("job id %q is not shard-qualified (want shard:id)", id)
	}
	s := r.byName[name]
	if s == nil {
		return nil, "", fmt.Errorf("no shard %q", name)
	}
	return s, local, nil
}

func (r *Router) proxyJob(w http.ResponseWriter, req *http.Request, method string) {
	id := req.PathValue("id")
	s, local, err := r.shardJob(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	status, body, err := r.proxy(req.Context(), method, s, "/jobs/"+local, nil)
	if err != nil {
		writeError(w, http.StatusBadGateway, fmt.Errorf("shard %s: %w", s.name, err))
		return
	}
	if status != http.StatusOK {
		writeRaw(w, status, body)
		return
	}
	r.writePrefixedView(w, status, s.name, body)
}

func (r *Router) handleGet(w http.ResponseWriter, req *http.Request) {
	r.proxyJob(w, req, http.MethodGet)
}

func (r *Router) handleCancel(w http.ResponseWriter, req *http.Request) {
	r.proxyJob(w, req, http.MethodDelete)
}

// MetricsSnapshot is the router's /metrics payload: its own routing
// counters, fleet-aggregated job totals, per-shard health, and each
// reachable shard's full metrics snapshot.
type MetricsSnapshot struct {
	Router struct {
		Shards      int   `json:"shards"`
		Submitted   int64 `json:"submitted"`
		Spilled     int64 `json:"spilled"`
		Rejected    int64 `json:"rejected"`
		Unrouteable int64 `json:"unrouteable"`
	} `json:"router"`
	FingerprintCache struct {
		Hits   int64 `json:"hits"`
		Misses int64 `json:"misses"`
		Size   int   `json:"size"`
	} `json:"fingerprint_cache"`
	Totals struct {
		Submitted        int64 `json:"submitted"`
		Rejected         int64 `json:"rejected"`
		Done             int64 `json:"done"`
		Failed           int64 `json:"failed"`
		Canceled         int64 `json:"canceled"`
		Queued           int   `json:"queued"`
		Running          int   `json:"running"`
		QueueDepth       int   `json:"queue_depth"`
		QueueCapacity    int   `json:"queue_capacity"`
		CoalescedBatches int64 `json:"coalesced_batches"`
		BatchedJobs      int64 `json:"batched_jobs"`
	} `json:"totals"`
	Shards      []ShardStatus                     `json:"shards"`
	ShardDetail map[string]server.MetricsSnapshot `json:"shard_detail"`
}

func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	var snap MetricsSnapshot
	snap.Router.Shards = len(r.shards)
	snap.Router.Submitted = r.submitted.Load()
	snap.Router.Spilled = r.spilled.Load()
	snap.Router.Rejected = r.rejected.Load()
	snap.Router.Unrouteable = r.unrouteable.Load()
	snap.FingerprintCache.Hits, snap.FingerprintCache.Misses, snap.FingerprintCache.Size = r.fps.stats()
	snap.ShardDetail = make(map[string]server.MetricsSnapshot, len(r.shards))

	type fetched struct {
		status ShardStatus
		detail *server.MetricsSnapshot
	}
	results := make([]fetched, len(r.shards))
	var wg sync.WaitGroup
	wg.Add(len(r.shards))
	for i, s := range r.shards {
		go func(i int, s *shardState) {
			defer wg.Done()
			results[i].status = s.status()
			status, body, err := r.proxy(req.Context(), http.MethodGet, s, "/metrics", nil)
			if err != nil || status != http.StatusOK {
				return
			}
			var ms server.MetricsSnapshot
			if json.Unmarshal(body, &ms) == nil {
				results[i].detail = &ms
			}
		}(i, s)
	}
	wg.Wait()
	for i, s := range r.shards {
		snap.Shards = append(snap.Shards, results[i].status)
		ms := results[i].detail
		if ms == nil {
			continue
		}
		snap.ShardDetail[s.name] = *ms
		snap.Totals.Submitted += ms.Jobs.Submitted
		snap.Totals.Rejected += ms.Jobs.Rejected
		snap.Totals.Done += ms.Jobs.Done
		snap.Totals.Failed += ms.Jobs.Failed
		snap.Totals.Canceled += ms.Jobs.Canceled
		snap.Totals.Queued += ms.Jobs.Queued
		snap.Totals.Running += ms.Jobs.Running
		snap.Totals.QueueDepth += ms.Queue.Depth
		snap.Totals.QueueCapacity += ms.Queue.Capacity
		snap.Totals.CoalescedBatches += ms.Batching.CoalescedBatches
		snap.Totals.BatchedJobs += ms.Batching.BatchedJobs
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleHealth reports ok while at least one shard is placeable.
func (r *Router) handleHealth(w http.ResponseWriter, req *http.Request) {
	statuses := make([]ShardStatus, len(r.shards))
	healthy := 0
	for i, s := range r.shards {
		statuses[i] = s.status()
		if s.placeable() {
			healthy++
		}
	}
	body := map[string]any{
		"status":  "ok",
		"healthy": healthy,
		"shards":  statuses,
	}
	code := http.StatusOK
	if healthy == 0 {
		body["status"] = "unavailable"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

// proxy performs one round trip to a shard and returns the status and body.
func (r *Router) proxy(ctx context.Context, method string, s *shardState, path string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, s.base+path, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, b, nil
}

// writePrefixedView re-serves a shard's JobView with its ID namespaced
// "shard:id" so clients can address the job through the router.
func (r *Router) writePrefixedView(w http.ResponseWriter, status int, shard string, body []byte) {
	var v server.JobView
	if err := json.Unmarshal(body, &v); err != nil {
		writeError(w, http.StatusBadGateway, fmt.Errorf("shard %s: bad job view: %w", shard, err))
		return
	}
	v.ID = shard + ":" + v.ID
	writeJSON(w, status, v)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	//lint:ignore sparselint/errflow status line is already on the wire; an encode failure here has no channel back to the client
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	//lint:ignore sparselint/errflow status line is already on the wire; a short write has no channel back to the client
	_, _ = w.Write(body)
}
