package route

import (
	"container/list"
	"sync"
	"sync/atomic"

	"sparsetask/internal/server"
)

// fpCache memoizes matrix fingerprints per MatrixSpec. The fingerprint is a
// pure function of the spec (server.SpecFingerprint) but computing it
// materializes the matrix — far too expensive per request — while serving
// traffic re-submits a small working set of specs: the same LRU shape the
// shard-side plan cache exploits. MatrixSpec is comparable (strings and an
// int64), so it keys the map directly.
type fpCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[server.MatrixSpec]*list.Element

	hits, misses atomic.Int64
}

type fpEntry struct {
	key server.MatrixSpec
	fp  uint64
}

func newFPCache(capacity int) *fpCache {
	if capacity < 1 {
		capacity = 1
	}
	return &fpCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[server.MatrixSpec]*list.Element),
	}
}

// fingerprint returns the spec's structural fingerprint, computing and
// caching it on miss. The matrix build runs outside the lock so concurrent
// misses don't serialize; a racing double-compute is idempotent.
func (c *fpCache) fingerprint(spec server.MatrixSpec) (uint64, error) {
	c.mu.Lock()
	if el, ok := c.items[spec]; ok {
		c.ll.MoveToFront(el)
		fp := el.Value.(*fpEntry).fp
		c.mu.Unlock()
		c.hits.Add(1)
		return fp, nil
	}
	c.mu.Unlock()
	fp, err := server.SpecFingerprint(spec)
	if err != nil {
		return 0, err
	}
	c.misses.Add(1)
	c.mu.Lock()
	if _, ok := c.items[spec]; !ok {
		c.items[spec] = c.ll.PushFront(&fpEntry{key: spec, fp: fp})
		for c.ll.Len() > c.cap {
			el := c.ll.Back()
			c.ll.Remove(el)
			delete(c.items, el.Value.(*fpEntry).key)
		}
	}
	c.mu.Unlock()
	return fp, nil
}

// stats reports hits, misses, and current size.
func (c *fpCache) stats() (hits, misses int64, size int) {
	c.mu.Lock()
	size = c.ll.Len()
	c.mu.Unlock()
	return c.hits.Load(), c.misses.Load(), size
}
