package route

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
)

// Rank orders shard names for a matrix fingerprint by rendezvous
// (highest-random-weight) hashing: each shard scores
// FNV-1a(name ‖ fingerprint) and shards rank by descending score. The
// ranking is a pure function of (names, fingerprint) — the router keeps no
// placement state — so a restarted router, or a second router instance in
// front of the same fleet, sends every matrix to the same shard and its
// warm plan/factor caches. Removing a shard remaps only the fingerprints
// that ranked it first (every other fingerprint's ranking is unchanged with
// the loser deleted) — the stability property modulo hashing lacks. Ties
// break toward the lexically smaller name so the order is total.
func Rank(names []string, fp uint64) []string {
	type scored struct {
		name  string
		score uint64
	}
	ss := make([]scored, len(names))
	for i, n := range names {
		ss[i] = scored{n, score(n, fp)}
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].score != ss[j].score {
			return ss[i].score > ss[j].score
		}
		return ss[i].name < ss[j].name
	})
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.name
	}
	return out
}

func score(name string, fp uint64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], fp)
	h.Write(b[:])
	return h.Sum64()
}
