package route

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sparsetask/internal/server"
)

// tridiagMM renders an SPD tridiagonal [-1 4 -1] MatrixMarket document; the
// dimension n changes the structure, so different n produce different
// fingerprints.
func tridiagMM(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%%%%MatrixMarket matrix coordinate real general\n%d %d %d\n", n, n, 3*n-2)
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, "%d %d 4.0\n", i, i)
		if i < n {
			fmt.Fprintf(&b, "%d %d -1.0\n", i, i+1)
			fmt.Fprintf(&b, "%d %d -1.0\n", i+1, i)
		}
	}
	return b.String()
}

func cgSpec(mm string, seed int64) server.JobSpec {
	return server.JobSpec{
		Solver:  "cg",
		Backend: "bsp",
		Matrix:  server.MatrixSpec{MM: mm},
		Seed:    seed,
	}
}

func TestRankDeterministicAndStableUnderRemoval(t *testing.T) {
	names := []string{"alpha", "bravo", "charlie", "delta"}
	picked := map[string]bool{}
	for fp := uint64(0); fp < 200; fp++ {
		a := Rank(names, fp)
		b := Rank(names, fp)
		if len(a) != len(names) {
			t.Fatalf("Rank dropped names: %v", a)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("fp %d: Rank not deterministic: %v vs %v", fp, a, b)
			}
		}
		picked[a[0]] = true

		// Removing a shard must remap ONLY the fingerprints that ranked it
		// first; everything else keeps its placement.
		without := []string{"alpha", "bravo", "delta"}
		c := Rank(without, fp)
		if a[0] != "charlie" && c[0] != a[0] {
			t.Fatalf("fp %d: removing charlie remapped %s -> %s", fp, a[0], c[0])
		}
		if a[0] == "charlie" && c[0] != a[1] {
			t.Fatalf("fp %d: charlie's traffic should fall to second choice %s, got %s", fp, a[1], c[0])
		}
	}
	if len(picked) != len(names) {
		t.Fatalf("200 fingerprints only ever picked %d/%d shards — hash badly skewed", len(picked), len(names))
	}
}

// fakeShard is a minimal solverd stand-in with scriptable queue depth and
// submit status, for deterministic spill and backpressure tests.
type fakeShard struct {
	mu       sync.Mutex
	submits  int
	depth    int
	capacity int
	status   int
	srv      *httptest.Server
}

func newFakeShard(t *testing.T) *fakeShard {
	t.Helper()
	f := &fakeShard{capacity: 16, status: http.StatusAccepted}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		d, c := f.depth, f.capacity
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"status":"ok","workers":2,"queue":{"depth":%d,"capacity":%d}}`, d, c)
	})
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		f.submits++
		n, st := f.submits, f.status
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		if st != http.StatusAccepted {
			w.WriteHeader(st)
			fmt.Fprint(w, `{"error":"queue full (16 jobs)"}`)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"id":"job-%d","state":"queued","solver":"cg","backend":"bsp","submitted_at":"2026-01-01T00:00:00Z"}`, n)
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeShard) set(depth, status int) {
	f.mu.Lock()
	f.depth = depth
	f.status = status
	f.mu.Unlock()
}

func (f *fakeShard) submitted() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.submits
}

func newTestRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	if cfg.ProbeInterval == 0 {
		// Keep the background probers quiet; tests drive ProbeNow directly.
		cfg.ProbeInterval = time.Hour
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatalf("route.New: %v", err)
	}
	t.Cleanup(r.Close)
	r.ProbeNow(context.Background())
	return r
}

func postSpec(t *testing.T, ts *httptest.Server, spec server.JobSpec) (server.JobView, int) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	var v server.JobView
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("decode job view: %v", err)
		}
	}
	return v, resp.StatusCode
}

func shardOf(t *testing.T, v server.JobView) string {
	t.Helper()
	name, _, ok := strings.Cut(v.ID, ":")
	if !ok {
		t.Fatalf("job id %q is not shard-qualified", v.ID)
	}
	return name
}

func TestRoutingDeterministicAcrossRestarts(t *testing.T) {
	a, b := newFakeShard(t), newFakeShard(t)
	cfg := Config{Shards: []Shard{{Name: "s0", URL: a.srv.URL}, {Name: "s1", URL: b.srv.URL}}}

	mm := tridiagMM(24)
	fp, err := server.SpecFingerprint(server.MatrixSpec{MM: mm})
	if err != nil {
		t.Fatalf("SpecFingerprint: %v", err)
	}

	r1 := newTestRouter(t, cfg)
	ts1 := httptest.NewServer(r1.Handler())
	defer ts1.Close()
	want := r1.Assign(fp)
	var first string
	for i := 0; i < 4; i++ {
		v, status := postSpec(t, ts1, cgSpec(mm, int64(i+1)))
		if status != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, status)
		}
		got := shardOf(t, v)
		if got != want {
			t.Fatalf("submit %d landed on %s, rendezvous says %s", i, got, want)
		}
		if first == "" {
			first = got
		} else if got != first {
			t.Fatalf("same matrix split across shards: %s then %s", first, got)
		}
	}

	// A fresh router over the same fleet — a restart — must agree without
	// any shared state.
	r2 := newTestRouter(t, cfg)
	ts2 := httptest.NewServer(r2.Handler())
	defer ts2.Close()
	if r2.Assign(fp) != want {
		t.Fatalf("restarted router assigns %s, want %s", r2.Assign(fp), want)
	}
	v, status := postSpec(t, ts2, cgSpec(mm, 99))
	if status != http.StatusAccepted {
		t.Fatalf("restart submit: status %d", status)
	}
	if got := shardOf(t, v); got != first {
		t.Fatalf("restarted router placed the matrix on %s, original used %s", got, first)
	}
}

func TestSpillToSecondChoiceWhenPrimaryDeep(t *testing.T) {
	a, b := newFakeShard(t), newFakeShard(t)
	cfg := Config{
		Shards:        []Shard{{Name: "s0", URL: a.srv.URL}, {Name: "s1", URL: b.srv.URL}},
		SpillFraction: 0.75,
	}
	r := newTestRouter(t, cfg)
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	mm := tridiagMM(16)
	fp, err := server.SpecFingerprint(server.MatrixSpec{MM: mm})
	if err != nil {
		t.Fatalf("SpecFingerprint: %v", err)
	}
	primary := r.Assign(fp)
	shards := map[string]*fakeShard{"s0": a, "s1": b}
	second := "s0"
	if primary == "s0" {
		second = "s1"
	}

	// Below threshold: affinity wins.
	v, status := postSpec(t, ts, cgSpec(mm, 1))
	if status != http.StatusAccepted || shardOf(t, v) != primary {
		t.Fatalf("light load: status %d shard %s, want 202 on %s", status, shardOf(t, v), primary)
	}

	// Primary at 15/16 occupancy, runner-up empty: the job must spill.
	shards[primary].set(15, http.StatusAccepted)
	r.ProbeNow(context.Background())
	v, status = postSpec(t, ts, cgSpec(mm, 2))
	if status != http.StatusAccepted {
		t.Fatalf("spill submit: status %d", status)
	}
	if got := shardOf(t, v); got != second {
		t.Fatalf("deep primary: job landed on %s, want spill to %s", got, second)
	}
	if r.spilled.Load() != 1 {
		t.Fatalf("spilled counter = %d, want 1", r.spilled.Load())
	}

	// Both equally saturated: no point bouncing — stay with affinity.
	shards[second].set(15, http.StatusAccepted)
	r.ProbeNow(context.Background())
	v, status = postSpec(t, ts, cgSpec(mm, 3))
	if status != http.StatusAccepted || shardOf(t, v) != primary {
		t.Fatalf("uniform saturation: status %d shard %s, want 202 on %s", status, shardOf(t, v), primary)
	}
}

func TestBackpressureRetryThen429(t *testing.T) {
	a, b := newFakeShard(t), newFakeShard(t)
	cfg := Config{Shards: []Shard{{Name: "s0", URL: a.srv.URL}, {Name: "s1", URL: b.srv.URL}}}
	r := newTestRouter(t, cfg)
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	mm := tridiagMM(20)
	fp, err := server.SpecFingerprint(server.MatrixSpec{MM: mm})
	if err != nil {
		t.Fatalf("SpecFingerprint: %v", err)
	}
	primary := r.Assign(fp)
	shards := map[string]*fakeShard{"s0": a, "s1": b}
	second := "s0"
	if primary == "s0" {
		second = "s1"
	}

	// Primary rejects with 429: the router retries the second choice once.
	shards[primary].set(0, http.StatusTooManyRequests)
	v, status := postSpec(t, ts, cgSpec(mm, 1))
	if status != http.StatusAccepted {
		t.Fatalf("fallback submit: status %d", status)
	}
	if got := shardOf(t, v); got != second {
		t.Fatalf("429 at primary: job landed on %s, want fallback %s", got, second)
	}

	// Both reject: backpressure reaches the client as 429.
	shards[second].set(0, http.StatusTooManyRequests)
	_, status = postSpec(t, ts, cgSpec(mm, 2))
	if status != http.StatusTooManyRequests {
		t.Fatalf("fleet-wide 429: client saw %d, want 429", status)
	}
	if r.rejected.Load() != 1 {
		t.Fatalf("rejected counter = %d, want 1", r.rejected.Load())
	}
}

func TestNoHealthyShard503(t *testing.T) {
	dead := httptest.NewServer(http.NewServeMux())
	url := dead.URL
	dead.Close() // nothing listening
	r := newTestRouter(t, Config{Shards: []Shard{{Name: "s0", URL: url}}})
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	_, status := postSpec(t, ts, cgSpec(tridiagMM(8), 1))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("dead fleet: status %d, want 503", status)
	}
	if r.unrouteable.Load() == 0 {
		t.Fatalf("unrouteable counter not incremented")
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("router /healthz = %d with no healthy shard, want 503", resp.StatusCode)
	}
}

// TestEndToEndTwoEngines drives the router against two REAL server engines:
// jobs route by fingerprint, complete, and are addressable back through the
// router's namespaced IDs; /jobs merges both shards; /metrics aggregates.
func TestEndToEndTwoEngines(t *testing.T) {
	mkShard := func() (*server.Server, *httptest.Server) {
		s := server.New(server.Config{
			QueueSize:      32,
			Workers:        2,
			RTWorkers:      2,
			CoalesceMax:    4,
			CoalesceWindow: 20 * time.Millisecond,
		})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = s.Drain(ctx)
		})
		return s, ts
	}
	_, tsA := mkShard()
	_, tsB := mkShard()

	r := newTestRouter(t, Config{
		Shards: []Shard{{Name: "left", URL: tsA.URL}, {Name: "right", URL: tsB.URL}},
	})
	front := httptest.NewServer(r.Handler())
	defer front.Close()

	// Two structurally distinct matrices; submit a few jobs of each.
	mats := []string{tridiagMM(32), tridiagMM(48)}
	shardByMat := make([]string, len(mats))
	var ids []string
	for mi, mm := range mats {
		for seed := int64(1); seed <= 3; seed++ {
			v, status := postSpec(t, front, cgSpec(mm, seed))
			if status != http.StatusAccepted {
				t.Fatalf("matrix %d seed %d: status %d", mi, seed, status)
			}
			got := shardOf(t, v)
			if shardByMat[mi] == "" {
				shardByMat[mi] = got
			} else if got != shardByMat[mi] {
				t.Fatalf("matrix %d split across shards: %s then %s", mi, shardByMat[mi], got)
			}
			ids = append(ids, v.ID)
		}
	}

	// Every job reaches a terminal state through the router's GET.
	deadline := time.Now().Add(30 * time.Second)
	for _, id := range ids {
		for {
			resp, err := http.Get(front.URL + "/jobs/" + id)
			if err != nil {
				t.Fatalf("GET /jobs/%s: %v", id, err)
			}
			var v server.JobView
			if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
				t.Fatalf("decode %s: %v", id, err)
			}
			resp.Body.Close()
			if v.State == server.StateDone {
				if v.Result == nil || !v.Result.Converged {
					t.Fatalf("job %s done but not converged: %+v", id, v.Result)
				}
				break
			}
			if v.State == server.StateFailed || v.State == server.StateCanceled {
				t.Fatalf("job %s ended %s: %s", id, v.State, v.Error)
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s still %s at deadline", id, v.State)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// The merged listing shows all jobs with namespaced IDs.
	resp, err := http.Get(front.URL + "/jobs")
	if err != nil {
		t.Fatalf("GET /jobs: %v", err)
	}
	var all []server.JobView
	if err := json.NewDecoder(resp.Body).Decode(&all); err != nil {
		t.Fatalf("decode /jobs: %v", err)
	}
	resp.Body.Close()
	listed := map[string]bool{}
	for _, v := range all {
		listed[v.ID] = true
	}
	for _, id := range ids {
		if !listed[id] {
			t.Fatalf("job %s missing from merged /jobs listing (%d listed)", id, len(all))
		}
	}

	// Aggregated metrics see the whole fleet.
	resp, err = http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	var ms MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&ms); err != nil {
		t.Fatalf("decode /metrics: %v", err)
	}
	resp.Body.Close()
	if ms.Totals.Done < int64(len(ids)) {
		t.Fatalf("aggregated done = %d, want >= %d", ms.Totals.Done, len(ids))
	}
	if ms.Router.Submitted != int64(len(ids)) {
		t.Fatalf("router submitted = %d, want %d", ms.Router.Submitted, len(ids))
	}
	if len(ms.ShardDetail) != 2 {
		t.Fatalf("shard detail for %d shards, want 2", len(ms.ShardDetail))
	}
	if h, m, _ := r.fps.stats(); h+m != int64(len(ids)) || m != int64(len(mats)) {
		t.Fatalf("fingerprint cache hits=%d misses=%d, want misses=%d and hits+misses=%d",
			h, m, len(mats), len(ids))
	}

	// Cancel through the router resolves the namespaced ID (terminal job:
	// cancel is a no-op but must route and answer 200).
	reqDel, err := http.NewRequestWithContext(context.Background(), http.MethodDelete, front.URL+"/jobs/"+ids[0], nil)
	if err != nil {
		t.Fatalf("new DELETE: %v", err)
	}
	dresp, err := http.DefaultClient.Do(reqDel)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE %s: status %d", ids[0], dresp.StatusCode)
	}

	// Unknown shard prefix and unqualified IDs are 404s at the router.
	for _, bad := range []string{"nope:job-1", "job-1"} {
		resp, err := http.Get(front.URL + "/jobs/" + bad)
		if err != nil {
			t.Fatalf("GET bad id: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET /jobs/%s: status %d, want 404", bad, resp.StatusCode)
		}
	}
}
