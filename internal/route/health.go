package route

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// shardState is the router's live view of one solverd shard, refreshed by a
// prober goroutine from GET /healthz (the cheap liveness endpoint, which the
// server extends with queue depth/capacity exactly so placement never needs
// the heavier /metrics).
type shardState struct {
	name string
	base string // base URL, no trailing slash

	mu        sync.Mutex
	healthy   bool
	draining  bool
	depth     int
	capacity  int
	workers   int
	lastErr   string
	lastProbe time.Time
}

// healthBody mirrors the fields of solverd's /healthz response the router
// reads.
type healthBody struct {
	Status  string `json:"status"`
	Workers int    `json:"workers"`
	Queue   struct {
		Depth    int `json:"depth"`
		Capacity int `json:"capacity"`
	} `json:"queue"`
}

// probe refreshes the shard's state with one /healthz round trip. A
// draining shard answers 503 with a parseable body; it is recorded as
// unhealthy for placement but distinguished in status reports.
func (s *shardState) probe(ctx context.Context, client *http.Client) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base+"/healthz", nil)
	if err != nil {
		s.setUnhealthy(err.Error())
		return
	}
	resp, err := client.Do(req)
	if err != nil {
		s.setUnhealthy(err.Error())
		return
	}
	defer resp.Body.Close()
	var body healthBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		s.setUnhealthy("bad healthz body: " + err.Error())
		return
	}
	s.mu.Lock()
	s.healthy = resp.StatusCode == http.StatusOK
	s.draining = body.Status == "draining"
	s.depth = body.Queue.Depth
	s.capacity = body.Queue.Capacity
	s.workers = body.Workers
	s.lastErr = ""
	if !s.healthy {
		s.lastErr = "status " + body.Status
	}
	s.lastProbe = time.Now()
	s.mu.Unlock()
}

func (s *shardState) setUnhealthy(msg string) {
	s.mu.Lock()
	s.healthy = false
	s.lastErr = msg
	s.lastProbe = time.Now()
	s.mu.Unlock()
}

// markFull records a submit-time 429 so placement sees the full queue
// immediately instead of waiting out the probe interval.
func (s *shardState) markFull() {
	s.mu.Lock()
	if s.capacity > 0 {
		s.depth = s.capacity
	}
	s.mu.Unlock()
}

// placeable reports whether the shard can accept new jobs.
func (s *shardState) placeable() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.healthy && !s.draining
}

// occupancy returns the shard's relative queue load, or -1 when unknown.
func (s *shardState) occupancy() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.capacity == 0 {
		return -1
	}
	return float64(s.depth) / float64(s.capacity)
}

// ShardStatus is the externally visible shard health, served on the
// router's /healthz and /metrics.
type ShardStatus struct {
	Name          string `json:"name"`
	URL           string `json:"url"`
	Healthy       bool   `json:"healthy"`
	Draining      bool   `json:"draining,omitempty"`
	QueueDepth    int    `json:"queue_depth"`
	QueueCapacity int    `json:"queue_capacity"`
	Error         string `json:"error,omitempty"`
}

// status snapshots the shard under one lock acquisition.
func (s *shardState) status() ShardStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ShardStatus{
		Name:          s.name,
		URL:           s.base,
		Healthy:       s.healthy,
		Draining:      s.draining,
		QueueDepth:    s.depth,
		QueueCapacity: s.capacity,
		Error:         s.lastErr,
	}
}

// prober refreshes one shard on a ticker until Close cancels the router's
// context; the first probe fires immediately so a freshly started router
// converges within one round trip, not one interval.
func (r *Router) prober(s *shardState) {
	defer r.wg.Done()
	s.probe(r.ctx, r.client)
	t := time.NewTicker(r.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-r.ctx.Done():
			return
		case <-t.C:
			s.probe(r.ctx, r.client)
		}
	}
}

// ProbeNow synchronously refreshes every shard — used by tests and by
// cmd/solverfront at startup so the first request sees real health.
func (r *Router) ProbeNow(ctx context.Context) {
	for _, s := range r.shards {
		s.probe(ctx, r.client)
	}
}
