// Package matgen generates synthetic sparse matrices reproducing the
// *structural classes* of the paper's 15-matrix evaluation suite (Table 1).
//
// The paper uses SuiteSparse matrices plus one nuclear-physics matrix (Nm7),
// ranging from 0.5M to 128M rows. Those inputs are not redistributable here
// and would not fit a development machine, so each matrix is replaced by a
// generator that reproduces the properties the evaluation actually exercises:
//
//   - sparsity pattern class (banded FEM stencil, KKT saddle point,
//     power-law web/social graph, block-sparse configuration interaction,
//     hub-dominated network trace),
//   - average nonzeros per row,
//   - nonzero skew (per-row imbalance), which drives the BSP load-imbalance
//     effects the task runtimes exploit,
//   - relative size ordering of the suite.
//
// All generators return symmetric matrices with deterministic output for a
// given seed. Originally-binary matrices are value-filled the same way the
// paper does (random values preserving symmetry); originally-nonsymmetric
// ones are symmetrized as A = L + Lᵀ − D.
package matgen

import (
	"fmt"
	"math/rand"
	"sort"

	"sparsetask/internal/sparse"
)

// FEM3D builds a symmetric matrix with the structure of a 3D finite-element
// discretization: a nx×ny×nz node grid where each node carries dof unknowns
// and couples to its stencil neighbors (stencil = 7 or 27) through dense
// dof×dof blocks. This is the class of inline_1, dielFilterV3real, Flan_1565,
// Bump_2911 and Queen_4147. nnz/row ≈ stencil·dof.
func FEM3D(nx, ny, nz, dof, stencil int, seed int64) *sparse.COO {
	if stencil != 7 && stencil != 27 {
		panic(fmt.Sprintf("matgen: FEM3D stencil must be 7 or 27, got %d", stencil))
	}
	n := nx * ny * nz * dof
	a := sparse.NewCOO(n, n, n*stencil*dof)
	rng := rand.New(rand.NewSource(seed))
	idx := func(x, y, z int) int { return (x*ny+y)*nz + z }
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			for z := 0; z < nz; z++ {
				i := idx(x, y, z)
				for dx := -1; dx <= 1; dx++ {
					for dy := -1; dy <= 1; dy++ {
						for dz := -1; dz <= 1; dz++ {
							if stencil == 7 && abs(dx)+abs(dy)+abs(dz) > 1 {
								continue
							}
							X, Y, Z := x+dx, y+dy, z+dz
							if X < 0 || X >= nx || Y < 0 || Y >= ny || Z < 0 || Z >= nz {
								continue
							}
							j := idx(X, Y, Z)
							if j < i {
								continue // emit lower→upper pairs from the lower side only
							}
							for di := 0; di < dof; di++ {
								for dj := 0; dj < dof; dj++ {
									ri := int32(i*dof + di)
									cj := int32(j*dof + dj)
									if ri > cj {
										continue
									}
									var v float64
									if ri == cj {
										// Diagonal dominance keeps the matrix SPD-ish,
										// which LOBPCG convergence tests rely on.
										v = float64(stencil*dof) + rng.Float64()
									} else {
										v = -rng.Float64()
									}
									a.Append(ri, cj, v)
									if ri != cj {
										a.Append(cj, ri, v)
									}
								}
							}
						}
					}
				}
			}
		}
	}
	a.Compact()
	return a
}

// KKT builds a symmetric saddle-point matrix with the nlpkkt structure:
//
//	[ H  Bᵀ ]
//	[ B  -δI ]
//
// where H is a 7-point Laplacian over a g³ grid of primal unknowns and B a
// 7-point constraint Jacobian coupling primal to dual unknowns. Rows = 2·g³,
// nnz/row ≈ 27–28, matching nlpkkt160/200/240.
func KKT(g int, seed int64) *sparse.COO {
	n := g * g * g
	a := sparse.NewCOO(2*n, 2*n, 2*n*28)
	rng := rand.New(rand.NewSource(seed))
	idx := func(x, y, z int) int { return (x*g+y)*g + z }
	addSym := func(i, j int, v float64) {
		a.Append(int32(i), int32(j), v)
		if i != j {
			a.Append(int32(j), int32(i), v)
		}
	}
	for x := 0; x < g; x++ {
		for y := 0; y < g; y++ {
			for z := 0; z < g; z++ {
				i := idx(x, y, z)
				// H block: 7-point stencil, diagonally dominant.
				addSym(i, i, 12+rng.Float64())
				// B block: dual row n+i couples to primal i and primal
				// neighbors (7-pt). Bᵀ comes from symmetry.
				addSym(n+i, i, 1+0.5*rng.Float64())
				// −δ I dual regularization keeps factorizations stable.
				addSym(n+i, n+i, -1e-2)
				for _, d := range [][3]int{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}} {
					X, Y, Z := x+d[0], y+d[1], z+d[2]
					if X >= g || Y >= g || Z >= g {
						continue
					}
					j := idx(X, Y, Z)
					v := -(0.5 + rng.Float64())
					addSym(i, j, v)          // H off-diagonal
					addSym(n+i, j, 0.25*v)   // B coupling to neighbor
					addSym(n+j, i, 0.25*v)   // B coupling, mirrored stencil arm
					addSym(n+i, n+j, 1e-3*v) // weak dual-dual fill, as in AMPL KKT outputs
				}
			}
		}
	}
	a.Compact()
	return a
}

// RMAT builds a power-law graph adjacency matrix via the recursive R-MAT
// process, then symmetrizes it (A = L + Lᵀ − D) and fills values randomly,
// mirroring how the paper handles web/social graphs (it-2004, twitter7,
// sk-2005, webbase-2001), which are binary and not symmetric. rows must be a
// power of two or is rounded up to one. avgDeg sets edges per row; skew in
// (0.25, 0.75] sets the R-MAT 'a' parameter — higher means heavier hubs.
func RMAT(rows int, avgDeg float64, skew float64, seed int64) *sparse.COO {
	n := 1
	for n < rows {
		n <<= 1
	}
	levels := 0
	for 1<<levels < n {
		levels++
	}
	if skew <= 0.25 || skew > 0.75 {
		panic(fmt.Sprintf("matgen: RMAT skew %v out of (0.25, 0.75]", skew))
	}
	aP := skew
	bP := (1 - skew) / 2.2
	cP := bP
	// dP is the remainder.
	edges := int(avgDeg * float64(n))
	m := sparse.NewCOO(n, n, edges)
	rng := rand.New(rand.NewSource(seed))
	for e := 0; e < edges; e++ {
		i, j := 0, 0
		for l := 0; l < levels; l++ {
			r := rng.Float64()
			switch {
			case r < aP:
				// top-left: nothing to add
			case r < aP+bP:
				j |= 1 << l
			case r < aP+bP+cP:
				i |= 1 << l
			default:
				i |= 1 << l
				j |= 1 << l
			}
		}
		m.Append(int32(i), int32(j), 1)
	}
	m.Compact()
	m.Symmetrize()
	m.FillRandom(seed)
	return m
}

// BandCFD builds a symmetric banded matrix with dense clustered rows, the
// structure of the HV15R CFD matrix: a wide band (halfBand each side) with
// about nnzPerRow entries per row placed preferentially near the diagonal.
func BandCFD(rows, nnzPerRow, halfBand int, seed int64) *sparse.COO {
	a := sparse.NewCOO(rows, rows, rows*nnzPerRow)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < rows; i++ {
		a.Append(int32(i), int32(i), float64(nnzPerRow)+rng.Float64())
		// Emit entries in the upper band only; Symmetrize-style mirroring by
		// direct double insertion keeps it symmetric without a second pass.
		for k := 0; k < nnzPerRow/2; k++ {
			// Triangular distribution concentrates entries near the diagonal.
			off := 1 + int(float64(halfBand)*rng.Float64()*rng.Float64())
			j := i + off
			if j >= rows {
				continue
			}
			v := -rng.Float64()
			a.Append(int32(i), int32(j), v)
			a.Append(int32(j), int32(i), v)
		}
	}
	a.Compact()
	return a
}

// BlockCI builds a block-sparse symmetric matrix with the structure of
// configuration-interaction Hamiltonians such as Nm7: rows grouped into
// many-body basis blocks of size blk; block pairs are connected sparsely but
// connected pairs are dense. nnz/row ≈ blocksPerRow·blk.
func BlockCI(rows, blk, blocksPerRow int, seed int64) *sparse.COO {
	nb := (rows + blk - 1) / blk
	a := sparse.NewCOO(rows, rows, rows*blocksPerRow*blk)
	rng := rand.New(rand.NewSource(seed))
	for bi := 0; bi < nb; bi++ {
		// Always connect the diagonal block, then (blocksPerRow-1) random
		// partners at geometric distances — CI matrices couple basis blocks
		// that differ in few quanta, giving a banded-at-block-scale pattern.
		partners := map[int]bool{bi: true}
		for len(partners) < blocksPerRow && len(partners) < nb {
			d := 1 + int(rng.ExpFloat64()*float64(nb)/16)
			bj := bi + d
			if rng.Intn(2) == 0 {
				bj = bi - d
			}
			if bj >= 0 && bj < nb {
				partners[bj] = true
			}
		}
		// Drain the partner set in sorted order: the rng draws below must not
		// depend on map iteration order or the matrix changes run to run.
		sorted := make([]int, 0, len(partners))
		for bj := range partners {
			sorted = append(sorted, bj)
		}
		sort.Ints(sorted)
		for _, bj := range sorted {
			if bj < bi {
				continue // handled from the other side
			}
			riLo, riHi := bi*blk, min(rows, (bi+1)*blk)
			cjLo, cjHi := bj*blk, min(rows, (bj+1)*blk)
			for i := riLo; i < riHi; i++ {
				for j := cjLo; j < cjHi; j++ {
					if bj == bi && j < i {
						continue
					}
					var v float64
					if i == j {
						v = float64(blocksPerRow*blk) + rng.Float64()
					} else {
						if rng.Float64() > 0.5 { // half-filled dense blocks
							continue
						}
						v = rng.NormFloat64() * 0.5
					}
					a.Append(int32(i), int32(j), v)
					if i != j {
						a.Append(int32(j), int32(i), v)
					}
				}
			}
		}
	}
	a.Compact()
	return a
}

// TraceGraph builds a hub-dominated sparse graph with very low average degree
// and extreme skew, the structure of the mawi network-trace matrices: a few
// aggregation hubs with enormous degree and a long tail of degree-1..2 nodes.
// Binary values are filled randomly; output is symmetric.
func TraceGraph(rows int, avgDeg float64, seed int64) *sparse.COO {
	a := sparse.NewCOO(rows, rows, int(avgDeg*float64(rows))+rows)
	rng := rand.New(rand.NewSource(seed))
	hubs := max(1, rows/5000)
	edges := int(avgDeg * float64(rows) / 2)
	for e := 0; e < edges; e++ {
		// 60% of edges touch a hub; hubs follow a Zipf-like rank weight.
		var i int
		if rng.Float64() < 0.6 {
			i = zipfRank(rng, hubs)
		} else {
			i = rng.Intn(rows)
		}
		j := rng.Intn(rows)
		if i == j {
			continue
		}
		a.Append(int32(i), int32(j), 1)
	}
	// Guarantee every node appears (degree ≥ 1) the way packet traces do:
	// every source talks to some aggregation point.
	for i := hubs; i < rows; i++ {
		a.Append(int32(i), int32(zipfRank(rng, hubs)), 1)
	}
	a.Compact()
	a.Symmetrize()
	a.FillRandom(seed)
	return a
}

func zipfRank(rng *rand.Rand, n int) int {
	// Approximate Zipf(1) over [0,n) by inverse-CDF on 1/x.
	u := rng.Float64()
	r := int(float64(n) * u * u) // quadratic bias toward rank 0
	if r >= n {
		r = n - 1
	}
	return r
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SPDLaplacian builds a symmetric positive definite matrix with the
// conditioning of a 2D 5-point Poisson problem: a g×g grid Laplacian
// (g = ceil(√rows)) truncated to rows, with seeded jitter on the off-diagonal
// couplings and a diagonal of Σ|offdiag| + ε so the matrix stays strictly
// diagonally dominant (hence SPD) yet nearly singular like the Laplacian.
// That combination is what the PCG acceptance test needs: unpreconditioned CG
// iteration counts grow like g, while IC(0) cuts them by several times —
// deterministic for a given seed, with no dependence on suite downloads.
func SPDLaplacian(rows int, seed int64) *sparse.COO {
	g := 1
	for g*g < rows {
		g++
	}
	a := sparse.NewCOO(rows, rows, rows*5)
	rng := rand.New(rand.NewSource(seed))
	at := func(r, c int) int { return r*g + c }
	diag := make([]float64, rows)
	for r := 0; r < g; r++ {
		for c := 0; c < g; c++ {
			i := at(r, c)
			if i >= rows {
				continue
			}
			// Emit east and south couplings with jitter, mirrored to stay
			// symmetric; the transposed pair accumulates into both diagonals.
			couple := func(j int) {
				if j >= rows {
					return
				}
				v := -(0.75 + 0.5*rng.Float64())
				a.Append(int32(i), int32(j), v)
				a.Append(int32(j), int32(i), v)
				diag[i] -= v
				diag[j] -= v
			}
			if c < g-1 {
				couple(at(r, c+1))
			}
			if r < g-1 {
				couple(at(r+1, c))
			}
		}
	}
	for i := 0; i < rows; i++ {
		// ε keeps isolated trailing rows invertible and the spectrum bounded
		// away from zero without destroying the Laplacian's conditioning.
		a.Append(int32(i), int32(i), diag[i]+1e-4*(1+rng.Float64()))
	}
	a.Compact()
	return a
}
