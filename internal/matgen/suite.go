package matgen

import (
	"fmt"
	"math"

	"sparsetask/internal/sparse"
)

// Preset scales the paper's suite down to sizes a single development machine
// can generate and iterate on. Div divides the paper row counts; MinRows
// keeps the smallest matrices non-degenerate. CacheDiv is the matching
// divisor for the simulated machines' cache sizes, preserving the
// matrix-vs-LLC size relationships the cache experiments depend on (it is
// smaller than Div because caches cannot shrink below a few lines without
// losing all structure).
type Preset struct {
	Name     string
	Div      int
	MinRows  int
	CacheDiv int
	// SlowDown uniformly slows the simulated machine so that per-task
	// compute time keeps the paper's ratio to the (real-world, unscaled)
	// runtime overheads despite the matrices being Div× smaller.
	SlowDown float64
}

var (
	// Tiny is for unit tests: hundreds to a few thousand rows.
	Tiny = Preset{Name: "tiny", Div: 16384, MinRows: 768, CacheDiv: 128, SlowDown: 192}
	// Small is the default experiment scale: ~1k–60k rows.
	Small = Preset{Name: "small", Div: 1024, MinRows: 6144, CacheDiv: 64, SlowDown: 64}
	// Medium stresses the cache simulator: ~4k–250k rows.
	Medium = Preset{Name: "medium", Div: 256, MinRows: 12288, CacheDiv: 16, SlowDown: 16}
)

// OverheadScale is the factor runtime overheads must shrink by to keep the
// paper's overhead:work ratio: per-task work shrinks by Div but the machine
// is only slowed by SlowDown, so overheads scale by SlowDown/Div.
func (p Preset) OverheadScale() float64 {
	if p.Div <= 0 || p.SlowDown <= 0 {
		return 1
	}
	return p.SlowDown / float64(p.Div)
}

// PresetByName resolves a preset name from the CLI.
func PresetByName(name string) (Preset, error) {
	switch name {
	case "tiny":
		return Tiny, nil
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	}
	return Preset{}, fmt.Errorf("matgen: unknown preset %q (want tiny, small, medium)", name)
}

// Spec describes one matrix of the paper's Table 1 and how to synthesize its
// structural analog.
type Spec struct {
	Name      string
	Class     string // fem3d, kkt, rmat, bandcfd, blockci, trace
	PaperRows int64
	PaperNNZ  int64
	// MadeSymmetric marks matrices the paper symmetrized (bold in Table 1).
	MadeSymmetric bool
	// Binary marks originally-binary matrices filled with random values
	// (italic in Table 1).
	Binary bool
	build  func(rows int, seed int64) *sparse.COO
}

// TargetRows returns the scaled row count under the preset.
func (s Spec) TargetRows(p Preset) int {
	r := int(s.PaperRows / int64(p.Div))
	if r < p.MinRows {
		r = p.MinRows
	}
	return r
}

// Build synthesizes the matrix at the preset's scale. Output is symmetric
// and deterministic in seed. The exact row count may differ slightly from
// TargetRows (grid and power-of-two rounding).
func (s Spec) Build(p Preset, seed int64) *sparse.COO {
	return s.build(s.TargetRows(p), seed)
}

// femRows solves nx·ny·nz·dof ≈ rows for a near-cubic grid.
func femGrid(rows, dof int) (int, int, int) {
	g := int(math.Cbrt(float64(rows) / float64(dof)))
	if g < 2 {
		g = 2
	}
	return g, g, g
}

// Suite returns the 15-matrix evaluation suite in the order of Table 1.
func Suite() []Spec {
	return []Spec{
		{
			Name: "inline1", Class: "fem3d", PaperRows: 503_712, PaperNNZ: 36_816_170,
			build: func(rows int, seed int64) *sparse.COO {
				nx, ny, nz := femGrid(rows, 3)
				return FEM3D(nx, ny, nz, 3, 27, seed)
			},
		},
		{
			Name: "dielFilterV3real", Class: "fem3d", PaperRows: 1_102_824, PaperNNZ: 89_306_020,
			build: func(rows int, seed int64) *sparse.COO {
				nx, ny, nz := femGrid(rows, 3)
				return FEM3D(nx, ny, nz, 3, 27, seed)
			},
		},
		{
			Name: "Flan_1565", Class: "fem3d", PaperRows: 1_564_794, PaperNNZ: 117_406_044,
			build: func(rows int, seed int64) *sparse.COO {
				nx, ny, nz := femGrid(rows, 3)
				return FEM3D(nx, ny, nz, 3, 27, seed)
			},
		},
		{
			Name: "HV15R", Class: "bandcfd", PaperRows: 2_017_169, PaperNNZ: 281_419_743,
			MadeSymmetric: true,
			build: func(rows int, seed int64) *sparse.COO {
				return BandCFD(rows, 139, max(64, rows/64), seed)
			},
		},
		{
			Name: "Bump_2911", Class: "fem3d", PaperRows: 2_911_419, PaperNNZ: 127_729_899,
			build: func(rows int, seed int64) *sparse.COO {
				nx, ny, nz := femGrid(rows, 6)
				return FEM3D(nx, ny, nz, 6, 7, seed)
			},
		},
		{
			Name: "Queen4147", Class: "fem3d", PaperRows: 4_147_110, PaperNNZ: 329_499_284,
			build: func(rows int, seed int64) *sparse.COO {
				nx, ny, nz := femGrid(rows, 3)
				return FEM3D(nx, ny, nz, 3, 27, seed)
			},
		},
		{
			Name: "Nm7", Class: "blockci", PaperRows: 4_985_422, PaperNNZ: 647_663_919,
			build: func(rows int, seed int64) *sparse.COO {
				return BlockCI(rows, 32, 8, seed)
			},
		},
		{
			Name: "nlpkkt160", Class: "kkt", PaperRows: 8_345_600, PaperNNZ: 229_518_112,
			build: func(rows int, seed int64) *sparse.COO {
				return KKT(kktGrid(rows), seed)
			},
		},
		{
			Name: "nlpkkt200", Class: "kkt", PaperRows: 16_240_000, PaperNNZ: 448_225_632,
			build: func(rows int, seed int64) *sparse.COO {
				return KKT(kktGrid(rows), seed)
			},
		},
		{
			Name: "nlpkkt240", Class: "kkt", PaperRows: 27_993_600, PaperNNZ: 774_472_352,
			build: func(rows int, seed int64) *sparse.COO {
				return KKT(kktGrid(rows), seed)
			},
		},
		{
			Name: "it-2004", Class: "rmat", PaperRows: 41_291_594, PaperNNZ: 1_120_355_761,
			MadeSymmetric: true, Binary: true,
			build: func(rows int, seed int64) *sparse.COO {
				return RMAT(rows, 13.5, 0.57, seed) // ×2 after symmetrization ≈ 27/row
			},
		},
		{
			Name: "twitter7", Class: "rmat", PaperRows: 41_652_230, PaperNNZ: 868_012_304,
			MadeSymmetric: true, Binary: true,
			build: func(rows int, seed int64) *sparse.COO {
				return RMAT(rows, 10.5, 0.62, seed)
			},
		},
		{
			Name: "sk-2005", Class: "rmat", PaperRows: 50_636_154, PaperNNZ: 1_909_906_755,
			MadeSymmetric: true, Binary: true,
			build: func(rows int, seed int64) *sparse.COO {
				return RMAT(rows, 19, 0.6, seed)
			},
		},
		{
			Name: "webbase-2001", Class: "rmat", PaperRows: 118_142_155, PaperNNZ: 1_013_570_040,
			MadeSymmetric: true, Binary: true,
			build: func(rows int, seed int64) *sparse.COO {
				return RMAT(rows, 4.3, 0.65, seed)
			},
		},
		{
			Name: "mawi_201512020130", Class: "trace", PaperRows: 128_568_730, PaperNNZ: 270_234_840,
			MadeSymmetric: true, Binary: true,
			build: func(rows int, seed int64) *sparse.COO {
				return TraceGraph(rows, 2.1, seed)
			},
		},
	}
}

// SpecByName resolves a suite matrix by its Table 1 name.
func SpecByName(name string) (Spec, error) {
	for _, s := range Suite() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("matgen: unknown matrix %q", name)
}

func kktGrid(rows int) int {
	g := int(math.Cbrt(float64(rows) / 2))
	if g < 2 {
		g = 2
	}
	return g
}
