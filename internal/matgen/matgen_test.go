package matgen

import (
	"testing"

	"sparsetask/internal/sparse"
)

func TestFEM3DStructure(t *testing.T) {
	a := FEM3D(5, 5, 5, 3, 27, 1)
	if a.Rows != 375 {
		t.Fatalf("rows = %d, want 375", a.Rows)
	}
	if !a.IsSymmetric() {
		t.Fatal("FEM3D not symmetric")
	}
	st := sparse.ComputeStats(a.ToCSR())
	// Interior rows have 27·3 = 81 entries; boundary fewer.
	if st.MaxRowNNZ != 81 {
		t.Errorf("max nnz/row = %d, want 81", st.MaxRowNNZ)
	}
	if st.AvgRowNNZ < 40 || st.AvgRowNNZ > 81 {
		t.Errorf("avg nnz/row = %v out of range", st.AvgRowNNZ)
	}
}

func TestFEM3DSevenPoint(t *testing.T) {
	a := FEM3D(4, 4, 4, 2, 7, 2)
	if !a.IsSymmetric() {
		t.Fatal("not symmetric")
	}
	st := sparse.ComputeStats(a.ToCSR())
	if st.MaxRowNNZ > 14 {
		t.Errorf("7-pt dof=2 max nnz/row = %d, want <= 14", st.MaxRowNNZ)
	}
}

func TestFEM3DBadStencilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FEM3D(2, 2, 2, 1, 5, 0)
}

func TestFEM3DDeterministic(t *testing.T) {
	a := FEM3D(3, 3, 3, 2, 7, 42)
	b := FEM3D(3, 3, 3, 2, 7, 42)
	if a.NNZ() != b.NNZ() {
		t.Fatal("nondeterministic pattern")
	}
	for k := range a.V {
		if a.V[k] != b.V[k] {
			t.Fatal("nondeterministic values")
		}
	}
}

func TestKKTStructure(t *testing.T) {
	a := KKT(6, 3)
	if a.Rows != 2*216 {
		t.Fatalf("rows = %d, want 432", a.Rows)
	}
	if !a.IsSymmetric() {
		t.Fatal("KKT not symmetric")
	}
	st := sparse.ComputeStats(a.ToCSR())
	if st.AvgRowNNZ < 5 || st.AvgRowNNZ > 30 {
		t.Errorf("avg nnz/row = %v, want KKT-like (5..30)", st.AvgRowNNZ)
	}
}

func TestRMATPowerLaw(t *testing.T) {
	a := RMAT(1024, 8, 0.6, 7)
	if !a.IsSymmetric() {
		t.Fatal("RMAT not symmetric after Symmetrize")
	}
	st := sparse.ComputeStats(a.ToCSR())
	// Power-law graphs must show strong skew — this is what drives the BSP
	// load imbalance in the paper.
	if st.Imbalance < 5 {
		t.Errorf("imbalance = %v, want >= 5 for a power-law graph", st.Imbalance)
	}
	for _, v := range a.V {
		if v <= 0 || v > 1 {
			t.Fatalf("value %v outside (0,1] after FillRandom", v)
		}
	}
}

func TestRMATSkewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad skew")
		}
	}()
	RMAT(64, 4, 0.1, 0)
}

func TestBandCFDStructure(t *testing.T) {
	a := BandCFD(2000, 40, 100, 11)
	if !a.IsSymmetric() {
		t.Fatal("BandCFD not symmetric")
	}
	st := sparse.ComputeStats(a.ToCSR())
	if st.Bandwidth > 100 {
		t.Errorf("bandwidth = %d, want <= 100", st.Bandwidth)
	}
	if st.AvgRowNNZ < 10 {
		t.Errorf("avg nnz/row = %v, too sparse for CFD class", st.AvgRowNNZ)
	}
}

func TestBlockCIStructure(t *testing.T) {
	a := BlockCI(1024, 32, 4, 13)
	if !a.IsSymmetric() {
		t.Fatal("BlockCI not symmetric")
	}
	st := sparse.ComputeStats(a.ToCSR())
	if st.AvgRowNNZ < 20 {
		t.Errorf("avg nnz/row = %v, want dense-ish blocks", st.AvgRowNNZ)
	}
}

func TestTraceGraphSkew(t *testing.T) {
	a := TraceGraph(5000, 2.1, 17)
	if !a.IsSymmetric() {
		t.Fatal("TraceGraph not symmetric")
	}
	st := sparse.ComputeStats(a.ToCSR())
	if st.AvgRowNNZ > 12 {
		t.Errorf("avg nnz/row = %v, want mawi-like sparsity", st.AvgRowNNZ)
	}
	if st.Imbalance < 20 {
		t.Errorf("imbalance = %v, want extreme hub skew", st.Imbalance)
	}
}

func TestSuiteComplete(t *testing.T) {
	suite := Suite()
	if len(suite) != 15 {
		t.Fatalf("suite has %d matrices, want 15", len(suite))
	}
	// Paper rows must be strictly increasing down Table 1.
	for i := 1; i < len(suite); i++ {
		if suite[i].PaperRows <= suite[i-1].PaperRows {
			t.Errorf("suite order broken at %s", suite[i].Name)
		}
	}
}

func TestSuiteBuildTiny(t *testing.T) {
	for _, s := range Suite() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			a := s.Build(Tiny, 1)
			if a.Rows < 100 {
				t.Fatalf("rows = %d, degenerate", a.Rows)
			}
			if a.NNZ() == 0 {
				t.Fatal("no nonzeros")
			}
			if !a.IsSymmetric() {
				t.Fatal("suite matrix must be symmetric")
			}
		})
	}
}

func TestSpecByName(t *testing.T) {
	if _, err := SpecByName("nlpkkt240"); err != nil {
		t.Fatal(err)
	}
	if _, err := SpecByName("nosuch"); err == nil {
		t.Fatal("expected error")
	}
}

func TestPresetByName(t *testing.T) {
	for _, n := range []string{"tiny", "small", "medium"} {
		if _, err := PresetByName(n); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
	if _, err := PresetByName("huge"); err == nil {
		t.Fatal("expected error")
	}
}

func TestTargetRowsScaling(t *testing.T) {
	s, _ := SpecByName("mawi_201512020130")
	if s.TargetRows(Tiny) >= s.TargetRows(Small) {
		t.Error("tiny preset should be smaller than small preset")
	}
	tiny, _ := SpecByName("inline1")
	if tiny.TargetRows(Tiny) != Tiny.MinRows {
		t.Errorf("small matrix should clamp to MinRows, got %d", tiny.TargetRows(Tiny))
	}
}

func TestSPDLaplacianStructure(t *testing.T) {
	const n = 5000
	a := SPDLaplacian(n, 3)
	if a.Rows != n || a.Cols != n {
		t.Fatalf("shape %dx%d, want %dx%d", a.Rows, a.Cols, n, n)
	}
	csr := a.ToCSR()
	// Symmetric with a strictly dominant diagonal on every row — the
	// certificate of positive definiteness the convergence tests rely on.
	for i := 0; i < n; i++ {
		var diag, off float64
		for p := csr.RowPtr[i]; p < csr.RowPtr[i+1]; p++ {
			j := int(csr.ColIdx[p])
			v := csr.V[p]
			if j == i {
				diag = v
			} else {
				off += -v // off-diagonals are negative couplings
				if v >= 0 {
					t.Fatalf("row %d: off-diagonal (%d,%d)=%g not negative", i, i, j, v)
				}
			}
		}
		if diag <= off {
			t.Fatalf("row %d: diagonal %g not dominant over %g", i, diag, off)
		}
	}
	if !a.IsSymmetric() {
		t.Fatal("SPDLaplacian not symmetric")
	}
}

func TestSPDLaplacianDeterministic(t *testing.T) {
	a := SPDLaplacian(2000, 9)
	b := SPDLaplacian(2000, 9)
	if a.NNZ() != b.NNZ() {
		t.Fatalf("nnz differs: %d vs %d", a.NNZ(), b.NNZ())
	}
	for k := range a.V {
		if a.I[k] != b.I[k] || a.J[k] != b.J[k] || a.V[k] != b.V[k] {
			t.Fatalf("entry %d differs between identical seeds", k)
		}
	}
	c := SPDLaplacian(2000, 10)
	same := true
	for k := range a.V {
		if k >= len(c.V) || a.V[k] != c.V[k] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical matrices")
	}
}
