package machine

import "testing"

func TestPaperGeometry(t *testing.T) {
	b := Broadwell()
	if b.Cores != 28 || b.Sockets != 2 || b.NUMADomains != 2 {
		t.Fatalf("Broadwell topology %+v", b)
	}
	if b.L3.SizeBytes != 35<<20 || b.L3.SharedBy != 14 {
		t.Fatalf("Broadwell L3 %+v", b.L3)
	}
	e := EPYC()
	if e.Cores != 128 || e.NUMADomains != 8 {
		t.Fatalf("EPYC topology %+v", e)
	}
	if e.L3.SizeBytes != 16<<20 || e.L3.SharedBy != 4 {
		t.Fatalf("EPYC L3 must be 16MB per 4-core CCX: %+v", e.L3)
	}
	if e.L2.SizeBytes != 512<<10 {
		t.Fatalf("EPYC L2 %+v", e.L2)
	}
}

func TestSlowDownUniform(t *testing.T) {
	m := Broadwell()
	s := m.SlowDown(10)
	if s.MemLatencyNs != m.MemLatencyNs*10 || s.BWNsPerLine != m.BWNsPerLine*10 {
		t.Fatal("latency/bandwidth not slowed")
	}
	if s.FlopsPerNs != m.FlopsPerNs/10 {
		t.Fatal("flop rate not slowed")
	}
	if m.SlowDown(1) != m || m.SlowDown(0) != m {
		t.Fatal("SlowDown <= 1 must be identity")
	}
}

func TestScaledPrivateVsShared(t *testing.T) {
	m := Broadwell().Scaled(64)
	// LLC scales by the full factor, private caches by its square root.
	if m.L3.SizeBytes != (35<<20)/64 {
		t.Fatalf("L3 = %d", m.L3.SizeBytes)
	}
	if m.L2.SizeBytes != (256<<10)/8 {
		t.Fatalf("L2 = %d, want /8", m.L2.SizeBytes)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if Broadwell().Scaled(1) != Broadwell() {
		t.Fatal("Scaled(1) must be identity")
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"broadwell", "epyc"} {
		m, err := ByName(n)
		if err != nil || m.Name != n {
			t.Errorf("ByName(%s): %v %v", n, m.Name, err)
		}
	}
	if _, err := ByName("m1max"); err == nil {
		t.Error("unknown machine accepted")
	}
}
