// Package machine describes the CPU models the discrete-event simulator
// executes on: core counts, cache geometry, NUMA layout and a simple cost
// model. Two models mirror the paper's testbeds — a 28-core Intel Broadwell
// node and a 128-core AMD EPYC node — and both can be scaled down so that
// cache-size-relative effects (matrix vs LLC) survive when the matrix suite
// itself is scaled down.
package machine

import "fmt"

// Cache describes one cache level.
type Cache struct {
	SizeBytes int64
	LineBytes int64
	Assoc     int
	// SharedBy is the number of cores sharing one instance: 1 = private,
	// Cores = fully shared, 4 = per-CCX (EPYC L3).
	SharedBy int
	// LatencyNs is the additional latency of a hit at this level.
	LatencyNs float64
}

// Model is a simulated machine.
type Model struct {
	Name    string
	Cores   int
	Sockets int
	// NUMADomains must divide Cores; consecutive core ranges form domains.
	NUMADomains int

	L1, L2, L3 Cache

	// FlopsPerNs is per-core peak double-precision flops per nanosecond.
	FlopsPerNs float64
	// MemLatencyNs is the local-memory line fetch latency.
	MemLatencyNs float64
	// RemoteExtraNs is the additional latency for a remote-NUMA line.
	RemoteExtraNs float64
	// MLP is the assumed memory-level parallelism: outstanding misses whose
	// latencies overlap. Effective memory time = Σ latencies / MLP.
	MLP float64
	// BWNsPerLine is the time one NUMA domain's memory controller needs to
	// serve one cache line: the bandwidth term of the cost model. When all
	// pages live in one domain (serial initialization), that controller
	// serializes the whole machine's traffic — the paper's Fig. 5 effect.
	BWNsPerLine float64

	// Overheads of the runtime being simulated, per task, charged on the
	// executing core (set by the simulator per policy, not here).
}

// Validate checks internal consistency.
func (m Model) Validate() error {
	if m.Cores <= 0 || m.NUMADomains <= 0 || m.Cores%m.NUMADomains != 0 {
		return fmt.Errorf("machine: %s: %d cores not divisible into %d domains", m.Name, m.Cores, m.NUMADomains)
	}
	for _, c := range []Cache{m.L1, m.L2, m.L3} {
		if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0 || c.SharedBy <= 0 {
			return fmt.Errorf("machine: %s: invalid cache geometry %+v", m.Name, c)
		}
	}
	if m.FlopsPerNs <= 0 || m.MLP <= 0 {
		return fmt.Errorf("machine: %s: invalid cost parameters", m.Name)
	}
	return nil
}

// DomainOf returns the NUMA domain of a core.
func (m Model) DomainOf(core int) int {
	return core / (m.Cores / m.NUMADomains)
}

// CoresPerDomain returns cores per NUMA domain.
func (m Model) CoresPerDomain() int { return m.Cores / m.NUMADomains }

// Broadwell models the paper's Intel Xeon E5-2680v4 node: 2×14 cores,
// 32 KB L1d + 256 KB L2 per core, 35 MB L3 shared per socket, 2 NUMA domains.
func Broadwell() Model {
	return Model{
		Name:          "broadwell",
		Cores:         28,
		Sockets:       2,
		NUMADomains:   2,
		L1:            Cache{SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8, SharedBy: 1, LatencyNs: 1.2},
		L2:            Cache{SizeBytes: 256 << 10, LineBytes: 64, Assoc: 8, SharedBy: 1, LatencyNs: 3.5},
		L3:            Cache{SizeBytes: 35 << 20, LineBytes: 64, Assoc: 16, SharedBy: 14, LatencyNs: 15},
		FlopsPerNs:    8, // 2.4 GHz × ~3.3 flops/cycle sustained
		MemLatencyNs:  90,
		RemoteExtraNs: 60,
		MLP:           24,  // hardware prefetchers sustain deep miss streams
		BWNsPerLine:   1.0, // ~64 GB/s per socket

	}
}

// EPYC models the paper's AMD EPYC 7H12 node: 2×64 cores, 32 KB L1d +
// 512 KB L2 per core, 16 MB L3 per 4-core CCX, 8 NUMA domains (4 per socket).
func EPYC() Model {
	return Model{
		Name:          "epyc",
		Cores:         128,
		Sockets:       2,
		NUMADomains:   8,
		L1:            Cache{SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8, SharedBy: 1, LatencyNs: 1.0},
		L2:            Cache{SizeBytes: 512 << 10, LineBytes: 64, Assoc: 8, SharedBy: 1, LatencyNs: 3.0},
		L3:            Cache{SizeBytes: 16 << 20, LineBytes: 64, Assoc: 16, SharedBy: 4, LatencyNs: 12},
		FlopsPerNs:    9, // 2.6 GHz
		MemLatencyNs:  100,
		RemoteExtraNs: 90, // Infinity-fabric hop: NUMA effects are stronger
		MLP:           24,
		BWNsPerLine:   1.5, // ~42 GB/s per NUMA domain (8 domains/node)

	}
}

// SlowDown returns a copy with every latency and bandwidth term multiplied
// by s and the flop rate divided by s: a uniformly slower machine. Used when
// the matrix suite is scaled down so that per-task compute time keeps the
// same ratio to the (unscaled, real-world) per-task runtime overheads as in
// the paper; all reported times scale by s, which is irrelevant for the
// ratios and speedups the experiments measure.
func (m Model) SlowDown(s float64) Model {
	if s <= 1 {
		return m
	}
	o := m
	o.L1.LatencyNs *= s
	o.L2.LatencyNs *= s
	o.L3.LatencyNs *= s
	o.MemLatencyNs *= s
	o.RemoteExtraNs *= s
	o.BWNsPerLine *= s
	o.FlopsPerNs /= s
	return o
}

// Scaled returns a copy with cache sizes divided by f, used when the matrix
// suite is scaled down by ~f so that "matrix ≫ LLC" relationships are
// preserved. The private L1/L2 shrink by only √f: unlike the LLC-vs-matrix
// ratio, their role is holding one task's working tile, whose size shrinks
// with the square root of the matrix scale (chunks scale with rows/blockcount
// while block counts stay fixed). Sizes are floored to one set.
func (m Model) Scaled(f int) Model {
	if f <= 1 {
		return m
	}
	s := m
	s.Name = fmt.Sprintf("%s/%d", m.Name, f)
	priv := 1
	for priv*priv < f {
		priv++
	}
	for _, c := range []*Cache{&s.L1, &s.L2} {
		c.SizeBytes /= int64(priv)
		min := c.LineBytes * int64(c.Assoc)
		if c.SizeBytes < min {
			c.SizeBytes = min
		}
	}
	s.L3.SizeBytes /= int64(f)
	if min := s.L3.LineBytes * int64(s.L3.Assoc); s.L3.SizeBytes < min {
		s.L3.SizeBytes = min
	}
	return s
}

// ByName resolves a model from CLI flags ("broadwell" or "epyc").
func ByName(name string) (Model, error) {
	switch name {
	case "broadwell":
		return Broadwell(), nil
	case "epyc":
		return EPYC(), nil
	}
	return Model{}, fmt.Errorf("machine: unknown model %q (want broadwell or epyc)", name)
}
