package cachesim

import (
	"testing"

	"sparsetask/internal/machine"
)

func tinyModel() machine.Model {
	m := machine.Broadwell()
	m.Cores = 4
	m.NUMADomains = 2
	m.L1.SizeBytes = 1 << 10 // 16 lines
	m.L2.SizeBytes = 4 << 10
	m.L3.SizeBytes = 16 << 10
	m.L3.SharedBy = 2
	return m
}

func TestColdMissesThenHits(t *testing.T) {
	h := New(tinyModel(), true)
	var c Counters
	h.Access(0, 0x100000, 512, false, &c) // 8 lines, all cold
	if c.L1Miss != 8 || c.L1Hit != 0 || c.MemLines != 8 {
		t.Fatalf("cold pass: %+v", c)
	}
	var c2 Counters
	h.Access(0, 0x100000, 512, false, &c2) // fits in L1: all hits
	if c2.L1Hit != 8 || c2.L1Miss != 0 {
		t.Fatalf("warm pass: %+v", c2)
	}
}

func TestCapacityEviction(t *testing.T) {
	h := New(tinyModel(), true)
	var c Counters
	// Stream 64 KiB through a 1 KiB L1: far exceeds all levels except none.
	h.Access(0, 0x100000, 64<<10, false, &c)
	var c2 Counters
	h.Access(0, 0x100000, 64<<10, false, &c2)
	// Second pass must still miss in L1 (working set 64x larger).
	if c2.L1Hit > c2.L1Miss/4 {
		t.Fatalf("L1 should thrash on 64x working set: %+v", c2)
	}
	// And must also miss L3 (4x its size).
	if c2.L3Miss == 0 {
		t.Fatalf("L3 should miss on 4x working set: %+v", c2)
	}
}

func TestSmallWorkingSetStaysInL3(t *testing.T) {
	h := New(tinyModel(), true)
	var c Counters
	h.Access(0, 0x100000, 8<<10, false, &c) // half of L3
	var c2 Counters
	h.Access(0, 0x100000, 8<<10, false, &c2)
	if c2.L3Miss != 0 {
		t.Fatalf("8K working set should fit L3 (16K): %+v", c2)
	}
}

func TestPrivateCachesPerCore(t *testing.T) {
	h := New(tinyModel(), true)
	var c Counters
	h.Access(0, 0x100000, 512, false, &c)
	var c2 Counters
	h.Access(1, 0x100000, 512, false, &c2)
	// Different core: L1/L2 cold, but same L3 group (cores 0,1 share L3 0).
	if c2.L1Hit != 0 {
		t.Fatalf("core 1 should not hit core 0's L1: %+v", c2)
	}
	if c2.L3Hit != 8 {
		t.Fatalf("core 1 should hit shared L3: %+v", c2)
	}
	// Core 2 is in another L3 group: full cold miss.
	var c3 Counters
	h.Access(2, 0x100000, 512, false, &c3)
	if c3.L3Hit != 0 || c3.MemLines != 8 {
		t.Fatalf("core 2 in other L3 group should miss: %+v", c3)
	}
}

func TestFirstTouchPlacement(t *testing.T) {
	// With first touch, a core's own accesses are local; without it, pages
	// land in domain 0 and cores in domain 1 pay remote penalties.
	hOn := New(tinyModel(), true)
	var c Counters
	hOn.Access(3, 0x200000, 4096, false, &c) // core 3 is domain 1
	if c.RemoteLines != 0 {
		t.Fatalf("first touch should make core-3 pages local: %+v", c)
	}
	hOff := New(tinyModel(), false)
	var c2 Counters
	hOff.Access(3, 0x200000, 4096, false, &c2)
	if c2.RemoteLines != c2.MemLines || c2.RemoteLines == 0 {
		t.Fatalf("without first touch, domain-1 fetches should be remote: %+v", c2)
	}
}

func TestTouchPreplacesPages(t *testing.T) {
	h := New(tinyModel(), true)
	h.Touch(0, 0x300000, 8192) // pages owned by domain 0
	var c Counters
	h.Access(3, 0x300000, 8192, false, &c) // domain 1 touches them
	if c.RemoteLines == 0 {
		t.Fatalf("preplaced pages should be remote for domain 1: %+v", c)
	}
}

func TestLayoutDisjoint(t *testing.T) {
	l := NewLayout()
	b1 := l.Base(1, 100)
	b2 := l.Base(2, 100)
	if b1 == b2 {
		t.Fatal("distinct regions share a base")
	}
	if l.Base(1, 100) != b1 {
		t.Fatal("repeated Base changed address")
	}
	if b2-b1 < 4096 {
		t.Fatalf("regions not page-separated: %d %d", b1, b2)
	}
	if l.Regions() != 2 {
		t.Fatalf("regions = %d, want 2", l.Regions())
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{L1Hit: 1, L1Miss: 2, L2Hit: 3, L2Miss: 4, L3Hit: 5, L3Miss: 6, MemLines: 7, RemoteLines: 8}
	b := a
	a.Add(b)
	if a.L1Hit != 2 || a.RemoteLines != 16 {
		t.Fatalf("Add broken: %+v", a)
	}
}

func TestModelValidate(t *testing.T) {
	for _, m := range []machine.Model{machine.Broadwell(), machine.EPYC()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	bad := machine.Broadwell()
	bad.NUMADomains = 3 // 28 % 3 != 0
	if err := bad.Validate(); err == nil {
		t.Error("invalid domain split accepted")
	}
}

func TestModelScaled(t *testing.T) {
	m := machine.Broadwell().Scaled(64)
	if m.L3.SizeBytes != (35<<20)/64 {
		t.Fatalf("L3 scaled wrong: %d", m.L3.SizeBytes)
	}
	if m.L1.SizeBytes < m.L1.LineBytes*int64(m.L1.Assoc) {
		t.Fatal("scaled below one set")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDomainOf(t *testing.T) {
	m := machine.EPYC()
	if m.DomainOf(0) != 0 || m.DomainOf(127) != 7 || m.DomainOf(16) != 1 {
		t.Fatal("DomainOf mapping wrong")
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	h := New(tinyModel(), true)
	var c Counters
	// Write a 32 KiB region (2x the 16 KiB L3), then stream another 32 KiB
	// of reads: dirty lines must be written back as they are evicted.
	h.Access(0, 0x100000, 32<<10, true, &c)
	h.Access(0, 0x200000, 32<<10, false, &c)
	if c.WritebackLines == 0 {
		t.Fatalf("no writebacks after evicting dirty lines: %+v", c)
	}
	// Reads alone never produce writebacks.
	h2 := New(tinyModel(), true)
	var c2 Counters
	h2.Access(0, 0x100000, 32<<10, false, &c2)
	h2.Access(0, 0x200000, 32<<10, false, &c2)
	if c2.WritebackLines != 0 {
		t.Fatalf("read-only stream produced writebacks: %+v", c2)
	}
}

func TestWritebackChargesOwnerDomain(t *testing.T) {
	h := New(tinyModel(), true)
	var c Counters
	// Core 3 (domain 1) writes then evicts its own pages: the writeback
	// bandwidth lands on domain 1's controller.
	h.Access(3, 0x400000, 32<<10, true, &c)
	h.Access(3, 0x500000, 32<<10, false, &c)
	if c.WritebackLines == 0 {
		t.Fatal("expected writebacks")
	}
	if c.DomLines[1] <= c.DomLines[0] {
		t.Fatalf("writebacks should charge domain 1: %+v", c.DomLines)
	}
}

func TestDomainAwareAttribution(t *testing.T) {
	// Core 0 (domain 0) first-touches region A; core 3 (domain 1) then
	// streams it cross-domain. DomainAware mode must attribute domain 1's
	// misses as remote and domain 0's cold misses as local, and the
	// per-domain L3Miss counts must sum to the global one.
	h := New(tinyModel(), true)
	h.DomainAware = true
	var c Counters
	h.Access(0, 0x100000, 4096, false, &c)   // cold, places pages in domain 0
	h.Access(3, 0x200000, 4096, false, &c)   // cold, places pages in domain 1
	h.Access(3, 0x100000, 64<<10, false, &c) // flush domain-1 caches...
	h.Access(3, 0x100000, 4096, false, &c)   // ...then re-fetch A remotely

	if c.ByDomain[0].L3Miss == 0 || c.ByDomain[0].Remote != 0 {
		t.Fatalf("domain 0 should have only local misses: %+v", c.ByDomain[0])
	}
	if c.ByDomain[1].Remote == 0 {
		t.Fatalf("domain 1 should have remote misses: %+v", c.ByDomain[1])
	}
	var sum int64
	for d := range c.ByDomain {
		bd := c.ByDomain[d]
		if bd.Local+bd.Remote != bd.L3Miss {
			t.Fatalf("domain %d: local %d + remote %d != l3miss %d", d, bd.Local, bd.Remote, bd.L3Miss)
		}
		sum += bd.L3Miss
	}
	if sum != c.L3Miss {
		t.Fatalf("per-domain misses sum to %d, global %d", sum, c.L3Miss)
	}

	// Off by default: a fresh hierarchy leaves ByDomain untouched.
	h2 := New(tinyModel(), true)
	var c2 Counters
	h2.Access(0, 0x100000, 4096, false, &c2)
	if c2.ByDomain[0].L3Miss != 0 {
		t.Fatalf("ByDomain filled without DomainAware: %+v", c2.ByDomain[0])
	}

	// Add must merge the per-domain block.
	var a, b Counters
	a.ByDomain[1] = DomainCounters{L3Miss: 2, Local: 1, Remote: 1}
	b.ByDomain[1] = DomainCounters{L3Miss: 3, Local: 3}
	a.Add(b)
	if a.ByDomain[1] != (DomainCounters{L3Miss: 5, Local: 4, Remote: 1}) {
		t.Fatalf("Add merged to %+v", a.ByDomain[1])
	}
}
