// Package cachesim simulates a multi-level set-associative cache hierarchy
// with LRU replacement plus a first-touch NUMA page map. It stands in for the
// `perf stat` hardware counters the paper uses: the simulator is fed the
// block-granular access stream of each task (region base + footprint) and
// reports per-level hit/miss counts and local/remote memory line counts.
//
// Absolute miss counts are model artifacts; what the experiments rely on —
// and what this model captures — is how miss counts *change* with the task
// schedule (reuse distance) and data placement, which is a property of the
// access stream, not of micro-architectural detail.
package cachesim

import (
	"sparsetask/internal/machine"
)

// MaxDomains bounds the NUMA domain count the counters track (EPYC has 8).
const MaxDomains = 8

// Counters aggregates simulated memory-system events.
type Counters struct {
	L1Hit, L1Miss   int64
	L2Hit, L2Miss   int64
	L3Hit, L3Miss   int64
	MemLines        int64 // lines fetched from memory
	RemoteLines     int64 // lines fetched from a remote NUMA domain
	WritebackLines  int64 // dirty lines written back to memory on LLC eviction
	PagesFirstTouch int64 // pages placed by first touch
	// DomLines counts memory lines served by each owning domain's
	// controller — the input to the bandwidth-contention model (serial
	// initialization funnels everything through domain 0).
	DomLines [MaxDomains]int64
	// ByDomain attributes misses to the *accessing* core's domain — filled
	// only when the hierarchy runs with DomainAware set. Where DomLines asks
	// "whose memory served this line", ByDomain asks "whose cores went to
	// memory", which is what a locality-aware scheduler changes.
	ByDomain [MaxDomains]DomainCounters
}

// DomainCounters is the per-accessing-domain miss breakdown of the
// domain-aware mode: LLC misses issued by the domain's cores, split into
// lines its own memory served (Local) and lines fetched cross-domain
// (Remote).
type DomainCounters struct {
	L3Miss int64
	Local  int64
	Remote int64
}

// Add accumulates other into c.
func (c *Counters) Add(o Counters) {
	c.L1Hit += o.L1Hit
	c.L1Miss += o.L1Miss
	c.L2Hit += o.L2Hit
	c.L2Miss += o.L2Miss
	c.L3Hit += o.L3Hit
	c.L3Miss += o.L3Miss
	c.MemLines += o.MemLines
	c.RemoteLines += o.RemoteLines
	c.WritebackLines += o.WritebackLines
	c.PagesFirstTouch += o.PagesFirstTouch
	for d := range c.DomLines {
		c.DomLines[d] += o.DomLines[d]
	}
	for d := range c.ByDomain {
		c.ByDomain[d].L3Miss += o.ByDomain[d].L3Miss
		c.ByDomain[d].Local += o.ByDomain[d].Local
		c.ByDomain[d].Remote += o.ByDomain[d].Remote
	}
}

// cache is one set-associative LRU cache instance.
type cache struct {
	sets      int64
	assoc     int
	lineShift uint
	// tags[set*assoc+way]; 0 means empty. LRU order: way 0 is MRU.
	tags []uint64
	// dirty mirrors tags: the line has been written since it was filled.
	dirty []bool
}

func newCache(c machine.Cache) *cache {
	lineShift := uint(0)
	for 1<<lineShift < c.LineBytes {
		lineShift++
	}
	sets := c.SizeBytes / (c.LineBytes * int64(c.Assoc))
	if sets < 1 {
		sets = 1
	}
	// Round down to a power of two for cheap indexing.
	p := int64(1)
	for p*2 <= sets {
		p *= 2
	}
	return &cache{
		sets: p, assoc: c.Assoc, lineShift: lineShift,
		tags:  make([]uint64, p*int64(c.Assoc)),
		dirty: make([]bool, p*int64(c.Assoc)),
	}
}

// access returns hit status, inserting the line either way and marking it
// dirty when write is set. On a miss that evicts a dirty line, the evicted
// line (its id, not tag) is returned for writeback accounting.
func (c *cache) access(line uint64, write bool) (hit bool, evicted uint64, evictedDirty bool) {
	set := int64(line) & (c.sets - 1)
	base := set * int64(c.assoc)
	tag := line + 1 // +1 so 0 stays "empty"
	for w := 0; w < c.assoc; w++ {
		if c.tags[base+int64(w)] == tag {
			// Move to front (MRU), carrying the dirty bit.
			d := c.dirty[base+int64(w)] || write
			copy(c.tags[base+1:base+int64(w)+1], c.tags[base:base+int64(w)])
			copy(c.dirty[base+1:base+int64(w)+1], c.dirty[base:base+int64(w)])
			c.tags[base] = tag
			c.dirty[base] = d
			return true, 0, false
		}
	}
	// Miss: evict LRU (last way).
	last := base + int64(c.assoc) - 1
	if c.tags[last] != 0 && c.dirty[last] {
		evicted = c.tags[last] - 1
		evictedDirty = true
	}
	copy(c.tags[base+1:base+int64(c.assoc)], c.tags[base:last])
	copy(c.dirty[base+1:base+int64(c.assoc)], c.dirty[base:last])
	c.tags[base] = tag
	c.dirty[base] = write
	return false, evicted, evictedDirty
}

// Hierarchy is the full simulated memory system of one machine.
type Hierarchy struct {
	M machine.Model
	// FirstTouch enables first-touch page placement; when disabled, every
	// page lives in domain 0 (the serial-initialization pathology of the
	// paper's Fig. 5).
	FirstTouch bool
	// DomainAware additionally attributes every LLC miss to the accessing
	// core's domain in Counters.ByDomain — the per-domain view the §5.2
	// locality experiment compares across stealing policies. Off by default
	// because the extra accounting is pure overhead for the other
	// experiments.
	DomainAware bool

	l1, l2 []*cache // per core
	l3     []*cache // per L3 group
	l3Of   []int    // core -> l3 group

	lineBytes int64
	pageShift uint
	pageDom   map[uint64]int8
}

// New builds the hierarchy for a machine model.
func New(m machine.Model, firstTouch bool) *Hierarchy {
	h := &Hierarchy{
		M:          m,
		FirstTouch: firstTouch,
		l1:         make([]*cache, m.Cores),
		l2:         make([]*cache, m.Cores),
		l3Of:       make([]int, m.Cores),
		lineBytes:  m.L1.LineBytes,
		pageShift:  12, // 4 KiB pages
		pageDom:    make(map[uint64]int8),
	}
	groups := (m.Cores + m.L3.SharedBy - 1) / m.L3.SharedBy
	h.l3 = make([]*cache, groups)
	for c := 0; c < m.Cores; c++ {
		h.l1[c] = newCache(m.L1)
		h.l2[c] = newCache(m.L2)
		h.l3Of[c] = c / m.L3.SharedBy
	}
	for g := range h.l3 {
		h.l3[g] = newCache(m.L3)
	}
	return h
}

// Access simulates core touching [base, base+bytes) once, streaming by
// cache lines, and accumulates into ctr. Writes allocate like reads and mark
// lines dirty; dirty lines evicted from the LLC are charged as writebacks to
// their owning domain's controller.
func (h *Hierarchy) Access(core int, base uint64, bytes int64, write bool, ctr *Counters) {
	if bytes <= 0 {
		return
	}
	dom := h.M.DomainOf(core)
	first := base / uint64(h.lineBytes)
	last := (base + uint64(bytes) - 1) / uint64(h.lineBytes)
	l1 := h.l1[core]
	l2 := h.l2[core]
	l3 := h.l3[h.l3Of[core]]
	for line := first; line <= last; line++ {
		if hit, _, _ := l1.access(line, write); hit {
			ctr.L1Hit++
			continue
		}
		ctr.L1Miss++
		if hit, _, _ := l2.access(line, write); hit {
			ctr.L2Hit++
			continue
		}
		ctr.L2Miss++
		hit, evicted, evictedDirty := l3.access(line, write)
		if evictedDirty {
			ctr.WritebackLines++
			h.chargeDomain(evicted, ctr)
		}
		if hit {
			ctr.L3Hit++
			continue
		}
		ctr.L3Miss++
		ctr.MemLines++
		// NUMA: which domain owns the page?
		page := line >> (h.pageShift - uint(lineShift(h.lineBytes)))
		owner, ok := h.pageDom[page]
		if !ok {
			if h.FirstTouch {
				owner = int8(dom)
			} else {
				owner = 0
			}
			h.pageDom[page] = owner
			ctr.PagesFirstTouch++
		}
		if int(owner) != dom {
			ctr.RemoteLines++
		}
		if int(owner) < MaxDomains {
			ctr.DomLines[owner]++
		}
		if h.DomainAware && dom < MaxDomains {
			bd := &ctr.ByDomain[dom]
			bd.L3Miss++
			if int(owner) == dom {
				bd.Local++
			} else {
				bd.Remote++
			}
		}
	}
}

// chargeDomain accounts one written-back line to its owning domain's
// memory controller.
func (h *Hierarchy) chargeDomain(line uint64, ctr *Counters) {
	page := line >> (h.pageShift - uint(lineShift(h.lineBytes)))
	owner, ok := h.pageDom[page]
	if !ok {
		owner = 0
	}
	if int(owner) < MaxDomains {
		ctr.DomLines[owner]++
	}
}

// Touch places the pages of [base, base+bytes) in the given domain without
// cache effects: models initialization (first touch happens during setup,
// e.g. parallel initialization of vectors and matrix).
func (h *Hierarchy) Touch(domain int, base uint64, bytes int64) {
	if bytes <= 0 {
		return
	}
	firstPage := base >> h.pageShift
	lastPage := (base + uint64(bytes) - 1) >> h.pageShift
	for p := firstPage; p <= lastPage; p++ {
		if _, ok := h.pageDom[p]; !ok {
			h.pageDom[p] = int8(domain)
		}
	}
}

func lineShift(lineBytes int64) int {
	s := 0
	for int64(1)<<s < lineBytes {
		s++
	}
	return s
}

// Layout assigns disjoint virtual base addresses to named regions: a bump
// allocator aligned to pages so regions never share lines or pages.
type Layout struct {
	next  uint64
	bases map[uint64]uint64
}

// NewLayout returns an empty layout starting at a non-zero base.
func NewLayout() *Layout {
	return &Layout{next: 1 << 20, bases: make(map[uint64]uint64)}
}

// Base returns the base address for a region id, allocating bytes (rounded
// to a page) on first use.
func (l *Layout) Base(region uint64, bytes int64) uint64 {
	if b, ok := l.bases[region]; ok {
		return b
	}
	b := l.next
	l.bases[region] = b
	sz := (uint64(bytes) + 4095) &^ 4095
	if sz == 0 {
		sz = 4096
	}
	l.next += sz
	return b
}

// Regions returns the number of distinct regions allocated.
func (l *Layout) Regions() int { return len(l.bases) }
