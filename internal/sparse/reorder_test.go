package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// shuffledBand builds a banded symmetric matrix and hides the band behind a
// random relabeling, so RCM has real work to do.
func shuffledBand(n, halfBand int, seed int64) *COO {
	rng := rand.New(rand.NewSource(seed))
	relabel := rng.Perm(n)
	a := NewCOO(n, n, n*(2*halfBand+1))
	for i := 0; i < n; i++ {
		a.Append(int32(relabel[i]), int32(relabel[i]), 4)
		for d := 1; d <= halfBand; d++ {
			if j := i + d; j < n {
				a.Append(int32(relabel[i]), int32(relabel[j]), -1)
				a.Append(int32(relabel[j]), int32(relabel[i]), -1)
			}
		}
	}
	a.Compact()
	return a
}

func TestRCMReducesBandwidth(t *testing.T) {
	a := shuffledBand(300, 3, 1)
	before := ComputeStats(a.ToCSR()).Bandwidth
	perm, err := RCM(a.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	b, err := a.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	after := ComputeStats(b.ToCSR()).Bandwidth
	if after >= before/4 {
		t.Fatalf("bandwidth %d -> %d: RCM should recover the hidden band", before, after)
	}
	// A band-3 matrix relabeled optimally has bandwidth close to 3.
	if after > 12 {
		t.Fatalf("bandwidth after RCM = %d, want near 3", after)
	}
}

func TestRCMImprovesCSBTileOccupancy(t *testing.T) {
	a := shuffledBand(512, 4, 2)
	perm, err := RCM(a.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	b, err := a.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	before := ComputeBlockFill(a, 32)
	after := ComputeBlockFill(b, 32)
	if after.NonEmpty >= before.NonEmpty {
		t.Fatalf("non-empty tiles %d -> %d: RCM should concentrate tiles on the band",
			before.NonEmpty, after.NonEmpty)
	}
}

func TestPermuteIsSimilarityTransform(t *testing.T) {
	// Permutation preserves symmetry and the multiset of row sums of |A|,
	// and SpMV commutes with the permutation.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(60)
		a := randomCOO(rng, n, n, 0.1)
		a.Symmetrize()
		perm := make([]int32, n)
		for i, v := range rng.Perm(n) {
			perm[i] = int32(v)
		}
		b, err := a.Permute(perm)
		if err != nil {
			return false
		}
		if !b.IsSymmetric() {
			return false
		}
		// y_b(new) must equal y_a(perm[new]) for x_b = permuted x_a.
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		xb, err := PermuteVector(x, perm)
		if err != nil {
			return false
		}
		ya := make([]float64, n)
		yb := make([]float64, n)
		a.ToCSR().SpMV(ya, x)
		b.ToCSR().SpMV(yb, xb)
		for newIdx, oldIdx := range perm {
			if math.Abs(yb[newIdx]-ya[oldIdx]) > 1e-10*(1+math.Abs(ya[oldIdx])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestRCMHandlesDisconnectedComponents(t *testing.T) {
	// Two disjoint chains.
	a := NewCOO(10, 10, 20)
	for i := 0; i < 4; i++ {
		a.Append(int32(i), int32(i+1), 1)
		a.Append(int32(i+1), int32(i), 1)
	}
	for i := 5; i < 9; i++ {
		a.Append(int32(i), int32(i+1), 1)
		a.Append(int32(i+1), int32(i), 1)
	}
	perm, err := RCM(a.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	if len(perm) != 10 {
		t.Fatalf("perm covers %d of 10 vertices", len(perm))
	}
	seen := map[int32]bool{}
	for _, v := range perm {
		if seen[v] {
			t.Fatalf("vertex %d appears twice", v)
		}
		seen[v] = true
	}
}

func TestPermuteValidation(t *testing.T) {
	a := NewCOO(3, 3, 1)
	a.Append(0, 0, 1)
	if _, err := a.Permute([]int32{0, 1}); err == nil {
		t.Error("short permutation accepted")
	}
	if _, err := a.Permute([]int32{0, 0, 2}); err == nil {
		t.Error("duplicate permutation accepted")
	}
	if _, err := a.Permute([]int32{0, 1, 5}); err == nil {
		t.Error("out-of-range permutation accepted")
	}
	rect := NewCOO(2, 3, 0)
	if _, err := rect.Permute([]int32{0, 1}); err == nil {
		t.Error("rectangular matrix accepted")
	}
	if _, err := RCM(rect.ToCSR()); err == nil {
		t.Error("RCM of rectangular matrix accepted")
	}
	if _, err := PermuteVector([]float64{1}, []int32{0, 1}); err == nil {
		t.Error("mismatched vector length accepted")
	}
}
