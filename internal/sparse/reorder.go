package sparse

import (
	"fmt"
	"sort"
)

// RCM computes the reverse Cuthill–McKee ordering of a symmetric matrix: a
// permutation that clusters nonzeros near the diagonal. Bandwidth reduction
// concentrates CSB tiles on the diagonal band, which increases the fraction
// of empty tiles that can be skipped and improves the locality of the
// dependency-chained SpMV/SpMM task pipelines — the preprocessing that makes
// the paper's CSB decomposition effective on irregular inputs.
//
// The returned slice maps new index → old index. Disconnected components are
// handled by restarting from the minimum-degree unvisited vertex.
func RCM(a *CSR) ([]int32, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("sparse: RCM requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	degree := make([]int32, n)
	for i := 0; i < n; i++ {
		degree[i] = int32(a.RowNNZ(i))
	}
	visited := make([]bool, n)
	order := make([]int32, 0, n)
	queue := make([]int32, 0, n)

	// Vertices sorted by degree: restart points for each component.
	byDegree := make([]int32, n)
	for i := range byDegree {
		byDegree[i] = int32(i)
	}
	sort.Slice(byDegree, func(x, y int) bool {
		if degree[byDegree[x]] != degree[byDegree[y]] {
			return degree[byDegree[x]] < degree[byDegree[y]]
		}
		return byDegree[x] < byDegree[y]
	})
	nextSeed := 0

	var nbuf []int32
	for len(order) < n {
		// Find the next unvisited minimum-degree seed.
		for nextSeed < n && visited[byDegree[nextSeed]] {
			nextSeed++
		}
		seed := byDegree[nextSeed]
		visited[seed] = true
		queue = append(queue[:0], seed)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			// Gather unvisited neighbors sorted by degree.
			nbuf = nbuf[:0]
			for p := a.RowPtr[v]; p < a.RowPtr[v+1]; p++ {
				w := a.ColIdx[p]
				if !visited[w] {
					visited[w] = true
					nbuf = append(nbuf, w)
				}
			}
			sort.Slice(nbuf, func(x, y int) bool {
				if degree[nbuf[x]] != degree[nbuf[y]] {
					return degree[nbuf[x]] < degree[nbuf[y]]
				}
				return nbuf[x] < nbuf[y]
			})
			queue = append(queue, nbuf...)
		}
	}
	// Reverse (the "R" in RCM).
	perm := make([]int32, n)
	for i, v := range order {
		perm[n-1-i] = v
	}
	return perm, nil
}

// Permute applies a symmetric permutation to the matrix: entry (i,j) moves
// to (p⁻¹(i), p⁻¹(j)) where perm maps new index → old index (the format RCM
// returns). The result is a new COO matrix.
func (a *COO) Permute(perm []int32) (*COO, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("sparse: Permute requires a square matrix")
	}
	if len(perm) != a.Rows {
		return nil, fmt.Errorf("sparse: permutation length %d != dimension %d", len(perm), a.Rows)
	}
	inv := make([]int32, len(perm))
	seen := make([]bool, len(perm))
	for newIdx, oldIdx := range perm {
		if oldIdx < 0 || int(oldIdx) >= len(perm) || seen[oldIdx] {
			return nil, fmt.Errorf("sparse: invalid permutation at position %d", newIdx)
		}
		seen[oldIdx] = true
		inv[oldIdx] = int32(newIdx)
	}
	out := NewCOO(a.Rows, a.Cols, a.NNZ())
	for k := range a.V {
		out.Append(inv[a.I[k]], inv[a.J[k]], a.V[k])
	}
	out.Compact()
	return out, nil
}

// PermuteVector reorders a vector the same way Permute reorders matrix rows:
// out[new] = in[perm[new]].
func PermuteVector(in []float64, perm []int32) ([]float64, error) {
	if len(in) != len(perm) {
		return nil, fmt.Errorf("sparse: vector length %d != permutation length %d", len(in), len(perm))
	}
	out := make([]float64, len(in))
	for newIdx, oldIdx := range perm {
		out[newIdx] = in[oldIdx]
	}
	return out, nil
}
