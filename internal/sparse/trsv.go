package sparse

import "fmt"

// Triangular-solve kernels over CSR factors. These are the row-range bodies
// of the level-scheduled TRSV tasks (package graph expands one task per row
// block; package kernels calls the range forms) plus the whole-matrix serial
// references the parallel paths are validated against.
//
// Both forms assume the factor stores its diagonal explicitly: every row i
// must contain an entry with column i. Rows are scanned in CSR order, so the
// floating-point accumulation order is a pure function of the factor — the
// property the cross-topology determinism tests pin down.

// LowerSolveRange performs forward substitution for rows [lo, hi) of the
// lower-triangular system L·x = b: x[i] = (b[i] − Σ_{j<i} L(i,j)·x[j]) / L(i,i).
// x and b are full-length vectors; entries x[j] for j < lo must already hold
// the solution of earlier rows (the level schedule guarantees this via task
// dependencies). x and b may alias only when x == b.
//
//sparselint:hotpath
func (a *CSR) LowerSolveRange(x, b []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		s := b[i]
		d := 0.0
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			c := int(a.ColIdx[p])
			if c == i {
				d = a.V[p]
			} else if c < i {
				s -= a.V[p] * x[c]
			}
		}
		x[i] = s / d
	}
}

// UpperSolveRange performs backward substitution for rows [lo, hi) of the
// upper-triangular system U·x = b: x[i] = (b[i] − Σ_{j>i} U(i,j)·x[j]) / U(i,i).
// Rows are processed in descending order; entries x[j] for j >= hi must
// already hold the solution of later rows.
//
//sparselint:hotpath
func (a *CSR) UpperSolveRange(x, b []float64, lo, hi int) {
	for i := hi - 1; i >= lo; i-- {
		s := b[i]
		d := 0.0
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			c := int(a.ColIdx[p])
			if c == i {
				d = a.V[p]
			} else if c > i {
				s -= a.V[p] * x[c]
			}
		}
		x[i] = s / d
	}
}

// LowerSolveRangeN is the width-n forward substitution: x and b are
// row-major m×n blocks and each of the n columns is solved against its own
// right-hand side. The per-column accumulation order matches the width-1 form
// row for row, so column j of the batched solve is bit-identical to a width-1
// solve of column j.
//
//sparselint:hotpath
func (a *CSR) LowerSolveRangeN(x, b []float64, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		xr := x[i*n : i*n+n]
		br := b[i*n : i*n+n]
		d := 0.0
		copy(xr, br)
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			c := int(a.ColIdx[p])
			if c == i {
				d = a.V[p]
			} else if c < i {
				v := a.V[p]
				xc := x[c*n : c*n+n]
				for j, xv := range xc {
					xr[j] -= v * xv
				}
			}
		}
		for j := range xr {
			xr[j] /= d
		}
	}
}

// UpperSolveRangeN is the width-n backward substitution (see
// LowerSolveRangeN).
//
//sparselint:hotpath
func (a *CSR) UpperSolveRangeN(x, b []float64, n, lo, hi int) {
	for i := hi - 1; i >= lo; i-- {
		xr := x[i*n : i*n+n]
		br := b[i*n : i*n+n]
		d := 0.0
		copy(xr, br)
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			c := int(a.ColIdx[p])
			if c == i {
				d = a.V[p]
			} else if c > i {
				v := a.V[p]
				xc := x[c*n : c*n+n]
				for j, xv := range xc {
					xr[j] -= v * xv
				}
			}
		}
		for j := range xr {
			xr[j] /= d
		}
	}
}

// LowerSolve is the whole-matrix serial forward substitution reference.
func (a *CSR) LowerSolve(x, b []float64) {
	if len(x) != a.Rows || len(b) != a.Rows {
		panic(fmt.Sprintf("sparse: LowerSolve shape mismatch: A is %dx%d, x %d, b %d", a.Rows, a.Cols, len(x), len(b)))
	}
	a.LowerSolveRange(x, b, 0, a.Rows)
}

// UpperSolve is the whole-matrix serial backward substitution reference.
func (a *CSR) UpperSolve(x, b []float64) {
	if len(x) != a.Rows || len(b) != a.Rows {
		panic(fmt.Sprintf("sparse: UpperSolve shape mismatch: A is %dx%d, x %d, b %d", a.Rows, a.Cols, len(x), len(b)))
	}
	a.UpperSolveRange(x, b, 0, a.Rows)
}

// Transpose returns Aᵀ in CSR with every row's columns in ascending order —
// the transform that turns a lower-triangular Cholesky factor L into the
// upper-triangular U = Lᵀ the backward solve consumes.
func (a *CSR) Transpose() *CSR {
	t := &CSR{
		Rows:   a.Cols,
		Cols:   a.Rows,
		RowPtr: make([]int64, a.Cols+1),
		ColIdx: make([]int32, a.NNZ()),
		V:      make([]float64, a.NNZ()),
	}
	for _, c := range a.ColIdx {
		t.RowPtr[c+1]++
	}
	for r := 0; r < t.Rows; r++ {
		t.RowPtr[r+1] += t.RowPtr[r]
	}
	next := make([]int64, t.Rows)
	copy(next, t.RowPtr[:t.Rows])
	// Walking A's rows in ascending order writes each transposed row's
	// columns in ascending order, so no per-row sort is needed.
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			c := a.ColIdx[p]
			q := next[c]
			next[c]++
			t.ColIdx[q] = int32(i)
			t.V[q] = a.V[p]
		}
	}
	return t
}

// LowerTriangle extracts the lower triangle of a (including the diagonal) as
// a new CSR, preserving per-row column order.
func (a *CSR) LowerTriangle() *CSR {
	l := &CSR{Rows: a.Rows, Cols: a.Cols, RowPtr: make([]int64, a.Rows+1)}
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if int(a.ColIdx[p]) <= i {
				l.RowPtr[i+1]++
			}
		}
	}
	for r := 0; r < a.Rows; r++ {
		l.RowPtr[r+1] += l.RowPtr[r]
	}
	nnz := l.RowPtr[a.Rows]
	l.ColIdx = make([]int32, nnz)
	l.V = make([]float64, nnz)
	q := int64(0)
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if int(a.ColIdx[p]) <= i {
				l.ColIdx[q] = a.ColIdx[p]
				l.V[q] = a.V[p]
				q++
			}
		}
	}
	return l
}
