package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// Equivalence gates for the register-blocked CSB kernels: every specialized
// path (the 4×-unrolled SpMV entry loop, the fixed-width SpMM bodies for
// n∈{1,2,4,8}, and the generic column-unrolled path) must agree with a naive
// COO triple-loop reference to 1e-12 relative error across asymmetric shapes,
// blocks larger than the matrix, empty tiles, and randomized fuzz shapes.

// relEq is the shared 1e-12 relative comparison.
func relEq(a, b float64) bool { return math.Abs(a-b) <= 1e-12*(1+math.Abs(a)+math.Abs(b)) }

// cooSpMMRef computes Y = A·X (row-major, r columns) straight off the COO
// triples — no tiling, no unrolling, the plainest possible reference.
func cooSpMMRef(a *COO, x []float64, r int) []float64 {
	y := make([]float64, a.Rows*r)
	for k := range a.V {
		i, j, v := int(a.I[k]), int(a.J[k]), a.V[k]
		for c := 0; c < r; c++ {
			y[i*r+c] += v * x[j*r+c]
		}
	}
	return y
}

func checkSpMMEquiv(t *testing.T, a *COO, block, r int) {
	t.Helper()
	csb := a.ToCSB(block)
	x := make([]float64, a.Cols*r)
	rng := rand.New(rand.NewSource(int64(a.Rows*1000 + a.Cols*10 + r)))
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := cooSpMMRef(a, x, r)
	got := make([]float64, a.Rows*r)
	if r == 1 {
		csb.SpMV(got, x)
		for i := range got {
			if !relEq(got[i], want[i]) {
				t.Fatalf("SpMV %dx%d block=%d: y[%d] = %g, want %g", a.Rows, a.Cols, block, i, got[i], want[i])
			}
		}
	}
	csb.SpMM(got, x, r)
	for i := range got {
		if !relEq(got[i], want[i]) {
			t.Fatalf("SpMM %dx%d block=%d r=%d: y[%d] = %g, want %g", a.Rows, a.Cols, block, r, i, got[i], want[i])
		}
	}
}

func TestCSBKernelEquivalenceAsymmetricShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := []struct{ rows, cols, block int }{
		{1, 1, 1},
		{1, 40, 8},
		{40, 1, 8},
		{13, 37, 5},  // nothing divides evenly
		{37, 13, 5},  // transposed aspect
		{17, 17, 64}, // block larger than the matrix: a single edge tile
		{6, 90, 100}, // block larger than both dims, wide
		{33, 32, 32}, // one-past-a-tile edge
		{64, 48, 16}, // exact tiling
		{50, 50, 7},  // ragged edge tiles on both axes
		{128, 3, 32}, // tall and skinny
		{3, 128, 32}, // short and wide
	}
	for _, s := range shapes {
		a := randomCOO(rng, s.rows, s.cols, 0.15)
		a.Compact()
		for _, r := range []int{1, 2, 3, 4, 5, 8, 11} {
			checkSpMMEquiv(t, a, s.block, r)
		}
	}
}

func TestCSBKernelEquivalenceEmptyBlocks(t *testing.T) {
	// Block-diagonal pattern with tile size 8 on a 40x40 matrix: every
	// off-diagonal tile is structurally empty, so BlockSpMV/BlockSpMM hit
	// their lo==hi early return on most of the grid.
	a := NewCOO(40, 40, 0)
	rng := rand.New(rand.NewSource(11))
	for b := 0; b < 5; b++ {
		for k := 0; k < 12; k++ {
			i := int32(b*8 + rng.Intn(8))
			j := int32(b*8 + rng.Intn(8))
			a.Append(i, j, rng.NormFloat64())
		}
	}
	a.Compact()
	csb := a.ToCSB(8)
	if csb.NonEmptyBlocks() > 5 {
		t.Fatalf("expected a block-diagonal tiling, got %d non-empty tiles", csb.NonEmptyBlocks())
	}
	for _, r := range []int{1, 4, 8} {
		checkSpMMEquiv(t, a, 8, r)
	}

	// A matrix with no entries at all: kernels must leave y exactly zero.
	empty := NewCOO(10, 20, 0)
	y := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	empty.ToCSB(4).SpMV(y, make([]float64, 20))
	for i, v := range y {
		if v != 0 {
			t.Fatalf("empty-matrix SpMV left y[%d] = %g, want 0", i, v)
		}
	}
}

func TestCSBKernelEquivalenceFuzzShapes(t *testing.T) {
	// Fuzz-style sweep: random shapes, tile sizes (including ones larger than
	// the matrix), densities and RHS widths, all validated against the COO
	// triple-loop reference.
	rng := rand.New(rand.NewSource(20260805))
	iters := 60
	if testing.Short() {
		iters = 15
	}
	for it := 0; it < iters; it++ {
		rows := 1 + rng.Intn(90)
		cols := 1 + rng.Intn(90)
		block := 1 + rng.Intn(max(rows, cols)+8)
		density := 0.02 + 0.3*rng.Float64()
		r := 1 + rng.Intn(10)
		a := randomCOO(rng, rows, cols, density)
		a.Compact()
		checkSpMMEquiv(t, a, block, r)
	}
}

// The block kernels accumulate (+=); two passes over the same tile must sum.
func TestBlockKernelsAccumulate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomCOO(rng, 24, 24, 0.3)
	a.Compact()
	csb := a.ToCSB(8)
	x := make([]float64, 24*4)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	once := cooSpMMRef(a, x, 4)
	got := make([]float64, 24*4)
	for pass := 0; pass < 2; pass++ {
		for bi := 0; bi < csb.NBR; bi++ {
			for bj := 0; bj < csb.NBC; bj++ {
				csb.BlockSpMM(got, x, 4, bi, bj)
			}
		}
	}
	for i := range got {
		if !relEq(got[i], 2*once[i]) {
			t.Fatalf("two accumulation passes: y[%d] = %g, want %g", i, got[i], 2*once[i])
		}
	}
}
