package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomCOO builds a random rows×cols matrix with roughly density·rows·cols
// entries (duplicates merged).
func randomCOO(rng *rand.Rand, rows, cols int, density float64) *COO {
	a := NewCOO(rows, cols, int(density*float64(rows*cols))+1)
	n := int(density * float64(rows) * float64(cols))
	for k := 0; k < n; k++ {
		a.Append(int32(rng.Intn(rows)), int32(rng.Intn(cols)), rng.NormFloat64())
	}
	a.Compact()
	return a
}

func denseOf(a *COO) [][]float64 {
	d := make([][]float64, a.Rows)
	for i := range d {
		d[i] = make([]float64, a.Cols)
	}
	for k := range a.V {
		d[a.I[k]][a.J[k]] += a.V[k]
	}
	return d
}

func TestCompactMergesDuplicates(t *testing.T) {
	a := NewCOO(3, 3, 4)
	a.Append(1, 1, 2.0)
	a.Append(1, 1, 3.0)
	a.Append(0, 2, 1.0)
	a.Append(2, 0, -1.0)
	a.Compact()
	if a.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", a.NNZ())
	}
	d := denseOf(a)
	if d[1][1] != 5.0 {
		t.Fatalf("merged value = %v, want 5", d[1][1])
	}
}

func TestCompactSortsRowMajor(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomCOO(rng, 50, 40, 0.1)
	for k := 1; k < a.NNZ(); k++ {
		if a.I[k] < a.I[k-1] || (a.I[k] == a.I[k-1] && a.J[k] <= a.J[k-1]) {
			t.Fatalf("entry %d out of order: (%d,%d) after (%d,%d)", k, a.I[k], a.J[k], a.I[k-1], a.J[k-1])
		}
	}
}

func TestAppendOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range append")
		}
	}()
	a := NewCOO(2, 2, 1)
	a.Append(2, 0, 1.0)
}

func TestSymmetrizeMatchesDefinition(t *testing.T) {
	// A_new = L + Lᵀ − D where L is the lower triangle including diagonal.
	a := NewCOO(3, 3, 6)
	a.Append(0, 0, 1)
	a.Append(1, 0, 2)
	a.Append(0, 1, 9) // upper entry must be discarded
	a.Append(2, 1, 3)
	a.Append(2, 2, 4)
	a.Symmetrize()
	d := denseOf(a)
	want := [][]float64{{1, 2, 0}, {2, 0, 3}, {0, 3, 4}}
	for i := range want {
		for j := range want[i] {
			if d[i][j] != want[i][j] {
				t.Errorf("A[%d][%d] = %v, want %v", i, j, d[i][j], want[i][j])
			}
		}
	}
	if !a.IsSymmetric() {
		t.Error("Symmetrize produced a non-symmetric matrix")
	}
}

func TestSymmetrizeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		a := randomCOO(rng, n, n, 0.15)
		a.Symmetrize()
		return a.IsSymmetric()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSymmetrizeRequiresSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-square Symmetrize")
		}
	}()
	NewCOO(2, 3, 0).Symmetrize()
}

func TestFillRandomPreservesSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomCOO(rng, 30, 30, 0.2)
	a.Symmetrize()
	a.FillRandom(42)
	if !a.IsSymmetric() {
		t.Fatal("FillRandom broke symmetry")
	}
	for k, v := range a.V {
		if v <= 0 || v > 1 {
			t.Fatalf("entry %d value %v outside (0,1]", k, v)
		}
	}
}

func TestFillRandomDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomCOO(rng, 20, 20, 0.2)
	b := a.Clone()
	a.FillRandom(5)
	b.FillRandom(5)
	for k := range a.V {
		if a.V[k] != b.V[k] {
			t.Fatal("FillRandom is not deterministic for equal seeds")
		}
	}
	b.FillRandom(6)
	same := true
	for k := range a.V {
		if a.V[k] != b.V[k] {
			same = false
		}
	}
	if same && a.NNZ() > 0 {
		t.Fatal("FillRandom ignored the seed")
	}
}

func TestCSRRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomCOO(rng, 37, 23, 0.1)
	c := a.ToCSR()
	back := c.ToCOO()
	back.Compact()
	if back.NNZ() != a.NNZ() {
		t.Fatalf("round trip NNZ %d != %d", back.NNZ(), a.NNZ())
	}
	for k := range a.V {
		if a.I[k] != back.I[k] || a.J[k] != back.J[k] || a.V[k] != back.V[k] {
			t.Fatalf("entry %d mismatch after round trip", k)
		}
	}
}

func TestSpMVMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomCOO(rng, 40, 31, 0.15)
	c := a.ToCSR()
	d := denseOf(a)
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, a.Rows)
	c.SpMV(y, x)
	for i := 0; i < a.Rows; i++ {
		var want float64
		for j := 0; j < a.Cols; j++ {
			want += d[i][j] * x[j]
		}
		if math.Abs(y[i]-want) > 1e-12*(1+math.Abs(want)) {
			t.Fatalf("y[%d] = %v, want %v", i, y[i], want)
		}
	}
}

func TestSpMMMatchesSpMVPerColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomCOO(rng, 33, 29, 0.12)
	c := a.ToCSR()
	n := 4
	x := make([]float64, a.Cols*n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, a.Rows*n)
	c.SpMM(y, x, n)
	// Check column col against SpMV.
	for col := 0; col < n; col++ {
		xc := make([]float64, a.Cols)
		for i := 0; i < a.Cols; i++ {
			xc[i] = x[i*n+col]
		}
		yc := make([]float64, a.Rows)
		c.SpMV(yc, xc)
		for i := 0; i < a.Rows; i++ {
			if math.Abs(y[i*n+col]-yc[i]) > 1e-12*(1+math.Abs(yc[i])) {
				t.Fatalf("SpMM col %d row %d = %v, want %v", col, i, y[i*n+col], yc[i])
			}
		}
	}
}

func TestCSBRoundTripNNZ(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := randomCOO(rng, 100, 100, 0.05)
	for _, b := range []int{1, 3, 7, 16, 64, 100, 130} {
		c := a.ToCSB(b)
		if c.NNZ() != a.NNZ() {
			t.Fatalf("block=%d: CSB NNZ %d != %d", b, c.NNZ(), a.NNZ())
		}
		total := 0
		for bi := 0; bi < c.NBR; bi++ {
			for bj := 0; bj < c.NBC; bj++ {
				total += c.BlockNNZ(bi, bj)
			}
		}
		if total != a.NNZ() {
			t.Fatalf("block=%d: tile NNZ sum %d != %d", b, total, a.NNZ())
		}
	}
}

func TestCSBLocalIndicesInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	a := randomCOO(rng, 90, 70, 0.08)
	c := a.ToCSB(16)
	for bi := 0; bi < c.NBR; bi++ {
		for bj := 0; bj < c.NBC; bj++ {
			k := c.BlockIndex(bi, bj)
			r, cc := c.BlockDim(bi, bj)
			for p := c.BlkPtr[k]; p < c.BlkPtr[k+1]; p++ {
				if int(c.RI[p]) >= r || int(c.CI[p]) >= cc {
					t.Fatalf("tile (%d,%d): local (%d,%d) outside %dx%d", bi, bj, c.RI[p], c.CI[p], r, cc)
				}
			}
		}
	}
}

func TestCSBSpMVMatchesCSR(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 10 + rng.Intn(120)
		cols := 10 + rng.Intn(120)
		a := randomCOO(rng, rows, cols, 0.1)
		block := 1 + rng.Intn(40)
		csr := a.ToCSR()
		csb := a.ToCSB(block)
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y1 := make([]float64, rows)
		y2 := make([]float64, rows)
		csr.SpMV(y1, x)
		csb.SpMV(y2, x)
		for i := range y1 {
			if math.Abs(y1[i]-y2[i]) > 1e-10*(1+math.Abs(y1[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestCSBSpMMMatchesCSR(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 10 + rng.Intn(80)
		cols := 10 + rng.Intn(80)
		n := 1 + rng.Intn(8)
		a := randomCOO(rng, rows, cols, 0.1)
		block := 1 + rng.Intn(30)
		csr := a.ToCSR()
		csb := a.ToCSB(block)
		x := make([]float64, cols*n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y1 := make([]float64, rows*n)
		y2 := make([]float64, rows*n)
		csr.SpMM(y1, x, n)
		csb.SpMM(y2, x, n)
		for i := range y1 {
			if math.Abs(y1[i]-y2[i]) > 1e-10*(1+math.Abs(y1[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestCSBBlockDimEdges(t *testing.T) {
	a := NewCOO(10, 7, 1)
	a.Append(9, 6, 1.0)
	c := a.ToCSB(4)
	if c.NBR != 3 || c.NBC != 2 {
		t.Fatalf("NBR,NBC = %d,%d, want 3,2", c.NBR, c.NBC)
	}
	r, cc := c.BlockDim(2, 1)
	if r != 2 || cc != 3 {
		t.Fatalf("edge tile dim = %dx%d, want 2x3", r, cc)
	}
	if c.BlockNNZ(2, 1) != 1 {
		t.Fatalf("edge tile nnz = %d, want 1", c.BlockNNZ(2, 1))
	}
}

func TestNonEmptyBlocks(t *testing.T) {
	a := NewCOO(8, 8, 3)
	a.Append(0, 0, 1)
	a.Append(0, 1, 1) // same tile as above for block=4
	a.Append(7, 7, 1)
	c := a.ToCSB(4)
	if got := c.NonEmptyBlocks(); got != 2 {
		t.Fatalf("NonEmptyBlocks = %d, want 2", got)
	}
}

func TestComputeStats(t *testing.T) {
	a := NewCOO(4, 4, 5)
	a.Append(0, 0, 1)
	a.Append(0, 1, 1)
	a.Append(0, 3, 1)
	a.Append(2, 2, 1)
	s := ComputeStats(a.ToCSR())
	if s.NNZ != 4 || s.MaxRowNNZ != 3 || s.Bandwidth != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if math.Abs(s.Imbalance-3.0) > 1e-15 {
		t.Fatalf("imbalance = %v, want 3", s.Imbalance)
	}
}

func TestComputeBlockFill(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := randomCOO(rng, 64, 64, 0.05)
	bf := ComputeBlockFill(a, 16)
	if bf.BlockCount != 4 || bf.Total != 16 {
		t.Fatalf("block fill = %+v", bf)
	}
	if bf.NonEmpty == 0 || bf.NonEmpty > 16 {
		t.Fatalf("NonEmpty = %d out of range", bf.NonEmpty)
	}
}
