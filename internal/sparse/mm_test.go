package sparse

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestReadMatrixMarketGeneral(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% a comment
3 3 4
1 1 2.5
2 1 -1
3 3 4
1 3 0.5
`
	a, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows != 3 || a.Cols != 3 || a.NNZ() != 4 {
		t.Fatalf("got %dx%d nnz=%d", a.Rows, a.Cols, a.NNZ())
	}
	d := denseOf(a)
	if d[0][0] != 2.5 || d[1][0] != -1 || d[2][2] != 4 || d[0][2] != 0.5 {
		t.Fatalf("wrong values: %v", d)
	}
}

func TestReadMatrixMarketSymmetricExpansion(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
3 3 3
1 1 1
2 1 5
3 3 2
`
	a, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != 4 { // off-diagonal mirrored, diagonals not
		t.Fatalf("NNZ = %d, want 4", a.NNZ())
	}
	if !a.IsSymmetric() {
		t.Fatal("expanded matrix not symmetric")
	}
}

func TestReadMatrixMarketPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
`
	a, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range a.V {
		if v != 1.0 {
			t.Fatalf("pattern value = %v, want 1", v)
		}
	}
}

func TestReadMatrixMarketErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"badheader", "%%MatrixMarket matrix array real general\n2 2\n"},
		{"badfield", "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n"},
		{"badsym", "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1\n"},
		{"short", "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1.0\n"},
		{"badvalue", "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 xyz\n"},
		{"badindex", "%%MatrixMarket matrix coordinate real general\n1 1 1\nx 1 1.0\n"},
	}
	for _, c := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error, got nil", c.name)
		}
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	a := randomCOO(rng, 25, 19, 0.15)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b.Compact()
	if b.NNZ() != a.NNZ() {
		t.Fatalf("round trip NNZ %d != %d", b.NNZ(), a.NNZ())
	}
	for k := range a.V {
		if a.I[k] != b.I[k] || a.J[k] != b.J[k] || a.V[k] != b.V[k] {
			t.Fatalf("entry %d mismatch", k)
		}
	}
}
