package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// MatrixMarket I/O. Supports the "matrix coordinate real/pattern/integer
// general/symmetric" subset, which covers every matrix class in the paper's
// suite. Pattern entries get value 1.0 (callers typically follow with
// FillRandom, as the paper does for binary matrices).

// MaxDim and MaxEntries bound what a MatrixMarket size line may declare.
// The header is untrusted input (it arrives inline in solverd job specs),
// and the declared dimensions size allocations and drive loops in every
// structure built from the parse, so they are clamped here — once, at the
// trust boundary — rather than re-checked at each use site.
const (
	MaxDim     = 1 << 27 // rows/cols ceiling; comfortably inside int32 indexing
	MaxEntries = 1 << 28 // declared-nnz ceiling for the entry-reading loop
)

// ReadMatrixMarket parses a MatrixMarket coordinate stream into COO.
// Symmetric inputs are expanded to full storage.
func ReadMatrixMarket(r io.Reader) (*COO, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: empty MatrixMarket stream")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" || header[2] != "coordinate" {
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket header %q", sc.Text())
	}
	field, sym := header[3], header[4]
	switch field {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket field %q", field)
	}
	switch sym {
	case "general", "symmetric":
	default:
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket symmetry %q", sym)
	}

	// Skip comments, find the size line.
	var rows, cols, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: bad MatrixMarket size line %q: %v", line, err)
		}
		break
	}
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("sparse: bad MatrixMarket dimensions %dx%d", rows, cols)
	}
	// The size line is untrusted input: it sizes index arrays, CSR/CSB
	// structure allocations, and entry loops everywhere downstream, so a
	// hostile header must not get past this point. MaxDim bounds what the
	// int32-indexed kernels can address anyway; MaxEntries bounds the entry
	// loop and the pre-allocation below.
	if rows > MaxDim || cols > MaxDim {
		return nil, fmt.Errorf("sparse: MatrixMarket dimensions %dx%d exceed the %d limit", rows, cols, MaxDim)
	}
	if nnz < 0 || nnz > MaxEntries {
		return nil, fmt.Errorf("sparse: MatrixMarket entry count %d exceeds the %d limit", nnz, MaxEntries)
	}
	if sym == "symmetric" && rows != cols {
		return nil, fmt.Errorf("sparse: symmetric MatrixMarket matrix must be square, got %dx%d", rows, cols)
	}

	hint := nnz
	if sym == "symmetric" {
		hint = 2 * nnz
	}
	// Cap the pre-allocation further: entries are appended anyway, so even an
	// in-range nnz need not drive a huge up-front make().
	const maxHint = 1 << 22
	if hint > maxHint {
		hint = maxHint
	}
	a := NewCOO(rows, cols, hint)
	read := 0
	for read < nnz && sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		want := 3
		if field == "pattern" {
			want = 2
		}
		if len(f) < want {
			return nil, fmt.Errorf("sparse: short MatrixMarket entry %q", line)
		}
		i64, err := strconv.ParseInt(f[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("sparse: bad row index %q: %v", f[0], err)
		}
		j64, err := strconv.ParseInt(f[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("sparse: bad col index %q: %v", f[1], err)
		}
		v := 1.0
		if field != "pattern" {
			v, err = strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("sparse: bad value %q: %v", f[2], err)
			}
		}
		if i64 < 1 || i64 > int64(rows) || j64 < 1 || j64 > int64(cols) {
			return nil, fmt.Errorf("sparse: MatrixMarket entry (%d,%d) outside %dx%d", i64, j64, rows, cols)
		}
		i, j := int32(i64-1), int32(j64-1) // MatrixMarket is 1-based
		a.Append(i, j, v)
		if sym == "symmetric" && i != j {
			a.Append(j, i, v)
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if read != nnz {
		return nil, fmt.Errorf("sparse: MatrixMarket declared %d entries, found %d", nnz, read)
	}
	return a, nil
}

// WriteMatrixMarket writes the matrix in "coordinate real general" form.
func WriteMatrixMarket(w io.Writer, a *COO) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n%d %d %d\n", a.Rows, a.Cols, a.NNZ()); err != nil {
		return err
	}
	for k := range a.V {
		if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", a.I[k]+1, a.J[k]+1, a.V[k]); err != nil {
			return err
		}
	}
	return bw.Flush()
}
