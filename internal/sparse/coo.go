// Package sparse provides sparse matrix storage formats and conversion
// routines used throughout the solvers: coordinate (COO), compressed sparse
// row (CSR), and compressed sparse blocks (CSB, Buluç et al. 2009).
//
// CSB is the format the paper's task decomposition is built on: the matrix is
// tiled into b×b blocks and every task of the SpMV/SpMM kernels operates on a
// single non-empty block. All formats store float64 values and are limited to
// matrices whose dimensions fit in an int32.
package sparse

import (
	"fmt"
	"math/rand"
	"sort"
)

// COO is a coordinate-format sparse matrix. Entries may be unsorted and may
// contain duplicates until Compact is called.
type COO struct {
	Rows, Cols int
	I, J       []int32
	V          []float64
}

// NewCOO returns an empty COO matrix of the given shape with capacity for
// nnzHint entries.
func NewCOO(rows, cols, nnzHint int) *COO {
	return &COO{
		Rows: rows,
		Cols: cols,
		I:    make([]int32, 0, nnzHint),
		J:    make([]int32, 0, nnzHint),
		V:    make([]float64, 0, nnzHint),
	}
}

// NNZ returns the number of stored entries (including any duplicates).
func (a *COO) NNZ() int { return len(a.V) }

// Append adds one entry. It panics if the coordinates are out of range, as
// that always indicates a programming error in a generator.
func (a *COO) Append(i, j int32, v float64) {
	if i < 0 || int(i) >= a.Rows || j < 0 || int(j) >= a.Cols {
		panic(fmt.Sprintf("sparse: COO entry (%d,%d) out of %dx%d", i, j, a.Rows, a.Cols))
	}
	a.I = append(a.I, i)
	a.J = append(a.J, j)
	a.V = append(a.V, v)
}

type cooSorter struct{ a *COO }

func (s cooSorter) Len() int { return len(s.a.V) }
func (s cooSorter) Less(x, y int) bool {
	a := s.a
	if a.I[x] != a.I[y] {
		return a.I[x] < a.I[y]
	}
	return a.J[x] < a.J[y]
}
func (s cooSorter) Swap(x, y int) {
	a := s.a
	a.I[x], a.I[y] = a.I[y], a.I[x]
	a.J[x], a.J[y] = a.J[y], a.J[x]
	a.V[x], a.V[y] = a.V[y], a.V[x]
}

// Sort orders entries by (row, col). The sort is stable so that duplicate
// entries merge in insertion order; Compact then sums mirrored duplicate
// pairs in the same order, keeping symmetric inputs exactly symmetric under
// floating-point addition.
func (a *COO) Sort() { sort.Stable(cooSorter{a}) }

// Compact sorts the entries and merges duplicates by summing their values.
// Entries that sum to exactly zero are kept (structural nonzeros).
func (a *COO) Compact() {
	if len(a.V) == 0 {
		return
	}
	a.Sort()
	w := 0
	for r := 1; r < len(a.V); r++ {
		if a.I[r] == a.I[w] && a.J[r] == a.J[w] {
			a.V[w] += a.V[r]
			continue
		}
		w++
		a.I[w], a.J[w], a.V[w] = a.I[r], a.J[r], a.V[r]
	}
	a.I = a.I[:w+1]
	a.J = a.J[:w+1]
	a.V = a.V[:w+1]
}

// Symmetrize makes the matrix symmetric the way the paper does for the
// non-symmetric SuiteSparse inputs: A_new = L + Lᵀ − D, where L is the lower
// triangle (including the diagonal) of A. Upper-triangular input entries are
// discarded. The receiver must be square.
func (a *COO) Symmetrize() {
	if a.Rows != a.Cols {
		panic("sparse: Symmetrize requires a square matrix")
	}
	n := len(a.V)
	for k := 0; k < n; k++ {
		if a.I[k] > a.J[k] { // strictly lower: mirror it
			a.I = append(a.I, a.J[k])
			a.J = append(a.J, a.I[k])
			a.V = append(a.V, a.V[k])
		} else if a.I[k] < a.J[k] { // strictly upper: drop by zero-weighting onto diagonal mirror
			// Mark for removal by swapping with the mirrored lower entry below.
			// Simpler: convert to lower entry; Compact will merge duplicates.
			a.I[k], a.J[k] = a.J[k], a.I[k]
			a.V[k] = 0
		}
	}
	a.Compact()
	// Remove entries that became exactly zero from dropped upper triangle
	// unless they are diagonal (keep structure of the lower part only).
	w := 0
	for k := range a.V {
		if a.V[k] != 0 || a.I[k] == a.J[k] {
			a.I[w], a.J[w], a.V[w] = a.I[k], a.J[k], a.V[k]
			w++
		}
	}
	a.I, a.J, a.V = a.I[:w], a.J[:w], a.V[:w]
}

// FillRandom replaces every stored value with a uniform random value in
// (0,1], preserving symmetry: entry (i,j) and (j,i) receive the same value.
// The paper uses this for originally-binary matrices. The fill is
// deterministic for a given seed.
func (a *COO) FillRandom(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for k := range a.V {
		i, j := a.I[k], a.J[k]
		if i <= j {
			a.V[k] = symRandVal(i, j, rng, seed)
		} else {
			a.V[k] = symRandVal(j, i, rng, seed)
		}
	}
}

// symRandVal returns a deterministic pseudo-random value for the unordered
// pair (i,j) so that symmetric counterparts agree without a lookup table.
func symRandVal(i, j int32, _ *rand.Rand, seed int64) float64 {
	h := uint64(seed)*0x9E3779B97F4A7C15 + uint64(uint32(i))*0xBF58476D1CE4E5B9 + uint64(uint32(j))*0x94D049BB133111EB
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	// Map to (0, 1].
	return (float64(h>>11) + 1) / float64(1<<53)
}

// IsSymmetric reports whether the matrix pattern and values are symmetric.
// Intended for tests; cost is O(nnz log nnz).
func (a *COO) IsSymmetric() bool {
	if a.Rows != a.Cols {
		return false
	}
	type key struct{ i, j int32 }
	m := make(map[key]float64, len(a.V))
	for k := range a.V {
		m[key{a.I[k], a.J[k]}] += a.V[k]
	}
	//lint:ignore sparselint/determinism order-independent predicate: the result is a conjunction over all entries
	for k, v := range m {
		if m[key{k.j, k.i}] != v {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (a *COO) Clone() *COO {
	b := &COO{Rows: a.Rows, Cols: a.Cols,
		I: make([]int32, len(a.I)),
		J: make([]int32, len(a.J)),
		V: make([]float64, len(a.V)),
	}
	copy(b.I, a.I)
	copy(b.J, a.J)
	copy(b.V, a.V)
	return b
}
