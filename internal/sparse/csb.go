package sparse

import "fmt"

// CSB is a compressed-sparse-blocks matrix (Buluç et al., SPAA 2009): the
// matrix is tiled into Block×Block tiles and all entries of one tile are
// stored contiguously with tile-local coordinates. The task decomposition of
// every runtime in this repository is defined on CSB tiles: one SpMV/SpMM
// task per non-empty tile.
//
// Entries within a tile are kept in (local row, local col) order, which keeps
// the per-tile kernel streaming through x with good locality.
type CSB struct {
	Rows, Cols int
	Block      int     // tile edge length b
	NBR, NBC   int     // number of tile rows / tile cols: ceil(Rows/b), ceil(Cols/b)
	BlkPtr     []int64 // len NBR*NBC+1; offsets into RI/CI/V, tiles in row-major order
	RI, CI     []int32 // tile-local coordinates, each in [0, Block)
	V          []float64
}

// NNZ returns the number of stored entries.
func (a *CSB) NNZ() int { return len(a.V) }

// BlockIndex returns the flat tile index for tile row bi and tile col bj.
func (a *CSB) BlockIndex(bi, bj int) int { return bi*a.NBC + bj }

// BlockNNZ returns the number of nonzeros in tile (bi, bj).
func (a *CSB) BlockNNZ(bi, bj int) int {
	k := a.BlockIndex(bi, bj)
	return int(a.BlkPtr[k+1] - a.BlkPtr[k])
}

// NonEmptyBlocks returns how many tiles contain at least one nonzero. The
// empty-task-skipping optimization (paper Fig. 6) spawns tasks only for
// these.
func (a *CSB) NonEmptyBlocks() int {
	n := 0
	for k := 0; k < a.NBR*a.NBC; k++ {
		if a.BlkPtr[k+1] > a.BlkPtr[k] {
			n++
		}
	}
	return n
}

// BlockDim returns the actual edge lengths (rows, cols) of tile (bi, bj);
// edge tiles may be smaller than Block.
func (a *CSB) BlockDim(bi, bj int) (int, int) {
	r := a.Block
	if (bi+1)*a.Block > a.Rows {
		r = a.Rows - bi*a.Block
	}
	c := a.Block
	if (bj+1)*a.Block > a.Cols {
		c = a.Cols - bj*a.Block
	}
	return r, c
}

// ToCSB converts a COO matrix to CSB with the given tile size. The COO input
// is compacted first. Panics if block <= 0.
func (a *COO) ToCSB(block int) *CSB {
	if block <= 0 {
		panic("sparse: ToCSB requires block > 0")
	}
	a.Compact()
	nbr := (a.Rows + block - 1) / block
	nbc := (a.Cols + block - 1) / block
	c := &CSB{
		Rows: a.Rows, Cols: a.Cols,
		Block: block, NBR: nbr, NBC: nbc,
		BlkPtr: make([]int64, nbr*nbc+1),
		RI:     make([]int32, len(a.V)),
		CI:     make([]int32, len(a.V)),
		V:      make([]float64, len(a.V)),
	}
	// Count entries per tile.
	for k := range a.V {
		bi := int(a.I[k]) / block
		bj := int(a.J[k]) / block
		c.BlkPtr[bi*nbc+bj+1]++
	}
	for k := 0; k < nbr*nbc; k++ {
		c.BlkPtr[k+1] += c.BlkPtr[k]
	}
	// Scatter. COO is sorted by (row, col), so entries land in each tile in
	// (local row, local col) order automatically.
	next := make([]int64, nbr*nbc)
	copy(next, c.BlkPtr[:nbr*nbc])
	for k := range a.V {
		bi := int(a.I[k]) / block
		bj := int(a.J[k]) / block
		t := bi*nbc + bj
		p := next[t]
		next[t]++
		c.RI[p] = a.I[k] - int32(bi*block)
		c.CI[p] = a.J[k] - int32(bj*block)
		c.V[p] = a.V[k]
	}
	return c
}

// ToCSB converts CSR to CSB via COO.
func (a *CSR) ToCSB(block int) *CSB { return a.ToCOO().ToCSB(block) }

// BlockSpMV computes y[bi·b : ...] += A(bi,bj) · x[bj·b : ...] for one tile.
// x and y are the full input/output vectors; the tile offsets are applied
// internally. This is the unit of work of one SpMV task.
//
// The entry loop is unrolled 4× over sequential statements, which preserves
// the exact accumulation order of the scalar loop (bit-identical results);
// the tile's coordinate and value arrays are re-sliced once so the per-entry
// bounds checks on them vanish.
//
//sparselint:hotpath
func (a *CSB) BlockSpMV(y, x []float64, bi, bj int) {
	k := a.BlockIndex(bi, bj)
	lo, hi := a.BlkPtr[k], a.BlkPtr[k+1]
	if lo == hi {
		return
	}
	v := a.V[lo:hi]
	ri := a.RI[lo:hi:hi]
	ci := a.CI[lo:hi:hi]
	ri = ri[:len(v)]
	ci = ci[:len(v)]
	ys := y[bi*a.Block:]
	xs := x[bj*a.Block:]
	p := 0
	for ; p+4 <= len(v); p += 4 {
		ys[ri[p]] += v[p] * xs[ci[p]]
		ys[ri[p+1]] += v[p+1] * xs[ci[p+1]]
		ys[ri[p+2]] += v[p+2] * xs[ci[p+2]]
		ys[ri[p+3]] += v[p+3] * xs[ci[p+3]]
	}
	for ; p < len(v); p++ {
		ys[ri[p]] += v[p] * xs[ci[p]]
	}
}

// BlockSpMM computes Y[tile bi] += A(bi,bj) · X[tile bj] for one tile, where
// X and Y are dense row-major vector blocks with n columns. This is the unit
// of work of one SpMM task.
//
// The LOBPCG block widths get dedicated paths: n==1 degenerates to SpMV, and
// n∈{2,4,8} use fixed-width bodies whose row updates compile to constant
// offsets with a single bounds check per entry. Column updates within an
// entry are independent outputs, so unrolling them is bit-identical to the
// scalar loop. The generic path handles every other width.
//
//sparselint:hotpath
func (a *CSB) BlockSpMM(y, x []float64, n, bi, bj int) {
	k := a.BlockIndex(bi, bj)
	lo, hi := a.BlkPtr[k], a.BlkPtr[k+1]
	if lo == hi {
		return
	}
	v := a.V[lo:hi]
	ri := a.RI[lo:hi:hi]
	ci := a.CI[lo:hi:hi]
	ri = ri[:len(v)]
	ci = ci[:len(v)]
	ys := y[bi*a.Block*n:]
	xs := x[bj*a.Block*n:]
	switch n {
	case 1:
		for p := range v {
			ys[ri[p]] += v[p] * xs[ci[p]]
		}
	case 2:
		for p := range v {
			vv := v[p]
			yi := ys[int(ri[p])*2:][:2]
			xj := xs[int(ci[p])*2:][:2]
			yi[0] += vv * xj[0]
			yi[1] += vv * xj[1]
		}
	case 4:
		for p := range v {
			vv := v[p]
			yi := ys[int(ri[p])*4:][:4]
			xj := xs[int(ci[p])*4:][:4]
			yi[0] += vv * xj[0]
			yi[1] += vv * xj[1]
			yi[2] += vv * xj[2]
			yi[3] += vv * xj[3]
		}
	case 8:
		for p := range v {
			vv := v[p]
			yi := ys[int(ri[p])*8:][:8]
			xj := xs[int(ci[p])*8:][:8]
			yi[0] += vv * xj[0]
			yi[1] += vv * xj[1]
			yi[2] += vv * xj[2]
			yi[3] += vv * xj[3]
			yi[4] += vv * xj[4]
			yi[5] += vv * xj[5]
			yi[6] += vv * xj[6]
			yi[7] += vv * xj[7]
		}
	default:
		for p := range v {
			vv := v[p]
			yi := ys[int(ri[p])*n:][:n]
			xj := xs[int(ci[p])*n:][:n]
			xj = xj[:len(yi)]
			c := 0
			for ; c+4 <= len(yi); c += 4 {
				yi[c] += vv * xj[c]
				yi[c+1] += vv * xj[c+1]
				yi[c+2] += vv * xj[c+2]
				yi[c+3] += vv * xj[c+3]
			}
			for ; c < len(yi); c++ {
				yi[c] += vv * xj[c]
			}
		}
	}
}

// SpMV computes y = A·x sequentially by streaming tiles in row-major order.
// This is the reference used to validate the task-parallel executions.
func (a *CSB) SpMV(y, x []float64) {
	if len(x) != a.Cols || len(y) != a.Rows {
		panic(fmt.Sprintf("sparse: CSB SpMV shape mismatch: A is %dx%d, x %d, y %d", a.Rows, a.Cols, len(x), len(y)))
	}
	clear(y)
	for bi := 0; bi < a.NBR; bi++ {
		for bj := 0; bj < a.NBC; bj++ {
			a.BlockSpMV(y, x, bi, bj)
		}
	}
}

// SpMM computes Y = A·X sequentially over tiles; X is Cols×n, Y is Rows×n,
// both dense row-major.
func (a *CSB) SpMM(y, x []float64, n int) {
	if len(x) != a.Cols*n || len(y) != a.Rows*n {
		panic(fmt.Sprintf("sparse: CSB SpMM shape mismatch: A is %dx%d n=%d len(x)=%d len(y)=%d", a.Rows, a.Cols, n, len(x), len(y)))
	}
	clear(y)
	for bi := 0; bi < a.NBR; bi++ {
		for bj := 0; bj < a.NBC; bj++ {
			a.BlockSpMM(y, x, n, bi, bj)
		}
	}
}

// RowBlockNNZ returns the total nonzeros across tile row bi: the work a
// dependency-chained SpMV row owns.
func (a *CSB) RowBlockNNZ(bi int) int {
	n := 0
	for bj := 0; bj < a.NBC; bj++ {
		n += a.BlockNNZ(bi, bj)
	}
	return n
}
