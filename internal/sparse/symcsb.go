package sparse

import (
	"errors"
	"fmt"
)

// ErrNotSymmetric is returned by ToSymCSB when the input matrix is not
// numerically symmetric.
var ErrNotSymmetric = errors.New("sparse: matrix is not symmetric")

// SymCSB is a symmetry-exploiting variant of CSB (Batista et al., "Parallel
// structurally-symmetric sparse matrix-vector products on multi-core
// processors"): only the lower-triangle tiles and the diagonal tiles are
// stored, and diagonal tiles keep only their lower-half entries (local
// r >= c). Each stored off-diagonal entry (i,j) represents both A[i,j] and
// A[j,i], so the SpMV kernels stream roughly half the matrix bytes of the
// general path — the dominant traffic of a bandwidth-bound SpMV.
//
// Tiles are addressed by a packed lower-triangular index
// idx = bi·(bi+1)/2 + bj for bj <= bi; entries within a tile are in
// (local row, local col) order like CSB.
//
// The transposed scatter of an off-diagonal tile writes row band bj while the
// direct scatter writes band bi, so two tiles sharing either band conflict
// when run concurrently. The conflict resolution lives in the scheduler; the
// structure it needs (a tile coloring into conflict-free waves, or the
// fallback accumulator grouping when coloring fragments the DAG) is a pure
// function of the tiling and is computed once here, cached in Sched.
type SymCSB struct {
	Rows  int
	Block int // tile edge length b
	NBR   int // number of tile rows: ceil(Rows/b)
	// BlkPtr has len NBR·(NBR+1)/2+1: offsets into RI/CI/V for the packed
	// lower-triangular tiles.
	BlkPtr []int64
	RI, CI []int32 // tile-local coordinates, each in [0, Block)
	V      []float64
	// FullNNZ is the nonzero count of the logical (full symmetric) matrix;
	// len(V) is the stored count: (FullNNZ + DiagNNZ) / 2.
	FullNNZ int
	// DiagNNZ counts true diagonal entries (i == j).
	DiagNNZ int
	// Sched is the conflict-free execution schedule, computed by ToSymCSB.
	Sched SymSchedule
}

// SymAccGroups is the upper bound on private-accumulator groups in fallback
// mode. The effective count is min(SymAccGroups, NBR) — a function of the
// matrix structure only, never of worker or domain counts, so the fallback
// reduction order (and hence the floating-point result) is identical across
// topology profiles and backends.
const SymAccGroups = 8

// SymSchedule captures how symmetric SpMV tasks are made conflict-free. In
// wave mode (Fallback false), tiles are greedily colored so that no two
// tiles of one wave share a row band; waves execute as dependency ranks. In
// fallback mode, transposed contributions go to per-group private
// accumulators that affinity-stamped reduction tasks fold back in.
type SymSchedule struct {
	// Wave[idx] is the wave (color) of packed tile idx, -1 for empty tiles.
	// Meaningful only when Fallback is false.
	Wave []int32
	// NumWaves is the number of colors used (wave mode).
	NumWaves int
	// Fallback selects the private-accumulator path: coloring needed more
	// than max(4, NBR/2) waves, which would serialize the DAG.
	Fallback bool
	// Groups is the effective accumulator group count (fallback mode).
	Groups int
	// TransGroups[bj] is a bitmask over groups with at least one transposed
	// contribution into row band bj (fallback mode). Reduction kernels fold
	// groups in ascending bit order, fixing the accumulation order.
	TransGroups []uint8
}

// AccGroup returns the accumulator group owning the transposed writes of
// tiles in row band bi: a contiguous band→group map that mirrors the
// band→domain map of topo.Partition, so a group's bands share locality.
func (a *SymCSB) AccGroup(bi int) int {
	return bi * a.Sched.Groups / a.NBR
}

// TileIndex returns the packed lower-triangular tile index for tile row bi
// and tile col bj; requires bj <= bi.
func (a *SymCSB) TileIndex(bi, bj int) int { return bi*(bi+1)/2 + bj }

// TileNNZ returns the stored nonzeros of tile (bi, bj), bj <= bi.
func (a *SymCSB) TileNNZ(bi, bj int) int {
	k := a.TileIndex(bi, bj)
	return int(a.BlkPtr[k+1] - a.BlkPtr[k])
}

// NNZ returns the number of stored entries (lower triangle plus diagonal).
func (a *SymCSB) NNZ() int { return len(a.V) }

// Dims returns the (square) matrix dimensions.
func (a *SymCSB) Dims() (int, int) { return a.Rows, a.Rows }

// BlockSize returns the tile edge length.
func (a *SymCSB) BlockSize() int { return a.Block }

// NonEmptyTiles returns how many stored tiles contain at least one nonzero.
func (a *SymCSB) NonEmptyTiles() int {
	n := 0
	nt := a.NBR * (a.NBR + 1) / 2
	for k := 0; k < nt; k++ {
		if a.BlkPtr[k+1] > a.BlkPtr[k] {
			n++
		}
	}
	return n
}

// InverseDiagonal fills dinv with 1/diag(A); zero or missing diagonal
// entries fall back to 1 (no scaling for that row).
func (a *SymCSB) InverseDiagonal(dinv []float64) {
	for i := range dinv {
		dinv[i] = 1
	}
	for bi := 0; bi < a.NBR; bi++ {
		k := a.TileIndex(bi, bi)
		off := bi * a.Block
		for p := a.BlkPtr[k]; p < a.BlkPtr[k+1]; p++ {
			if a.RI[p] == a.CI[p] {
				if v := a.V[p]; v != 0 {
					dinv[off+int(a.RI[p])] = 1 / v
				}
			}
		}
	}
}

// ToSymCSB converts a COO matrix to symmetric CSB with the given tile size.
// The COO input is compacted first. It returns ErrNotSymmetric when the
// matrix is not numerically symmetric (pattern and values), and an error for
// non-square inputs. Panics if block <= 0.
func (a *COO) ToSymCSB(block int) (*SymCSB, error) {
	if block <= 0 {
		panic("sparse: ToSymCSB requires block > 0")
	}
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("sparse: ToSymCSB needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	a.Compact()
	// Symmetry check on the sorted entries: every strictly-upper entry must
	// mirror an equal-valued lower entry, and the triangles must have equal
	// counts (the mirror map is injective, so equal counts make it a
	// bijection). Row starts come from a prefix sum over the sorted order.
	rowPtr := make([]int64, a.Rows+1)
	for k := range a.V {
		rowPtr[a.I[k]+1]++
	}
	for i := 0; i < a.Rows; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	nUpper, nLower, nDiag := 0, 0, 0
	for k := range a.V {
		i, j := a.I[k], a.J[k]
		switch {
		case i == j:
			nDiag++
		case i > j:
			nLower++
		default:
			nUpper++
			// Binary search row j for column i.
			lo, hi := rowPtr[j], rowPtr[j+1]
			for lo < hi {
				mid := (lo + hi) / 2
				if a.J[mid] < i {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo == rowPtr[j+1] || a.J[lo] != i || a.V[lo] != a.V[k] {
				return nil, ErrNotSymmetric
			}
		}
	}
	if nUpper != nLower {
		return nil, ErrNotSymmetric
	}

	nbr := (a.Rows + block - 1) / block
	nt := nbr * (nbr + 1) / 2
	stored := nLower + nDiag
	c := &SymCSB{
		Rows: a.Rows, Block: block, NBR: nbr,
		BlkPtr:  make([]int64, nt+1),
		RI:      make([]int32, stored),
		CI:      make([]int32, stored),
		V:       make([]float64, stored),
		FullNNZ: len(a.V),
		DiagNNZ: nDiag,
	}
	// Count stored entries per packed tile (lower triangle + diag half).
	for k := range a.V {
		if a.I[k] < a.J[k] {
			continue
		}
		bi := int(a.I[k]) / block
		bj := int(a.J[k]) / block
		c.BlkPtr[c.TileIndex(bi, bj)+1]++
	}
	for k := 0; k < nt; k++ {
		c.BlkPtr[k+1] += c.BlkPtr[k]
	}
	// Scatter. COO is sorted by (row, col), so entries land in each tile in
	// (local row, local col) order automatically.
	next := make([]int64, nt)
	copy(next, c.BlkPtr[:nt])
	for k := range a.V {
		if a.I[k] < a.J[k] {
			continue
		}
		bi := int(a.I[k]) / block
		bj := int(a.J[k]) / block
		t := c.TileIndex(bi, bj)
		p := next[t]
		next[t]++
		c.RI[p] = a.I[k] - int32(bi*block)
		c.CI[p] = a.J[k] - int32(bj*block)
		c.V[p] = a.V[k]
	}
	c.Sched = computeSymSchedule(c)
	return c, nil
}

// computeSymSchedule greedily colors the stored non-empty tiles so that no
// two tiles of one color share a row band (a tile touches band bi directly
// and band bj through its transpose). Tiles are visited in deterministic
// (bi-major, bj ascending) order; diagonal tiles touch only their own band
// and all take color 0. When any tile would need a color beyond
// max(4, NBR/2) — the arrowhead-like patterns where one band meets almost
// every other and coloring would serialize the DAG — the schedule falls back
// to private accumulators with min(SymAccGroups, NBR) groups.
func computeSymSchedule(a *SymCSB) SymSchedule {
	nbr := a.NBR
	maxColors := nbr / 2
	if maxColors < 4 {
		maxColors = 4
	}
	nt := nbr * (nbr + 1) / 2
	s := SymSchedule{Wave: make([]int32, nt)}
	for k := range s.Wave {
		s.Wave[k] = -1
	}
	words := (maxColors + 63) / 64
	used := make([]uint64, nbr*words)
	for bi := 0; bi < nbr && !s.Fallback; bi++ {
		for bj := 0; bj <= bi; bj++ {
			idx := a.TileIndex(bi, bj)
			if a.BlkPtr[idx+1] == a.BlkPtr[idx] {
				continue
			}
			if bi == bj {
				s.Wave[idx] = 0
				used[bi*words] |= 1
				if s.NumWaves < 1 {
					s.NumWaves = 1
				}
				continue
			}
			color := -1
			for w := 0; w < words && color < 0; w++ {
				free := ^(used[bi*words+w] | used[bj*words+w])
				for b := 0; b < 64; b++ {
					if free&(1<<uint(b)) != 0 {
						if c := w*64 + b; c < maxColors {
							color = c
						}
						break
					}
				}
			}
			if color < 0 {
				s.Fallback = true
				break
			}
			s.Wave[idx] = int32(color)
			used[bi*words+color/64] |= 1 << uint(color%64)
			used[bj*words+color/64] |= 1 << uint(color%64)
			if color+1 > s.NumWaves {
				s.NumWaves = color + 1
			}
		}
	}
	if !s.Fallback {
		return s
	}
	// Fallback: per-group private accumulators for the transposed halves.
	s.Wave = nil
	s.NumWaves = 0
	s.Groups = SymAccGroups
	if nbr < s.Groups {
		s.Groups = nbr
	}
	s.TransGroups = make([]uint8, nbr)
	for bi := 0; bi < nbr; bi++ {
		g := bi * s.Groups / nbr
		for bj := 0; bj < bi; bj++ {
			idx := a.TileIndex(bi, bj)
			if a.BlkPtr[idx+1] > a.BlkPtr[idx] {
				s.TransGroups[bj] |= 1 << uint(g)
			}
		}
	}
	return s
}

// BlockSymSpMV applies stored tile (bi,bj), bj <= bi, to the full vectors:
// y[bi·b:] += T·x[bj·b:] and, for off-diagonal tiles, the transposed
// contribution y[bj·b:] += Tᵀ·x[bi·b:]. Diagonal tiles scatter their
// strictly-lower entries to both halves within band bi. This is the unit of
// work of one symmetric SpMV task in wave mode.
//
// Like CSB.BlockSpMV, the entry loop is unrolled 4× over sequential
// statements (bit-identical to the scalar loop) and the tile arrays are
// re-sliced once so per-entry bounds checks vanish.
//
//sparselint:hotpath
func (a *SymCSB) BlockSymSpMV(y, x []float64, bi, bj int) {
	k := a.TileIndex(bi, bj)
	lo, hi := a.BlkPtr[k], a.BlkPtr[k+1]
	if lo == hi {
		return
	}
	v := a.V[lo:hi]
	ri := a.RI[lo:hi:hi]
	ci := a.CI[lo:hi:hi]
	ri = ri[:len(v)]
	ci = ci[:len(v)]
	if bi == bj {
		ys := y[bi*a.Block:]
		xs := x[bi*a.Block:]
		for p := range v {
			r, c := ri[p], ci[p]
			vv := v[p]
			ys[r] += vv * xs[c]
			if r != c {
				ys[c] += vv * xs[r]
			}
		}
		return
	}
	yd := y[bi*a.Block:]
	yt := y[bj*a.Block:]
	xd := x[bj*a.Block:]
	xt := x[bi*a.Block:]
	p := 0
	for ; p+4 <= len(v); p += 4 {
		yd[ri[p]] += v[p] * xd[ci[p]]
		yt[ci[p]] += v[p] * xt[ri[p]]
		yd[ri[p+1]] += v[p+1] * xd[ci[p+1]]
		yt[ci[p+1]] += v[p+1] * xt[ri[p+1]]
		yd[ri[p+2]] += v[p+2] * xd[ci[p+2]]
		yt[ci[p+2]] += v[p+2] * xt[ri[p+2]]
		yd[ri[p+3]] += v[p+3] * xd[ci[p+3]]
		yt[ci[p+3]] += v[p+3] * xt[ri[p+3]]
	}
	for ; p < len(v); p++ {
		yd[ri[p]] += v[p] * xd[ci[p]]
		yt[ci[p]] += v[p] * xt[ri[p]]
	}
}

// BlockSymSpMVDirect applies only the direct half of off-diagonal tile
// (bi,bj): y[bi·b:] += T·x[bj·b:]. Fallback mode pairs it with
// BlockSymSpMVTrans so the conflicting transposed write goes to a private
// accumulator instead of y.
//
//sparselint:hotpath
func (a *SymCSB) BlockSymSpMVDirect(y, x []float64, bi, bj int) {
	k := a.TileIndex(bi, bj)
	lo, hi := a.BlkPtr[k], a.BlkPtr[k+1]
	if lo == hi {
		return
	}
	v := a.V[lo:hi]
	ri := a.RI[lo:hi:hi]
	ci := a.CI[lo:hi:hi]
	ri = ri[:len(v)]
	ci = ci[:len(v)]
	ys := y[bi*a.Block:]
	xs := x[bj*a.Block:]
	p := 0
	for ; p+4 <= len(v); p += 4 {
		ys[ri[p]] += v[p] * xs[ci[p]]
		ys[ri[p+1]] += v[p+1] * xs[ci[p+1]]
		ys[ri[p+2]] += v[p+2] * xs[ci[p+2]]
		ys[ri[p+3]] += v[p+3] * xs[ci[p+3]]
	}
	for ; p < len(v); p++ {
		ys[ri[p]] += v[p] * xs[ci[p]]
	}
}

// BlockSymSpMVTrans applies only the transposed half of off-diagonal tile
// (bi,bj) into acc, a full-height private accumulator:
// acc[bj·b:] += Tᵀ·x[bi·b:].
//
//sparselint:hotpath
func (a *SymCSB) BlockSymSpMVTrans(acc, x []float64, bi, bj int) {
	k := a.TileIndex(bi, bj)
	lo, hi := a.BlkPtr[k], a.BlkPtr[k+1]
	if lo == hi {
		return
	}
	v := a.V[lo:hi]
	ri := a.RI[lo:hi:hi]
	ci := a.CI[lo:hi:hi]
	ri = ri[:len(v)]
	ci = ci[:len(v)]
	ys := acc[bj*a.Block:]
	xs := x[bi*a.Block:]
	p := 0
	for ; p+4 <= len(v); p += 4 {
		ys[ci[p]] += v[p] * xs[ri[p]]
		ys[ci[p+1]] += v[p+1] * xs[ri[p+1]]
		ys[ci[p+2]] += v[p+2] * xs[ri[p+2]]
		ys[ci[p+3]] += v[p+3] * xs[ri[p+3]]
	}
	for ; p < len(v); p++ {
		ys[ci[p]] += v[p] * xs[ri[p]]
	}
}

// BlockSymSpMM is BlockSymSpMV over n-column row-major vector blocks. The
// LOBPCG widths n∈{2,4,8} get fixed-width bodies whose row updates compile
// to constant offsets (column updates within an entry are independent
// outputs, so unrolling them is bit-identical to the scalar loop); n==1
// degenerates to SpMV and the generic path handles other widths.
//
//sparselint:hotpath
func (a *SymCSB) BlockSymSpMM(y, x []float64, n, bi, bj int) {
	k := a.TileIndex(bi, bj)
	lo, hi := a.BlkPtr[k], a.BlkPtr[k+1]
	if lo == hi {
		return
	}
	v := a.V[lo:hi]
	ri := a.RI[lo:hi:hi]
	ci := a.CI[lo:hi:hi]
	ri = ri[:len(v)]
	ci = ci[:len(v)]
	if bi == bj {
		ys := y[bi*a.Block*n:]
		xs := x[bi*a.Block*n:]
		switch n {
		case 1:
			for p := range v {
				r, c := ri[p], ci[p]
				vv := v[p]
				ys[r] += vv * xs[c]
				if r != c {
					ys[c] += vv * xs[r]
				}
			}
		case 2:
			for p := range v {
				r, c := int(ri[p]), int(ci[p])
				vv := v[p]
				yi := ys[r*2:]
				xj := xs[c*2:]
				yi[0] += vv * xj[0]
				yi[1] += vv * xj[1]
				if r != c {
					yc := ys[c*2:]
					xr := xs[r*2:]
					yc[0] += vv * xr[0]
					yc[1] += vv * xr[1]
				}
			}
		case 4:
			for p := range v {
				r, c := int(ri[p]), int(ci[p])
				vv := v[p]
				yi := ys[r*4:]
				xj := xs[c*4:]
				yi[0] += vv * xj[0]
				yi[1] += vv * xj[1]
				yi[2] += vv * xj[2]
				yi[3] += vv * xj[3]
				if r != c {
					yc := ys[c*4:]
					xr := xs[r*4:]
					yc[0] += vv * xr[0]
					yc[1] += vv * xr[1]
					yc[2] += vv * xr[2]
					yc[3] += vv * xr[3]
				}
			}
		case 8:
			for p := range v {
				r, c := int(ri[p]), int(ci[p])
				vv := v[p]
				yi := ys[r*8:][:8]
				xj := xs[c*8:][:8]
				yi[0] += vv * xj[0]
				yi[1] += vv * xj[1]
				yi[2] += vv * xj[2]
				yi[3] += vv * xj[3]
				yi[4] += vv * xj[4]
				yi[5] += vv * xj[5]
				yi[6] += vv * xj[6]
				yi[7] += vv * xj[7]
				if r != c {
					yc := ys[c*8:][:8]
					xr := xs[r*8:][:8]
					yc[0] += vv * xr[0]
					yc[1] += vv * xr[1]
					yc[2] += vv * xr[2]
					yc[3] += vv * xr[3]
					yc[4] += vv * xr[4]
					yc[5] += vv * xr[5]
					yc[6] += vv * xr[6]
					yc[7] += vv * xr[7]
				}
			}
		default:
			for p := range v {
				r, c := int(ri[p]), int(ci[p])
				vv := v[p]
				symSpMMRow(ys[r*n:][:n], xs[c*n:], vv)
				if r != c {
					symSpMMRow(ys[c*n:][:n], xs[r*n:], vv)
				}
			}
		}
		return
	}
	yd := y[bi*a.Block*n:]
	yt := y[bj*a.Block*n:]
	xd := x[bj*a.Block*n:]
	xt := x[bi*a.Block*n:]
	switch n {
	case 1:
		for p := range v {
			yd[ri[p]] += v[p] * xd[ci[p]]
			yt[ci[p]] += v[p] * xt[ri[p]]
		}
	case 2:
		for p := range v {
			r, c := int(ri[p]), int(ci[p])
			vv := v[p]
			yi := yd[r*2:]
			xj := xd[c*2:]
			yi[0] += vv * xj[0]
			yi[1] += vv * xj[1]
			yc := yt[c*2:]
			xr := xt[r*2:]
			yc[0] += vv * xr[0]
			yc[1] += vv * xr[1]
		}
	case 4:
		for p := range v {
			r, c := int(ri[p]), int(ci[p])
			vv := v[p]
			yi := yd[r*4:]
			xj := xd[c*4:]
			yi[0] += vv * xj[0]
			yi[1] += vv * xj[1]
			yi[2] += vv * xj[2]
			yi[3] += vv * xj[3]
			yc := yt[c*4:]
			xr := xt[r*4:]
			yc[0] += vv * xr[0]
			yc[1] += vv * xr[1]
			yc[2] += vv * xr[2]
			yc[3] += vv * xr[3]
		}
	case 8:
		for p := range v {
			r, c := int(ri[p]), int(ci[p])
			vv := v[p]
			yi := yd[r*8:][:8]
			xj := xd[c*8:][:8]
			yi[0] += vv * xj[0]
			yi[1] += vv * xj[1]
			yi[2] += vv * xj[2]
			yi[3] += vv * xj[3]
			yi[4] += vv * xj[4]
			yi[5] += vv * xj[5]
			yi[6] += vv * xj[6]
			yi[7] += vv * xj[7]
			yc := yt[c*8:][:8]
			xr := xt[r*8:][:8]
			yc[0] += vv * xr[0]
			yc[1] += vv * xr[1]
			yc[2] += vv * xr[2]
			yc[3] += vv * xr[3]
			yc[4] += vv * xr[4]
			yc[5] += vv * xr[5]
			yc[6] += vv * xr[6]
			yc[7] += vv * xr[7]
		}
	default:
		for p := range v {
			r, c := int(ri[p]), int(ci[p])
			vv := v[p]
			symSpMMRow(yd[r*n:][:n], xd[c*n:], vv)
			symSpMMRow(yt[c*n:][:n], xt[r*n:], vv)
		}
	}
}

// BlockSymSpMMDirect is the n-column direct half: Y[bi] += T·X[bj].
//
//sparselint:hotpath
func (a *SymCSB) BlockSymSpMMDirect(y, x []float64, n, bi, bj int) {
	k := a.TileIndex(bi, bj)
	lo, hi := a.BlkPtr[k], a.BlkPtr[k+1]
	if lo == hi {
		return
	}
	v := a.V[lo:hi]
	ri := a.RI[lo:hi:hi]
	ci := a.CI[lo:hi:hi]
	ri = ri[:len(v)]
	ci = ci[:len(v)]
	ys := y[bi*a.Block*n:]
	xs := x[bj*a.Block*n:]
	symSpMMScatter(ys, xs, v, ri, ci, n)
}

// BlockSymSpMMTrans is the n-column transposed half into a full-height
// private accumulator: acc[bj] += Tᵀ·X[bi].
//
//sparselint:hotpath
func (a *SymCSB) BlockSymSpMMTrans(acc, x []float64, n, bi, bj int) {
	k := a.TileIndex(bi, bj)
	lo, hi := a.BlkPtr[k], a.BlkPtr[k+1]
	if lo == hi {
		return
	}
	v := a.V[lo:hi]
	ri := a.RI[lo:hi:hi]
	ci := a.CI[lo:hi:hi]
	ri = ri[:len(v)]
	ci = ci[:len(v)]
	ys := acc[bj*a.Block*n:]
	xs := x[bi*a.Block*n:]
	symSpMMScatter(ys, xs, v, ci, ri, n)
}

// symSpMMScatter streams one tile's entries scattering v[p]·xs[ci[p]·n:]
// rows onto ys[ri[p]·n:] rows — the shared body of the direct and transposed
// (swap ri/ci) halves, with the same fixed-width cases as CSB.BlockSpMM.
//
//sparselint:hotpath
func symSpMMScatter(ys, xs []float64, v []float64, ri, ci []int32, n int) {
	switch n {
	case 1:
		for p := range v {
			ys[ri[p]] += v[p] * xs[ci[p]]
		}
	case 2:
		for p := range v {
			vv := v[p]
			yi := ys[int(ri[p])*2:]
			xj := xs[int(ci[p])*2:]
			yi[0] += vv * xj[0]
			yi[1] += vv * xj[1]
		}
	case 4:
		for p := range v {
			vv := v[p]
			yi := ys[int(ri[p])*4:]
			xj := xs[int(ci[p])*4:]
			yi[0] += vv * xj[0]
			yi[1] += vv * xj[1]
			yi[2] += vv * xj[2]
			yi[3] += vv * xj[3]
		}
	case 8:
		for p := range v {
			vv := v[p]
			yi := ys[int(ri[p])*8:][:8]
			xj := xs[int(ci[p])*8:][:8]
			yi[0] += vv * xj[0]
			yi[1] += vv * xj[1]
			yi[2] += vv * xj[2]
			yi[3] += vv * xj[3]
			yi[4] += vv * xj[4]
			yi[5] += vv * xj[5]
			yi[6] += vv * xj[6]
			yi[7] += vv * xj[7]
		}
	default:
		for p := range v {
			symSpMMRow(ys[int(ri[p])*n:][:n], xs[int(ci[p])*n:], v[p])
		}
	}
}

// symSpMMRow computes yi += vv·xj over one n-wide row (generic width path).
//
//sparselint:hotpath
func symSpMMRow(yi, xj []float64, vv float64) {
	xj = xj[:len(yi)]
	c := 0
	for ; c+4 <= len(yi); c += 4 {
		yi[c] += vv * xj[c]
		yi[c+1] += vv * xj[c+1]
		yi[c+2] += vv * xj[c+2]
		yi[c+3] += vv * xj[c+3]
	}
	for ; c < len(yi); c++ {
		yi[c] += vv * xj[c]
	}
}

// SpMV computes y = A·x sequentially by streaming stored tiles in (bi-major,
// bj ascending) order: the reference for the task-parallel executions.
func (a *SymCSB) SpMV(y, x []float64) {
	if len(x) != a.Rows || len(y) != a.Rows {
		panic(fmt.Sprintf("sparse: SymCSB SpMV shape mismatch: A is %dx%d, x %d, y %d", a.Rows, a.Rows, len(x), len(y)))
	}
	clear(y)
	for bi := 0; bi < a.NBR; bi++ {
		for bj := 0; bj <= bi; bj++ {
			a.BlockSymSpMV(y, x, bi, bj)
		}
	}
}

// SpMM computes Y = A·X sequentially over stored tiles; X and Y are Rows×n
// dense row-major.
func (a *SymCSB) SpMM(y, x []float64, n int) {
	if len(x) != a.Rows*n || len(y) != a.Rows*n {
		panic(fmt.Sprintf("sparse: SymCSB SpMM shape mismatch: A is %dx%d n=%d len(x)=%d len(y)=%d", a.Rows, a.Rows, n, len(x), len(y)))
	}
	clear(y)
	for bi := 0; bi < a.NBR; bi++ {
		for bj := 0; bj <= bi; bj++ {
			a.BlockSymSpMM(y, x, n, bi, bj)
		}
	}
}
