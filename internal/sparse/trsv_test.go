package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// randomLower builds a random, well-conditioned lower-triangular CSR with an
// explicit dominant diagonal.
func randomLower(n int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	coo := NewCOO(n, n, 4*n)
	for i := 0; i < n; i++ {
		for k := 0; k < 3 && i > 0; k++ {
			j := rng.Intn(i)
			coo.Append(int32(i), int32(j), rng.NormFloat64())
		}
		coo.Append(int32(i), int32(i), 4+rng.Float64())
	}
	return coo.ToCSR()
}

func TestLowerUpperSolveInverse(t *testing.T) {
	n := 200
	l := randomLower(n, 11)
	u := l.Transpose()
	rng := rand.New(rand.NewSource(5))
	want := make([]float64, n)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	// Forward: b = L·want, solve, compare.
	b := make([]float64, n)
	l.SpMV(b, want)
	x := make([]float64, n)
	l.LowerSolve(x, b)
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Fatalf("lower solve x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
	// Backward: b = U·want = Lᵀ·want.
	u.SpMV(b, want)
	u.UpperSolve(x, b)
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Fatalf("upper solve x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

// TestSolveRangeComposition: solving in arbitrary range chunks in dependency
// order must be bit-identical to the whole-matrix solve — the property the
// level-scheduled task decomposition relies on.
func TestSolveRangeComposition(t *testing.T) {
	n := 157
	l := randomLower(n, 23)
	u := l.Transpose()
	b := make([]float64, n)
	rng := rand.New(rand.NewSource(9))
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	whole := make([]float64, n)
	l.LowerSolve(whole, b)
	chunked := make([]float64, n)
	for lo := 0; lo < n; lo += 13 {
		hi := lo + 13
		if hi > n {
			hi = n
		}
		l.LowerSolveRange(chunked, b, lo, hi)
	}
	for i := range whole {
		if whole[i] != chunked[i] {
			t.Fatalf("lower chunked solve differs at %d: %v vs %v", i, chunked[i], whole[i])
		}
	}
	u.UpperSolve(whole, b)
	for hi := n; hi > 0; hi -= 13 {
		lo := hi - 13
		if lo < 0 {
			lo = 0
		}
		u.UpperSolveRange(chunked, b, lo, hi)
	}
	for i := range whole {
		if whole[i] != chunked[i] {
			t.Fatalf("upper chunked solve differs at %d: %v vs %v", i, chunked[i], whole[i])
		}
	}
}

func TestTransposeRoundTrip(t *testing.T) {
	l := randomLower(60, 7)
	tt := l.Transpose().Transpose()
	if tt.Rows != l.Rows || tt.NNZ() != l.NNZ() {
		t.Fatalf("transpose round trip changed shape")
	}
	for k := range l.V {
		if l.ColIdx[k] != tt.ColIdx[k] || l.V[k] != tt.V[k] {
			t.Fatalf("transpose round trip changed entry %d", k)
		}
	}
}

func TestLowerTriangle(t *testing.T) {
	coo := NewCOO(3, 3, 5)
	coo.Append(0, 0, 1)
	coo.Append(0, 2, 9) // strictly upper: dropped
	coo.Append(1, 0, 2)
	coo.Append(1, 1, 3)
	coo.Append(2, 2, 4)
	l := coo.ToCSR().LowerTriangle()
	if l.NNZ() != 4 {
		t.Fatalf("lower triangle nnz = %d, want 4", l.NNZ())
	}
	for i := 0; i < l.Rows; i++ {
		for p := l.RowPtr[i]; p < l.RowPtr[i+1]; p++ {
			if int(l.ColIdx[p]) > i {
				t.Fatalf("upper entry survived at (%d,%d)", i, l.ColIdx[p])
			}
		}
	}
}
