package sparse

import (
	"errors"
	"math/rand"
	"testing"
)

// randomSymCOO builds a random numerically symmetric n×n matrix: each lower
// pair (i,j) is drawn once and mirrored.
func randomSymCOO(rng *rand.Rand, n int, density float64) *COO {
	a := NewCOO(n, n, 0)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			if rng.Float64() >= density {
				continue
			}
			v := rng.NormFloat64()
			a.Append(int32(i), int32(j), v)
			if i != j {
				a.Append(int32(j), int32(i), v)
			}
		}
	}
	a.Compact()
	return a
}

func checkSymEquiv(t *testing.T, a *COO, block, r int) {
	t.Helper()
	sym, err := a.ToSymCSB(block)
	if err != nil {
		t.Fatalf("ToSymCSB(%d): %v", block, err)
	}
	x := make([]float64, a.Cols*r)
	rng := rand.New(rand.NewSource(int64(a.Rows*1000 + block*10 + r)))
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := cooSpMMRef(a, x, r)
	got := make([]float64, a.Rows*r)
	if r == 1 {
		sym.SpMV(got, x)
		for i := range got {
			if !relEq(got[i], want[i]) {
				t.Fatalf("SymSpMV n=%d block=%d: y[%d] = %g, want %g", a.Rows, block, i, got[i], want[i])
			}
		}
	}
	sym.SpMM(got, x, r)
	for i := range got {
		if !relEq(got[i], want[i]) {
			t.Fatalf("SymSpMM n=%d block=%d r=%d: y[%d] = %g, want %g", a.Rows, block, r, i, got[i], want[i])
		}
	}
}

func TestSymCSBKernelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	shapes := []struct{ n, block int }{
		{1, 1},
		{1, 8},
		{13, 5},  // ragged edge tile
		{17, 64}, // block larger than the matrix: a single diagonal tile
		{33, 32}, // one-past-a-tile edge
		{64, 16}, // exact tiling
		{50, 7},  // ragged edges
		{96, 8},  // many tiles
	}
	for _, s := range shapes {
		a := randomSymCOO(rng, s.n, 0.2)
		for _, r := range []int{1, 2, 3, 4, 5, 8, 11} {
			checkSymEquiv(t, a, s.block, r)
		}
	}
}

func TestSymCSBKernelEquivalenceFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	iters := 60
	if testing.Short() {
		iters = 15
	}
	for it := 0; it < iters; it++ {
		n := 1 + rng.Intn(90)
		block := 1 + rng.Intn(n+8)
		density := 0.02 + 0.3*rng.Float64()
		r := 1 + rng.Intn(10)
		a := randomSymCOO(rng, n, density)
		checkSymEquiv(t, a, block, r)
	}
}

func TestSymCSBStorageCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomSymCOO(rng, 40, 0.25)
	sym, err := a.ToSymCSB(8)
	if err != nil {
		t.Fatal(err)
	}
	if sym.FullNNZ != a.NNZ() {
		t.Fatalf("FullNNZ = %d, want %d", sym.FullNNZ, a.NNZ())
	}
	if want := (sym.FullNNZ + sym.DiagNNZ) / 2; sym.NNZ() != want {
		t.Fatalf("stored NNZ = %d, want (full+diag)/2 = %d", sym.NNZ(), want)
	}
	if sym.NNZ() > sym.FullNNZ/2+40 {
		t.Fatalf("stored NNZ %d does not halve full %d", sym.NNZ(), sym.FullNNZ)
	}
	nd := 0
	for k := range a.V {
		if a.I[k] == a.J[k] {
			nd++
		}
	}
	if sym.DiagNNZ != nd {
		t.Fatalf("DiagNNZ = %d, want %d", sym.DiagNNZ, nd)
	}
}

func TestSymCSBRejectsAsymmetric(t *testing.T) {
	// Pattern asymmetry: (0,1) present, (1,0) missing.
	a := NewCOO(3, 3, 0)
	a.Append(0, 1, 2.0)
	a.Append(0, 0, 1.0)
	if _, err := a.ToSymCSB(2); !errors.Is(err, ErrNotSymmetric) {
		t.Fatalf("pattern-asymmetric: err = %v, want ErrNotSymmetric", err)
	}
	// Value asymmetry: mirrored entry with a different value.
	b := NewCOO(3, 3, 0)
	b.Append(0, 1, 2.0)
	b.Append(1, 0, 2.5)
	if _, err := b.ToSymCSB(2); !errors.Is(err, ErrNotSymmetric) {
		t.Fatalf("value-asymmetric: err = %v, want ErrNotSymmetric", err)
	}
	// Non-square.
	c := NewCOO(3, 4, 0)
	if _, err := c.ToSymCSB(2); err == nil {
		t.Fatal("non-square matrix converted without error")
	}
}

// Wave-mode invariant: every stored non-empty tile has a wave, and no two
// tiles of one wave share a row band (counting the transposed band).
func checkWaveInvariant(t *testing.T, sym *SymCSB) {
	t.Helper()
	if sym.Sched.Fallback {
		t.Fatal("expected wave mode, got fallback")
	}
	touched := make(map[int64]int32) // wave·NBR+band -> packed tile idx
	for bi := 0; bi < sym.NBR; bi++ {
		for bj := 0; bj <= bi; bj++ {
			idx := sym.TileIndex(bi, bj)
			w := sym.Sched.Wave[idx]
			if sym.TileNNZ(bi, bj) == 0 {
				if w != -1 {
					t.Fatalf("empty tile (%d,%d) got wave %d", bi, bj, w)
				}
				continue
			}
			if w < 0 || int(w) >= sym.Sched.NumWaves {
				t.Fatalf("tile (%d,%d) wave %d outside [0,%d)", bi, bj, w, sym.Sched.NumWaves)
			}
			bands := []int{bi}
			if bi != bj {
				bands = append(bands, bj)
			}
			for _, band := range bands {
				key := int64(w)*int64(sym.NBR) + int64(band)
				if prev, ok := touched[key]; ok {
					t.Fatalf("wave %d: tiles %d and %d both touch band %d", w, prev, idx, band)
				}
				touched[key] = int32(idx)
			}
		}
	}
}

func TestSymCSBScheduleWaveBanded(t *testing.T) {
	// Block-tridiagonal: each band meets at most 3 tiles, so greedy coloring
	// needs few waves and never falls back.
	n, block := 96, 8
	a := NewCOO(n, n, 0)
	for i := 0; i < n; i++ {
		a.Append(int32(i), int32(i), 4.0)
		if i > 0 {
			a.Append(int32(i), int32(i-1), -1.0)
			a.Append(int32(i-1), int32(i), -1.0)
		}
	}
	a.Compact()
	sym, err := a.ToSymCSB(block)
	if err != nil {
		t.Fatal(err)
	}
	checkWaveInvariant(t, sym)
	if sym.Sched.NumWaves > 4 {
		t.Fatalf("tridiagonal coloring used %d waves, want <= 4", sym.Sched.NumWaves)
	}
}

func TestSymCSBScheduleFallbackArrowhead(t *testing.T) {
	// Arrowhead: row/col 0 is dense, so band 0 meets every tile row and
	// coloring would need ~NBR waves > max(4, NBR/2) -> fallback.
	n, block := 128, 8
	a := NewCOO(n, n, 0)
	for i := 0; i < n; i++ {
		a.Append(int32(i), int32(i), 4.0)
		if i > 0 {
			a.Append(int32(i), 0, 1.0)
			a.Append(0, int32(i), 1.0)
		}
	}
	a.Compact()
	sym, err := a.ToSymCSB(block)
	if err != nil {
		t.Fatal(err)
	}
	s := sym.Sched
	if !s.Fallback {
		t.Fatalf("arrowhead with %d tile rows stayed in wave mode", sym.NBR)
	}
	if want := SymAccGroups; s.Groups != want {
		t.Fatalf("Groups = %d, want %d", s.Groups, want)
	}
	// TransGroups must flag exactly the groups with a transposed write into
	// each band.
	for bj := 0; bj < sym.NBR; bj++ {
		var want uint8
		for bi := bj + 1; bi < sym.NBR; bi++ {
			if sym.TileNNZ(bi, bj) > 0 {
				want |= 1 << uint(sym.AccGroup(bi))
			}
		}
		if s.TransGroups[bj] != want {
			t.Fatalf("TransGroups[%d] = %08b, want %08b", bj, s.TransGroups[bj], want)
		}
	}
	// AccGroup must stay within range and be monotone in bi.
	prev := 0
	for bi := 0; bi < sym.NBR; bi++ {
		g := sym.AccGroup(bi)
		if g < 0 || g >= s.Groups || g < prev {
			t.Fatalf("AccGroup(%d) = %d (prev %d, groups %d)", bi, g, prev, s.Groups)
		}
		prev = g
	}
	// And the fallback matrix must still multiply correctly.
	checkSymEquiv(t, a, block, 1)
	checkSymEquiv(t, a, block, 8)
}

// The fallback kernel pair (Direct into y, Trans into a private accumulator,
// then fold) must reproduce the combined kernel's mathematics.
func TestSymCSBDirectTransPairEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n, block := 48, 8
	a := randomSymCOO(rng, n, 0.3)
	sym, err := a.ToSymCSB(block)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{1, 2, 4, 8, 5} {
		x := make([]float64, n*r)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, n*r)
		sym.SpMM(want, x, r)

		got := make([]float64, n*r)
		acc := make([]float64, n*r)
		for bi := 0; bi < sym.NBR; bi++ {
			for bj := 0; bj <= bi; bj++ {
				if sym.TileNNZ(bi, bj) == 0 {
					continue
				}
				if bi == bj {
					sym.BlockSymSpMM(got, x, r, bi, bj)
					continue
				}
				if r == 1 {
					sym.BlockSymSpMVDirect(got, x, bi, bj)
					sym.BlockSymSpMVTrans(acc, x, bi, bj)
				} else {
					sym.BlockSymSpMMDirect(got, x, r, bi, bj)
					sym.BlockSymSpMMTrans(acc, x, r, bi, bj)
				}
			}
		}
		for i := range got {
			got[i] += acc[i]
		}
		for i := range got {
			if !relEq(got[i], want[i]) {
				t.Fatalf("r=%d: direct+trans y[%d] = %g, want %g", r, i, got[i], want[i])
			}
		}
	}
}

func TestSymCSBInverseDiagonal(t *testing.T) {
	a := NewCOO(10, 10, 0)
	for i := 0; i < 10; i++ {
		if i == 3 {
			continue // missing diagonal: falls back to 1
		}
		a.Append(int32(i), int32(i), float64(i+1))
	}
	a.Append(7, 2, 0.5)
	a.Append(2, 7, 0.5)
	a.Compact()
	sym, err := a.ToSymCSB(4)
	if err != nil {
		t.Fatal(err)
	}
	dinv := make([]float64, 10)
	sym.InverseDiagonal(dinv)
	for i := range dinv {
		want := 1 / float64(i+1)
		if i == 3 {
			want = 1
		}
		if !relEq(dinv[i], want) {
			t.Fatalf("dinv[%d] = %g, want %g", i, dinv[i], want)
		}
	}
}
