package sparse

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzMatrixMarketRoundTrip checks that any MatrixMarket document the reader
// accepts survives a write→parse cycle with identical dimensions and triples.
// Symmetric inputs are expanded on the first read, so the round trip
// canonicalizes to "coordinate real general"; after that the representation
// must be a fixed point.
func FuzzMatrixMarketRoundTrip(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1.5\n3 2 -2.25e-3\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n% off-diagonal expands\n3 3 2\n2 1 4.0\n3 3 -1.0\n")
	f.Add("%%MatrixMarket matrix coordinate pattern general\n2 2 3\n1 1\n1 2\n2 2\n")
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n4 4 2\n2 1\n4 3\n")
	f.Add("%%MatrixMarket matrix coordinate integer general\n2 3 2\n1 3 7\n2 1 -12\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 3.14159\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n1 1 0\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 NaN\n2 2 +Inf\n")

	f.Fuzz(func(t *testing.T, doc string) {
		a, err := ReadMatrixMarket(strings.NewReader(doc))
		if err != nil {
			t.Skip() // reader rejected the input; nothing to round-trip
		}
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, a); err != nil {
			t.Fatalf("write parsed matrix: %v", err)
		}
		b, err := ReadMatrixMarket(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reparse own output: %v\noutput:\n%s", err, buf.String())
		}
		if a.Rows != b.Rows || a.Cols != b.Cols || a.NNZ() != b.NNZ() {
			t.Fatalf("shape changed: %dx%d/%d -> %dx%d/%d",
				a.Rows, a.Cols, a.NNZ(), b.Rows, b.Cols, b.NNZ())
		}
		for k := range a.V {
			if a.I[k] != b.I[k] || a.J[k] != b.J[k] {
				t.Fatalf("entry %d moved: (%d,%d) -> (%d,%d)",
					k, a.I[k], a.J[k], b.I[k], b.J[k])
			}
			// Bit-compare so NaN payloads and signed zeros count as equal
			// to themselves.
			if math.Float64bits(a.V[k]) != math.Float64bits(b.V[k]) {
				t.Fatalf("entry %d value changed: %v -> %v", k, a.V[k], b.V[k])
			}
		}
	})
}
