package sparse

// Matrix is the storage-format abstraction the solvers build against: both
// the general CSB and the symmetry-exploiting SymCSB satisfy it, so a solver
// opts into symmetric storage simply by being handed a *SymCSB. The
// interface covers exactly what solver construction and (cold) init paths
// need; hot-path kernels always go through the concrete types attached to
// the program store.
type Matrix interface {
	// Dims returns the matrix dimensions (rows, cols).
	Dims() (int, int)
	// BlockSize returns the CSB tile edge length (the program block size).
	BlockSize() int
	// NNZ returns the number of stored entries.
	NNZ() int
	// SpMV computes y = A·x sequentially (reference/init path).
	SpMV(y, x []float64)
	// SpMM computes Y = A·X sequentially over n-column row-major blocks.
	SpMM(y, x []float64, n int)
	// InverseDiagonal fills dinv with 1/diag(A), defaulting to 1 for zero or
	// missing diagonal entries.
	InverseDiagonal(dinv []float64)
}

// Dims returns the matrix dimensions.
func (a *CSB) Dims() (int, int) { return a.Rows, a.Cols }

// BlockSize returns the tile edge length.
func (a *CSB) BlockSize() int { return a.Block }

// InverseDiagonal fills dinv with 1/diag(A); zero or missing diagonal
// entries fall back to 1 (no scaling for that row).
func (a *CSB) InverseDiagonal(dinv []float64) {
	for i := range dinv {
		dinv[i] = 1
	}
	for bi := 0; bi < a.NBR && bi < a.NBC; bi++ {
		k := a.BlockIndex(bi, bi)
		off := bi * a.Block
		for p := a.BlkPtr[k]; p < a.BlkPtr[k+1]; p++ {
			if a.RI[p] == a.CI[p] {
				if v := a.V[p]; v != 0 {
					dinv[off+int(a.RI[p])] = 1 / v
				}
			}
		}
	}
}
