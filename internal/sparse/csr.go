package sparse

import "fmt"

// CSR is a compressed-sparse-row matrix: the storage used by the libcsr BSP
// baseline and by the sequential reference kernels.
type CSR struct {
	Rows, Cols int
	RowPtr     []int64 // len Rows+1
	ColIdx     []int32 // len NNZ
	V          []float64
}

// NNZ returns the number of stored entries.
func (a *CSR) NNZ() int { return len(a.V) }

// ToCSR converts a COO matrix (which is compacted first) to CSR.
func (a *COO) ToCSR() *CSR {
	a.Compact()
	c := &CSR{
		Rows:   a.Rows,
		Cols:   a.Cols,
		RowPtr: make([]int64, a.Rows+1),
		ColIdx: make([]int32, len(a.V)),
		V:      make([]float64, len(a.V)),
	}
	for _, i := range a.I {
		c.RowPtr[i+1]++
	}
	for r := 0; r < a.Rows; r++ {
		c.RowPtr[r+1] += c.RowPtr[r]
	}
	// Entries are sorted by (row, col) after Compact, so a straight copy
	// preserves per-row column order.
	copy(c.ColIdx, a.J)
	copy(c.V, a.V)
	return c
}

// ToCOO converts back to coordinate format.
func (a *CSR) ToCOO() *COO {
	o := NewCOO(a.Rows, a.Cols, a.NNZ())
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			o.Append(int32(i), a.ColIdx[p], a.V[p])
		}
	}
	return o
}

// SpMV computes y = A·x. len(x) must be Cols and len(y) must be Rows.
// This is the sequential reference kernel; the BSP and task runtimes use
// their own partitioned variants.
func (a *CSR) SpMV(y, x []float64) {
	if len(x) != a.Cols || len(y) != a.Rows {
		panic(fmt.Sprintf("sparse: SpMV shape mismatch: A is %dx%d, x %d, y %d", a.Rows, a.Cols, len(x), len(y)))
	}
	for i := 0; i < a.Rows; i++ {
		var s float64
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			s += a.V[p] * x[a.ColIdx[p]]
		}
		y[i] = s
	}
}

// SpMM computes Y = A·X where X and Y are dense row-major blocks of vectors
// with n columns: X is Cols×n, Y is Rows×n.
func (a *CSR) SpMM(y, x []float64, n int) {
	if len(x) != a.Cols*n || len(y) != a.Rows*n {
		panic(fmt.Sprintf("sparse: SpMM shape mismatch: A is %dx%d, n=%d, len(x)=%d, len(y)=%d", a.Rows, a.Cols, n, len(x), len(y)))
	}
	for i := 0; i < a.Rows; i++ {
		yi := y[i*n : i*n+n]
		for c := range yi {
			yi[c] = 0
		}
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			v := a.V[p]
			xj := x[int(a.ColIdx[p])*n : int(a.ColIdx[p])*n+n]
			for c := 0; c < n; c++ {
				yi[c] += v * xj[c]
			}
		}
	}
}

// RowNNZ returns the number of nonzeros in row i.
func (a *CSR) RowNNZ(i int) int { return int(a.RowPtr[i+1] - a.RowPtr[i]) }

// IsSymmetric reports whether the matrix pattern and values are symmetric.
// Cost is O(nnz·log maxRowNNZ): every strictly-upper entry is matched
// against its mirror by binary search over the (sorted) columns of the
// mirror row, and the triangles must balance (the mirror map is injective,
// so equal counts make it a bijection).
func (a *CSR) IsSymmetric() bool {
	if a.Rows != a.Cols {
		return false
	}
	nUpper, nLower := 0, 0
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			j := int(a.ColIdx[p])
			switch {
			case j == i:
			case j < i:
				nLower++
			default:
				nUpper++
				lo, hi := a.RowPtr[j], a.RowPtr[j+1]
				for lo < hi {
					mid := (lo + hi) / 2
					if int(a.ColIdx[mid]) < i {
						lo = mid + 1
					} else {
						hi = mid
					}
				}
				if lo == a.RowPtr[j+1] || int(a.ColIdx[lo]) != i || a.V[lo] != a.V[p] {
					return false
				}
			}
		}
	}
	return nUpper == nLower
}

// MaxRowNNZ returns the maximum per-row nonzero count; the paper's load
// imbalance discussion is driven by this skew.
func (a *CSR) MaxRowNNZ() int {
	m := 0
	for i := 0; i < a.Rows; i++ {
		if n := a.RowNNZ(i); n > m {
			m = n
		}
	}
	return m
}
