package sparse

import (
	"fmt"
	"math"
)

// Stats summarizes the structural properties that drive the paper's analysis:
// size, density, and the nonzero skew responsible for BSP load imbalance.
type Stats struct {
	Rows, Cols int
	NNZ        int
	AvgRowNNZ  float64
	MaxRowNNZ  int
	// Imbalance is MaxRowNNZ / AvgRowNNZ; ~1 for banded FEM matrices,
	// hundreds-plus for power-law web/social graphs.
	Imbalance float64
	// Bandwidth is the maximum |i-j| over stored entries.
	Bandwidth int
	// Symmetric reports numerical symmetry (pattern and values): the
	// precondition for SymCSB storage. It participates in Fingerprint so a
	// symmetric-storage plan can never be served for a general matrix that
	// happens to share the other structural stats.
	Symmetric bool
}

// ComputeStats scans a CSR matrix.
func ComputeStats(a *CSR) Stats {
	s := Stats{Rows: a.Rows, Cols: a.Cols, NNZ: a.NNZ()}
	if a.Rows > 0 {
		s.AvgRowNNZ = float64(a.NNZ()) / float64(a.Rows)
	}
	for i := 0; i < a.Rows; i++ {
		n := a.RowNNZ(i)
		if n > s.MaxRowNNZ {
			s.MaxRowNNZ = n
		}
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if b := int(math.Abs(float64(int32(i) - a.ColIdx[p]))); b > s.Bandwidth {
				s.Bandwidth = b
			}
		}
	}
	if s.AvgRowNNZ > 0 {
		s.Imbalance = float64(s.MaxRowNNZ) / s.AvgRowNNZ
	}
	s.Symmetric = a.IsSymmetric()
	return s
}

// Fingerprint condenses the stats into a 64-bit FNV-1a key. Two matrices
// with equal fingerprints share the structural properties (size, density,
// skew, bandwidth) that drive block-size selection, which is what the
// serving layer's plan cache keys on.
func (s Stats) Fingerprint() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	var sym uint64
	if s.Symmetric {
		sym = 1
	}
	for _, v := range []uint64{
		uint64(s.Rows), uint64(s.Cols), uint64(s.NNZ),
		uint64(s.MaxRowNNZ), uint64(s.Bandwidth), sym,
	} {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	return h
}

func (s Stats) String() string {
	sym := ""
	if s.Symmetric {
		sym = " sym"
	}
	return fmt.Sprintf("%dx%d nnz=%d avg/row=%.1f max/row=%d imb=%.1f bw=%d%s",
		s.Rows, s.Cols, s.NNZ, s.AvgRowNNZ, s.MaxRowNNZ, s.Imbalance, s.Bandwidth, sym)
}

// BlockFill summarizes how CSB tiling interacts with the pattern at a given
// block size: the block-size selection heuristic (paper §5.4) trades the
// number of non-empty tiles (parallelism, scheduling overhead) against tile
// work granularity.
type BlockFill struct {
	Block          int
	BlockCount     int // tiles per dimension (NBR)
	NonEmpty       int
	Total          int
	MaxBlockNNZ    int
	AvgPerNonEmpty float64
}

// ComputeBlockFill tiles the matrix and summarizes tile occupancy.
func ComputeBlockFill(a *COO, block int) BlockFill {
	c := a.ToCSB(block)
	bf := BlockFill{Block: block, BlockCount: c.NBR, Total: c.NBR * c.NBC}
	for bi := 0; bi < c.NBR; bi++ {
		for bj := 0; bj < c.NBC; bj++ {
			n := c.BlockNNZ(bi, bj)
			if n == 0 {
				continue
			}
			bf.NonEmpty++
			if n > bf.MaxBlockNNZ {
				bf.MaxBlockNNZ = n
			}
		}
	}
	if bf.NonEmpty > 0 {
		bf.AvgPerNonEmpty = float64(a.NNZ()) / float64(bf.NonEmpty)
	}
	return bf
}
