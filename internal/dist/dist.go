// Package dist implements the paper's stated future work (§6): running the
// task-dataflow sparse solvers on distributed memory and comparing an
// HPX-style global-address-space execution against a hybrid MPI+OpenMP
// baseline.
//
// The model extends the shared-memory simulator's philosophy one level up:
// a cluster is N identical nodes; row partitions are distributed to nodes
// contiguously (the same owner map first-touch uses within a node); the
// per-iteration TDG is executed either
//
//   - MPIBSP: each kernel runs bulk-synchronously — every node computes the
//     tasks whose output partitions it owns, then the cluster exchanges
//     halos (for SpMM, the input chunks its non-local tiles need) and runs
//     collectives for reductions, with a global barrier per kernel; or
//   - HPXDist: tasks still execute on their output partition's owner, but
//     asynchronously — a task may start as soon as its dependencies are done
//     and its remote inputs have streamed in; communication overlaps
//     computation and there are no global barriers (the GAS/dataflow
//     execution HPX extends to clusters).
//
// Intra-node execution uses a work/span-based node model rather than the
// full cache simulator: per-task cost = max(flops/rate, bytes/membw) on one
// of the node's cores. That keeps the cluster model tractable while
// preserving what the comparison is about — synchronization structure and
// communication overlap.
package dist

import (
	"fmt"
	"sort"

	"sparsetask/internal/graph"
)

// Cluster describes the machine: N nodes, per-node compute, and the network.
type Cluster struct {
	Nodes        int
	CoresPerNode int
	// FlopsPerNs is per-core compute rate; MemBWNsPerByte the per-core
	// streaming cost of a byte.
	FlopsPerNs     float64
	MemBWNsPerByte float64
	// Network: per-message latency and per-byte cost of a node's NIC.
	NetLatencyNs float64
	NetNsPerByte float64
}

// DefaultCluster models commodity HPC nodes on a 100 Gb/s fabric.
func DefaultCluster(nodes int) Cluster {
	return Cluster{
		Nodes:          nodes,
		CoresPerNode:   28,
		FlopsPerNs:     8,
		MemBWNsPerByte: 0.02, // ~50 GB/s effective per core-stream
		NetLatencyNs:   1500,
		NetNsPerByte:   0.08, // ~12.5 GB/s per NIC
	}
}

// Validate checks the configuration.
func (c Cluster) Validate() error {
	if c.Nodes < 1 || c.CoresPerNode < 1 {
		return fmt.Errorf("dist: invalid cluster shape %d nodes × %d cores", c.Nodes, c.CoresPerNode)
	}
	if c.FlopsPerNs <= 0 || c.MemBWNsPerByte < 0 || c.NetLatencyNs < 0 || c.NetNsPerByte < 0 {
		return fmt.Errorf("dist: invalid cluster rates")
	}
	return nil
}

// Owner returns the node owning partition p of np.
func (c Cluster) Owner(p, np int) int {
	if p < 0 {
		return 0 // reductions and small steps live on rank 0
	}
	n := int(int64(p) * int64(c.Nodes) / int64(np))
	if n >= c.Nodes {
		n = c.Nodes - 1
	}
	return n
}

// Result reports one simulated distributed execution of a TDG.
type Result struct {
	MakespanNs float64
	// CommBytes is the total cross-node traffic.
	CommBytes int64
	// CommMsgs is the number of cross-node messages.
	CommMsgs int64
	// CompNs is the total task compute time across the cluster.
	CompNs float64
}

// taskCost is the node-level cost model: max of flop time and memory
// streaming time for the task's local footprint.
func (c Cluster) taskCost(t *graph.Task) float64 {
	var bytes int64
	for _, r := range t.Reads {
		bytes += r.Bytes
	}
	for _, w := range t.Writes {
		bytes += w.Bytes
	}
	flopNs := float64(t.Flops) / c.FlopsPerNs
	memNs := float64(bytes) * c.MemBWNsPerByte
	if memNs > flopNs {
		return memNs
	}
	return flopNs
}

// remoteInputBytes sums the bytes of task inputs whose producing partition
// lives on another node. Partition identity is recovered from the graph
// structure: a task's non-own-partition vec reads are the halo.
func remoteInputBytes(g *graph.TDG, t *graph.Task, c Cluster) int64 {
	if t.P < 0 {
		// Reductions read all partials: all but rank 0's share is remote.
		var bytes int64
		for _, r := range t.Reads {
			bytes += r.Bytes
		}
		return bytes * int64(c.Nodes-1) / int64(maxi(1, c.Nodes))
	}
	owner := c.Owner(int(t.P), g.Prog.NP)
	var remote int64
	if t.Q >= 0 && t.Q != t.P {
		// SpMM tile: the X[bj] chunk is remote when bj's owner differs.
		if c.Owner(int(t.Q), g.Prog.NP) != owner {
			// The second read ref is the input chunk (first is the tile).
			if len(t.Reads) >= 2 {
				remote += t.Reads[1].Bytes
			}
		}
	}
	return remote
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Mode selects the distributed execution model.
type Mode int

// The two contenders of the paper's future-work comparison.
const (
	MPIBSP Mode = iota
	HPXDist
)

func (m Mode) String() string {
	if m == MPIBSP {
		return "mpi+omp"
	}
	return "hpx-dist"
}

// Run simulates one execution of g on the cluster under the given mode.
func Run(g *graph.TDG, c Cluster, mode Mode) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	switch mode {
	case MPIBSP:
		return runMPIBSP(g, c), nil
	case HPXDist:
		return runHPXDist(g, c), nil
	}
	return Result{}, fmt.Errorf("dist: unknown mode %d", mode)
}

// runMPIBSP executes kernel by kernel: per kernel, each node runs its owned
// tasks loop-parallel (work/span bound on CoresPerNode), preceded by a halo
// exchange for the kernel's remote inputs and followed by a barrier;
// reductions cost an allreduce.
func runMPIBSP(g *graph.TDG, c Cluster) Result {
	var res Result
	nCalls := len(g.Prog.Calls)
	type nodeAgg struct {
		work  float64
		span  float64
		haloB int64
		// haloFrom tracks distinct source nodes: MPI packs each neighbor's
		// halo into one message per kernel.
		haloFrom map[int]bool
	}
	for call := 0; call < nCalls; call++ {
		agg := make([]nodeAgg, c.Nodes)
		var reduceCost float64
		for i := range g.Tasks {
			t := &g.Tasks[i]
			if int(t.Call) != call {
				continue
			}
			cost := c.taskCost(t)
			res.CompNs += cost
			node := c.Owner(int(t.P), g.Prog.NP)
			if t.P < 0 {
				// Serial reduction on rank 0 after an allreduce-style
				// gather: log2(N) latency steps plus the payload.
				var bytes int64
				for _, r := range t.Reads {
					bytes += r.Bytes
				}
				steps := log2ceil(c.Nodes)
				reduceCost += cost + float64(steps)*(c.NetLatencyNs+float64(bytes)*c.NetNsPerByte)
				if c.Nodes > 1 {
					res.CommMsgs += int64(steps)
					res.CommBytes += bytes
				}
				continue
			}
			a := &agg[node]
			a.work += cost
			if cost > a.span {
				a.span = cost
			}
			if rb := remoteInputBytes(g, t, c); rb > 0 && c.Nodes > 1 {
				a.haloB += rb
				if a.haloFrom == nil {
					a.haloFrom = make(map[int]bool)
				}
				if t.Q >= 0 {
					a.haloFrom[c.Owner(int(t.Q), g.Prog.NP)] = true
				} else {
					a.haloFrom[(node+1)%c.Nodes] = true
				}
			}
		}
		// Kernel time = slowest node (barrier), including its halo exchange
		// up front (MPI: communicate, then compute).
		var kernel float64
		for n := range agg {
			a := &agg[n]
			msgs := int64(len(a.haloFrom))
			comm := float64(msgs)*c.NetLatencyNs + float64(a.haloB)*c.NetNsPerByte
			comp := a.work / float64(c.CoresPerNode)
			if a.span > comp {
				comp = a.span
			}
			if v := comm + comp; v > kernel {
				kernel = v
			}
			res.CommBytes += a.haloB
			res.CommMsgs += msgs
		}
		res.MakespanNs += kernel + reduceCost
	}
	return res
}

// runHPXDist executes the whole TDG with list scheduling over all nodes'
// cores: a task becomes available when its dependencies finish plus its
// remote-input stream-in time (communication overlaps other computation; no
// barriers). Reductions pay the same log2(N) gather latency but inline.
func runHPXDist(g *graph.TDG, c Cluster) Result {
	var res Result
	n := len(g.Tasks)
	if n == 0 {
		return res
	}
	// Per-node core availability.
	coreFree := make([][]float64, c.Nodes)
	for i := range coreFree {
		coreFree[i] = make([]float64, c.CoresPerNode)
	}
	ready := make([]float64, n) // earliest start (deps + comm)
	indeg := make([]int, n)
	for i := range g.Tasks {
		indeg[i] = len(g.Tasks[i].Deps)
	}
	// Process tasks in topological order with a time-ordered ready list.
	type item struct {
		at   float64
		task int32
	}
	var q []item
	for i := range g.Tasks {
		if indeg[i] == 0 {
			q = append(q, item{commReadyAt(g, &g.Tasks[i], c, 0, &res), int32(i)})
		}
	}
	finish := make([]float64, n)
	for len(q) > 0 {
		// Pop the earliest-available task (deterministic tie-break on id).
		best := 0
		for i := 1; i < len(q); i++ {
			if q[i].at < q[best].at || (q[i].at == q[best].at && q[i].task < q[best].task) {
				best = i
			}
		}
		it := q[best]
		q[best] = q[len(q)-1]
		q = q[:len(q)-1]

		t := &g.Tasks[it.task]
		node := c.Owner(int(t.P), g.Prog.NP)
		// Earliest-free core on the owner node.
		cf := coreFree[node]
		core := 0
		for k := 1; k < len(cf); k++ {
			if cf[k] < cf[core] {
				core = k
			}
		}
		start := it.at
		if cf[core] > start {
			start = cf[core]
		}
		cost := c.taskCost(t)
		res.CompNs += cost
		end := start + cost
		cf[core] = end
		finish[it.task] = end
		if end > res.MakespanNs {
			res.MakespanNs = end
		}
		for _, s := range t.Succs {
			if dep := finish[it.task]; dep > ready[s] {
				ready[s] = dep
			}
			indeg[s]--
			if indeg[s] == 0 {
				st := &g.Tasks[s]
				at := commReadyAt(g, st, c, ready[s], &res)
				q = append(q, item{at, s})
			}
		}
	}
	return res
}

// commReadyAt returns when a task's remote inputs have arrived, given its
// dependencies resolved at depsAt, and accounts the traffic.
func commReadyAt(g *graph.TDG, t *graph.Task, c Cluster, depsAt float64, res *Result) float64 {
	rb := remoteInputBytes(g, t, c)
	if rb == 0 || c.Nodes == 1 {
		return depsAt
	}
	res.CommBytes += rb
	res.CommMsgs++
	return depsAt + c.NetLatencyNs + float64(rb)*c.NetNsPerByte
}

func log2ceil(n int) int {
	s := 0
	for 1<<s < n {
		s++
	}
	return s
}

// SweepRow is one point of the future-work scaling comparison.
type SweepRow struct {
	Nodes   int
	Mode    Mode
	Result  Result
	Speedup float64 // T(smallest node count, same mode) / T(this)
}

// Sweep executes g at each node count under both modes. Speedups are
// relative to the smallest node count of the same mode.
func Sweep(g *graph.TDG, base Cluster, nodeCounts []int) ([]SweepRow, error) {
	var rows []SweepRow
	baseT := map[Mode]float64{}
	sorted := append([]int(nil), nodeCounts...)
	sort.Ints(sorted)
	for _, nodes := range sorted {
		cl := base
		cl.Nodes = nodes
		for _, mode := range []Mode{MPIBSP, HPXDist} {
			r, err := Run(g, cl, mode)
			if err != nil {
				return nil, err
			}
			if _, ok := baseT[mode]; !ok {
				baseT[mode] = r.MakespanNs
			}
			row := SweepRow{Nodes: nodes, Mode: mode, Result: r}
			if r.MakespanNs > 0 {
				row.Speedup = baseT[mode] / r.MakespanNs
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
