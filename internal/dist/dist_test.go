package dist

import (
	"testing"

	"sparsetask/internal/graph"
	"sparsetask/internal/matgen"
	"sparsetask/internal/program"
	"sparsetask/internal/solver"
	"sparsetask/internal/sparse"
)

// lanczosGraph builds a banded FEM Lanczos graph: the structure distributed
// solvers are actually run on (graph/KKT inputs get reordered first).
func lanczosGraph(t *testing.T, rows, bc int) *graph.TDG {
	t.Helper()
	g := 2
	for 2*g*g*g < rows {
		g++
	}
	coo := matgen.FEM3D(g, g, g, 2, 7, 1)
	block := (coo.Rows + bc - 1) / bc
	l, err := solver.NewLanczos(coo.ToCSB(block), 10)
	if err != nil {
		t.Fatal(err)
	}
	return l.Graph()
}

func TestClusterValidate(t *testing.T) {
	if err := DefaultCluster(4).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultCluster(0)
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid cluster accepted")
	}
}

func TestOwnerMap(t *testing.T) {
	c := DefaultCluster(4)
	np := 64
	if c.Owner(0, np) != 0 || c.Owner(63, np) != 3 {
		t.Fatal("owner endpoints wrong")
	}
	prev := 0
	for p := 0; p < np; p++ {
		o := c.Owner(p, np)
		if o < prev {
			t.Fatal("owner map not monotone")
		}
		prev = o
	}
	if c.Owner(-1, np) != 0 {
		t.Fatal("reductions must live on rank 0")
	}
}

func TestSingleNodeModesAgreeOnComm(t *testing.T) {
	g := lanczosGraph(t, 4000, 64)
	for _, mode := range []Mode{MPIBSP, HPXDist} {
		r, err := Run(g, DefaultCluster(1), mode)
		if err != nil {
			t.Fatal(err)
		}
		if r.CommBytes != 0 || r.CommMsgs != 0 {
			t.Errorf("%s: single node must not communicate: %+v", mode, r)
		}
		if r.MakespanNs <= 0 {
			t.Errorf("%s: nonpositive makespan", mode)
		}
	}
}

func TestHPXDistOverlapsCommunication(t *testing.T) {
	// With communication overlap and no barriers, the async model must not
	// be slower than the bulk-synchronous one on multi-node runs.
	g := lanczosGraph(t, 8000, 128)
	for _, nodes := range []int{2, 4, 8} {
		cl := DefaultCluster(nodes)
		mpi, err := Run(g, cl, MPIBSP)
		if err != nil {
			t.Fatal(err)
		}
		hpx, err := Run(g, cl, HPXDist)
		if err != nil {
			t.Fatal(err)
		}
		if hpx.MakespanNs > mpi.MakespanNs*1.05 {
			t.Errorf("nodes=%d: hpx-dist %.0f ns slower than mpi+omp %.0f ns",
				nodes, hpx.MakespanNs, mpi.MakespanNs)
		}
	}
}

func TestDistributedScalingImproves(t *testing.T) {
	// Distributing a large graph must reduce makespan going from 1 to 4
	// nodes (the work is parallelizable and comm is subdominant).
	g := lanczosGraph(t, 60000, 256)
	for _, mode := range []Mode{MPIBSP, HPXDist} {
		r1, err := Run(g, DefaultCluster(1), mode)
		if err != nil {
			t.Fatal(err)
		}
		r4, err := Run(g, DefaultCluster(4), mode)
		if err != nil {
			t.Fatal(err)
		}
		if r4.MakespanNs >= r1.MakespanNs {
			t.Errorf("%s: 4 nodes (%.0f) not faster than 1 node (%.0f)",
				mode, r4.MakespanNs, r1.MakespanNs)
		}
	}
}

func TestCommunicationGrowsWithNodes(t *testing.T) {
	g := lanczosGraph(t, 8000, 128)
	prev := int64(-1)
	for _, nodes := range []int{2, 4, 8} {
		r, err := Run(g, DefaultCluster(nodes), MPIBSP)
		if err != nil {
			t.Fatal(err)
		}
		if r.CommBytes <= 0 {
			t.Fatalf("nodes=%d: no communication on a banded matrix?", nodes)
		}
		if r.CommBytes < prev {
			t.Errorf("comm bytes decreased going to %d nodes", nodes)
		}
		prev = r.CommBytes
	}
}

func TestSweepShape(t *testing.T) {
	g := lanczosGraph(t, 8000, 128)
	rows, err := Sweep(g, DefaultCluster(1), []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Nodes == 1 && r.Speedup != 1 {
			t.Errorf("baseline speedup %v, want 1", r.Speedup)
		}
		if r.Speedup <= 0 {
			t.Errorf("nonpositive speedup at %d nodes", r.Nodes)
		}
	}
}

func TestRunEmptyGraph(t *testing.T) {
	p := program.New(8, 4)
	g, err := graph.Build(p, map[program.OperandID]*sparse.CSB{}, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(g, DefaultCluster(2), HPXDist)
	if err != nil || r.MakespanNs != 0 {
		t.Fatalf("empty graph: %+v %v", r, err)
	}
}
