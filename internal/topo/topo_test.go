package topo

import "testing"

func TestByName(t *testing.T) {
	cases := []struct {
		name    string
		domains int
		ok      bool
	}{
		{"flat", 1, true},
		{"", 1, true},
		{"auto", 1, true},
		{"broadwell", 2, true},
		{"EPYC", 8, true},
		{"Broadwell", 2, true},
		{"numa", 0, false},
	}
	for _, c := range cases {
		tp, err := ByName(c.name)
		if c.ok != (err == nil) {
			t.Fatalf("ByName(%q): err = %v, want ok=%v", c.name, err, c.ok)
		}
		if c.ok && tp.Domains != c.domains {
			t.Errorf("ByName(%q).Domains = %d, want %d", c.name, tp.Domains, c.domains)
		}
	}
}

func TestDomainCountClamps(t *testing.T) {
	if d := EPYC().DomainCount(3); d != 3 {
		t.Errorf("epyc over 3 workers: %d domains, want 3", d)
	}
	if d := EPYC().DomainCount(128); d != 8 {
		t.Errorf("epyc over 128 workers: %d domains, want 8", d)
	}
	if d := (Topology{}).DomainCount(16); d != 1 {
		t.Errorf("zero topology: %d domains, want 1", d)
	}
	if d := Broadwell().DomainCount(0); d != 2 {
		t.Errorf("broadwell with unresolved workers: %d domains, want 2", d)
	}
}

func TestPartition(t *testing.T) {
	cases := []struct {
		tp      Topology
		workers int
		want    []int
	}{
		{EPYC(), 8, []int{1, 1, 1, 1, 1, 1, 1, 1}},
		{EPYC(), 10, []int{2, 2, 1, 1, 1, 1, 1, 1}},
		{Broadwell(), 7, []int{4, 3}},
		{Flat(), 4, []int{4}},
		{Topology{}, 5, []int{5}},
		{EPYC(), 3, []int{1, 1, 1}},
	}
	for _, c := range cases {
		got := c.tp.Partition(c.workers)
		if len(got) != len(c.want) {
			t.Fatalf("%v.Partition(%d) = %v, want %v", c.tp, c.workers, got, c.want)
		}
		sum := 0
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("%v.Partition(%d) = %v, want %v", c.tp, c.workers, got, c.want)
			}
			sum += got[i]
		}
		if sum != c.workers {
			t.Fatalf("%v.Partition(%d) sums to %d", c.tp, c.workers, sum)
		}
	}
}

func TestString(t *testing.T) {
	if s := EPYC().String(); s != "epyc(8d)" {
		t.Errorf("String = %q", s)
	}
	if s := (Topology{}).String(); s != "flat(1d)" {
		t.Errorf("zero String = %q", s)
	}
}
