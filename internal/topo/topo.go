// Package topo models machine topology for locality-aware scheduling: a
// worker pool grouped into locality domains (NUMA nodes or CCX clusters).
// Named profiles mirror the paper's two evaluation machines — Broadwell
// (2 NUMA domains) and EPYC (8 domains of 4-core CCXs) — so exec-mode runs on
// any host can reproduce the *shape* of the paper's locality hierarchy even
// when the host itself is flat.
//
// A Topology is a pure shape: it says how many domains workers divide into,
// not how many workers there are. The scheduler fits the shape to its worker
// count with Partition. The zero value is a flat single-domain topology, so
// existing callers that never set a topology keep their old behavior.
package topo

import (
	"fmt"
	"strings"
)

// Topology describes how workers group into locality domains. Domains <= 1
// means flat (no locality hierarchy); the zero value is flat.
type Topology struct {
	// Name is the profile name ("flat", "broadwell", "epyc", "auto").
	Name string
	// Domains is the number of locality domains the profile prescribes.
	// Schedulers clamp it to their worker count (a domain never goes empty).
	Domains int
}

// Flat returns the single-domain topology: uniform stealing, no hierarchy.
func Flat() Topology { return Topology{Name: "flat", Domains: 1} }

// Broadwell returns the paper's 2-socket Xeon E5-2680v4 shape: two NUMA
// domains (§2, "Broadwell").
func Broadwell() Topology { return Topology{Name: "broadwell", Domains: 2} }

// EPYC returns the paper's 2-socket EPYC 7501 shape: eight NUMA domains, each
// a cluster of 4-core CCXs sharing an L3 slice (§2, "EPYC").
func EPYC() Topology { return Topology{Name: "epyc", Domains: 8} }

// Auto returns the auto-detected host profile. Pure Go has no portable NUMA
// probe, so detection is conservative: a flat single-domain topology that
// matches whatever worker count the scheduler chooses. Named "auto" so
// configuration and metrics record that detection (not an explicit profile)
// picked the shape.
func Auto() Topology { return Topology{Name: "auto", Domains: 1} }

// ByName resolves a profile name (case-insensitive). Valid names: "flat",
// "auto", "broadwell", "epyc". The empty string resolves to flat.
func ByName(name string) (Topology, error) {
	switch strings.ToLower(name) {
	case "", "flat":
		return Flat(), nil
	case "auto":
		return Auto(), nil
	case "broadwell":
		return Broadwell(), nil
	case "epyc":
		return EPYC(), nil
	}
	return Topology{}, fmt.Errorf("topo: unknown profile %q (valid: flat, auto, broadwell, epyc)", name)
}

// String renders the profile for logs and metrics.
func (t Topology) String() string {
	name := t.Name
	if name == "" {
		name = "flat"
	}
	d := t.Domains
	if d < 1 {
		d = 1
	}
	return fmt.Sprintf("%s(%dd)", name, d)
}

// DomainCount returns the effective domain count for a pool of `workers`
// workers: the profile's domain count clamped to [1, workers] so no domain
// is empty.
func (t Topology) DomainCount(workers int) int {
	d := t.Domains
	if d < 1 {
		d = 1
	}
	if workers >= 1 && d > workers {
		d = workers
	}
	return d
}

// Partition splits `workers` workers into per-domain counts: contiguous
// worker ranges, sizes as even as possible with the remainder spread over the
// leading domains (mirroring how cores map to NUMA nodes: domain 0 holds
// workers [0, counts[0]), domain 1 the next counts[1], and so on).
func (t Topology) Partition(workers int) []int {
	if workers < 1 {
		workers = 1
	}
	d := t.DomainCount(workers)
	counts := make([]int, d)
	base, rem := workers/d, workers%d
	for i := range counts {
		counts[i] = base
		if i < rem {
			counts[i]++
		}
	}
	return counts
}
