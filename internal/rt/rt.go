// Package rt implements the four runtime backends under evaluation, all
// executing the *same* task-dependency graph with the same kernels and
// differing only in scheduling — the paper's controlled-comparison setup:
//
//   - BSP: bulk-synchronous baseline (libcsr/libcsb analog) — static chunk
//     assignment per kernel with a barrier between kernels, no stealing.
//   - DeepSparse: OpenMP-task analog — whole-graph dependency counting,
//     depth-first (LIFO) local queues with work stealing.
//   - HPX: futures/dataflow analog — FIFO queues, work stealing, optional
//     NUMA-domain-aware placement hints.
//   - Regent: region/privilege analog — tasks issued in program order by a
//     serial dependence-analysis pipeline with per-task analysis cost,
//     batched for index launches and memoized under dynamic tracing.
package rt

import (
	"context"
	"runtime"
	"time"

	"sparsetask/internal/graph"
	"sparsetask/internal/kernels"
	"sparsetask/internal/program"
	"sparsetask/internal/sched"
	"sparsetask/internal/topo"
	"sparsetask/internal/trace"
)

// Options configure a runtime instance.
type Options struct {
	// Workers is the number of compute workers; 0 means GOMAXPROCS.
	Workers int
	// Recorder, when non-nil, receives one event per executed task.
	Recorder *trace.Recorder
	// Topo selects the machine-topology profile for locality-aware
	// scheduling in the stealing backends: tasks carry a domain hint derived
	// from their CSB row band, workers steal hierarchically (own domain
	// before remote), and the backend tracks locality counters. The zero
	// value is flat — uniform stealing, no hints, no behavior change.
	Topo topo.Topology
	// NUMADomains enables domain-aware scheduling for the HPX backend when
	// > 1 (the paper's scheduling-hint optimization, §5.1). Deprecated in
	// favor of Topo, which it maps to when Topo is flat.
	NUMADomains int
	// AnalysisCost is the Regent dependence-analysis work per task, in
	// spin-loop iterations. 0 selects a default calibrated to make analysis
	// visible but not dominant at small task counts — the paper's observed
	// Regent behavior.
	AnalysisCost int
	// DynamicTracing enables Regent's memoized task-graph replay (Lee et
	// al., SC18): repeated executions of the same TDG skip most analysis.
	DynamicTracing bool
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Runtime executes TDGs. Run performs one full execution of the graph
// (one solver iteration); iterative solvers call Run repeatedly with a
// barrier between calls, as all three frameworks do in the paper.
//
// Run returns nil after every task executed, or ctx's error when the
// context is cancelled mid-run. Cancellation is observed at task
// granularity: in-flight kernels finish, no new task starts, and the
// store is left partially updated — callers must discard it. A nil ctx
// behaves like context.Background().
//
// Implementations are safe for concurrent Run calls from multiple
// goroutines as long as each call uses its own TDG and store — the
// serving layer's access pattern (one Runtime per backend, many jobs).
type Runtime interface {
	Name() string
	Run(ctx context.Context, g *graph.TDG, st *program.Store) error
}

// PreparedRun is a reusable execution handle binding one runtime to one
// (TDG, store) pair. Run executes the graph once, with the same semantics as
// Runtime.Run; unlike Runtime.Run it may reuse scheduler state across calls,
// so it must not be invoked concurrently with itself. Close releases any
// resources (e.g. a persistent worker pool) and must be called exactly once
// when the handle is no longer needed.
type PreparedRun interface {
	Run(ctx context.Context) error
	Close()
}

// Preparer is implemented by runtimes that can amortize per-Run setup
// (dependency counts, queues, worker pools) across repeated executions of
// the same graph — the iterative-solver access pattern.
type Preparer interface {
	Prepare(g *graph.TDG, st *program.Store) PreparedRun
}

// LocalityReporter is implemented by runtimes and prepared runs that track
// scheduler locality counters. A runtime's Locality is its lifetime
// aggregate (folded in as executions close); a PreparedRun's is the live
// count for that handle. Safe to call concurrently with runs on the runtime
// form; on a PreparedRun only between Run calls.
type LocalityReporter interface {
	Locality() sched.LocalityStats
}

// PrepareRun returns a reusable execution handle for g on r. Runtimes that
// implement Preparer get their amortized path; anything else falls back to
// calling r.Run per iteration, so callers can use this unconditionally.
func PrepareRun(r Runtime, g *graph.TDG, st *program.Store) PreparedRun {
	if p, ok := r.(Preparer); ok {
		return p.Prepare(g, st)
	}
	return &genericPrepared{r: r, g: g, st: st}
}

type genericPrepared struct {
	r  Runtime
	g  *graph.TDG
	st *program.Store
}

// Run delegates to the runtime's one-shot path.
//
//sparselint:coldcall unamortized fallback: backends reached here rebuild per-run state (BSP plans, Legion-style dependence analysis) whose cost is the runtime overhead the benchmarks measure
func (p *genericPrepared) Run(ctx context.Context) error { return p.r.Run(ctx, p.g, p.st) }

func (p *genericPrepared) Close() {}

// executorRun adapts a persistent sched.Executor to PreparedRun; it is the
// shared Prepare implementation for the stealing backends. On Close the
// executor's locality counters fold into the owning backend's lifetime
// accumulator.
type executorRun struct {
	e   *sched.Executor
	acc *sched.LocalityAccumulator
}

func newExecutorRun(g *graph.TDG, body func(int, int32), opt sched.Options, acc *sched.LocalityAccumulator) *executorRun {
	return &executorRun{e: sched.NewExecutor(len(g.Tasks), indegrees(g),
		func(i int32) []int32 { return g.Tasks[i].Succs }, g.Roots, body, opt), acc: acc}
}

func (p *executorRun) Run(ctx context.Context) error { return p.e.Run(ctx) }

// Locality implements LocalityReporter with the live executor counters.
func (p *executorRun) Locality() sched.LocalityStats { return p.e.Stats() }

func (p *executorRun) Close() {
	if p.acc != nil {
		p.acc.Add(p.e.Stats())
	}
	p.e.Close()
}

// epochNow returns nanoseconds since the runtime's epoch.
func epochNow(epoch time.Time) int64 { return time.Since(epoch).Nanoseconds() }

// taskBody returns the task execution closure, wrapping kernels.Exec with
// trace recording when enabled.
func taskBody(g *graph.TDG, st *program.Store, rec *trace.Recorder, epoch time.Time) func(w int, id int32) {
	if rec == nil {
		return func(w int, id int32) {
			kernels.Exec(g, &g.Tasks[id], st)
		}
	}
	return func(w int, id int32) {
		t := &g.Tasks[id]
		s := epochNow(epoch)
		kernels.Exec(g, t, st)
		e := epochNow(epoch)
		rec.Record(w, trace.Event{
			Task: id, Call: t.Call,
			Kernel: g.Prog.Calls[t.Call].Name,
			Start:  s, End: e,
		})
	}
}

// applyTopo wires a topology profile into executor options: the profile
// itself plus the graph's row-band→domain affinity map sized to the
// effective domain count (nil when the shape is flat, disabling routing
// entirely).
func applyTopo(opt *sched.Options, tp topo.Topology, g *graph.TDG) {
	opt.Topo = tp
	opt.Affinity = g.DomainAffinity(tp.DomainCount(opt.Workers))
}

// indegrees extracts the initial dependency counts of a TDG.
func indegrees(g *graph.TDG) []int32 {
	ind := make([]int32, len(g.Tasks))
	for i := range g.Tasks {
		ind[i] = int32(len(g.Tasks[i].Deps))
	}
	return ind
}
