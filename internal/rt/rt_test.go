package rt

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sparsetask/internal/graph"
	"sparsetask/internal/kernels"
	"sparsetask/internal/program"
	"sparsetask/internal/sparse"
	"sparsetask/internal/topo"
	"sparsetask/internal/trace"
)

// testProblem builds a Listing-1-style program (SpMM → XY → XTY → norm →
// scale) over a random symmetric matrix, plus a filled store factory so each
// runtime execution starts from identical inputs.
func testProblem(t *testing.T, m, block, n int, seed int64) (*graph.TDG, func() *program.Store) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	coo := sparse.NewCOO(m, m, m*8)
	for i := 0; i < m; i++ {
		coo.Append(int32(i), int32(i), 4+rng.Float64())
	}
	for k := 0; k < m*3; k++ {
		i, j := int32(rng.Intn(m)), int32(rng.Intn(m))
		if i == j {
			continue
		}
		v := rng.NormFloat64()
		coo.Append(i, j, v)
		coo.Append(j, i, v)
	}
	coo.Compact()
	csb := coo.ToCSB(block)

	p := program.New(m, block)
	A := p.Sparse("A")
	X := p.Vec("X", n)
	Y := p.Vec("Y", n)
	Z := p.Small("Z", n, n)
	Q := p.Vec("Q", n)
	P := p.Small("P", n, n)
	nrm := p.Scalar("nrm")
	W := p.Vec("W", n)
	p.SpMM(Y, A, X)
	p.Gemm(Q, 1, Y, Z, 0).MarkIndexLaunch()
	p.GemmT(P, Y, Q)
	p.Norm(nrm, Y)
	p.ScaleInv(W, Y, nrm)
	p.Axpby(X, 0.5, X, 0.5, W)

	g, err := graph.Build(p, map[program.OperandID]*sparse.CSB{A: csb}, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}

	xInit := make([]float64, m*n)
	zInit := make([]float64, n*n)
	for i := range xInit {
		xInit[i] = rng.NormFloat64()
	}
	for i := range zInit {
		zInit[i] = rng.NormFloat64()
	}
	mk := func() *program.Store {
		st := program.NewStore(p)
		st.SetSparse(A, csb)
		copy(st.Vec[X], xInit)
		copy(st.Small[Z], zInit)
		return st
	}
	return g, mk
}

func storesEqual(t *testing.T, name string, a, b *program.Store) {
	t.Helper()
	for op := range a.Vec {
		if a.Vec[op] == nil {
			continue
		}
		for i := range a.Vec[op] {
			if a.Vec[op][i] != b.Vec[op][i] {
				t.Fatalf("%s: vec operand %d element %d: %v != %v", name, op, i, a.Vec[op][i], b.Vec[op][i])
			}
		}
	}
	for op := range a.Small {
		if a.Small[op] == nil {
			continue
		}
		for i := range a.Small[op] {
			if a.Small[op][i] != b.Small[op][i] {
				t.Fatalf("%s: small operand %d element %d differs", name, op, i)
			}
		}
	}
	for op := range a.Scalars {
		if a.Scalars[op] != b.Scalars[op] {
			t.Fatalf("%s: scalar %d: %v != %v", name, op, a.Scalars[op], b.Scalars[op])
		}
	}
}

func allRuntimes(opt Options) []Runtime {
	return []Runtime{
		NewBSP(opt),
		NewDeepSparse(opt),
		NewHPX(opt),
		NewRegent(opt),
	}
}

func TestAllRuntimesMatchSequential(t *testing.T) {
	g, mk := testProblem(t, 60, 13, 3, 1)
	ref := mk()
	kernels.RunSequential(g, ref)
	for _, r := range allRuntimes(Options{Workers: 4}) {
		st := mk()
		r.Run(context.Background(), g, st)
		storesEqual(t, r.Name(), ref, st)
	}
}

func TestRuntimesRepeatedIterations(t *testing.T) {
	// Iterative execution (the solver pattern): run the same graph 5 times;
	// every runtime must agree with sequential at the end. The Axpby back
	// into X makes iterations actually feed forward.
	g, mk := testProblem(t, 40, 8, 2, 2)
	ref := mk()
	for it := 0; it < 5; it++ {
		kernels.RunSequential(g, ref)
	}
	for _, r := range allRuntimes(Options{Workers: 3}) {
		st := mk()
		for it := 0; it < 5; it++ {
			r.Run(context.Background(), g, st)
		}
		storesEqual(t, r.Name(), ref, st)
	}
}

func TestHPXNUMADomains(t *testing.T) {
	g, mk := testProblem(t, 60, 6, 2, 3)
	ref := mk()
	kernels.RunSequential(g, ref)
	r := NewHPX(Options{Workers: 4, NUMADomains: 2})
	st := mk()
	r.Run(context.Background(), g, st)
	storesEqual(t, "hpx-numa", ref, st)
}

func TestTopologyRuntimesMatchSequential(t *testing.T) {
	// Multi-domain topologies change only where tasks run, never results:
	// every stealing backend must stay bit-identical to sequential on both
	// paper profiles, repeated iterations included. The locality reporters
	// must also account for every executed task.
	for _, tp := range []topo.Topology{topo.Broadwell(), topo.EPYC()} {
		g, mk := testProblem(t, 60, 6, 2, 9)
		ref := mk()
		for it := 0; it < 3; it++ {
			kernels.RunSequential(g, ref)
		}
		for _, r := range []Runtime{
			NewDeepSparse(Options{Workers: 4, Topo: tp}),
			NewHPX(Options{Workers: 4, Topo: tp}),
			NewRegent(Options{Workers: 4, Topo: tp}),
		} {
			st := mk()
			for it := 0; it < 3; it++ {
				if err := r.Run(context.Background(), g, st); err != nil {
					t.Fatalf("%s/%s: %v", r.Name(), tp, err)
				}
			}
			storesEqual(t, r.Name()+"/"+tp.String(), ref, st)
			lr, ok := r.(LocalityReporter)
			if !ok {
				t.Fatalf("%s does not report locality", r.Name())
			}
			s := lr.Locality()
			if got, want := s.Tasks(), int64(3*len(g.Tasks)); got != want {
				t.Errorf("%s/%s: locality counted %d tasks, want %d", r.Name(), tp, got, want)
			}
		}
	}
}

func TestPreparedRunReportsLocality(t *testing.T) {
	g, mk := testProblem(t, 60, 6, 2, 10)
	r := NewDeepSparse(Options{Workers: 4, Topo: topo.EPYC()})
	p := r.Prepare(g, mk())
	lr, ok := p.(LocalityReporter)
	if !ok {
		t.Fatal("prepared run does not report locality")
	}
	for it := 0; it < 2; it++ {
		if err := p.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := lr.Locality().Tasks(), int64(2*len(g.Tasks)); got != want {
		t.Errorf("prepared-run locality counted %d tasks, want %d", got, want)
	}
	p.Close()
	// Close folds the handle's counters into the runtime's lifetime total.
	if got, want := r.Locality().Tasks(), int64(2*len(g.Tasks)); got != want {
		t.Errorf("runtime lifetime locality counted %d tasks, want %d", got, want)
	}
}

func TestRegentIndexLaunchSkipsAnalysis(t *testing.T) {
	g, mk := testProblem(t, 60, 6, 2, 4)
	r := NewRegent(Options{Workers: 2, AnalysisCost: 10})
	r.Run(context.Background(), g, mk())
	withIL := r.LastAnalyzed
	if withIL >= len(g.Tasks) {
		t.Errorf("analyzed %d of %d tasks; index launch should have skipped some", withIL, len(g.Tasks))
	}
	// The XY call was marked as an index launch with NP=10 partitions: 9 of
	// its 10 tasks skip analysis.
	if want := len(g.Tasks) - (g.Prog.NP - 1); withIL != want {
		t.Errorf("analyzed = %d, want %d", withIL, want)
	}
}

func TestRegentDynamicTracing(t *testing.T) {
	g, mk := testProblem(t, 40, 8, 2, 5)
	r := NewRegent(Options{Workers: 2, AnalysisCost: 10, DynamicTracing: true})
	st := mk()
	r.Run(context.Background(), g, st)
	first := r.LastAnalyzed
	r.Run(context.Background(), g, st)
	if r.LastAnalyzed != 0 {
		t.Errorf("replay analyzed %d tasks, want 0 (memoized)", r.LastAnalyzed)
	}
	if first == 0 {
		t.Error("first run analyzed 0 tasks")
	}
	// Numerics must still match two sequential iterations.
	ref := mk()
	kernels.RunSequential(g, ref)
	kernels.RunSequential(g, ref)
	storesEqual(t, "regent-tracing", ref, st)
}

func TestTraceRecorderCapturesAllTasks(t *testing.T) {
	for _, mkrt := range []func(Options) Runtime{
		func(o Options) Runtime { return NewBSP(o) },
		func(o Options) Runtime { return NewDeepSparse(o) },
		func(o Options) Runtime { return NewHPX(o) },
		func(o Options) Runtime { return NewRegent(o) },
	} {
		g, mk := testProblem(t, 40, 8, 2, 6)
		rec := trace.NewRecorder(3)
		r := mkrt(Options{Workers: 3, Recorder: rec})
		r.Run(context.Background(), g, mk())
		evs := rec.Events()
		if len(evs) != len(g.Tasks) {
			t.Errorf("%s: recorded %d events, want %d", r.Name(), len(evs), len(g.Tasks))
		}
		for _, e := range evs {
			if e.End < e.Start {
				t.Errorf("%s: event with End < Start", r.Name())
			}
			if e.Kernel == "" {
				t.Errorf("%s: event missing kernel name", r.Name())
			}
		}
	}
}

func TestBSPBarrierOrdering(t *testing.T) {
	// In BSP, no task of call k+1 may start before every task of call k
	// finishes. Check via the trace.
	g, mk := testProblem(t, 60, 6, 2, 7)
	rec := trace.NewRecorder(4)
	r := NewBSP(Options{Workers: 4, Recorder: rec})
	r.Run(context.Background(), g, mk())
	evs := rec.Events()
	// End of the last event of call c must precede start of first of c+1...
	// except serial tasks share worker time; compare per call boundaries.
	lastEnd := map[int32]int64{}
	firstStart := map[int32]int64{}
	for _, e := range evs {
		if _, ok := firstStart[e.Call]; !ok || e.Start < firstStart[e.Call] {
			firstStart[e.Call] = e.Start
		}
		if e.End > lastEnd[e.Call] {
			lastEnd[e.Call] = e.End
		}
	}
	for c := int32(0); c < int32(len(g.Prog.Calls))-1; c++ {
		if _, ok := lastEnd[c]; !ok {
			continue
		}
		if firstStart[c+1] < lastEnd[c] {
			t.Errorf("call %d started at %d before call %d ended at %d (barrier violated)",
				c+1, firstStart[c+1], c, lastEnd[c])
		}
	}
}

func TestScaleInvProducesUnitNorm(t *testing.T) {
	// End-to-end sanity on the scalar-dependent kernel chain under the most
	// aggressive scheduler.
	g, mk := testProblem(t, 60, 13, 3, 8)
	r := NewDeepSparse(Options{Workers: 4})
	st := mk()
	r.Run(context.Background(), g, st)
	// W = Y/||Y|| so ||W|| == 1.
	var s float64
	for _, v := range st.Vec[7] { // W is operand 7 in construction order
		s += v * v
	}
	if math.Abs(math.Sqrt(s)-1) > 1e-10 {
		t.Errorf("||W|| = %v, want 1", math.Sqrt(s))
	}
}

func TestTaskPanicPropagatesToCaller(t *testing.T) {
	// A panicking small step must surface on the Run caller's goroutine for
	// every runtime, without deadlocking or leaking workers.
	build := func() (*graph.TDG, *program.Store) {
		p := program.New(16, 4)
		x := p.Vec("x", 1)
		s := p.Scalar("s")
		p.Dot(s, x, x)
		p.SmallStep("boom", func(*program.Store) { panic("kaboom") },
			[]program.OperandID{s}, []program.OperandID{s})
		g, err := graph.Build(p, nil, graph.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return g, program.NewStore(p)
	}
	for _, r := range allRuntimes(Options{Workers: 3}) {
		g, st := build()
		func() {
			defer func() {
				rec := recover()
				if rec == nil {
					t.Errorf("%s: panic did not propagate", r.Name())
					return
				}
				if rec != "kaboom" {
					t.Errorf("%s: panic value %v, want kaboom", r.Name(), rec)
				}
			}()
			r.Run(context.Background(), g, st)
		}()
	}
	// The process must remain healthy: a fresh run on a healthy graph works.
	g, mk := testProblem(t, 40, 8, 2, 99)
	for _, r := range allRuntimes(Options{Workers: 3}) {
		r.Run(context.Background(), g, mk())
	}
}

func TestRunPreCancelledContext(t *testing.T) {
	// A context cancelled before Run starts must stop every runtime without
	// executing the full graph.
	for _, r := range allRuntimes(Options{Workers: 3}) {
		g, mk := testProblem(t, 60, 6, 2, 21)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if err := r.Run(ctx, g, mk()); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: Run with pre-cancelled ctx returned %v, want context.Canceled", r.Name(), err)
		}
	}
}

func TestRunMidExecutionCancellation(t *testing.T) {
	// Cancel from inside a running task: a serial chain of small steps where
	// step 2 cancels the context. Every runtime must stop short of the end of
	// the chain and report the context error. The post-cancel steps sleep a
	// little so the shutdown path has time to land even on a loaded machine.
	for _, mkrt := range []func(Options) Runtime{
		func(o Options) Runtime { return NewBSP(o) },
		func(o Options) Runtime { return NewDeepSparse(o) },
		func(o Options) Runtime { return NewHPX(o) },
		func(o Options) Runtime { return NewRegent(o) },
	} {
		r := mkrt(Options{Workers: 3})
		ctx, cancel := context.WithCancel(context.Background())
		const steps = 32
		var ran atomic.Int32
		p := program.New(16, 4)
		s := p.Scalar("s")
		x := p.Vec("x", 1)
		p.Dot(s, x, x)
		for i := 0; i < steps; i++ {
			i := i
			p.SmallStep(fmt.Sprintf("step%d", i), func(*program.Store) {
				ran.Add(1)
				if i == 2 {
					cancel()
					time.Sleep(100 * time.Millisecond)
				} else if i > 2 {
					time.Sleep(5 * time.Millisecond)
				}
			}, []program.OperandID{s}, []program.OperandID{s})
		}
		g, err := graph.Build(p, nil, graph.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		err = r.Run(ctx, g, program.NewStore(p))
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: Run returned %v, want context.Canceled", r.Name(), err)
		}
		if n := ran.Load(); n >= steps {
			t.Errorf("%s: all %d steps ran despite mid-execution cancel", r.Name(), n)
		}
	}
}

func TestConcurrentRunSingleRuntimeInstance(t *testing.T) {
	// The serving layer's access pattern: one Runtime instance per backend,
	// shared by many concurrently executing jobs, each with its own TDG and
	// store. Must be clean under -race and numerically identical to the
	// sequential reference for every job.
	const jobs = 6
	for _, r := range allRuntimes(Options{Workers: 2}) {
		// Regent with tracing exercises its shared analyzed-map state too.
		graphs := make([]*graph.TDG, jobs)
		refs := make([]*program.Store, jobs)
		stores := make([]*program.Store, jobs)
		for j := 0; j < jobs; j++ {
			g, mk := testProblem(t, 40, 8, 2, int64(100+j))
			graphs[j] = g
			refs[j] = mk()
			kernels.RunSequential(g, refs[j])
			stores[j] = mk()
		}
		var wg sync.WaitGroup
		errs := make([]error, jobs)
		for j := 0; j < jobs; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				errs[j] = r.Run(context.Background(), graphs[j], stores[j])
			}(j)
		}
		wg.Wait()
		for j := 0; j < jobs; j++ {
			if errs[j] != nil {
				t.Fatalf("%s: job %d: %v", r.Name(), j, errs[j])
			}
			storesEqual(t, fmt.Sprintf("%s-job%d", r.Name(), j), refs[j], stores[j])
		}
	}
	// Regent's per-TDG memoization state under concurrent reuse.
	r := NewRegent(Options{Workers: 2, DynamicTracing: true, AnalysisCost: 10})
	g, mk := testProblem(t, 40, 8, 2, 200)
	var wg sync.WaitGroup
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Distinct graphs per goroutine would be the server pattern; the
			// same graph from many goroutines additionally stresses the
			// analyzed-map bookkeeping, so build a private problem per job.
			g2, mk2 := testProblem(t, 30, 6, 2, 201)
			if err := r.Run(context.Background(), g2, mk2()); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if err := r.Run(context.Background(), g, mk()); err != nil {
		t.Fatal(err)
	}
}
