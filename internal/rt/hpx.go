package rt

import (
	"context"
	"time"

	"sparsetask/internal/graph"
	"sparsetask/internal/program"
	"sparsetask/internal/sched"
	"sparsetask/internal/topo"
)

// HPX is the futures/dataflow analog: tasks become ready as their input
// futures resolve and are drained FIFO with work stealing, yielding the
// breadth-first, "shuffled" execution order the paper observes in HPX flow
// graphs (Fig. 13). With a multi-domain topology (Options.Topo, or the
// legacy NUMADomains count), ready tasks carry a locality hint mapping their
// data partition to a domain and are routed to workers in that domain — the
// scheduling-hint optimization that bought HPX ~50% on EPYC (§5.1, "Other
// Attempts").
type HPX struct {
	opt   Options
	epoch time.Time
	acc   sched.LocalityAccumulator
}

// NewHPX returns the HPX-style runtime.
func NewHPX(opt Options) *HPX { return &HPX{opt: opt, epoch: time.Now()} }

// Name implements Runtime.
func (r *HPX) Name() string { return "hpx" }

// Locality implements LocalityReporter: lifetime counters across every
// execution this runtime has closed.
func (r *HPX) Locality() sched.LocalityStats { return r.acc.Snapshot() }

func (r *HPX) schedOptions(g *graph.TDG) sched.Options {
	opt := sched.Options{
		Workers:    r.opt.workers(),
		Discipline: sched.FIFO,
	}
	tp := r.opt.Topo
	if tp.DomainCount(opt.Workers) <= 1 && r.opt.NUMADomains > 1 {
		// Legacy NUMADomains callers get an anonymous profile of that shape.
		tp = topo.Topology{Name: "numa", Domains: r.opt.NUMADomains}
	}
	applyTopo(&opt, tp, g)
	return opt
}

// Run implements Runtime.
func (r *HPX) Run(ctx context.Context, g *graph.TDG, st *program.Store) error {
	p := r.Prepare(g, st)
	defer p.Close()
	return p.Run(ctx)
}

// Prepare implements Preparer: scheduler state and the worker pool persist
// across PreparedRun.Run calls.
func (r *HPX) Prepare(g *graph.TDG, st *program.Store) PreparedRun {
	body := taskBody(g, st, r.opt.Recorder, r.epoch)
	return newExecutorRun(g, body, r.schedOptions(g), &r.acc)
}
