package rt

import (
	"context"
	"time"

	"sparsetask/internal/graph"
	"sparsetask/internal/program"
	"sparsetask/internal/sched"
)

// HPX is the futures/dataflow analog: tasks become ready as their input
// futures resolve and are drained FIFO with work stealing, yielding the
// breadth-first, "shuffled" execution order the paper observes in HPX flow
// graphs (Fig. 13). With NUMADomains > 1, ready tasks carry a locality hint
// mapping their data partition to a domain and are routed to workers in that
// domain — the scheduling-hint optimization that bought HPX ~50% on EPYC
// (§5.1, "Other Attempts").
type HPX struct {
	opt   Options
	epoch time.Time
}

// NewHPX returns the HPX-style runtime.
func NewHPX(opt Options) *HPX { return &HPX{opt: opt, epoch: time.Now()} }

// Name implements Runtime.
func (r *HPX) Name() string { return "hpx" }

func (r *HPX) schedOptions(g *graph.TDG) sched.Options {
	opt := sched.Options{
		Workers:    r.opt.workers(),
		Discipline: sched.FIFO,
	}
	if r.opt.NUMADomains > 1 {
		dom := r.opt.NUMADomains
		np := g.Prog.NP
		opt.Domains = dom
		opt.Affinity = func(t int32) int {
			p := g.Tasks[t].P
			if p < 0 {
				return -1 // reductions have no single home partition
			}
			// Contiguous partition→domain map, mirroring first-touch page
			// placement of block-partitioned vectors.
			return int(int64(p) * int64(dom) / int64(np))
		}
	}
	return opt
}

// Run implements Runtime.
func (r *HPX) Run(ctx context.Context, g *graph.TDG, st *program.Store) error {
	body := taskBody(g, st, r.opt.Recorder, r.epoch)
	return sched.RunGraph(ctx, len(g.Tasks), indegrees(g),
		func(i int32) []int32 { return g.Tasks[i].Succs },
		g.Roots, body, r.schedOptions(g))
}

// Prepare implements Preparer: scheduler state and the worker pool persist
// across PreparedRun.Run calls.
func (r *HPX) Prepare(g *graph.TDG, st *program.Store) PreparedRun {
	body := taskBody(g, st, r.opt.Recorder, r.epoch)
	return newExecutorRun(g, body, r.schedOptions(g))
}
