package rt

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sparsetask/internal/graph"
	"sparsetask/internal/program"
	"sparsetask/internal/sched"
)

// Regent is the region/privilege analog of the Regent/Legion runtime: a
// serial dependence-analysis pipeline walks the tasks in program order,
// spending per-task analysis work before a task may issue, and workers drain
// a shared FIFO ready queue. Two Regent-specific mechanisms are modeled:
//
//   - index launches: calls marked IndexLaunch are analyzed as one batch, so
//     per-task analysis is skipped after the first task of the call;
//   - dynamic tracing: when enabled, re-executions of an already-analyzed
//     TDG replay the memoized analysis at a fraction of the cost.
//
// The serial analysis pipeline is the mechanism behind the paper's
// observation that Regent degrades sharply as task counts grow (§5.4,
// "Regent has scaling issues with regard to creation or scheduling of large
// number of tasks").
//
// With a multi-domain Options.Topo, the shared ready queue splits into one
// FIFO per locality domain (Legion's per-node ready queues): issued tasks
// enqueue to their row band's home domain and workers drain their own
// domain's queue before pulling from the others.
type Regent struct {
	opt   Options
	epoch time.Time
	acc   sched.LocalityAccumulator

	mu       sync.Mutex
	analyzed map[*graph.TDG]bool

	// LastAnalyzed counts tasks that paid full analysis in the most recent
	// Run, for tests and the ablation benches. Guarded by mu during Run;
	// read it only after Run returns.
	LastAnalyzed int
}

// defaultAnalysisCost is the spin-loop iteration count per analyzed task.
// Calibrated so analysis is on the order of a microsecond per task: invisible
// next to a coarse tile task, dominant when a matrix is over-decomposed into
// tens of thousands of tiny tasks.
const defaultAnalysisCost = 600

// NewRegent returns the Regent-style runtime.
func NewRegent(opt Options) *Regent {
	return &Regent{opt: opt, epoch: time.Now(), analyzed: make(map[*graph.TDG]bool)}
}

// Name implements Runtime.
func (r *Regent) Name() string { return "regent" }

// Locality implements LocalityReporter: lifetime counters across completed
// multi-domain runs (flat runs use one shared queue and count nothing).
func (r *Regent) Locality() sched.LocalityStats { return r.acc.Snapshot() }

// Run implements Runtime. Cancellation stops both the analysis pipeline and
// the workers at task granularity.
func (r *Regent) Run(ctx context.Context, g *graph.TDG, st *program.Store) error {
	if ctx == nil {
		ctx = context.Background()
	}
	nw := r.opt.workers()
	body := taskBody(g, st, r.opt.Recorder, r.epoch)
	n := len(g.Tasks)
	if n == 0 {
		return ctx.Err()
	}
	cost := r.opt.AnalysisCost
	if cost <= 0 {
		cost = defaultAnalysisCost
	}
	replay := false
	if r.opt.DynamicTracing {
		r.mu.Lock()
		replay = r.analyzed[g]
		r.analyzed[g] = true
		r.mu.Unlock()
	}

	// remain[i] = deps + 1: the extra count is released by the analysis
	// pipeline when the task is issued, so no task starts before its
	// program-order analysis completes — Legion semantics.
	remain := make([]atomic.Int32, n)
	for i := range g.Tasks {
		remain[i].Store(int32(len(g.Tasks[i].Deps)) + 1)
	}

	// Ready-task distribution. Flat topology: one shared FIFO — the classic
	// Legion ready queue. Multi-domain: one FIFO per locality domain plus a
	// token semaphore; release enqueues to the task's home domain *before*
	// signalling the token, so a worker that holds a token is guaranteed a
	// task currently sits in some queue (its scan retries until it finds
	// one). Every channel is buffered to n, so release never blocks.
	nd := r.opt.Topo.DomainCount(nw)
	homeDom := g.DomainAffinity(nd) // nil when nd <= 1
	var release func(id int32)
	var ready chan int32     // flat path
	var readyD []chan int32  // multi-domain path
	var tokens chan struct{} // multi-domain path
	if nd <= 1 {
		ready = make(chan int32, n)
		release = func(id int32) {
			if remain[id].Add(-1) == 0 {
				ready <- id
			}
		}
	} else {
		readyD = make([]chan int32, nd)
		for d := range readyD {
			readyD[d] = make(chan int32, n)
		}
		tokens = make(chan struct{}, n)
		release = func(id int32) {
			if remain[id].Add(-1) == 0 {
				d := homeDom(id)
				if d < 0 {
					d = int(id) % nd // keyless tasks spread round-robin
				}
				readyD[d] <- id
				tokens <- struct{}{}
			}
		}
	}

	// Analysis pipeline: one goroutine, program order — the -ll:util core.
	// It reports its full-analysis count over the channel so Run never reads
	// a variable the goroutine may still be writing (workers can exit early
	// on panic or cancellation while analysis is mid-flight).
	analysisDone := make(chan int, 1)
	go func() {
		var sink uint64
		analyzedCount := 0
		lastCall := int32(-1)
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break
			}
			t := &g.Tasks[i]
			c := &g.Prog.Calls[t.Call]
			full := true
			if c.IndexLaunch && t.Call == lastCall {
				full = false // batch-analyzed with the first task of the launch
			}
			if replay {
				full = false // dynamic tracing: memoized replay
			}
			if full {
				// Dependence analysis: hash over the task's region set,
				// repeated to model Legion's region-tree walk.
				work := cost * (1 + len(t.Reads) + len(t.Writes))
				for k := 0; k < work; k++ {
					sink = sink*0x9E3779B97F4A7C15 + uint64(t.ID) + uint64(k)
				}
				analyzedCount++
			}
			lastCall = t.Call
			release(t.ID)
		}
		_ = sink
		analysisDone <- analyzedCount
	}()

	var done atomic.Int64
	done.Store(int64(n))
	var wg sync.WaitGroup
	wg.Add(nw)
	finished := make(chan struct{})
	var closeOnce sync.Once
	var panicMu sync.Mutex
	var panicVal any
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() {
			closeOnce.Do(func() { close(finished) })
		})
		defer stop()
	}
	for w := 0; w < nw; w++ {
		go func(w int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					panicMu.Lock()
					if panicVal == nil {
						panicVal = rec
					}
					panicMu.Unlock()
					closeOnce.Do(func() { close(finished) })
				}
			}()
			exec := func(id int32) bool {
				body(w, id)
				for _, s := range g.Tasks[id].Succs {
					release(s)
				}
				if done.Add(-1) == 0 {
					closeOnce.Do(func() { close(finished) })
					return false
				}
				return true
			}
			if nd <= 1 {
				for {
					select {
					case id := <-ready:
						if !exec(id) {
							return
						}
					case <-finished:
						return
					}
				}
			}
			// Multi-domain: consume a token, then locate its task — own
			// domain's queue first, the others only when home is dry.
			dw := w * nd / nw
			var ls sched.LocalityStats
			defer func() { r.acc.Add(ls) }()
			for {
				select {
				case <-tokens:
					var id int32
					found := false
					for !found {
						for k := 0; k < nd; k++ {
							d := (dw + k) % nd
							select {
							case id = <-readyD[d]:
								found = true
								if k == 0 {
									ls.Domain++
								} else {
									ls.Remote++
									ls.StealsRemote++
								}
							default:
							}
							if found {
								break
							}
						}
						if found {
							break
						}
						// Another token holder raced us to the queues; the
						// queue-before-token invariant says a task for this
						// token exists (or its enqueue is in flight) — retry.
						select {
						case <-finished:
							return
						default:
							runtime.Gosched()
						}
					}
					if d := homeDom(id); d < 0 {
						ls.AffinityNone++
					} else if d == dw {
						ls.AffinityLocal++
					} else {
						ls.AffinityRemote++
					}
					if !exec(id) {
						return
					}
				case <-finished:
					return
				}
			}
		}(w)
	}
	wg.Wait()
	la := <-analysisDone // analysis loop is finite: ctx check or full walk
	r.mu.Lock()
	r.LastAnalyzed = la
	r.mu.Unlock()
	if panicVal != nil {
		panic(panicVal)
	}
	if done.Load() != 0 {
		return ctx.Err()
	}
	return nil
}
