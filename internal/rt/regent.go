package rt

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"sparsetask/internal/graph"
	"sparsetask/internal/program"
)

// Regent is the region/privilege analog of the Regent/Legion runtime: a
// serial dependence-analysis pipeline walks the tasks in program order,
// spending per-task analysis work before a task may issue, and workers drain
// a shared FIFO ready queue. Two Regent-specific mechanisms are modeled:
//
//   - index launches: calls marked IndexLaunch are analyzed as one batch, so
//     per-task analysis is skipped after the first task of the call;
//   - dynamic tracing: when enabled, re-executions of an already-analyzed
//     TDG replay the memoized analysis at a fraction of the cost.
//
// The serial analysis pipeline is the mechanism behind the paper's
// observation that Regent degrades sharply as task counts grow (§5.4,
// "Regent has scaling issues with regard to creation or scheduling of large
// number of tasks").
type Regent struct {
	opt   Options
	epoch time.Time

	mu       sync.Mutex
	analyzed map[*graph.TDG]bool

	// LastAnalyzed counts tasks that paid full analysis in the most recent
	// Run, for tests and the ablation benches. Guarded by mu during Run;
	// read it only after Run returns.
	LastAnalyzed int
}

// defaultAnalysisCost is the spin-loop iteration count per analyzed task.
// Calibrated so analysis is on the order of a microsecond per task: invisible
// next to a coarse tile task, dominant when a matrix is over-decomposed into
// tens of thousands of tiny tasks.
const defaultAnalysisCost = 600

// NewRegent returns the Regent-style runtime.
func NewRegent(opt Options) *Regent {
	return &Regent{opt: opt, epoch: time.Now(), analyzed: make(map[*graph.TDG]bool)}
}

// Name implements Runtime.
func (r *Regent) Name() string { return "regent" }

// Run implements Runtime. Cancellation stops both the analysis pipeline and
// the workers at task granularity.
func (r *Regent) Run(ctx context.Context, g *graph.TDG, st *program.Store) error {
	if ctx == nil {
		ctx = context.Background()
	}
	nw := r.opt.workers()
	body := taskBody(g, st, r.opt.Recorder, r.epoch)
	n := len(g.Tasks)
	if n == 0 {
		return ctx.Err()
	}
	cost := r.opt.AnalysisCost
	if cost <= 0 {
		cost = defaultAnalysisCost
	}
	replay := false
	if r.opt.DynamicTracing {
		r.mu.Lock()
		replay = r.analyzed[g]
		r.analyzed[g] = true
		r.mu.Unlock()
	}

	// remain[i] = deps + 1: the extra count is released by the analysis
	// pipeline when the task is issued, so no task starts before its
	// program-order analysis completes — Legion semantics.
	remain := make([]atomic.Int32, n)
	for i := range g.Tasks {
		remain[i].Store(int32(len(g.Tasks[i].Deps)) + 1)
	}

	ready := make(chan int32, n)
	release := func(id int32) {
		if remain[id].Add(-1) == 0 {
			ready <- id
		}
	}

	// Analysis pipeline: one goroutine, program order — the -ll:util core.
	// It reports its full-analysis count over the channel so Run never reads
	// a variable the goroutine may still be writing (workers can exit early
	// on panic or cancellation while analysis is mid-flight).
	analysisDone := make(chan int, 1)
	go func() {
		var sink uint64
		analyzedCount := 0
		lastCall := int32(-1)
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break
			}
			t := &g.Tasks[i]
			c := &g.Prog.Calls[t.Call]
			full := true
			if c.IndexLaunch && t.Call == lastCall {
				full = false // batch-analyzed with the first task of the launch
			}
			if replay {
				full = false // dynamic tracing: memoized replay
			}
			if full {
				// Dependence analysis: hash over the task's region set,
				// repeated to model Legion's region-tree walk.
				work := cost * (1 + len(t.Reads) + len(t.Writes))
				for k := 0; k < work; k++ {
					sink = sink*0x9E3779B97F4A7C15 + uint64(t.ID) + uint64(k)
				}
				analyzedCount++
			}
			lastCall = t.Call
			release(t.ID)
		}
		_ = sink
		analysisDone <- analyzedCount
	}()

	var done atomic.Int64
	done.Store(int64(n))
	var wg sync.WaitGroup
	wg.Add(nw)
	finished := make(chan struct{})
	var closeOnce sync.Once
	var panicMu sync.Mutex
	var panicVal any
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() {
			closeOnce.Do(func() { close(finished) })
		})
		defer stop()
	}
	for w := 0; w < nw; w++ {
		go func(w int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					panicMu.Lock()
					if panicVal == nil {
						panicVal = rec
					}
					panicMu.Unlock()
					closeOnce.Do(func() { close(finished) })
				}
			}()
			for {
				select {
				case id := <-ready:
					body(w, id)
					for _, s := range g.Tasks[id].Succs {
						release(s)
					}
					if done.Add(-1) == 0 {
						closeOnce.Do(func() { close(finished) })
						return
					}
				case <-finished:
					return
				}
			}
		}(w)
	}
	wg.Wait()
	la := <-analysisDone // analysis loop is finite: ctx check or full walk
	r.mu.Lock()
	r.LastAnalyzed = la
	r.mu.Unlock()
	if panicVal != nil {
		panic(panicVal)
	}
	if done.Load() != 0 {
		return ctx.Err()
	}
	return nil
}
