package rt

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"sparsetask/internal/graph"
	"sparsetask/internal/precond"
	"sparsetask/internal/program"
	"sparsetask/internal/sparse"
	"sparsetask/internal/topo"
)

// trsvProblem factors a 2D Laplacian with IC(0) and builds the two-call
// triangular-solve program z = U⁻¹·(L⁻¹·b): the irregular level-scheduled DAG
// this PR introduces. Returns the graph, a store factory, and the serial
// reference solution.
func trsvProblem(t *testing.T, grid, block int, withMemo bool) (*graph.TDG, func() *program.Store, []float64) {
	t.Helper()
	n := grid * grid
	coo := sparse.NewCOO(n, n, 5*n)
	at := func(r, c int) int32 { return int32(r*grid + c) }
	for r := 0; r < grid; r++ {
		for c := 0; c < grid; c++ {
			i := at(r, c)
			coo.Append(i, i, 4)
			if r > 0 {
				coo.Append(i, at(r-1, c), -1)
			}
			if r < grid-1 {
				coo.Append(i, at(r+1, c), -1)
			}
			if c > 0 {
				coo.Append(i, at(r, c-1), -1)
			}
			if c < grid-1 {
				coo.Append(i, at(r, c+1), -1)
			}
		}
	}
	m, err := precond.Factorize(coo.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != precond.KindIC0 {
		t.Fatalf("expected IC0 factorization, got %v", m.Kind)
	}

	p := program.New(n, block)
	opL := p.Tri("L")
	opU := p.Tri("U")
	opB := p.Vec("b", 1)
	opY := p.Vec("y", 1)
	opZ := p.Vec("z", 1)
	p.SpTrsvLower(opY, opL, opB)
	p.SpTrsvUpper(opZ, opU, opY)

	opt := graph.Options{
		SkipEmpty: true,
		Tris:      map[program.OperandID]*sparse.CSR{opL: m.L, opU: m.U},
	}
	if withMemo {
		opt.TriDeps = map[program.OperandID][][]int32{
			opL: precond.AnalyzeLower(m.L, block).BlockDeps,
			opU: precond.AnalyzeUpper(m.U, block).BlockDeps,
		}
	}
	g, err := graph.Build(p, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(17))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want := make([]float64, n)
	m.Apply(want, make([]float64, n), b)

	mk := func() *program.Store {
		st := program.NewStore(p)
		st.SetTri(opL, m.L)
		st.SetTri(opU, m.U)
		copy(st.Vec[opB], b)
		return st
	}
	return g, mk, want
}

// TestTrsvAllBackendsBitIdentical runs the level-scheduled solve through all
// four runtime backends across topology profiles and worker counts; every
// combination must reproduce the serial reference bit for bit, because the
// level DAG fixes each row's accumulation order regardless of schedule.
func TestTrsvAllBackendsBitIdentical(t *testing.T) {
	g, mk, want := trsvProblem(t, 16, 8, false)
	zOp := program.OperandID(4) // opZ: fifth declared operand
	topos := []topo.Topology{topo.Flat(), topo.Broadwell(), topo.EPYC()}
	for _, workers := range []int{1, 4} {
		for _, tp := range topos {
			for _, backend := range []string{"bsp", "deepsparse", "hpx", "regent"} {
				name := fmt.Sprintf("%s/%s/w%d", backend, tp.Name, workers)
				var r Runtime
				opt := Options{Workers: workers, Topo: tp}
				switch backend {
				case "bsp":
					r = NewBSP(opt)
				case "deepsparse":
					r = NewDeepSparse(opt)
				case "hpx":
					r = NewHPX(opt)
				case "regent":
					r = NewRegent(opt)
				}
				st := mk()
				if err := r.Run(context.Background(), g, st); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				for i := range want {
					if st.Vec[zOp][i] != want[i] {
						t.Fatalf("%s: z[%d] = %v, want %v (must be bit-identical)",
							name, i, st.Vec[zOp][i], want[i])
					}
				}
			}
		}
	}
}

// TestTrsvMemoizedLevelsMatchScan: building the graph from memoized
// precond.Levels block deps must produce the same dependency structure as
// scanning the factor during expansion — the property the server's
// factorization cache relies on.
func TestTrsvMemoizedLevelsMatchScan(t *testing.T) {
	ga, _, _ := trsvProblem(t, 13, 7, false)
	gb, mk, want := trsvProblem(t, 13, 7, true)
	if len(ga.Tasks) != len(gb.Tasks) || ga.NumEdges != gb.NumEdges {
		t.Fatalf("scan graph has %d tasks/%d edges, memoized %d/%d",
			len(ga.Tasks), ga.NumEdges, len(gb.Tasks), gb.NumEdges)
	}
	for i := range ga.Tasks {
		ta, tb := &ga.Tasks[i], &gb.Tasks[i]
		if ta.Kind != tb.Kind || ta.P != tb.P || len(ta.Deps) != len(tb.Deps) {
			t.Fatalf("task %d differs: %v(P=%d,%d deps) vs %v(P=%d,%d deps)",
				i, ta.Kind, ta.P, len(ta.Deps), tb.Kind, tb.P, len(tb.Deps))
		}
		for k := range ta.Deps {
			if ta.Deps[k] != tb.Deps[k] {
				t.Fatalf("task %d dep %d differs: %d vs %d", i, k, ta.Deps[k], tb.Deps[k])
			}
		}
	}
	st := mk()
	if err := NewDeepSparse(Options{Workers: 3}).Run(context.Background(), gb, st); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if st.Vec[program.OperandID(4)][i] != want[i] {
			t.Fatalf("memoized graph result differs at %d", i)
		}
	}
}

// TestTrsvPreparedReuse: the prepared-run path (what PCG's steady-state
// iterations use) must give the same bit-identical answer on reuse.
func TestTrsvPreparedReuse(t *testing.T) {
	g, mk, want := trsvProblem(t, 12, 6, false)
	st := mk()
	pr := PrepareRun(NewDeepSparse(Options{Workers: 4}), g, st)
	defer pr.Close()
	for run := 0; run < 3; run++ {
		if err := pr.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if st.Vec[program.OperandID(4)][i] != want[i] {
				t.Fatalf("run %d: z[%d] differs", run, i)
			}
		}
	}
}
