package rt

import (
	"context"
	"sort"
	"sync"
	"time"

	"sparsetask/internal/graph"
	"sparsetask/internal/program"
)

// BSP is the bulk-synchronous baseline: each kernel (program call) executes
// as a statically partitioned parallel loop, with a full barrier before the
// next kernel starts. Row chains are assigned to workers round-robin with no
// stealing, and cross-partition reductions run serially after the barrier —
// the structure of the paper's libcsr/libcsb MKL baselines. The storage
// format distinction (libcsr vs libcsb) is expressed by the program's block
// size: a block of ceil(m/workers) rows models MKL's thread-level CSR
// chunking, while solver-tuned CSB blocks model libcsb.
type BSP struct {
	opt   Options
	epoch time.Time
}

// NewBSP returns the bulk-synchronous runtime.
func NewBSP(opt Options) *BSP { return &BSP{opt: opt, epoch: time.Now()} }

// Name implements Runtime.
func (r *BSP) Name() string { return "bsp" }

// bspCallPlan is one kernel's static schedule: per-partition task chains in
// ascending partition order (chain k goes to worker k%nw, OpenMP static-for
// semantics) plus the serial post-barrier tasks (reductions, small steps).
type bspCallPlan struct {
	chains [][]int32
	serial []int32
}

// buildBSPPlan groups a TDG's tasks by call and partition once; the plan is
// immutable and reusable across runs of the same graph.
func buildBSPPlan(g *graph.TDG) []bspCallPlan {
	byCall := make([][]int32, len(g.Prog.Calls))
	for i := range g.Tasks {
		c := g.Tasks[i].Call
		byCall[c] = append(byCall[c], g.Tasks[i].ID)
	}
	var plan []bspCallPlan
	for ci, ids := range byCall {
		if len(ids) == 0 {
			continue
		}
		if k := g.Prog.Calls[ci].Kind; k == program.CSpTrsv || k == program.CSpMMSym {
			// These calls carry dependencies *within* the call: triangular
			// block chains follow the factor's level DAG, and symmetric SpMV
			// tiles write two row bands (per-P chains would race on the
			// transposed band or a shared accumulator region). Split the
			// call into its dependency levels and barrier between them —
			// the classic OpenMP level-scheduled shape. Tasks of one level
			// share no intra-call edge, and every write conflict has an
			// edge, so levels are conflict-free. Level order equals chain
			// order per region, so results stay bit-identical to the AMT
			// runtimes'.
			plan = append(plan, bspTrsvLevels(g, ids)...)
			continue
		}
		// Partition the call's tasks into per-row chains plus serial tasks,
		// preserving id order (which is Q order within a row chain, so
		// accumulation order is identical to the AMT runtimes').
		chains := map[int32][]int32{}
		var serial []int32
		var parts []int32
		for _, id := range ids {
			p := g.Tasks[id].P
			if p < 0 {
				serial = append(serial, id)
				continue
			}
			if _, ok := chains[p]; !ok {
				parts = append(parts, p)
			}
			chains[p] = append(chains[p], id)
		}
		sort.Slice(parts, func(i, j int) bool { return parts[i] < parts[j] })
		cp := bspCallPlan{serial: serial, chains: make([][]int32, len(parts))}
		for k, p := range parts {
			cp.chains[k] = chains[p]
		}
		plan = append(plan, cp)
	}
	return plan
}

// bspTrsvLevels groups one CSpTrsv call's tasks by intra-call dependency
// depth and returns one plan phase per level, each holding single-task
// chains. Depth only counts same-call predecessors, so the phase before the
// solve still ends at the ordinary inter-call barrier.
func bspTrsvLevels(g *graph.TDG, ids []int32) []bspCallPlan {
	depth := make(map[int32]int32, len(ids))
	maxDepth := int32(0)
	call := g.Tasks[ids[0]].Call
	for _, id := range ids { // ids ascend, deps point backwards
		d := int32(0)
		for _, dep := range g.Tasks[id].Deps {
			if g.Tasks[dep].Call == call {
				if dd := depth[dep] + 1; dd > d {
					d = dd
				}
			}
		}
		depth[id] = d
		if d > maxDepth {
			maxDepth = d
		}
	}
	levels := make([]bspCallPlan, maxDepth+1)
	for _, id := range ids {
		l := &levels[depth[id]]
		l.chains = append(l.chains, []int32{id})
	}
	return levels
}

// bspPrepared executes a prebuilt plan. With one worker the chains run
// inline on the calling goroutine (a barrier over one worker is a no-op), so
// a steady-state run spawns no goroutines and allocates nothing.
type bspPrepared struct {
	plan []bspCallPlan
	body func(int, int32)
	nw   int
}

// Prepare implements Preparer: the per-call chain grouping is computed once
// and reused by every PreparedRun.Run.
func (r *BSP) Prepare(g *graph.TDG, st *program.Store) PreparedRun {
	return &bspPrepared{
		plan: buildBSPPlan(g),
		body: taskBody(g, st, r.opt.Recorder, r.epoch),
		nw:   r.opt.workers(),
	}
}

func (p *bspPrepared) Close() {}

// Run executes the plan once. Cancellation is observed at the chain/barrier
// granularity: workers stop picking up chains, the current barrier drains,
// and Run returns ctx's error without starting the next kernel.
func (p *bspPrepared) Run(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	for i := range p.plan {
		cp := &p.plan[i]
		if err := ctx.Err(); err != nil {
			return err
		}
		if p.nw == 1 || len(cp.chains) <= 1 {
			// Static round-robin over one worker: run inline, no barrier.
			for _, chain := range cp.chains {
				if ctx.Err() != nil {
					break
				}
				for _, id := range chain {
					p.body(0, id)
				}
			}
		} else {
			// Kept out of line so its escaping locals (WaitGroup, panic
			// capture, goroutine closure) are only allocated when the
			// parallel branch actually runs.
			p.runParallel(ctx, cp)
		}
		if err := ctx.Err(); err != nil {
			return err
		}

		// Reductions and small steps run serially after the barrier.
		for _, id := range cp.serial {
			p.body(0, id)
		}
	}
	return nil
}

// runParallel executes one call's chains across the worker count with a
// closing barrier. Static round-robin chain assignment: worker w owns chains
// w, w+nw, w+2nw, ... — OpenMP static-for semantics, so a single heavy chain
// (skewed nonzeros) stalls the barrier, the paper's BSP load-imbalance
// pathology.
//
//sparselint:coldcall forks one goroutine batch per parallel superstep; fork+join is the BSP barrier overhead the paper measures, not hidden allocation
func (p *bspPrepared) runParallel(ctx context.Context, cp *bspCallPlan) {
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicVal any
	for w := 0; w < p.nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					panicOnce.Do(func() { panicVal = rec })
				}
			}()
			for k := w; k < len(cp.chains); k += p.nw {
				if ctx.Err() != nil {
					return
				}
				for _, id := range cp.chains[k] {
					p.body(w, id)
				}
			}
		}(w)
	}
	wg.Wait() // the BSP barrier
	if panicVal != nil {
		panic(panicVal)
	}
}

// Run implements Runtime: a one-shot Prepare + Run.
func (r *BSP) Run(ctx context.Context, g *graph.TDG, st *program.Store) error {
	p := r.Prepare(g, st)
	defer p.Close()
	return p.Run(ctx)
}
