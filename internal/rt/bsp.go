package rt

import (
	"context"
	"sort"
	"sync"
	"time"

	"sparsetask/internal/graph"
	"sparsetask/internal/program"
)

// BSP is the bulk-synchronous baseline: each kernel (program call) executes
// as a statically partitioned parallel loop, with a full barrier before the
// next kernel starts. Row chains are assigned to workers round-robin with no
// stealing, and cross-partition reductions run serially after the barrier —
// the structure of the paper's libcsr/libcsb MKL baselines. The storage
// format distinction (libcsr vs libcsb) is expressed by the program's block
// size: a block of ceil(m/workers) rows models MKL's thread-level CSR
// chunking, while solver-tuned CSB blocks model libcsb.
type BSP struct {
	opt   Options
	epoch time.Time
}

// NewBSP returns the bulk-synchronous runtime.
func NewBSP(opt Options) *BSP { return &BSP{opt: opt, epoch: time.Now()} }

// Name implements Runtime.
func (r *BSP) Name() string { return "bsp" }

// Run implements Runtime. Cancellation is observed at the chain/barrier
// granularity: workers stop picking up chains, the current barrier drains,
// and Run returns ctx's error without starting the next kernel.
func (r *BSP) Run(ctx context.Context, g *graph.TDG, st *program.Store) error {
	if ctx == nil {
		ctx = context.Background()
	}
	nw := r.opt.workers()
	body := taskBody(g, st, r.opt.Recorder, r.epoch)

	// Group tasks by call, preserving id order (which is Q order within a
	// row chain, so accumulation order is identical to the AMT runtimes').
	byCall := make([][]int32, len(g.Prog.Calls))
	for i := range g.Tasks {
		c := g.Tasks[i].Call
		byCall[c] = append(byCall[c], g.Tasks[i].ID)
	}

	for _, ids := range byCall {
		if err := ctx.Err(); err != nil {
			return err
		}
		if len(ids) == 0 {
			continue
		}
		// Partition the call's tasks into per-row chains plus serial tasks.
		chains := map[int32][]int32{}
		var serial []int32
		var parts []int32
		for _, id := range ids {
			p := g.Tasks[id].P
			if p < 0 {
				serial = append(serial, id)
				continue
			}
			if _, ok := chains[p]; !ok {
				parts = append(parts, p)
			}
			chains[p] = append(chains[p], id)
		}
		sort.Slice(parts, func(i, j int) bool { return parts[i] < parts[j] })

		// Static round-robin chain assignment: worker w owns chains
		// w, w+nw, w+2nw, ... — OpenMP static-for semantics, so a single
		// heavy chain (skewed nonzeros) stalls the barrier, the paper's BSP
		// load-imbalance pathology.
		var wg sync.WaitGroup
		var panicOnce sync.Once
		var panicVal any
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				defer func() {
					if rec := recover(); rec != nil {
						panicOnce.Do(func() { panicVal = rec })
					}
				}()
				for k := w; k < len(parts); k += nw {
					if ctx.Err() != nil {
						return
					}
					for _, id := range chains[parts[k]] {
						body(w, id)
					}
				}
			}(w)
		}
		wg.Wait() // the BSP barrier
		if panicVal != nil {
			panic(panicVal)
		}
		if err := ctx.Err(); err != nil {
			return err
		}

		// Reductions and small steps run serially after the barrier.
		for _, id := range serial {
			body(0, id)
		}
	}
	return nil
}
