package rt

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"sparsetask/internal/graph"
	"sparsetask/internal/kernels"
	"sparsetask/internal/program"
	"sparsetask/internal/sparse"
	"sparsetask/internal/topo"
)

// symTestProblem builds Y = A·X → norm → scale → Axpby over symmetric SymCSB
// storage, so repeated runs feed forward, mirroring testProblem's shape.
func symTestProblem(t *testing.T, coo *sparse.COO, block, n int, seed int64) (*graph.TDG, func() *program.Store, program.OperandID) {
	t.Helper()
	sym, err := coo.ToSymCSB(block)
	if err != nil {
		t.Fatal(err)
	}
	m := coo.Rows
	p := program.New(m, block)
	A := p.SymSparse("A")
	X := p.Vec("X", n)
	Y := p.Vec("Y", n)
	nrm := p.Scalar("nrm")
	W := p.Vec("W", n)
	p.SpMMSym(Y, A, X)
	p.Norm(nrm, Y)
	p.ScaleInv(W, Y, nrm)
	p.Axpby(X, 0.5, X, 0.5, W)

	opt := graph.DefaultOptions()
	opt.Syms = map[program.OperandID]*sparse.SymCSB{A: sym}
	g, err := graph.Build(p, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(seed))
	xInit := make([]float64, m*n)
	for i := range xInit {
		xInit[i] = rng.NormFloat64()
	}
	mk := func() *program.Store {
		st := program.NewStore(p)
		st.SetSymSparse(A, sym)
		copy(st.Vec[X], xInit)
		return st
	}
	return g, mk, X
}

// symTestMatrices returns a wave-mode (banded) and a fallback-mode
// (arrowhead) symmetric matrix.
func symTestMatrices(m int, seed int64) map[string]*sparse.COO {
	rng := rand.New(rand.NewSource(seed))
	banded := sparse.NewCOO(m, m, 0)
	for i := 0; i < m; i++ {
		banded.Append(int32(i), int32(i), 4+rng.Float64())
		if i > 0 {
			v := rng.NormFloat64()
			banded.Append(int32(i), int32(i-1), v)
			banded.Append(int32(i-1), int32(i), v)
		}
	}
	banded.Compact()
	arrow := sparse.NewCOO(m, m, 0)
	for i := 0; i < m; i++ {
		arrow.Append(int32(i), int32(i), 4+rng.Float64())
		if i > 0 {
			v := rng.NormFloat64()
			arrow.Append(int32(i), 0, v)
			arrow.Append(0, int32(i), v)
		}
	}
	arrow.Compact()
	return map[string]*sparse.COO{"banded-wave": banded, "arrowhead-fallback": arrow}
}

// All four backends, both schedule modes, both NUMA profiles, repeated
// iterations: results must be bit-identical to the sequential execution.
func TestSymBackendsBitIdentical(t *testing.T) {
	for name, coo := range symTestMatrices(96, 1) {
		for _, n := range []int{1, 4} {
			g, mk, _ := symTestProblem(t, coo, 8, n, 7)
			ref := mk()
			for it := 0; it < 3; it++ {
				kernels.RunSequential(g, ref)
			}
			for _, tp := range []topo.Topology{topo.Flat(), topo.Broadwell(), topo.EPYC()} {
				for _, r := range allRuntimes(Options{Workers: 4, Topo: tp}) {
					st := mk()
					for it := 0; it < 3; it++ {
						if err := r.Run(context.Background(), g, st); err != nil {
							t.Fatalf("%s/%s/%s n=%d: %v", name, r.Name(), tp, n, err)
						}
					}
					storesEqual(t, name+"/"+r.Name()+"/"+tp.String(), ref, st)
				}
			}
		}
	}
}

// The fallback accumulator grouping is a function of the matrix only, so the
// sequential result itself must not depend on the topology profile — checked
// implicitly above (one ref for all profiles). Here: symmetric storage must
// agree with the general CSB path to 1e-12 relative on the same product.
func TestSymMatchesGeneralPath(t *testing.T) {
	for name, coo := range symTestMatrices(96, 2) {
		for _, n := range []int{1, 2, 4, 8, 3} {
			m := coo.Rows
			block := 8
			sym, err := coo.ToSymCSB(block)
			if err != nil {
				t.Fatal(err)
			}
			gen := coo.ToCSB(block)
			x := make([]float64, m*n)
			rng := rand.New(rand.NewSource(int64(n)))
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			ys := make([]float64, m*n)
			yg := make([]float64, m*n)
			sym.SpMM(ys, x, n)
			gen.SpMM(yg, x, n)
			for i := range ys {
				if d := math.Abs(ys[i] - yg[i]); d > 1e-12*(1+math.Abs(yg[i])) {
					t.Fatalf("%s n=%d: sym y[%d]=%g vs general %g", name, n, i, ys[i], yg[i])
				}
			}
		}
	}
}

// Race stress for the fallback accumulators: many workers hammering the
// arrowhead graph. Meaningful mainly under -race (the repo's race matrix runs
// this package).
func TestSymFallbackAccumulatorStress(t *testing.T) {
	coo := symTestMatrices(160, 3)["arrowhead-fallback"]
	g, mk, opX := symTestProblem(t, coo, 8, 2, 11)
	ref := mk()
	init := append([]float64(nil), ref.Vec[opX]...)
	kernels.RunSequential(g, ref)
	for _, r := range allRuntimes(Options{Workers: 8}) {
		st := mk()
		pr := PrepareRun(r, g, st)
		for it := 0; it < 20; it++ {
			// Reset X so every run recomputes the same values over the live
			// accumulator buffers.
			copy(st.Vec[opX], init)
			if err := pr.Run(context.Background()); err != nil {
				t.Fatalf("%s: %v", r.Name(), err)
			}
		}
		pr.Close()
	}
}
