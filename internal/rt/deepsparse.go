package rt

import (
	"context"
	"time"

	"sparsetask/internal/graph"
	"sparsetask/internal/program"
	"sparsetask/internal/sched"
)

// DeepSparse is the OpenMP-task analog: the entire TDG is handed to a
// dependency-counting executor; the master submits root tasks in depth-first
// topological order (the order the TDG generator emits them) and workers use
// LIFO local deques with work stealing, giving the depth-first, pipelined
// execution OpenMP task scheduling exhibits in the paper.
type DeepSparse struct {
	opt   Options
	epoch time.Time
}

// NewDeepSparse returns the OpenMP-task-style runtime.
func NewDeepSparse(opt Options) *DeepSparse {
	return &DeepSparse{opt: opt, epoch: time.Now()}
}

// Name implements Runtime.
func (r *DeepSparse) Name() string { return "deepsparse" }

func (r *DeepSparse) schedOptions() sched.Options {
	return sched.Options{
		Workers:    r.opt.workers(),
		Discipline: sched.LIFO,
	}
}

// Run implements Runtime.
func (r *DeepSparse) Run(ctx context.Context, g *graph.TDG, st *program.Store) error {
	body := taskBody(g, st, r.opt.Recorder, r.epoch)
	return sched.RunGraph(ctx, len(g.Tasks), indegrees(g),
		func(i int32) []int32 { return g.Tasks[i].Succs },
		g.Roots, body, r.schedOptions())
}

// Prepare implements Preparer: dependency counts, deques, and the worker
// pool are built once and reused by every PreparedRun.Run — the OpenMP
// "parallel region kept alive across iterations" analog.
func (r *DeepSparse) Prepare(g *graph.TDG, st *program.Store) PreparedRun {
	body := taskBody(g, st, r.opt.Recorder, r.epoch)
	return newExecutorRun(g, body, r.schedOptions())
}
