package rt

import (
	"context"
	"time"

	"sparsetask/internal/graph"
	"sparsetask/internal/program"
	"sparsetask/internal/sched"
)

// DeepSparse is the OpenMP-task analog: the entire TDG is handed to a
// dependency-counting executor; the master submits root tasks in depth-first
// topological order (the order the TDG generator emits them) and workers use
// LIFO local deques with work stealing, giving the depth-first, pipelined
// execution OpenMP task scheduling exhibits in the paper. With a multi-domain
// Options.Topo, tasks carry their row band's domain hint and workers steal
// hierarchically.
type DeepSparse struct {
	opt   Options
	epoch time.Time
	acc   sched.LocalityAccumulator
}

// NewDeepSparse returns the OpenMP-task-style runtime.
func NewDeepSparse(opt Options) *DeepSparse {
	return &DeepSparse{opt: opt, epoch: time.Now()}
}

// Name implements Runtime.
func (r *DeepSparse) Name() string { return "deepsparse" }

// Locality implements LocalityReporter: lifetime counters across every
// execution this runtime has closed.
func (r *DeepSparse) Locality() sched.LocalityStats { return r.acc.Snapshot() }

func (r *DeepSparse) schedOptions(g *graph.TDG) sched.Options {
	opt := sched.Options{
		Workers:    r.opt.workers(),
		Discipline: sched.LIFO,
	}
	applyTopo(&opt, r.opt.Topo, g)
	return opt
}

// Run implements Runtime.
func (r *DeepSparse) Run(ctx context.Context, g *graph.TDG, st *program.Store) error {
	p := r.Prepare(g, st)
	defer p.Close()
	return p.Run(ctx)
}

// Prepare implements Preparer: dependency counts, deques, and the worker
// pool are built once and reused by every PreparedRun.Run — the OpenMP
// "parallel region kept alive across iterations" analog.
func (r *DeepSparse) Prepare(g *graph.TDG, st *program.Store) PreparedRun {
	body := taskBody(g, st, r.opt.Recorder, r.epoch)
	return newExecutorRun(g, body, r.schedOptions(g), &r.acc)
}
