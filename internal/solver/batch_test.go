package solver

import (
	"context"
	"math"
	"testing"

	"sparsetask/internal/precond"
	"sparsetask/internal/rt"
)

func batchRHS(m, k int, seed int64) [][]float64 {
	bs := make([][]float64, k)
	for j := range bs {
		bs[j] = RandomRHS(m, seed+int64(j))
	}
	return bs
}

func TestBatchCGSolvesLaplacian(t *testing.T) {
	n, k := 200, 4
	coo := laplacian1D(n)
	c, err := NewBatchCG(coo.ToCSB(32), k)
	if err != nil {
		t.Fatal(err)
	}
	c.Tol = 1e-10
	bs := batchRHS(n, k, 3)
	res, err := c.Solve(context.Background(), rt.NewDeepSparse(rt.Options{Workers: 3}), bs)
	if err != nil {
		t.Fatal(err)
	}
	csr := coo.ToCSR()
	for j, r := range res {
		if !r.Converged {
			t.Fatalf("column %d did not converge (relres %g after %d iters)", j, r.RelRes, r.Iterations)
		}
		if got := residual(csr, r.X, bs[j]); got > 1e-8 {
			t.Fatalf("column %d true relative residual %g", j, got)
		}
		if r.Iterations > n {
			t.Fatalf("column %d took %d iterations for n=%d", j, r.Iterations, n)
		}
	}
}

// TestBatchCGMatchesSingleRHS: every column of a batched solve must agree
// with an independent single-RHS CG solve of the same system at 1e-12. The
// matrix is well conditioned (strongly diagonally dominant) so solver-level
// agreement transfers to the solutions.
func TestBatchCGMatchesSingleRHS(t *testing.T) {
	m, k := 120, 4
	coo := randomSPD(m, 7)
	bs := batchRHS(m, k, 11)
	bc, err := NewBatchCG(coo.ToCSB(16), k)
	if err != nil {
		t.Fatal(err)
	}
	bc.Tol = 1e-13
	res, err := bc.Solve(context.Background(), rt.NewDeepSparse(rt.Options{Workers: 3}), bs)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < k; j++ {
		cg, err := NewCG(coo.ToCSB(16))
		if err != nil {
			t.Fatal(err)
		}
		cg.Tol = 1e-13
		x, _, _, err := cg.Solve(context.Background(), nil, bs[j])
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if math.Abs(res[j].X[i]-x[i]) > 1e-12*(1+math.Abs(x[i])) {
				t.Fatalf("column %d: x[%d] = %v, single-RHS %v (diff %g)",
					j, i, res[j].X[i], x[i], math.Abs(res[j].X[i]-x[i]))
			}
		}
	}
}

// TestBatchCGColumnIndependence: the batched arithmetic of column j depends
// only on b_j — swapping the *other* columns of the batch must leave column
// j's solution bit-identical (each fixed-width kernel body processes columns
// independently in a fixed order).
func TestBatchCGColumnIndependence(t *testing.T) {
	m, k := 150, 4
	coo := laplacian1D(m)
	shared := RandomRHS(m, 42)
	solve := func(bs [][]float64) []float64 {
		c, err := NewBatchCG(coo.ToCSB(32), k)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Solve(context.Background(), rt.NewDeepSparse(rt.Options{Workers: 2}), bs)
		if err != nil {
			t.Fatal(err)
		}
		return res[0].X
	}
	a := solve([][]float64{shared, RandomRHS(m, 1), RandomRHS(m, 2), RandomRHS(m, 3)})
	b := solve([][]float64{shared, RandomRHS(m, 9), RandomRHS(m, 8), RandomRHS(m, 7)})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("x[%d] differs bitwise across batch compositions", i)
		}
	}
}

func TestBatchCGZeroColumn(t *testing.T) {
	m, k := 60, 3
	coo := randomSPD(m, 23)
	c, err := NewBatchCG(coo.ToCSB(8), k)
	if err != nil {
		t.Fatal(err)
	}
	bs := [][]float64{RandomRHS(m, 1), make([]float64, m), RandomRHS(m, 2)}
	res, err := c.Solve(context.Background(), nil, bs)
	if err != nil {
		t.Fatal(err)
	}
	if !res[1].Converged || res[1].Iterations != 0 || res[1].RelRes != 0 {
		t.Fatalf("zero column: %+v", res[1])
	}
	for _, v := range res[1].X {
		if v != 0 {
			t.Fatal("zero rhs column must give zero solution")
		}
	}
	csr := coo.ToCSR()
	for _, j := range []int{0, 2} {
		if got := residual(csr, res[j].X, bs[j]); got > 1e-8 {
			t.Fatalf("column %d residual %g", j, got)
		}
	}
}

func TestBatchCGAllRuntimesAgree(t *testing.T) {
	m, k := 80, 4
	coo := randomSPD(m, 17)
	bs := batchRHS(m, k, 19)
	var first []BatchColResult
	for _, r := range []rt.Runtime{
		rt.NewBSP(rt.Options{Workers: 2}),
		rt.NewDeepSparse(rt.Options{Workers: 3}),
		rt.NewHPX(rt.Options{Workers: 3, NUMADomains: 2}),
		rt.NewRegent(rt.Options{Workers: 2, AnalysisCost: 5}),
	} {
		c, err := NewBatchCG(coo.ToCSB(10), k)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Solve(context.Background(), r, bs)
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if first == nil {
			first = res
			continue
		}
		for j := range res {
			for i := range res[j].X {
				if res[j].X[i] != first[j].X[i] {
					t.Fatalf("%s: column %d x[%d] differs bitwise from BSP", r.Name(), j, i)
				}
			}
		}
	}
}

// TestBatchCGSymmetricStorage: a SymCSB-backed batch solve must agree with
// the general-storage batch solve to high precision.
func TestBatchCGSymmetricStorage(t *testing.T) {
	m, k := 96, 4
	coo := randomSPD(m, 29)
	bs := batchRHS(m, k, 31)
	gen, err := NewBatchCG(coo.ToCSB(16), k)
	if err != nil {
		t.Fatal(err)
	}
	symm, err := coo.ToSymCSB(16)
	if err != nil {
		t.Fatal(err)
	}
	sym, err := NewBatchCG(symm, k)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := gen.Solve(context.Background(), rt.NewDeepSparse(rt.Options{Workers: 2}), bs)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sym.Solve(context.Background(), rt.NewDeepSparse(rt.Options{Workers: 2}), bs)
	if err != nil {
		t.Fatal(err)
	}
	for j := range rg {
		for i := range rg[j].X {
			if math.Abs(rg[j].X[i]-rs[j].X[i]) > 1e-9*(1+math.Abs(rg[j].X[i])) {
				t.Fatalf("column %d: x[%d] general %v vs symmetric %v", j, i, rg[j].X[i], rs[j].X[i])
			}
		}
	}
}

func TestBatchCGValidation(t *testing.T) {
	coo := randomSPD(10, 1)
	if _, err := NewBatchCG(coo.ToCSB(4), 0); err == nil {
		t.Error("k=0 accepted")
	}
	c, err := NewBatchCG(coo.ToCSB(4), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Solve(context.Background(), nil, [][]float64{make([]float64, 10)}); err == nil {
		t.Error("wrong batch width accepted")
	}
	if _, err := c.Solve(context.Background(), nil, [][]float64{make([]float64, 10), make([]float64, 3)}); err == nil {
		t.Error("wrong rhs length accepted")
	}
}

// TestBatchPCGMatchesSingleRHS: the batched IC(0)-preconditioned solve (with
// width-k triangular solves) must agree with independent single-RHS PCG
// solves.
func TestBatchPCGMatchesSingleRHS(t *testing.T) {
	coo := laplacian2D(16)
	n := coo.Rows
	k := 4
	csr := coo.ToCSR()
	m, err := precond.Factorize(csr)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != precond.KindIC0 {
		t.Fatalf("expected IC0, got %v", m.Kind)
	}
	bs := batchRHS(n, k, 5)
	bc, err := NewBatchPCG(coo.ToCSB(32), m, k, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	bc.Tol = 1e-12
	res, err := bc.Solve(context.Background(), rt.NewDeepSparse(rt.Options{Workers: 3}), bs)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < k; j++ {
		if !res[j].Converged {
			t.Fatalf("column %d did not converge", j)
		}
		if got := residual(csr, res[j].X, bs[j]); got > 1e-9 {
			t.Fatalf("column %d true residual %g", j, got)
		}
		pc, err := NewPCG(coo.ToCSB(32), m)
		if err != nil {
			t.Fatal(err)
		}
		pc.Tol = 1e-12
		x, _, _, err := pc.Solve(context.Background(), nil, bs[j])
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if math.Abs(res[j].X[i]-x[i]) > 1e-8*(1+math.Abs(x[i])) {
				t.Fatalf("column %d: x[%d] = %v, single-RHS PCG %v", j, i, res[j].X[i], x[i])
			}
		}
	}
}

// TestBatchPCGJacobiFallback: a batched solve against a Jacobi-kind
// preconditioner routes through the width-k DiagScale path.
func TestBatchPCGJacobiFallback(t *testing.T) {
	m := 80
	coo := randomSPD(m, 37)
	csr := coo.ToCSR()
	dinv := make([]float64, m)
	for i := 0; i < m; i++ {
		for p := csr.RowPtr[i]; p < csr.RowPtr[i+1]; p++ {
			if int(csr.ColIdx[p]) == i {
				dinv[i] = 1 / csr.V[p]
			}
		}
	}
	jac := &precond.IC0{Kind: precond.KindJacobi, Rows: m, DiagInv: dinv}
	k := 3
	bs := batchRHS(m, k, 41)
	c, err := NewBatchPCG(coo.ToCSB(16), jac, k, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Solve(context.Background(), rt.NewHPX(rt.Options{Workers: 2}), bs)
	if err != nil {
		t.Fatal(err)
	}
	for j := range res {
		if !res[j].Converged {
			t.Fatalf("column %d did not converge", j)
		}
		if got := residual(csr, res[j].X, bs[j]); got > 1e-8 {
			t.Fatalf("column %d residual %g", j, got)
		}
	}
}

func TestBatchCGSteadyIterationAllocs(t *testing.T) {
	a := laplacian1D(600).ToCSB(64)
	bs := batchRHS(600, 4, 3)
	for _, tc := range allocWorkerCases() {
		t.Run(tc.name, func(t *testing.T) {
			c, err := NewBatchCG(a, 4)
			if err != nil {
				t.Fatal(err)
			}
			c.initState(bs)
			pr := rt.PrepareRun(rt.NewDeepSparse(rt.Options{Workers: tc.workers}), c.g, c.st)
			defer pr.Close()
			ctx := context.Background()
			step := func() {
				c.state.it++
				if _, err := c.iterate(ctx, pr); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 8; i++ {
				step()
			}
			if allocs := testing.AllocsPerRun(20, step); allocs != 0 {
				t.Fatalf("steady-state BatchCG iteration allocates %.0f times, want 0", allocs)
			}
		})
	}
}

func TestBatchPCGSteadyIterationAllocs(t *testing.T) {
	coo := laplacian2D(24)
	n := coo.Rows
	m, err := precond.Factorize(coo.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	bs := batchRHS(n, 4, 3)
	for _, tc := range allocWorkerCases() {
		t.Run(tc.name, func(t *testing.T) {
			c, err := NewBatchPCG(coo.ToCSB(32), m, 4, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			c.initState(bs)
			pr := rt.PrepareRun(rt.NewDeepSparse(rt.Options{Workers: tc.workers}), c.g, c.st)
			defer pr.Close()
			ctx := context.Background()
			step := func() {
				c.state.it++
				if _, err := c.iterate(ctx, pr); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 8; i++ {
				step()
			}
			if allocs := testing.AllocsPerRun(20, step); allocs != 0 {
				t.Fatalf("steady-state BatchPCG iteration allocates %.0f times, want 0", allocs)
			}
		})
	}
}
