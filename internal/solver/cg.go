package solver

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"sparsetask/internal/blas"
	"sparsetask/internal/graph"
	"sparsetask/internal/program"
	"sparsetask/internal/rt"
	"sparsetask/internal/sparse"
)

// CG solves the symmetric positive definite linear system A·x = b with the
// conjugate gradient method, expressed as a task-dataflow program over the
// same CSB decomposition as the eigensolvers. The paper's introduction
// motivates task parallelism for "the solution of systems of linear
// equations" alongside eigenproblems; CG is the canonical such solver and
// exercises the same SpMV/DOT/AXPBY kernel mix as Lanczos with an even
// shorter critical path.
//
// Per-iteration program (fixed shape; scalar recurrences run as small steps):
//
//	q      = A·p          (SpMV)
//	pq     = pᵀ·q         (DOT)
//	α      = rr/pq        (small step)
//	x     += α·p          (AXPBY, via scalar-bearing small trick below)
//	r     -= α·q
//	rrNew  = rᵀ·r         (DOT)
//	β      = rrNew/rr     (small step)
//	p      = r + β·p
//
// AXPBY coefficients in the program IR are static, so the α/β-dependent
// updates use the DiagScale-style pattern: a width-1 coefficient vector is
// broadcast by a small step and applied per block. To keep the kernel mix
// faithful without adding bespoke kernels, the scalar multiplies are folded
// into ScaleInv and Axpby by maintaining scaled copies.
type CG struct {
	A sparse.Matrix
	// Tol is the convergence threshold on ‖r‖/‖b‖.
	Tol     float64
	MaxIter int

	prog *program.Program
	g    *graph.TDG
	st   *program.Store

	opA, opX, opP, opQ, opR program.OperandID
	opAP                    program.OperandID // α·p
	opAQ                    program.OperandID // α·q
	opBP                    program.OperandID // β·p
	opPQ, opRR, opRRN       program.OperandID // scalars
	opAlphaInv, opBetaInv   program.OperandID // scalars used via ScaleInv
	opRnorm                 program.OperandID
}

// NewCG builds the solver and its single-iteration TDG. A *sparse.SymCSB
// matrix routes the SpMV through the symmetry-exploiting kernels.
func NewCG(a sparse.Matrix) (*CG, error) {
	rows, cols := a.Dims()
	if rows != cols {
		return nil, fmt.Errorf("solver: CG needs a square matrix, got %dx%d", rows, cols)
	}
	c := &CG{A: a, Tol: 1e-10, MaxIter: 10 * rows}
	p := program.New(rows, a.BlockSize())
	c.prog = p
	w, err := wireMatrix(p, a)
	if err != nil {
		return nil, err
	}
	c.opA = w.op
	c.opX = p.Vec("x", 1)
	c.opP = p.Vec("p", 1)
	c.opQ = p.Vec("q", 1)
	c.opR = p.Vec("r", 1)
	c.opAP = p.Vec("alpha_p", 1)
	c.opAQ = p.Vec("alpha_q", 1)
	c.opBP = p.Vec("beta_p", 1)
	c.opPQ = p.Scalar("pq")
	c.opRR = p.Scalar("rr")
	c.opRRN = p.Scalar("rr_new")
	c.opAlphaInv = p.Scalar("alpha_inv")
	c.opBetaInv = p.Scalar("beta_inv")
	c.opRnorm = p.Scalar("rnorm")

	// q = A·p ; pq = pᵀq.
	w.spmm(p, c.opQ, c.opP)
	p.Dot(c.opPQ, c.opP, c.opQ)
	// α = rr/pq computed as its inverse so ScaleInv can apply it:
	// alpha_inv = pq/rr.
	p.SmallStep("alpha", func(st *program.Store) {
		rr := st.Scalars[c.opRR]
		pq := st.Scalars[c.opPQ]
		if rr == 0 {
			st.Scalars[c.opAlphaInv] = 0 // converged; updates become zero
		} else {
			st.Scalars[c.opAlphaInv] = pq / rr
		}
	}, []program.OperandID{c.opRR, c.opPQ}, []program.OperandID{c.opAlphaInv})
	// alpha_p = p/alpha_inv = α·p ; alpha_q = q/alpha_inv = α·q.
	p.ScaleInv(c.opAP, c.opP, c.opAlphaInv).MarkIndexLaunch()
	p.ScaleInv(c.opAQ, c.opQ, c.opAlphaInv).MarkIndexLaunch()
	// x += α·p ; r -= α·q.
	p.Axpby(c.opX, 1, c.opX, 1, c.opAP)
	p.Axpby(c.opR, 1, c.opR, -1, c.opAQ)
	// rr_new = rᵀr and the residual norm for convergence.
	p.Dot(c.opRRN, c.opR, c.opR)
	p.Norm(c.opRnorm, c.opR)
	// β = rr_new/rr, applied as beta_inv = rr/rr_new via ScaleInv; then
	// p = r + β·p and the rr recurrence advances.
	p.SmallStep("beta", func(st *program.Store) {
		rrn := st.Scalars[c.opRRN]
		rr := st.Scalars[c.opRR]
		if rrn == 0 {
			st.Scalars[c.opBetaInv] = 0
		} else {
			st.Scalars[c.opBetaInv] = rr / rrn
		}
		st.Scalars[c.opRR] = rrn
	}, []program.OperandID{c.opRR, c.opRRN}, []program.OperandID{c.opBetaInv, c.opRR})
	p.ScaleInv(c.opBP, c.opP, c.opBetaInv).MarkIndexLaunch()
	p.Axpby(c.opP, 1, c.opR, 1, c.opBP)

	opt := graph.DefaultOptions()
	g, err := graph.Build(p, w.graphInputs(&opt), opt)
	if err != nil {
		return nil, err
	}
	c.g = g
	c.st = program.NewStore(p)
	w.attach(c.st)
	return c, nil
}

// Graph exposes the per-iteration TDG.
func (c *CG) Graph() *graph.TDG { return c.g }

// Program exposes the per-iteration program.
func (c *CG) Program() *program.Program { return c.prog }

// Solve runs CG for the right-hand side b under the given runtime (nil =
// sequential BSP) and returns the solution, the final relative residual, and
// the iteration count. Cancelling ctx aborts the solve mid-iteration and
// returns the context's error.
func (c *CG) Solve(ctx context.Context, r rt.Runtime, b []float64) ([]float64, float64, int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	m, _ := c.A.Dims()
	if len(b) != m {
		return nil, 0, 0, fmt.Errorf("solver: CG rhs has length %d, want %d", len(b), m)
	}
	if r == nil {
		r = rt.NewBSP(rt.Options{Workers: 1})
	}
	bn := blas.Nrm2(b)
	if bn == 0 {
		return make([]float64, m), 0, 0, nil
	}
	c.initState(b)
	pr := rt.PrepareRun(r, c.g, c.st)
	defer pr.Close()
	var relres float64
	for it := 1; it <= c.MaxIter; it++ {
		rnorm, err := c.iterate(ctx, pr)
		if err != nil {
			return nil, relres, it - 1, err
		}
		relres = rnorm / bn
		if relres < c.Tol {
			x := append([]float64(nil), c.st.Vec[c.opX]...)
			return x, relres, it, nil
		}
	}
	x := append([]float64(nil), c.st.Vec[c.opX]...)
	return x, relres, c.MaxIter, errors.New("solver: CG did not converge")
}

// initState seeds the CG state: x0 = 0, r0 = p0 = b, rr = r0ᵀr0.
func (c *CG) initState(b []float64) {
	zero(c.st.Vec[c.opX])
	copy(c.st.Vec[c.opR], b)
	copy(c.st.Vec[c.opP], b)
	c.st.Scalars[c.opRR] = blas.Dot(b, b)
}

// iterate executes one CG iteration (one full graph run) and returns the
// residual norm it measured. Steady-state calls perform no heap allocations.
//
//sparselint:hotpath
func (c *CG) iterate(ctx context.Context, pr rt.PreparedRun) (float64, error) {
	if err := pr.Run(ctx); err != nil {
		return 0, err
	}
	return c.st.Scalars[c.opRnorm], nil
}

// CGReference is a plain sequential CG on CSR for validation.
func CGReference(a *sparse.CSR, b []float64, tol float64, maxIter int) ([]float64, int, error) {
	m := a.Rows
	x := make([]float64, m)
	r := append([]float64(nil), b...)
	p := append([]float64(nil), b...)
	q := make([]float64, m)
	rr := blas.Dot(r, r)
	bn := blas.Nrm2(b)
	if bn == 0 {
		return x, 0, nil
	}
	for it := 1; it <= maxIter; it++ {
		a.SpMV(q, p)
		alpha := rr / blas.Dot(p, q)
		blas.Axpy(alpha, p, x)
		blas.Axpy(-alpha, q, r)
		rrn := blas.Dot(r, r)
		if blas.Nrm2(r)/bn < tol {
			return x, it, nil
		}
		beta := rrn / rr
		rr = rrn
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
	}
	return x, maxIter, errors.New("solver: reference CG did not converge")
}

// RandomRHS returns a deterministic random right-hand side for examples and
// tests.
func RandomRHS(m int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, m)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return b
}
