package solver

import (
	"context"
	"fmt"
	"math"

	"sparsetask/internal/graph"
	"sparsetask/internal/precond"
	"sparsetask/internal/program"
	"sparsetask/internal/rt"
	"sparsetask/internal/sparse"
)

// Batched conjugate-gradient solvers: k right-hand sides against the same
// matrix advance in lockstep through one width-k program, so every iteration
// streams the matrix once (SpMM/SpMMSym) instead of k times (SpMV) — the
// memory-bandwidth amortization the serving layer's batch coalescer exists to
// exploit. Scalar recurrences become per-column recurrences carried by the
// CColDot/CColAxpby calls; each column converges independently and is
// *retired* by zeroing its update coefficients (α_j = β_j = 0 freezes x_j, r_j
// and p_j exactly), so early columns cost only the residual vector-op work
// while the batch finishes the stragglers.

// BatchColResult is the outcome of one column (one right-hand side) of a
// batched solve.
type BatchColResult struct {
	X          []float64
	RelRes     float64
	Iterations int
	Converged  bool
}

// batchState is the per-column convergence bookkeeping shared by the batched
// solvers. act mirrors the coefficient zeroing: 1 while a column is live, 0
// after retirement.
type batchState struct {
	bn        []float64 // per-column ‖b_j‖
	act       []float64
	relres    []float64
	iters     []int
	converged []bool
	it        int // current iteration, set by Solve before each run
	nact      int // live columns after the last run
}

func newBatchState(k int) batchState {
	return batchState{
		bn:        make([]float64, k),
		act:       make([]float64, k),
		relres:    make([]float64, k),
		iters:     make([]int, k),
		converged: make([]bool, k),
	}
}

// seed resets the bookkeeping from the per-column right-hand-side norms.
// Columns with a zero right-hand side are born retired: their solution is 0.
func (s *batchState) seed(bn []float64) {
	s.it = 0
	s.nact = 0
	for j, n := range bn {
		s.bn[j] = n
		s.relres[j] = 0
		s.iters[j] = 0
		if n == 0 {
			s.act[j] = 0
			s.converged[j] = true
		} else {
			s.act[j] = 1
			s.converged[j] = false
			s.nact++
		}
	}
}

// checkRHS validates the k right-hand sides of a batched Solve call.
func checkRHS(bs [][]float64, m, k int) error {
	if len(bs) != k {
		return fmt.Errorf("solver: batch solve got %d right-hand sides, want %d", len(bs), k)
	}
	for j, b := range bs {
		if len(b) != m {
			return fmt.Errorf("solver: batch rhs %d has length %d, want %d", j, len(b), m)
		}
	}
	return nil
}

// scatterCols interleaves bs (k vectors of length m) into dst, a row-major
// m×k block, and returns each column's 2-norm.
func scatterCols(dst []float64, bs [][]float64, m, k int, bn []float64) {
	for j := range bn {
		bn[j] = 0
	}
	for i := 0; i < m; i++ {
		row := dst[i*k : i*k+k]
		for j := range row {
			v := bs[j][i]
			row[j] = v
			bn[j] += v * v
		}
	}
	for j := range bn {
		bn[j] = math.Sqrt(bn[j])
	}
}

// gatherResults extracts per-column solutions and bookkeeping into results.
func (s *batchState) gatherResults(x []float64, m, k, maxIter int) []BatchColResult {
	out := make([]BatchColResult, k)
	for j := 0; j < k; j++ {
		col := make([]float64, m)
		for i := 0; i < m; i++ {
			col[i] = x[i*k+j]
		}
		it := s.iters[j]
		if !s.converged[j] {
			it = maxIter
		}
		out[j] = BatchColResult{X: col, RelRes: s.relres[j], Iterations: it, Converged: s.converged[j]}
	}
	return out
}

// BatchCG solves k symmetric positive definite systems A·x_j = b_j in
// lockstep. The per-iteration program is CG's with width-k operands:
//
//	Q      = A·P            (SpMM — the matrix is streamed once for all k)
//	pq_j   = P_jᵀ·Q_j       (CDOT)
//	α_j    = act_j·rr_j/pq_j (small step; 0 retires the column)
//	X_j   += α_j·P_j ; R_j -= α_j·Q_j   (CAXPBY)
//	rrn_j  = R_jᵀ·R_j       (CDOT)
//	β_j    = act_j·rrn_j/rr_j, convergence + retirement  (small step)
//	P_j    = R_j + β_j·P_j  (CAXPBY)
type BatchCG struct {
	A sparse.Matrix
	K int
	// Tol is the per-column convergence threshold on ‖r_j‖/‖b_j‖.
	Tol     float64
	MaxIter int

	prog *program.Program
	g    *graph.TDG
	st   *program.Store

	opA, opX, opP, opQ, opR            program.OperandID
	opPQ, opRR, opRRN, opAlpha, opBeta program.OperandID
	state                              batchState
}

// NewBatchCG builds the batched solver and its single-iteration TDG for k
// right-hand sides. A *sparse.SymCSB matrix routes the SpMM through the
// symmetry-exploiting kernels.
func NewBatchCG(a sparse.Matrix, k int) (*BatchCG, error) {
	rows, cols := a.Dims()
	if rows != cols {
		return nil, fmt.Errorf("solver: BatchCG needs a square matrix, got %dx%d", rows, cols)
	}
	if k < 1 {
		return nil, fmt.Errorf("solver: BatchCG needs k >= 1, got %d", k)
	}
	c := &BatchCG{A: a, K: k, Tol: 1e-10, MaxIter: 10 * rows, state: newBatchState(k)}
	p := program.New(rows, a.BlockSize())
	c.prog = p
	w, err := wireMatrix(p, a)
	if err != nil {
		return nil, err
	}
	c.opA = w.op
	c.opX = p.Vec("x", k)
	c.opP = p.Vec("p", k)
	c.opQ = p.Vec("q", k)
	c.opR = p.Vec("r", k)
	c.opPQ = p.Small("pq", 1, k)
	c.opRR = p.Small("rr", 1, k)
	c.opRRN = p.Small("rr_new", 1, k)
	c.opAlpha = p.Small("alpha", 1, k)
	c.opBeta = p.Small("beta", 1, k)

	// Q = A·P ; pq = P∘Q column dots ; α_j = rr_j/pq_j for live columns.
	w.spmm(p, c.opQ, c.opP)
	p.ColDot(c.opPQ, c.opP, c.opQ)
	p.SmallStep("alpha", func(st *program.Store) {
		rr := st.Small[c.opRR]
		pq := st.Small[c.opPQ]
		al := st.Small[c.opAlpha]
		for j := range al {
			if c.state.act[j] == 0 || pq[j] == 0 {
				al[j] = 0
			} else {
				al[j] = rr[j] / pq[j]
			}
		}
	}, []program.OperandID{c.opRR, c.opPQ}, []program.OperandID{c.opAlpha})
	// X += α∘P ; R -= α∘Q.
	p.ColAxpby(c.opX, c.opX, c.opAlpha, 1, c.opP).MarkIndexLaunch()
	p.ColAxpby(c.opR, c.opR, c.opAlpha, -1, c.opQ).MarkIndexLaunch()
	// rr_new = R∘R column dots; convergence, retirement and β per column.
	p.ColDot(c.opRRN, c.opR, c.opR)
	p.SmallStep("beta", func(st *program.Store) {
		rr := st.Small[c.opRR]
		rrn := st.Small[c.opRRN]
		be := st.Small[c.opBeta]
		live := 0
		for j := range be {
			if c.state.act[j] == 0 {
				be[j] = 0
				continue
			}
			rel := math.Sqrt(rrn[j]) / c.state.bn[j]
			c.state.relres[j] = rel
			if rel < c.Tol {
				c.state.act[j] = 0
				c.state.iters[j] = c.state.it
				c.state.converged[j] = true
				be[j] = 0
			} else {
				if rr[j] == 0 {
					be[j] = 0
				} else {
					be[j] = rrn[j] / rr[j]
				}
				live++
			}
			rr[j] = rrn[j]
		}
		c.state.nact = live
	}, []program.OperandID{c.opRR, c.opRRN}, []program.OperandID{c.opBeta, c.opRR})
	// P = R + β∘P.
	p.ColAxpby(c.opP, c.opR, c.opBeta, 1, c.opP)

	opt := graph.DefaultOptions()
	g, err := graph.Build(p, w.graphInputs(&opt), opt)
	if err != nil {
		return nil, err
	}
	c.g = g
	c.st = program.NewStore(p)
	w.attach(c.st)
	return c, nil
}

// Graph exposes the per-iteration TDG.
func (c *BatchCG) Graph() *graph.TDG { return c.g }

// Program exposes the per-iteration program.
func (c *BatchCG) Program() *program.Program { return c.prog }

// Solve runs the batched CG for right-hand sides bs (len K, each of the
// matrix's row dimension) under the given runtime (nil = sequential BSP) and
// returns one result per column. Columns that fail to converge within MaxIter
// report Converged=false rather than failing the batch. Cancelling ctx aborts
// the solve mid-iteration.
func (c *BatchCG) Solve(ctx context.Context, r rt.Runtime, bs [][]float64) ([]BatchColResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	m, _ := c.A.Dims()
	if err := checkRHS(bs, m, c.K); err != nil {
		return nil, err
	}
	if r == nil {
		r = rt.NewBSP(rt.Options{Workers: 1})
	}
	c.initState(bs)
	if c.state.nact > 0 {
		pr := rt.PrepareRun(r, c.g, c.st)
		defer pr.Close()
		for it := 1; it <= c.MaxIter; it++ {
			c.state.it = it
			nact, err := c.iterate(ctx, pr)
			if err != nil {
				return nil, err
			}
			if nact == 0 {
				break
			}
		}
	}
	return c.state.gatherResults(c.st.Vec[c.opX], m, c.K, c.MaxIter), nil
}

// initState seeds the batched CG state: X = 0, R = P = B, rr_j = b_jᵀb_j.
func (c *BatchCG) initState(bs [][]float64) {
	m, _ := c.A.Dims()
	zero(c.st.Vec[c.opX])
	r := c.st.Vec[c.opR]
	scatterCols(r, bs, m, c.K, c.state.bn)
	copy(c.st.Vec[c.opP], r)
	rr := st0(c.st, c.opRR)
	for j := range rr {
		rr[j] = c.state.bn[j] * c.state.bn[j]
	}
	c.state.seed(c.state.bn)
}

// iterate executes one batched iteration (one full graph run) and returns the
// number of still-live columns. Steady-state calls perform no heap
// allocations.
//
//sparselint:hotpath
func (c *BatchCG) iterate(ctx context.Context, pr rt.PreparedRun) (int, error) {
	if err := pr.Run(ctx); err != nil {
		return 0, err
	}
	return c.state.nact, nil
}

// st0 returns the backing slice of a small operand.
func st0(st *program.Store, id program.OperandID) []float64 { return st.Small[id] }

// BatchPCG is BatchCG with the preconditioner applied inside the iteration
// graph: width-k triangular solves for an IC(0) factorization (the same level
// DAG as PCG, each task substituting all k columns of its row block), or a
// width-k DiagScale for the Jacobi fallback.
type BatchPCG struct {
	A sparse.Matrix
	M *precond.IC0
	K int
	// Tol is the per-column convergence threshold on ‖r_j‖/‖b_j‖.
	Tol     float64
	MaxIter int

	prog *program.Program
	g    *graph.TDG
	st   *program.Store

	opA, opX, opP, opQ, opR, opZ, opY program.OperandID
	opL, opU, opD                     program.OperandID
	opPQ, opRZ, opRZN, opRR2          program.OperandID
	opAlpha, opBeta                   program.OperandID
	state                             batchState
	colR, colY, colZ                  []float64 // init-time per-column scratch
}

// NewBatchPCG builds the batched preconditioned solver for k right-hand
// sides; lower/upper optionally memoize the factors' level analyses exactly as
// in NewPCGWithLevels.
func NewBatchPCG(a sparse.Matrix, m *precond.IC0, k int, lower, upper *precond.Levels) (*BatchPCG, error) {
	rows, cols := a.Dims()
	if rows != cols {
		return nil, fmt.Errorf("solver: BatchPCG needs a square matrix, got %dx%d", rows, cols)
	}
	if k < 1 {
		return nil, fmt.Errorf("solver: BatchPCG needs k >= 1, got %d", k)
	}
	if m == nil {
		return nil, fmt.Errorf("solver: BatchPCG needs a preconditioner (use BatchCG for none)")
	}
	if m.Rows != rows {
		return nil, fmt.Errorf("solver: preconditioner is over %d rows, matrix has %d", m.Rows, rows)
	}
	c := &BatchPCG{A: a, M: m, K: k, Tol: 1e-10, MaxIter: 10 * rows, state: newBatchState(k),
		colR: make([]float64, rows), colY: make([]float64, rows), colZ: make([]float64, rows)}
	p := program.New(rows, a.BlockSize())
	c.prog = p
	w, err := wireMatrix(p, a)
	if err != nil {
		return nil, err
	}
	c.opA = w.op
	c.opX = p.Vec("x", k)
	c.opP = p.Vec("p", k)
	c.opQ = p.Vec("q", k)
	c.opR = p.Vec("r", k)
	c.opZ = p.Vec("z", k)
	c.opPQ = p.Small("pq", 1, k)
	c.opRZ = p.Small("rz", 1, k)
	c.opRZN = p.Small("rz_new", 1, k)
	c.opRR2 = p.Small("rr2", 1, k)
	c.opAlpha = p.Small("alpha", 1, k)
	c.opBeta = p.Small("beta", 1, k)

	// Q = A·P ; pq = P∘Q ; α_j = rz_j/pq_j for live columns.
	w.spmm(p, c.opQ, c.opP)
	p.ColDot(c.opPQ, c.opP, c.opQ)
	p.SmallStep("alpha", func(st *program.Store) {
		rz := st.Small[c.opRZ]
		pq := st.Small[c.opPQ]
		al := st.Small[c.opAlpha]
		for j := range al {
			if c.state.act[j] == 0 || pq[j] == 0 {
				al[j] = 0
			} else {
				al[j] = rz[j] / pq[j]
			}
		}
	}, []program.OperandID{c.opRZ, c.opPQ}, []program.OperandID{c.opAlpha})
	p.ColAxpby(c.opX, c.opX, c.opAlpha, 1, c.opP).MarkIndexLaunch()
	p.ColAxpby(c.opR, c.opR, c.opAlpha, -1, c.opQ).MarkIndexLaunch()
	// rr2 = R∘R for per-column convergence on ‖r_j‖/‖b_j‖.
	p.ColDot(c.opRR2, c.opR, c.opR)

	// Z = M⁻¹·R: width-k preconditioner application.
	opt := graph.DefaultOptions()
	if m.Kind == precond.KindIC0 {
		c.opL = p.Tri("L")
		c.opU = p.Tri("U")
		c.opY = p.Vec("y", k)
		p.SpTrsvLower(c.opY, c.opL, c.opR)
		p.SpTrsvUpper(c.opZ, c.opU, c.opY)
		opt.Tris = map[program.OperandID]*sparse.CSR{c.opL: m.L, c.opU: m.U}
		if lower != nil && upper != nil && lower.Block == a.BlockSize() && upper.Block == a.BlockSize() {
			opt.TriDeps = map[program.OperandID][][]int32{
				c.opL: lower.BlockDeps,
				c.opU: upper.BlockDeps,
			}
		}
	} else {
		c.opD = p.Vec("dinv", 1)
		p.DiagScale(c.opZ, c.opD, c.opR).MarkIndexLaunch()
	}

	// rz_new = R∘Z ; convergence, retirement and β per column.
	p.ColDot(c.opRZN, c.opR, c.opZ)
	p.SmallStep("beta", func(st *program.Store) {
		rz := st.Small[c.opRZ]
		rzn := st.Small[c.opRZN]
		rr2 := st.Small[c.opRR2]
		be := st.Small[c.opBeta]
		live := 0
		for j := range be {
			if c.state.act[j] == 0 {
				be[j] = 0
				continue
			}
			rel := math.Sqrt(rr2[j]) / c.state.bn[j]
			c.state.relres[j] = rel
			if rel < c.Tol {
				c.state.act[j] = 0
				c.state.iters[j] = c.state.it
				c.state.converged[j] = true
				be[j] = 0
			} else {
				if rz[j] == 0 {
					be[j] = 0
				} else {
					be[j] = rzn[j] / rz[j]
				}
				live++
			}
			rz[j] = rzn[j]
		}
		c.state.nact = live
	}, []program.OperandID{c.opRZ, c.opRZN, c.opRR2}, []program.OperandID{c.opBeta, c.opRZ})
	// P = Z + β∘P.
	p.ColAxpby(c.opP, c.opZ, c.opBeta, 1, c.opP)

	g, err := graph.Build(p, w.graphInputs(&opt), opt)
	if err != nil {
		return nil, err
	}
	c.g = g
	c.st = program.NewStore(p)
	w.attach(c.st)
	if m.Kind == precond.KindIC0 {
		c.st.SetTri(c.opL, m.L)
		c.st.SetTri(c.opU, m.U)
	} else {
		copy(c.st.Vec[c.opD], m.DiagInv)
	}
	return c, nil
}

// Graph exposes the per-iteration TDG.
func (c *BatchPCG) Graph() *graph.TDG { return c.g }

// Program exposes the per-iteration program.
func (c *BatchPCG) Program() *program.Program { return c.prog }

// Solve runs the batched PCG for right-hand sides bs and returns one result
// per column (see BatchCG.Solve).
func (c *BatchPCG) Solve(ctx context.Context, r rt.Runtime, bs [][]float64) ([]BatchColResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	m, _ := c.A.Dims()
	if err := checkRHS(bs, m, c.K); err != nil {
		return nil, err
	}
	if r == nil {
		r = rt.NewBSP(rt.Options{Workers: 1})
	}
	c.initState(bs)
	if c.state.nact > 0 {
		pr := rt.PrepareRun(r, c.g, c.st)
		defer pr.Close()
		for it := 1; it <= c.MaxIter; it++ {
			c.state.it = it
			nact, err := c.iterate(ctx, pr)
			if err != nil {
				return nil, err
			}
			if nact == 0 {
				break
			}
		}
	}
	return c.state.gatherResults(c.st.Vec[c.opX], m, c.K, c.MaxIter), nil
}

// initState seeds the batched PCG state: X = 0, R = B, Z = M⁻¹·R applied
// column by column (init is off the hot path), P = Z, rz_j = r_jᵀz_j.
func (c *BatchPCG) initState(bs [][]float64) {
	m, _ := c.A.Dims()
	k := c.K
	zero(c.st.Vec[c.opX])
	r := c.st.Vec[c.opR]
	scatterCols(r, bs, m, k, c.state.bn)
	z := c.st.Vec[c.opZ]
	pv := c.st.Vec[c.opP]
	rz := st0(c.st, c.opRZ)
	for j := 0; j < k; j++ {
		for i := 0; i < m; i++ {
			c.colR[i] = r[i*k+j]
		}
		if c.M.Kind == precond.KindIC0 {
			c.M.Apply(c.colZ, c.colY, c.colR)
		} else {
			c.M.Apply(c.colZ, nil, c.colR)
		}
		var s float64
		for i := 0; i < m; i++ {
			z[i*k+j] = c.colZ[i]
			pv[i*k+j] = c.colZ[i]
			s += c.colR[i] * c.colZ[i]
		}
		rz[j] = s
	}
	c.state.seed(c.state.bn)
}

// iterate executes one batched PCG iteration (one full graph run, including
// the width-k level-scheduled triangular solves) and returns the number of
// still-live columns. Steady-state calls perform no heap allocations.
//
//sparselint:hotpath
func (c *BatchPCG) iterate(ctx context.Context, pr rt.PreparedRun) (int, error) {
	if err := pr.Run(ctx); err != nil {
		return 0, err
	}
	return c.state.nact, nil
}
