package solver

import (
	"context"
	"fmt"
	"testing"

	"sparsetask/internal/rt"
	"sparsetask/internal/topo"
)

// TestLanczosDeterministicAcrossTopologies pins down the core property that
// makes locality-aware scheduling safe to enable everywhere: the topology
// profile and steal order change only *where* tasks run, never the
// floating-point summation order inside them — task bodies and the
// dependence structure fix that — so Lanczos must produce bit-identical
// eigenvalues under every backend × topology × seed combination.
func TestLanczosDeterministicAcrossTopologies(t *testing.T) {
	coo := randomSPD(120, 7)
	topos := []topo.Topology{topo.Flat(), topo.Broadwell(), topo.EPYC()}
	backends := []string{"deepsparse", "hpx", "regent"}
	for _, seed := range []int64{1, 42} {
		var want []float64
		var wantFrom string
		for _, tp := range topos {
			for _, backend := range backends {
				name := fmt.Sprintf("%s/%s/seed%d", backend, tp.Name, seed)
				var r rt.Runtime
				opt := rt.Options{Workers: 4, Topo: tp}
				switch backend {
				case "deepsparse":
					r = rt.NewDeepSparse(opt)
				case "hpx":
					r = rt.NewHPX(opt)
				case "regent":
					r = rt.NewRegent(opt)
				}
				l, err := NewLanczos(coo.ToCSB(12), 25)
				if err != nil {
					t.Fatal(err)
				}
				res, err := l.Run(context.Background(), r, seed)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if len(res.Eigenvalues) == 0 {
					t.Fatalf("%s: no eigenvalues", name)
				}
				if want == nil {
					want, wantFrom = res.Eigenvalues, name
					continue
				}
				if len(res.Eigenvalues) != len(want) {
					t.Fatalf("%s: %d eigenvalues, %s gave %d",
						name, len(res.Eigenvalues), wantFrom, len(want))
				}
				for i := range want {
					if res.Eigenvalues[i] != want[i] {
						t.Errorf("%s: λ_%d = %v differs from %s's %v (must be bit-identical)",
							name, i, res.Eigenvalues[i], wantFrom, want[i])
					}
				}
			}
		}
	}
}
