package solver

import (
	"fmt"

	"sparsetask/internal/graph"
	"sparsetask/internal/program"
	"sparsetask/internal/sparse"
)

// matWiring binds a solver's system matrix to the program IR. The solvers
// accept any sparse.Matrix; the wiring type-switches once at construction so
// the per-iteration program uses the symmetric kernels (OpSymSparse +
// CSpMMSym) when handed a SymCSB, and the general path otherwise — the rest
// of the solver code is format-agnostic.
type matWiring struct {
	op  program.OperandID
	gen *sparse.CSB
	sym *sparse.SymCSB
}

// wireMatrix declares the matrix operand for a. Supported concrete types are
// *sparse.CSB (general tiles) and *sparse.SymCSB (lower-triangle storage with
// symmetry-exploiting kernels).
func wireMatrix(p *program.Program, a sparse.Matrix) (matWiring, error) {
	switch m := a.(type) {
	case *sparse.CSB:
		return matWiring{op: p.Sparse("A"), gen: m}, nil
	case *sparse.SymCSB:
		return matWiring{op: p.SymSparse("A"), sym: m}, nil
	default:
		return matWiring{}, fmt.Errorf("solver: unsupported matrix type %T", a)
	}
}

// spmm appends the out = A·x call matching the storage format.
func (w matWiring) spmm(p *program.Program, out, x program.OperandID) {
	if w.sym != nil {
		p.SpMMSym(out, w.op, x)
	} else {
		p.SpMM(out, w.op, x)
	}
}

// graphInputs returns the general-matrix map for graph.Build and records the
// symmetric matrix in opt, whichever applies.
func (w matWiring) graphInputs(opt *graph.Options) map[program.OperandID]*sparse.CSB {
	if w.sym != nil {
		opt.Syms = map[program.OperandID]*sparse.SymCSB{w.op: w.sym}
		return nil
	}
	return map[program.OperandID]*sparse.CSB{w.op: w.gen}
}

// attach binds the matrix storage to the run's store.
func (w matWiring) attach(st *program.Store) {
	if w.sym != nil {
		st.SetSymSparse(w.op, w.sym)
	} else {
		st.SetSparse(w.op, w.gen)
	}
}
