package solver

import (
	"context"
	"fmt"
	"math"
	"testing"

	"sparsetask/internal/matgen"
	"sparsetask/internal/precond"
	"sparsetask/internal/rt"
	"sparsetask/internal/sparse"
	"sparsetask/internal/topo"
)

// laplacian2D builds the g×g-grid 5-point Laplacian: SPD, M-matrix-like, the
// canonical IC(0) target.
func laplacian2D(g int) *sparse.COO {
	n := g * g
	a := sparse.NewCOO(n, n, 5*n)
	at := func(r, c int) int32 { return int32(r*g + c) }
	for r := 0; r < g; r++ {
		for c := 0; c < g; c++ {
			i := at(r, c)
			a.Append(i, i, 4)
			if r > 0 {
				a.Append(i, at(r-1, c), -1)
			}
			if r < g-1 {
				a.Append(i, at(r+1, c), -1)
			}
			if c > 0 {
				a.Append(i, at(r, c-1), -1)
			}
			if c < g-1 {
				a.Append(i, at(r, c+1), -1)
			}
		}
	}
	return a
}

// TestPCGMatchesReference: the task-graph PCG must agree with the serial
// reference PCG and actually solve the system.
func TestPCGMatchesReference(t *testing.T) {
	coo := laplacian2D(20)
	n := coo.Rows
	csr := coo.ToCSR()
	m, err := precond.Factorize(csr)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != precond.KindIC0 {
		t.Fatalf("expected IC0, got %v", m.Kind)
	}
	b := RandomRHS(n, 5)

	c, err := NewPCG(coo.ToCSB(32), m)
	if err != nil {
		t.Fatal(err)
	}
	x, relres, iters, err := c.Solve(context.Background(), nil, b)
	if err != nil {
		t.Fatalf("PCG: %v (relres %g after %d iters)", err, relres, iters)
	}
	xref, itersRef, err := PCGReference(csr, m, b, c.Tol, c.MaxIter)
	if err != nil {
		t.Fatal(err)
	}
	// Same algorithm, same preconditioner; only intra-kernel accumulation
	// order differs (CSB tiles vs CSR rows), so solutions agree tightly.
	for i := range x {
		if math.Abs(x[i]-xref[i]) > 1e-8 {
			t.Fatalf("x[%d] = %v, reference %v", i, x[i], xref[i])
		}
	}
	if d := iters - itersRef; d < -1 || d > 1 {
		t.Fatalf("graph PCG took %d iterations, reference %d", iters, itersRef)
	}
	// And the residual really is small: ‖A·x − b‖/‖b‖ ≤ tol·10.
	ax := make([]float64, n)
	csr.SpMV(ax, x)
	num, den := 0.0, 0.0
	for i := range b {
		num += (ax[i] - b[i]) * (ax[i] - b[i])
		den += b[i] * b[i]
	}
	if math.Sqrt(num/den) > c.Tol*10 {
		t.Fatalf("true relative residual %g too large", math.Sqrt(num/den))
	}
}

// TestPCGIterationReduction is the acceptance criterion: on the seeded SPD
// generator at n ≥ 100k, IC(0)-preconditioned CG must converge in at most a
// third of the iterations unpreconditioned CG needs.
func TestPCGIterationReduction(t *testing.T) {
	const n = 100_000
	coo := matgen.SPDLaplacian(n, 42)
	csr := coo.ToCSR()
	m, err := precond.Factorize(csr)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != precond.KindIC0 {
		t.Fatalf("IC(0) must succeed on the SPD generator, got %v", m.Kind)
	}
	b := RandomRHS(n, 7)
	const tol = 1e-8
	csb := coo.ToCSB(2048)

	cg, err := NewCG(csb)
	if err != nil {
		t.Fatal(err)
	}
	cg.Tol = tol
	_, _, cgIters, err := cg.Solve(context.Background(), nil, b)
	if err != nil {
		t.Fatalf("CG: %v", err)
	}

	pcg, err := NewPCG(csb, m)
	if err != nil {
		t.Fatal(err)
	}
	pcg.Tol = tol
	_, _, pcgIters, err := pcg.Solve(context.Background(), nil, b)
	if err != nil {
		t.Fatalf("PCG: %v", err)
	}
	t.Logf("n=%d: CG %d iterations, PCG %d (ratio %.2fx)", n, cgIters, pcgIters, float64(cgIters)/float64(pcgIters))
	if pcgIters*3 > cgIters {
		t.Fatalf("PCG took %d iterations, CG %d: want ≤ 1/3", pcgIters, cgIters)
	}
}

// TestPCGJacobiFallback: with a Jacobi preconditioner (the IC(0) breakdown
// fallback) the program uses the DiagScale path and must still converge to
// the reference solution.
func TestPCGJacobiFallback(t *testing.T) {
	coo := randomSPD(300, 11)
	csr := coo.ToCSR()
	n := coo.Rows
	dinv := make([]float64, n)
	for i := 0; i < n; i++ {
		for p := csr.RowPtr[i]; p < csr.RowPtr[i+1]; p++ {
			if int(csr.ColIdx[p]) == i {
				dinv[i] = 1 / csr.V[p]
			}
		}
	}
	m := &precond.IC0{Kind: precond.KindJacobi, Rows: n, DiagInv: dinv, BreakdownRow: 0}
	b := RandomRHS(n, 13)
	c, err := NewPCG(coo.ToCSB(64), m)
	if err != nil {
		t.Fatal(err)
	}
	x, _, _, err := c.Solve(context.Background(), nil, b)
	if err != nil {
		t.Fatal(err)
	}
	xref, _, err := PCGReference(csr, m, b, c.Tol, c.MaxIter)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-xref[i]) > 1e-8 {
			t.Fatalf("x[%d] = %v, reference %v", i, x[i], xref[i])
		}
	}
}

// TestPCGDeterministicAcrossTopologies extends the bit-identical guarantee
// to the preconditioned solve: topology profiles and backends reschedule the
// triangular wavefronts but never change any row's accumulation order, so
// the full solve — solution vector and iteration count — must match exactly.
func TestPCGDeterministicAcrossTopologies(t *testing.T) {
	coo := laplacian2D(18)
	m, err := precond.Factorize(coo.ToCSR())
	if err != nil || m.Kind != precond.KindIC0 {
		t.Fatalf("factorize: %v kind=%v", err, m.Kind)
	}
	b := RandomRHS(coo.Rows, 3)
	topos := []topo.Topology{topo.Flat(), topo.Broadwell(), topo.EPYC()}
	backends := []string{"bsp", "deepsparse", "hpx", "regent"}
	var want []float64
	wantIters := 0
	var wantFrom string
	for _, tp := range topos {
		for _, backend := range backends {
			name := fmt.Sprintf("%s/%s", backend, tp.Name)
			opt := rt.Options{Workers: 4, Topo: tp}
			var r rt.Runtime
			switch backend {
			case "bsp":
				r = rt.NewBSP(opt)
			case "deepsparse":
				r = rt.NewDeepSparse(opt)
			case "hpx":
				r = rt.NewHPX(opt)
			case "regent":
				r = rt.NewRegent(opt)
			}
			c, err := NewPCG(coo.ToCSB(24), m)
			if err != nil {
				t.Fatal(err)
			}
			x, _, iters, err := c.Solve(context.Background(), r, b)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if want == nil {
				want, wantIters, wantFrom = x, iters, name
				continue
			}
			if iters != wantIters {
				t.Fatalf("%s: %d iterations, %s took %d", name, iters, wantFrom, wantIters)
			}
			for i := range want {
				if x[i] != want[i] {
					t.Fatalf("%s: x[%d] = %v differs from %s's %v (must be bit-identical)",
						name, i, x[i], wantFrom, want[i])
				}
			}
		}
	}
}

// TestPCGMemoizedLevels: passing precomputed level analyses (the server's
// factor cache path) must yield the same graph shape and the same solution.
func TestPCGMemoizedLevels(t *testing.T) {
	coo := laplacian2D(15)
	m, err := precond.Factorize(coo.ToCSR())
	if err != nil || m.Kind != precond.KindIC0 {
		t.Fatalf("factorize: %v kind=%v", err, m.Kind)
	}
	csb := coo.ToCSB(16)
	low := precond.AnalyzeLower(m.L, csb.Block)
	up := precond.AnalyzeUpper(m.U, csb.Block)
	b := RandomRHS(coo.Rows, 21)

	plain, err := NewPCG(csb, m)
	if err != nil {
		t.Fatal(err)
	}
	memo, err := NewPCGWithLevels(csb, m, low, up)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.g.Tasks) != len(memo.g.Tasks) || plain.g.NumEdges != memo.g.NumEdges {
		t.Fatalf("memoized graph differs: %d/%d tasks, %d/%d edges",
			len(plain.g.Tasks), len(memo.g.Tasks), plain.g.NumEdges, memo.g.NumEdges)
	}
	x1, _, it1, err := plain.Solve(context.Background(), nil, b)
	if err != nil {
		t.Fatal(err)
	}
	x2, _, it2, err := memo.Solve(context.Background(), nil, b)
	if err != nil {
		t.Fatal(err)
	}
	if it1 != it2 {
		t.Fatalf("iteration counts differ: %d vs %d", it1, it2)
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("memoized solve differs at %d", i)
		}
	}
}
