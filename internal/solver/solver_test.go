package solver

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"sparsetask/internal/rt"
	"sparsetask/internal/sparse"
)

// laplacian1D returns the n×n 1D Laplacian (tridiagonal 2,-1) whose
// eigenvalues are known in closed form: 2 − 2cos(kπ/(n+1)).
func laplacian1D(n int) *sparse.COO {
	a := sparse.NewCOO(n, n, 3*n)
	for i := 0; i < n; i++ {
		a.Append(int32(i), int32(i), 2)
		if i+1 < n {
			a.Append(int32(i), int32(i+1), -1)
			a.Append(int32(i+1), int32(i), -1)
		}
	}
	return a
}

func laplacianEig(n, k int) float64 {
	return 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1))
}

// randomSPD returns a random symmetric positive definite sparse matrix.
func randomSPD(m int, seed int64) *sparse.COO {
	rng := rand.New(rand.NewSource(seed))
	a := sparse.NewCOO(m, m, m*8)
	for i := 0; i < m; i++ {
		a.Append(int32(i), int32(i), 8+rng.Float64())
	}
	for k := 0; k < m*3; k++ {
		i, j := int32(rng.Intn(m)), int32(rng.Intn(m))
		if i == j {
			continue
		}
		v := rng.NormFloat64() * 0.3
		a.Append(i, j, v)
		a.Append(j, i, v)
	}
	a.Compact()
	return a
}

func TestLanczosLaplacianLargestEigenvalues(t *testing.T) {
	n := 100
	coo := laplacian1D(n)
	// The Laplacian's top eigenvalues cluster quadratically and converge
	// slowly from a single random start vector, so run Lanczos nearly to
	// full dimension, where the Ritz values are exact.
	l, err := NewLanczos(coo.ToCSB(16), 99)
	if err != nil {
		t.Fatal(err)
	}
	res, err := l.Run(context.Background(), rt.NewDeepSparse(rt.Options{Workers: 4}), 1)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		want := laplacianEig(n, n-k)
		if math.Abs(res.Eigenvalues[k]-want) > 1e-6 {
			t.Errorf("λ_%d = %v, want %v", k, res.Eigenvalues[k], want)
		}
	}
}

func TestLanczosMatchesReferenceExactly(t *testing.T) {
	// Same seed ⇒ same starting vector ⇒ same Krylov space. Ritz values
	// should agree to high precision despite different execution orders.
	coo := randomSPD(80, 3)
	csr := coo.ToCSR()
	l, err := NewLanczos(coo.ToCSB(10), 30)
	if err != nil {
		t.Fatal(err)
	}
	res, err := l.Run(context.Background(), rt.NewHPX(rt.Options{Workers: 3}), 7)
	if err != nil {
		t.Fatal(err)
	}
	want, err := LanczosReference(csr, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Eigenvalues) != len(want) {
		t.Fatalf("got %d Ritz values, reference has %d", len(res.Eigenvalues), len(want))
	}
	// The task version and the reference accumulate in different floating-
	// point orders (CSB tiles vs CSR rows, partitioned vs whole-vector
	// dots); Lanczos amplifies such rounding for *unconverged* interior
	// Ritz values, so only the converged extremal values are comparable.
	for i := 0; i < 3; i++ {
		if math.Abs(res.Eigenvalues[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
			t.Errorf("Ritz %d: %v vs reference %v", i, res.Eigenvalues[i], want[i])
		}
	}
}

func TestLanczosAllRuntimesAgree(t *testing.T) {
	coo := randomSPD(60, 5)
	runtimes := []rt.Runtime{
		rt.NewBSP(rt.Options{Workers: 2}),
		rt.NewDeepSparse(rt.Options{Workers: 2}),
		rt.NewHPX(rt.Options{Workers: 2, NUMADomains: 2}),
		rt.NewRegent(rt.Options{Workers: 2, AnalysisCost: 5}),
	}
	var first []float64
	for _, r := range runtimes {
		l, err := NewLanczos(coo.ToCSB(8), 12)
		if err != nil {
			t.Fatal(err)
		}
		res, err := l.Run(context.Background(), r, 11)
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if first == nil {
			first = res.Eigenvalues
			continue
		}
		for i := range first {
			if res.Eigenvalues[i] != first[i] {
				t.Errorf("%s: Ritz %d = %v, differs from BSP %v", r.Name(), i, res.Eigenvalues[i], first[i])
			}
		}
	}
}

func TestLanczosBreakdownDetection(t *testing.T) {
	// Identity matrix: Krylov space is 1-dimensional; β_1 = 0 immediately.
	n := 32
	a := sparse.NewCOO(n, n, n)
	for i := 0; i < n; i++ {
		a.Append(int32(i), int32(i), 1)
	}
	l, err := NewLanczos(a.ToCSB(8), 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := l.Run(context.Background(), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations != 1 {
		t.Errorf("expected immediate breakdown convergence, got %+v", res)
	}
	if math.Abs(res.Eigenvalues[0]-1) > 1e-12 {
		t.Errorf("λ = %v, want 1", res.Eigenvalues[0])
	}
}

func TestLanczosInputValidation(t *testing.T) {
	coo := randomSPD(10, 1)
	if _, err := NewLanczos(coo.ToCSB(4), 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewLanczos(coo.ToCSB(4), 11); err == nil {
		t.Error("k > m accepted")
	}
}

func TestLOBPCGLaplacianSmallestEigenvalues(t *testing.T) {
	// The unpreconditioned Laplacian is ill-conditioned, so the residual
	// decays slowly; the Ritz values themselves converge to ~1e-8 within 80
	// iterations (eigenvalue error ≈ residual²/gap).
	n := 100
	coo := laplacian1D(n)
	l, err := NewLOBPCG(coo.ToCSB(16), 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := l.Run(context.Background(), rt.NewDeepSparse(rt.Options{Workers: 4}), 1, 80)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		want := laplacianEig(n, k+1)
		if math.Abs(res.Eigenvalues[k]-want) > 1e-6 {
			t.Errorf("λ_%d = %v, want %v", k, res.Eigenvalues[k], want)
		}
	}
}

func TestLOBPCGMatchesReference(t *testing.T) {
	coo := randomSPD(90, 13)
	csr := coo.ToCSR()
	l, err := NewLOBPCG(coo.ToCSB(12), 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := l.Run(context.Background(), rt.NewHPX(rt.Options{Workers: 3}), 17, 12)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := LOBPCGReference(csr, 3, 12, 17)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(res.Eigenvalues[i]-want[i]) > 1e-7*(1+math.Abs(want[i])) {
			t.Errorf("λ_%d = %v, reference %v", i, res.Eigenvalues[i], want[i])
		}
	}
}

func TestLOBPCGAllRuntimesAgree(t *testing.T) {
	coo := randomSPD(72, 23)
	runtimes := []rt.Runtime{
		rt.NewBSP(rt.Options{Workers: 2}),
		rt.NewDeepSparse(rt.Options{Workers: 3}),
		rt.NewHPX(rt.Options{Workers: 3}),
		rt.NewRegent(rt.Options{Workers: 2, AnalysisCost: 5, DynamicTracing: true}),
	}
	var first []float64
	for _, r := range runtimes {
		l, err := NewLOBPCG(coo.ToCSB(9), 2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := l.Run(context.Background(), r, 5, 8)
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if first == nil {
			first = res.Eigenvalues
			continue
		}
		for i := range first {
			if res.Eigenvalues[i] != first[i] {
				t.Errorf("%s: λ_%d = %v, differs from BSP %v", r.Name(), i, res.Eigenvalues[i], first[i])
			}
		}
	}
}

func TestLOBPCGProgramShape(t *testing.T) {
	coo := randomSPD(64, 29)
	l, err := NewLOBPCG(coo.ToCSB(8), 4)
	if err != nil {
		t.Fatal(err)
	}
	// 30 calls per iteration, mirroring Alg. 2's kernel structure (the
	// paper counts a kernel-level critical path of 29 for its variant).
	if got := len(l.Program().Calls); got != 30 {
		t.Errorf("LOBPCG program has %d calls, want 30", got)
	}
	st := l.Graph().ComputeStats()
	if st.Tasks == 0 || st.Roots == 0 {
		t.Fatalf("degenerate TDG: %+v", st)
	}
	// The kernel-level critical path should be deep (LOBPCG's complexity),
	// far deeper than Lanczos's.
	lz, err := NewLanczos(coo.ToCSB(8), 5)
	if err != nil {
		t.Fatal(err)
	}
	lzst := lz.Graph().ComputeStats()
	if st.KernelCriticalPath <= lzst.KernelCriticalPath {
		t.Errorf("LOBPCG kernel critical path %d should exceed Lanczos %d",
			st.KernelCriticalPath, lzst.KernelCriticalPath)
	}
}

func TestLOBPCGInputValidation(t *testing.T) {
	coo := randomSPD(12, 1)
	if _, err := NewLOBPCG(coo.ToCSB(4), 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewLOBPCG(coo.ToCSB(4), 5); err == nil {
		t.Error("3n > m accepted")
	}
}

func TestLOBPCGFixedIterationMode(t *testing.T) {
	coo := randomSPD(48, 31)
	l, err := NewLOBPCG(coo.ToCSB(8), 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := l.Run(context.Background(), nil, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 4 {
		t.Errorf("fixed mode ran %d iterations, want 4", res.Iterations)
	}
}

func TestLOBPCGJacobiPreconditioner(t *testing.T) {
	// A matrix with a strongly varying diagonal: D + small symmetric
	// off-diagonal coupling, D_ii spread over three orders of magnitude.
	// The Jacobi preconditioner should converge markedly faster.
	n := 200
	rng := rand.New(rand.NewSource(41))
	a := sparse.NewCOO(n, n, n*4)
	for i := 0; i < n; i++ {
		a.Append(int32(i), int32(i), 1+float64(i)*float64(i)*0.05)
	}
	for k := 0; k < n; k++ {
		i, j := int32(rng.Intn(n)), int32(rng.Intn(n))
		if i == j {
			continue
		}
		v := rng.NormFloat64() * 0.05
		a.Append(i, j, v)
		a.Append(j, i, v)
	}
	a.Compact()
	csb := a.ToCSB(32)

	run := func(opts ...Option) Result {
		l, err := NewLOBPCG(csb, 3, opts...)
		if err != nil {
			t.Fatal(err)
		}
		l.Tol = 1e-7
		l.MaxIter = 200
		res, err := l.Run(context.Background(), rt.NewDeepSparse(rt.Options{Workers: 2}), 9, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run()
	precond := run(WithJacobiPreconditioner())
	if !precond.Converged {
		t.Fatalf("preconditioned run did not converge: %+v", precond)
	}
	if plain.Converged && precond.Iterations >= plain.Iterations {
		t.Errorf("preconditioning did not help: %d iterations vs plain %d",
			precond.Iterations, plain.Iterations)
	}
	// Both must agree on the eigenvalues they found.
	if plain.Converged {
		for i := range precond.Eigenvalues {
			if math.Abs(precond.Eigenvalues[i]-plain.Eigenvalues[i]) > 1e-5*(1+math.Abs(plain.Eigenvalues[i])) {
				t.Errorf("λ_%d disagrees: %v vs %v", i, precond.Eigenvalues[i], plain.Eigenvalues[i])
			}
		}
	}
}

func TestLOBPCGPreconditionedAllRuntimesAgree(t *testing.T) {
	coo := randomSPD(72, 37)
	runtimes := []rt.Runtime{
		rt.NewBSP(rt.Options{Workers: 2}),
		rt.NewDeepSparse(rt.Options{Workers: 3}),
		rt.NewHPX(rt.Options{Workers: 3, NUMADomains: 2}),
	}
	var first []float64
	for _, r := range runtimes {
		l, err := NewLOBPCG(coo.ToCSB(9), 2, WithJacobiPreconditioner())
		if err != nil {
			t.Fatal(err)
		}
		res, err := l.Run(context.Background(), r, 5, 8)
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if first == nil {
			first = res.Eigenvalues
			continue
		}
		for i := range first {
			if res.Eigenvalues[i] != first[i] {
				t.Errorf("%s: λ_%d differs", r.Name(), i)
			}
		}
	}
}

func TestLOBPCGEigenvectorResiduals(t *testing.T) {
	coo := randomSPD(90, 43)
	csr := coo.ToCSR()
	l, err := NewLOBPCG(coo.ToCSB(12), 3)
	if err != nil {
		t.Fatal(err)
	}
	l.Tol = 1e-8
	l.MaxIter = 300
	res, err := l.Run(context.Background(), rt.NewDeepSparse(rt.Options{Workers: 2}), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	v := l.Eigenvectors()
	m, n := 90, 3
	av := make([]float64, m*n)
	csr.SpMM(av, v, n)
	for j := 0; j < n; j++ {
		var num, den float64
		for i := 0; i < m; i++ {
			d := av[i*n+j] - res.Eigenvalues[j]*v[i*n+j]
			num += d * d
			den += v[i*n+j] * v[i*n+j]
		}
		if rel := math.Sqrt(num / den); rel > 1e-6 {
			t.Errorf("eigenpair %d residual %g", j, rel)
		}
	}
}

func TestLanczosRitzVectorResiduals(t *testing.T) {
	coo := randomSPD(80, 47)
	csr := coo.ToCSR()
	l, err := NewLanczos(coo.ToCSB(10), 40)
	if err != nil {
		t.Fatal(err)
	}
	res, err := l.Run(context.Background(), rt.NewHPX(rt.Options{Workers: 2}), 5)
	if err != nil {
		t.Fatal(err)
	}
	v, err := l.RitzVectors(2)
	if err != nil {
		t.Fatal(err)
	}
	m, want := 80, 2
	av := make([]float64, m*want)
	csr.SpMM(av, v, want)
	for j := 0; j < want; j++ {
		var num, den float64
		for i := 0; i < m; i++ {
			d := av[i*want+j] - res.Eigenvalues[j]*v[i*want+j]
			num += d * d
			den += v[i*want+j] * v[i*want+j]
		}
		if rel := math.Sqrt(num / den); rel > 1e-5 {
			t.Errorf("Ritz pair %d residual %g", j, rel)
		}
	}
	if _, err := l.RitzVectors(1000); err == nil {
		t.Error("excessive want accepted")
	}
}
