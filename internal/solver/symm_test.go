package solver

import (
	"context"
	"fmt"
	"math"
	"testing"

	"sparsetask/internal/rt"
	"sparsetask/internal/sparse"
	"sparsetask/internal/topo"
)

// arrowheadSPD builds an SPD arrowhead matrix whose SymCSB schedule takes the
// fallback accumulator path (band 0 meets every tile row).
func arrowheadSPD(n int) *sparse.COO {
	a := sparse.NewCOO(n, n, 0)
	for i := 0; i < n; i++ {
		d := float64(n) // strong diagonal dominance keeps it SPD
		a.Append(int32(i), int32(i), d)
		if i > 0 {
			a.Append(int32(i), 0, 1)
			a.Append(0, int32(i), 1)
		}
	}
	a.Compact()
	return a
}

func toSym(t *testing.T, coo *sparse.COO, block int) *sparse.SymCSB {
	t.Helper()
	sym, err := coo.ToSymCSB(block)
	if err != nil {
		t.Fatal(err)
	}
	return sym
}

// Symmetric storage must reach the same answers as the general path: CG
// solves agree to solver tolerance, Lanczos/LOBPCG eigenvalues to a loose
// rounding bound (the two paths accumulate in different orders).
func TestSolversSymmetricMatchesGeneral(t *testing.T) {
	coo := randomSPD(120, 5)
	gen := coo.ToCSB(12)
	sym := toSym(t, coo, 12)

	b := RandomRHS(120, 3)
	cgG, err := NewCG(gen)
	if err != nil {
		t.Fatal(err)
	}
	cgS, err := NewCG(sym)
	if err != nil {
		t.Fatal(err)
	}
	xg, _, _, err := cgG.Solve(context.Background(), nil, b)
	if err != nil {
		t.Fatal(err)
	}
	xs, _, _, err := cgS.Solve(context.Background(), nil, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xg {
		if d := math.Abs(xg[i] - xs[i]); d > 1e-6*(1+math.Abs(xg[i])) {
			t.Fatalf("CG x[%d]: general %g vs symmetric %g", i, xg[i], xs[i])
		}
	}

	lG, err := NewLanczos(gen, 20)
	if err != nil {
		t.Fatal(err)
	}
	lS, err := NewLanczos(sym, 20)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := lG.Run(context.Background(), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := lS.Run(context.Background(), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if d := math.Abs(rg.Eigenvalues[i] - rs.Eigenvalues[i]); d > 1e-8*(1+math.Abs(rg.Eigenvalues[i])) {
			t.Fatalf("Lanczos λ_%d: general %g vs symmetric %g", i, rg.Eigenvalues[i], rs.Eigenvalues[i])
		}
	}

	eG, err := NewLOBPCG(gen, 4)
	if err != nil {
		t.Fatal(err)
	}
	eS, err := NewLOBPCG(sym, 4)
	if err != nil {
		t.Fatal(err)
	}
	og, err := eG.Run(context.Background(), nil, 1, 30)
	if err != nil {
		t.Fatal(err)
	}
	os, err := eS.Run(context.Background(), nil, 1, 30)
	if err != nil {
		t.Fatal(err)
	}
	for i := range og.Eigenvalues {
		if d := math.Abs(og.Eigenvalues[i] - os.Eigenvalues[i]); d > 1e-6*(1+math.Abs(og.Eigenvalues[i])) {
			t.Fatalf("LOBPCG λ_%d: general %g vs symmetric %g", i, og.Eigenvalues[i], os.Eigenvalues[i])
		}
	}
}

// Symmetric PCG: the preconditioner path is unchanged; only the SpMV storage
// differs. The solve must converge to the reference solution.
func TestPCGSymmetricStorage(t *testing.T) {
	coo := laplacian1D(300)
	m, err := precondFactorize(t, coo)
	if err != nil {
		t.Fatal(err)
	}
	sym := toSym(t, coo, 32)
	c, err := NewPCG(sym, m)
	if err != nil {
		t.Fatal(err)
	}
	b := RandomRHS(300, 7)
	x, relres, iters, err := c.Solve(context.Background(), nil, b)
	if err != nil {
		t.Fatalf("after %d iterations (relres %g): %v", iters, relres, err)
	}
	xr, _, err := CGReference(coo.ToCSR(), b, 1e-10, 3000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if d := math.Abs(x[i] - xr[i]); d > 1e-6*(1+math.Abs(xr[i])) {
			t.Fatalf("x[%d] = %g, reference %g", i, x[i], xr[i])
		}
	}
}

// Bit-identity of symmetric solves across all four backends × topology
// profiles, for both schedule modes. This is the symmetric analogue of
// TestLanczosDeterministicAcrossTopologies, and additionally includes the
// BSP backend (whose level-split must not change chain order per band).
func TestSymmetricSolversDeterministicAcrossBackends(t *testing.T) {
	cases := map[string]*sparse.COO{
		"spd-wave":           randomSPD(120, 7),
		"arrowhead-fallback": arrowheadSPD(128),
	}
	topos := []topo.Topology{topo.Flat(), topo.Broadwell(), topo.EPYC()}
	newBackend := func(name string, opt rt.Options) rt.Runtime {
		switch name {
		case "bsp":
			return rt.NewBSP(opt)
		case "deepsparse":
			return rt.NewDeepSparse(opt)
		case "hpx":
			return rt.NewHPX(opt)
		}
		return rt.NewRegent(opt)
	}
	for matName, coo := range cases {
		sym := toSym(t, coo, 12)
		if matName == "arrowhead-fallback" && !sym.Sched.Fallback {
			t.Fatal("arrowhead matrix did not trigger fallback scheduling")
		}
		var want []float64
		var wantFrom string
		for _, tp := range topos {
			for _, backend := range []string{"bsp", "deepsparse", "hpx", "regent"} {
				name := fmt.Sprintf("%s/%s/%s", matName, backend, tp.Name)
				r := newBackend(backend, rt.Options{Workers: 4, Topo: tp})
				l, err := NewLanczos(sym, 25)
				if err != nil {
					t.Fatal(err)
				}
				res, err := l.Run(context.Background(), r, 1)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if want == nil {
					want, wantFrom = res.Eigenvalues, name
					continue
				}
				if len(res.Eigenvalues) != len(want) {
					t.Fatalf("%s: %d eigenvalues, %s gave %d", name, len(res.Eigenvalues), wantFrom, len(want))
				}
				for i := range want {
					if res.Eigenvalues[i] != want[i] {
						t.Errorf("%s: λ_%d = %v differs from %s's %v (must be bit-identical)",
							name, i, res.Eigenvalues[i], wantFrom, want[i])
					}
				}
			}
		}
	}
}

// Steady-state symmetric iterations must stay allocation-free in both wave
// mode (Laplacian) and fallback mode (arrowhead, exercising the private
// accumulators and reduction tasks).
func TestSymmetricSteadyIterationAllocs(t *testing.T) {
	mats := map[string]*sparse.SymCSB{
		"wave":     toSym(t, laplacian1D(600), 64),
		"fallback": toSym(t, arrowheadSPD(640), 32),
	}
	for matName, sym := range mats {
		if (matName == "fallback") != sym.Sched.Fallback {
			t.Fatalf("%s: Fallback = %v", matName, sym.Sched.Fallback)
		}
		for _, tc := range allocWorkerCases() {
			t.Run(matName+"/cg/"+tc.name, func(t *testing.T) {
				c, err := NewCG(sym)
				if err != nil {
					t.Fatal(err)
				}
				rows, _ := sym.Dims()
				c.initState(RandomRHS(rows, 3))
				pr := rt.PrepareRun(rt.NewDeepSparse(rt.Options{Workers: tc.workers}), c.g, c.st)
				defer pr.Close()
				ctx := context.Background()
				step := func() {
					if _, err := c.iterate(ctx, pr); err != nil {
						t.Fatal(err)
					}
				}
				for i := 0; i < 8; i++ {
					step()
				}
				if allocs := testing.AllocsPerRun(20, step); allocs != 0 {
					t.Fatalf("steady-state symmetric CG iteration allocates %.0f times, want 0", allocs)
				}
			})
			t.Run(matName+"/lobpcg/"+tc.name, func(t *testing.T) {
				l, err := NewLOBPCG(sym, 4)
				if err != nil {
					t.Fatal(err)
				}
				if err := l.initState(1); err != nil {
					t.Fatal(err)
				}
				pr := rt.PrepareRun(rt.NewDeepSparse(rt.Options{Workers: tc.workers}), l.g, l.st)
				defer pr.Close()
				ctx := context.Background()
				step := func() {
					if _, err := l.iterate(ctx, pr); err != nil {
						t.Fatal(err)
					}
				}
				for i := 0; i < 8; i++ {
					step()
				}
				if allocs := testing.AllocsPerRun(20, step); allocs != 0 {
					t.Fatalf("steady-state symmetric LOBPCG iteration allocates %.0f times, want 0", allocs)
				}
			})
		}
	}
}
