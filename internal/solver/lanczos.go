// Package solver implements the paper's two benchmark eigensolvers — Lanczos
// (Alg. 1, SpMV-based) and LOBPCG (Alg. 2, SpMM-based) — as task-dataflow
// programs over block-partitioned operands, plus sequential reference
// implementations used for validation.
//
// Each solver builds one fixed-shape program for a single iteration; the
// runtime executes that program's TDG once per iteration with a barrier
// between iterations (the structure all three frameworks use in the paper,
// since the convergence check pins iterations anyway). Host code between
// iterations is limited to O(m) bookkeeping and the convergence test.
package solver

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"sparsetask/internal/blas"
	"sparsetask/internal/graph"
	"sparsetask/internal/program"
	"sparsetask/internal/rt"
	"sparsetask/internal/sparse"
)

// Result reports a solver run.
type Result struct {
	// Eigenvalues in descending order for Lanczos (largest first, as Alg. 1
	// targets) and ascending for LOBPCG (smallest first, as Alg. 2 targets).
	Eigenvalues []float64
	Iterations  int
	// Residual is the final convergence metric: |β_k| for Lanczos, the
	// Frobenius residual norm for LOBPCG.
	Residual  float64
	Converged bool
}

// Lanczos computes the k algebraically largest eigenvalues of a symmetric
// matrix via the Lanczos process with full reorthogonalization.
//
// Per-iteration program (fixed shape so one TDG serves all iterations):
//
//	z     = A·q           (SpMV)
//	C     = Qbᵀ·z         (XTY against the full preallocated basis; columns
//	                       beyond the current iteration are zero and
//	                       contribute nothing)
//	z    -= Qb·C          (XY, full reorthogonalization; α_i = C[i-1])
//	β     = ‖z‖           (NORM)
//	qn    = z/β           (SCALE)
//
// The host then appends qn as basis column i and advances q ← qn.
type Lanczos struct {
	A sparse.Matrix
	K int
	// Tol stops early when |β| < Tol (invariant subspace found).
	Tol float64

	prog  *program.Program
	g     *graph.TDG
	st    *program.Store
	opA   program.OperandID
	opQ   program.OperandID // current Lanczos vector q_{i-1} (m×1)
	opZ   program.OperandID // work vector z (m×1)
	opQb  program.OperandID // basis Q (m×K)
	opC   program.OperandID // projection coefficients (K×1)
	opC2  program.OperandID // second-pass coefficients (K×1)
	opBt  program.OperandID // β scalar
	opQn  program.OperandID // next vector (m×1)
	alpha []float64
	beta  []float64
}

// NewLanczos builds the solver and its single-iteration TDG. A *sparse.SymCSB
// matrix routes the SpMV through the symmetry-exploiting kernels.
func NewLanczos(a sparse.Matrix, k int) (*Lanczos, error) {
	if k < 1 {
		return nil, errors.New("solver: Lanczos needs k >= 1")
	}
	rows, cols := a.Dims()
	if rows != cols {
		return nil, fmt.Errorf("solver: Lanczos needs a square matrix, got %dx%d", rows, cols)
	}
	if k > rows {
		return nil, fmt.Errorf("solver: k=%d exceeds matrix dimension %d", k, rows)
	}
	l := &Lanczos{A: a, K: k, Tol: 1e-10}
	// Full capacity up front so per-iteration appends never reallocate.
	l.alpha = make([]float64, 0, k)
	l.beta = make([]float64, 0, k)
	p := program.New(rows, a.BlockSize())
	l.prog = p
	w, err := wireMatrix(p, a)
	if err != nil {
		return nil, err
	}
	l.opA = w.op
	l.opQ = p.Vec("q", 1)
	l.opZ = p.Vec("z", 1)
	l.opQb = p.Vec("Qb", k)
	l.opC = p.Small("C", k, 1)
	l.opC2 = p.Small("C2", k, 1)
	l.opBt = p.Scalar("beta")
	l.opQn = p.Vec("qn", 1)

	w.spmm(p, l.opZ, l.opQ)
	// Two classical Gram–Schmidt passes ("twice is enough"): a single XTY+XY
	// pair leaves O(ε·‖z₀‖/β) orthogonality error, which destroys the
	// recurrence once β gets small near Krylov exhaustion.
	p.GemmT(l.opC, l.opQb, l.opZ)
	p.Gemm(l.opZ, -1, l.opQb, l.opC, 1).MarkIndexLaunch()
	p.GemmT(l.opC2, l.opQb, l.opZ)
	p.Gemm(l.opZ, -1, l.opQb, l.opC2, 1).MarkIndexLaunch()
	p.Norm(l.opBt, l.opZ)
	p.ScaleInv(l.opQn, l.opZ, l.opBt)

	opt := graph.DefaultOptions()
	g, err := graph.Build(p, w.graphInputs(&opt), opt)
	if err != nil {
		return nil, err
	}
	l.g = g
	l.st = program.NewStore(p)
	w.attach(l.st)
	return l, nil
}

// Graph exposes the per-iteration TDG (for the simulator and analysis).
func (l *Lanczos) Graph() *graph.TDG { return l.g }

// Program exposes the per-iteration program.
func (l *Lanczos) Program() *program.Program { return l.prog }

// Run executes up to K iterations under the given runtime and returns the
// Ritz values of the resulting tridiagonal matrix. A nil runtime runs
// sequentially via the BSP backend with one worker. Cancelling ctx aborts
// the solve mid-iteration and returns the context's error; the solver's
// internal state is then poisoned and must not be reused.
func (l *Lanczos) Run(ctx context.Context, r rt.Runtime, seed int64) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if r == nil {
		r = rt.NewBSP(rt.Options{Workers: 1})
	}
	l.initState(seed)
	pr := rt.PrepareRun(r, l.g, l.st)
	defer pr.Close()
	var res Result
	for it := 1; it <= l.K; it++ {
		stop, err := l.iterate(ctx, pr, it, &res)
		if err != nil {
			return res, err
		}
		if stop {
			break
		}
	}

	// Ritz values of the tridiagonal (α, β) via implicit QL.
	ev, err := blas.TridiagEig(l.alpha, l.beta)
	if err != nil {
		return res, fmt.Errorf("solver: tridiagonal eigensolve: %w", err)
	}
	// Largest first.
	for i, j := 0, len(ev)-1; i < j; i, j = i+1, j-1 {
		ev[i], ev[j] = ev[j], ev[i]
	}
	res.Eigenvalues = ev
	if !res.Converged {
		res.Converged = res.Iterations == l.K
	}
	return res, nil
}

// initState seeds the Lanczos state: q0 = b/‖b‖ for a random b, basis
// column 0 = q0, empty recurrence coefficients.
func (l *Lanczos) initState(seed int64) {
	l.alpha = l.alpha[:0]
	l.beta = l.beta[:0]
	rng := rand.New(rand.NewSource(seed))
	q := l.st.Vec[l.opQ]
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	blas.Scal(1/blas.Nrm2(q), q)
	qb := l.st.Vec[l.opQb]
	clear(qb)
	m, _ := l.A.Dims()
	for i := 0; i < m; i++ {
		qb[i*l.K] = q[i] // basis column 0
	}
}

// iterate runs Lanczos iteration it: one graph execution plus the O(m) host
// epilogue. Steady-state calls perform no heap allocations — alpha/beta have
// full capacity and the prepared executor reuses its scheduler state. It
// returns stop=true when the process is done: breakdown (res.Converged set)
// or the final iteration.
//
//sparselint:hotpath
func (l *Lanczos) iterate(ctx context.Context, pr rt.PreparedRun, it int, res *Result) (bool, error) {
	if err := pr.Run(ctx); err != nil {
		return true, err
	}
	// α_i is the projection of z on q_{i-1} = basis column it-1.
	c := l.st.Small[l.opC]
	//lint:ignore sparselint/hotpathalloc alpha has cap K from NewLanczos; at most K appends per solve
	l.alpha = append(l.alpha, c[it-1])
	beta := l.st.Scalars[l.opBt]
	res.Iterations = it
	res.Residual = beta
	// Relative breakdown test: β shrinks to rounding level (relative to
	// the Ritz scale |α₁|) exactly when the Krylov space is exhausted.
	scale := 1.0
	if a0 := l.alpha[0]; a0 > scale || -a0 > scale {
		scale = a0
		if scale < 0 {
			scale = -scale
		}
	}
	if beta < l.Tol*scale {
		// Invariant subspace: the Krylov space is exhausted.
		res.Converged = true
		return true, nil
	}
	if it == l.K {
		return true, nil // last vector not needed
	}
	//lint:ignore sparselint/hotpathalloc beta has cap K from NewLanczos; at most K appends per solve
	l.beta = append(l.beta, beta)
	// Host epilogue: append qn as basis column `it` and advance q.
	qn := l.st.Vec[l.opQn]
	qb := l.st.Vec[l.opQb]
	m, _ := l.A.Dims()
	for i := 0; i < m; i++ {
		qb[i*l.K+it] = qn[i]
	}
	copy(l.st.Vec[l.opQ], qn)
	return false, nil
}

// RitzVectors returns the Ritz vectors paired with the first `want` Ritz
// values of the most recent Run (descending eigenvalue order, m×want
// row-major): V = Q_basis · U where U are the tridiagonal eigenvectors.
func (l *Lanczos) RitzVectors(want int) ([]float64, error) {
	k := len(l.alpha)
	if k == 0 {
		return nil, errors.New("solver: RitzVectors before Run")
	}
	if want < 1 || want > k {
		return nil, fmt.Errorf("solver: want %d Ritz vectors, have %d", want, k)
	}
	_, u, err := blas.SymTriEig(l.alpha, l.beta)
	if err != nil {
		return nil, err
	}
	// SymTriEig orders ascending; Run reports descending, so column j of
	// the result pairs with tridiagonal eigenvector column k-1-j.
	m, _ := l.A.Dims()
	qb := l.st.Vec[l.opQb]
	out := make([]float64, m*want)
	for j := 0; j < want; j++ {
		src := k - 1 - j
		for i := 0; i < m; i++ {
			var v float64
			for c := 0; c < k; c++ {
				v += qb[i*l.K+c] * u[c*k+src]
			}
			out[i*want+j] = v
		}
	}
	return out, nil
}

// LanczosReference runs a plain sequential Lanczos with full
// reorthogonalization on a CSR matrix: the ground truth for tests.
func LanczosReference(a *sparse.CSR, k int, seed int64) ([]float64, error) {
	m := a.Rows
	rng := rand.New(rand.NewSource(seed))
	q := make([]float64, m)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	blas.Scal(1/blas.Nrm2(q), q)
	basis := [][]float64{append([]float64(nil), q...)}
	var alpha, beta []float64
	z := make([]float64, m)
	for it := 1; it <= k; it++ {
		a.SpMV(z, basis[len(basis)-1])
		// Two classical Gram–Schmidt passes, matching the task version's
		// XTY+XY pairs. α is the last first-pass coefficient.
		coeff := make([]float64, len(basis))
		for pass := 0; pass < 2; pass++ {
			c := make([]float64, len(basis))
			for j, qj := range basis {
				c[j] = blas.Dot(qj, z)
			}
			for j, qj := range basis {
				blas.Axpy(-c[j], qj, z)
			}
			if pass == 0 {
				copy(coeff, c)
			}
		}
		alpha = append(alpha, coeff[len(basis)-1])
		b := blas.Nrm2(z)
		scale := 1.0
		if alpha[0] > scale || -alpha[0] > scale {
			scale = math.Abs(alpha[0])
		}
		if b < 1e-10*scale || it == k {
			break
		}
		beta = append(beta, b)
		qn := append([]float64(nil), z...)
		blas.Scal(1/b, qn)
		basis = append(basis, qn)
	}
	ev, err := blas.TridiagEig(alpha, beta)
	if err != nil {
		return nil, err
	}
	for i, j := 0, len(ev)-1; i < j; i, j = i+1, j-1 {
		ev[i], ev[j] = ev[j], ev[i]
	}
	return ev, nil
}
