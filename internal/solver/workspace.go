package solver

// rrWorkspace is the Rayleigh–Ritz scratch arena: every buffer the LOBPCG
// small step needs, sized once for block width n (subspace dimension d = 3n)
// at solver construction. The per-iteration rayleighRitz call slices into it
// instead of allocating, making steady-state solver iterations free of heap
// allocations — the GC-pressure analog of the paper's "no malloc inside the
// timed loop" discipline.
//
// Buffers sized d×d are also used for the r×r (r ≤ d) second eigenproblem by
// re-slicing, so the arena covers every rank-filtered shape.
type rrWorkspace struct {
	g, o    []float64 // d×d Gram matrices of the 3n-dimensional subspace
	keep    []int     // indices of directions surviving the rank filter
	w       []float64 // d×r soft-orthogonalization basis
	gw      []float64 // d×r product G·W
	gt      []float64 // r×r projected Gram matrix Wᵀ·G·W
	u       []float64 // r×n smallest Ritz vectors of gt
	c3      []float64 // d×n assembled coefficient block W·U
	eigWork []float64 // d×d scratch shared by both SymEigInto calls
	oVals   []float64 // d    eigenvalues of O
	oVecs   []float64 // d×d  eigenvectors of O
	tVals   []float64 // d    eigenvalues of gt (first r used)
	tVecs   []float64 // d×d  eigenvectors of gt (first r×r used)
}

func newRRWorkspace(n int) *rrWorkspace {
	d := 3 * n
	return &rrWorkspace{
		g:       make([]float64, d*d),
		o:       make([]float64, d*d),
		keep:    make([]int, 0, d),
		w:       make([]float64, d*d),
		gw:      make([]float64, d*d),
		gt:      make([]float64, d*d),
		u:       make([]float64, d*n),
		c3:      make([]float64, d*n),
		eigWork: make([]float64, d*d),
		oVals:   make([]float64, d),
		oVecs:   make([]float64, d*d),
		tVals:   make([]float64, d),
		tVecs:   make([]float64, d*d),
	}
}
