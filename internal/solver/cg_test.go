package solver

import (
	"context"
	"math"
	"testing"

	"sparsetask/internal/blas"
	"sparsetask/internal/rt"
	"sparsetask/internal/sparse"
)

func residual(a *sparse.CSR, x, b []float64) float64 {
	q := make([]float64, len(b))
	a.SpMV(q, x)
	for i := range q {
		q[i] -= b[i]
	}
	return blas.Nrm2(q) / blas.Nrm2(b)
}

func TestCGSolvesLaplacian(t *testing.T) {
	n := 200
	coo := laplacian1D(n)
	cg, err := NewCG(coo.ToCSB(32))
	if err != nil {
		t.Fatal(err)
	}
	cg.Tol = 1e-10
	b := RandomRHS(n, 3)
	x, relres, iters, err := cg.Solve(context.Background(), rt.NewDeepSparse(rt.Options{Workers: 3}), b)
	if err != nil {
		t.Fatalf("after %d iterations, relres %g: %v", iters, relres, err)
	}
	if got := residual(coo.ToCSR(), x, b); got > 1e-8 {
		t.Fatalf("true relative residual %g", got)
	}
	// CG on an SPD n×n system converges in at most n iterations.
	if iters > n {
		t.Fatalf("took %d iterations for n=%d", iters, n)
	}
}

func TestCGMatchesReference(t *testing.T) {
	coo := randomSPD(120, 7)
	b := RandomRHS(120, 11)
	cg, err := NewCG(coo.ToCSB(16))
	if err != nil {
		t.Fatal(err)
	}
	cg.Tol = 1e-12
	x, _, _, err := cg.Solve(context.Background(), rt.NewHPX(rt.Options{Workers: 2}), b)
	if err != nil {
		t.Fatal(err)
	}
	xref, _, err := CGReference(coo.ToCSR(), b, 1e-12, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-xref[i]) > 1e-8*(1+math.Abs(xref[i])) {
			t.Fatalf("x[%d] = %v, reference %v", i, x[i], xref[i])
		}
	}
}

func TestCGAllRuntimesAgree(t *testing.T) {
	coo := randomSPD(80, 17)
	b := RandomRHS(80, 19)
	var first []float64
	for _, r := range []rt.Runtime{
		rt.NewBSP(rt.Options{Workers: 2}),
		rt.NewDeepSparse(rt.Options{Workers: 3}),
		rt.NewHPX(rt.Options{Workers: 3, NUMADomains: 2}),
		rt.NewRegent(rt.Options{Workers: 2, AnalysisCost: 5}),
	} {
		cg, err := NewCG(coo.ToCSB(10))
		if err != nil {
			t.Fatal(err)
		}
		x, _, _, err := cg.Solve(context.Background(), r, b)
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if first == nil {
			first = x
			continue
		}
		for i := range x {
			if x[i] != first[i] {
				t.Fatalf("%s: x[%d] differs bitwise from BSP", r.Name(), i)
			}
		}
	}
}

func TestCGZeroRHS(t *testing.T) {
	coo := randomSPD(30, 23)
	cg, err := NewCG(coo.ToCSB(8))
	if err != nil {
		t.Fatal(err)
	}
	x, relres, iters, err := cg.Solve(context.Background(), nil, make([]float64, 30))
	if err != nil || relres != 0 || iters != 0 {
		t.Fatalf("zero rhs: %v %v %v", relres, iters, err)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("zero rhs must give zero solution")
		}
	}
}

func TestCGValidation(t *testing.T) {
	rect := sparse.NewCOO(4, 6, 1)
	rect.Append(0, 0, 1)
	if _, err := NewCG(rect.ToCSB(2)); err == nil {
		t.Error("rectangular matrix accepted")
	}
	coo := randomSPD(10, 1)
	cg, err := NewCG(coo.ToCSB(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := cg.Solve(context.Background(), nil, make([]float64, 3)); err == nil {
		t.Error("wrong rhs length accepted")
	}
}

func TestCGGraphShape(t *testing.T) {
	coo := randomSPD(64, 31)
	cg, err := NewCG(coo.ToCSB(8))
	if err != nil {
		t.Fatal(err)
	}
	st := cg.Graph().ComputeStats()
	if st.Tasks == 0 {
		t.Fatal("empty graph")
	}
	// CG's kernel critical path is short — shorter than LOBPCG's.
	lob, err := NewLOBPCG(coo.ToCSB(8), 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.KernelCriticalPath >= lob.Graph().ComputeStats().KernelCriticalPath {
		t.Errorf("CG kernel critical path %d should be below LOBPCG's", st.KernelCriticalPath)
	}
}
