package solver

import (
	"context"
	"errors"
	"fmt"

	"sparsetask/internal/blas"
	"sparsetask/internal/graph"
	"sparsetask/internal/precond"
	"sparsetask/internal/program"
	"sparsetask/internal/rt"
	"sparsetask/internal/sparse"
)

// PCG solves A·x = b with the preconditioned conjugate gradient method. The
// preconditioner application z = M⁻¹·r runs *inside* the per-iteration task
// graph: for an IC(0) factorization it is two level-scheduled triangular
// solves (CSpTrsv calls whose tasks form the factor's level DAG — the
// irregular, deep-critical-path graph shape this PR introduces), and for the
// Jacobi fallback a single DiagScale call. Everything else reuses the CG
// kernel mix, so one PCG iteration interleaves regular wide ranks (SpMV,
// AXPBY, DOT) with the skewed triangular wavefronts.
//
// Per-iteration program:
//
//	q      = A·p          (SpMV)
//	pq     = pᵀ·q         (DOT)
//	α      = rz/pq        (small step, applied via ScaleInv)
//	x     += α·p ; r -= α·q
//	rnorm  = ‖r‖          (convergence)
//	z      = M⁻¹·r        (TRSV·2 or DSCALE)
//	rzNew  = rᵀ·z         (DOT)
//	β      = rzNew/rz     (small step, applied via ScaleInv)
//	p      = z + β·p
type PCG struct {
	A sparse.Matrix
	M *precond.IC0
	// Tol is the convergence threshold on ‖r‖/‖b‖.
	Tol     float64
	MaxIter int

	prog *program.Program
	g    *graph.TDG
	st   *program.Store

	opA, opX, opP, opQ, opR program.OperandID
	opZ                     program.OperandID // z = M⁻¹·r
	opY                     program.OperandID // forward-solve intermediate
	opL, opU                program.OperandID // IC(0) factors (KindIC0 only)
	opD                     program.OperandID // inverse diagonal (KindJacobi only)
	opAP, opAQ, opBP        program.OperandID
	opPQ, opRZ, opRZN       program.OperandID
	opAlphaInv, opBetaInv   program.OperandID
	opRnorm                 program.OperandID
}

// NewPCG builds the solver and its single-iteration TDG, deriving the
// triangular level structure by scanning the factors.
func NewPCG(a sparse.Matrix, m *precond.IC0) (*PCG, error) {
	return NewPCGWithLevels(a, m, nil, nil)
}

// NewPCGWithLevels is NewPCG with memoized level analyses for the forward
// and backward factors (precond.Levels at the CSB block size). solverd's
// factorization cache passes these so a repeat solve skips the level
// re-analysis; nil lowers/uppers fall back to scanning.
func NewPCGWithLevels(a sparse.Matrix, m *precond.IC0, lower, upper *precond.Levels) (*PCG, error) {
	rows, cols := a.Dims()
	if rows != cols {
		return nil, fmt.Errorf("solver: PCG needs a square matrix, got %dx%d", rows, cols)
	}
	if m == nil {
		return nil, errors.New("solver: PCG needs a preconditioner (use CG for none)")
	}
	if m.Rows != rows {
		return nil, fmt.Errorf("solver: preconditioner is over %d rows, matrix has %d", m.Rows, rows)
	}
	c := &PCG{A: a, M: m, Tol: 1e-10, MaxIter: 10 * rows}
	p := program.New(rows, a.BlockSize())
	c.prog = p
	w, err := wireMatrix(p, a)
	if err != nil {
		return nil, err
	}
	c.opA = w.op
	c.opX = p.Vec("x", 1)
	c.opP = p.Vec("p", 1)
	c.opQ = p.Vec("q", 1)
	c.opR = p.Vec("r", 1)
	c.opZ = p.Vec("z", 1)
	c.opAP = p.Vec("alpha_p", 1)
	c.opAQ = p.Vec("alpha_q", 1)
	c.opBP = p.Vec("beta_p", 1)
	c.opPQ = p.Scalar("pq")
	c.opRZ = p.Scalar("rz")
	c.opRZN = p.Scalar("rz_new")
	c.opAlphaInv = p.Scalar("alpha_inv")
	c.opBetaInv = p.Scalar("beta_inv")
	c.opRnorm = p.Scalar("rnorm")

	// q = A·p ; pq = pᵀq ; alpha_inv = pq/rz so ScaleInv applies α.
	w.spmm(p, c.opQ, c.opP)
	p.Dot(c.opPQ, c.opP, c.opQ)
	p.SmallStep("alpha", func(st *program.Store) {
		rz := st.Scalars[c.opRZ]
		pq := st.Scalars[c.opPQ]
		if rz == 0 {
			st.Scalars[c.opAlphaInv] = 0 // converged; updates become zero
		} else {
			st.Scalars[c.opAlphaInv] = pq / rz
		}
	}, []program.OperandID{c.opRZ, c.opPQ}, []program.OperandID{c.opAlphaInv})
	p.ScaleInv(c.opAP, c.opP, c.opAlphaInv).MarkIndexLaunch()
	p.ScaleInv(c.opAQ, c.opQ, c.opAlphaInv).MarkIndexLaunch()
	p.Axpby(c.opX, 1, c.opX, 1, c.opAP)
	p.Axpby(c.opR, 1, c.opR, -1, c.opAQ)
	p.Norm(c.opRnorm, c.opR)

	// z = M⁻¹·r: the preconditioner application.
	opt := graph.DefaultOptions()
	if m.Kind == precond.KindIC0 {
		c.opL = p.Tri("L")
		c.opU = p.Tri("U")
		c.opY = p.Vec("y", 1)
		p.SpTrsvLower(c.opY, c.opL, c.opR)
		p.SpTrsvUpper(c.opZ, c.opU, c.opY)
		opt.Tris = map[program.OperandID]*sparse.CSR{c.opL: m.L, c.opU: m.U}
		if lower != nil && upper != nil && lower.Block == a.BlockSize() && upper.Block == a.BlockSize() {
			opt.TriDeps = map[program.OperandID][][]int32{
				c.opL: lower.BlockDeps,
				c.opU: upper.BlockDeps,
			}
		}
	} else {
		c.opD = p.Vec("dinv", 1)
		p.DiagScale(c.opZ, c.opD, c.opR).MarkIndexLaunch()
	}

	// rz_new = rᵀz ; β = rz_new/rz applied via ScaleInv; p = z + β·p.
	p.Dot(c.opRZN, c.opR, c.opZ)
	p.SmallStep("beta", func(st *program.Store) {
		rzn := st.Scalars[c.opRZN]
		rz := st.Scalars[c.opRZ]
		if rzn == 0 {
			st.Scalars[c.opBetaInv] = 0
		} else {
			st.Scalars[c.opBetaInv] = rz / rzn
		}
		st.Scalars[c.opRZ] = rzn
	}, []program.OperandID{c.opRZ, c.opRZN}, []program.OperandID{c.opBetaInv, c.opRZ})
	p.ScaleInv(c.opBP, c.opP, c.opBetaInv).MarkIndexLaunch()
	p.Axpby(c.opP, 1, c.opZ, 1, c.opBP)

	g, err := graph.Build(p, w.graphInputs(&opt), opt)
	if err != nil {
		return nil, err
	}
	c.g = g
	c.st = program.NewStore(p)
	w.attach(c.st)
	if m.Kind == precond.KindIC0 {
		c.st.SetTri(c.opL, m.L)
		c.st.SetTri(c.opU, m.U)
	} else {
		copy(c.st.Vec[c.opD], m.DiagInv)
	}
	return c, nil
}

// Graph exposes the per-iteration TDG.
func (c *PCG) Graph() *graph.TDG { return c.g }

// Program exposes the per-iteration program.
func (c *PCG) Program() *program.Program { return c.prog }

// Solve runs PCG for the right-hand side b under the given runtime (nil =
// sequential BSP) and returns the solution, the final relative residual, and
// the iteration count.
func (c *PCG) Solve(ctx context.Context, r rt.Runtime, b []float64) ([]float64, float64, int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	m, _ := c.A.Dims()
	if len(b) != m {
		return nil, 0, 0, fmt.Errorf("solver: PCG rhs has length %d, want %d", len(b), m)
	}
	if r == nil {
		r = rt.NewBSP(rt.Options{Workers: 1})
	}
	bn := blas.Nrm2(b)
	if bn == 0 {
		return make([]float64, m), 0, 0, nil
	}
	c.initState(b)
	pr := rt.PrepareRun(r, c.g, c.st)
	defer pr.Close()
	var relres float64
	for it := 1; it <= c.MaxIter; it++ {
		rnorm, err := c.iterate(ctx, pr)
		if err != nil {
			return nil, relres, it - 1, err
		}
		relres = rnorm / bn
		if relres < c.Tol {
			x := append([]float64(nil), c.st.Vec[c.opX]...)
			return x, relres, it, nil
		}
	}
	x := append([]float64(nil), c.st.Vec[c.opX]...)
	return x, relres, c.MaxIter, errors.New("solver: PCG did not converge")
}

// initState seeds the PCG state: x0 = 0, r0 = b, z0 = M⁻¹·r0 (applied
// serially — init is off the hot path), p0 = z0, rz = r0ᵀz0.
func (c *PCG) initState(b []float64) {
	zero(c.st.Vec[c.opX])
	copy(c.st.Vec[c.opR], b)
	z := c.st.Vec[c.opZ]
	if c.M.Kind == precond.KindIC0 {
		c.M.Apply(z, c.st.Vec[c.opY], b)
	} else {
		c.M.Apply(z, nil, b)
	}
	copy(c.st.Vec[c.opP], z)
	c.st.Scalars[c.opRZ] = blas.Dot(b, z)
}

// iterate executes one PCG iteration (one full graph run, including the
// level-scheduled triangular solves) and returns the residual norm it
// measured. Steady-state calls perform no heap allocations.
//
//sparselint:hotpath
func (c *PCG) iterate(ctx context.Context, pr rt.PreparedRun) (float64, error) {
	if err := pr.Run(ctx); err != nil {
		return 0, err
	}
	return c.st.Scalars[c.opRnorm], nil
}

// PCGReference is a plain sequential PCG on CSR for validation, using the
// preconditioner's serial Apply.
func PCGReference(a *sparse.CSR, m *precond.IC0, b []float64, tol float64, maxIter int) ([]float64, int, error) {
	n := a.Rows
	x := make([]float64, n)
	r := append([]float64(nil), b...)
	z := make([]float64, n)
	y := make([]float64, n)
	q := make([]float64, n)
	m.Apply(z, y, r)
	p := append([]float64(nil), z...)
	rz := blas.Dot(r, z)
	bn := blas.Nrm2(b)
	if bn == 0 {
		return x, 0, nil
	}
	for it := 1; it <= maxIter; it++ {
		a.SpMV(q, p)
		alpha := rz / blas.Dot(p, q)
		blas.Axpy(alpha, p, x)
		blas.Axpy(-alpha, q, r)
		if blas.Nrm2(r)/bn < tol {
			return x, it, nil
		}
		m.Apply(z, y, r)
		rzn := blas.Dot(r, z)
		beta := rzn / rz
		rz = rzn
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return x, maxIter, errors.New("solver: reference PCG did not converge")
}
