package solver

import (
	"context"
	"testing"

	"sparsetask/internal/precond"
	"sparsetask/internal/rt"
	"sparsetask/internal/sparse"
)

// These are the allocation-regression gates for the zero-allocation solver
// iteration work: after warmup, a steady-state iteration of each solver must
// perform no heap allocations — the graph, store, prepared executor,
// workspace arena, and recurrence buffers are all reused. Both the
// single-worker inline executor path and the persistent worker pool are
// covered.

func allocWorkerCases() []struct {
	name    string
	workers int
} {
	return []struct {
		name    string
		workers int
	}{
		{"inline1", 1},
		{"pool2", 2},
	}
}

func TestLanczosSteadyIterationAllocs(t *testing.T) {
	a := laplacian1D(600).ToCSB(64)
	for _, tc := range allocWorkerCases() {
		t.Run(tc.name, func(t *testing.T) {
			l, err := NewLanczos(a, 48)
			if err != nil {
				t.Fatal(err)
			}
			l.initState(1)
			pr := rt.PrepareRun(rt.NewDeepSparse(rt.Options{Workers: tc.workers}), l.g, l.st)
			defer pr.Close()
			ctx := context.Background()
			var res Result
			it := 0
			step := func() {
				it++
				stop, err := l.iterate(ctx, pr, it, &res)
				if err != nil || stop {
					t.Fatalf("iteration %d ended early: stop=%v err=%v", it, stop, err)
				}
			}
			for i := 0; i < 8; i++ {
				step() // warm scheduler rings and routing buffers
			}
			if allocs := testing.AllocsPerRun(20, step); allocs != 0 {
				t.Fatalf("steady-state Lanczos iteration allocates %.0f times, want 0", allocs)
			}
		})
	}
}

func TestLOBPCGSteadyIterationAllocs(t *testing.T) {
	a := laplacian1D(600).ToCSB(64)
	for _, tc := range allocWorkerCases() {
		t.Run(tc.name, func(t *testing.T) {
			l, err := NewLOBPCG(a, 4)
			if err != nil {
				t.Fatal(err)
			}
			if err := l.initState(1); err != nil {
				t.Fatal(err)
			}
			pr := rt.PrepareRun(rt.NewDeepSparse(rt.Options{Workers: tc.workers}), l.g, l.st)
			defer pr.Close()
			ctx := context.Background()
			step := func() {
				if _, err := l.iterate(ctx, pr); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 8; i++ {
				step()
			}
			if allocs := testing.AllocsPerRun(20, step); allocs != 0 {
				t.Fatalf("steady-state LOBPCG iteration allocates %.0f times, want 0", allocs)
			}
		})
	}
}

func TestCGSteadyIterationAllocs(t *testing.T) {
	a := laplacian1D(600).ToCSB(64)
	b := RandomRHS(600, 3)
	for _, tc := range allocWorkerCases() {
		t.Run(tc.name, func(t *testing.T) {
			c, err := NewCG(a)
			if err != nil {
				t.Fatal(err)
			}
			c.initState(b)
			pr := rt.PrepareRun(rt.NewDeepSparse(rt.Options{Workers: tc.workers}), c.g, c.st)
			defer pr.Close()
			ctx := context.Background()
			step := func() {
				if _, err := c.iterate(ctx, pr); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 8; i++ {
				step()
			}
			if allocs := testing.AllocsPerRun(20, step); allocs != 0 {
				t.Fatalf("steady-state CG iteration allocates %.0f times, want 0", allocs)
			}
		})
	}
}

// The BSP backend's prepared form runs chains inline with one worker; it
// must be allocation-free as well (it is the nil-runtime default).
func TestBSPPreparedSteadyIterationAllocs(t *testing.T) {
	a := laplacian1D(600).ToCSB(64)
	l, err := NewLanczos(a, 48)
	if err != nil {
		t.Fatal(err)
	}
	l.initState(1)
	pr := rt.PrepareRun(rt.NewBSP(rt.Options{Workers: 1}), l.g, l.st)
	defer pr.Close()
	ctx := context.Background()
	var res Result
	it := 0
	step := func() {
		it++
		stop, err := l.iterate(ctx, pr, it, &res)
		if err != nil || stop {
			t.Fatalf("iteration %d ended early: stop=%v err=%v", it, stop, err)
		}
	}
	for i := 0; i < 4; i++ {
		step()
	}
	if allocs := testing.AllocsPerRun(20, step); allocs != 0 {
		t.Fatalf("steady-state BSP-prepared iteration allocates %.0f times, want 0", allocs)
	}
}

// PCG adds the level-scheduled triangular solves to the iteration; they must
// be allocation-free too (range-form substitution over preallocated factors).
func TestPCGSteadyIterationAllocs(t *testing.T) {
	coo := laplacian1D(600)
	m, err := precondFactorize(t, coo)
	if err != nil {
		t.Fatal(err)
	}
	a := coo.ToCSB(64)
	b := RandomRHS(600, 3)
	for _, tc := range allocWorkerCases() {
		t.Run(tc.name, func(t *testing.T) {
			c, err := NewPCG(a, m)
			if err != nil {
				t.Fatal(err)
			}
			c.initState(b)
			pr := rt.PrepareRun(rt.NewDeepSparse(rt.Options{Workers: tc.workers}), c.g, c.st)
			defer pr.Close()
			ctx := context.Background()
			step := func() {
				if _, err := c.iterate(ctx, pr); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 8; i++ {
				step()
			}
			if allocs := testing.AllocsPerRun(20, step); allocs != 0 {
				t.Fatalf("steady-state PCG iteration allocates %.0f times, want 0", allocs)
			}
		})
	}
}

// precondFactorize is a tiny helper keeping the alloc test's imports local.
func precondFactorize(t *testing.T, coo *sparse.COO) (*precond.IC0, error) {
	t.Helper()
	return precond.Factorize(coo.ToCSR())
}
