package solver

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"sparsetask/internal/blas"
	"sparsetask/internal/graph"
	"sparsetask/internal/program"
	"sparsetask/internal/rt"
	"sparsetask/internal/sparse"
)

// LOBPCG computes the n smallest eigenvalues of a symmetric matrix with the
// Locally Optimal Block Preconditioned Conjugate Gradient method (Knyazev
// 2001; the paper's Alg. 2, unpreconditioned as in the paper's benchmarks).
//
// The per-iteration program is a fixed 30-call kernel sequence — one SpMM
// (HR = A·R), twelve XTY inner products forming the 3n×3n Rayleigh–Ritz Gram
// blocks, the sequential Rayleigh–Ritz solve, six XY updates rebuilding
// {Ψ, HΨ} from the subspace coefficients, and AXPBY/COPY bookkeeping for the
// conjugate directions. HΨ and HQ are maintained by the standard LOBPCG
// recurrences so only one SpMM runs per iteration; the task graph this
// produces is the deep, wide DAG of the paper's Fig. 4.
type LOBPCG struct {
	A sparse.Matrix
	N int // block width (paper uses 8–16)
	// Tol is the convergence threshold on the Frobenius residual norm
	// ‖HΨ − ΨM‖_F relative to the Ritz value magnitudes.
	Tol     float64
	MaxIter int

	// precondition enables the Jacobi (inverse-diagonal) preconditioner:
	// the residual block is scaled row-wise by 1/diag(A) before entering the
	// Rayleigh–Ritz basis, the "P" of LOBPCG (Alg. 2 runs unpreconditioned
	// in the paper's benchmarks; this is the standard extension).
	precondition bool

	prog   *program.Program
	g      *graph.TDG
	st     *program.Store
	opDinv program.OperandID

	opA                                 program.OperandID
	opPsi, opHPsi, opR, opHR, opQ, opHQ program.OperandID
	opPsiN, opHPsiN, opQN, opHQN        program.OperandID
	opM                                 program.OperandID
	opOPP, opOPR, opORR, opOPQ, opORQ   program.OperandID
	opOQQ                               program.OperandID
	opGPR, opGRR, opGPQ, opGRQ, opGQQ   program.OperandID
	opCP, opCR, opCQ, opLam             program.OperandID
	opRnorm                             program.OperandID
	firstIteration                      bool
	ws                                  *rrWorkspace
}

// Option configures a LOBPCG solver at construction.
type Option func(*LOBPCG)

// WithJacobiPreconditioner enables T = diag(A)⁻¹ preconditioning of the
// residual block, which accelerates convergence on matrices with strongly
// varying diagonals.
func WithJacobiPreconditioner() Option {
	return func(l *LOBPCG) { l.precondition = true }
}

// NewLOBPCG builds the solver and its single-iteration TDG for block width n.
// A *sparse.SymCSB matrix routes the SpMM through the symmetry-exploiting
// kernels (LOBPCG requires symmetry anyway, so this is the natural storage).
func NewLOBPCG(a sparse.Matrix, n int, opts ...Option) (*LOBPCG, error) {
	if n < 1 {
		return nil, errors.New("solver: LOBPCG needs block width >= 1")
	}
	rows, cols := a.Dims()
	if rows != cols {
		return nil, fmt.Errorf("solver: LOBPCG needs a square matrix, got %dx%d", rows, cols)
	}
	if 3*n > rows {
		return nil, fmt.Errorf("solver: block width %d too large for dimension %d", n, rows)
	}
	l := &LOBPCG{A: a, N: n, Tol: 1e-8, MaxIter: 100}
	for _, o := range opts {
		o(l)
	}
	p := program.New(rows, a.BlockSize())
	l.prog = p
	w, err := wireMatrix(p, a)
	if err != nil {
		return nil, err
	}
	l.opA = w.op
	l.opPsi = p.Vec("Psi", n)
	l.opHPsi = p.Vec("HPsi", n)
	l.opR = p.Vec("R", n)
	l.opHR = p.Vec("HR", n)
	l.opQ = p.Vec("Q", n)
	l.opHQ = p.Vec("HQ", n)
	l.opPsiN = p.Vec("PsiN", n)
	l.opHPsiN = p.Vec("HPsiN", n)
	l.opQN = p.Vec("QN", n)
	l.opHQN = p.Vec("HQN", n)
	l.opM = p.Small("M", n, n)
	l.opOPP = p.Small("oPP", n, n)
	l.opOPR = p.Small("oPR", n, n)
	l.opORR = p.Small("oRR", n, n)
	l.opOPQ = p.Small("oPQ", n, n)
	l.opORQ = p.Small("oRQ", n, n)
	l.opOQQ = p.Small("oQQ", n, n)
	l.opGPR = p.Small("gPR", n, n)
	l.opGRR = p.Small("gRR", n, n)
	l.opGPQ = p.Small("gPQ", n, n)
	l.opGRQ = p.Small("gRQ", n, n)
	l.opGQQ = p.Small("gQQ", n, n)
	l.opCP = p.Small("CP", n, n)
	l.opCR = p.Small("CR", n, n)
	l.opCQ = p.Small("CQ", n, n)
	l.opLam = p.Small("Lam", n, 1)
	l.opRnorm = p.Scalar("rnorm")

	// M = ΨᵀHΨ; R = HΨ − ΨM.
	p.GemmT(l.opM, l.opPsi, l.opHPsi)
	p.Gemm(l.opR, 1, l.opPsi, l.opM, 0)
	p.Axpby(l.opR, 1, l.opHPsi, -1, l.opR)
	p.Norm(l.opRnorm, l.opR)
	if l.precondition {
		// W = T·R with T = diag(A)⁻¹ (held in the Dinv operand); the
		// preconditioned residual replaces R in the basis.
		l.opDinv = p.Vec("Dinv", 1)
		p.DiagScale(l.opR, l.opDinv, l.opR)
	}
	// Normalize the residual block: keeps the Rayleigh–Ritz Gram matrix
	// well-scaled as ‖R‖ shrinks toward convergence (without this, the R
	// directions fall below the rank-filter threshold and stagnate).
	p.ScaleInv(l.opR, l.opR, l.opRnorm)
	// HR = A·R — the iteration's one SpMM.
	w.spmm(p, l.opHR, l.opR)
	// Rayleigh–Ritz Gram blocks over span{Ψ, R, Q}.
	p.GemmT(l.opOPP, l.opPsi, l.opPsi)
	p.GemmT(l.opOPR, l.opPsi, l.opR)
	p.GemmT(l.opORR, l.opR, l.opR)
	p.GemmT(l.opOPQ, l.opPsi, l.opQ)
	p.GemmT(l.opORQ, l.opR, l.opQ)
	p.GemmT(l.opOQQ, l.opQ, l.opQ)
	p.GemmT(l.opGPR, l.opPsi, l.opHR)
	p.GemmT(l.opGRR, l.opR, l.opHR)
	p.GemmT(l.opGPQ, l.opPsi, l.opHQ)
	p.GemmT(l.opGRQ, l.opR, l.opHQ)
	p.GemmT(l.opGQQ, l.opQ, l.opHQ)
	// Sequential Rayleigh–Ritz solve.
	p.SmallStep("RayleighRitz", l.rayleighRitz,
		[]program.OperandID{l.opM, l.opGPR, l.opGRR, l.opGPQ, l.opGRQ, l.opGQQ,
			l.opOPP, l.opOPR, l.opORR, l.opOPQ, l.opORQ, l.opOQQ},
		[]program.OperandID{l.opCP, l.opCR, l.opCQ, l.opLam})
	// Subspace updates in the numerically stable split form (Knyazev's
	// reference implementation): the new conjugate direction omits the Ψ
	// component, Q' = R·CR + Q·CQ, and Ψ' = Ψ·CP + Q'. (Alg. 2 states
	// Q' = Ψ' − Ψ, which is the same vector in exact arithmetic but nearly
	// parallel to span{Ψ}, degrading the Gram basis.)
	p.Gemm(l.opQN, 1, l.opR, l.opCR, 0).MarkIndexLaunch()
	p.Gemm(l.opQN, 1, l.opQ, l.opCQ, 1).MarkIndexLaunch()
	p.Gemm(l.opPsiN, 1, l.opPsi, l.opCP, 0).MarkIndexLaunch()
	p.Axpby(l.opPsiN, 1, l.opPsiN, 1, l.opQN)
	p.Gemm(l.opHQN, 1, l.opHR, l.opCR, 0).MarkIndexLaunch()
	p.Gemm(l.opHQN, 1, l.opHQ, l.opCQ, 1).MarkIndexLaunch()
	p.Gemm(l.opHPsiN, 1, l.opHPsi, l.opCP, 0).MarkIndexLaunch()
	p.Axpby(l.opHPsiN, 1, l.opHPsiN, 1, l.opHQN)
	// Advance state.
	p.Copy(l.opPsi, l.opPsiN)
	p.Copy(l.opHPsi, l.opHPsiN)
	p.Copy(l.opQ, l.opQN)
	p.Copy(l.opHQ, l.opHQN)

	opt := graph.DefaultOptions()
	g, err := graph.Build(p, w.graphInputs(&opt), opt)
	if err != nil {
		return nil, err
	}
	l.g = g
	l.st = program.NewStore(p)
	w.attach(l.st)
	l.ws = newRRWorkspace(n)
	return l, nil
}

// Graph exposes the per-iteration TDG.
func (l *LOBPCG) Graph() *graph.TDG { return l.g }

// Eigenvectors returns a copy of the current Ritz block Ψ (m×n, row-major):
// after a converged Run these approximate the eigenvectors paired with
// Result.Eigenvalues.
func (l *LOBPCG) Eigenvectors() []float64 {
	return append([]float64(nil), l.st.Vec[l.opPsi]...)
}

// Program exposes the per-iteration program.
func (l *LOBPCG) Program() *program.Program { return l.prog }

// rayleighRitz solves the 3n×3n generalized eigenproblem G·c = λ·O·c on the
// Gram blocks, with rank filtering to tolerate the zero Q block of the first
// iteration and near-dependent directions later. It writes the coefficient
// splits CP/CR/CQ and the Ritz values. All scratch comes from the solver's
// workspace arena: steady-state calls allocate nothing.
func (l *LOBPCG) rayleighRitz(st *program.Store) {
	n := l.N
	d := 3 * n
	ws := l.ws
	G := ws.g
	O := ws.o
	set := func(dst []float64, bi, bj int, m []float64, transpose bool) {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := m[i*n+j]
				if transpose {
					v = m[j*n+i]
				}
				dst[(bi*n+i)*d+bj*n+j] = v
			}
		}
	}
	set(G, 0, 0, st.Small[l.opM], false)
	set(G, 0, 1, st.Small[l.opGPR], false)
	set(G, 1, 0, st.Small[l.opGPR], true)
	set(G, 1, 1, st.Small[l.opGRR], false)
	set(G, 0, 2, st.Small[l.opGPQ], false)
	set(G, 2, 0, st.Small[l.opGPQ], true)
	set(G, 1, 2, st.Small[l.opGRQ], false)
	set(G, 2, 1, st.Small[l.opGRQ], true)
	set(G, 2, 2, st.Small[l.opGQQ], false)
	set(O, 0, 0, st.Small[l.opOPP], false)
	set(O, 0, 1, st.Small[l.opOPR], false)
	set(O, 1, 0, st.Small[l.opOPR], true)
	set(O, 1, 1, st.Small[l.opORR], false)
	set(O, 0, 2, st.Small[l.opOPQ], false)
	set(O, 2, 0, st.Small[l.opOPQ], true)
	set(O, 1, 2, st.Small[l.opORQ], false)
	set(O, 2, 1, st.Small[l.opORQ], true)
	set(O, 2, 2, st.Small[l.opOQQ], false)

	// Enforce exact symmetry (XTY pairs agree only to rounding).
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			g := 0.5 * (G[i*d+j] + G[j*d+i])
			G[i*d+j], G[j*d+i] = g, g
			o := 0.5 * (O[i*d+j] + O[j*d+i])
			O[i*d+j], O[j*d+i] = o, o
		}
	}

	cp := st.Small[l.opCP]
	cr := st.Small[l.opCR]
	cq := st.Small[l.opCQ]
	lam := st.Small[l.opLam]

	// Soft-orthogonalize the basis: O = V·D·Vᵀ, keep directions with
	// D_i > ε·max(D), W = V_kept·D^{-1/2}.
	ovals, ovecs := ws.oVals, ws.oVecs
	if err := blas.SymEigInto(O, d, ws.eigWork, ovals, ovecs); err != nil {
		// Leave previous coefficients in place; the solver will flag
		// breakdown via the residual not improving.
		return
	}
	dmax := ovals[d-1]
	if dmax <= 0 {
		return
	}
	tol := 1e-12 * dmax
	keep := ws.keep[:0]
	for i := 0; i < d; i++ {
		if ovals[i] > tol {
			keep = append(keep, i)
		}
	}
	r := len(keep)
	if r < n {
		return
	}
	w := ws.w[:d*r] // d×r, W columns = kept scaled eigvecs
	for kk, col := range keep {
		s := 1 / math.Sqrt(ovals[col])
		for i := 0; i < d; i++ {
			w[i*r+kk] = ovecs[i*d+col] * s
		}
	}
	// Gt = Wᵀ·G·W (r×r).
	gw := ws.gw[:d*r]
	blas.Gemm(1, G, d, d, w, r, 0, gw)
	gt := ws.gt[:r*r]
	blas.GemmTN(1, w, d, r, gw, r, 0, gt)
	for i := 0; i < r; i++ {
		for j := i + 1; j < r; j++ {
			v := 0.5 * (gt[i*r+j] + gt[j*r+i])
			gt[i*r+j], gt[j*r+i] = v, v
		}
	}
	evals, evecs := ws.tVals, ws.tVecs
	if err := blas.SymEigInto(gt, r, ws.eigWork, evals, evecs); err != nil {
		return
	}
	// C = W·U[:, :n] — smallest n Ritz pairs.
	u := ws.u[:r*n]
	for i := 0; i < r; i++ {
		for j := 0; j < n; j++ {
			u[i*n+j] = evecs[i*r+j]
		}
	}
	c3 := ws.c3[:d*n]
	blas.Gemm(1, w, d, r, u, n, 0, c3)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			cp[i*n+j] = c3[i*n+j]
			cr[i*n+j] = c3[(n+i)*n+j]
			cq[i*n+j] = c3[(2*n+i)*n+j]
		}
	}
	for j := 0; j < n; j++ {
		lam[j] = evals[j]
	}
}

// Run executes LOBPCG iterations under the given runtime until the residual
// drops below Tol or MaxIter is reached. A nil runtime runs with the BSP
// backend on one worker. iters > 0 overrides MaxIter with a fixed iteration
// count and disables the convergence exit (the benchmarking mode the paper
// uses: fixed 10 or 5 iterations). Cancelling ctx aborts the solve
// mid-iteration and returns the context's error.
func (l *LOBPCG) Run(ctx context.Context, r rt.Runtime, seed int64, iters int) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if r == nil {
		r = rt.NewBSP(rt.Options{Workers: 1})
	}
	maxIter := l.MaxIter
	fixed := false
	if iters > 0 {
		maxIter = iters
		fixed = true
	}
	if err := l.initState(seed); err != nil {
		return Result{}, err
	}
	pr := rt.PrepareRun(r, l.g, l.st)
	defer pr.Close()
	var res Result
	for it := 1; it <= maxIter; it++ {
		resid, err := l.iterate(ctx, pr)
		if err != nil {
			return res, err
		}
		res.Iterations = it
		res.Residual = resid
		if !fixed && res.Residual < l.Tol {
			res.Converged = true
			break
		}
	}
	lam := l.st.Small[l.opLam]
	res.Eigenvalues = append([]float64(nil), lam...)
	if fixed {
		res.Converged = res.Residual < l.Tol
	}
	return res, nil
}

// initState seeds the LOBPCG state: Ψ0 is a random orthonormal block,
// HΨ0 = A·Ψ0, and the conjugate-direction blocks start at zero (host init,
// excluded from iteration timing just as the paper excludes setup).
func (l *LOBPCG) initState(seed int64) error {
	m, _ := l.A.Dims()
	n := l.N
	rng := rand.New(rand.NewSource(seed))
	psi := l.st.Vec[l.opPsi]
	for i := range psi {
		psi[i] = rng.NormFloat64()
	}
	if err := blas.Orthonormalize(psi, m, n); err != nil {
		return fmt.Errorf("solver: LOBPCG init: %w", err)
	}
	l.A.SpMM(l.st.Vec[l.opHPsi], psi, n)
	zero(l.st.Vec[l.opQ])
	zero(l.st.Vec[l.opHQ])
	if l.precondition {
		l.A.InverseDiagonal(l.st.Vec[l.opDinv])
	}
	return nil
}

// iterate executes one LOBPCG iteration (one full graph run) and returns the
// Frobenius residual norm it measured. Steady-state calls perform no heap
// allocations: the graph, store, prepared executor, and Rayleigh–Ritz
// workspace are all reused.
//
//sparselint:hotpath
func (l *LOBPCG) iterate(ctx context.Context, pr rt.PreparedRun) (float64, error) {
	if err := pr.Run(ctx); err != nil {
		return 0, err
	}
	return l.st.Scalars[l.opRnorm], nil
}

func zero(s []float64) {
	clear(s)
}

// LOBPCGReference runs a dense-algebra sequential LOBPCG on a CSR matrix for
// validation: same algorithm, no task decomposition.
func LOBPCGReference(a *sparse.CSR, n, iters int, seed int64) ([]float64, float64, error) {
	m := a.Rows
	rng := rand.New(rand.NewSource(seed))
	psi := make([]float64, m*n)
	for i := range psi {
		psi[i] = rng.NormFloat64()
	}
	if err := blas.Orthonormalize(psi, m, n); err != nil {
		return nil, 0, err
	}
	hpsi := make([]float64, m*n)
	a.SpMM(hpsi, psi, n)
	q := make([]float64, m*n)
	hq := make([]float64, m*n)
	// Plain loop mirroring the 29-call program.
	mm := make([]float64, n*n)
	r := make([]float64, m*n)
	hr := make([]float64, m*n)
	var resid float64
	lam := make([]float64, n)
	for it := 0; it < iters; it++ {
		blas.GemmTN(1, psi, m, n, hpsi, n, 0, mm)
		blas.Gemm(1, psi, m, n, mm, n, 0, r)
		for i := range r {
			r[i] = hpsi[i] - r[i]
		}
		resid = blas.Nrm2(r)
		if resid != 0 {
			blas.Scal(1/resid, r)
		}
		a.SpMM(hr, r, n)
		cp, cr, cq, lv, ok := denseRayleighRitz(psi, r, q, hpsi, hr, hq, m, n)
		if !ok {
			break
		}
		copy(lam, lv)
		qN := make([]float64, m*n)
		hqN := make([]float64, m*n)
		psiN := make([]float64, m*n)
		hpsiN := make([]float64, m*n)
		blas.Gemm(1, r, m, n, cr, n, 0, qN)
		blas.Gemm(1, q, m, n, cq, n, 1, qN)
		blas.Gemm(1, psi, m, n, cp, n, 0, psiN)
		blas.Axpy(1, qN, psiN)
		blas.Gemm(1, hr, m, n, cr, n, 0, hqN)
		blas.Gemm(1, hq, m, n, cq, n, 1, hqN)
		blas.Gemm(1, hpsi, m, n, cp, n, 0, hpsiN)
		blas.Axpy(1, hqN, hpsiN)
		copy(q, qN)
		copy(hq, hqN)
		copy(psi, psiN)
		copy(hpsi, hpsiN)
	}
	return lam, resid, nil
}

// denseRayleighRitz mirrors LOBPCG.rayleighRitz on dense blocks.
func denseRayleighRitz(psi, r, q, hpsi, hr, hq []float64, m, n int) (cp, cr, cq, lam []float64, ok bool) {
	d := 3 * n
	cols := [][]float64{psi, r, q}
	hcols := [][]float64{hpsi, hr, hq}
	G := make([]float64, d*d)
	O := make([]float64, d*d)
	tmp := make([]float64, n*n)
	for bi := 0; bi < 3; bi++ {
		for bj := 0; bj < 3; bj++ {
			blas.GemmTN(1, cols[bi], m, n, hcols[bj], n, 0, tmp)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					G[(bi*n+i)*d+bj*n+j] = tmp[i*n+j]
				}
			}
			blas.GemmTN(1, cols[bi], m, n, cols[bj], n, 0, tmp)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					O[(bi*n+i)*d+bj*n+j] = tmp[i*n+j]
				}
			}
		}
	}
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			g := 0.5 * (G[i*d+j] + G[j*d+i])
			G[i*d+j], G[j*d+i] = g, g
			o := 0.5 * (O[i*d+j] + O[j*d+i])
			O[i*d+j], O[j*d+i] = o, o
		}
	}
	ovals, ovecs, err := blas.SymEig(O, d)
	if err != nil || ovals[d-1] <= 0 {
		return nil, nil, nil, nil, false
	}
	tol := 1e-12 * ovals[d-1]
	var keep []int
	for i := 0; i < d; i++ {
		if ovals[i] > tol {
			keep = append(keep, i)
		}
	}
	rr := len(keep)
	if rr < n {
		return nil, nil, nil, nil, false
	}
	w := make([]float64, d*rr)
	for kk, col := range keep {
		s := 1 / math.Sqrt(ovals[col])
		for i := 0; i < d; i++ {
			w[i*rr+kk] = ovecs[i*d+col] * s
		}
	}
	gw := make([]float64, d*rr)
	blas.Gemm(1, G, d, d, w, rr, 0, gw)
	gt := make([]float64, rr*rr)
	blas.GemmTN(1, w, d, rr, gw, rr, 0, gt)
	for i := 0; i < rr; i++ {
		for j := i + 1; j < rr; j++ {
			v := 0.5 * (gt[i*rr+j] + gt[j*rr+i])
			gt[i*rr+j], gt[j*rr+i] = v, v
		}
	}
	evals, evecs, err := blas.SymEig(gt, rr)
	if err != nil {
		return nil, nil, nil, nil, false
	}
	u := make([]float64, rr*n)
	for i := 0; i < rr; i++ {
		for j := 0; j < n; j++ {
			u[i*n+j] = evecs[i*rr+j]
		}
	}
	c3 := make([]float64, d*n)
	blas.Gemm(1, w, d, rr, u, n, 0, c3)
	cp = make([]float64, n*n)
	cr = make([]float64, n*n)
	cq = make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			cp[i*n+j] = c3[i*n+j]
			cr[i*n+j] = c3[(n+i)*n+j]
			cq[i*n+j] = c3[(2*n+i)*n+j]
		}
	}
	return cp, cr, cq, evals[:n], true
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
