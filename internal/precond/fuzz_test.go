package precond

import (
	"math"
	"strings"
	"testing"

	"sparsetask/internal/sparse"
)

// FuzzIC0FromMatrixMarket feeds MatrixMarket documents straight into the
// factorization and triangular-solve path: whatever square symmetric-pattern
// matrix the reader accepts, Factorize must either return a usable
// preconditioner (whose Apply terminates and whose level analysis is
// self-consistent) or a clean error — never panic, hang, or emit NaN levels.
func FuzzIC0FromMatrixMarket(f *testing.F) {
	// Seeds exercise the triangular path: an SPD tridiagonal matrix (clean
	// IC(0)), an indefinite matrix (Jacobi fallback), an arrow matrix whose
	// forward solve collapses to two levels, a diagonal, and degenerate and
	// malformed shapes.
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n4 4 7\n1 1 4\n2 1 -1\n2 2 4\n3 2 -1\n3 3 4\n4 3 -1\n4 4 4\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n2 2 3\n1 1 1\n2 1 2\n2 2 1\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n5 5 9\n1 1 8\n2 2 8\n3 3 8\n4 4 8\n5 5 8\n5 1 -1\n5 2 -1\n5 3 -1\n5 4 -1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n3 3 3\n1 1 2\n2 2 2\n3 3 2\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n1 1 0\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 3 1\n1 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n3 3 4\n1 1 NaN\n2 1 1\n2 2 4\n3 3 4\n")

	f.Fuzz(func(t *testing.T, doc string) {
		coo, err := sparse.ReadMatrixMarket(strings.NewReader(doc))
		if err != nil {
			t.Skip()
		}
		if coo.Rows > 1<<12 || coo.NNZ() > 1<<16 {
			t.Skip() // keep fuzz iterations fast
		}
		a := coo.ToCSR()
		m, err := Factorize(a)
		if err != nil {
			return // rectangular or zero-diagonal inputs are rejected cleanly
		}
		if m.Kind == KindIC0 {
			for _, v := range m.L.V {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("IC0 factor contains non-finite value %v", v)
				}
			}
			for _, block := range []int{1, 3} {
				low := AnalyzeLower(m.L, block)
				up := AnalyzeUpper(m.U, block)
				for _, lv := range []*Levels{low, up} {
					sum := 0
					for _, w := range lv.Widths {
						sum += w
					}
					if sum != lv.NB {
						t.Fatalf("widths sum %d != %d blocks", sum, lv.NB)
					}
					for bi := 0; bi < lv.NB; bi++ {
						for _, j := range lv.BlockDeps[bi] {
							if lv.LevelOf[j] >= lv.LevelOf[bi] {
								t.Fatalf("dep level inversion at block %d", bi)
							}
						}
					}
				}
			}
		}
		r := make([]float64, a.Rows)
		for i := range r {
			r[i] = 1
		}
		z := make([]float64, a.Rows)
		m.Apply(z, make([]float64, a.Rows), r)
	})
}
