// Package precond builds preconditioners for the PCG solver: an IC(0)
// incomplete-Cholesky factorization of a symmetric CSR matrix with a Jacobi
// fallback on pivot breakdown, and the level-scheduling analysis that turns
// the resulting triangular solves into irregular task graphs (see levels.go).
//
// The factorization is computed once per matrix and is deliberately serial —
// solverd memoizes it per matrix fingerprint — while the solves it enables
// run through sched.Executor on every rt backend.
package precond

import (
	"errors"
	"fmt"
	"math"

	"sparsetask/internal/sparse"
)

// Kind names which preconditioner Factorize actually produced.
type Kind int

const (
	// KindIC0 means the incomplete Cholesky factorization succeeded and
	// Apply performs the two triangular solves L·y = r, Lᵀ·z = y.
	KindIC0 Kind = iota
	// KindJacobi means IC(0) hit a non-positive pivot and Factorize fell
	// back to diagonal scaling: z = D⁻¹·r.
	KindJacobi
)

func (k Kind) String() string {
	if k == KindJacobi {
		return "jacobi"
	}
	return "ic0"
}

// IC0 is the factorization result. For KindIC0 both L (lower triangular,
// diagonal stored last in each row's lower part) and U = Lᵀ (upper
// triangular) are populated; for KindJacobi only DiagInv is.
type IC0 struct {
	Kind    Kind
	Rows    int
	L       *sparse.CSR // lower factor with explicit diagonal; nil for Jacobi
	U       *sparse.CSR // Lᵀ as an upper CSR for the backward solve; nil for Jacobi
	DiagInv []float64   // 1/A(i,i); always populated (Jacobi fallback and diagnostics)

	// BreakdownRow is the row whose pivot went non-positive when Kind is
	// KindJacobi, -1 otherwise.
	BreakdownRow int
}

// ErrNotSquare is returned when the input matrix is not square.
var ErrNotSquare = errors.New("precond: matrix must be square")

// Factorize computes the IC(0) factorization A ≈ L·Lᵀ on the lower-triangle
// sparsity pattern of a. The algorithm is row-oriented up-looking: for each
// row i and each stored lower entry (i,k),
//
//	L(i,k) = (A(i,k) − Σ_{j<k} L(i,j)·L(k,j)) / L(k,k)
//	L(i,i) = sqrt(A(i,i) − Σ_{j<i} L(i,j)²)
//
// with the inner sums ranging over the shared sparsity of rows i and k of L
// (a two-pointer merge of the sorted rows). If any diagonal pivot fails to
// stay positive the routine abandons IC(0) and returns a Jacobi (inverse
// diagonal) preconditioner instead — the standard remedy for matrices that
// are SPD but not M-matrix-like enough for an incomplete factorization.
//
// a must be symmetric with a fully stored pattern (both triangles) and a
// nonzero diagonal; only the lower triangle is read.
func Factorize(a *sparse.CSR) (*IC0, error) {
	if a.Rows != a.Cols {
		return nil, ErrNotSquare
	}
	n := a.Rows
	dinv := make([]float64, n)
	for i := 0; i < n; i++ {
		d := 0.0
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if int(a.ColIdx[p]) == i {
				d = a.V[p]
				break
			}
		}
		if d == 0 {
			return nil, fmt.Errorf("precond: zero diagonal at row %d", i)
		}
		dinv[i] = 1 / d
	}

	l := a.LowerTriangle()
	if row := factorizeInPlace(l); row >= 0 {
		return &IC0{Kind: KindJacobi, Rows: n, DiagInv: dinv, BreakdownRow: row}, nil
	}
	return &IC0{
		Kind:         KindIC0,
		Rows:         n,
		L:            l,
		U:            l.Transpose(),
		DiagInv:      dinv,
		BreakdownRow: -1,
	}, nil
}

// factorizeInPlace overwrites the values of the lower triangle l with the
// IC(0) factor. It returns the first row with a non-positive pivot, or -1 on
// success. Each row of l must have ascending columns with the diagonal last.
func factorizeInPlace(l *sparse.CSR) int {
	n := l.Rows
	// diagPos[k] is the index of L(k,k) in l.V; filled as rows complete.
	diagPos := make([]int64, n)
	for i := 0; i < n; i++ {
		lo, hi := l.RowPtr[i], l.RowPtr[i+1]
		if hi == lo || int(l.ColIdx[hi-1]) != i {
			// Diagonal must be the last stored entry of a lower row.
			return i
		}
		for p := lo; p < hi-1; p++ {
			k := int(l.ColIdx[p])
			// Dot the finished prefixes of rows i and k (columns < k) via a
			// two-pointer merge of their sorted column lists.
			s := l.V[p]
			pi, pk := lo, l.RowPtr[k]
			for pi < p && pk < diagPos[k] {
				ci, ck := l.ColIdx[pi], l.ColIdx[pk]
				switch {
				case ci == ck:
					s -= l.V[pi] * l.V[pk]
					pi++
					pk++
				case ci < ck:
					pi++
				default:
					pk++
				}
			}
			l.V[p] = s * l.V[diagPos[k]] // diag slot holds 1/L(k,k), see below
		}
		d := l.V[hi-1]
		for p := lo; p < hi-1; p++ {
			d -= l.V[p] * l.V[p]
		}
		if !(d > 0) || math.IsInf(d, 0) || math.IsNaN(d) {
			return i
		}
		diagPos[i] = hi - 1
		// Store the reciprocal during factorization so the inner update is a
		// multiply; fixed up to the true diagonal after the loop.
		l.V[hi-1] = 1 / math.Sqrt(d)
	}
	for i := 0; i < n; i++ {
		l.V[diagPos[i]] = 1 / l.V[diagPos[i]]
	}
	return -1
}

// Apply computes z = M⁻¹·r serially: two triangular solves for IC(0)
// (using y as scratch), or diagonal scaling for Jacobi. This is the
// reference implementation; the PCG solver expresses the same operation as
// level-scheduled tasks.
func (m *IC0) Apply(z, y, r []float64) {
	if m.Kind == KindJacobi {
		for i := range z {
			z[i] = m.DiagInv[i] * r[i]
		}
		return
	}
	m.L.LowerSolve(y, r)
	m.U.UpperSolve(z, y)
}
