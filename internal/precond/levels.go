package precond

import "sparsetask/internal/sparse"

// Levels is the level-scheduling analysis of a triangular factor at row-block
// granularity: block bi depends on every other block that owns a column its
// rows reference, and its level is one past the deepest dependency. One level
// is one rank of independent tasks; the graph package turns BlockDeps into
// TDG edges so the substitution runs wavefront-parallel on the task runtimes.
//
// The analysis follows the ilu_solve level-scheduling exemplar, lifted from
// single rows to row blocks so task granularity matches the rest of the
// system (and so affinity stamps compose with the topology layer).
type Levels struct {
	Block     int       // rows per block (last block may be short)
	NB        int       // number of row blocks
	BlockDeps [][]int32 // per-block sorted list of prerequisite blocks (excl. self)
	LevelOf   []int32   // per-block level, 0-based
	NumLevels int
	Widths    []int // blocks per level; len NumLevels
}

// AnalyzeLower computes the level structure of the forward solve with the
// lower-triangular factor l: row i reads x[c] for stored columns c < i, so a
// block depends on every earlier block owning such a column.
func AnalyzeLower(l *sparse.CSR, block int) *Levels {
	return analyze(l, block, false)
}

// AnalyzeUpper computes the level structure of the backward solve with the
// upper-triangular factor u: row i reads x[c] for stored columns c > i, so a
// block depends on every later block owning such a column.
func AnalyzeUpper(u *sparse.CSR, block int) *Levels {
	return analyze(u, block, true)
}

func analyze(a *sparse.CSR, block int, upper bool) *Levels {
	n := a.Rows
	nb := (n + block - 1) / block
	lv := &Levels{
		Block:     block,
		NB:        nb,
		BlockDeps: make([][]int32, nb),
		LevelOf:   make([]int32, nb),
	}
	// mark[j] == bi+1 records that block j is already a dependency of bi,
	// so each dependency is emitted once regardless of how many entries
	// reference it.
	mark := make([]int32, nb)
	for bi := 0; bi < nb; bi++ {
		rlo := bi * block
		rhi := rlo + block
		if rhi > n {
			rhi = n
		}
		var deps []int32
		for i := rlo; i < rhi; i++ {
			for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
				c := int(a.ColIdx[p])
				if upper {
					if c <= i {
						continue
					}
				} else if c >= i {
					continue
				}
				j := int32(c / block)
				if int(j) == bi || mark[j] == int32(bi)+1 {
					continue
				}
				mark[j] = int32(bi) + 1
				deps = append(deps, j)
			}
		}
		sortInt32(deps)
		lv.BlockDeps[bi] = deps
	}
	// Levels must be assigned in dependency order: ascending blocks for the
	// forward solve, descending for the backward solve (whose deps point at
	// later blocks).
	for k := 0; k < nb; k++ {
		bi := k
		if upper {
			bi = nb - 1 - k
		}
		level := int32(0)
		for _, j := range lv.BlockDeps[bi] {
			if d := lv.LevelOf[j] + 1; d > level {
				level = d
			}
		}
		lv.LevelOf[bi] = level
		if int(level)+1 > lv.NumLevels {
			lv.NumLevels = int(level) + 1
		}
	}
	lv.Widths = make([]int, lv.NumLevels)
	for _, l := range lv.LevelOf {
		lv.Widths[l]++
	}
	return lv
}

// CriticalPath returns the number of levels — the length of the longest
// dependency chain and hence the lower bound on wavefronts regardless of
// worker count.
func (lv *Levels) CriticalPath() int { return lv.NumLevels }

// MaxWidth returns the widest level: the peak parallelism the schedule
// exposes.
func (lv *Levels) MaxWidth() int {
	m := 0
	for _, w := range lv.Widths {
		if w > m {
			m = w
		}
	}
	return m
}

// sortInt32 is an insertion sort: dependency lists are short (bounded by the
// factor's row bandwidth in blocks), and avoiding sort.Slice keeps the
// analysis allocation-light and trivially deterministic.
func sortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
