package precond

import (
	"math"
	"math/rand"
	"testing"

	"sparsetask/internal/sparse"
)

// laplacian2D builds the symmetric 5-point Laplacian on a g×g grid — SPD and
// M-matrix-like, so IC(0) must succeed on it.
func laplacian2D(g int) *sparse.CSR {
	n := g * g
	coo := sparse.NewCOO(n, n, 5*n)
	at := func(r, c int) int { return r*g + c }
	for r := 0; r < g; r++ {
		for c := 0; c < g; c++ {
			i := at(r, c)
			coo.Append(int32(i), int32(i), 4)
			if r > 0 {
				coo.Append(int32(i), int32(at(r-1, c)), -1)
			}
			if r < g-1 {
				coo.Append(int32(i), int32(at(r+1, c)), -1)
			}
			if c > 0 {
				coo.Append(int32(i), int32(at(r, c-1)), -1)
			}
			if c < g-1 {
				coo.Append(int32(i), int32(at(r, c+1)), -1)
			}
		}
	}
	return coo.ToCSR()
}

func TestFactorizeIC0Laplacian(t *testing.T) {
	a := laplacian2D(9)
	m, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != KindIC0 {
		t.Fatalf("expected IC0 on the Laplacian, got %v (breakdown row %d)", m.Kind, m.BreakdownRow)
	}
	n := a.Rows
	// L·Lᵀ must match A exactly on the lower-triangle sparsity pattern —
	// the defining property of IC(0).
	lt := m.L.Transpose()
	for i := 0; i < n; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			j := int(a.ColIdx[p])
			if j > i {
				continue
			}
			// (L·Lᵀ)(i,j) = row i of L · row j of L.
			s := dotRows(m.L, i, j)
			if math.Abs(s-a.V[p]) > 1e-12 {
				t.Fatalf("(LLᵀ)(%d,%d) = %g, want A = %g", i, j, s, a.V[p])
			}
		}
	}
	// U must be exactly Lᵀ.
	if m.U.NNZ() != lt.NNZ() {
		t.Fatalf("U nnz %d != Lᵀ nnz %d", m.U.NNZ(), lt.NNZ())
	}
	for k := range m.U.V {
		if m.U.ColIdx[k] != lt.ColIdx[k] || m.U.V[k] != lt.V[k] {
			t.Fatalf("U entry %d differs from Lᵀ", k)
		}
	}
}

func dotRows(l *sparse.CSR, i, j int) float64 {
	s := 0.0
	pi, pj := l.RowPtr[i], l.RowPtr[j]
	for pi < l.RowPtr[i+1] && pj < l.RowPtr[j+1] {
		ci, cj := l.ColIdx[pi], l.ColIdx[pj]
		switch {
		case ci == cj:
			s += l.V[pi] * l.V[pj]
			pi++
			pj++
		case ci < cj:
			pi++
		default:
			pj++
		}
	}
	return s
}

// TestFactorizeBreakdownFallsBackToJacobi feeds a symmetric matrix with an
// indefinite leading structure: IC(0) hits a non-positive pivot and must
// return a Jacobi preconditioner instead of NaNs.
func TestFactorizeBreakdownFallsBackToJacobi(t *testing.T) {
	// [ 1  2 ; 2  1 ]: pivot 2 becomes 1 − 2² = −3 < 0.
	coo := sparse.NewCOO(2, 2, 4)
	coo.Append(0, 0, 1)
	coo.Append(0, 1, 2)
	coo.Append(1, 0, 2)
	coo.Append(1, 1, 1)
	m, err := Factorize(coo.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != KindJacobi {
		t.Fatalf("expected Jacobi fallback, got %v", m.Kind)
	}
	if m.BreakdownRow != 1 {
		t.Fatalf("breakdown row = %d, want 1", m.BreakdownRow)
	}
	z := make([]float64, 2)
	m.Apply(z, make([]float64, 2), []float64{3, 5})
	if z[0] != 3 || z[1] != 5 {
		t.Fatalf("Jacobi apply = %v, want [3 5]", z)
	}
}

func TestFactorizeRejectsZeroDiagonal(t *testing.T) {
	coo := sparse.NewCOO(2, 2, 2)
	coo.Append(0, 1, 1)
	coo.Append(1, 0, 1)
	if _, err := Factorize(coo.ToCSR()); err == nil {
		t.Fatal("expected error for zero diagonal")
	}
}

func TestFactorizeRejectsRectangular(t *testing.T) {
	coo := sparse.NewCOO(2, 3, 1)
	coo.Append(0, 0, 1)
	if _, err := Factorize(coo.ToCSR()); err != ErrNotSquare {
		t.Fatal("expected ErrNotSquare")
	}
}

// TestApplySolvesExactly checks that for a matrix whose IC(0) pattern equals
// the full Cholesky pattern (a tridiagonal matrix), Apply inverts A exactly:
// A·z = r up to rounding.
func TestApplySolvesExactly(t *testing.T) {
	n := 50
	coo := sparse.NewCOO(n, n, 3*n)
	for i := 0; i < n; i++ {
		coo.Append(int32(i), int32(i), 4)
		if i > 0 {
			coo.Append(int32(i), int32(i-1), -1)
			coo.Append(int32(i-1), int32(i), -1)
		}
	}
	a := coo.ToCSR()
	m, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != KindIC0 {
		t.Fatalf("expected IC0, got %v", m.Kind)
	}
	rng := rand.New(rand.NewSource(3))
	r := make([]float64, n)
	for i := range r {
		r[i] = rng.NormFloat64()
	}
	z := make([]float64, n)
	y := make([]float64, n)
	m.Apply(z, y, r)
	az := make([]float64, n)
	a.SpMV(az, z)
	for i := range r {
		if math.Abs(az[i]-r[i]) > 1e-10 {
			t.Fatalf("A·z differs from r at %d: %g vs %g", i, az[i], r[i])
		}
	}
}
