package precond

import (
	"testing"

	"sparsetask/internal/sparse"
)

// TestAnalyzeLowerBidiagonal: a bidiagonal lower factor at block=1 is a pure
// chain — every block depends on the previous one, so there are n levels of
// width 1.
func TestAnalyzeLowerBidiagonal(t *testing.T) {
	n := 6
	coo := sparse.NewCOO(n, n, 2*n)
	for i := 0; i < n; i++ {
		if i > 0 {
			coo.Append(int32(i), int32(i-1), -1)
		}
		coo.Append(int32(i), int32(i), 2)
	}
	l := coo.ToCSR()
	lv := AnalyzeLower(l, 1)
	if lv.NumLevels != n {
		t.Fatalf("NumLevels = %d, want %d", lv.NumLevels, n)
	}
	for bi := 0; bi < n; bi++ {
		if int(lv.LevelOf[bi]) != bi {
			t.Fatalf("LevelOf[%d] = %d, want %d", bi, lv.LevelOf[bi], bi)
		}
	}
	if lv.MaxWidth() != 1 || lv.CriticalPath() != n {
		t.Fatalf("MaxWidth=%d CriticalPath=%d, want 1 and %d", lv.MaxWidth(), lv.CriticalPath(), n)
	}
	// Block 3 depends exactly on block 2.
	if len(lv.BlockDeps[3]) != 1 || lv.BlockDeps[3][0] != 2 {
		t.Fatalf("BlockDeps[3] = %v, want [2]", lv.BlockDeps[3])
	}
}

// TestAnalyzeDiagonalIsOneLevel: a diagonal factor has no cross-block deps —
// every block sits at level 0 regardless of direction.
func TestAnalyzeDiagonalIsOneLevel(t *testing.T) {
	n := 10
	coo := sparse.NewCOO(n, n, n)
	for i := 0; i < n; i++ {
		coo.Append(int32(i), int32(i), 1)
	}
	d := coo.ToCSR()
	for _, lv := range []*Levels{AnalyzeLower(d, 3), AnalyzeUpper(d, 3)} {
		if lv.NumLevels != 1 {
			t.Fatalf("NumLevels = %d, want 1", lv.NumLevels)
		}
		if lv.Widths[0] != lv.NB {
			t.Fatalf("Widths[0] = %d, want %d", lv.Widths[0], lv.NB)
		}
	}
}

// TestAnalyzeUpperMirrorsLower: the backward solve on Lᵀ must have the same
// level count as the forward solve on L (the DAGs are reverses of each
// other), with block dependencies pointing at later blocks.
func TestAnalyzeUpperMirrorsLower(t *testing.T) {
	a := laplacian2D(8)
	m, err := Factorize(a)
	if err != nil || m.Kind != KindIC0 {
		t.Fatalf("factorize: %v kind=%v", err, m.Kind)
	}
	const block = 4
	low := AnalyzeLower(m.L, block)
	up := AnalyzeUpper(m.U, block)
	if low.NumLevels != up.NumLevels {
		t.Fatalf("lower has %d levels, upper %d", low.NumLevels, up.NumLevels)
	}
	for bi := 0; bi < up.NB; bi++ {
		for _, j := range up.BlockDeps[bi] {
			if int(j) <= bi {
				t.Fatalf("upper block %d depends on earlier block %d", bi, j)
			}
		}
		for _, j := range low.BlockDeps[bi] {
			if int(j) >= bi {
				t.Fatalf("lower block %d depends on later block %d", bi, j)
			}
		}
	}
	// Widths must sum to the block count in both directions.
	for _, lv := range []*Levels{low, up} {
		sum := 0
		for _, w := range lv.Widths {
			sum += w
		}
		if sum != lv.NB {
			t.Fatalf("level widths sum to %d, want %d blocks", sum, lv.NB)
		}
	}
}

// TestAnalyzeDepsRespectLevels: every dependency must sit at a strictly
// lower level than its dependent — the invariant that makes one level one
// rank of independent tasks.
func TestAnalyzeDepsRespectLevels(t *testing.T) {
	a := laplacian2D(11)
	m, err := Factorize(a)
	if err != nil || m.Kind != KindIC0 {
		t.Fatalf("factorize: %v kind=%v", err, m.Kind)
	}
	for _, tc := range []struct {
		name string
		lv   *Levels
	}{
		{"lower", AnalyzeLower(m.L, 5)},
		{"upper", AnalyzeUpper(m.U, 5)},
	} {
		for bi := 0; bi < tc.lv.NB; bi++ {
			for _, j := range tc.lv.BlockDeps[bi] {
				if tc.lv.LevelOf[j] >= tc.lv.LevelOf[bi] {
					t.Fatalf("%s: block %d (level %d) depends on block %d (level %d)",
						tc.name, bi, tc.lv.LevelOf[bi], j, tc.lv.LevelOf[j])
				}
			}
		}
	}
}
