// Package autotune implements the paper's §5.4 block-size selection
// heuristic as a library: instead of brute-forcing every block size from
// 2^10 to 2^24, the optimal CSB block size always lands the per-dimension
// block count in [8, 511], so tuning reduces to evaluating one candidate
// per bin — six trials — and picking the fastest.
//
// Evaluation can run against the discrete-event simulator (deterministic,
// machine-model-driven — the default) or against any user-supplied evaluator
// (e.g. wall-clock runs of the real runtimes on the host).
package autotune

import (
	"fmt"

	"sparsetask/internal/graph"
	"sparsetask/internal/machine"
	"sparsetask/internal/sim"
	"sparsetask/internal/solver"
	"sparsetask/internal/sparse"
)

// Bins are the six block-count bins of §5.4 with their geometric-midpoint
// representatives. The paper's rule of thumb: the optimum is always in one
// of these bins, with DeepSparse favoring 32–63 (Broadwell) / 64–127 (EPYC),
// HPX 64–127, and Regent 16–31.
var Bins = []struct {
	Label string
	Lo    int
	Hi    int
	Rep   int
}{
	{"8-15", 8, 15, 11},
	{"16-31", 16, 31, 23},
	{"32-63", 32, 63, 45},
	{"64-127", 64, 127, 90},
	{"128-255", 128, 255, 181},
	{"256-511", 256, 511, 362},
}

// Solver selects which benchmark application the tuned graph runs.
type Solver int

// The two paper applications.
const (
	Lanczos Solver = iota
	LOBPCG
)

// Evaluator measures the cost of executing one solver iteration when the
// matrix is tiled at the given block count. Lower is better. An error marks
// the candidate infeasible (it is skipped).
type Evaluator func(blockCount int) (float64, error)

// Result reports a tuning run.
type Result struct {
	BlockCount int     // the winning representative block count
	Block      int     // the corresponding CSB block size in rows
	Bin        string  // the winning bin label
	Cost       float64 // evaluator cost at the winner
	// Trials records every evaluated (blockCount, cost) pair in bin order.
	Trials []Trial
}

// Trial is one evaluated candidate.
type Trial struct {
	Bin        string
	BlockCount int
	Cost       float64
	Err        error
}

// Tune runs the six-bin search with the given evaluator for a matrix with
// `rows` rows. Block counts that exceed rows are skipped.
func Tune(rows int, eval Evaluator) (Result, error) {
	if rows <= 0 {
		return Result{}, fmt.Errorf("autotune: rows must be positive, got %d", rows)
	}
	res := Result{Cost: -1}
	for _, bin := range Bins {
		bc := bin.Rep
		if bc > rows {
			continue
		}
		cost, err := eval(bc)
		res.Trials = append(res.Trials, Trial{Bin: bin.Label, BlockCount: bc, Cost: cost, Err: err})
		if err != nil {
			continue
		}
		if res.Cost < 0 || cost < res.Cost {
			res.Cost = cost
			res.BlockCount = bc
			res.Bin = bin.Label
		}
	}
	if res.Cost < 0 {
		return res, fmt.Errorf("autotune: no feasible block count for %d rows", rows)
	}
	res.Block = (rows + res.BlockCount - 1) / res.BlockCount
	return res, nil
}

// SimEvaluator returns an Evaluator that builds the solver's per-iteration
// TDG at each candidate block count and measures one warm iteration on the
// discrete-event simulator with the given machine model and policy factory.
func SimEvaluator(coo *sparse.COO, sv Solver, mach machine.Model, pol func(machine.Model) sim.Policy) Evaluator {
	return func(blockCount int) (float64, error) {
		block := (coo.Rows + blockCount - 1) / blockCount
		csb := coo.ToCSB(block)
		var g *graph.TDG
		switch sv {
		case Lanczos:
			l, err := solver.NewLanczos(csb, 10)
			if err != nil {
				return 0, err
			}
			g = l.Graph()
		case LOBPCG:
			l, err := solver.NewLOBPCG(csb, 8)
			if err != nil {
				return 0, err
			}
			g = l.Graph()
		default:
			return 0, fmt.Errorf("autotune: unknown solver %d", sv)
		}
		p := pol(mach)
		s := sim.New(mach, true)
		s.PlaceFirstTouch(g, p.Workers())
		if _, err := s.Run(g, p, nil); err != nil { // warm caches
			return 0, err
		}
		r, err := s.Run(g, p, nil)
		if err != nil {
			return 0, err
		}
		return float64(r.MakespanNs), nil
	}
}

// GraphEvaluator returns an Evaluator that scores candidates analytically
// without simulation: estimated makespan = max(work/w, span) under the flop
// cost model plus per-task overhead on w workers. Orders of magnitude
// cheaper than simulation; useful as a pre-filter or when no machine model
// applies.
func GraphEvaluator(coo *sparse.COO, sv Solver, workers int, flopsPerNs, overheadNs float64) Evaluator {
	return func(blockCount int) (float64, error) {
		block := (coo.Rows + blockCount - 1) / blockCount
		csb := coo.ToCSB(block)
		var g *graph.TDG
		switch sv {
		case Lanczos:
			l, err := solver.NewLanczos(csb, 10)
			if err != nil {
				return 0, err
			}
			g = l.Graph()
		case LOBPCG:
			l, err := solver.NewLOBPCG(csb, 8)
			if err != nil {
				return 0, err
			}
			g = l.Graph()
		default:
			return 0, fmt.Errorf("autotune: unknown solver %d", sv)
		}
		b := g.ComputeBounds(func(t *graph.Task) float64 {
			return float64(t.Flops)/flopsPerNs + overheadNs
		})
		return b.LowerBound(workers), nil
	}
}
