package autotune

import (
	"errors"
	"math"
	"testing"

	"sparsetask/internal/machine"
	"sparsetask/internal/matgen"
	"sparsetask/internal/sim"
)

func TestTunePicksMinimum(t *testing.T) {
	// Synthetic U-curve with minimum at block count 45 (bin 32-63).
	res, err := Tune(100000, func(bc int) (float64, error) {
		return math.Abs(float64(bc) - 50), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BlockCount != 45 || res.Bin != "32-63" {
		t.Fatalf("picked %d (%s), want 45 (32-63)", res.BlockCount, res.Bin)
	}
	if res.Block != (100000+44)/45 {
		t.Fatalf("block = %d", res.Block)
	}
	if len(res.Trials) != 6 {
		t.Fatalf("%d trials, want 6", len(res.Trials))
	}
}

func TestTuneSkipsInfeasible(t *testing.T) {
	calls := 0
	res, err := Tune(100000, func(bc int) (float64, error) {
		calls++
		if bc < 100 {
			return 0, errors.New("infeasible")
		}
		return float64(bc), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BlockCount != 181 {
		t.Fatalf("picked %d, want 181 (smallest feasible)", res.BlockCount)
	}
	if calls != 6 {
		t.Fatalf("evaluator called %d times, want 6", calls)
	}
}

func TestTuneSmallMatrixSkipsLargeBins(t *testing.T) {
	seen := map[int]bool{}
	if _, err := Tune(100, func(bc int) (float64, error) {
		seen[bc] = true
		return 1, nil
	}); err != nil {
		t.Fatal(err)
	}
	if seen[181] || seen[362] {
		t.Fatal("bins beyond the row count must be skipped")
	}
}

func TestTuneAllInfeasibleErrors(t *testing.T) {
	if _, err := Tune(1000, func(int) (float64, error) { return 0, errors.New("no") }); err == nil {
		t.Fatal("expected error")
	}
	if _, err := Tune(0, nil); err == nil {
		t.Fatal("expected error for zero rows")
	}
}

func TestSimEvaluatorEndToEnd(t *testing.T) {
	coo := matgen.KKT(10, 1) // 2000 rows
	mach := machine.Broadwell().Scaled(64).SlowDown(32)
	eval := SimEvaluator(coo, LOBPCG, mach, func(m machine.Model) sim.Policy {
		return sim.NewDeepSparse(m.Cores)
	})
	res, err := Tune(coo.Rows, eval)
	if err != nil {
		t.Fatal(err)
	}
	if res.BlockCount < 8 || res.BlockCount > 511 {
		t.Fatalf("optimum %d outside the paper's window", res.BlockCount)
	}
	if res.Cost <= 0 {
		t.Fatal("nonpositive cost")
	}
}

func TestGraphEvaluatorOrdersOverheadTradeoff(t *testing.T) {
	coo := matgen.KKT(10, 2)
	// With enormous per-task overhead, coarse blocks must win.
	evalCostly := GraphEvaluator(coo, Lanczos, 28, 8, 1e6)
	resCostly, err := Tune(coo.Rows, evalCostly)
	if err != nil {
		t.Fatal(err)
	}
	// With zero overhead, finer decomposition can only help the bound.
	evalFree := GraphEvaluator(coo, Lanczos, 28, 8, 0)
	resFree, err := Tune(coo.Rows, evalFree)
	if err != nil {
		t.Fatal(err)
	}
	if resCostly.BlockCount > resFree.BlockCount {
		t.Fatalf("costly overhead picked finer blocks (%d) than free (%d)",
			resCostly.BlockCount, resFree.BlockCount)
	}
}

func TestSimEvaluatorLanczos(t *testing.T) {
	coo := matgen.FEM3D(8, 8, 8, 1, 7, 3)
	mach := machine.EPYC().Scaled(128).SlowDown(16)
	eval := SimEvaluator(coo, Lanczos, mach, func(m machine.Model) sim.Policy {
		return sim.NewHPX(m.Cores, m.NUMADomains, true)
	})
	if _, err := Tune(coo.Rows, eval); err != nil {
		t.Fatal(err)
	}
}
