package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTridiagEigLaplacian(t *testing.T) {
	for _, n := range []int{1, 2, 5, 30, 100} {
		d := make([]float64, n)
		e := make([]float64, max0(n-1))
		for i := range d {
			d[i] = 2
		}
		for i := range e {
			e[i] = -1
		}
		ev, err := TridiagEig(d, e)
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k <= n; k++ {
			want := 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1))
			if math.Abs(ev[k-1]-want) > 1e-10 {
				t.Fatalf("n=%d λ_%d = %v, want %v", n, k, ev[k-1], want)
			}
		}
	}
}

func max0(x int) int {
	if x < 0 {
		return 0
	}
	return x
}

func TestTridiagEigMatchesJacobi(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		d := make([]float64, n)
		e := make([]float64, n-1)
		for i := range d {
			d[i] = rng.NormFloat64() * 3
		}
		for i := range e {
			e[i] = rng.NormFloat64()
		}
		ql, err := TridiagEig(d, e)
		if err != nil {
			return false
		}
		jac, _, err := SymTriEig(d, e)
		if err != nil {
			return false
		}
		for i := range ql {
			if math.Abs(ql[i]-jac[i]) > 1e-8*(1+math.Abs(jac[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTridiagEigInputValidation(t *testing.T) {
	if _, err := TridiagEig([]float64{1, 2}, []float64{}); err == nil {
		t.Fatal("expected length error")
	}
	ev, err := TridiagEig(nil, nil)
	if err != nil || ev != nil {
		t.Fatal("empty input should return empty result")
	}
}

func TestTridiagEigDoesNotModifyInput(t *testing.T) {
	d := []float64{3, 1, 2}
	e := []float64{0.5, -0.5}
	d0 := append([]float64(nil), d...)
	e0 := append([]float64(nil), e...)
	if _, err := TridiagEig(d, e); err != nil {
		t.Fatal(err)
	}
	for i := range d {
		if d[i] != d0[i] {
			t.Fatal("d modified")
		}
	}
	for i := range e {
		if e[i] != e0[i] {
			t.Fatal("e modified")
		}
	}
}

func TestSturmCountConsistentWithEigenvalues(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 20
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = rng.NormFloat64() * 2
	}
	for i := range e {
		e[i] = rng.NormFloat64()
	}
	ev, err := TridiagEig(d, e)
	if err != nil {
		t.Fatal(err)
	}
	// Between consecutive eigenvalues, the Sturm count must equal the index.
	for k := 0; k <= n; k++ {
		var x float64
		switch {
		case k == 0:
			x = ev[0] - 1
		case k == n:
			x = ev[n-1] + 1
		default:
			x = 0.5 * (ev[k-1] + ev[k])
		}
		if got := SturmCount(d, e, x); got != k {
			t.Errorf("SturmCount below %v = %d, want %d", x, got, k)
		}
	}
}
