package blas

import (
	"fmt"
	"math"
)

// SymEig computes all eigenvalues and eigenvectors of the symmetric n×n
// row-major matrix a using the cyclic Jacobi method. It returns eigenvalues
// in ascending order and the corresponding eigenvectors as the columns of v
// (row-major n×n, so v[i*n+j] is component i of eigenvector j). The input is
// not modified.
//
// Jacobi is quadratic-time per sweep but the matrices here are tiny — the
// Rayleigh–Ritz subspaces in LOBPCG are at most 3·blockvectors wide and the
// Lanczos tridiagonal is k×k — so robustness beats speed.
func SymEig(a []float64, n int) (eigvals []float64, v []float64, err error) {
	if len(a) < n*n {
		return nil, nil, fmt.Errorf("blas: SymEig needs %d elements, have %d", n*n, len(a))
	}
	work := make([]float64, n*n)
	eigvals = make([]float64, n)
	v = make([]float64, n*n)
	if err := SymEigInto(a, n, work, eigvals, v); err != nil {
		return nil, nil, err
	}
	return eigvals, v, nil
}

// SymEigInto is the allocation-free form of SymEig for hot paths (the
// per-iteration Rayleigh–Ritz solves): work is n×n scratch (overwritten),
// vals receives the ascending eigenvalues (len ≥ n), vecs the eigenvectors
// as columns (len ≥ n×n). On error the output buffers hold garbage. The
// success path performs no heap allocations.
func SymEigInto(a []float64, n int, work, vals, vecs []float64) error {
	if len(a) < n*n {
		return fmt.Errorf("blas: SymEig needs %d elements, have %d", n*n, len(a))
	}
	if len(work) < n*n || len(vals) < n || len(vecs) < n*n {
		return fmt.Errorf("blas: SymEigInto buffers too small for n=%d", n)
	}
	w := work[:n*n]
	copy(w, a[:n*n])
	// Symmetry check with a tolerance scaled by magnitude.
	var amax float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if m := math.Abs(w[i*n+j]); m > amax {
				amax = m
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(w[i*n+j]-w[j*n+i]) > 1e-8*(1+amax) {
				return fmt.Errorf("blas: SymEig input not symmetric at (%d,%d): %g vs %g", i, j, w[i*n+j], w[j*n+i])
			}
			// Enforce exact symmetry so rotations stay consistent.
			m := 0.5 * (w[i*n+j] + w[j*n+i])
			w[i*n+j], w[j*n+i] = m, m
		}
	}

	v := vecs[:n*n]
	clear(v)
	for i := 0; i < n; i++ {
		v[i*n+i] = 1
	}

	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w[i*n+j] * w[i*n+j]
			}
		}
		if off <= 1e-30*(1+amax*amax) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w[p*n+q]
				if math.Abs(apq) <= 1e-300 {
					continue
				}
				app := w[p*n+p]
				aqq := w[q*n+q]
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Apply the rotation G(p,q,θ): W ← GᵀWG, V ← VG.
				for k := 0; k < n; k++ {
					wkp := w[k*n+p]
					wkq := w[k*n+q]
					w[k*n+p] = c*wkp - s*wkq
					w[k*n+q] = s*wkp + c*wkq
				}
				for k := 0; k < n; k++ {
					wpk := w[p*n+k]
					wqk := w[q*n+k]
					w[p*n+k] = c*wpk - s*wqk
					w[q*n+k] = s*wpk + c*wqk
				}
				for k := 0; k < n; k++ {
					vkp := v[k*n+p]
					vkq := v[k*n+q]
					v[k*n+p] = c*vkp - s*vkq
					v[k*n+q] = s*vkp + c*vkq
				}
			}
		}
	}

	ev := vals[:n]
	for i := 0; i < n; i++ {
		ev[i] = w[i*n+i]
	}
	// Sort eigenpairs ascending by eigenvalue (insertion sort: n is tiny).
	for i := 1; i < n; i++ {
		for j := i; j > 0 && ev[j] < ev[j-1]; j-- {
			ev[j], ev[j-1] = ev[j-1], ev[j]
			for k := 0; k < n; k++ {
				v[k*n+j], v[k*n+j-1] = v[k*n+j-1], v[k*n+j]
			}
		}
	}
	return nil
}

// SymTriEig computes the eigenvalues (ascending) and eigenvectors of the
// symmetric tridiagonal matrix with diagonal d (len k) and off-diagonal e
// (len k-1), as produced by Lanczos. Implemented by densifying and calling
// SymEig: the Lanczos k is small (tens).
func SymTriEig(d, e []float64) (eigvals []float64, v []float64, err error) {
	k := len(d)
	if len(e) != k-1 && !(k == 0 && len(e) == 0) {
		return nil, nil, fmt.Errorf("blas: SymTriEig needs len(e)=len(d)-1, got %d and %d", len(e), len(d))
	}
	a := make([]float64, k*k)
	for i := 0; i < k; i++ {
		a[i*k+i] = d[i]
		if i+1 < k {
			a[i*k+i+1] = e[i]
			a[(i+1)*k+i] = e[i]
		}
	}
	return SymEig(a, k)
}

// Cholesky computes the upper-triangular factor R of the symmetric
// positive-definite n×n matrix a (row-major), so that a = RᵀR. Returns an
// error if the matrix is not positive definite to working precision.
func Cholesky(a []float64, n int) ([]float64, error) {
	if len(a) < n*n {
		return nil, fmt.Errorf("blas: Cholesky needs %d elements, have %d", n*n, len(a))
	}
	r := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			s := a[i*n+j]
			for k := 0; k < i; k++ {
				s -= r[k*n+i] * r[k*n+j]
			}
			if i == j {
				if s <= 0 {
					return nil, fmt.Errorf("blas: Cholesky pivot %d non-positive (%g): matrix not positive definite", i, s)
				}
				r[i*n+i] = math.Sqrt(s)
			} else {
				r[i*n+j] = s / r[i*n+i]
			}
		}
	}
	return r, nil
}

// TrsmRightUpperInv computes X ← X·R⁻¹ in place, where X is m×n row-major and
// R is the n×n upper-triangular Cholesky factor. Used by CholQR
// orthonormalization: Q = X·R⁻¹.
func TrsmRightUpperInv(x []float64, m, n int, r []float64) {
	if len(x) < m*n || len(r) < n*n {
		panic(fmt.Sprintf("blas: TrsmRightUpperInv shape mismatch m=%d n=%d", m, n))
	}
	for i := 0; i < m; i++ {
		xi := x[i*n : i*n+n]
		// Forward substitution across columns: solve y·R = x row-wise.
		for j := 0; j < n; j++ {
			s := xi[j]
			for k := 0; k < j; k++ {
				s -= xi[k] * r[k*n+j]
			}
			xi[j] = s / r[j*n+j]
		}
	}
}

// Orthonormalize makes the n columns of the m×n row-major block x
// orthonormal using Cholesky-QR with one reorthogonalization pass, falling
// back to modified Gram–Schmidt when the Gram matrix is numerically rank
// deficient. Returns an error only if the block is numerically rank deficient
// beyond repair.
func Orthonormalize(x []float64, m, n int) error {
	for pass := 0; pass < 2; pass++ {
		g := make([]float64, n*n)
		GemmTN(1, x, m, n, x, n, 0, g)
		r, err := Cholesky(g, n)
		if err != nil {
			return mgsOrthonormalize(x, m, n)
		}
		TrsmRightUpperInv(x, m, n, r)
	}
	return nil
}

// mgsOrthonormalize is the modified Gram–Schmidt fallback, column-wise on the
// row-major block.
func mgsOrthonormalize(x []float64, m, n int) error {
	for j := 0; j < n; j++ {
		for k := 0; k < j; k++ {
			var d float64
			for i := 0; i < m; i++ {
				d += x[i*n+k] * x[i*n+j]
			}
			for i := 0; i < m; i++ {
				x[i*n+j] -= d * x[i*n+k]
			}
		}
		var nrm float64
		for i := 0; i < m; i++ {
			nrm += x[i*n+j] * x[i*n+j]
		}
		nrm = math.Sqrt(nrm)
		if nrm < 1e-14 {
			return fmt.Errorf("blas: Orthonormalize: column %d numerically zero", j)
		}
		inv := 1 / nrm
		for i := 0; i < m; i++ {
			x[i*n+j] *= inv
		}
	}
	return nil
}
