package blas

import (
	"fmt"
	"math"
)

// TridiagEig computes all eigenvalues of a symmetric tridiagonal matrix with
// diagonal d (len n) and off-diagonal e (len n-1) using the implicit QL
// algorithm with Wilkinson shifts (the classic tql1/tql2 scheme). It runs in
// O(n²) — asymptotically better than the O(n³) densify-and-Jacobi path of
// SymTriEig — and is the right tool once Lanczos subspaces grow beyond a few
// dozen vectors. Eigenvalues are returned ascending. Inputs are not modified.
func TridiagEig(d, e []float64) ([]float64, error) {
	n := len(d)
	if n == 0 {
		return nil, nil
	}
	if len(e) != n-1 {
		return nil, fmt.Errorf("blas: TridiagEig needs len(e)=len(d)-1, got %d and %d", len(e), len(d))
	}
	// Working copies; ee is padded so ee[n-1] exists as the 0 sentinel.
	dd := append([]float64(nil), d...)
	ee := make([]float64, n)
	copy(ee, e)

	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			// Find the smallest m >= l with a negligible off-diagonal.
			m := l
			for ; m < n-1; m++ {
				scale := math.Abs(dd[m]) + math.Abs(dd[m+1])
				if math.Abs(ee[m]) <= 1e-16*scale {
					break
				}
			}
			if m == l {
				break // dd[l] converged
			}
			if iter >= 50 {
				return nil, fmt.Errorf("blas: TridiagEig failed to converge at index %d", l)
			}
			// Wilkinson shift.
			g := (dd[l+1] - dd[l]) / (2 * ee[l])
			r := math.Hypot(g, 1)
			g = dd[m] - dd[l] + ee[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			// Implicit QL sweep from m-1 down to l.
			for i := m - 1; i >= l; i-- {
				f := s * ee[i]
				b := c * ee[i]
				r = math.Hypot(f, g)
				ee[i+1] = r
				if r == 0 {
					dd[i+1] -= p
					ee[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = dd[i+1] - p
				r = (dd[i]-g)*s + 2*c*b
				p = s * r
				dd[i+1] = g + p
				g = c*r - b
			}
			if r == 0 && m-1 >= l {
				continue
			}
			dd[l] -= p
			ee[l] = g
			ee[m] = 0
		}
	}
	// Insertion sort ascending (nearly sorted already).
	for i := 1; i < n; i++ {
		for j := i; j > 0 && dd[j] < dd[j-1]; j-- {
			dd[j], dd[j-1] = dd[j-1], dd[j]
		}
	}
	return dd, nil
}

// SturmCount returns the number of eigenvalues of the symmetric tridiagonal
// (d, e) that are strictly less than x, via the Sturm sequence. Useful for
// verifying eigenvalue computations and for bisection-based selective
// extraction.
func SturmCount(d, e []float64, x float64) int {
	count := 0
	q := 1.0
	for i := range d {
		var off float64
		if i > 0 {
			off = e[i-1]
		}
		if q != 0 {
			q = d[i] - x - off*off/q
		} else {
			// Previous pivot vanished: standard perturbation trick.
			q = d[i] - x - math.Abs(off)/1e-300
		}
		if q < 0 {
			count++
		}
	}
	return count
}
