package blas

import (
	"math"
	"math/rand"
	"testing"
)

// Equivalence gates for the register-blocked dense kernels: the 4×-unrolled
// j-loops, the multi-accumulator gemmN1/Dot reductions, the v==0 skip, and
// the beta∈{0,1,other} branches must all agree with naive triple loops to
// 1e-12 relative error. The coefficient grid pins every special-cased branch.

func naiveGemmTN(alpha float64, a []float64, k, m int, b []float64, n int, beta float64, c []float64) {
	out := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += a[p*m+i] * b[p*n+j]
			}
			out[i*n+j] = alpha*s + beta*c[i*n+j]
		}
	}
	copy(c, out)
}

// sprinkleZeros forces exact zeros into x so the kernels' v==0 skip paths are
// exercised on every shape, not just by luck.
func sprinkleZeros(rng *rand.Rand, x []float64) {
	for i := range x {
		if rng.Intn(3) == 0 {
			x[i] = 0
		}
	}
}

func TestGemmEquivalenceCoefficientGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {4, 4, 4}, {5, 3, 1}, {7, 1, 9}, {1, 8, 8},
		{9, 5, 2}, {6, 7, 4}, {13, 11, 8}, {16, 2, 3}, {3, 17, 5},
	}
	for _, s := range shapes {
		for _, alpha := range []float64{0, 1, -1, 0.3} {
			for _, beta := range []float64{0, 1, 0.7} {
				a := randSlice(rng, s.m*s.k)
				b := randSlice(rng, s.k*s.n)
				sprinkleZeros(rng, a)
				c1 := randSlice(rng, s.m*s.n)
				c2 := append([]float64(nil), c1...)
				Gemm(alpha, a, s.m, s.k, b, s.n, beta, c1)
				naiveGemm(alpha, a, s.m, s.k, b, s.n, beta, c2)
				for i := range c1 {
					if !almostEq(c1[i], c2[i], 1e-12) {
						t.Fatalf("Gemm m=%d k=%d n=%d alpha=%g beta=%g: c[%d] = %g, want %g",
							s.m, s.k, s.n, alpha, beta, i, c1[i], c2[i])
					}
				}
			}
		}
	}
}

func TestGemmTNEquivalenceCoefficientGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	shapes := []struct{ k, m, n int }{
		{1, 1, 1}, {4, 4, 4}, {5, 3, 1}, {9, 1, 7}, {8, 8, 1},
		{11, 5, 2}, {7, 6, 4}, {17, 3, 8}, {2, 16, 3}, {13, 9, 5},
	}
	for _, s := range shapes {
		for _, alpha := range []float64{0, 1, -1, 0.3} {
			for _, beta := range []float64{0, 1, 0.7} {
				a := randSlice(rng, s.k*s.m)
				b := randSlice(rng, s.k*s.n)
				sprinkleZeros(rng, b)
				c1 := randSlice(rng, s.m*s.n)
				c2 := append([]float64(nil), c1...)
				GemmTN(alpha, a, s.k, s.m, b, s.n, beta, c1)
				naiveGemmTN(alpha, a, s.k, s.m, b, s.n, beta, c2)
				for i := range c1 {
					if !almostEq(c1[i], c2[i], 1e-12) {
						t.Fatalf("GemmTN k=%d m=%d n=%d alpha=%g beta=%g: c[%d] = %g, want %g",
							s.k, s.m, s.n, alpha, beta, i, c1[i], c2[i])
					}
				}
			}
		}
	}
}

func TestGemmEquivalenceFuzzShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	iters := 120
	if testing.Short() {
		iters = 30
	}
	for it := 0; it < iters; it++ {
		m, k, n := 1+rng.Intn(24), 1+rng.Intn(24), 1+rng.Intn(24)
		alpha, beta := rng.NormFloat64(), rng.NormFloat64()
		a := randSlice(rng, m*k)
		b := randSlice(rng, k*n)
		sprinkleZeros(rng, a)
		sprinkleZeros(rng, b)
		c1 := randSlice(rng, m*n)
		c2 := append([]float64(nil), c1...)
		if it%2 == 0 {
			Gemm(alpha, a, m, k, b, n, beta, c1)
			naiveGemm(alpha, a, m, k, b, n, beta, c2)
		} else {
			GemmTN(alpha, a, k, m, b, n, beta, c1)
			naiveGemmTN(alpha, a, k, m, b, n, beta, c2)
		}
		for i := range c1 {
			if !almostEq(c1[i], c2[i], 1e-12) {
				t.Fatalf("fuzz iter %d (m=%d k=%d n=%d): c[%d] = %g, want %g", it, m, k, n, i, c1[i], c2[i])
			}
		}
	}
}

func TestDotAxpyUnrollEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// Lengths straddling the 4× unroll boundary plus a long one, so both the
	// unrolled body and every tail length are checked.
	for _, n := range []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 1000} {
		x := randSlice(rng, n)
		y := randSlice(rng, n)
		var want float64
		for i := 0; i < n; i++ {
			want += x[i] * y[i]
		}
		if got := Dot(x, y); !almostEq(got, want, 1e-12) {
			t.Fatalf("Dot len=%d: got %g, want %g", n, got, want)
		}
		alpha := rng.NormFloat64()
		y2 := append([]float64(nil), y...)
		Axpy(alpha, x, y2)
		for i := 0; i < n; i++ {
			if !almostEq(y2[i], y[i]+alpha*x[i], 1e-12) {
				t.Fatalf("Axpy len=%d: y[%d] = %g, want %g", n, i, y2[i], y[i]+alpha*x[i])
			}
		}
	}
}

func TestScalZeroClears(t *testing.T) {
	x := []float64{1, math.Inf(1), math.NaN(), -3}
	Scal(0, x)
	for i, v := range x {
		if v != 0 {
			t.Fatalf("Scal(0): x[%d] = %g, want exact 0", i, v)
		}
	}
}

// SymEigInto is the allocation-free core that SymEig wraps; with fresh
// buffers the two must produce identical results.
func TestSymEigIntoMatchesSymEig(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{1, 2, 3, 4, 6, 8, 12} {
		a := make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				v := rng.NormFloat64()
				a[i*n+j] = v
				a[j*n+i] = v
			}
		}
		vals1, vecs1, err := SymEig(a, n)
		if err != nil {
			t.Fatal(err)
		}
		work := make([]float64, n*n)
		vals2 := make([]float64, n)
		vecs2 := make([]float64, n*n)
		if err := SymEigInto(a, n, work, vals2, vecs2); err != nil {
			t.Fatal(err)
		}
		for i := range vals1 {
			if vals1[i] != vals2[i] {
				t.Fatalf("n=%d: eigenvalue %d differs: %g vs %g", n, i, vals1[i], vals2[i])
			}
		}
		for i := range vecs1 {
			if vecs1[i] != vecs2[i] {
				t.Fatalf("n=%d: eigenvector entry %d differs: %g vs %g", n, i, vecs1[i], vecs2[i])
			}
		}
	}
}

func TestSymEigIntoRejectsShortBuffers(t *testing.T) {
	a := []float64{2, 1, 1, 2}
	if err := SymEigInto(a, 2, make([]float64, 3), make([]float64, 2), make([]float64, 4)); err == nil {
		t.Fatal("short work buffer accepted")
	}
	if err := SymEigInto(a, 2, make([]float64, 4), make([]float64, 1), make([]float64, 4)); err == nil {
		t.Fatal("short vals buffer accepted")
	}
	if err := SymEigInto(a, 2, make([]float64, 4), make([]float64, 2), make([]float64, 3)); err == nil {
		t.Fatal("short vecs buffer accepted")
	}
}
