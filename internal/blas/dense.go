// Package blas provides the dense linear-algebra micro-kernels the solvers
// are built from: small GEMM variants for the XY/XTY task kernels, level-1
// vector operations, and the small dense factorizations (Cholesky, Jacobi
// symmetric eigensolver) needed by the Rayleigh–Ritz procedure in LOBPCG and
// the tridiagonal solve in Lanczos.
//
// All matrices are dense row-major float64 slices. These kernels stand in for
// the Intel MKL calls the paper uses inside tasks; they favor clarity and
// cache-friendly loop orders over platform-specific tuning, which is fine
// because every runtime under comparison calls the same kernels.
package blas

import (
	"fmt"
	"math"
)

// Gemm computes C = alpha·A·B + beta·C where A is m×k, B is k×n and C is m×n,
// all row-major. This is the XY task kernel shape: a tall-skinny block times
// a small square matrix.
func Gemm(alpha float64, a []float64, m, k int, b []float64, n int, beta float64, c []float64) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic(fmt.Sprintf("blas: Gemm shape mismatch m=%d k=%d n=%d len(a)=%d len(b)=%d len(c)=%d", m, k, n, len(a), len(b), len(c)))
	}
	for i := 0; i < m; i++ {
		ci := c[i*n : i*n+n]
		if beta == 0 {
			for j := range ci {
				ci[j] = 0
			}
		} else if beta != 1 {
			for j := range ci {
				ci[j] *= beta
			}
		}
		ai := a[i*k : i*k+k]
		// ikj order: streams B and C rows, the standard cache-friendly form.
		for p := 0; p < k; p++ {
			v := alpha * ai[p]
			if v == 0 {
				continue
			}
			bp := b[p*n : p*n+n]
			for j := 0; j < n; j++ {
				ci[j] += v * bp[j]
			}
		}
	}
}

// GemmTN computes C = alpha·Aᵀ·B + beta·C where A is k×m (so Aᵀ is m×k),
// B is k×n, C is m×n. This is the XTY task kernel shape: the inner product of
// two tall-skinny blocks producing a small m×n matrix.
func GemmTN(alpha float64, a []float64, k, m int, b []float64, n int, beta float64, c []float64) {
	if len(a) < k*m || len(b) < k*n || len(c) < m*n {
		panic(fmt.Sprintf("blas: GemmTN shape mismatch k=%d m=%d n=%d len(a)=%d len(b)=%d len(c)=%d", k, m, n, len(a), len(b), len(c)))
	}
	if beta == 0 {
		for i := 0; i < m*n; i++ {
			c[i] = 0
		}
	} else if beta != 1 {
		for i := 0; i < m*n; i++ {
			c[i] *= beta
		}
	}
	// Accumulate rank-1 updates row by row of A and B: for each p,
	// C += alpha · a_pᵀ · b_p. Streams both inputs once.
	for p := 0; p < k; p++ {
		ap := a[p*m : p*m+m]
		bp := b[p*n : p*n+n]
		for i := 0; i < m; i++ {
			v := alpha * ap[i]
			if v == 0 {
				continue
			}
			ci := c[i*n : i*n+n]
			for j := 0; j < n; j++ {
				ci[j] += v * bp[j]
			}
		}
	}
}

// Dot returns xᵀy.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("blas: Dot length mismatch")
	}
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Axpy computes y += alpha·x.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("blas: Axpy length mismatch")
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Scal computes x *= alpha.
func Scal(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Copy copies src into dst.
func Copy(dst, src []float64) {
	if len(dst) != len(src) {
		panic("blas: Copy length mismatch")
	}
	copy(dst, src)
}

// Nrm2 returns the Euclidean norm with scaling to avoid overflow.
func Nrm2(x []float64) float64 {
	var scale, ssq float64
	ssq = 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		av := v
		if av < 0 {
			av = -av
		}
		if scale < av {
			r := scale / av
			ssq = 1 + ssq*r*r
			scale = av
		} else {
			r := av / scale
			ssq += r * r
		}
	}
	if scale == 0 {
		return 0
	}
	return scale * math.Sqrt(ssq)
}
