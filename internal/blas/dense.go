// Package blas provides the dense linear-algebra micro-kernels the solvers
// are built from: small GEMM variants for the XY/XTY task kernels, level-1
// vector operations, and the small dense factorizations (Cholesky, Jacobi
// symmetric eigensolver) needed by the Rayleigh–Ritz procedure in LOBPCG and
// the tridiagonal solve in Lanczos.
//
// All matrices are dense row-major float64 slices. These kernels stand in for
// the Intel MKL calls the paper uses inside tasks; they favor clarity and
// cache-friendly loop orders over platform-specific tuning, which is fine
// because every runtime under comparison calls the same kernels.
package blas

import (
	"fmt"
	"math"
)

// Gemm computes C = alpha·A·B + beta·C where A is m×k, B is k×n and C is m×n,
// all row-major. This is the XY task kernel shape: a tall-skinny block times
// a small square matrix.
//
// n==1 takes a dot-product path (one store per output row); the general path
// keeps the cache-friendly ikj order with the inner column loop unrolled 4×
// over independent outputs, which is bit-identical per element. Both paths
// stay within 1e-12 of the scalar reference.
//
//sparselint:hotpath
func Gemm(alpha float64, a []float64, m, k int, b []float64, n int, beta float64, c []float64) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic(fmt.Sprintf("blas: Gemm shape mismatch m=%d k=%d n=%d len(a)=%d len(b)=%d len(c)=%d", m, k, n, len(a), len(b), len(c)))
	}
	if n == 1 {
		gemmN1(alpha, a, m, k, b, beta, c)
		return
	}
	if m >= 4 && n >= 4 {
		gemmTiled(alpha, a, m, k, b, n, beta, c)
		return
	}
	for i := 0; i < m; i++ {
		ci := c[i*n : i*n+n]
		if beta == 0 {
			clear(ci)
		} else if beta != 1 {
			for j := range ci {
				ci[j] *= beta
			}
		}
		ai := a[i*k : i*k+k]
		// ikj order: streams B and C rows, the standard cache-friendly form.
		for p := 0; p < k; p++ {
			v := alpha * ai[p]
			if v == 0 {
				// Lanczos multiplies against a basis whose not-yet-filled
				// columns are zero; skipping them skips most of the work.
				continue
			}
			bp := b[p*n : p*n+n]
			bp = bp[:len(ci)]
			j := 0
			for ; j+4 <= len(ci); j += 4 {
				ci[j] += v * bp[j]
				ci[j+1] += v * bp[j+1]
				ci[j+2] += v * bp[j+2]
				ci[j+3] += v * bp[j+3]
			}
			for ; j < len(ci); j++ {
				ci[j] += v * bp[j]
			}
		}
	}
}

// gemmN1 is the n==1 Gemm path: c = alpha·A·b + beta·c with b a column
// vector. Each output row is a dot product accumulated in registers — no
// read-modify-write of c per A element.
//
//sparselint:hotpath
func gemmN1(alpha float64, a []float64, m, k int, b []float64, beta float64, c []float64) {
	b = b[:k]
	c = c[:m]
	for i := range c {
		ai := a[i*k : i*k+k]
		ai = ai[:len(b)]
		var s0, s1, s2, s3, s float64
		p := 0
		for ; p+4 <= len(b); p += 4 {
			s0 += ai[p] * b[p]
			s1 += ai[p+1] * b[p+1]
			s2 += ai[p+2] * b[p+2]
			s3 += ai[p+3] * b[p+3]
		}
		for ; p < len(b); p++ {
			s += ai[p] * b[p]
		}
		s += s0 + s1 + s2 + s3
		switch beta {
		case 0:
			c[i] = alpha * s
		case 1:
			c[i] += alpha * s
		default:
			c[i] = beta*c[i] + alpha*s
		}
	}
}

// gemmTiled is the m,n >= 4 Gemm path: 4×4 register tiles of C accumulated
// across the whole k loop, so each C element is loaded and stored once
// instead of read-modified-written k times. Each element is a plain
// ascending-p sum followed by alpha·s + beta·c — the naive reference
// rounding, element for element.
//
//sparselint:hotpath
func gemmTiled(alpha float64, a []float64, m, k int, b []float64, n int, beta float64, c []float64) {
	i := 0
	for ; i+4 <= m; i += 4 {
		a0r := a[(i+0)*k : (i+0)*k+k]
		a1r := a[(i+1)*k : (i+1)*k+k]
		a2r := a[(i+2)*k : (i+2)*k+k]
		a3r := a[(i+3)*k : (i+3)*k+k]
		a1r = a1r[:len(a0r)]
		a2r = a2r[:len(a0r)]
		a3r = a3r[:len(a0r)]
		j := 0
		for ; j+4 <= n; j += 4 {
			var c00, c01, c02, c03 float64
			var c10, c11, c12, c13 float64
			var c20, c21, c22, c23 float64
			var c30, c31, c32, c33 float64
			for p := range a0r {
				bp := b[p*n+j : p*n+j+4 : p*n+j+4]
				b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
				av := a0r[p]
				c00 += av * b0
				c01 += av * b1
				c02 += av * b2
				c03 += av * b3
				av = a1r[p]
				c10 += av * b0
				c11 += av * b1
				c12 += av * b2
				c13 += av * b3
				av = a2r[p]
				c20 += av * b0
				c21 += av * b1
				c22 += av * b2
				c23 += av * b3
				av = a3r[p]
				c30 += av * b0
				c31 += av * b1
				c32 += av * b2
				c33 += av * b3
			}
			storeTile4(c, i, j, n, alpha, beta, c00, c01, c02, c03, c10, c11, c12, c13, c20, c21, c22, c23, c30, c31, c32, c33)
		}
		for ; j < n; j++ {
			for u := 0; u < 4; u++ {
				au := a[(i+u)*k : (i+u)*k+k]
				var s float64
				for p := range au {
					s += au[p] * b[p*n+j]
				}
				storeScaled(c, (i+u)*n+j, alpha, beta, s)
			}
		}
	}
	for ; i < m; i++ {
		ai := a[i*k : i*k+k]
		for j := 0; j < n; j++ {
			var s float64
			for p := range ai {
				s += ai[p] * b[p*n+j]
			}
			storeScaled(c, i*n+j, alpha, beta, s)
		}
	}
}

// storeScaled writes c[idx] = alpha·s + beta·c[idx] with the exact branches
// the references use (beta==0 must overwrite, never read, so NaN/garbage in
// the output buffer is ignored).
//
//sparselint:hotpath
func storeScaled(c []float64, idx int, alpha, beta, s float64) {
	switch beta {
	case 0:
		c[idx] = alpha * s
	case 1:
		c[idx] += alpha * s
	default:
		c[idx] = beta*c[idx] + alpha*s
	}
}

// storeTile4 writes one 4×4 accumulator tile back to C at (i, j).
//
//sparselint:hotpath
func storeTile4(c []float64, i, j, n int, alpha, beta float64,
	c00, c01, c02, c03, c10, c11, c12, c13, c20, c21, c22, c23, c30, c31, c32, c33 float64) {
	storeScaled(c, (i+0)*n+j+0, alpha, beta, c00)
	storeScaled(c, (i+0)*n+j+1, alpha, beta, c01)
	storeScaled(c, (i+0)*n+j+2, alpha, beta, c02)
	storeScaled(c, (i+0)*n+j+3, alpha, beta, c03)
	storeScaled(c, (i+1)*n+j+0, alpha, beta, c10)
	storeScaled(c, (i+1)*n+j+1, alpha, beta, c11)
	storeScaled(c, (i+1)*n+j+2, alpha, beta, c12)
	storeScaled(c, (i+1)*n+j+3, alpha, beta, c13)
	storeScaled(c, (i+2)*n+j+0, alpha, beta, c20)
	storeScaled(c, (i+2)*n+j+1, alpha, beta, c21)
	storeScaled(c, (i+2)*n+j+2, alpha, beta, c22)
	storeScaled(c, (i+2)*n+j+3, alpha, beta, c23)
	storeScaled(c, (i+3)*n+j+0, alpha, beta, c30)
	storeScaled(c, (i+3)*n+j+1, alpha, beta, c31)
	storeScaled(c, (i+3)*n+j+2, alpha, beta, c32)
	storeScaled(c, (i+3)*n+j+3, alpha, beta, c33)
}

// GemmTN computes C = alpha·Aᵀ·B + beta·C where A is k×m (so Aᵀ is m×k),
// B is k×n, C is m×n. This is the XTY task kernel shape: the inner product of
// two tall-skinny blocks producing a small m×n matrix.
//
// n==1 (Lanczos/CG inner products against a basis) accumulates C directly
// with one multiply-add per A element; the general rank-1-update path has
// its column loop unrolled 4× over independent outputs. Both are within
// 1e-12 of the scalar reference.
//
//sparselint:hotpath
func GemmTN(alpha float64, a []float64, k, m int, b []float64, n int, beta float64, c []float64) {
	if len(a) < k*m || len(b) < k*n || len(c) < m*n {
		panic(fmt.Sprintf("blas: GemmTN shape mismatch k=%d m=%d n=%d len(a)=%d len(b)=%d len(c)=%d", k, m, n, len(a), len(b), len(c)))
	}
	if n > 1 && m >= 4 && n >= 4 {
		gemmTNTiled(alpha, a, k, m, b, n, beta, c)
		return
	}
	if beta == 0 {
		clear(c[:m*n])
	} else if beta != 1 {
		for i := 0; i < m*n; i++ {
			c[i] *= beta
		}
	}
	if n == 1 {
		c = c[:m]
		for p := 0; p < k; p++ {
			bv := alpha * b[p]
			if bv == 0 {
				continue
			}
			ap := a[p*m : p*m+m]
			ap = ap[:len(c)]
			i := 0
			for ; i+4 <= len(c); i += 4 {
				c[i] += ap[i] * bv
				c[i+1] += ap[i+1] * bv
				c[i+2] += ap[i+2] * bv
				c[i+3] += ap[i+3] * bv
			}
			for ; i < len(c); i++ {
				c[i] += ap[i] * bv
			}
		}
		return
	}
	// Accumulate rank-1 updates row by row of A and B: for each p,
	// C += alpha · a_pᵀ · b_p. Streams both inputs once.
	for p := 0; p < k; p++ {
		ap := a[p*m : p*m+m]
		bp := b[p*n : p*n+n]
		for i := 0; i < m; i++ {
			v := alpha * ap[i]
			if v == 0 {
				continue
			}
			ci := c[i*n : i*n+n]
			ci = ci[:len(bp)]
			j := 0
			for ; j+4 <= len(bp); j += 4 {
				ci[j] += v * bp[j]
				ci[j+1] += v * bp[j+1]
				ci[j+2] += v * bp[j+2]
				ci[j+3] += v * bp[j+3]
			}
			for ; j < len(bp); j++ {
				ci[j] += v * bp[j]
			}
		}
	}
}

// gemmTNTiled is the m,n >= 4 GemmTN path: 4×4 register tiles of C held in
// registers across the whole (long, k-deep) accumulation loop. Both the A and
// B rows are contiguous in this orientation, so each p step is eight
// sequential loads feeding sixteen multiply-adds with no C traffic at all.
// Per-element rounding equals the naive reference (ascending-p sum, then
// alpha·s + beta·c).
//
//sparselint:hotpath
func gemmTNTiled(alpha float64, a []float64, k, m int, b []float64, n int, beta float64, c []float64) {
	i := 0
	for ; i+4 <= m; i += 4 {
		j := 0
		for ; j+4 <= n; j += 4 {
			var c00, c01, c02, c03 float64
			var c10, c11, c12, c13 float64
			var c20, c21, c22, c23 float64
			var c30, c31, c32, c33 float64
			for p := 0; p < k; p++ {
				ap := a[p*m+i : p*m+i+4 : p*m+i+4]
				bp := b[p*n+j : p*n+j+4 : p*n+j+4]
				b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
				av := ap[0]
				c00 += av * b0
				c01 += av * b1
				c02 += av * b2
				c03 += av * b3
				av = ap[1]
				c10 += av * b0
				c11 += av * b1
				c12 += av * b2
				c13 += av * b3
				av = ap[2]
				c20 += av * b0
				c21 += av * b1
				c22 += av * b2
				c23 += av * b3
				av = ap[3]
				c30 += av * b0
				c31 += av * b1
				c32 += av * b2
				c33 += av * b3
			}
			storeTile4(c, i, j, n, alpha, beta, c00, c01, c02, c03, c10, c11, c12, c13, c20, c21, c22, c23, c30, c31, c32, c33)
		}
		for ; j < n; j++ {
			var s0, s1, s2, s3 float64
			for p := 0; p < k; p++ {
				bv := b[p*n+j]
				ap := a[p*m+i : p*m+i+4 : p*m+i+4]
				s0 += ap[0] * bv
				s1 += ap[1] * bv
				s2 += ap[2] * bv
				s3 += ap[3] * bv
			}
			storeScaled(c, (i+0)*n+j, alpha, beta, s0)
			storeScaled(c, (i+1)*n+j, alpha, beta, s1)
			storeScaled(c, (i+2)*n+j, alpha, beta, s2)
			storeScaled(c, (i+3)*n+j, alpha, beta, s3)
		}
	}
	for ; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += a[p*m+i] * b[p*n+j]
			}
			storeScaled(c, i*n+j, alpha, beta, s)
		}
	}
}

// Dot returns xᵀy, accumulated in four independent partial sums (within
// 1e-12 of the strictly sequential sum, and typically more accurate).
//
//sparselint:hotpath
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("blas: Dot length mismatch")
	}
	y = y[:len(x)]
	var s0, s1, s2, s3, s float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	for ; i < len(x); i++ {
		s += x[i] * y[i]
	}
	return s + s0 + s1 + s2 + s3
}

// Axpy computes y += alpha·x.
//
//sparselint:hotpath
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("blas: Axpy length mismatch")
	}
	y = y[:len(x)]
	i := 0
	for ; i+4 <= len(x); i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}

// Scal computes x *= alpha. alpha==0 compiles to memclr.
//
//sparselint:hotpath
func Scal(alpha float64, x []float64) {
	if alpha == 0 {
		clear(x)
		return
	}
	for i := range x {
		x[i] *= alpha
	}
}

// Copy copies src into dst.
//
//sparselint:hotpath
func Copy(dst, src []float64) {
	if len(dst) != len(src) {
		panic("blas: Copy length mismatch")
	}
	copy(dst, src)
}

// Nrm2 returns the Euclidean norm with scaling to avoid overflow.
//
//sparselint:hotpath
func Nrm2(x []float64) float64 {
	var scale, ssq float64
	ssq = 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		av := v
		if av < 0 {
			av = -av
		}
		if scale < av {
			r := scale / av
			ssq = 1 + ssq*r*r
			scale = av
		} else {
			r := av / scale
			ssq += r * r
		}
	}
	if scale == 0 {
		return 0
	}
	return scale * math.Sqrt(ssq)
}
