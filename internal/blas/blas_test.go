package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b)) }

func naiveGemm(alpha float64, a []float64, m, k int, b []float64, n int, beta float64, c []float64) {
	out := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += a[i*k+p] * b[p*n+j]
			}
			out[i*n+j] = alpha*s + beta*c[i*n+j]
		}
	}
	copy(c, out)
}

func TestGemmMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		a := randSlice(rng, m*k)
		b := randSlice(rng, k*n)
		c1 := randSlice(rng, m*n)
		c2 := append([]float64(nil), c1...)
		alpha, beta := rng.NormFloat64(), rng.NormFloat64()
		Gemm(alpha, a, m, k, b, n, beta, c1)
		naiveGemm(alpha, a, m, k, b, n, beta, c2)
		for i := range c1 {
			if !almostEq(c1[i], c2[i], 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGemmTNMatchesTransposedGemm(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k, m, n := 1+rng.Intn(15), 1+rng.Intn(10), 1+rng.Intn(10)
		a := randSlice(rng, k*m) // A is k×m
		b := randSlice(rng, k*n)
		c1 := randSlice(rng, m*n)
		c2 := append([]float64(nil), c1...)
		alpha, beta := rng.NormFloat64(), rng.NormFloat64()
		GemmTN(alpha, a, k, m, b, n, beta, c1)
		// Build Aᵀ explicitly and use plain Gemm.
		at := make([]float64, m*k)
		for i := 0; i < k; i++ {
			for j := 0; j < m; j++ {
				at[j*k+i] = a[i*m+j]
			}
		}
		Gemm(alpha, at, m, k, b, n, beta, c2)
		for i := range c1 {
			if !almostEq(c1[i], c2[i], 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func randSlice(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

func TestGemmBetaZeroIgnoresGarbage(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 4}
	c := []float64{math.NaN(), math.NaN(), math.NaN(), math.NaN()}
	Gemm(1, a, 2, 1, b, 2, 0, c)
	want := []float64{3, 4, 6, 8}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("c[%d] = %v, want %v", i, c[i], want[i])
		}
	}
}

func TestLevel1Ops(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if got := Dot(x, y); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	Axpy(2, x, y)
	if y[0] != 6 || y[1] != 9 || y[2] != 12 {
		t.Errorf("Axpy result %v", y)
	}
	Scal(0.5, y)
	if y[0] != 3 || y[1] != 4.5 || y[2] != 6 {
		t.Errorf("Scal result %v", y)
	}
	if got := Nrm2([]float64{3, 4}); !almostEq(got, 5, 1e-15) {
		t.Errorf("Nrm2 = %v, want 5", got)
	}
	if got := Nrm2(nil); got != 0 {
		t.Errorf("Nrm2(nil) = %v, want 0", got)
	}
}

func TestNrm2Overflow(t *testing.T) {
	big := math.MaxFloat64 / 4
	got := Nrm2([]float64{big, big})
	want := big * math.Sqrt2
	if math.IsInf(got, 0) || !almostEq(got, want, 1e-14) {
		t.Errorf("Nrm2 overflow-safe = %v, want %v", got, want)
	}
}

func TestSymEigDiagonal(t *testing.T) {
	a := []float64{
		3, 0, 0,
		0, 1, 0,
		0, 0, 2,
	}
	ev, v, err := SymEig(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if !almostEq(ev[i], want[i], 1e-12) {
			t.Errorf("eig %d = %v, want %v", i, ev[i], want[i])
		}
	}
	// Eigenvector for eigenvalue 1 must be ±e1.
	if math.Abs(math.Abs(v[1*3+0])-1) > 1e-12 {
		t.Errorf("eigvec for λ=1: %v", []float64{v[0], v[3], v[6]})
	}
}

func TestSymEigReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		a := make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a[i*n+j], a[j*n+i] = v, v
			}
		}
		ev, v, err := SymEig(a, n)
		if err != nil {
			return false
		}
		// Check A·v_j = λ_j·v_j and orthonormality of V.
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				var av float64
				for k := 0; k < n; k++ {
					av += a[i*n+k] * v[k*n+j]
				}
				if !almostEq(av, ev[j]*v[i*n+j], 1e-8) {
					return false
				}
			}
		}
		for j1 := 0; j1 < n; j1++ {
			for j2 := 0; j2 < n; j2++ {
				var d float64
				for i := 0; i < n; i++ {
					d += v[i*n+j1] * v[i*n+j2]
				}
				want := 0.0
				if j1 == j2 {
					want = 1
				}
				if math.Abs(d-want) > 1e-9 {
					return false
				}
			}
		}
		// Ascending order.
		for j := 1; j < n; j++ {
			if ev[j] < ev[j-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSymEigRejectsNonSymmetric(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if _, _, err := SymEig(a, 2); err == nil {
		t.Fatal("expected error for non-symmetric input")
	}
}

func TestSymTriEigKnownValues(t *testing.T) {
	// Tridiagonal with d=2, e=-1 (the 1D Laplacian) has eigenvalues
	// 2-2cos(kπ/(n+1)).
	n := 6
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = 2
	}
	for i := range e {
		e[i] = -1
	}
	ev, _, err := SymTriEig(d, e)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= n; k++ {
		want := 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1))
		if !almostEq(ev[k-1], want, 1e-10) {
			t.Errorf("λ_%d = %v, want %v", k, ev[k-1], want)
		}
	}
}

func TestSymTriEigBadLengths(t *testing.T) {
	if _, _, err := SymTriEig([]float64{1, 2}, []float64{}); err == nil {
		t.Fatal("expected length error")
	}
}

func TestCholeskyReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		// Build SPD matrix A = MᵀM + n·I.
		m := randSlice(rng, n*n)
		a := make([]float64, n*n)
		GemmTN(1, m, n, n, m, n, 0, a)
		for i := 0; i < n; i++ {
			a[i*n+i] += float64(n)
		}
		r, err := Cholesky(a, n)
		if err != nil {
			return false
		}
		// Check RᵀR = A.
		back := make([]float64, n*n)
		GemmTN(1, r, n, n, r, n, 0, back)
		for i := range a {
			if !almostEq(back[i], a[i], 1e-10) {
				return false
			}
		}
		// R upper triangular.
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				if r[i*n+j] != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := []float64{1, 0, 0, -1}
	if _, err := Cholesky(a, 2); err == nil {
		t.Fatal("expected error for indefinite matrix")
	}
}

func TestOrthonormalizeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		m := n + rng.Intn(60) + 1
		x := randSlice(rng, m*n)
		if err := Orthonormalize(x, m, n); err != nil {
			return false
		}
		g := make([]float64, n*n)
		GemmTN(1, x, m, n, x, n, 0, g)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(g[i*n+j]-want) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestOrthonormalizeNearDependentColumns(t *testing.T) {
	// Two nearly parallel columns: CholQR on the Gram matrix fails, MGS
	// fallback must still produce an orthonormal basis.
	m, n := 50, 2
	x := make([]float64, m*n)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < m; i++ {
		v := rng.NormFloat64()
		x[i*n] = v
		x[i*n+1] = v * (1 + 1e-13)
	}
	err := Orthonormalize(x, m, n)
	if err != nil {
		// Rank deficiency beyond repair is acceptable as an error, but it
		// must be reported, not silently wrong.
		return
	}
	g := make([]float64, n*n)
	GemmTN(1, x, m, n, x, n, 0, g)
	if math.Abs(g[0]-1) > 1e-6 || math.Abs(g[3]-1) > 1e-6 || math.Abs(g[1]) > 1e-6 {
		t.Fatalf("Gram after orthonormalize = %v", g)
	}
}

func TestTrsmRightUpperInv(t *testing.T) {
	// X·R·R⁻¹ must equal X.
	rng := rand.New(rand.NewSource(5))
	m, n := 7, 4
	x0 := randSlice(rng, m*n)
	// Random well-conditioned upper triangular R.
	r := make([]float64, n*n)
	for i := 0; i < n; i++ {
		r[i*n+i] = 1 + rng.Float64()
		for j := i + 1; j < n; j++ {
			r[i*n+j] = rng.NormFloat64() * 0.3
		}
	}
	// y = x0 · R
	y := make([]float64, m*n)
	Gemm(1, x0, m, n, r, n, 0, y)
	TrsmRightUpperInv(y, m, n, r)
	for i := range x0 {
		if !almostEq(y[i], x0[i], 1e-10) {
			t.Fatalf("element %d: %v vs %v", i, y[i], x0[i])
		}
	}
}
